(* webdep — command-line interface to the dependence toolkit.

   Subcommands:
     scores       per-country centralization scores for a layer
     report       full dependence report for one country
     insularity   per-country insularity for a layer
     classify     provider classes (Tables 1-3)
     usage        usage/endemicity statistics for one provider
     longitudinal 2023 vs 2025 comparison
     validate     vantage-point validation sweep
     paper        print the embedded Appendix-F reference table
     countries    list the 150 dataset countries
     serve        long-running batched dependence-query daemon
     query        one dependence query, locally or against a daemon
     epochs       build/replay/verify/compact a multi-epoch churn log *)

open Cmdliner

module World = Webdep_worldgen.World
module Measure = Webdep_pipeline.Measure
module D = Webdep.Dataset
module Scores = Webdep_reference.Paper_scores

(* --- shared arguments -------------------------------------------------- *)

let layer_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "hosting" -> Ok Scores.Hosting
    | "dns" -> Ok Scores.Dns
    | "ca" -> Ok Scores.Ca
    | "tld" -> Ok Scores.Tld
    | other -> Error (`Msg (Printf.sprintf "unknown layer %S (hosting|dns|ca|tld)" other))
  in
  Arg.conv (parse, fun fmt l -> Format.pp_print_string fmt (Scores.layer_name l))

let layer_arg =
  Arg.(value & opt layer_conv Scores.Hosting & info [ "l"; "layer" ] ~docv:"LAYER"
         ~doc:"Infrastructure layer: hosting, dns, ca or tld.")

let seed_arg =
  Arg.(value & opt int 2024 & info [ "seed" ] ~docv:"SEED" ~doc:"World seed.")

let c_arg =
  Arg.(value & opt int 2000 & info [ "c"; "toplist" ] ~docv:"N"
         ~doc:"Websites per country (the paper uses 10000).")

let countries_arg =
  Arg.(value & opt (list string) [] & info [ "countries" ] ~docv:"CC,CC,..."
         ~doc:"Restrict to these country codes (default: all 150).")

let top_arg =
  Arg.(value & opt int 20 & info [ "top" ] ~docv:"N" ~doc:"Rows to print.")

let normalize_countries = function
  | [] -> None
  | ccs -> Some (List.map String.uppercase_ascii ccs)

(* --- observability ------------------------------------------------------ *)

(* Global flags shared by every subcommand: -v/-vv install a Logs
   reporter (so library-level logging is visible), --trace streams spans
   to the console, --metrics FILE dumps the full registry as JSON on
   exit, --jobs N sizes the shared domain pool that the measurement
   sweep and bootstrap resampling fan out over. *)

let obs_setup trace metrics verbosity jobs perfetto =
  Webdep_obs.Reporter.setup
    ~level:(Webdep_obs.Reporter.level_of_verbosity (List.length verbosity))
    ();
  (match jobs with
  | Some j when j >= 1 -> Webdep_par.set_jobs j
  | Some j ->
      Printf.eprintf "webdep: --jobs must be >= 1 (got %d)\n" j;
      exit 124
  | None -> ());
  let sinks =
    (if trace then [ Webdep_obs.Sink.console () ] else [])
    @
    match perfetto with
    | None -> []
    | Some path ->
        (* The trace sink only writes its file on flush; make sure the
           last flush happens even when a subcommand exits early. *)
        at_exit (fun () -> Webdep_obs.Sink.flush ());
        [ Webdep_prof.Trace.sink path ]
  in
  (match sinks with
  | [] -> ()
  | s :: rest -> Webdep_obs.Sink.set (List.fold_left Webdep_obs.Sink.tee s rest));
  match metrics with
  | None -> ()
  | Some path ->
      at_exit (fun () ->
          Webdep_obs.Sink.flush ();
          try Webdep_obs.Registry.write_file path
          with Sys_error msg ->
            Printf.eprintf "webdep: cannot write metrics: %s\n" msg)

let obs_term =
  let trace =
    Arg.(value & flag & info [ "trace" ]
           ~doc:"Print every pipeline span (with timing) to the console.")
  in
  let metrics =
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
           ~doc:"On exit, write a JSON snapshot of all counters, histograms and \
                 span timings to $(docv).")
  in
  let verbose =
    Arg.(value & flag_all & info [ "v"; "verbose" ]
           ~doc:"Increase log verbosity ($(b,-v) info, $(b,-vv) debug).")
  in
  let jobs =
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for the measurement sweep and bootstrap \
                 resampling (default: the machine's recommended domain \
                 count; $(b,--jobs 1) forces the sequential path).  \
                 Results are identical for every $(docv).")
  in
  let perfetto =
    Arg.(value & opt (some string) None & info [ "perfetto" ] ~docv:"FILE"
           ~doc:"Export every span as a Chrome trace-event file loadable in \
                 $(b,https://ui.perfetto.dev): one timeline lane per worker \
                 domain, nested spans as stacked slices.")
  in
  Term.(const obs_setup $ trace $ metrics $ verbose $ jobs $ perfetto)

(* --- fault injection ---------------------------------------------------- *)

(* Robustness flags: a fault plan (deterministic in --fault-seed, off at
   --fault-rate 0), a retry budget, the per-country coverage gate, and
   an optional checkpoint file for interrupted sweeps. *)

let faults_setup rate fault_seed max_retries coverage_threshold checkpoint =
  if rate < 0.0 || rate > 1.0 then begin
    Printf.eprintf "webdep: --fault-rate must be within [0, 1] (got %g)\n" rate;
    exit 124
  end;
  let faults =
    if rate = 0.0 then None
    else
      Some
        {
          Measure.plan = Webdep_faults.Fault_plan.make ~rate ~seed:fault_seed ();
          retry = Webdep_faults.Retry.of_max_retries max_retries;
          coverage_threshold;
          quarantine_after = 3;
        }
  in
  (faults, checkpoint)

let faults_term =
  let rate =
    Arg.(value & opt float 0.0 & info [ "fault-rate" ] ~docv:"P"
           ~doc:"Probability a simulated server/query key misbehaves \
                 (timeouts, SERVFAIL, lame delegation, packet loss, broken \
                 TLS).  0 disables fault injection entirely; the output is \
                 then identical to a run without these flags.")
  in
  let fault_seed =
    Arg.(value & opt int 7 & info [ "fault-seed" ] ~docv:"SEED"
           ~doc:"Seed of the deterministic fault plan (independent of the \
                 world seed).")
  in
  let max_retries =
    Arg.(value & opt int 3 & info [ "max-retries" ] ~docv:"N"
           ~doc:"Retries after the first attempt for transient DNS/TLS \
                 failures (deterministic exponential backoff, simulated \
                 clock).")
  in
  let coverage_threshold =
    Arg.(value & opt float 0.9 & info [ "coverage-threshold" ] ~docv:"R"
           ~doc:"Minimum per-country fraction of measured (non-failed) \
                 sites; countries below it are reported as \
                 insufficient_coverage and withheld from the output.")
  in
  let checkpoint =
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE"
           ~doc:"Append completed country shards to $(docv) and resume past \
                 them on restart (same sweep parameters required).")
  in
  Term.(const faults_setup $ rate $ fault_seed $ max_retries $ coverage_threshold
        $ checkpoint)

(* --- measurement store --------------------------------------------------- *)

(* --store FILE memoizes per-(epoch, resolution, vantage, domain)
   measurements across runs: the file is loaded before the sweep (and
   discarded with a warning if its fingerprint does not match this
   world/fault configuration) and rewritten afterwards with everything
   measured.  Results are byte-identical with or without it. *)

let store_setup path no_store = if no_store then None else path

let store_term =
  let path =
    Arg.(value & opt (some string) None & info [ "store" ] ~docv:"FILE"
           ~doc:"Persist per-site measurement results in $(docv) and reuse \
                 them on later runs with the same world parameters \
                 (seed, toplist size, fault settings).  Output is \
                 byte-identical to a run without the store.")
  in
  let no_store =
    Arg.(value & flag & info [ "no-store" ]
           ~doc:"Ignore $(b,--store): measure everything from scratch and \
                 leave the store file untouched.")
  in
  Term.(const store_setup $ path $ no_store)

let with_store ?faults world store_path f =
  match store_path with
  | None -> f None
  | Some path ->
      let fingerprint = Measure.store_fingerprint ?faults world in
      let store = Webdep_store.Store.load ~path ~fingerprint in
      (if Sys.file_exists path && Webdep_store.Store.size store = 0 then
         Logs.warn (fun m ->
             m "store %s: fingerprint mismatch or no usable entries, remeasuring"
               path));
      let result = f (Some store) in
      Webdep_store.Store.save store path;
      result

let measure ~seed ~c ?countries ?(faults = (None, None)) ?store () =
  let world = World.create ~c ~seed () in
  let fault_opts, checkpoint = faults in
  with_store ?faults:fault_opts world store @@ fun store ->
  match (fault_opts, checkpoint) with
  | None, None -> (world, Measure.measure_all ?countries ?store world)
  | _ ->
      let sweep =
        Measure.measure_sweep ?countries ?faults:fault_opts ?checkpoint ?store world
      in
      List.iter
        (fun (c : Measure.country_coverage) ->
          if List.mem c.Measure.cc sweep.Measure.insufficient then
            Printf.eprintf "insufficient_coverage %s: %.1f%% measured\n"
              c.Measure.cc (100.0 *. c.Measure.ratio))
        sweep.Measure.coverage;
      (world, sweep.Measure.dataset)

(* --- scores ------------------------------------------------------------- *)

let run_scores () layer seed c countries top faults store =
  let _, ds =
    measure ~seed ~c ?countries:(normalize_countries countries) ~faults ?store ()
  in
  Printf.printf "%-5s %-4s %10s %10s %8s\n" "rank" "cc" "S" "paper" "diff";
  List.iteri
    (fun i (cc, s) ->
      if i < top then
        let paper = Scores.score_exn layer cc in
        Printf.printf "%-5d %-4s %10.4f %10.4f %+8.4f\n" (i + 1) cc s paper (s -. paper))
    (Webdep.Metrics.all_scores ds layer)

let scores_cmd =
  let doc = "Per-country centralization scores for a layer (Tables 5-8)." in
  Cmd.v (Cmd.info "scores" ~doc)
    Term.(const run_scores $ obs_term $ layer_arg $ seed_arg $ c_arg $ countries_arg
          $ top_arg $ faults_term $ store_term)

(* --- report -------------------------------------------------------------- *)

let cc_pos =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CC" ~doc:"Country code.")

let run_report () cc seed c =
  let cc = String.uppercase_ascii cc in
  if not (Webdep_geo.Country.mem cc) then begin
    Printf.eprintf "unknown country code %s\n" cc;
    exit 1
  end;
  let _, ds = measure ~seed ~c ~countries:[ cc ] () in
  List.iter
    (fun layer ->
      Printf.printf "--- %s ---\n" (Scores.layer_name layer);
      Printf.printf "S = %.4f (paper %.4f), insularity = %.1f%%, providers = %d\n"
        (Webdep.Metrics.centralization ds layer cc)
        (Scores.score_exn layer cc)
        (100.0 *. Webdep.Regionalization.insularity ds layer cc)
        (Webdep.Metrics.provider_count ds layer cc);
      List.iteri
        (fun i ((e : D.entity), k) ->
          if i < 5 then
            Printf.printf "  %d. %-28s [%s] %5.1f%%\n" (i + 1) e.D.name e.D.country
              (100.0 *. float_of_int k /. float_of_int c))
        (D.counts_by_entity ds layer cc);
      print_newline ())
    Scores.all_layers

let report_cmd =
  let doc = "Full four-layer dependence report for one country." in
  Cmd.v (Cmd.info "report" ~doc) Term.(const run_report $ obs_term $ cc_pos $ seed_arg $ c_arg)

(* --- insularity ------------------------------------------------------------ *)

let run_insularity () layer seed c countries top =
  let _, ds = measure ~seed ~c ?countries:(normalize_countries countries) () in
  Printf.printf "%-5s %-4s %12s\n" "rank" "cc" "insularity";
  List.iteri
    (fun i (cc, v) ->
      if i < top then Printf.printf "%-5d %-4s %11.1f%%\n" (i + 1) cc (100.0 *. v))
    (Webdep.Regionalization.all_insularity ds layer)

let insularity_cmd =
  let doc = "Per-country insularity for a layer (Figures 13, 20-22)." in
  Cmd.v (Cmd.info "insularity" ~doc)
    Term.(const run_insularity $ obs_term $ layer_arg $ seed_arg $ c_arg $ countries_arg $ top_arg)

(* --- classify ---------------------------------------------------------------- *)

let run_classify () layer seed c =
  let _, ds = measure ~seed ~c () in
  let cl = Webdep.Classify.classify ds layer in
  Printf.printf "raw affinity-propagation clusters: %d\n" cl.Webdep.Classify.raw_clusters;
  Printf.printf "%-10s %8s\n" "class" "count";
  List.iter
    (fun (k, n) -> Printf.printf "%-10s %8d\n" (Webdep.Classify.klass_name k) n)
    cl.Webdep.Classify.table

let classify_cmd =
  let doc = "Provider classes by usage and endemicity (Tables 1-3)." in
  Cmd.v (Cmd.info "classify" ~doc) Term.(const run_classify $ obs_term $ layer_arg $ seed_arg $ c_arg)

(* --- usage ---------------------------------------------------------------------- *)

let provider_pos =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROVIDER" ~doc:"Provider name.")

let run_usage () provider layer seed c =
  let _, ds = measure ~seed ~c () in
  match Webdep.Regionalization.usage_curve ds layer ~name:provider with
  | exception Not_found ->
      Printf.eprintf "provider %S not present in the %s layer\n" provider
        (Scores.layer_name layer);
      exit 1
  | u ->
      Printf.printf "provider: %s [%s]\n" provider
        u.Webdep.Regionalization.entity.D.country;
      Printf.printf "usage U = %.1f, endemicity E = %.1f, ratio E_R = %.3f\n"
        u.Webdep.Regionalization.usage u.Webdep.Regionalization.endemicity
        u.Webdep.Regionalization.endemicity_ratio;
      Printf.printf "usage curve (top 10 countries): ";
      Array.iteri
        (fun i v -> if i < 10 then Printf.printf "%.1f%% " v)
        u.Webdep.Regionalization.curve;
      print_newline ()

let usage_cmd =
  let doc = "Usage and endemicity of one provider (Figure 4)." in
  Cmd.v (Cmd.info "usage" ~doc)
    Term.(const run_usage $ obs_term $ provider_pos $ layer_arg $ seed_arg $ c_arg)

(* --- longitudinal ------------------------------------------------------------------ *)

let run_longitudinal () seed c countries top store =
  let countries = normalize_countries countries in
  let world = World.create ~c ~seed () in
  let ds23, ds25 =
    with_store world store @@ fun store ->
    ( Measure.measure_all ?countries ?store world,
      Measure.measure_all ~epoch:World.May_2025 ?countries ?store world )
  in
  let cmp, churn =
    Webdep.Longitudinal.compare_incremental ~focus:"Cloudflare" ~old_ds:ds23
      ~new_ds:ds25 Hosting
  in
  Logs.info (fun m ->
      m "churn: %d kept (%d relabelled), %d added, %d removed; support changed in %d/%d countries"
        churn.Webdep.Longitudinal.kept churn.Webdep.Longitudinal.relabelled
        churn.Webdep.Longitudinal.added churn.Webdep.Longitudinal.removed
        churn.Webdep.Longitudinal.support_changed_countries
        churn.Webdep.Longitudinal.countries);
  Printf.printf "rho = %.3f, mean jaccard = %.3f, Cloudflare %+.1f pts\n"
    cmp.Webdep.Longitudinal.rho.Webdep_stats.Correlation.rho
    cmp.Webdep.Longitudinal.mean_jaccard
    (100.0 *. Option.value ~default:0.0 cmp.Webdep.Longitudinal.focus_mean_delta);
  Printf.printf "%-4s %9s %9s %8s\n" "cc" "2023" "2025" "delta";
  List.iteri
    (fun i d ->
      if i < top then
        Printf.printf "%-4s %9.4f %9.4f %+8.4f\n" d.Webdep.Longitudinal.country
          d.Webdep.Longitudinal.old_score d.Webdep.Longitudinal.new_score
          d.Webdep.Longitudinal.delta)
    cmp.Webdep.Longitudinal.deltas

let longitudinal_cmd =
  let doc = "Compare May-2023 and May-2025 measurements (§5.4)." in
  Cmd.v (Cmd.info "longitudinal" ~doc)
    Term.(const run_longitudinal $ obs_term $ seed_arg $ c_arg $ countries_arg $ top_arg
          $ store_term)

(* --- validate ----------------------------------------------------------------------- *)

let run_validate () seed c countries =
  let countries =
    match normalize_countries countries with
    | Some ccs -> ccs
    | None -> List.map (fun x -> x.Webdep_geo.Country.code) Webdep_geo.Country.all
  in
  let world = World.create ~c ~seed () in
  let ds = Measure.measure_all ~countries world in
  let home = List.map (fun cc -> (cc, Webdep.Metrics.centralization ds Hosting cc)) countries in
  let probes = Measure.measure_with_probes ~per_country_probes:5 ~seed world countries in
  let v = Webdep.Validate.correlate ~home ~probes in
  Printf.printf "rho(home, probes) = %.4f over %d countries, max gap %.4f\n"
    v.Webdep.Validate.rho.Webdep_stats.Correlation.rho
    (List.length v.Webdep.Validate.pairs)
    v.Webdep.Validate.max_gap

let validate_cmd =
  let doc = "Vantage-point validation sweep (§3.4)." in
  Cmd.v (Cmd.info "validate" ~doc) Term.(const run_validate $ obs_term $ seed_arg $ c_arg $ countries_arg)

(* --- paper ------------------------------------------------------------------------- *)

let run_paper () layer top =
  Printf.printf "%-5s %-4s %10s\n" "rank" "cc" "S";
  List.iteri
    (fun i (cc, s) -> if i < top then Printf.printf "%-5d %-4s %10.4f\n" (i + 1) cc s)
    (Scores.table layer)

let paper_cmd =
  let doc = "Print the embedded Appendix-F reference table for a layer." in
  Cmd.v (Cmd.info "paper" ~doc) Term.(const run_paper $ obs_term $ layer_arg $ top_arg)

(* --- export -------------------------------------------------------------------------- *)

let out_dir_arg =
  Arg.(value & opt string "webdep-data" & info [ "o"; "out" ] ~docv:"DIR"
         ~doc:"Output directory for the CSV files.")

let run_export () layer seed c out_dir store =
  let _, ds = measure ~seed ~c ?store () in
  (try Unix.mkdir out_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let name = Scores.layer_name layer in
  let put file doc =
    let path = Filename.concat out_dir file in
    Webdep.Export.write_file path doc;
    Printf.printf "wrote %s\n" path
  in
  put (Printf.sprintf "scores_%s.csv" name) (Webdep.Export.scores_csv ds layer);
  put (Printf.sprintf "insularity_%s.csv" name) (Webdep.Export.insularity_csv ds layer);
  put (Printf.sprintf "usage_%s.csv" name) (Webdep.Export.usage_csv ds layer)

let export_cmd =
  let doc = "Export scores, insularity and provider usage as CSV (data release)." in
  Cmd.v (Cmd.info "export" ~doc)
    Term.(const run_export $ obs_term $ layer_arg $ seed_arg $ c_arg $ out_dir_arg
          $ store_term)

(* --- language -------------------------------------------------------------------------- *)

let run_language () cc seed c =
  let cc = String.uppercase_ascii cc in
  let _, ds = measure ~seed ~c ~countries:[ cc ] () in
  Printf.printf "content languages of %s's top sites:\n" cc;
  List.iteri
    (fun i (lang, share) ->
      if i < 8 then begin
        Printf.printf "  %-4s %5.1f%%   hosted in: " lang (100.0 *. share);
        List.iteri
          (fun j (home, s) ->
            if j < 3 then Printf.printf "%s %.0f%% " home (100.0 *. s))
          (Webdep.Language_analysis.language_home_crosstab ds cc ~language:lang);
        print_newline ()
      end)
    (Webdep.Language_analysis.language_breakdown ds cc)

let language_cmd =
  let doc = "Content-language breakdown and cross-border hosting (§5.3.3)." in
  Cmd.v (Cmd.info "language" ~doc) Term.(const run_language $ obs_term $ cc_pos $ seed_arg $ c_arg)

(* --- redundancy -------------------------------------------------------------------------- *)

let run_redundancy () cc seed c =
  let cc = String.uppercase_ascii cc in
  let world = World.create ~c ~seed () in
  let input =
    Measure.discover_redundancy ~vantages:[ "US"; cc; "DE"; "JP"; "BR" ] world cc
  in
  let r = Webdep.Redundancy.analyze input in
  Printf.printf "%s: %d sites, %.1f%% single-homed, SPOF score %.4f\n" cc
    r.Webdep.Redundancy.total_sites
    (100.0 *. Webdep.Redundancy.single_homed_fraction r)
    r.Webdep.Redundancy.spof_score;
  print_endline "most critical providers (sites that require them):";
  List.iteri
    (fun i (name, k) -> if i < 8 then Printf.printf "  %-28s %d\n" name k)
    r.Webdep.Redundancy.critical_counts

let redundancy_cmd =
  let doc = "Single-provider dependence via multi-vantage measurement (§3.2 ext)." in
  Cmd.v (Cmd.info "redundancy" ~doc) Term.(const run_redundancy $ obs_term $ cc_pos $ seed_arg $ c_arg)

(* --- tld ---------------------------------------------------------------------------------- *)

let run_tld () cc seed c =
  let cc = String.uppercase_ascii cc in
  let _, ds = measure ~seed ~c ~countries:[ cc ] () in
  Printf.printf "TLD usage of %s (S = %.4f):\n" cc (Webdep.Metrics.centralization ds Tld cc);
  List.iter
    (fun (cat, share) ->
      Printf.printf "  %-16s %5.1f%%\n" (Webdep.Tld_analysis.category_name cat)
        (100.0 *. share))
    (Webdep.Tld_analysis.breakdown ds cc);
  (match Webdep.Tld_analysis.external_cctlds ds cc with
  | [] -> ()
  | ext ->
      print_endline "external ccTLDs:";
      List.iteri
        (fun i (tld, share) ->
          if i < 6 then Printf.printf "  %-6s %5.1f%%\n" tld (100.0 *. share))
        ext);
  match Webdep.Tld_analysis.uses_external_over_local ds cc with
  | Some tld -> Printf.printf "note: %s outranks the local ccTLD\n" tld
  | None -> ()

let tld_cmd =
  let doc = "TLD-layer breakdown for one country (Appendix B)." in
  Cmd.v (Cmd.info "tld" ~doc) Term.(const run_tld $ obs_term $ cc_pos $ seed_arg $ c_arg)

(* --- report-md -------------------------------------------------------------------------- *)

let md_out_arg =
  Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE"
         ~doc:"Write the Markdown report to FILE instead of stdout.")

let run_report_md () seed c countries out =
  let _, ds = measure ~seed ~c ?countries:(normalize_countries countries) () in
  let doc = Webdep.Report_md.generate ds in
  match out with
  | Some path ->
      Webdep.Export.write_file path doc;
      Printf.printf "wrote %s\n" path
  | None -> print_string doc

let report_md_cmd =
  let doc = "Generate a paper-style Markdown report of the measured dataset." in
  Cmd.v (Cmd.info "report-md" ~doc)
    Term.(const run_report_md $ obs_term $ seed_arg $ c_arg $ countries_arg $ md_out_arg)

(* --- profile ---------------------------------------------------------------------------- *)

(* Run a measurement sweep with an in-memory span collector installed
   (teed with whatever sink the global flags chose, so --perfetto and
   --trace still work) and print the top-N hotspot table; or skip the
   run entirely and aggregate a trace file saved earlier. *)

let run_profile () from_trace seed c countries top faults store =
  let rows =
    match from_trace with
    | Some path ->
        if not (Sys.file_exists path) then begin
          Printf.eprintf "webdep: no such trace file: %s\n" path;
          exit 1
        end;
        Webdep_prof.Profile.aggregate (Webdep_prof.Trace.load path)
    | None ->
        let collector = Webdep_prof.Profile.collector () in
        let sink =
          Webdep_obs.Sink.tee
            (Webdep_obs.Sink.current ())
            (Webdep_prof.Profile.collector_sink collector)
        in
        Webdep_obs.Sink.with_sink sink (fun () ->
            ignore
              (measure ~seed ~c ?countries:(normalize_countries countries) ~faults
                 ?store ()));
        Webdep_prof.Profile.aggregate (Webdep_prof.Profile.events collector)
  in
  if rows = [] then print_endline "no spans recorded"
  else print_string (Webdep_prof.Profile.render ~top rows)

let profile_cmd =
  let doc =
    "Hotspot profile of a measurement sweep: per-span self/cumulative time and \
     allocation."
  in
  let from_trace =
    Arg.(value & opt (some string) None & info [ "from-trace" ] ~docv:"FILE"
           ~doc:"Aggregate a Chrome trace file saved earlier with \
                 $(b,--perfetto) instead of running a sweep.")
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(const run_profile $ obs_term $ from_trace $ seed_arg $ c_arg $ countries_arg
          $ top_arg $ faults_term $ store_term)

(* --- scale --------------------------------------------------------------------------- *)

(* One paper-scale sweep in a process that has run nothing else, so
   Gc.top_heap_words genuinely is this sweep's peak heap — that is what
   makes --budget-words a meaningful gate (the bench's scale phase can
   only report a cumulative upper bound).  Exit 4 when over budget. *)

let run_scale () seed c countries budget_words =
  let r =
    Webdep_pipeline.Scale.run ~seed ?countries:(normalize_countries countries) ~c ()
  in
  Printf.printf
    "c=%d: %d countries, %d sites, %.2fs, %.0f minor words, top_heap %d words, \
     mean hosting S %.4f\n"
    r.Webdep_pipeline.Scale.c r.Webdep_pipeline.Scale.countries
    r.Webdep_pipeline.Scale.sites r.Webdep_pipeline.Scale.seconds
    r.Webdep_pipeline.Scale.minor_words r.Webdep_pipeline.Scale.top_heap_words
    r.Webdep_pipeline.Scale.mean_hosting_s;
  match budget_words with
  | Some budget when r.Webdep_pipeline.Scale.top_heap_words > budget ->
      Printf.eprintf "webdep scale: top_heap_words %d exceeds budget %d\n"
        r.Webdep_pipeline.Scale.top_heap_words budget;
      exit 4
  | Some budget ->
      Printf.printf "within budget: %d <= %d words\n"
        r.Webdep_pipeline.Scale.top_heap_words budget
  | None -> ()

let scale_cmd =
  let doc =
    "Run one full measurement sweep and report wall seconds, minor-heap \
     allocation and the process peak heap (Gc.top_heap_words)."
  in
  let budget =
    Arg.(value & opt (some int) None & info [ "budget-words" ] ~docv:"N"
           ~doc:"Fail (exit 4) if the process's peak major heap exceeds \
                 $(docv) words.  Meaningful because this subcommand runs \
                 nothing but the sweep.")
  in
  let exits =
    Cmd.Exit.info 4
      ~doc:"the process peak heap exceeded $(b,--budget-words) (the bench's \
            $(b,--compare) gate uses exit 3 for a timing/alloc regression and \
            125 for a missing or unreadable baseline)."
    :: Cmd.Exit.defaults
  in
  Cmd.v (Cmd.info "scale" ~doc ~exits)
    Term.(const run_scale $ obs_term $ seed_arg $ c_arg $ countries_arg $ budget)

(* --- serve / query ---------------------------------------------------------------------- *)

(* The long-running dependence-query daemon and its one-shot twin.  Both
   build the same warm state (both epochs measured, optionally through
   --store, every per-country tally pre-materialized) and answer through
   [Webdep_serve.State.answer], so a daemon answer is byte-identical to
   the one-shot output for every query kind at any --jobs. *)

module Serve = Webdep_serve

let epoch_arg =
  Arg.(value & opt string "2023" & info [ "epoch" ] ~docv:"EPOCH"
         ~doc:"Epoch a score/topk/ranking query refers to: 2023, 2025, or a \
               churn-log epoch name the daemon has loaded (list them with the \
               $(b,epochs) query).")

let serve_epochs = [ "2023-05"; "2025-05" ]

let measured_epoch name =
  match Serve.Protocol.epoch_of_name name with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "not a measured epoch: %s" name)

(* Build the daemon's warm state.  With [?snapshot], try to restore the
   measured datasets from the snapshot file first: a complete snapshot
   skips the two-epoch measurement sweep entirely; a torn one (crash
   mid-write on a non-atomic filesystem) contributes its intact shards
   and only the missing (epoch, country) pairs are re-measured; a
   rejected one (other world parameters, other country slice) falls back
   to the full sweep. *)
(* Replay a churn transaction log into scores-only epochs ("e<k>"), one
   per committed epoch: a few floats per (layer, country) — cheap enough
   to keep every epoch addressable — answering score/ranking/delta while
   tally-backed queries keep needing a warmed epoch.  Scored epochs ride
   alongside the measured ones and stay out of snapshots. *)
let scored_epochs_of_log path =
  match Webdep_epoch.Log.load ~path with
  | Webdep_epoch.Log.Absent ->
      Printf.eprintf "webdep serve: epoch log %s absent, ignoring\n%!" path;
      []
  | Webdep_epoch.Log.Mismatch msg ->
      Printf.eprintf "webdep serve: epoch log %s unusable (%s), ignoring\n%!"
        path msg;
      []
  | Webdep_epoch.Log.Loaded log ->
      let module R = Webdep_epoch.Replay in
      let acc = ref [] in
      let observe r =
        let rows =
          List.map
            (fun l ->
              ( l,
                List.filter_map
                  (fun cc ->
                    match R.score r l cc with
                    | s ->
                        Some
                          ( cc,
                            { Serve.State.s;
                              hhi = R.hhi r l cc;
                              insularity = R.insularity r l cc } )
                    | exception Not_found -> None)
                  (R.countries r) ))
            [ D.Hosting; D.Dns; D.Ca; D.Tld ]
        in
        acc := (Printf.sprintf "e%d" (R.epoch r), rows) :: !acc
      in
      ignore (R.replay ~observe log);
      Printf.eprintf "webdep serve: epoch log %s: %d scored epochs (e%d..e%d)\n%!"
        path
        (List.length !acc)
        log.Webdep_epoch.Log.base_epoch log.Webdep_epoch.Log.head;
      List.rev !acc

let serve_state ?snapshot ?epoch_log ~seed ~c ?countries ?store () =
  let world = World.create ~c ~seed () in
  let fingerprint =
    Webdep_json.to_string
      (Webdep_json.Obj
         (Webdep_store.Fingerprint.to_meta (Measure.store_fingerprint world)))
  in
  let expected =
    match countries with Some l -> l | None -> World.countries world
  in
  let full_measure () =
    let ds23, ds25 =
      with_store world store @@ fun store ->
      ( Measure.measure_all ?countries ?store world,
        Measure.measure_all ~epoch:World.May_2025 ?countries ?store world )
    in
    [ ("2023-05", ds23); ("2025-05", ds25) ]
  in
  let datasets =
    match snapshot with
    | None -> full_measure ()
    | Some path -> (
        match Serve.Snapshot.load ~path ~fingerprint ~countries:expected with
        | Serve.Snapshot.Absent -> full_measure ()
        | Serve.Snapshot.Rejected ->
            Printf.eprintf
              "webdep serve: snapshot %s rejected (different world or \
               countries), remeasuring\n\
               %!"
              path;
            full_measure ()
        | Serve.Snapshot.Loaded shards ->
            Printf.eprintf "webdep serve: loaded snapshot %s (%d shards)\n%!"
              path (List.length shards);
            Serve.Snapshot.to_datasets ~epochs:serve_epochs ~countries:expected
              ~fill:(fun _ _ -> assert false (* complete by construction *))
              shards
        | Serve.Snapshot.Torn shards ->
            let have = Hashtbl.create 512 in
            List.iter
              (fun (s : Serve.Snapshot.shard) ->
                Hashtbl.replace have
                  (s.Serve.Snapshot.epoch, s.Serve.Snapshot.data.Webdep.Dataset.country)
                  ())
              shards;
            let remeasured =
              List.filter_map
                (fun name ->
                  let missing =
                    List.filter (fun cc -> not (Hashtbl.mem have (name, cc))) expected
                  in
                  if missing = [] then None
                  else
                    Some
                      ( name,
                        with_store world store @@ fun store ->
                        Measure.measure_all ~epoch:(measured_epoch name)
                          ~countries:missing ?store world ))
                serve_epochs
            in
            Printf.eprintf
              "webdep serve: snapshot %s torn; kept %d intact shards, \
               re-measured the rest\n\
               %!"
              path (List.length shards);
            Serve.Snapshot.to_datasets ~epochs:serve_epochs ~countries:expected
              ~fill:(fun epoch cc ->
                Webdep.Dataset.country_exn (List.assoc epoch remeasured) cc)
              shards)
  in
  let scored =
    match epoch_log with None -> [] | Some path -> scored_epochs_of_log path
  in
  let st = Serve.State.make ~fingerprint ~scored datasets in
  Serve.State.warm st;
  st

let epoch_log_arg =
  Arg.(value & opt (some string) None & info [ "epoch-log" ] ~docv:"FILE"
         ~doc:"Also load the churn transaction log $(docv) (see $(b,webdep \
               epochs)) and serve each committed epoch as a scores-only \
               epoch named $(b,eK): score, ranking and delta answer from \
               the replayed tables; list them with the $(b,epochs) query.")

let query_pos =
  Arg.(value & pos_all string [] & info [] ~docv:"QUERY"
         ~doc:"Query words: $(b,ping), $(b,score LAYER CC), \
               $(b,topk LAYER CC K), $(b,ranking LAYER K), \
               $(b,delta LAYER CC [OLD NEW]), $(b,epochs) or $(b,shutdown).")

(* Render the response; an [Error] answer (unknown epoch, scores-only
   epoch, missing country) is an operator-visible failure, not a result,
   so it goes to stderr and exits 1. *)
let finish_query resp =
  match resp with
  | Serve.Protocol.Error msg ->
      Printf.eprintf "webdep query: %s\n" msg;
      exit 1
  | _ -> print_string (Serve.Protocol.render resp)

let run_query () epoch connect timeout max_retries seed c countries store
    epoch_log words =
  match Serve.Protocol.parse_query ~epoch words with
  | Error msg ->
      Printf.eprintf "webdep query: %s\n" msg;
      exit 1
  | Ok req -> (
      match connect with
      | Some spec -> (
          match Serve.Client.call ~max_retries ~timeout_s:timeout spec req with
          | Ok resp -> finish_query resp
          | Error msg ->
              Printf.eprintf "webdep query: daemon at %s unavailable: %s\n"
                spec msg;
              exit 5)
      | None ->
          let st =
            serve_state ?epoch_log ~seed ~c
              ?countries:(normalize_countries countries) ?store ()
          in
          finish_query (Serve.State.answer st req))

let connect_arg =
  Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"ADDR"
         ~doc:"Send the query to a running $(b,webdep serve) daemon at \
               $(docv) (Unix-socket path or $(b,tcp:PORT)) instead of \
               measuring locally.  Answers are byte-identical either way.")

let query_timeout_arg =
  Arg.(value & opt float 10.0 & info [ "timeout" ] ~docv:"SECONDS"
         ~doc:"Total deadline for a $(b,--connect) query, retries and \
               backoff included.")

let query_retries_arg =
  Arg.(value & opt int 4 & info [ "max-retries" ] ~docv:"N"
         ~doc:"Retries after the first attempt when the daemon refuses \
               the connection, sheds the request ($(i,overloaded)), is \
               draining, or resets mid-reply — e.g. while a supervised \
               daemon restarts.  Backoff is exponential with \
               deterministic jitter.")

let query_cmd =
  let doc = "Answer one dependence query, locally or against a daemon." in
  let exits =
    Cmd.Exit.info 5
      ~doc:"the retry budget ($(b,--timeout)/$(b,--max-retries)) was \
            exhausted without a daemon reply."
    :: Cmd.Exit.defaults
  in
  Cmd.v (Cmd.info "query" ~doc ~exits)
    Term.(const run_query $ obs_term $ epoch_arg $ connect_arg $ query_timeout_arg
          $ query_retries_arg $ seed_arg $ c_arg $ countries_arg $ store_term
          $ epoch_log_arg $ query_pos)

let run_serve () listen seed c countries store max_queue batch_max par_threshold
    snapshot epoch_log supervise restart_limit restart_window =
  if max_queue < 1 || batch_max < 1 then begin
    Printf.eprintf "webdep serve: --max-queue and --batch-max must be >= 1\n";
    exit 124
  end;
  let serve_child () =
    (* Deterministic crash switch for exercising the supervisor's
       crash-loop detector from the outside (CI). *)
    (match Sys.getenv_opt "WEBDEP_SERVE_CRASH_ON_START" with
    | Some v when v <> "" && v <> "0" ->
        prerr_endline "webdep serve: WEBDEP_SERVE_CRASH_ON_START set, aborting";
        exit 70
    | _ -> ());
    let st =
      serve_state ?snapshot ?epoch_log ~seed ~c
        ?countries:(normalize_countries countries) ?store ()
    in
    let cfg = Serve.Server.config ~max_queue ~batch_max ~par_threshold listen in
    Serve.Server.run ~handle_signals:true ?snapshot
      ~on_ready:(fun () ->
        Printf.printf
          "webdep serve: listening on %s (seed %d, c %d, epochs 2023-05 2025-05)\n"
          listen seed c;
        flush stdout)
      cfg st
  in
  if supervise then begin
    (* Fork before any state (and hence any domain) exists: OCaml 5
       cannot fork a process with running domains, so the measurement
       sweep and the Webdep_par pool belong to the child. *)
    let policy =
      { Serve.Supervisor.default_policy with
        restart_limit; window_s = restart_window }
    in
    exit (Serve.Supervisor.supervise ~policy serve_child)
  end
  else serve_child ()

let serve_cmd =
  let doc =
    "Long-running dependence-query daemon: batched answers over a \
     length-prefixed binary protocol with response caching and load shedding."
  in
  let man =
    [ `S Manpage.s_description;
      `P "Loads the measurement store (or measures from scratch), \
          pre-materializes per-country tallies for both epochs, then \
          answers queries on a Unix or loopback-TCP socket.  Requests \
          are drained and answered in batches; past $(b,--max-queue) \
          pending requests the daemon replies $(i,overloaded) \
          immediately instead of queueing without bound.  Connections \
          whose first byte is '{' speak newline-delimited JSON (debug \
          mode) instead of binary frames.";
      `P "Send the $(b,shutdown) query (e.g. $(b,webdep query --connect \
          ADDR shutdown)) for a clean shutdown, or SIGTERM/SIGINT for a \
          graceful drain: in-flight batches are answered, late requests \
          get a $(i,draining) reply, and with $(b,--snapshot) the warm \
          state is persisted before exit.";
      `P "With $(b,--snapshot FILE), the daemon restores its warm state \
          from $(docv) on start (checksummed, torn tails recovered shard \
          by shard; a snapshot from different world parameters is \
          rejected and remeasured) and rewrites it atomically on drain.  \
          With $(b,--supervise), a parent process restarts the daemon \
          after a crash with exponential backoff and gives up (exit 6) \
          when it crash-loops." ]
  in
  let listen =
    Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"ADDR"
           ~doc:"Listen address: a Unix-socket path or $(b,tcp:PORT) \
                 (loopback only).")
  in
  let max_queue =
    Arg.(value & opt int 1024 & info [ "max-queue" ] ~docv:"N"
           ~doc:"Admission-queue depth; further requests get an immediate \
                 $(i,overloaded) reply (load shedding).")
  in
  let batch_max =
    Arg.(value & opt int 256 & info [ "batch-max" ] ~docv:"N"
           ~doc:"Requests answered per batch.")
  in
  let par_threshold =
    Arg.(value & opt int 64 & info [ "par-threshold" ] ~docv:"N"
           ~doc:"Cache misses in a batch before answering fans out over \
                 the --jobs worker pool.")
  in
  let snapshot =
    Arg.(value & opt (some string) None & info [ "snapshot" ] ~docv:"FILE"
           ~doc:"Durable warm-state snapshot: restore from $(docv) on \
                 start (milliseconds instead of the two-epoch sweep) and \
                 rewrite it atomically on graceful drain or shutdown.")
  in
  let supervise =
    Arg.(value & flag & info [ "supervise" ]
           ~doc:"Run the daemon in a supervised child process: restart it \
                 on abnormal exit with exponential backoff, give up with \
                 exit 6 after $(b,--restart-limit) abnormal exits within \
                 $(b,--restart-window) seconds.")
  in
  let restart_limit =
    Arg.(value & opt int 5 & info [ "restart-limit" ] ~docv:"N"
           ~doc:"Abnormal exits tolerated inside the crash-loop window \
                 before the supervisor gives up.")
  in
  let restart_window =
    Arg.(value & opt float 30.0 & info [ "restart-window" ] ~docv:"SECONDS"
           ~doc:"Sliding window for crash-loop detection.")
  in
  let exits =
    Cmd.Exit.info 6
      ~doc:"the $(b,--supervise) parent detected a crash loop and stopped \
            restarting the daemon."
    :: Cmd.Exit.defaults
  in
  Cmd.v (Cmd.info "serve" ~doc ~man ~exits)
    Term.(const run_serve $ obs_term $ listen $ seed_arg $ c_arg $ countries_arg
          $ store_term $ max_queue $ batch_max $ par_threshold $ snapshot
          $ epoch_log_arg $ supervise $ restart_limit $ restart_window)

(* --- epochs --------------------------------------------------------------------------- *)

(* Multi-epoch churn streams: build a synthetic many-epoch trajectory
   from the two measured snapshots (2023 baseline, 2025 donor pool),
   persist it as an append-only churn transaction log, replay it in
   O(churn) per epoch and print per-country S trends.  --verify checks
   the replayed head bit-for-bit against a cold recomputation of the
   materialized dataset; --compact collapses old epochs into a new
   baseline without changing any replayed score. *)

module Epoch = Webdep_epoch

let file_size path = (Unix.stat path).Unix.st_size

let run_epochs () log_path n_epochs churn layer verify compact_keep rebuild
    seed c countries store =
  let countries = normalize_countries countries in
  if churn <= 0.0 || churn >= 1.0 then begin
    Printf.eprintf "webdep epochs: --churn must be within (0, 1) (got %g)\n" churn;
    exit 124
  end;
  if rebuild && Sys.file_exists log_path then Sys.remove log_path;
  if not (Sys.file_exists log_path) then begin
    let world = World.create ~c ~seed () in
    let ds23, ds25 =
      with_store world store @@ fun store ->
      ( Measure.measure_all ?countries ?store world,
        Measure.measure_all ~epoch:World.May_2025 ?countries ?store world )
    in
    let base = List.map (D.country_exn ds23) (D.countries ds23) in
    let donors =
      List.map
        (fun cc -> (cc, Array.of_list (D.country_exn ds25 cc).D.sites))
        (D.countries ds25)
    in
    let events =
      Epoch.Synth.generate ~seed ~fraction:churn ~epochs:n_epochs ~base_epoch:0
        ~base ~donors
    in
    Epoch.Log.create ~path:log_path
      ~meta:
        [ ("seed", Webdep_json.Int seed);
          ("c", Webdep_json.Int c);
          ("churn", Webdep_json.Float churn) ]
      ~base_epoch:0 ~base ();
    (* Epoch-at-a-time appends — the same O(churn) path a live feed
       would use, not one big rewrite. *)
    List.iter
      (fun (ev : Epoch.Log.event) ->
        Epoch.Log.append ~path:log_path ~epoch:ev.Epoch.Log.epoch
          ev.Epoch.Log.changes)
      events;
    Printf.printf "built %s: %d-country baseline + %d epochs at %.1f%% churn\n"
      log_path (List.length base) n_epochs (100.0 *. churn)
  end;
  match Epoch.Log.load ~path:log_path with
  | Epoch.Log.Absent ->
      Printf.eprintf "webdep epochs: log %s does not exist\n" log_path;
      exit 1
  | Epoch.Log.Mismatch msg ->
      Printf.eprintf "webdep epochs: log %s unusable: %s\n" log_path msg;
      exit 1
  | Epoch.Log.Loaded log ->
      if log.Epoch.Log.dropped then
        Printf.eprintf
          "webdep epochs: %s: torn or uncommitted tail dropped, head is e%d\n"
          log_path log.Epoch.Log.head;
      Printf.printf "log %s: base e%d, head e%d, %d committed epochs, layer %s\n"
        log_path log.Epoch.Log.base_epoch log.Epoch.Log.head
        (List.length log.Epoch.Log.events)
        (Scores.layer_name layer);
      let head, trend = Epoch.Trend.of_log log layer in
      print_string (Epoch.Trend.render trend);
      if verify then begin
        (* Bit-identity of the replayed head against a cold sweep of the
           materialized dataset, all four layers. *)
        let ds = D.of_country_data (Epoch.Replay.materialize head) in
        let mismatches = ref 0 in
        List.iter
          (fun l ->
            List.iter
              (fun (cc, cold) ->
                let warm = Epoch.Replay.score head l cc in
                if Int64.bits_of_float warm <> Int64.bits_of_float cold then begin
                  incr mismatches;
                  Printf.eprintf "verify: %s %s replay %.17g <> cold %.17g\n"
                    (Scores.layer_name l) cc warm cold
                end)
              (Webdep.Metrics.all_scores ds l))
          [ D.Hosting; D.Dns; D.Ca; D.Tld ];
        if !mismatches > 0 then begin
          Printf.eprintf "webdep epochs: %d score mismatches at head e%d\n"
            !mismatches log.Epoch.Log.head;
          exit 2
        end;
        Printf.printf
          "verify: head e%d bit-identical to cold recompute (4 layers, %d countries)\n"
          log.Epoch.Log.head
          (List.length (Epoch.Replay.countries head))
      end;
      (match compact_keep with
      | None -> ()
      | Some keep ->
          let raw_bytes = file_size log_path in
          let compacted = Epoch.Replay.compact log ~keep_last:keep in
          Epoch.Log.write ~path:log_path compacted;
          Printf.printf
            "compacted to base e%d + %d epochs: %d -> %d bytes\n"
            compacted.Epoch.Log.base_epoch
            (List.length compacted.Epoch.Log.events)
            raw_bytes (file_size log_path))

let epochs_cmd =
  let doc =
    "Build, replay, verify and compact a multi-epoch churn transaction log."
  in
  let man =
    [ `S Manpage.s_description;
      `P "Derives a many-epoch churn trajectory from the two measured \
          snapshots: the 2023 sweep seeds the baseline and each epoch \
          retires a deterministic fraction of every country's sites, \
          admitting replacements drawn from the 2025 sweep.  The log is \
          an append-only JSON-lines segment (dictionary-compressed \
          baseline, per-epoch churn records, commit markers) that \
          recovers from torn tails and half-appended epochs.";
      `P "Replay folds each epoch through the per-layer incremental \
          tallies, so advancing an epoch costs O(churn) rather than a \
          full re-sweep, and prints per-country score trends \
          (first/last S, least-squares slope, rank churn per \
          transition).  $(b,--verify) recomputes the head cold and \
          demands bit-identity; $(b,--compact) collapses history into \
          a new baseline, keeping replayed scores unchanged." ]
  in
  let log_arg =
    Arg.(required & opt (some string) None & info [ "log" ] ~docv:"FILE"
           ~doc:"Churn log file; built from the measured snapshots when \
                 absent, replayed when present.")
  in
  let epochs_n =
    Arg.(value & opt int 12 & info [ "epochs" ] ~docv:"N"
           ~doc:"Epochs to synthesize when building a fresh log.")
  in
  let churn_arg =
    Arg.(value & opt float 0.02 & info [ "churn" ] ~docv:"F"
           ~doc:"Per-epoch churn fraction of each country's toplist when \
                 building a fresh log.")
  in
  let verify_flag =
    Arg.(value & flag & info [ "verify" ]
           ~doc:"Recompute the replayed head cold (materialize + full \
                 sweep) and fail (exit 2) unless every per-country score \
                 in all four layers is bit-identical.")
  in
  let compact_arg =
    Arg.(value & opt (some int) None & info [ "compact" ] ~docv:"K"
           ~doc:"After replaying, collapse all but the last $(docv) \
                 epochs into the baseline and rewrite the log \
                 atomically.")
  in
  let rebuild_flag =
    Arg.(value & flag & info [ "rebuild" ]
           ~doc:"Discard an existing log file and synthesize it afresh.")
  in
  let exits =
    Cmd.Exit.info 2
      ~doc:"$(b,--verify) found a replayed score that differs from the \
            cold recomputation."
    :: Cmd.Exit.defaults
  in
  Cmd.v (Cmd.info "epochs" ~doc ~man ~exits)
    Term.(const run_epochs $ obs_term $ log_arg $ epochs_n $ churn_arg
          $ layer_arg $ verify_flag $ compact_arg $ rebuild_flag $ seed_arg
          $ c_arg $ countries_arg $ store_term)

(* --- countries ------------------------------------------------------------------------ *)

let run_countries () =
  List.iter
    (fun c ->
      Printf.printf "%-4s %-28s %-20s %s\n" c.Webdep_geo.Country.code c.Webdep_geo.Country.name
        (Webdep_geo.Region.subregion_name c.Webdep_geo.Country.subregion)
        (Webdep_geo.Region.continent_code (Webdep_geo.Country.continent c)))
    Webdep_geo.Country.all

let countries_cmd =
  let doc = "List the 150 dataset countries (Appendix E)." in
  Cmd.v (Cmd.info "countries" ~doc) Term.(const run_countries $ obs_term)

let () =
  let doc = "quantify centralization and regionalization of web infrastructure" in
  let info = Cmd.info "webdep" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ scores_cmd; report_cmd; insularity_cmd; classify_cmd; usage_cmd;
            longitudinal_cmd; validate_cmd; paper_cmd; countries_cmd; export_cmd;
            language_cmd; redundancy_cmd; tld_cmd; report_md_cmd; profile_cmd;
            scale_cmd; serve_cmd; query_cmd; epochs_cmd ]))
