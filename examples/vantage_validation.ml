(* The §3.4 vantage-point validation: centralization computed from the
   single home vantage (the paper's Stanford server, modelled as a US
   vantage) against scores recomputed through RIPE-Atlas-style probes in
   each country.

   Run with: dune exec examples/vantage_validation.exe *)

module World = Webdep_worldgen.World
module Measure = Webdep_pipeline.Measure

let () =
  let c = 2000 in
  let countries =
    [ "TH"; "ID"; "IR"; "US"; "TM"; "CZ"; "RU"; "SK"; "JP"; "DE"; "FR"; "PL"; "KG"; "BG";
      "LT"; "TW"; "BR"; "GB"; "NG"; "AF"; "IN"; "MX"; "AU"; "SE"; "GR" ]
  in
  Printf.printf "home-vantage measurement of %d countries at c=%d...\n%!"
    (List.length countries) c;
  let world = World.create ~c ~seed:2024 () in
  let ds = Measure.measure_all ~countries world in
  let home = List.map (fun cc -> (cc, Webdep.Metrics.centralization ds Hosting cc)) countries in
  Printf.printf "probe-based remeasurement (5 probes per country)...\n%!";
  let probes = Measure.measure_with_probes ~per_country_probes:5 ~seed:7 world countries in
  let v = Webdep.Validate.correlate ~home ~probes in
  Printf.printf "\nrho(home, probes) = %.4f (paper: 0.96)  max gap = %.4f\n\n"
    v.Webdep.Validate.rho.Webdep_stats.Correlation.rho v.Webdep.Validate.max_gap;
  Printf.printf "%-4s %12s %12s %8s\n" "cc" "S home" "S probes" "gap";
  List.iter
    (fun (cc, h, p) -> Printf.printf "%-4s %12.4f %12.4f %8.4f\n" cc h p (Float.abs (h -. p)))
    v.Webdep.Validate.pairs;
  print_endline
    "\nThe residual gaps come from multi-CDN sites answering with their\n\
     secondary provider from some vantages — the same effect that keeps\n\
     the paper's RIPE correlation below 1.0."
