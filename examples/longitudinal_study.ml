(* The §5.4 longitudinal experiment: measure the May-2023 world and the
   May-2025 world, compare centralization, Cloudflare adoption and
   toplist churn.

   Run with: dune exec examples/longitudinal_study.exe *)

module World = Webdep_worldgen.World
module Measure = Webdep_pipeline.Measure
module L = Webdep.Longitudinal

let () =
  let c = 2000 in
  let countries =
    [ "BR"; "RU"; "TM"; "BY"; "UZ"; "MM"; "US"; "TH"; "DE"; "FR"; "JP"; "IN"; "GB"; "PL";
      "KZ"; "CZ"; "IR"; "NG"; "MX"; "AU" ]
  in
  Printf.printf "measuring %d countries at c=%d in both epochs...\n%!"
    (List.length countries) c;
  let world = World.create ~c ~seed:2024 () in
  let ds23 = Measure.measure_all ~countries world in
  let ds25 = Measure.measure_all ~epoch:World.May_2025 ~countries world in
  let cmp = L.compare ~focus:"Cloudflare" ~old_ds:ds23 ~new_ds:ds25 Hosting in

  Printf.printf "\nS(2023) vs S(2025): rho = %.3f (paper: 0.98)\n"
    cmp.L.rho.Webdep_stats.Correlation.rho;
  Printf.printf "mean toplist Jaccard: %.3f (paper: ~0.37)\n" cmp.L.mean_jaccard;
  (match cmp.L.focus_mean_delta with
  | Some d -> Printf.printf "mean Cloudflare change: %+.1f pts (paper: +3.8)\n" (100.0 *. d)
  | None -> ());

  print_endline "\nlargest movers:";
  Printf.printf "%-4s %9s %9s %8s %9s %s\n" "cc" "S 2023" "S 2025" "delta" "jaccard" "cloudflare";
  List.iteri
    (fun i d ->
      if i < 8 then
        Printf.printf "%-4s %9.4f %9.4f %+8.4f %9.3f %+9.1f pts\n" d.L.country d.L.old_score
          d.L.new_score d.L.delta d.L.jaccard
          (match d.L.top_entity_delta with Some (_, x) -> 100.0 *. x | None -> 0.0))
    cmp.L.deltas;

  let br = List.find (fun d -> d.L.country = "BR") cmp.L.deltas in
  let ru = List.find (fun d -> d.L.country = "RU") cmp.L.deltas in
  Printf.printf
    "\nBrazil: %.4f -> %.4f (paper: 0.1446 -> 0.2354, driven by Cloudflare adoption)\n"
    br.L.old_score br.L.new_score;
  Printf.printf "Russia: %.4f -> %.4f (paper: 0.0554 -> 0.0499, moving onto local providers)\n"
    ru.L.old_score ru.L.new_score
