(* Full dependence report for one country: generate the calibrated
   world, run the §3.4 measurement pipeline, and print centralization,
   insularity, top providers and cross-border dependence for all four
   layers.

   Run with: dune exec examples/country_report.exe -- [CC] [c]
   (default country TH, toplist size 3000) *)

module World = Webdep_worldgen.World
module Measure = Webdep_pipeline.Measure
module D = Webdep.Dataset
module Scores = Webdep_reference.Paper_scores

let () =
  let cc = if Array.length Sys.argv > 1 then String.uppercase_ascii Sys.argv.(1) else "TH" in
  let c = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 3000 in
  (match Webdep_geo.Country.of_code cc with
  | None ->
      Printf.eprintf "unknown country code %s (use one of the 150 dataset countries)\n" cc;
      exit 1
  | Some country ->
      Printf.printf "== dependence report: %s (%s) ==\n" country.Webdep_geo.Country.name cc;
      Printf.printf "   subregion: %s, toplist size: %d\n\n"
        (Webdep_geo.Region.subregion_name country.Webdep_geo.Country.subregion)
        c);
  let world = World.create ~c ~seed:2024 () in
  let ds = Measure.measure_all ~countries:[ cc ] world in
  List.iter
    (fun layer ->
      let s = Webdep.Metrics.centralization ds layer cc in
      let paper = Scores.score_exn layer cc in
      let insularity = Webdep.Regionalization.insularity ds layer cc in
      Printf.printf "--- %s ---\n" (String.uppercase_ascii (Scores.layer_name layer));
      Printf.printf "  centralization S = %.4f (paper: %.4f, rank %d/150)  [%s]\n" s paper
        (Option.get (Scores.rank layer cc))
        (Webdep_emd.Centralization.doj_band_to_string (Webdep_emd.Centralization.doj_band s));
      Printf.printf "  insularity       = %.1f%%\n" (100.0 *. insularity);
      Printf.printf "  providers        = %d (top 10 cover %.1f%%)\n"
        (Webdep.Metrics.provider_count ds layer cc)
        (100.0 *. Webdep.Metrics.top_n_share ds layer cc 10);
      print_endline "  top 5 providers:";
      List.iteri
        (fun i ((e : D.entity), k) ->
          if i < 5 then
            Printf.printf "    %d. %-28s [%s] %5.1f%%\n" (i + 1) e.D.name e.D.country
              (100.0 *. float_of_int k /. float_of_int c))
        (D.counts_by_entity ds layer cc);
      print_endline "  dependence by provider home country:";
      List.iteri
        (fun i (home, share) ->
          if i < 5 then Printf.printf "    %-3s %5.1f%%\n" home (100.0 *. share))
        (Webdep.Regionalization.foreign_dependence ds layer cc);
      print_endline "")
    Scores.all_layers;
  (* Toplist-sampling uncertainty on the hosting score. *)
  let lo, hi = Webdep.Metrics.centralization_interval ~seed:2024 ds Hosting cc in
  Printf.printf "--- uncertainty ---\n  hosting S 95%% bootstrap CI: [%.4f, %.4f]\n\n" lo hi;
  (* Content languages and the TLD picture. *)
  print_endline "--- content languages ---";
  List.iteri
    (fun i (lang, share) ->
      if i < 5 then Printf.printf "  %-4s %5.1f%%\n" lang (100.0 *. share))
    (Webdep.Language_analysis.language_breakdown ds cc);
  print_endline "\n--- TLD categories ---";
  List.iter
    (fun (cat, share) ->
      Printf.printf "  %-16s %5.1f%%\n" (Webdep.Tld_analysis.category_name cat)
        (100.0 *. share))
    (Webdep.Tld_analysis.breakdown ds cc);
  match Webdep.Tld_analysis.uses_external_over_local ds cc with
  | Some tld -> Printf.printf "  note: %s outranks the local ccTLD\n" tld
  | None -> ()
