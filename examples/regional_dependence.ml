(* The paper's §5.3.3 regional case studies, reproduced: CIS countries'
   dependence on Russian providers, francophone dependence on France,
   Slovakia on Czechia, Afghanistan on Iran — none of which are visible
   from centralization alone.

   Run with: dune exec examples/regional_dependence.exe *)

module World = Webdep_worldgen.World
module Measure = Webdep_pipeline.Measure
module R = Webdep.Regionalization

let case_studies =
  [ ("Russia and the CIS", "RU", [ "TM"; "TJ"; "KG"; "KZ"; "BY"; "UA"; "LT"; "EE" ]);
    ("France and former colonies / territories", "FR",
     [ "RE"; "GP"; "MQ"; "BF"; "CI"; "ML"; "SN" ]);
    ("Czechia and Slovakia", "CZ", [ "SK" ]);
    ("Iran and Afghanistan", "IR", [ "AF" ]) ]

let () =
  let c = 3000 in
  let world = World.create ~c ~seed:2024 () in
  let countries =
    List.sort_uniq compare
      (List.concat_map (fun (_, hub, deps) -> hub :: deps) case_studies)
  in
  Printf.printf "measuring %d countries at c=%d ...\n\n" (List.length countries) c;
  let ds = Measure.measure_all ~countries world in
  List.iter
    (fun (title, hub, deps) ->
      Printf.printf "== %s ==\n" title;
      Printf.printf "%-4s %-10s %-12s %s\n" "cc" "S(hosting)" "insularity" ("share on " ^ hub ^ " providers");
      List.iter
        (fun cc ->
          let s = Webdep.Metrics.centralization ds Hosting cc in
          let ins = R.insularity ds Hosting cc in
          let dep =
            Option.value ~default:0.0
              (List.assoc_opt hub (R.foreign_dependence ds Hosting cc))
          in
          Printf.printf "%-4s %-10.4f %-12.3f %5.1f%%\n" cc s ins (100.0 *. dep))
        deps;
      print_endline "")
    case_studies;
  (* The paper's framing: low centralization does not mean independence.
     Turkmenistan is among the least centralized countries yet one third
     of its web sits on Russian providers. *)
  let tm_s = Webdep.Metrics.centralization ds Hosting "TM" in
  let tm_ru =
    Option.value ~default:0.0 (List.assoc_opt "RU" (R.foreign_dependence ds Hosting "TM"))
  in
  Printf.printf
    "Turkmenistan: S = %.4f (near the least centralized) yet %.0f%% of its top\n\
     websites are hosted by Russian providers — regionalization that the\n\
     centralization score alone cannot surface.\n"
    tm_s (100.0 *. tm_ru)
