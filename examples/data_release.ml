(* Data release: measure the world and publish the analysis artifacts the
   paper releases — per-layer scores, insularity and provider-usage CSVs,
   plus a paper-style Markdown report.

   Run with: dune exec examples/data_release.exe -- [out-dir] *)

module World = Webdep_worldgen.World
module Measure = Webdep_pipeline.Measure
module Scores = Webdep_reference.Paper_scores

let () =
  let out_dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "webdep-data" in
  let c = 1500 in
  Printf.printf "measuring 150 countries at c=%d...\n%!" c;
  let world = World.create ~c ~seed:2024 () in
  let ds = Measure.measure_all world in
  (try Unix.mkdir out_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let put file doc =
    let path = Filename.concat out_dir file in
    Webdep.Export.write_file path doc;
    Printf.printf "wrote %-34s (%d bytes)\n" path (String.length doc)
  in
  List.iter
    (fun layer ->
      let name = Scores.layer_name layer in
      put (Printf.sprintf "scores_%s.csv" name) (Webdep.Export.scores_csv ds layer);
      put (Printf.sprintf "insularity_%s.csv" name) (Webdep.Export.insularity_csv ds layer))
    Scores.all_layers;
  put "usage_hosting.csv" (Webdep.Export.usage_csv ds Hosting);
  put "distribution_hosting_TH.csv" (Webdep.Export.distribution_csv ds Hosting "TH");
  put "REPORT.md" (Webdep.Report_md.generate ds);
  (* Round-trip sanity: the released scores parse back to what we measured. *)
  let parsed =
    Webdep.Export.scores_of_csv (Webdep.Export.scores_csv ds Hosting)
  in
  Printf.printf "\nround-trip check: %d hosting scores re-parsed, first row %s = %.4f\n"
    (List.length parsed)
    (fst (List.hd parsed))
    (snd (List.hd parsed))
