(* The §3.1 metric-design walkthrough: demonstrate, with numbers, the four
   requirements the paper sets for a centralization metric and why the
   EMD formulation meets them where the alternatives fail.

   Run with: dune exec examples/metric_design.exe *)

module Dist = Webdep_emd.Dist
module C = Webdep_emd.Centralization
module Div = Webdep_emd.Divergence
module B = Webdep_emd.Baselines

let line () = print_endline (String.make 72 '-')

let () =
  print_endline "The paper's four requirements for a centralization metric (3.1)\n";

  (* Requirement 1: account for both provider count and distribution. *)
  line ();
  print_endline "R1: number of providers AND their shares, in one number\n";
  let few_equal = Dist.of_counts (Array.make 4 25) in
  let many_equal = Dist.of_counts (Array.make 100 1) in
  let few_skewed = Dist.of_counts [| 85; 5; 5; 5 |] in
  Printf.printf "  4 equal providers:    S = %.4f\n" (C.score few_equal);
  Printf.printf "  100 equal providers:  S = %.4f   (provider count matters)\n"
    (C.score many_equal);
  Printf.printf "  4 skewed providers:   S = %.4f   (shares matter)\n" (C.score few_skewed);
  Printf.printf "  Gini sees no difference between the equal cases: %.3f vs %.3f\n"
    (B.gini few_equal) (B.gini many_equal);

  (* Requirement 2: handle highly skewed, barely-overlapping comparisons. *)
  line ();
  print_endline "\nR2: meaningful distance for skewed, disjoint distributions\n";
  let skewed = [| 0.9; 0.1 |] and flat = [| 0.6; 0.4 |] in
  let reference = Array.append [| 0.0; 0.0 |] (Array.make 8 0.125) in
  let pad v = fst (Div.align v reference) in
  Printf.printf "  Hellinger vs disjoint reference: %.3f and %.3f (saturated)\n"
    (Div.hellinger (pad skewed) reference)
    (Div.hellinger (pad flat) reference);
  Printf.printf "  S ranks them: %.3f vs %.3f\n"
    (C.score_of_counts [| 9; 1 |])
    (C.score_of_counts [| 6; 4 |]);

  (* Requirement 3: fair comparison independent of the providers. *)
  line ();
  print_endline "\nR3: comparisons depend on the shape, not on who the providers are\n";
  let a = C.score_of_counts [| 6; 3; 1 |] in
  let b = C.score_of_counts [| 60; 30; 10 |] in
  Printf.printf "  counts (6,3,1) at C=10:    S = %.4f\n" a;
  Printf.printf "  counts (60,30,10) at C=100: S = %.4f (same shares; only the 1/C\n" b;
  Printf.printf "  reference-granularity term moves: delta = %.4f)\n" (b -. a);

  (* Requirement 4: the work interpretation and quadratic weighting. *)
  line ();
  print_endline "\nR4: 'work to decentralize' — large providers weigh quadratically\n";
  List.iter
    (fun top ->
      let rest = 100 - top in
      let counts = Array.append [| top |] (Array.make rest 1) in
      Printf.printf "  top provider %3d%% -> S = %.4f\n" top (C.score_of_counts counts))
    [ 10; 20; 40; 80 ];
  Printf.printf
    "\n  Doubling the top share quadruples its contribution: the providers that\n\
    \  most shape users' experience dominate the metric, as required.\n";

  (* And the top-N heuristic the requirements replace. *)
  line ();
  print_endline "\nThe top-N heuristic these requirements replace (Figure 1):\n";
  let az = Dist.of_counts (Array.append [| 42; 5; 4; 4; 4 |] (Array.make 41 1)) in
  let hk = Dist.of_counts (Array.append [| 33; 12; 5; 5; 4 |] (Array.make 41 1)) in
  Printf.printf "  AZ-like: top-5 = %.0f%%, S = %.4f\n" (100.0 *. B.top_n az 5) (C.score az);
  Printf.printf "  HK-like: top-5 = %.0f%%, S = %.4f\n" (100.0 *. B.top_n hk 5) (C.score hk);
  print_endline "  identical under top-5; distinguishable under S."
