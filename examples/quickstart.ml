(* Quickstart: the metric toolkit on plain numbers — no simulation.

   Run with: dune exec examples/quickstart.exe *)

module Dist = Webdep_emd.Dist
module C = Webdep_emd.Centralization
module Correlation = Webdep_stats.Correlation

let () =
  print_endline "== webdep quickstart ==";
  print_endline "";

  (* 1. Centralization scores from provider counts.  Imagine a country
     whose top sites spread over four hosting providers. *)
  let concentrated = [| 60; 20; 15; 5 |] in
  let diffuse = [| 30; 28; 22; 20 |] in
  Printf.printf "S(concentrated 60/20/15/5)  = %.4f  (%s)\n"
    (C.score_of_counts concentrated)
    (C.doj_band_to_string (C.doj_band (C.score_of_counts concentrated)));
  Printf.printf "S(diffuse      30/28/22/20) = %.4f  (%s)\n"
    (C.score_of_counts diffuse)
    (C.doj_band_to_string (C.doj_band (C.score_of_counts diffuse)));
  print_endline "";

  (* 2. The top-N heuristic the paper critiques: both countries below
     have the same top-5 share, yet different S (Figure 1's point). *)
  let az = Dist.of_counts (Array.append [| 42; 5; 4; 4; 4 |] (Array.make 41 1)) in
  let hk = Dist.of_counts (Array.append [| 33; 12; 5; 5; 4 |] (Array.make 41 1)) in
  Printf.printf "AZ-like: top-5 = %.2f  S = %.4f\n" (Dist.top_share az 5) (C.score az);
  Printf.printf "HK-like: top-5 = %.2f  S = %.4f   <- same top-5, lower S\n"
    (Dist.top_share hk 5) (C.score hk);
  print_endline "";

  (* 3. S is EMD from the fully decentralized reference; the general
     transportation solver agrees with the closed form. *)
  let d = Dist.of_counts [| 5; 3; 2 |] in
  Printf.printf "closed form S = %.4f, via transportation solver = %.4f\n"
    (C.score d) (C.via_transport d);
  print_endline "";

  (* 4. Correlation with significance, as used throughout the paper. *)
  let xs = [| 0.35; 0.25; 0.18; 0.12; 0.08; 0.05 |] in
  let ys = [| 0.33; 0.27; 0.15; 0.14; 0.09; 0.03 |] in
  let r = Correlation.pearson xs ys in
  Printf.printf "pearson rho = %.3f (p = %.4f, %s correlation)\n" r.Correlation.rho
    r.Correlation.p_value
    (Correlation.strength_to_string (Correlation.strength r.Correlation.rho));
  print_endline "";

  (* 5. The paper's reference scores ship with the library. *)
  Printf.printf "Paper: S(hosting, Thailand) = %.4f, rank %d of 150\n"
    (Webdep_reference.Paper_scores.score_exn Hosting "TH")
    (Option.get (Webdep_reference.Paper_scores.rank Hosting "TH"))
