(* Provider classification (§5.2, Table 1): usage and endemicity ratio
   per provider, affinity-propagation clustering, and the 8-class
   taxonomy — plus the usage-curve contrast of Figure 4 (a global
   provider vs a regional one).

   Run with: dune exec examples/provider_classes.exe *)

module World = Webdep_worldgen.World
module Measure = Webdep_pipeline.Measure
module R = Webdep.Regionalization
module Classify = Webdep.Classify

let () =
  let c = 1000 in
  Printf.printf "measuring 150 countries at c=%d (reduced for example speed)...\n%!" c;
  let world = World.create ~c ~seed:2024 () in
  let ds = Measure.measure_all world in

  (* Figure 4: usage vs endemicity for a global and a regional provider. *)
  print_endline "\n== usage curves (Figure 4) ==";
  List.iter
    (fun name ->
      let u = R.usage_curve ds Hosting ~name in
      Printf.printf "%-16s usage U = %7.1f   peak = %5.1f%%   endemicity ratio = %.3f\n" name
        u.R.usage u.R.curve.(0) u.R.endemicity_ratio)
    [ "Cloudflare"; "Amazon"; "OVH"; "Beget LLC"; "SuperHosting.BG" ];
  print_endline "  (low ratio = global reach; high ratio = regional concentration)";

  (* Table 1: the classes. *)
  print_endline "\n== provider classes (Table 1) ==";
  let cl = Classify.classify ds Hosting in
  Printf.printf "affinity propagation raw clusters: %d\n" cl.Classify.raw_clusters;
  Printf.printf "%-10s %8s   example\n" "class" "count";
  List.iter
    (fun (k, n) ->
      let example =
        List.find_map
          (fun ((s : R.usage_stats), k') ->
            if k' = k then Some s.R.entity.Webdep.Dataset.name else None)
          cl.Classify.providers
      in
      Printf.printf "%-10s %8d   %s\n" (Classify.klass_name k) n
        (Option.value ~default:"-" example))
    cl.Classify.table;

  (* Figure 7: how classes split a few contrasting countries. *)
  print_endline "\n== class shares by country (Figure 7 extract) ==";
  Printf.printf "%-4s" "";
  List.iter (fun k -> Printf.printf " %9s" (Classify.klass_name k)) Classify.all_klasses;
  print_newline ();
  List.iter
    (fun cc ->
      Printf.printf "%-4s" cc;
      List.iter
        (fun (_, share) -> Printf.printf " %8.1f%%" (100.0 *. share))
        (Classify.class_shares cl ds Hosting cc);
      print_newline ())
    [ "TH"; "US"; "DE"; "RU"; "IR" ]
