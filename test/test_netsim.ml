(* Tests for webdep_netsim: addresses, prefix trie, AS/org db, geolocation
   error model, anycast, and the assembled internet. *)

open Webdep_netsim
module Rng = Webdep_stats.Rng

(* --- Ipv4 ----------------------------------------------------------------- *)

let test_addr_roundtrip () =
  List.iter
    (fun s ->
      match Ipv4.addr_of_string s with
      | None -> Alcotest.failf "parse %s" s
      | Some a -> Alcotest.(check string) s s (Ipv4.addr_to_string a))
    [ "0.0.0.0"; "255.255.255.255"; "192.168.1.42"; "8.8.8.8" ]

let test_addr_invalid () =
  List.iter
    (fun s ->
      if Ipv4.addr_of_string s <> None then Alcotest.failf "should reject %s" s)
    [ "256.0.0.1"; "1.2.3"; "a.b.c.d"; "1.2.3.4.5"; "-1.2.3.4" ]

let test_addr_of_int_bounds () =
  Alcotest.check_raises "too big" (Invalid_argument "Ipv4.addr_of_int: outside 32-bit range")
    (fun () -> ignore (Ipv4.addr_of_int (1 lsl 32)))

let test_prefix_masking () =
  let a = Option.get (Ipv4.addr_of_string "10.1.2.3") in
  let p = Ipv4.prefix a 16 in
  Alcotest.(check string) "masked" "10.1.0.0/16" (Ipv4.prefix_to_string p)

let test_prefix_contains () =
  let p = Option.get (Ipv4.prefix_of_string "10.1.0.0/16") in
  let inside = Option.get (Ipv4.addr_of_string "10.1.200.7") in
  let outside = Option.get (Ipv4.addr_of_string "10.2.0.1") in
  Alcotest.(check bool) "inside" true (Ipv4.contains p inside);
  Alcotest.(check bool) "outside" false (Ipv4.contains p outside)

let test_prefix_size () =
  let p = Option.get (Ipv4.prefix_of_string "10.0.0.0/20") in
  Alcotest.(check int) "/20 size" 4096 (Ipv4.prefix_size p)

let test_nth_addr () =
  let p = Option.get (Ipv4.prefix_of_string "10.0.0.0/24") in
  Alcotest.(check string) "nth" "10.0.0.17" (Ipv4.addr_to_string (Ipv4.nth_addr p 17));
  Alcotest.check_raises "out of prefix" (Invalid_argument "Ipv4.nth_addr: index outside prefix")
    (fun () -> ignore (Ipv4.nth_addr p 256))

let test_random_addr_in_prefix () =
  let rng = Rng.create 3 in
  let p = Option.get (Ipv4.prefix_of_string "10.5.0.0/20") in
  for _ = 1 to 1000 do
    if not (Ipv4.contains p (Ipv4.random_addr rng p)) then
      Alcotest.fail "random addr escaped prefix"
  done

let prop_addr_roundtrip =
  QCheck.Test.make ~name:"addr int roundtrip" ~count:200
    QCheck.(int_range 0 ((1 lsl 32) - 1))
    (fun i ->
      let a = Ipv4.addr_of_int i in
      Ipv4.addr_to_int a = i
      && Ipv4.addr_of_string (Ipv4.addr_to_string a) = Some a)

(* --- Prefix_table ----------------------------------------------------------- *)

let pfx s = Option.get (Ipv4.prefix_of_string s)
let addr s = Option.get (Ipv4.addr_of_string s)

let test_trie_longest_prefix_match () =
  let t = Prefix_table.create () in
  Prefix_table.add t (pfx "10.0.0.0/8") "eight";
  Prefix_table.add t (pfx "10.1.0.0/16") "sixteen";
  Prefix_table.add t (pfx "10.1.2.0/24") "twentyfour";
  Alcotest.(check (option string)) "/24 wins" (Some "twentyfour")
    (Prefix_table.lookup t (addr "10.1.2.3"));
  Alcotest.(check (option string)) "/16 wins" (Some "sixteen")
    (Prefix_table.lookup t (addr "10.1.9.9"));
  Alcotest.(check (option string)) "/8 fallback" (Some "eight")
    (Prefix_table.lookup t (addr "10.200.0.1"));
  Alcotest.(check (option string)) "miss" None (Prefix_table.lookup t (addr "11.0.0.1"))

let test_trie_replace () =
  let t = Prefix_table.create () in
  Prefix_table.add t (pfx "10.0.0.0/8") "a";
  Prefix_table.add t (pfx "10.0.0.0/8") "b";
  Alcotest.(check int) "size after replace" 1 (Prefix_table.size t);
  Alcotest.(check (option string)) "replaced" (Some "b") (Prefix_table.lookup t (addr "10.1.1.1"))

let test_trie_default_route () =
  let t = Prefix_table.create () in
  Prefix_table.add t (pfx "0.0.0.0/0") "default";
  Alcotest.(check (option string)) "default matches all" (Some "default")
    (Prefix_table.lookup t (addr "203.0.113.7"))

let test_trie_lookup_prefix () =
  let t = Prefix_table.create () in
  Prefix_table.add t (pfx "192.168.0.0/16") 1;
  match Prefix_table.lookup_prefix t (addr "192.168.3.4") with
  | Some (p, 1) -> Alcotest.(check string) "prefix" "192.168.0.0/16" (Ipv4.prefix_to_string p)
  | _ -> Alcotest.fail "expected match"

let test_trie_fold () =
  let t = Prefix_table.create () in
  List.iter (fun (s, v) -> Prefix_table.add t (pfx s) v)
    [ ("10.0.0.0/8", 1); ("10.1.0.0/16", 2); ("172.16.0.0/12", 3) ];
  let collected = Prefix_table.fold (fun p v acc -> (Ipv4.prefix_to_string p, v) :: acc) t [] in
  Alcotest.(check int) "three entries" 3 (List.length collected);
  Alcotest.(check bool) "contains 172" true (List.mem ("172.16.0.0/12", 3) collected)

let prop_trie_finds_inserted =
  QCheck.Test.make ~name:"trie finds every inserted prefix base" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 30) (pair (int_range 0 ((1 lsl 32) - 1)) (int_range 4 32)))
    (fun entries ->
      let t = Prefix_table.create () in
      let prefixes =
        List.mapi (fun i (base, len) -> (Ipv4.prefix (Ipv4.addr_of_int base) len, i)) entries
      in
      List.iter (fun (p, i) -> Prefix_table.add t p i) prefixes;
      (* Looking up each prefix's base address must return a value whose
         prefix covers it (the longest match may be a later duplicate). *)
      List.for_all
        (fun (p, _) -> Prefix_table.lookup t (Ipv4.nth_addr p 0) <> None)
        prefixes)

(* --- As_db -------------------------------------------------------------------- *)

let test_as_db () =
  let db = As_db.create () in
  let org = As_db.register_org db ~name:"Cloudflare" ~country:"US" in
  As_db.register_as db 13335 org;
  (match As_db.org_of_as db 13335 with
  | Some o -> Alcotest.(check string) "org name" "Cloudflare" o.Org.name
  | None -> Alcotest.fail "missing");
  Alcotest.(check bool) "unknown asn" true (As_db.org_of_as db 99999 = None);
  (* Registering the same org name returns the original. *)
  let again = As_db.register_org db ~name:"Cloudflare" ~country:"US" in
  Alcotest.(check bool) "idempotent" true (Org.equal org again);
  Alcotest.(check int) "org count" 1 (As_db.org_count db);
  Alcotest.(check int) "as count" 1 (As_db.as_count db)

let test_as_db_multiple_as_per_org () =
  let db = As_db.create () in
  let org = As_db.register_org db ~name:"Amazon" ~country:"US" in
  As_db.register_as db 16509 org;
  As_db.register_as db 14618 org;
  let o1 = Option.get (As_db.org_of_as db 16509) in
  let o2 = Option.get (As_db.org_of_as db 14618) in
  Alcotest.(check bool) "same org" true (Org.equal o1 o2)

(* --- Geo_db --------------------------------------------------------------------- *)

let test_geo_exact () =
  let rng = Rng.create 4 in
  let db = Geo_db.create ~accuracy:1.0 rng () in
  Geo_db.add db (pfx "10.0.0.0/8") "DE";
  Alcotest.(check (option string)) "exact" (Some "DE") (Geo_db.lookup db (addr "10.9.9.9"));
  Alcotest.(check (option string)) "truth" (Some "DE") (Geo_db.true_country db (addr "10.9.9.9"))

let test_geo_error_model () =
  let rng = Rng.create 5 in
  let db = Geo_db.create ~accuracy:0.5 ~candidates:[ "US"; "DE"; "FR"; "JP" ] rng () in
  let wrong = ref 0 and n = 2000 in
  for i = 0 to n - 1 do
    let p = Ipv4.prefix (Ipv4.addr_of_int (i * 4096)) 20 in
    Geo_db.add db p "US";
    let believed = Option.get (Geo_db.lookup db (Ipv4.nth_addr p 1)) in
    if believed <> "US" then incr wrong
  done;
  let frac = float_of_int !wrong /. float_of_int n in
  if frac < 0.40 || frac > 0.60 then Alcotest.failf "error rate %f should be ~0.5" frac

let test_geo_consistent_per_prefix () =
  (* The database is wrong consistently, not per query. *)
  let rng = Rng.create 6 in
  let db = Geo_db.create ~accuracy:0.0 ~candidates:[ "FR"; "DE" ] rng () in
  Geo_db.add db (pfx "10.0.0.0/8") "US";
  let first = Geo_db.lookup db (addr "10.1.1.1") in
  for _ = 1 to 50 do
    Alcotest.(check (option string)) "stable answer" first (Geo_db.lookup db (addr "10.2.2.2"))
  done

let test_geo_invalid_accuracy () =
  let rng = Rng.create 7 in
  Alcotest.check_raises "accuracy" (Invalid_argument "Geo_db.create: accuracy outside [0,1]")
    (fun () -> ignore (Geo_db.create ~accuracy:1.5 rng ()))

(* --- Anycast ----------------------------------------------------------------------- *)

let test_anycast () =
  let t = Anycast.create () in
  Anycast.add t (pfx "104.16.0.0/13");
  Alcotest.(check bool) "inside" true (Anycast.is_anycast t (addr "104.17.1.1"));
  Alcotest.(check bool) "outside" false (Anycast.is_anycast t (addr "8.8.8.8"));
  Alcotest.(check int) "size" 1 (Anycast.size t)

(* --- Bgp -------------------------------------------------------------------------- *)

let test_bgp_best_route_prefers_short_path () =
  let t = Bgp.create () in
  let p = pfx "10.0.0.0/16" in
  Bgp.announce t p ~path:[ 174; 3356; 65001 ];
  Bgp.announce t p ~path:[ 174; 65002 ];
  (match Bgp.best_route t (addr "10.0.1.1") with
  | Some a -> Alcotest.(check int) "short path wins" 65002 (Bgp.origin a)
  | None -> Alcotest.fail "route expected");
  Alcotest.(check int) "two announcements" 2 (Bgp.announcement_count t);
  Alcotest.(check int) "one prefix" 1 (Bgp.prefix_count t)

let test_bgp_tie_breaks_on_origin () =
  let t = Bgp.create () in
  let p = pfx "10.0.0.0/16" in
  Bgp.announce t p ~path:[ 174; 65009 ];
  Bgp.announce t p ~path:[ 1299; 65001 ];
  match Bgp.best_route t (addr "10.0.1.1") with
  | Some a -> Alcotest.(check int) "lower origin wins tie" 65001 (Bgp.origin a)
  | None -> Alcotest.fail "route expected"

let test_bgp_moas () =
  let t = Bgp.create () in
  let p = pfx "10.0.0.0/16" in
  Bgp.announce t p ~path:[ 174; 65001 ];
  Bgp.announce t p ~path:[ 174; 65002 ];
  Bgp.announce t (pfx "10.1.0.0/16") ~path:[ 174; 65001 ];
  match Bgp.moas t with
  | [ (_, origins) ] -> Alcotest.(check (list int)) "origins" [ 65001; 65002 ] origins
  | other -> Alcotest.failf "expected one MOAS, got %d" (List.length other)

let test_bgp_derive_pfx2as () =
  let t = Bgp.create () in
  Bgp.announce t (pfx "10.0.0.0/16") ~path:[ 174; 65001 ];
  Bgp.announce t (pfx "10.0.1.0/24") ~path:[ 174; 3356; 65002 ];
  let table = Bgp.derive_pfx2as t in
  Alcotest.(check (option int)) "more specific wins" (Some 65002)
    (Prefix_table.lookup table (addr "10.0.1.9"));
  Alcotest.(check (option int)) "covering prefix" (Some 65001)
    (Prefix_table.lookup table (addr "10.0.2.9"))

let test_bgp_empty_path_rejected () =
  let t = Bgp.create () in
  Alcotest.check_raises "empty path" (Invalid_argument "Bgp.announce: empty AS path")
    (fun () -> Bgp.announce t (pfx "10.0.0.0/16") ~path:[])

let test_internet_bgp_consistent_with_pfx2as () =
  (* CAIDA-style derivation from the announcements must agree with the
     direct table the Internet maintains. *)
  let rng = Rng.create 21 in
  let net = Internet.create rng in
  let networks =
    List.map
      (fun (name, country, presence) ->
        Internet.register_network net ~name ~country ~presence ())
      [ ("N1", "US", [ "DE"; "JP" ]); ("N2", "FR", []); ("N3", "BR", [ "US" ]) ]
  in
  let derived = Bgp.derive_pfx2as (Internet.bgp net) in
  List.iter
    (fun n ->
      List.iter
        (fun (_, p) ->
          let a = Ipv4.nth_addr p 7 in
          Alcotest.(check (option int)) "derived = direct" (Internet.origin_as net a)
            (Prefix_table.lookup derived a))
        n.Internet.pops)
    networks;
  Alcotest.(check (list (pair (module struct
                                 type t = Ipv4.prefix
                                 let pp fmt p = Format.pp_print_string fmt (Ipv4.prefix_to_string p)
                                 let equal a b = Ipv4.compare_prefix a b = 0
                               end) (list int))))
    "no MOAS in a clean world" [] (Bgp.moas (Internet.bgp net))

(* --- Internet ---------------------------------------------------------------------- *)

let test_internet_register_and_lookup () =
  let rng = Rng.create 8 in
  let net = Internet.create rng in
  let n = Internet.register_network net ~name:"Cloudflare" ~country:"US" ~anycast:true
      ~presence:[ "DE"; "JP" ] () in
  Alcotest.(check int) "three pops" 3 (List.length n.Internet.pops);
  Alcotest.(check string) "HQ first" "US" (fst (List.hd n.Internet.pops));
  let a = Internet.address_in net n ~near:"DE" rng in
  (match Internet.org_of_addr net a with
  | Some o -> Alcotest.(check string) "org" "Cloudflare" o.Org.name
  | None -> Alcotest.fail "org lookup failed");
  Alcotest.(check bool) "anycast flagged" true (Internet.is_anycast_addr net a);
  (* Anycast prefixes geolocate to HQ. *)
  Alcotest.(check (option string)) "geo pins to HQ" (Some "US") (Internet.geolocate net a)

let test_internet_non_anycast_geo () =
  let rng = Rng.create 9 in
  let net = Internet.create rng in
  let n = Internet.register_network net ~name:"Hetzner" ~country:"DE" ~presence:[ "FI" ] () in
  let de_prefix = List.assoc "DE" n.Internet.pops in
  let fi_prefix = List.assoc "FI" n.Internet.pops in
  Alcotest.(check (option string)) "DE pop" (Some "DE")
    (Internet.geolocate net (Ipv4.nth_addr de_prefix 5));
  Alcotest.(check (option string)) "FI pop" (Some "FI")
    (Internet.geolocate net (Ipv4.nth_addr fi_prefix 5))

let test_internet_idempotent_registration () =
  let rng = Rng.create 10 in
  let net = Internet.create rng in
  let a = Internet.register_network net ~name:"X" ~country:"US" () in
  let b = Internet.register_network net ~name:"X" ~country:"FR" () in
  Alcotest.(check bool) "same org" true (Org.equal a.Internet.org b.Internet.org);
  Alcotest.(check int) "one network" 1 (Internet.network_count net)

let test_internet_fallback_pop () =
  let rng = Rng.create 11 in
  let net = Internet.create rng in
  let n = Internet.register_network net ~name:"Y" ~country:"JP" () in
  (* No pop near FR: falls back to HQ. *)
  let a = Internet.address_in net n ~near:"FR" rng in
  Alcotest.(check (option string)) "HQ geo" (Some "JP") (Internet.geolocate net a)

let test_internet_distinct_asns () =
  let rng = Rng.create 12 in
  let net = Internet.create rng in
  let a = Internet.register_network net ~name:"A" ~country:"US" () in
  let b = Internet.register_network net ~name:"B" ~country:"US" () in
  Alcotest.(check bool) "distinct asn" true (a.Internet.asn <> b.Internet.asn);
  Alcotest.(check (option int)) "origin as" (Some a.Internet.asn)
    (Internet.origin_as net (Ipv4.nth_addr (snd (List.hd a.Internet.pops)) 0))

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "webdep_netsim"
    [
      ( "ipv4",
        [
          Alcotest.test_case "roundtrip" `Quick test_addr_roundtrip;
          Alcotest.test_case "invalid" `Quick test_addr_invalid;
          Alcotest.test_case "of_int bounds" `Quick test_addr_of_int_bounds;
          Alcotest.test_case "prefix masking" `Quick test_prefix_masking;
          Alcotest.test_case "contains" `Quick test_prefix_contains;
          Alcotest.test_case "prefix size" `Quick test_prefix_size;
          Alcotest.test_case "nth addr" `Quick test_nth_addr;
          Alcotest.test_case "random in prefix" `Quick test_random_addr_in_prefix;
          qtest prop_addr_roundtrip;
        ] );
      ( "prefix_table",
        [
          Alcotest.test_case "longest prefix match" `Quick test_trie_longest_prefix_match;
          Alcotest.test_case "replace" `Quick test_trie_replace;
          Alcotest.test_case "default route" `Quick test_trie_default_route;
          Alcotest.test_case "lookup_prefix" `Quick test_trie_lookup_prefix;
          Alcotest.test_case "fold" `Quick test_trie_fold;
          qtest prop_trie_finds_inserted;
        ] );
      ( "as_db",
        [
          Alcotest.test_case "basic" `Quick test_as_db;
          Alcotest.test_case "multiple as per org" `Quick test_as_db_multiple_as_per_org;
        ] );
      ( "geo_db",
        [
          Alcotest.test_case "exact" `Quick test_geo_exact;
          Alcotest.test_case "error model rate" `Quick test_geo_error_model;
          Alcotest.test_case "consistent errors" `Quick test_geo_consistent_per_prefix;
          Alcotest.test_case "invalid accuracy" `Quick test_geo_invalid_accuracy;
        ] );
      ("anycast", [ Alcotest.test_case "membership" `Quick test_anycast ]);
      ( "bgp",
        [
          Alcotest.test_case "shortest path wins" `Quick test_bgp_best_route_prefers_short_path;
          Alcotest.test_case "tie on origin" `Quick test_bgp_tie_breaks_on_origin;
          Alcotest.test_case "moas" `Quick test_bgp_moas;
          Alcotest.test_case "derive pfx2as" `Quick test_bgp_derive_pfx2as;
          Alcotest.test_case "empty path" `Quick test_bgp_empty_path_rejected;
          Alcotest.test_case "consistent with internet" `Quick
            test_internet_bgp_consistent_with_pfx2as;
        ] );
      ( "internet",
        [
          Alcotest.test_case "register and lookup" `Quick test_internet_register_and_lookup;
          Alcotest.test_case "non-anycast geo" `Quick test_internet_non_anycast_geo;
          Alcotest.test_case "idempotent" `Quick test_internet_idempotent_registration;
          Alcotest.test_case "fallback pop" `Quick test_internet_fallback_pop;
          Alcotest.test_case "distinct asns" `Quick test_internet_distinct_asns;
        ] );
    ]
