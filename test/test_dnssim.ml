(* Tests for webdep_dnssim: zone database, resolver, probes. *)

open Webdep_dnssim
module Ipv4 = Webdep_netsim.Ipv4
module Rng = Webdep_stats.Rng

let addr s = Option.get (Ipv4.addr_of_string s)

let db_with_example () =
  let db = Zone_db.create () in
  Zone_db.add_domain db ~domain:"example.com"
    ~ns_hosts:[ "ns1.dns.sim"; "ns2.dns.sim" ]
    ~a:(Zone_db.Static [ addr "10.0.0.1" ]);
  Zone_db.add_host db ~host:"ns1.dns.sim" ~a:(Zone_db.Static [ addr "10.9.0.1" ]);
  Zone_db.add_host db ~host:"ns2.dns.sim" ~a:(Zone_db.Static [ addr "10.9.0.2" ]);
  db

let test_resolve_static () =
  let db = db_with_example () in
  match Resolver.resolve db ~vantage:"US" "example.com" with
  | Error e -> Alcotest.fail ("should resolve: " ^ Resolver.error_message e)
  | Ok r ->
      Alcotest.(check (list string)) "a records" [ "10.0.0.1" ]
        (List.map Ipv4.addr_to_string r.Resolver.a);
      Alcotest.(check int) "two ns hosts" 2 (List.length r.Resolver.ns_hosts);
      Alcotest.(check (list string)) "glue" [ "10.9.0.1"; "10.9.0.2" ]
        (List.map Ipv4.addr_to_string r.Resolver.ns_addrs)

let test_resolve_nxdomain () =
  let db = db_with_example () in
  Alcotest.(check bool) "nxdomain" true
    (Resolver.resolve db ~vantage:"US" "missing.example" = Error Resolver.Nxdomain);
  Alcotest.(check bool) "resolve_a none" true
    (Resolver.resolve_a db ~vantage:"US" "missing.example" = None)

let test_geo_answer () =
  let db = Zone_db.create () in
  Zone_db.add_domain db ~domain:"cdn.example" ~ns_hosts:[]
    ~a:(Zone_db.Geo ([ ("DE", [ addr "10.2.0.1" ]) ], [ addr "10.1.0.1" ]));
  let from v = Option.get (Resolver.resolve_a db ~vantage:v "cdn.example") in
  Alcotest.(check string) "DE answer" "10.2.0.1" (Ipv4.addr_to_string (from "DE"));
  Alcotest.(check string) "default answer" "10.1.0.1" (Ipv4.addr_to_string (from "JP"))

let test_dynamic_answer () =
  let db = Zone_db.create () in
  Zone_db.add_domain db ~domain:"dyn.example" ~ns_hosts:[]
    ~a:(Zone_db.Dynamic (fun v -> if v = "FR" then [ addr "10.3.0.1" ] else [ addr "10.4.0.1" ]));
  let from v = Ipv4.addr_to_string (Option.get (Resolver.resolve_a db ~vantage:v "dyn.example")) in
  Alcotest.(check string) "FR" "10.3.0.1" (from "FR");
  Alcotest.(check string) "other" "10.4.0.1" (from "US")

let test_replace_domain () =
  let db = db_with_example () in
  Zone_db.add_domain db ~domain:"example.com" ~ns_hosts:[ "ns9.other.sim" ]
    ~a:(Zone_db.Static [ addr "10.0.0.2" ]);
  match Resolver.resolve db ~vantage:"US" "example.com" with
  | Ok r ->
      Alcotest.(check (list string)) "replaced" [ "10.0.0.2" ]
        (List.map Ipv4.addr_to_string r.Resolver.a);
      Alcotest.(check int) "domain count" 1 (Zone_db.domain_count db)
  | Error _ -> Alcotest.fail "should resolve"

let test_missing_glue () =
  let db = Zone_db.create () in
  Zone_db.add_domain db ~domain:"x.example" ~ns_hosts:[ "ns.unknown.sim" ]
    ~a:(Zone_db.Static [ addr "10.0.0.9" ]);
  match Resolver.resolve db ~vantage:"US" "x.example" with
  | Ok r -> Alcotest.(check int) "no glue" 0 (List.length r.Resolver.ns_addrs)
  | Error _ -> Alcotest.fail "should resolve"

(* --- Hierarchy + Iterative ----------------------------------------------------- *)

let big_db () =
  let db = Zone_db.create () in
  Zone_db.add_host db ~host:"ns1.alpha.sim" ~a:(Zone_db.Static [ addr "10.9.1.1" ]);
  Zone_db.add_host db ~host:"ns2.alpha.sim" ~a:(Zone_db.Static [ addr "10.9.1.2" ]);
  Zone_db.add_host db ~host:"ns1.beta.sim" ~a:(Zone_db.Static [ addr "10.9.2.1" ]);
  Zone_db.add_domain db ~domain:"shop.example.com"
    ~ns_hosts:[ "ns1.alpha.sim"; "ns2.alpha.sim" ]
    ~a:(Zone_db.Static [ addr "10.0.1.1" ]);
  Zone_db.add_domain db ~domain:"blog.example.org" ~ns_hosts:[ "ns1.beta.sim" ]
    ~a:(Zone_db.Geo ([ ("DE", [ addr "10.0.2.2" ]) ], [ addr "10.0.2.1" ]));
  Zone_db.add_domain db ~domain:"site.example.net" ~ns_hosts:[ "ns1.alpha.sim" ]
    ~a:(Zone_db.Static [ addr "10.0.3.1" ]);
  db

let test_hierarchy_structure () =
  let h = Hierarchy.build (big_db ()) in
  Alcotest.(check int) "13 roots" 13 (List.length (Hierarchy.root_addrs h));
  Alcotest.(check int) "three TLD zones" 3 (Hierarchy.tld_count h);
  Alcotest.(check int) "three auth hosts" 3 (Hierarchy.auth_server_count h)

let test_hierarchy_walk_by_hand () =
  let h = Hierarchy.build (big_db ()) in
  let root = List.hd (Hierarchy.root_addrs h) in
  (* Root refers to the .com servers. *)
  (match Hierarchy.query h ~server:root ~vantage:"US" ~qname:"shop.example.com" with
  | Hierarchy.Referral { zone = "com"; glue; _ } ->
      Alcotest.(check bool) "glue present" true (glue <> []);
      (* TLD server refers to the domain's NS with glue. *)
      let tld_addr = List.hd (snd (List.hd glue)) in
      (match Hierarchy.query h ~server:tld_addr ~vantage:"US" ~qname:"shop.example.com" with
      | Hierarchy.Referral { zone = "shop.example.com"; ns_hosts; glue } ->
          Alcotest.(check int) "two ns" 2 (List.length ns_hosts);
          (* Auth server answers. *)
          let auth = List.hd (snd (List.hd glue)) in
          (match Hierarchy.query h ~server:auth ~vantage:"US" ~qname:"shop.example.com" with
          | Hierarchy.Answer [ a ] ->
              Alcotest.(check string) "answer" "10.0.1.1" (Ipv4.addr_to_string a)
          | _ -> Alcotest.fail "expected answer")
      | _ -> Alcotest.fail "expected domain referral")
  | _ -> Alcotest.fail "expected tld referral")

let test_hierarchy_lame_server_refuses () =
  let h = Hierarchy.build (big_db ()) in
  (* ns1.beta.sim does not serve shop.example.com. *)
  Alcotest.(check bool) "lame" true
    (Hierarchy.query h ~server:(addr "10.9.2.1") ~vantage:"US" ~qname:"shop.example.com"
    = Hierarchy.Name_error)

let test_hierarchy_root_serves_glue () =
  let h = Hierarchy.build (big_db ()) in
  let root = List.hd (Hierarchy.root_addrs h) in
  match Hierarchy.query h ~server:root ~vantage:"US" ~qname:"ns1.alpha.sim" with
  | Hierarchy.Answer [ a ] -> Alcotest.(check string) "glue" "10.9.1.1" (Ipv4.addr_to_string a)
  | _ -> Alcotest.fail "root should serve infrastructure glue"

let test_iterative_resolves () =
  let db = big_db () in
  let h = Hierarchy.build db in
  match Iterative.resolve h ~vantage:"US" "shop.example.com" with
  | Ok ([ a ], stats) ->
      Alcotest.(check string) "answer" "10.0.1.1" (Ipv4.addr_to_string a);
      Alcotest.(check int) "root + tld + auth = 3 queries" 3 stats.Iterative.queries;
      Alcotest.(check int) "two referrals" 2 stats.Iterative.referrals
  | Ok _ -> Alcotest.fail "one address expected"
  | Error _ -> Alcotest.fail "should resolve"

let test_iterative_vantage_dependent () =
  let h = Hierarchy.build (big_db ()) in
  let from v =
    Ipv4.addr_to_string (Option.get (Iterative.resolve_a h ~vantage:v "blog.example.org"))
  in
  Alcotest.(check string) "DE answer" "10.0.2.2" (from "DE");
  Alcotest.(check string) "default answer" "10.0.2.1" (from "US")

let test_iterative_nxdomain () =
  let h = Hierarchy.build (big_db ()) in
  (match Iterative.resolve h ~vantage:"US" "missing.example.com" with
  | Error Iterative.Nxdomain -> ()
  | _ -> Alcotest.fail "expected nxdomain");
  match Iterative.resolve h ~vantage:"US" "whatever.unknown-tld" with
  | Error Iterative.Nxdomain -> ()
  | _ -> Alcotest.fail "unknown TLD is nxdomain at the root"

let test_iterative_matches_flat_resolver () =
  (* The hierarchy must agree with the flat resolver on every domain and
     vantage — same authoritative data, different lookup path. *)
  let db = big_db () in
  let h = Hierarchy.build db in
  List.iter
    (fun domain ->
      List.iter
        (fun vantage ->
          let flat = Resolver.resolve_a db ~vantage domain in
          let iter = Iterative.resolve_a h ~vantage domain in
          if flat <> iter then
            Alcotest.failf "disagreement on %s from %s" domain vantage)
        [ "US"; "DE"; "JP" ])
    [ "shop.example.com"; "blog.example.org"; "site.example.net" ]

(* --- CNAME chains ------------------------------------------------------------- *)

let cname_db () =
  let db = big_db () in
  (* www.shop.example.com is CDN-fronted: alias into the provider's
     namespace, which carries the real A answer. *)
  Zone_db.add_host db ~host:"ns1.cdn.sim" ~a:(Zone_db.Static [ addr "10.9.3.1" ]);
  Zone_db.add_domain db ~domain:"edge-123.cdn.sim" ~ns_hosts:[ "ns1.cdn.sim" ]
    ~a:(Zone_db.Static [ addr "10.7.0.1" ]);
  Zone_db.add_alias db ~domain:"www.shop.example.com" ~target:"edge-123.cdn.sim"
    ~ns_hosts:[ "ns1.alpha.sim" ];
  db

let test_cname_flat_resolution () =
  let db = cname_db () in
  (match Resolver.resolve db ~vantage:"US" "www.shop.example.com" with
  | Ok r ->
      Alcotest.(check (list string)) "follows the chain" [ "10.7.0.1" ]
        (List.map Ipv4.addr_to_string r.Resolver.a);
      (* NS authority stays with the aliased name's own zone. *)
      Alcotest.(check (list string)) "ns of the alias" [ "ns1.alpha.sim" ] r.Resolver.ns_hosts
  | Error _ -> Alcotest.fail "should resolve");
  Alcotest.(check (option string)) "cname_of" (Some "edge-123.cdn.sim")
    (Zone_db.cname_of db "www.shop.example.com")

let test_cname_dangling_target_falls_back () =
  let db = big_db () in
  Zone_db.add_alias db ~domain:"dangling.example.com" ~target:"gone.cdn.sim"
    ~ns_hosts:[ "ns1.alpha.sim" ];
  Alcotest.(check bool) "no addresses" true
    (Resolver.resolve_a db ~vantage:"US" "dangling.example.com" = None)

let test_cname_cycle_terminates () =
  let db = big_db () in
  Zone_db.add_alias db ~domain:"a.loop.example.com" ~target:"b.loop.example.com"
    ~ns_hosts:[ "ns1.alpha.sim" ];
  Zone_db.add_alias db ~domain:"b.loop.example.com" ~target:"a.loop.example.com"
    ~ns_hosts:[ "ns1.alpha.sim" ];
  Alcotest.(check bool) "cycle yields nothing" true
    (Resolver.resolve_a db ~vantage:"US" "a.loop.example.com" = None)

let test_cname_iterative_restarts () =
  let db = cname_db () in
  let h = Hierarchy.build db in
  match Iterative.resolve h ~vantage:"US" "www.shop.example.com" with
  | Ok ([ a ], stats) ->
      Alcotest.(check string) "final answer" "10.7.0.1" (Ipv4.addr_to_string a);
      (* Two full walks: 3 queries to reach the alias, 3 for the target. *)
      Alcotest.(check int) "six queries" 6 stats.Iterative.queries
  | Ok _ -> Alcotest.fail "one address expected"
  | Error _ -> Alcotest.fail "should resolve"

let test_cname_iterative_matches_flat () =
  let db = cname_db () in
  let h = Hierarchy.build db in
  Alcotest.(check bool) "agreement" true
    (Resolver.resolve_a db ~vantage:"US" "www.shop.example.com"
    = Iterative.resolve_a h ~vantage:"US" "www.shop.example.com")

(* --- Cache ------------------------------------------------------------------ *)

let counter_value name = Webdep_obs.Metrics.value (Webdep_obs.Metrics.counter name)

let test_cache_basic () =
  Webdep_obs.Registry.reset ();
  let c = Cache.create ~name:"dns.cache.test" () in
  Alcotest.(check (option int)) "cold miss" None (Cache.find c ~vantage:"US" "a.example");
  Cache.add c ~vantage:"US" "a.example" 7;
  Alcotest.(check (option int)) "hit" (Some 7) (Cache.find c ~vantage:"US" "a.example");
  Alcotest.(check (option int)) "vantage keyed" None (Cache.find c ~vantage:"DE" "a.example");
  Alcotest.(check int) "one entry" 1 (Cache.length c);
  Alcotest.(check int) "hit counter" 1 (Cache.hits c);
  Alcotest.(check int) "miss counter" 2 (Cache.misses c)

let test_cache_find_or_compute () =
  let c = Cache.create ~name:"dns.cache.test" () in
  let calls = ref 0 in
  let f () =
    incr calls;
    42
  in
  Alcotest.(check int) "computed" 42 (Cache.find_or_compute c ~vantage:"US" "x" f);
  Alcotest.(check int) "memoized" 42 (Cache.find_or_compute c ~vantage:"US" "x" f);
  Alcotest.(check int) "computed once" 1 !calls

let test_resolver_cache_transparent () =
  (* Caching may change the work, never the answers — across static, geo,
     CNAME-chained and missing names, from several vantages. *)
  let db = cname_db () in
  Zone_db.add_domain db ~domain:"cdn.example" ~ns_hosts:[]
    ~a:(Zone_db.Geo ([ ("DE", [ addr "10.2.0.1" ]) ], [ addr "10.1.0.1" ]));
  let cache = Resolver.make_cache () in
  List.iter
    (fun domain ->
      List.iter
        (fun vantage ->
          (* Twice with the cache: the second resolve exercises the hit path. *)
          let uncached = Resolver.resolve db ~vantage domain in
          if Resolver.resolve ~cache db ~vantage domain <> uncached then
            Alcotest.failf "cold cache changes %s from %s" domain vantage;
          if Resolver.resolve ~cache db ~vantage domain <> uncached then
            Alcotest.failf "warm cache changes %s from %s" domain vantage)
        [ "US"; "DE"; "JP" ])
    [ "shop.example.com"; "cdn.example"; "www.shop.example.com"; "missing.example" ]

let test_resolver_cache_counters () =
  Webdep_obs.Registry.reset ();
  let db = db_with_example () in
  let cache = Resolver.make_cache () in
  ignore (Resolver.resolve ~cache db ~vantage:"US" "example.com");
  Alcotest.(check int) "cold: one response miss" 1 (counter_value "dns.cache.response.misses");
  Alcotest.(check int) "cold: no response hit" 0 (counter_value "dns.cache.response.hits");
  ignore (Resolver.resolve ~cache db ~vantage:"US" "example.com");
  Alcotest.(check int) "warm: one response hit" 1 (counter_value "dns.cache.response.hits");
  (* A different vantage is a different key. *)
  ignore (Resolver.resolve ~cache db ~vantage:"DE" "example.com");
  Alcotest.(check int) "vantage keyed" 2 (counter_value "dns.cache.response.misses")

let test_resolver_glue_reuse () =
  (* Two domains on the same nameservers: the second resolution reuses
     the glue memo — the paper-world pattern where a handful of DNS
     providers serve nearly every site. *)
  Webdep_obs.Registry.reset ();
  let db = db_with_example () in
  Zone_db.add_domain db ~domain:"other.com"
    ~ns_hosts:[ "ns1.dns.sim"; "ns2.dns.sim" ]
    ~a:(Zone_db.Static [ addr "10.0.0.3" ]);
  let cache = Resolver.make_cache () in
  ignore (Resolver.resolve ~cache db ~vantage:"US" "example.com");
  Alcotest.(check int) "cold glue misses" 2 (counter_value "dns.cache.glue.misses");
  Alcotest.(check int) "cold glue hits" 0 (counter_value "dns.cache.glue.hits");
  ignore (Resolver.resolve ~cache db ~vantage:"US" "other.com");
  Alcotest.(check int) "glue reused" 2 (counter_value "dns.cache.glue.hits");
  Alcotest.(check int) "no new glue misses" 2 (counter_value "dns.cache.glue.misses")

let test_iterative_cache_result_memo () =
  let db = big_db () in
  let h = Hierarchy.build db in
  let cache = Iterative.make_cache () in
  (match Iterative.resolve ~cache h ~vantage:"US" "shop.example.com" with
  | Ok ([ a ], stats) ->
      Alcotest.(check string) "cold answer" "10.0.1.1" (Ipv4.addr_to_string a);
      Alcotest.(check int) "cold walk costs 3 queries" 3 stats.Iterative.queries
  | _ -> Alcotest.fail "should resolve");
  match Iterative.resolve ~cache h ~vantage:"US" "shop.example.com" with
  | Ok ([ a ], stats) ->
      Alcotest.(check string) "warm answer" "10.0.1.1" (Ipv4.addr_to_string a);
      Alcotest.(check int) "no queries" 0 stats.Iterative.queries;
      Alcotest.(check int) "no referrals" 0 stats.Iterative.referrals
  | _ -> Alcotest.fail "should resolve from cache"

let test_iterative_cache_zone_cut () =
  (* A warm TLD cut lets a sibling domain's walk skip the root: 2 queries
     and 1 referral instead of 3 and 2. *)
  let db = big_db () in
  Zone_db.add_domain db ~domain:"pay.example.com" ~ns_hosts:[ "ns1.alpha.sim" ]
    ~a:(Zone_db.Static [ addr "10.0.1.2" ]);
  let h = Hierarchy.build db in
  let cache = Iterative.make_cache () in
  (match Iterative.resolve ~cache h ~vantage:"US" "shop.example.com" with
  | Ok (_, stats) -> Alcotest.(check int) "cold from root" 3 stats.Iterative.queries
  | _ -> Alcotest.fail "should resolve");
  match Iterative.resolve ~cache h ~vantage:"US" "pay.example.com" with
  | Ok ([ a ], stats) ->
      Alcotest.(check string) "sibling answer" "10.0.1.2" (Ipv4.addr_to_string a);
      Alcotest.(check int) "warm cut skips the root" 2 stats.Iterative.queries;
      Alcotest.(check int) "one referral" 1 stats.Iterative.referrals
  | _ -> Alcotest.fail "should resolve via the cut"

let test_iterative_cache_vantage_keyed () =
  let h = Hierarchy.build (big_db ()) in
  let cache = Iterative.make_cache () in
  let from v =
    Ipv4.addr_to_string (Option.get (Iterative.resolve_a ~cache h ~vantage:v "blog.example.org"))
  in
  Alcotest.(check string) "DE geo answer" "10.0.2.2" (from "DE");
  Alcotest.(check string) "US default answer" "10.0.2.1" (from "US");
  (* Warm repeats keep the split-horizon answers apart. *)
  Alcotest.(check string) "DE again" "10.0.2.2" (from "DE");
  Alcotest.(check string) "US again" "10.0.2.1" (from "US")

(* --- Probe ------------------------------------------------------------------ *)

let test_probe_pool () =
  let pool = Probe.pool_of_countries ~per_country:3 [ "US"; "DE"; "JP" ] in
  Alcotest.(check int) "size" 9 (Probe.size pool);
  Alcotest.(check int) "countries" 3 (Probe.countries_covered pool)

let test_probe_pick_in_country () =
  let pool = Probe.pool_of_countries ~per_country:3 [ "US"; "DE" ] in
  let rng = Rng.create 13 in
  for _ = 1 to 50 do
    let p = Probe.pick pool rng ~country:"DE" in
    Alcotest.(check string) "in-country probe" "DE" p.Probe.country
  done

let test_probe_missing_country_fallback () =
  let pool = Probe.pool_of_countries ~missing:[ "TM" ] ~per_country:2 [ "US"; "TM" ] in
  Alcotest.(check int) "TM excluded" 1 (Probe.countries_covered pool);
  let rng = Rng.create 14 in
  let p = Probe.pick pool rng ~country:"TM" in
  Alcotest.(check string) "fallback to any" "US" p.Probe.country

let test_probe_ids_unique () =
  let pool = Probe.pool_of_countries ~per_country:5 [ "US"; "DE"; "JP" ] in
  let rng = Rng.create 15 in
  let ids = List.init 200 (fun _ -> (Probe.pick pool rng ~country:"US").Probe.id) in
  List.iter (fun id -> if id < 0 || id >= 15 then Alcotest.failf "bad id %d" id) ids

let () =
  Alcotest.run "webdep_dnssim"
    [
      ( "resolver",
        [
          Alcotest.test_case "static" `Quick test_resolve_static;
          Alcotest.test_case "nxdomain" `Quick test_resolve_nxdomain;
          Alcotest.test_case "geo answer" `Quick test_geo_answer;
          Alcotest.test_case "dynamic answer" `Quick test_dynamic_answer;
          Alcotest.test_case "replace domain" `Quick test_replace_domain;
          Alcotest.test_case "missing glue" `Quick test_missing_glue;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "structure" `Quick test_hierarchy_structure;
          Alcotest.test_case "walk by hand" `Quick test_hierarchy_walk_by_hand;
          Alcotest.test_case "lame server refuses" `Quick test_hierarchy_lame_server_refuses;
          Alcotest.test_case "root serves glue" `Quick test_hierarchy_root_serves_glue;
          Alcotest.test_case "iterative resolves" `Quick test_iterative_resolves;
          Alcotest.test_case "iterative vantage" `Quick test_iterative_vantage_dependent;
          Alcotest.test_case "iterative nxdomain" `Quick test_iterative_nxdomain;
          Alcotest.test_case "iterative = flat" `Quick test_iterative_matches_flat_resolver;
        ] );
      ( "cname",
        [
          Alcotest.test_case "flat resolution" `Quick test_cname_flat_resolution;
          Alcotest.test_case "dangling target" `Quick test_cname_dangling_target_falls_back;
          Alcotest.test_case "cycle terminates" `Quick test_cname_cycle_terminates;
          Alcotest.test_case "iterative restarts" `Quick test_cname_iterative_restarts;
          Alcotest.test_case "iterative = flat" `Quick test_cname_iterative_matches_flat;
        ] );
      ( "cache",
        [
          Alcotest.test_case "basic" `Quick test_cache_basic;
          Alcotest.test_case "find_or_compute" `Quick test_cache_find_or_compute;
          Alcotest.test_case "resolver transparent" `Quick test_resolver_cache_transparent;
          Alcotest.test_case "resolver counters" `Quick test_resolver_cache_counters;
          Alcotest.test_case "glue reuse" `Quick test_resolver_glue_reuse;
          Alcotest.test_case "iterative result memo" `Quick test_iterative_cache_result_memo;
          Alcotest.test_case "iterative zone cut" `Quick test_iterative_cache_zone_cut;
          Alcotest.test_case "iterative vantage keyed" `Quick test_iterative_cache_vantage_keyed;
        ] );
      ( "probe",
        [
          Alcotest.test_case "pool" `Quick test_probe_pool;
          Alcotest.test_case "pick in country" `Quick test_probe_pick_in_country;
          Alcotest.test_case "missing fallback" `Quick test_probe_missing_country_fallback;
          Alcotest.test_case "ids sane" `Quick test_probe_ids_unique;
        ] );
    ]
