(* Tests for webdep_cluster: affinity propagation, k-means, silhouette. *)

module Affinity = Webdep_cluster.Affinity
module Kmeans = Webdep_cluster.Kmeans
module Silhouette = Webdep_cluster.Silhouette
module Rng = Webdep_stats.Rng

(* Three well-separated 2-D blobs. *)
let blobs =
  let blob cx cy =
    List.init 10 (fun i ->
        [| cx +. (0.01 *. float_of_int i); cy -. (0.01 *. float_of_int i) |])
  in
  Array.of_list (blob 0.0 0.0 @ blob 10.0 10.0 @ blob (-10.0) 10.0)

let cluster_count assignment =
  List.length (List.sort_uniq compare (Array.to_list assignment))

let test_affinity_separated_blobs () =
  let result = Affinity.cluster_points blobs in
  Alcotest.(check bool) "converged" true result.Affinity.converged;
  Alcotest.(check int) "three clusters" 3 (cluster_count result.Affinity.assignment);
  (* Points of the same blob share an exemplar. *)
  for b = 0 to 2 do
    let base = result.Affinity.assignment.(b * 10) in
    for i = 1 to 9 do
      Alcotest.(check int)
        (Printf.sprintf "blob %d point %d" b i)
        base
        result.Affinity.assignment.((b * 10) + i)
    done
  done

let test_affinity_exemplars_are_members () =
  let result = Affinity.cluster_points blobs in
  List.iter
    (fun e ->
      Alcotest.(check int) "exemplar self-assigned" e result.Affinity.assignment.(e))
    result.Affinity.exemplars

let test_affinity_single_point () =
  let result = Affinity.cluster_points [| [| 1.0; 2.0 |] |] in
  Alcotest.(check int) "one cluster" 1 (cluster_count result.Affinity.assignment)

let test_affinity_invalid () =
  Alcotest.check_raises "n=0" (Invalid_argument "Affinity.run: n must be positive") (fun () ->
      ignore (Affinity.run ~similarity:(fun _ _ -> 0.0) 0));
  Alcotest.check_raises "damping" (Invalid_argument "Affinity.run: damping outside [0.5, 1)")
    (fun () -> ignore (Affinity.run ~damping:0.2 ~similarity:(fun _ _ -> 0.0) 3))

let test_affinity_preference_controls_granularity () =
  (* A very negative preference collapses to few clusters; a high
     preference fragments. *)
  let coarse = Affinity.cluster_points ~preference:(-10_000.0) blobs in
  let fine = Affinity.cluster_points ~preference:(-0.0001) blobs in
  Alcotest.(check bool) "coarse <= fine" true
    (cluster_count coarse.Affinity.assignment <= cluster_count fine.Affinity.assignment)

let test_affinity_cluster_sizes () =
  let result = Affinity.cluster_points blobs in
  let sizes = Affinity.cluster_sizes result in
  Alcotest.(check int) "three sizes" 3 (List.length sizes);
  Alcotest.(check int) "total" 30 (List.fold_left (fun acc (_, k) -> acc + k) 0 sizes)

let test_negative_sq_euclidean () =
  Alcotest.(check (float 1e-9)) "distance" (-25.0)
    (Affinity.negative_sq_euclidean [| 0.0; 0.0 |] [| 3.0; 4.0 |])

let test_kmeans_blobs () =
  let rng = Rng.create 5 in
  let result = Kmeans.run rng ~k:3 blobs in
  Alcotest.(check int) "three clusters used" 3 (cluster_count result.Kmeans.assignment);
  (* Same-blob points cluster together. *)
  for b = 0 to 2 do
    let base = result.Kmeans.assignment.(b * 10) in
    for i = 1 to 9 do
      Alcotest.(check int) "blob mate" base result.Kmeans.assignment.((b * 10) + i)
    done
  done

let test_kmeans_inertia_zero_when_k_equals_n () =
  let rng = Rng.create 6 in
  let points = [| [| 0.0 |]; [| 5.0 |]; [| 9.0 |] |] in
  let result = Kmeans.run rng ~k:3 points in
  Alcotest.(check (float 1e-9)) "zero inertia" 0.0 result.Kmeans.inertia

let test_kmeans_invalid () =
  let rng = Rng.create 7 in
  Alcotest.check_raises "k too big" (Invalid_argument "Kmeans.run: k outside [1, n]") (fun () ->
      ignore (Kmeans.run rng ~k:5 [| [| 0.0 |] |]))

let test_kmeans_deterministic_given_seed () =
  let run () = (Kmeans.run (Rng.create 11) ~k:3 blobs).Kmeans.assignment in
  Alcotest.(check (array int)) "same seed same result" (run ()) (run ())

let test_silhouette_separated () =
  let assignment = Array.init 30 (fun i -> i / 10) in
  let s = Silhouette.score blobs assignment in
  Alcotest.(check bool) "well separated near 1" true (s > 0.9)

let test_silhouette_bad_assignment () =
  (* Mixing blob members across clusters should score poorly. *)
  let good = Array.init 30 (fun i -> i / 10) in
  let bad = Array.init 30 (fun i -> i mod 3) in
  let sg = Silhouette.score blobs good and sb = Silhouette.score blobs bad in
  Alcotest.(check bool) "good beats bad" true (sg > sb)

let test_silhouette_invalid () =
  Alcotest.check_raises "one cluster"
    (Invalid_argument "Silhouette.score: need at least 2 clusters") (fun () ->
      ignore (Silhouette.score blobs (Array.make 30 0)))

let prop_affinity_assignment_valid =
  QCheck.Test.make ~name:"affinity assignment always valid" ~count:25
    QCheck.(list_of_size (Gen.int_range 2 12) (pair (float_range 0. 10.) (float_range 0. 10.)))
    (fun pts ->
      let points = Array.of_list (List.map (fun (x, y) -> [| x; y |]) pts) in
      let result = Affinity.cluster_points ~max_iter:80 points in
      let n = Array.length points in
      Array.for_all (fun a -> a >= 0 && a < n) result.Affinity.assignment
      && List.for_all (fun e -> e >= 0 && e < n) result.Affinity.exemplars)

let prop_kmeans_assignment_valid =
  QCheck.Test.make ~name:"kmeans assignment within k" ~count:25
    QCheck.(
      pair (int_range 1 4)
        (list_of_size (Gen.int_range 4 20) (pair (float_range 0. 10.) (float_range 0. 10.))))
    (fun (k, pts) ->
      let points = Array.of_list (List.map (fun (x, y) -> [| x; y |]) pts) in
      let rng = Rng.create (k + List.length pts) in
      let result = Kmeans.run rng ~k points in
      Array.for_all (fun a -> a >= 0 && a < k) result.Kmeans.assignment)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "webdep_cluster"
    [
      ( "affinity",
        [
          Alcotest.test_case "separated blobs" `Quick test_affinity_separated_blobs;
          Alcotest.test_case "exemplars are members" `Quick test_affinity_exemplars_are_members;
          Alcotest.test_case "single point" `Quick test_affinity_single_point;
          Alcotest.test_case "invalid" `Quick test_affinity_invalid;
          Alcotest.test_case "preference granularity" `Quick test_affinity_preference_controls_granularity;
          Alcotest.test_case "cluster sizes" `Quick test_affinity_cluster_sizes;
          Alcotest.test_case "similarity" `Quick test_negative_sq_euclidean;
          qtest prop_affinity_assignment_valid;
        ] );
      ( "kmeans",
        [
          Alcotest.test_case "blobs" `Quick test_kmeans_blobs;
          Alcotest.test_case "k=n zero inertia" `Quick test_kmeans_inertia_zero_when_k_equals_n;
          Alcotest.test_case "invalid" `Quick test_kmeans_invalid;
          Alcotest.test_case "deterministic" `Quick test_kmeans_deterministic_given_seed;
          qtest prop_kmeans_assignment_valid;
        ] );
      ( "silhouette",
        [
          Alcotest.test_case "separated" `Quick test_silhouette_separated;
          Alcotest.test_case "bad assignment worse" `Quick test_silhouette_bad_assignment;
          Alcotest.test_case "invalid" `Quick test_silhouette_invalid;
        ] );
    ]
