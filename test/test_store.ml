(* webdep_store: cross-phase measurement memoization and incremental
   metrics.  The invariants here back the perf acceptance criteria:
   store-backed sweeps are byte-identical to cold ones at every job
   count, a fingerprint mismatch discards the whole spill, and the
   incremental tally/score paths return bit-identical values to a full
   recomputation under arbitrary churn. *)

module World = Webdep_worldgen.World
module Measure = Webdep_pipeline.Measure
module Store = Webdep_store.Store
module Incremental = Webdep_store.Incremental
module D = Webdep.Dataset
module R = Webdep.Regionalization
module C = Webdep_emd.Centralization
module Rng = Webdep_stats.Rng
module Obs_metrics = Webdep_obs.Metrics

let counter name = Obs_metrics.value (Obs_metrics.counter name)
let sample = [ "US"; "DE"; "TH" ]
let world = lazy (World.create ~c:200 ~seed:77 ())
let ds23 = lazy (Measure.measure_all ~countries:sample (Lazy.force world))

let ds25 =
  lazy (Measure.measure_all ~epoch:World.May_2025 ~countries:sample (Lazy.force world))

let same_dataset a b = List.for_all (fun cc -> D.country_exn a cc = D.country_exn b cc) sample

(* --- store-backed sweep = cold sweep ------------------------------------- *)

let test_store_sweep_identical () =
  let world = Lazy.force world in
  let cold = Lazy.force ds23 in
  let st = Store.create ~fingerprint:(Measure.store_fingerprint world) () in
  let misses_before = counter "store.misses" in
  let filling = Measure.measure_all ~countries:sample ~store:st world in
  let fill_misses = counter "store.misses" - misses_before in
  let hits_before = counter "store.hits" in
  let warm = Measure.measure_all ~countries:sample ~store:st world in
  let warm_hits = counter "store.hits" - hits_before in
  Alcotest.(check bool) "filling run = cold run" true (same_dataset cold filling);
  Alcotest.(check bool) "warm run = cold run" true (same_dataset cold warm);
  Alcotest.(check string) "scores CSV byte-identical"
    (Webdep.Export.scores_csv cold Hosting)
    (Webdep.Export.scores_csv warm Hosting);
  Alcotest.(check int) "every site missed once while filling" (D.size cold) fill_misses;
  Alcotest.(check int) "every site hit once when warm" (D.size cold) warm_hits

let test_store_keys_epochs_apart () =
  (* 2023 entries must never satisfy 2025 lookups: the fill for one epoch
     leaves the other cold. *)
  let world = Lazy.force world in
  let st = Store.create ~fingerprint:(Measure.store_fingerprint world) () in
  ignore (Measure.measure_all ~countries:sample ~store:st world);
  let hits_before = counter "store.hits" in
  let from_store = Measure.measure_all ~epoch:World.May_2025 ~countries:sample ~store:st world in
  Alcotest.(check int) "no cross-epoch hits" 0 (counter "store.hits" - hits_before);
  Alcotest.(check bool) "2025 results unchanged" true
    (List.for_all
       (fun cc -> D.country_exn (Lazy.force ds25) cc = D.country_exn from_store cc)
       sample)

(* --- jobs invariance ----------------------------------------------------- *)

let test_jobs_invariance () =
  let world = Lazy.force world in
  let cold = Lazy.force ds23 in
  let spills =
    List.map
      (fun jobs ->
        let st = Store.create ~fingerprint:(Measure.store_fingerprint world) () in
        let misses_before = counter "store.misses" in
        let filling = Measure.measure_all ~countries:sample ~jobs ~store:st world in
        let fill_misses = counter "store.misses" - misses_before in
        let hits_before = counter "store.hits" in
        let warm = Measure.measure_all ~countries:sample ~jobs ~store:st world in
        let warm_hits = counter "store.hits" - hits_before in
        Alcotest.(check bool)
          (Printf.sprintf "filling run at --jobs %d = cold" jobs)
          true (same_dataset cold filling);
        Alcotest.(check bool)
          (Printf.sprintf "warm run at --jobs %d = cold" jobs)
          true (same_dataset cold warm);
        Alcotest.(check int)
          (Printf.sprintf "misses at --jobs %d" jobs)
          (D.size cold) fill_misses;
        Alcotest.(check int)
          (Printf.sprintf "hits at --jobs %d" jobs)
          (D.size cold) warm_hits;
        let path = Filename.temp_file "webdep_store_jobs" ".jsonl" in
        Store.save st path;
        let contents = In_channel.with_open_bin path In_channel.input_all in
        Sys.remove path;
        contents)
      [ 1; 2; 4 ]
  in
  match spills with
  | j1 :: rest ->
      List.iteri
        (fun i spill ->
          Alcotest.(check string)
            (Printf.sprintf "spill file identical at jobs option %d" (i + 1))
            j1 spill)
        rest
  | [] -> assert false

(* --- spill round-trip and fingerprint invalidation ----------------------- *)

let test_spill_roundtrip_and_invalidation () =
  let world = Lazy.force world in
  let st = Store.create ~fingerprint:(Measure.store_fingerprint world) () in
  ignore (Measure.measure_all ~countries:[ "US" ] ~store:st world);
  let path = Filename.temp_file "webdep_store" ".jsonl" in
  Store.save st path;
  let reloaded = Store.load ~path ~fingerprint:(Measure.store_fingerprint world) in
  Alcotest.(check int) "size round-trips" (Store.size st) (Store.size reloaded);
  let cold = Measure.measure_all ~countries:[ "US" ] world in
  let hits_before = counter "store.hits" in
  let warm = Measure.measure_all ~countries:[ "US" ] ~store:reloaded world in
  Alcotest.(check bool) "reloaded store reproduces the cold sweep" true
    (D.country_exn cold "US" = D.country_exn warm "US");
  Alcotest.(check bool) "reloaded store actually hit" true
    (counter "store.hits" - hits_before > 0);
  (* A differently-parameterized world must not reuse these entries. *)
  let other = World.create ~c:200 ~seed:78 () in
  let invalidated_before = counter "store.invalidated" in
  let mismatched = Store.load ~path ~fingerprint:(Measure.store_fingerprint other) in
  Alcotest.(check int) "mismatched fingerprint discards everything" 0
    (Store.size mismatched);
  Alcotest.(check int) "invalidation counted" 1
    (counter "store.invalidated" - invalidated_before);
  Sys.remove path;
  let missing = Store.load ~path ~fingerprint:(Measure.store_fingerprint world) in
  Alcotest.(check int) "missing file loads empty" 0 (Store.size missing)

(* --- incremental comparison ---------------------------------------------- *)

let test_compare_incremental_identical () =
  let old_ds = Lazy.force ds23 and new_ds = Lazy.force ds25 in
  let full = Webdep.Longitudinal.compare ~focus:"Cloudflare" ~old_ds ~new_ds Hosting in
  let incr, stats =
    Webdep.Longitudinal.compare_incremental ~focus:"Cloudflare" ~old_ds ~new_ds Hosting
  in
  Alcotest.(check bool) "incremental comparison bit-identical to full" true (full = incr);
  Alcotest.(check int) "all common countries compared" (List.length sample)
    stats.Webdep.Longitudinal.countries;
  (* Every new-snapshot site is either kept or added; every old one kept
     or removed. *)
  let total ds = D.size ds in
  Alcotest.(check int) "kept + added covers the new snapshot" (total new_ds)
    (stats.Webdep.Longitudinal.kept + stats.Webdep.Longitudinal.added);
  Alcotest.(check int) "kept + removed covers the old snapshot" (total old_ds)
    (stats.Webdep.Longitudinal.kept + stats.Webdep.Longitudinal.removed)

(* --- incremental metrics under random churn ------------------------------ *)

(* Random churn: per country, remove a random subset of the 2023 sites
   and add a random subset of the 2025 ones, apply the delta to an
   Incremental.t seeded from 2023, and check every metric against a cold
   recomputation over the equivalently-edited dataset. *)
let churn_matches_full seed =
  let old_ds = Lazy.force ds23 and new_ds = Lazy.force ds25 in
  let rng = Rng.create seed in
  let inc = Incremental.create old_ds Hosting in
  let edited =
    List.map
      (fun cc ->
        let old_sites = (D.country_exn old_ds cc).D.sites in
        let new_sites = (D.country_exn new_ds cc).D.sites in
        (* Cap removals below the country size so the score stays defined. *)
        let removed =
          List.filteri (fun i _ -> i mod (2 + Rng.int rng 4) = 0) old_sites
        in
        let added = List.filteri (fun i _ -> i mod (2 + Rng.int rng 4) = 0) new_sites in
        Incremental.apply inc ~country:cc ~added ~removed;
        let keep = List.filter (fun s -> not (List.memq s removed)) old_sites in
        { D.country = cc; D.sites = keep @ added })
      sample
  in
  let cold = D.of_country_data edited in
  List.for_all
    (fun cc ->
      Incremental.score inc cc = Webdep.Metrics.centralization cold Hosting cc
      && Incremental.hhi inc cc = C.hhi (D.distribution cold Hosting cc)
      && Incremental.insularity inc cc = R.insularity cold Hosting cc)
    sample
  && Incremental.usage inc ~name:"Cloudflare" = R.usage_curve cold Hosting ~name:"Cloudflare"

let churn_qcheck =
  QCheck.Test.make ~count:25 ~name:"incremental metrics = full recompute under churn"
    QCheck.small_nat
    (fun seed -> churn_matches_full seed)

let test_incremental_cache_counters () =
  let old_ds = Lazy.force ds23 in
  let inc = Incremental.create old_ds Hosting in
  let full_before = counter "store.metrics.full_solve" in
  ignore (Incremental.score inc "US");
  Alcotest.(check int) "first read is a full solve" 1
    (counter "store.metrics.full_solve" - full_before);
  let hits_before = counter "store.metrics.cache_hits" in
  ignore (Incremental.score inc "US");
  Alcotest.(check int) "second read is cached" 1
    (counter "store.metrics.cache_hits" - hits_before);
  (* Removing and re-adding the same site keeps the support set: the next
     read must take the closed-form incremental path, not a full solve. *)
  let top_entity = fst (List.hd (D.counts_by_entity old_ds Hosting "US")) in
  let some_site =
    List.find (fun s -> s.D.hosting = Some top_entity) (D.country_exn old_ds "US").D.sites
  in
  Incremental.apply inc ~country:"US" ~added:[ some_site ] ~removed:[ some_site ];
  let incr_before = counter "store.metrics.incremental" in
  let before = Incremental.score inc "US" in
  Alcotest.(check int) "support-preserving delta recomputes incrementally" 1
    (counter "store.metrics.incremental" - incr_before);
  Alcotest.(check (float 0.0)) "identity delta leaves the score unchanged" before
    (Webdep.Metrics.centralization old_ds Hosting "US")

(* --- tally-based bootstrap = string-path bootstrap ----------------------- *)

let test_centralization_interval_matches_string_path () =
  let ds = Lazy.force ds23 in
  let cc = "US" in
  (* The pre-interning implementation: materialize the label array, and
     per replicate hash-count it and score the name-sorted counts. *)
  let cd = D.country_exn ds cc in
  let labels =
    Array.of_list
      (List.filter_map
         (fun s -> Option.map (fun (e : D.entity) -> e.D.name) (D.entity_of s Hosting))
         cd.D.sites)
  in
  let statistic arr =
    let tbl = Hashtbl.create 64 in
    Array.iter
      (fun name ->
        Hashtbl.replace tbl name (1 + Option.value ~default:0 (Hashtbl.find_opt tbl name)))
      arr;
    let counts =
      Hashtbl.fold (fun name k acc -> (name, k) :: acc) tbl []
      |> List.sort compare |> List.map snd |> Array.of_list
    in
    C.score (Webdep_emd.Dist.of_counts counts)
  in
  let rng = Rng.create 2024 in
  let lo, hi = Webdep_stats.Bootstrap.percentile_interval ~iterations:100 rng ~statistic labels in
  let lo', hi' =
    Webdep.Metrics.centralization_interval ~iterations:100 ~seed:2024 ds Hosting cc
  in
  Alcotest.(check bool) "tally-based interval bit-identical to string path" true
    (lo = lo' && hi = hi')

let () =
  Webdep_obs.Reporter.setup ~level:Logs.Error ();
  Alcotest.run "webdep_store"
    [
      ( "store",
        [
          Alcotest.test_case "store-backed sweep = cold sweep" `Quick
            test_store_sweep_identical;
          Alcotest.test_case "epochs are keyed apart" `Quick test_store_keys_epochs_apart;
          Alcotest.test_case "jobs invariance (1/2/4) + spill determinism" `Quick
            test_jobs_invariance;
          Alcotest.test_case "spill round-trip, fingerprint invalidation" `Quick
            test_spill_roundtrip_and_invalidation;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "compare_incremental = compare" `Quick
            test_compare_incremental_identical;
          QCheck_alcotest.to_alcotest churn_qcheck;
          Alcotest.test_case "cache/incremental/full-solve counters" `Quick
            test_incremental_cache_counters;
          Alcotest.test_case "centralization_interval = string path" `Quick
            test_centralization_interval_matches_string_path;
        ] );
    ]
