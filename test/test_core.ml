(* Tests for the webdep core toolkit on small hand-built datasets. *)

open Webdep
module D = Dataset

let e name country = { D.name; country }

let site ?(hosting = None) ?(dns = None) ?(ca = None) ?(tld = e ".com" "US")
    ?(hosting_geo = None) ?(ns_geo = None) ?(hosting_anycast = false) ?(ns_anycast = false)
    ?(language = None) domain =
  { D.domain; hosting; dns; ca; tld; hosting_geo; ns_geo; hosting_anycast; ns_anycast;
    language }

(* A toy two-country dataset:
   - AA: 10 sites; hosting 6 on BigCo(US), 3 on LocalAA(AA), 1 on NicheAA(AA)
   - BB: 10 sites; hosting 5 on BigCo, 5 on LocalBB(BB). *)
let toy () =
  let mk_country cc specs =
    let sites =
      List.concat_map
        (fun (prov, home, n) ->
          List.init n (fun i ->
              site
                ~hosting:(Some (e prov home))
                ~dns:(Some (e (prov ^ "-dns") home))
                ~ca:(Some (e "BigCA" "US"))
                ~tld:(e ".com" "US")
                (Printf.sprintf "%s-%s-%d.com" cc prov i)))
        specs
    in
    { D.country = cc; sites }
  in
  D.of_country_data
    [
      mk_country "AA" [ ("BigCo", "US", 6); ("LocalAA", "AA", 3); ("NicheAA", "AA", 1) ];
      mk_country "BB" [ ("BigCo", "US", 5); ("LocalBB", "BB", 5) ];
    ]

(* --- Dataset ----------------------------------------------------------------- *)

let test_dataset_basics () =
  let ds = toy () in
  Alcotest.(check (list string)) "countries" [ "AA"; "BB" ] (D.countries ds);
  Alcotest.(check int) "size" 20 (D.size ds);
  Alcotest.(check bool) "country lookup" true (D.country ds "AA" <> None);
  Alcotest.check_raises "missing" Not_found (fun () -> ignore (D.country_exn ds "CC"))

let test_dataset_distribution () =
  let ds = toy () in
  let dist = D.distribution ds Hosting "AA" in
  Alcotest.(check int) "three providers" 3 (Webdep_emd.Dist.size dist);
  Alcotest.(check (float 1e-9)) "total" 10.0 (Webdep_emd.Dist.total dist)

let test_dataset_counts_sorted () =
  let ds = toy () in
  match D.counts_by_entity ds Hosting "AA" with
  | (top, 6) :: (_, 3) :: (_, 1) :: [] ->
      Alcotest.(check string) "BigCo on top" "BigCo" top.D.name
  | _ -> Alcotest.fail "unexpected counts"

let test_dataset_entity_share () =
  let ds = toy () in
  Alcotest.(check (float 1e-9)) "share" 0.6 (D.entity_share ds Hosting "AA" ~name:"BigCo");
  Alcotest.(check (float 1e-9)) "zero" 0.0 (D.entity_share ds Hosting "AA" ~name:"LocalBB")

let test_dataset_merged () =
  let ds = toy () in
  let merged = D.merged_distribution ds Hosting in
  Alcotest.(check (float 1e-9)) "total" 20.0 (Webdep_emd.Dist.total merged);
  (* BigCo merges across countries: 6 + 5 = 11 as the largest. *)
  Alcotest.(check (float 1e-9)) "top mass" 11.0 (Webdep_emd.Dist.sorted_desc merged).(0)

let test_dataset_skips_unlabelled () =
  let ds =
    D.of_country_data
      [ { D.country = "AA"; sites = [ site "x.com"; site ~hosting:(Some (e "P" "AA")) "y.com" ] } ]
  in
  let dist = D.distribution ds Hosting "AA" in
  Alcotest.(check (float 1e-9)) "only labelled" 1.0 (Webdep_emd.Dist.total dist)

let test_dataset_tld_always_present () =
  let s = site "z.org" ~tld:(e ".org" "US") in
  Alcotest.(check bool) "tld entity" true (D.entity_of s Tld <> None)

(* --- Metrics ----------------------------------------------------------------- *)

let test_metrics_centralization () =
  let ds = toy () in
  (* AA: (6,3,1)/10: HHI = 0.36+0.09+0.01 = 0.46 → S = 0.36. *)
  Alcotest.(check (float 1e-9)) "AA" 0.36 (Metrics.centralization ds Hosting "AA");
  (* BB: (5,5)/10 → 0.5 − 0.1 = 0.4. *)
  Alcotest.(check (float 1e-9)) "BB" 0.40 (Metrics.centralization ds Hosting "BB")

let test_metrics_all_scores_sorted () =
  let ds = toy () in
  match Metrics.all_scores ds Hosting with
  | [ ("BB", _); ("AA", _) ] -> ()
  | other ->
      Alcotest.failf "unexpected order: %s" (String.concat "," (List.map fst other))

let test_metrics_top_n () =
  let ds = toy () in
  Alcotest.(check (float 1e-9)) "top-1 AA" 0.6 (Metrics.top_n_share ds Hosting "AA" 1);
  Alcotest.(check (float 1e-9)) "top-2 AA" 0.9 (Metrics.top_n_share ds Hosting "AA" 2)

let test_metrics_rank_curve () =
  let ds = toy () in
  let curve = Metrics.rank_curve ds Hosting "AA" in
  Alcotest.(check (array (float 1e-9))) "curve" [| 0.6; 0.3; 0.1 |] curve;
  let cumulative = Metrics.cumulative_rank_curve ds Hosting "AA" in
  Alcotest.(check (float 1e-9)) "cumulative end" 1.0 cumulative.(2)

let test_metrics_providers_for_share () =
  let ds = toy () in
  Alcotest.(check int) "90%" 2 (Metrics.providers_for_share ds Hosting "AA" 0.9);
  Alcotest.(check int) "100%" 3 (Metrics.providers_for_share ds Hosting "AA" 1.0);
  Alcotest.(check int) "50%" 1 (Metrics.providers_for_share ds Hosting "AA" 0.5)

let test_metrics_global_score () =
  let ds = toy () in
  (* Pooled: BigCo 11, LocalBB 5, LocalAA 3, NicheAA 1 over 20.
     HHI = (121+25+9+1)/400 = 0.39 → S = 0.39 − 0.05 = 0.34. *)
  Alcotest.(check (float 1e-9)) "global" 0.34 (Metrics.global_score ds Hosting)

(* --- Regionalization ------------------------------------------------------------ *)

let test_insularity () =
  let ds = toy () in
  Alcotest.(check (float 1e-9)) "AA" 0.4 (Regionalization.insularity ds Hosting "AA");
  Alcotest.(check (float 1e-9)) "BB" 0.5 (Regionalization.insularity ds Hosting "BB")

let test_all_insularity_sorted () =
  let ds = toy () in
  match Regionalization.all_insularity ds Hosting with
  | [ ("BB", _); ("AA", _) ] -> ()
  | _ -> Alcotest.fail "sorted by insularity descending"

let test_usage_curve () =
  let ds = toy () in
  let u = Regionalization.usage_curve ds Hosting ~name:"BigCo" in
  (* 60% in AA, 50% in BB → curve (60, 50); U = 110; E = 10; E_R = 10/120. *)
  Alcotest.(check (float 1e-9)) "usage" 110.0 u.Regionalization.usage;
  Alcotest.(check (float 1e-9)) "endemicity" 10.0 u.Regionalization.endemicity;
  Alcotest.(check (float 1e-9)) "ratio" (10.0 /. 120.0) u.Regionalization.endemicity_ratio

let test_usage_curve_regional_provider () =
  let ds = toy () in
  let u = Regionalization.usage_curve ds Hosting ~name:"LocalAA" in
  (* 30% in AA, 0% in BB → E_R = 30/60 = 0.5 — more endemic than BigCo. *)
  Alcotest.(check (float 1e-9)) "ratio" 0.5 u.Regionalization.endemicity_ratio;
  let big = Regionalization.usage_curve ds Hosting ~name:"BigCo" in
  Alcotest.(check bool) "regional more endemic" true
    (u.Regionalization.endemicity_ratio > big.Regionalization.endemicity_ratio)

let test_usage_missing_provider () =
  let ds = toy () in
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Regionalization.usage_curve ds Hosting ~name:"Nobody"))

let test_all_usage_sorted () =
  let ds = toy () in
  match Regionalization.all_usage ds Hosting with
  | first :: _ ->
      Alcotest.(check string) "BigCo leads" "BigCo" first.Regionalization.entity.D.name
  | [] -> Alcotest.fail "empty"

let test_foreign_dependence () =
  let ds = toy () in
  match Regionalization.foreign_dependence ds Hosting "AA" with
  | ("US", s_us) :: ("AA", s_aa) :: [] ->
      Alcotest.(check (float 1e-9)) "US share" 0.6 s_us;
      Alcotest.(check (float 1e-9)) "AA share" 0.4 s_aa
  | _ -> Alcotest.fail "unexpected breakdown"

(* --- Classify ---------------------------------------------------------------------- *)

let test_classify_toy () =
  let ds = toy () in
  let cl = Classify.classify ds Hosting in
  Alcotest.(check int) "all providers classified" 4
    (List.length cl.Classify.providers);
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 cl.Classify.table in
  Alcotest.(check int) "table sums" 4 total

let test_classify_shares_sum () =
  let ds = toy () in
  let cl = Classify.classify ds Hosting in
  let shares = Classify.class_shares cl ds Hosting "AA" in
  let total = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 shares in
  Alcotest.(check (float 1e-9)) "shares sum to 1" 1.0 total

let test_klass_names () =
  Alcotest.(check (list string)) "names"
    [ "XL-GP"; "L-GP"; "L-GP (R)"; "M-GP"; "S-GP"; "L-RP"; "S-RP"; "XS-RP" ]
    (List.map Classify.klass_name Classify.all_klasses)

let test_klass_of () =
  let ds = toy () in
  let cl = Classify.classify ds Hosting in
  Alcotest.(check bool) "BigCo classified" true (Classify.klass_of cl "BigCo" <> None);
  Alcotest.(check bool) "unknown" true (Classify.klass_of cl "Nobody" = None)

(* --- Report ------------------------------------------------------------------------- *)

let test_report_ranked () =
  let ds = toy () in
  match Report.ranked_scores ds Hosting with
  | [ r1; r2 ] ->
      Alcotest.(check int) "rank 1" 1 r1.Report.rank;
      Alcotest.(check string) "BB first" "BB" r1.Report.country;
      Alcotest.(check int) "rank 2" 2 r2.Report.rank
  | _ -> Alcotest.fail "two rows expected"

let test_report_layer_stats () =
  let ds = toy () in
  Alcotest.(check (float 1e-9)) "mean" 0.38 (Report.layer_mean ds Hosting);
  Alcotest.(check (float 1e-9)) "variance" 0.0004 (Report.layer_variance ds Hosting)

let test_report_histogram () =
  let ds = toy () in
  let h = Report.score_histogram ds Hosting ~bins:6 () in
  Alcotest.(check int) "two countries" 2 (Webdep_stats.Histogram.total h)

let test_report_cdf () =
  let ds = toy () in
  let cdf = Report.insularity_cdf ds Hosting in
  Alcotest.(check int) "two points" 2 (Array.length cdf);
  Alcotest.(check (float 1e-9)) "last is 1" 1.0 (snd cdf.(1))

let test_report_subregion_spread_empty_for_toy () =
  let ds = toy () in
  Alcotest.(check int) "no subregions for fake codes" 0
    (List.length (Report.subregion_spread ds Hosting (fun _ -> 0.0)))

let test_report_region_means_skip_unknown_codes () =
  (* Toy countries are not real ISO codes: every regional grouping is
     empty rather than raising. *)
  let ds = toy () in
  Alcotest.(check int) "no subregions" 0
    (List.length (Report.subregion_means ds Hosting (fun _ -> 0.0)));
  Alcotest.(check int) "no continents" 0
    (List.length (Report.continent_means ds Hosting (fun _ -> 0.0)))

let test_dependence_matrix_toy () =
  (* Unknown codes contribute nothing; the matrix still has all six
     continent rows. *)
  let ds = toy () in
  let m = Regionalization.dependence_matrix ds Hosting in
  Alcotest.(check int) "six rows" 6 (List.length m);
  List.iter
    (fun (_, row) ->
      List.iter (fun (_, v) -> Alcotest.(check (float 1e-9)) "empty" 0.0 v) row)
    m

(* --- Toolkit ------------------------------------------------------------------------- *)

let test_toolkit_summary () =
  let ds = toy () in
  let s = Webdep.Toolkit.summarize ds in
  Alcotest.(check int) "countries" 2 s.Webdep.Toolkit.countries;
  Alcotest.(check int) "records" 20 s.Webdep.Toolkit.records;
  Alcotest.(check int) "four layers" 4 (List.length s.Webdep.Toolkit.layers);
  let hosting = List.hd s.Webdep.Toolkit.layers in
  Alcotest.(check string) "most centralized" "BB" (fst hosting.Webdep.Toolkit.most_centralized);
  Alcotest.(check string) "least centralized" "AA" (fst hosting.Webdep.Toolkit.least_centralized);
  (* pp must render without raising and mention both layers. *)
  let rendered = Format.asprintf "%a" Webdep.Toolkit.pp s in
  Alcotest.(check bool) "mentions hosting" true
    (String.length rendered > 0
    && List.exists
         (fun line -> String.length line >= 7 && String.sub line 0 7 = "hosting")
         (String.split_on_char '\n' rendered))

(* --- Render ------------------------------------------------------------------------- *)

let test_render_bar_chart () =
  let out = Webdep.Render.bar_chart ~width:10 [ ("aa", 1.0); ("bbb", 0.5) ] in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check bool) "two lines" true (List.length (List.filter (fun l -> l <> "") lines) = 2);
  Alcotest.(check bool) "full bar present" true
    (List.exists (fun l -> String.length l > 0 && String.contains l '#') lines);
  Alcotest.(check string) "empty for []" "" (Webdep.Render.bar_chart [])

let test_render_histogram () =
  let h = Webdep_stats.Histogram.create ~lo:0.0 ~hi:1.0 ~bins:2 [| 0.1; 0.2; 0.9 |] in
  let out = Webdep.Render.histogram ~width:10 h in
  Alcotest.(check bool) "two rows" true
    (List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' out)) = 2);
  Alcotest.(check bool) "counts shown" true
    (String.length out > 0
    && List.exists
         (fun l -> String.length l > 0 && l.[String.length l - 1] = '2')
         (String.split_on_char '\n' out))

let test_render_rank_curve () =
  let cumulative = [| 0.5; 0.75; 0.9; 1.0 |] in
  let out = Webdep.Render.rank_curve ~width:20 ~height:5 cumulative in
  Alcotest.(check bool) "has stars" true (String.contains out '*');
  Alcotest.(check bool) "axis line" true (String.contains out '+');
  Alcotest.(check string) "empty input" "" (Webdep.Render.rank_curve [||])

(* --- Bootstrap interval ---------------------------------------------------------------- *)

let test_centralization_interval () =
  let ds = toy () in
  let lo, hi = Metrics.centralization_interval ~seed:7 ds Hosting "AA" in
  let s = Metrics.centralization ds Hosting "AA" in
  Alcotest.(check bool) "brackets point estimate" true (lo <= s && s <= hi);
  Alcotest.(check bool) "nondegenerate" true (hi > lo)

(* --- Longitudinal ------------------------------------------------------------------- *)

let shifted () =
  (* Same countries, BigCo grows in AA: (8,1,1). *)
  let mk cc specs =
    let sites =
      List.concat_map
        (fun (prov, home, n) ->
          List.init n (fun i ->
              site ~hosting:(Some (e prov home)) (Printf.sprintf "%s-%s-%d.com" cc prov i)))
        specs
    in
    { D.country = cc; sites }
  in
  D.of_country_data
    [
      mk "AA" [ ("BigCo", "US", 8); ("LocalAA", "AA", 1); ("NicheAA", "AA", 1) ];
      mk "BB" [ ("BigCo", "US", 5); ("LocalBB", "BB", 5) ];
      mk "CC" [ ("BigCo", "US", 10) ];
    ]

let test_longitudinal_compare () =
  (* Need >= 3 common countries for the correlation. *)
  let mk cc specs =
    let sites =
      List.concat_map
        (fun (prov, home, n) ->
          List.init n (fun i ->
              site ~hosting:(Some (e prov home)) (Printf.sprintf "%s-%s-%d.com" cc prov i)))
        specs
    in
    { D.country = cc; sites }
  in
  let old_ds =
    D.of_country_data
      [
        mk "AA" [ ("BigCo", "US", 6); ("LocalAA", "AA", 3); ("NicheAA", "AA", 1) ];
        mk "BB" [ ("BigCo", "US", 5); ("LocalBB", "BB", 5) ];
        mk "CC" [ ("BigCo", "US", 9); ("LocalCC", "CC", 1) ];
      ]
  in
  let cmp = Longitudinal.compare ~focus:"BigCo" ~old_ds ~new_ds:(shifted ()) Hosting in
  Alcotest.(check int) "three countries" 3 (List.length cmp.Longitudinal.deltas);
  let aa = List.find (fun d -> d.Longitudinal.country = "AA") cmp.Longitudinal.deltas in
  Alcotest.(check bool) "AA grew" true (aa.Longitudinal.delta > 0.0);
  (match aa.Longitudinal.top_entity_delta with
  | Some ("BigCo", d) -> Alcotest.(check (float 1e-9)) "BigCo +20pts" 0.2 d
  | _ -> Alcotest.fail "focus delta missing");
  (* Domains overlap heavily (same naming scheme, shifted counts). *)
  Alcotest.(check bool) "jaccard in (0.5, 1]" true
    (cmp.Longitudinal.mean_jaccard > 0.5 && cmp.Longitudinal.mean_jaccard <= 1.0);
  let inc = Longitudinal.largest_increase cmp in
  Alcotest.(check string) "largest increase" "AA" inc.Longitudinal.country

(* --- Validate ----------------------------------------------------------------------- *)

let test_validate_correlate () =
  let home = [ ("AA", 0.3); ("BB", 0.2); ("CC", 0.1) ] in
  let probes = [ ("AA", 0.31); ("BB", 0.19); ("CC", 0.11); ("DD", 0.5) ] in
  let r = Validate.correlate ~home ~probes in
  Alcotest.(check int) "three shared" 3 (List.length r.Validate.pairs);
  Alcotest.(check bool) "high rho" true (r.Validate.rho.Webdep_stats.Correlation.rho > 0.95);
  Alcotest.(check bool) "max gap" true (r.Validate.max_gap <= 0.011)

let test_validate_too_few () =
  Alcotest.check_raises "too few"
    (Invalid_argument "Validate.correlate: too few shared countries") (fun () ->
      ignore (Validate.correlate ~home:[ ("AA", 0.1) ] ~probes:[ ("AA", 0.1) ]))

(* --- Compact ----------------------------------------------------------------- *)

(* One codec shared across every generated sample, so the round trip is
   exercised against an interner that keeps accumulating ids — re-interned
   names must keep decoding to the first-seen spelling, which the small
   name/country pools force constantly. *)
let compact_round_trip =
  let open QCheck in
  let gen =
    let open Gen in
    let name =
      oneofl [ "Cloudflare"; "Amazon"; "OVH"; "Local-Host"; "NS One"; "Let's Encrypt" ]
    in
    let cc = oneofl [ "US"; "DE"; "RU"; "BR"; "JP"; "IN" ] in
    let entity = map2 (fun n c -> { D.name = n; country = c }) name cc in
    let lang = opt (oneofl [ "en"; "de"; "ru"; "pt"; "ja" ]) in
    map
      (fun ( ((domain, hosting, dns), (ca, tld, hosting_geo)),
             ((ns_geo, hosting_anycast, ns_anycast), language) ) ->
        { D.domain; hosting; dns; ca; tld; hosting_geo; ns_geo; hosting_anycast;
          ns_anycast; language })
      (pair
         (pair
            (triple
               (map (Printf.sprintf "site-%04d.example") (int_range 0 9999))
               (opt entity) (opt entity))
            (triple (opt entity) entity (opt cc)))
         (pair (triple (opt cc) bool bool) lang))
  in
  let codec = D.Compact.codec () in
  QCheck.Test.make ~name:"Compact.decode (Compact.encode s) = s" ~count:1000
    (QCheck.make gen) (fun s -> D.Compact.decode codec (D.Compact.encode codec s) = s)

let qtest = QCheck_alcotest.to_alcotest

(* --- Symbol ----------------------------------------------------------------- *)

let test_symbol_round_trip () =
  let t = Symbol.create () in
  let a = Symbol.intern t "Cloudflare" in
  let b = Symbol.intern t "Amazon" in
  Alcotest.(check int) "dense ids" 0 a;
  Alcotest.(check int) "next id" 1 b;
  Alcotest.(check int) "re-intern is stable" a (Symbol.intern t "Cloudflare");
  Alcotest.(check string) "name round-trips" "Cloudflare" (Symbol.name t a);
  Alcotest.(check string) "name round-trips (2)" "Amazon" (Symbol.name t b);
  Alcotest.(check (option int)) "find" (Some b) (Symbol.find t "Amazon");
  Alcotest.(check (option int)) "find missing" None (Symbol.find t "GoDaddy");
  Alcotest.(check int) "count" 2 (Symbol.count t)

let test_symbol_growth () =
  (* Interning past the initial capacity grows the name table without
     disturbing ids or names. *)
  let t = Symbol.create ~size:2 () in
  let names = List.init 100 (Printf.sprintf "provider-%03d") in
  let ids = List.map (Symbol.intern t) names in
  Alcotest.(check (list int)) "first-seen order" (List.init 100 Fun.id) ids;
  Alcotest.(check int) "count" 100 (Symbol.count t);
  List.iteri
    (fun id name ->
      Alcotest.(check string) (Printf.sprintf "name %d survives growth" id) name
        (Symbol.name t id))
    names;
  let seen = ref [] in
  Symbol.iter (fun id name -> seen := (id, name) :: !seen) t;
  Alcotest.(check int) "iter covers all" 100 (List.length !seen);
  Alcotest.(check bool) "iter ascending" true
    (List.for_all2 (fun (id, _) want -> id = want) (List.rev !seen) (List.init 100 Fun.id))

let test_symbol_out_of_range () =
  let t = Symbol.create () in
  ignore (Symbol.intern t "only");
  Alcotest.check_raises "out of range" (Invalid_argument "Symbol.name: id out of range")
    (fun () -> ignore (Symbol.name t 1))

let () =
  Alcotest.run "webdep_core"
    [
      ( "symbol",
        [
          Alcotest.test_case "round trip" `Quick test_symbol_round_trip;
          Alcotest.test_case "growth" `Quick test_symbol_growth;
          Alcotest.test_case "out of range" `Quick test_symbol_out_of_range;
        ] );
      ( "dataset",
        [
          Alcotest.test_case "basics" `Quick test_dataset_basics;
          Alcotest.test_case "distribution" `Quick test_dataset_distribution;
          Alcotest.test_case "counts sorted" `Quick test_dataset_counts_sorted;
          Alcotest.test_case "entity share" `Quick test_dataset_entity_share;
          Alcotest.test_case "merged" `Quick test_dataset_merged;
          Alcotest.test_case "skips unlabelled" `Quick test_dataset_skips_unlabelled;
          Alcotest.test_case "tld present" `Quick test_dataset_tld_always_present;
          qtest compact_round_trip;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "centralization" `Quick test_metrics_centralization;
          Alcotest.test_case "all scores sorted" `Quick test_metrics_all_scores_sorted;
          Alcotest.test_case "top n" `Quick test_metrics_top_n;
          Alcotest.test_case "rank curve" `Quick test_metrics_rank_curve;
          Alcotest.test_case "providers for share" `Quick test_metrics_providers_for_share;
          Alcotest.test_case "global score" `Quick test_metrics_global_score;
        ] );
      ( "regionalization",
        [
          Alcotest.test_case "insularity" `Quick test_insularity;
          Alcotest.test_case "all insularity sorted" `Quick test_all_insularity_sorted;
          Alcotest.test_case "usage curve" `Quick test_usage_curve;
          Alcotest.test_case "regional more endemic" `Quick test_usage_curve_regional_provider;
          Alcotest.test_case "missing provider" `Quick test_usage_missing_provider;
          Alcotest.test_case "all usage sorted" `Quick test_all_usage_sorted;
          Alcotest.test_case "foreign dependence" `Quick test_foreign_dependence;
        ] );
      ( "classify",
        [
          Alcotest.test_case "toy" `Quick test_classify_toy;
          Alcotest.test_case "shares sum" `Quick test_classify_shares_sum;
          Alcotest.test_case "klass names" `Quick test_klass_names;
          Alcotest.test_case "klass_of" `Quick test_klass_of;
        ] );
      ( "report",
        [
          Alcotest.test_case "ranked" `Quick test_report_ranked;
          Alcotest.test_case "layer stats" `Quick test_report_layer_stats;
          Alcotest.test_case "histogram" `Quick test_report_histogram;
          Alcotest.test_case "cdf" `Quick test_report_cdf;
          Alcotest.test_case "region means skip unknown" `Quick
            test_report_region_means_skip_unknown_codes;
          Alcotest.test_case "subregion spread toy" `Quick
            test_report_subregion_spread_empty_for_toy;
          Alcotest.test_case "dependence matrix toy" `Quick test_dependence_matrix_toy;
        ] );
      ("toolkit", [ Alcotest.test_case "summary" `Quick test_toolkit_summary ]);
      ( "render",
        [
          Alcotest.test_case "bar chart" `Quick test_render_bar_chart;
          Alcotest.test_case "histogram" `Quick test_render_histogram;
          Alcotest.test_case "rank curve" `Quick test_render_rank_curve;
        ] );
      ( "bootstrap interval",
        [ Alcotest.test_case "centralization interval" `Quick test_centralization_interval ] );
      ( "longitudinal",
        [ Alcotest.test_case "compare" `Quick test_longitudinal_compare ] );
      ( "validate",
        [
          Alcotest.test_case "correlate" `Quick test_validate_correlate;
          Alcotest.test_case "too few" `Quick test_validate_too_few;
        ] );
    ]
