(* webdep_par: the domain pool's combinators (order, exceptions, nesting),
   domain-safety of the obs metrics under concurrent hammering, and the
   headline guarantee — measure_all returns an identical dataset at any
   jobs value. *)

module Par = Webdep_par
module Pool = Webdep_par.Pool
module Metrics = Webdep_obs.Metrics
module World = Webdep_worldgen.World
module Measure = Webdep_pipeline.Measure
module D = Webdep.Dataset

let check = Alcotest.check

(* --- pool combinators --------------------------------------------------- *)

let test_map_matches_list_map () =
  Pool.with_pool ~jobs:4 (fun p ->
      let xs = List.init 1000 Fun.id in
      check (Alcotest.list Alcotest.int) "map = List.map"
        (List.map (fun x -> (x * 7) + 1) xs)
        (Pool.map p (fun x -> (x * 7) + 1) xs);
      check (Alcotest.list Alcotest.int) "empty" [] (Pool.map p succ []);
      check (Alcotest.list Alcotest.int) "singleton" [ 42 ] (Pool.map p succ [ 41 ]))

let test_map_array_order () =
  Pool.with_pool ~jobs:3 (fun p ->
      let arr = Array.init 500 string_of_int in
      let out = Pool.map_array p (fun s -> s ^ "!") arr in
      check Alcotest.int "length" 500 (Array.length out);
      Array.iteri
        (fun i s -> check Alcotest.string "slot order" (string_of_int i ^ "!") s)
        out)

let test_parallel_for_covers_all () =
  Pool.with_pool ~jobs:4 (fun p ->
      let hits = Array.init 300 (fun _ -> Atomic.make 0) in
      Pool.parallel_for p ~n:300 (fun i -> ignore (Atomic.fetch_and_add hits.(i) 1));
      Array.iteri
        (fun i h -> check Alcotest.int (Printf.sprintf "index %d once" i) 1 (Atomic.get h))
        hits)

let test_exception_propagates () =
  Pool.with_pool ~jobs:4 (fun p ->
      (match Pool.map p (fun x -> if x = 37 then failwith "boom" else x) (List.init 100 Fun.id) with
      | _ -> Alcotest.fail "expected exception"
      | exception Failure msg -> check Alcotest.string "message" "boom" msg);
      (* The pool survives a failed run. *)
      check (Alcotest.list Alcotest.int) "pool still works" [ 2; 3 ]
        (Pool.map p succ [ 1; 2 ]))

let test_nested_map_falls_back () =
  Pool.with_pool ~jobs:4 (fun p ->
      let out =
        Pool.map p
          (fun i ->
            (* A nested combinator on the same pool must run sequentially
               rather than deadlock waiting for busy lanes. *)
            List.fold_left ( + ) 0 (Pool.map p (fun j -> (i * 10) + j) [ 0; 1; 2 ]))
          (List.init 50 Fun.id)
      in
      check (Alcotest.list Alcotest.int) "nested results"
        (List.init 50 (fun i -> (3 * 10 * i) + 3))
        out)

let test_jobs_one_is_sequential () =
  Pool.with_pool ~jobs:1 (fun p ->
      (* No worker domains: observable through side-effect ordering. *)
      let trace = ref [] in
      let out = Pool.map p (fun i -> trace := i :: !trace; i) [ 1; 2; 3; 4 ] in
      check (Alcotest.list Alcotest.int) "in order" [ 4; 3; 2; 1 ] !trace;
      check (Alcotest.list Alcotest.int) "result" [ 1; 2; 3; 4 ] out)

let qcheck_map_equals_list_map =
  QCheck.Test.make ~name:"Par.map f = List.map f for any list and jobs" ~count:30
    QCheck.(pair (int_range 1 6) (small_list small_int))
    (fun (jobs, xs) ->
      Par.map ~jobs (fun x -> (x * 3) - 1) xs = List.map (fun x -> (x * 3) - 1) xs)

(* --- domain-safety of the metrics registry ------------------------------ *)

let test_metrics_hammer () =
  (* Raw Domain.spawn (not the pool): 4 domains each bump a counter and
     observe into a histogram; exact totals prove no update was lost. *)
  let cnt = Metrics.counter "test.par.hammer_counter" in
  let h = Metrics.histogram "test.par.hammer_hist" in
  let per_domain = 25_000 in
  let n_domains = 4 in
  let body () =
    for _ = 1 to per_domain do
      Metrics.incr cnt;
      Metrics.observe h 1.0
    done
  in
  let domains = List.init n_domains (fun _ -> Domain.spawn body) in
  List.iter Domain.join domains;
  check Alcotest.int "counter exact" (n_domains * per_domain) (Metrics.value cnt);
  check Alcotest.int "histogram count exact" (n_domains * per_domain) (Metrics.count h);
  check (Alcotest.float 1e-6) "histogram sum exact"
    (float_of_int (n_domains * per_domain))
    (Metrics.sum h);
  check (Alcotest.float 1e-6) "mean" 1.0 (Metrics.mean h);
  check (Alcotest.option (Alcotest.float 0.0)) "min" (Some 1.0) (Metrics.min_value h);
  check (Alcotest.option (Alcotest.float 0.0)) "max" (Some 1.0) (Metrics.max_value h)

let test_concurrent_registration () =
  (* Creating the same metric from several domains must yield one
     physical counter, not racing duplicates. *)
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            let c = Metrics.counter "test.par.shared_by_name" in
            Metrics.incr c))
  in
  List.iter Domain.join domains;
  check Alcotest.int "all increments on one counter" 4
    (Metrics.value (Metrics.counter "test.par.shared_by_name"))

(* --- determinism of the parallel pipeline ------------------------------- *)

let entity_eq (a : D.entity option) b = a = b

let country_data_equal (a : D.country_data) (b : D.country_data) =
  a.D.country = b.D.country
  && List.length a.D.sites = List.length b.D.sites
  && List.for_all2
       (fun (x : D.site) (y : D.site) ->
         x.D.domain = y.D.domain
         && entity_eq x.D.hosting y.D.hosting
         && entity_eq x.D.dns y.D.dns
         && entity_eq x.D.ca y.D.ca
         && x.D.tld = y.D.tld
         && x.D.hosting_geo = y.D.hosting_geo
         && x.D.ns_geo = y.D.ns_geo
         && x.D.hosting_anycast = y.D.hosting_anycast
         && x.D.ns_anycast = y.D.ns_anycast
         && x.D.language = y.D.language)
       a.D.sites b.D.sites

let test_measure_all_jobs_invariant () =
  let countries = [ "US"; "RU"; "BR"; "PT"; "JP" ] in
  (* Two fresh worlds with the same seed: the jobs=4 sweep must produce
     exactly the jobs=1 dataset, including shared-state effects like
     geolocation and anycast. *)
  let ds1 =
    Measure.measure_all ~countries ~jobs:1 (World.create ~c:120 ~seed:77 ())
  in
  let ds4 =
    Measure.measure_all ~countries ~jobs:4 (World.create ~c:120 ~seed:77 ())
  in
  List.iter
    (fun cc ->
      Alcotest.(check bool)
        (Printf.sprintf "%s identical at jobs 1 and 4" cc)
        true
        (country_data_equal (D.country_exn ds1 cc) (D.country_exn ds4 cc)))
    countries

let test_interner_jobs_invariant_at_scale () =
  (* c=2000 over four countries: the dataset's interned entity pool —
     ids in first-intern order, not just the decoded string view — must
     be identical whether the sweep ran on 1 or 4 domains (ids are
     assigned during the sequential fold, so scheduling must never leak
     into them), and stable across repeat runs of the same world. *)
  let countries = [ "US"; "DE"; "BR"; "JP" ] in
  let sweep jobs = Measure.measure_all ~countries ~jobs (World.create ~c:2000 ~seed:41 ()) in
  let ds1 = sweep 1 and ds4 = sweep 4 in
  check Alcotest.int "pool size" (D.Compact.entity_count ds1) (D.Compact.entity_count ds4);
  let e1 = D.Compact.entities ds1 and e4 = D.Compact.entities ds4 in
  Array.iteri
    (fun i (e : D.entity) ->
      if e4.(i) <> e then
        Alcotest.fail
          (Printf.sprintf "entity id %d differs across jobs: %s/%s vs %s/%s" i e.D.name
             e.D.country e4.(i).D.name e4.(i).D.country))
    e1;
  let ds4' = sweep 4 in
  check Alcotest.int "stable pool size" (D.Compact.entity_count ds4)
    (D.Compact.entity_count ds4');
  Alcotest.(check bool) "stable ids on re-measure" true
    (D.Compact.entities ds4 = D.Compact.entities ds4')

let test_prepare_then_snapshot_matches_direct () =
  (* Snapshot after prepare = snapshot without prepare, same world seed:
     prepare only front-loads registrations, never changes assignments. *)
  let w1 = World.create ~c:100 ~seed:5 () in
  let direct = World.snapshot w1 "DE" in
  let w2 = World.create ~c:100 ~seed:5 () in
  World.prepare w2 [ "DE" ];
  let prepared = World.snapshot w2 "DE" in
  let domains s = Webdep_crux.Toplist.domains s.World.toplist in
  check (Alcotest.list Alcotest.string) "same toplist" (domains direct) (domains prepared);
  List.iter
    (fun d ->
      let get s = Hashtbl.find s.World.assigned d in
      Alcotest.(check bool) ("assigned " ^ d) true (get direct = get prepared))
    (domains direct)

let test_bootstrap_jobs_invariant () =
  let rng () = Webdep_stats.Rng.create 31 in
  let data = Array.init 400 (fun i -> float_of_int (i mod 23)) in
  let stat arr = Array.fold_left ( +. ) 0.0 arr /. float_of_int (Array.length arr) in
  let lo1, hi1 =
    Webdep_stats.Bootstrap.percentile_interval ~iterations:200 ~jobs:1 (rng ()) ~statistic:stat data
  in
  let lo4, hi4 =
    Webdep_stats.Bootstrap.percentile_interval ~iterations:200 ~jobs:4 (rng ()) ~statistic:stat data
  in
  check (Alcotest.float 0.0) "lo identical" lo1 lo4;
  check (Alcotest.float 0.0) "hi identical" hi1 hi4;
  let se1 = Webdep_stats.Bootstrap.standard_error ~jobs:1 (rng ()) ~statistic:stat data in
  let se4 = Webdep_stats.Bootstrap.standard_error ~jobs:4 (rng ()) ~statistic:stat data in
  check (Alcotest.float 0.0) "stderr identical" se1 se4

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "webdep_par"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches List.map" `Quick test_map_matches_list_map;
          Alcotest.test_case "map_array keeps order" `Quick test_map_array_order;
          Alcotest.test_case "parallel_for covers all" `Quick test_parallel_for_covers_all;
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
          Alcotest.test_case "nested map falls back" `Quick test_nested_map_falls_back;
          Alcotest.test_case "jobs=1 sequential" `Quick test_jobs_one_is_sequential;
          qtest qcheck_map_equals_list_map;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "4-domain hammer, exact totals" `Quick test_metrics_hammer;
          Alcotest.test_case "concurrent registration" `Quick test_concurrent_registration;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "measure_all jobs-invariant" `Slow test_measure_all_jobs_invariant;
          Alcotest.test_case "interner ids jobs-invariant at c=2000" `Slow
            test_interner_jobs_invariant_at_scale;
          Alcotest.test_case "prepare = direct snapshot" `Quick
            test_prepare_then_snapshot_matches_direct;
          Alcotest.test_case "bootstrap jobs-invariant" `Quick test_bootstrap_jobs_invariant;
        ] );
    ]
