(* Failure injection: broken zones, lame delegations, missing
   certificates, unresolvable sites, degenerate datasets — the toolkit
   must degrade gracefully, never crash or silently mislabel. *)

module Ipv4 = Webdep_netsim.Ipv4
module Zone_db = Webdep_dnssim.Zone_db
module Resolver = Webdep_dnssim.Resolver
module Hierarchy = Webdep_dnssim.Hierarchy
module Iterative = Webdep_dnssim.Iterative
module D = Webdep.Dataset

let addr s = Option.get (Ipv4.addr_of_string s)

(* --- DNS failures -------------------------------------------------------- *)

let test_empty_a_record () =
  let db = Zone_db.create () in
  Zone_db.add_domain db ~domain:"empty.example.com" ~ns_hosts:[ "ns1.x.sim" ]
    ~a:(Zone_db.Static []);
  (match Resolver.resolve db ~vantage:"US" "empty.example.com" with
  | Ok r -> Alcotest.(check int) "no addresses" 0 (List.length r.Resolver.a)
  | Error _ -> Alcotest.fail "domain exists, should not be nxdomain");
  Alcotest.(check bool) "resolve_a none" true
    (Resolver.resolve_a db ~vantage:"US" "empty.example.com" = None)

let test_iterative_missing_glue_servfails () =
  let db = Zone_db.create () in
  (* Domain delegated to a nameserver with no glue anywhere. *)
  Zone_db.add_domain db ~domain:"busted.example.com" ~ns_hosts:[ "ns1.missing.sim" ]
    ~a:(Zone_db.Static [ addr "10.0.0.1" ]);
  let h = Hierarchy.build db in
  match Iterative.resolve h ~vantage:"US" "busted.example.com" with
  | Error (Iterative.Servfail reason) ->
      Alcotest.(check string) "reason" "referral without glue" reason
  | Ok _ -> Alcotest.fail "must not resolve through a glueless delegation"
  | Error e -> Alcotest.fail ("servfail expected, got " ^ Resolver.error_message e)

let test_dynamic_answer_that_raises_is_contained () =
  (* A buggy Dynamic closure must not corrupt sibling lookups. *)
  let db = Zone_db.create () in
  Zone_db.add_domain db ~domain:"good.example.com" ~ns_hosts:[]
    ~a:(Zone_db.Static [ addr "10.0.0.1" ]);
  Zone_db.add_domain db ~domain:"bad.example.com" ~ns_hosts:[]
    ~a:(Zone_db.Dynamic (fun _ -> failwith "boom"));
  (match Resolver.resolve_a db ~vantage:"US" "good.example.com" with
  | Some _ -> ()
  | None -> Alcotest.fail "good domain unaffected");
  Alcotest.check_raises "bad domain surfaces its failure" (Failure "boom") (fun () ->
      ignore (Resolver.resolve_a db ~vantage:"US" "bad.example.com"))

(* --- Dataset with failures --------------------------------------------------- *)

let e name country = { D.name; country }

let failed_site domain =
  (* Resolution failed: no hosting, no DNS, no CA, no geo. *)
  {
    D.domain;
    hosting = None;
    dns = None;
    ca = None;
    tld = e ".com" "US";
    hosting_geo = None;
    ns_geo = None;
    hosting_anycast = false;
    ns_anycast = false;
    language = None;
  }

let ok_site domain provider =
  { (failed_site domain) with hosting = Some (e provider "US") }

let test_dataset_with_partial_failures () =
  let ds =
    D.of_country_data
      [
        {
          D.country = "AA";
          sites =
            [ ok_site "a.com" "P"; ok_site "b.com" "P"; ok_site "c.com" "Q";
              failed_site "dead1.com"; failed_site "dead2.com" ];
        };
      ]
  in
  (* The hosting distribution covers only the three measured sites. *)
  let dist = D.distribution ds Hosting "AA" in
  Alcotest.(check (float 1e-9)) "three measured" 3.0 (Webdep_emd.Dist.total dist);
  (* Scores still computable; TLD layer covers all five. *)
  let s = Webdep.Metrics.centralization ds Hosting "AA" in
  Alcotest.(check bool) "finite score" true (Float.is_finite s);
  Alcotest.(check (float 1e-9)) "tld covers all" 5.0
    (Webdep_emd.Dist.total (D.distribution ds Tld "AA"))

let test_dataset_all_failed_layer_raises () =
  let ds = D.of_country_data [ { D.country = "AA"; sites = [ failed_site "a.com" ] } ] in
  Alcotest.check_raises "no hosting labels" Not_found (fun () ->
      ignore (D.distribution ds Hosting "AA"))

let test_insularity_with_failures_counts_whole_toplist () =
  let ds =
    D.of_country_data
      [ { D.country = "US"; sites = [ ok_site "a.com" "P"; failed_site "dead.com" ] } ]
  in
  (* One of two sites is US-hosted: insularity is 1/2, not 1/1 — failures
     stay in the denominator, as in the paper's per-toplist fractions. *)
  Alcotest.(check (float 1e-9)) "denominator is toplist" 0.5
    (Webdep.Regionalization.insularity ds Hosting "US")

(* --- Handshake failures --------------------------------------------------------- *)

let test_unknown_issuer_is_unlabelled () =
  (* A cert chaining to an issuer CCADB does not know yields no CA label
     (the §7.2 state-CA path), exercised at the pipeline level through a
     handshake store with no matching CCADB entry. *)
  let ca_db = Webdep_tlssim.Ca.create () in
  Alcotest.(check bool) "unknown issuer" true
    (Webdep_tlssim.Ca.owner_of_issuer ca_db "Mystery CA R1" = None)

let test_expired_certificate_detection () =
  let cert =
    { Webdep_tlssim.Cert.subject = "a.example"; issuer_cn = "R3"; not_before = 0;
      not_after = 90 }
  in
  Alcotest.(check bool) "expired" false (Webdep_tlssim.Cert.valid_at cert 91)

(* --- Degenerate statistics --------------------------------------------------------- *)

let test_single_site_country () =
  let ds = D.of_country_data [ { D.country = "AA"; sites = [ ok_site "only.com" "P" ] } ] in
  (* One site, one provider: S = 1 − 1/1 = 0 under the formula with C=1. *)
  Alcotest.(check (float 1e-9)) "degenerate S" 0.0
    (Webdep.Metrics.centralization ds Hosting "AA")

let test_classify_on_tiny_dataset () =
  let ds =
    D.of_country_data
      [ { D.country = "AA"; sites = [ ok_site "a.com" "P"; ok_site "b.com" "Q" ] } ]
  in
  let cl = Webdep.Classify.classify ds Hosting in
  Alcotest.(check int) "two providers" 2 (List.length cl.Webdep.Classify.providers)

let test_bootstrap_on_tiny_sample () =
  let ds =
    D.of_country_data
      [ { D.country = "AA"; sites = [ ok_site "a.com" "P"; ok_site "b.com" "Q" ] } ]
  in
  let lo, hi = Webdep.Metrics.centralization_interval ~iterations:50 ~seed:1 ds Hosting "AA" in
  Alcotest.(check bool) "ordered" true (lo <= hi)

(* --- Geolocation degradation ---------------------------------------------------------- *)

let test_zero_accuracy_geolocation_still_measures_orgs () =
  (* Even with a fully wrong geolocation database, provider labels (AS
     org based) are untouched: S is geolocation-independent, as in the
     paper's methodology. *)
  let world_bad = Webdep_worldgen.World.create ~c:300 ~geo_accuracy:0.0 ~seed:5 () in
  let world_good = Webdep_worldgen.World.create ~c:300 ~geo_accuracy:1.0 ~seed:5 () in
  let s_bad =
    Webdep.Metrics.centralization
      (Webdep_pipeline.Measure.measure_all ~countries:[ "DE" ] world_bad)
      Hosting "DE"
  in
  let s_good =
    Webdep.Metrics.centralization
      (Webdep_pipeline.Measure.measure_all ~countries:[ "DE" ] world_good)
      Hosting "DE"
  in
  Alcotest.(check (float 1e-9)) "S immune to geolocation errors" s_good s_bad

let () =
  Alcotest.run "webdep_failures"
    [
      ( "dns",
        [
          Alcotest.test_case "empty a record" `Quick test_empty_a_record;
          Alcotest.test_case "missing glue servfails" `Quick test_iterative_missing_glue_servfails;
          Alcotest.test_case "dynamic failure contained" `Quick
            test_dynamic_answer_that_raises_is_contained;
        ] );
      ( "dataset",
        [
          Alcotest.test_case "partial failures" `Quick test_dataset_with_partial_failures;
          Alcotest.test_case "all failed raises" `Quick test_dataset_all_failed_layer_raises;
          Alcotest.test_case "insularity denominator" `Quick
            test_insularity_with_failures_counts_whole_toplist;
        ] );
      ( "tls",
        [
          Alcotest.test_case "unknown issuer" `Quick test_unknown_issuer_is_unlabelled;
          Alcotest.test_case "expired cert" `Quick test_expired_certificate_detection;
        ] );
      ( "degenerate",
        [
          Alcotest.test_case "single site" `Quick test_single_site_country;
          Alcotest.test_case "tiny classify" `Quick test_classify_on_tiny_dataset;
          Alcotest.test_case "tiny bootstrap" `Quick test_bootstrap_on_tiny_sample;
        ] );
      ( "geolocation",
        [
          Alcotest.test_case "zero accuracy immune" `Quick
            test_zero_accuracy_geolocation_still_measures_orgs;
        ] );
    ]
