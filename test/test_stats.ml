(* Unit and property tests for webdep_stats. *)

open Webdep_stats

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_float ?(eps = 1e-9) msg expected actual =
  if not (feq ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* --- Rng --------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 13 in
    if v < 0 || v >= 13 then Alcotest.failf "Rng.int out of bounds: %d" v
  done

let test_rng_int_invalid () =
  let rng = Rng.create 7 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_float_bounds () =
  let rng = Rng.create 9 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.failf "Rng.float out of bounds: %f" v
  done

let test_rng_split_independent () =
  let parent = Rng.create 5 in
  let child = Rng.split parent in
  let c1 = Rng.bits64 child and p1 = Rng.bits64 parent in
  Alcotest.(check bool) "child differs from parent" true (c1 <> p1)

let test_rng_split_named_stable () =
  let mk () = Rng.split_named (Rng.create 11) "alpha" in
  Alcotest.(check int64) "same name, same stream" (Rng.bits64 (mk ())) (Rng.bits64 (mk ()))

let test_rng_split_named_distinct () =
  let parent = Rng.create 11 in
  let a = Rng.split_named parent "alpha" and b = Rng.split_named parent "beta" in
  Alcotest.(check bool) "different names differ" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_split_named_order_free () =
  let p1 = Rng.create 3 in
  let a_first = Rng.bits64 (Rng.split_named p1 "a") in
  let p2 = Rng.create 3 in
  ignore (Rng.bits64 (Rng.split_named p2 "b"));
  let a_second = Rng.bits64 (Rng.split_named p2 "a") in
  Alcotest.(check int64) "named split ignores sibling order" a_first a_second

let test_rng_uniformity () =
  (* Coarse chi-square-ish sanity: 10 buckets, 100k draws, each within
     20% of expectation. *)
  let rng = Rng.create 1234 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let b = Rng.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iteri
    (fun i k ->
      if k < 8_000 || k > 12_000 then Alcotest.failf "bucket %d skewed: %d" i k)
    buckets

(* --- Sample ------------------------------------------------------------ *)

let test_zipf_weights () =
  let w = Sample.zipf_weights ~s:1.0 4 in
  check_float "w0" 1.0 w.(0);
  check_float "w1" 0.5 w.(1);
  check_float "w3" 0.25 w.(3)

let test_zipf_probabilities_sum () =
  let p = Sample.zipf_probabilities ~s:1.3 100 in
  check_float ~eps:1e-9 "sums to 1" 1.0 (Array.fold_left ( +. ) 0.0 p)

let test_zipf_monotone () =
  let p = Sample.zipf_probabilities ~s:0.8 50 in
  for i = 0 to 48 do
    if p.(i) < p.(i + 1) then Alcotest.fail "zipf probabilities must be nonincreasing"
  done

let test_zipf_invalid () =
  Alcotest.check_raises "n=0" (Invalid_argument "Sample.zipf_weights: n must be positive")
    (fun () -> ignore (Sample.zipf_weights ~s:1.0 0))

let test_categorical_draw_distribution () =
  let rng = Rng.create 21 in
  let sampler = Sample.categorical [| 1.0; 3.0 |] in
  let n = 50_000 in
  let ones = ref 0 in
  for _ = 1 to n do
    if Sample.draw sampler rng = 1 then incr ones
  done;
  let frac = float_of_int !ones /. float_of_int n in
  if frac < 0.72 || frac > 0.78 then Alcotest.failf "expected ~0.75, got %f" frac

let test_categorical_zero_weight_never_drawn () =
  let rng = Rng.create 22 in
  let sampler = Sample.categorical [| 0.0; 1.0; 0.0 |] in
  for _ = 1 to 1_000 do
    Alcotest.(check int) "only index 1" 1 (Sample.draw sampler rng)
  done

let test_categorical_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Sample.categorical: empty weights")
    (fun () -> ignore (Sample.categorical [||]));
  Alcotest.check_raises "negative" (Invalid_argument "Sample.categorical: negative weight")
    (fun () -> ignore (Sample.categorical [| 1.0; -0.5 |]));
  Alcotest.check_raises "all zero" (Invalid_argument "Sample.categorical: all weights zero")
    (fun () -> ignore (Sample.categorical [| 0.0; 0.0 |]))

let test_shuffle_permutation () =
  let rng = Rng.create 31 in
  let a = Array.init 100 Fun.id in
  Sample.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 100 Fun.id) sorted

let test_round_shares_exact_total () =
  let shares = [| 0.33; 0.33; 0.34 |] in
  let counts = Sample.round_shares ~total:100 shares in
  Alcotest.(check int) "sums to total" 100 (Array.fold_left ( + ) 0 counts)

let test_round_shares_proportional () =
  let counts = Sample.round_shares ~total:1000 [| 0.5; 0.3; 0.2 |] in
  Alcotest.(check (array int)) "exact split" [| 500; 300; 200 |] counts

let test_round_shares_remainder () =
  let counts = Sample.round_shares ~total:10 [| 1.0; 1.0; 1.0 |] in
  Alcotest.(check int) "sums to 10" 10 (Array.fold_left ( + ) 0 counts);
  Array.iter (fun k -> if k < 3 || k > 4 then Alcotest.fail "uneven largest-remainder") counts

let prop_round_shares_total =
  QCheck.Test.make ~name:"round_shares always sums to total" ~count:200
    QCheck.(pair (int_range 1 5000) (list_of_size (Gen.int_range 1 20) (float_range 0.01 10.0)))
    (fun (total, shares) ->
      let counts = Sample.round_shares ~total (Array.of_list shares) in
      Array.fold_left ( + ) 0 counts = total)

let prop_multinomial_total =
  QCheck.Test.make ~name:"multinomial counts sum to trials" ~count:50
    QCheck.(pair small_nat (int_range 1 10))
    (fun (trials, k) ->
      let rng = Rng.create (trials + k) in
      let probs = Array.make k (1.0 /. float_of_int k) in
      let counts = Sample.multinomial rng ~trials probs in
      Array.fold_left ( + ) 0 counts = trials)

(* --- Descriptive -------------------------------------------------------- *)

let test_mean () = check_float "mean" 2.5 (Descriptive.mean [| 1.0; 2.0; 3.0; 4.0 |])

let test_variance () =
  check_float "population variance" 1.25 (Descriptive.variance [| 1.0; 2.0; 3.0; 4.0 |])

let test_sample_variance () =
  check_float ~eps:1e-9 "sample variance" (5.0 /. 3.0)
    (Descriptive.sample_variance [| 1.0; 2.0; 3.0; 4.0 |])

let test_median_odd () = check_float "odd median" 3.0 (Descriptive.median [| 5.0; 1.0; 3.0 |])

let test_median_even () =
  check_float "even median" 2.5 (Descriptive.median [| 4.0; 1.0; 2.0; 3.0 |])

let test_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "p0" 1.0 (Descriptive.percentile xs 0.0);
  check_float "p50" 3.0 (Descriptive.percentile xs 50.0);
  check_float "p100" 5.0 (Descriptive.percentile xs 100.0);
  check_float "p25" 2.0 (Descriptive.percentile xs 25.0)

let test_empty_raises () =
  Alcotest.check_raises "mean of empty" (Invalid_argument "Descriptive.mean: empty input")
    (fun () -> ignore (Descriptive.mean [||]))

let test_normalize () =
  let p = Descriptive.normalize [| 2.0; 6.0 |] in
  check_float "first" 0.25 p.(0);
  check_float "second" 0.75 p.(1)

(* --- Special ------------------------------------------------------------ *)

let test_log_gamma_factorials () =
  (* Γ(n) = (n−1)! *)
  check_float ~eps:1e-9 "Γ(1)" 0.0 (Special.log_gamma 1.0);
  check_float ~eps:1e-9 "Γ(5)=24" (log 24.0) (Special.log_gamma 5.0);
  check_float ~eps:1e-8 "Γ(10)=362880" (log 362880.0) (Special.log_gamma 10.0)

let test_log_gamma_half () =
  check_float ~eps:1e-9 "Γ(1/2)=√π" (0.5 *. log Float.pi) (Special.log_gamma 0.5)

let test_incomplete_beta_bounds () =
  check_float "I_0" 0.0 (Special.incomplete_beta ~a:2.0 ~b:3.0 0.0);
  check_float "I_1" 1.0 (Special.incomplete_beta ~a:2.0 ~b:3.0 1.0)

let test_incomplete_beta_symmetry () =
  (* I_x(a,b) = 1 − I_{1−x}(b,a) *)
  let x = 0.3 and a = 2.5 and b = 1.5 in
  check_float ~eps:1e-10 "symmetry"
    (Special.incomplete_beta ~a ~b x)
    (1.0 -. Special.incomplete_beta ~a:b ~b:a (1.0 -. x))

let test_incomplete_beta_uniform () =
  (* I_x(1,1) = x *)
  check_float ~eps:1e-12 "I_x(1,1)" 0.42 (Special.incomplete_beta ~a:1.0 ~b:1.0 0.42)

let test_student_t_known () =
  (* Two-sided p for t=2.0, df=10 is ~0.0734 (standard tables). *)
  let p = Special.student_t_sf ~df:10.0 2.0 in
  if Float.abs (p -. 0.0734) > 0.002 then Alcotest.failf "t sf wrong: %f" p

let test_student_t_zero () =
  check_float ~eps:1e-12 "t=0 gives p=1" 1.0 (Special.student_t_sf ~df:5.0 0.0)

(* --- Correlation -------------------------------------------------------- *)

let test_pearson_perfect () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = Array.map (fun x -> (2.0 *. x) +. 1.0) xs in
  let r = Correlation.pearson xs ys in
  check_float ~eps:1e-12 "rho=1" 1.0 r.Correlation.rho;
  check_float ~eps:1e-9 "p=0" 0.0 r.Correlation.p_value

let test_pearson_anti () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = Array.map (fun x -> -.x) xs in
  check_float ~eps:1e-12 "rho=-1" (-1.0) (Correlation.pearson xs ys).Correlation.rho

let test_pearson_known_value () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] and ys = [| 2.0; 1.0; 4.0; 3.0; 5.0 |] in
  let r = Correlation.pearson xs ys in
  check_float ~eps:1e-9 "rho" 0.8 r.Correlation.rho

let test_pearson_constant_raises () =
  Alcotest.check_raises "constant" (Invalid_argument "Correlation.pearson: constant input")
    (fun () -> ignore (Correlation.pearson [| 1.0; 1.0; 1.0 |] [| 1.0; 2.0; 3.0 |]))

let test_spearman_monotone () =
  (* Any strictly monotone transform gives rho = 1. *)
  let xs = [| 1.0; 5.0; 2.0; 9.0; 4.0 |] in
  let ys = Array.map (fun x -> exp x) xs in
  check_float ~eps:1e-12 "rho=1" 1.0 (Correlation.spearman xs ys).Correlation.rho

let test_spearman_ties () =
  let xs = [| 1.0; 1.0; 2.0; 3.0 |] and ys = [| 1.0; 2.0; 3.0; 4.0 |] in
  let r = Correlation.spearman xs ys in
  if r.Correlation.rho <= 0.8 then Alcotest.failf "tied spearman too low: %f" r.Correlation.rho

let test_fisher_interval () =
  let xs = Array.init 30 float_of_int in
  let ys = Array.map (fun x -> (2.0 *. x) +. Float.rem x 3.0) xs in
  let r = Correlation.pearson xs ys in
  let lo, hi = Correlation.fisher_interval r in
  Alcotest.(check bool) "brackets rho" true (lo <= r.Correlation.rho && r.Correlation.rho <= hi);
  Alcotest.(check bool) "proper interval" true (lo < hi && hi <= 1.0 && lo >= -1.0);
  let lo99, hi99 = Correlation.fisher_interval ~confidence:0.99 r in
  Alcotest.(check bool) "wider at 99%" true (lo99 <= lo && hi99 >= hi)

let test_permutation_p_agrees_with_t () =
  (* Strong linear relationship: both p-values tiny. *)
  let rng = Rng.create 61 in
  let xs = Array.init 40 float_of_int in
  let ys = Array.map (fun x -> (3.0 *. x) +. Float.rem x 5.0) xs in
  let p_perm = Correlation.permutation_p ~iterations:400 rng xs ys in
  Alcotest.(check bool) "significant" true (p_perm < 0.02);
  (* Independent noise: permutation p large. *)
  let rng2 = Rng.create 62 in
  let noise = Array.init 40 (fun _ -> Rng.float rng2 1.0) in
  let xs2 = Array.init 40 (fun _ -> Rng.float rng2 1.0) in
  let p_noise = Correlation.permutation_p ~iterations:400 rng xs2 noise in
  Alcotest.(check bool) "insignificant" true (p_noise > 0.05)

let test_fisher_interval_small_n () =
  let r = { Correlation.rho = 0.5; p_value = 0.5; n = 3 } in
  Alcotest.check_raises "n too small"
    (Invalid_argument "Correlation.fisher_interval: need n >= 4") (fun () ->
      ignore (Correlation.fisher_interval r))

let test_strength_bands () =
  Alcotest.(check string) "poor" "poor" Correlation.(strength_to_string (strength 0.1));
  Alcotest.(check string) "fair" "fair" Correlation.(strength_to_string (strength 0.45));
  Alcotest.(check string) "moderate" "moderate" Correlation.(strength_to_string (strength (-0.7)));
  Alcotest.(check string) "strong" "strong" Correlation.(strength_to_string (strength 0.9))

let prop_pearson_symmetric =
  QCheck.Test.make ~name:"pearson is symmetric" ~count:100
    QCheck.(list_of_size (Gen.int_range 3 40) (pair (float_range (-100.) 100.) (float_range (-100.) 100.)))
    (fun pairs ->
      let xs = Array.of_list (List.map fst pairs) in
      let ys = Array.of_list (List.map snd pairs) in
      try
        let a = (Correlation.pearson xs ys).Correlation.rho in
        let b = (Correlation.pearson ys xs).Correlation.rho in
        Float.abs (a -. b) < 1e-9
      with Invalid_argument _ -> QCheck.assume_fail ())

let prop_pearson_bounded =
  QCheck.Test.make ~name:"pearson in [-1,1]" ~count:200
    QCheck.(list_of_size (Gen.int_range 3 40) (pair (float_range (-1000.) 1000.) (float_range (-1000.) 1000.)))
    (fun pairs ->
      let xs = Array.of_list (List.map fst pairs) in
      let ys = Array.of_list (List.map snd pairs) in
      try
        let r = (Correlation.pearson xs ys).Correlation.rho in
        r >= -1.0 && r <= 1.0
      with Invalid_argument _ -> QCheck.assume_fail ())

let test_normal_moments () =
  let rng = Rng.create 51 in
  let n = 20_000 in
  let xs = Array.init n (fun _ -> Sample.normal rng ~mean:3.0 ~stddev:2.0) in
  let m = Descriptive.mean xs and sd = Descriptive.stddev xs in
  if Float.abs (m -. 3.0) > 0.05 then Alcotest.failf "mean %f" m;
  if Float.abs (sd -. 2.0) > 0.05 then Alcotest.failf "stddev %f" sd

let test_normal_invalid () =
  let rng = Rng.create 52 in
  Alcotest.check_raises "negative stddev" (Invalid_argument "Sample.normal: negative stddev")
    (fun () -> ignore (Sample.normal rng ~mean:0.0 ~stddev:(-1.0)))

let test_log_normal_positive () =
  let rng = Rng.create 53 in
  for _ = 1 to 1000 do
    if Sample.log_normal rng ~mu:2.0 ~sigma:1.0 <= 0.0 then Alcotest.fail "must be positive"
  done

(* --- Bootstrap ------------------------------------------------------------ *)

let test_resample_same_length_and_support () =
  let rng = Rng.create 41 in
  let data = Array.init 50 float_of_int in
  let r = Bootstrap.resample rng data in
  Alcotest.(check int) "length" 50 (Array.length r);
  Array.iter (fun x -> if x < 0.0 || x > 49.0 then Alcotest.fail "outside support") r

let test_bootstrap_interval_brackets_mean () =
  let rng = Rng.create 42 in
  let data = Array.init 200 (fun i -> float_of_int (i mod 10)) in
  let lo, hi = Bootstrap.percentile_interval rng ~statistic:Descriptive.mean data in
  let m = Descriptive.mean data in
  Alcotest.(check bool) "brackets mean" true (lo <= m && m <= hi);
  Alcotest.(check bool) "tight for 200 points" true (hi -. lo < 1.5)

let test_bootstrap_interval_narrows_with_n () =
  let width n =
    let rng = Rng.create 43 in
    let data = Array.init n (fun i -> float_of_int (i mod 10)) in
    let lo, hi = Bootstrap.percentile_interval rng ~statistic:Descriptive.mean data in
    hi -. lo
  in
  Alcotest.(check bool) "more data, tighter CI" true (width 1000 < width 50)

let test_bootstrap_invalid () =
  let rng = Rng.create 44 in
  Alcotest.check_raises "empty" (Invalid_argument "Bootstrap.percentile_interval: empty data")
    (fun () -> ignore (Bootstrap.percentile_interval rng ~statistic:Descriptive.mean [||]));
  Alcotest.check_raises "iterations"
    (Invalid_argument "Bootstrap.percentile_interval: too few iterations") (fun () ->
      ignore
        (Bootstrap.percentile_interval ~iterations:3 rng ~statistic:Descriptive.mean [| 1.0 |]))

let test_bootstrap_standard_error () =
  let rng = Rng.create 45 in
  let data = Array.init 500 (fun i -> float_of_int (i mod 7)) in
  let se = Bootstrap.standard_error rng ~statistic:Descriptive.mean data in
  (* SE of the mean ~ sd/sqrt(n) = 2/22.4 ~ 0.09. *)
  Alcotest.(check bool) "plausible" true (se > 0.03 && se < 0.2)

(* --- Similarity ---------------------------------------------------------- *)

let test_jaccard_identical () =
  check_float "identical" 1.0 (Similarity.jaccard_strings [ "a"; "b" ] [ "b"; "a" ])

let test_jaccard_disjoint () =
  check_float "disjoint" 0.0 (Similarity.jaccard_strings [ "a" ] [ "b" ])

let test_jaccard_partial () =
  check_float "half" (1.0 /. 3.0) (Similarity.jaccard_strings [ "a"; "b" ] [ "b"; "c" ])

let test_jaccard_empty () = check_float "both empty" 1.0 (Similarity.jaccard_strings [] [])

let test_jaccard_duplicates_ignored () =
  check_float "duplicates" 1.0 (Similarity.jaccard_strings [ "a"; "a" ] [ "a" ])

let test_overlap () =
  Alcotest.(check int) "overlap" 2 (Similarity.overlap [ "a"; "b"; "c" ] [ "b"; "c"; "d" ])

(* --- Histogram ----------------------------------------------------------- *)

let test_histogram_counts () =
  let h = Histogram.create ~lo:0.0 ~hi:1.0 ~bins:4 [| 0.1; 0.3; 0.6; 0.9; 0.95 |] in
  Alcotest.(check (array int)) "bins" [| 1; 1; 1; 2 |] h.Histogram.counts

let test_histogram_clamps () =
  let h = Histogram.create ~lo:0.0 ~hi:1.0 ~bins:2 [| -5.0; 5.0 |] in
  Alcotest.(check (array int)) "clamped" [| 1; 1 |] h.Histogram.counts

let test_histogram_total () =
  let h = Histogram.create ~lo:0.0 ~hi:1.0 ~bins:3 (Array.make 17 0.5) in
  Alcotest.(check int) "total" 17 (Histogram.total h)

let test_histogram_edges () =
  let h = Histogram.create ~lo:0.0 ~hi:1.0 ~bins:2 [| 0.5 |] in
  let edges = Histogram.bin_edges h in
  check_float "left edge" 0.0 (fst edges.(0));
  check_float "right edge" 1.0 (snd edges.(1))

let test_ecdf () =
  let cdf = Histogram.ecdf [| 3.0; 1.0; 2.0 |] in
  check_float "first x" 1.0 (fst cdf.(0));
  check_float "first F" (1.0 /. 3.0) (snd cdf.(0));
  check_float "last F" 1.0 (snd cdf.(2))

(* --- Scaling ------------------------------------------------------------- *)

let test_min_max () =
  let s = Scaling.min_max [| 2.0; 4.0; 6.0 |] in
  Alcotest.(check (array (float 1e-9))) "scaled" [| 0.0; 0.5; 1.0 |] s

let test_min_max_constant () =
  Alcotest.(check (array (float 1e-9))) "constant maps to 0" [| 0.0; 0.0 |]
    (Scaling.min_max [| 5.0; 5.0 |])

let test_min_max_columns () =
  let m = Scaling.min_max_columns [| [| 0.0; 10.0 |]; [| 10.0; 20.0 |] |] in
  check_float "r0c0" 0.0 m.(0).(0);
  check_float "r0c1" 0.0 m.(0).(1);
  check_float "r1c0" 1.0 m.(1).(0);
  check_float "r1c1" 1.0 m.(1).(1)

let test_z_score () =
  let z = Scaling.z_score [| 1.0; 3.0 |] in
  check_float "z0" (-1.0) z.(0);
  check_float "z1" 1.0 z.(1)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "webdep_stats"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "split_named stable" `Quick test_rng_split_named_stable;
          Alcotest.test_case "split_named distinct" `Quick test_rng_split_named_distinct;
          Alcotest.test_case "split_named order-free" `Quick test_rng_split_named_order_free;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
        ] );
      ( "sample",
        [
          Alcotest.test_case "zipf weights" `Quick test_zipf_weights;
          Alcotest.test_case "zipf probabilities sum" `Quick test_zipf_probabilities_sum;
          Alcotest.test_case "zipf monotone" `Quick test_zipf_monotone;
          Alcotest.test_case "zipf invalid" `Quick test_zipf_invalid;
          Alcotest.test_case "categorical distribution" `Quick test_categorical_draw_distribution;
          Alcotest.test_case "categorical zero weight" `Quick test_categorical_zero_weight_never_drawn;
          Alcotest.test_case "categorical invalid" `Quick test_categorical_invalid;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "round_shares total" `Quick test_round_shares_exact_total;
          Alcotest.test_case "round_shares proportional" `Quick test_round_shares_proportional;
          Alcotest.test_case "round_shares remainder" `Quick test_round_shares_remainder;
          Alcotest.test_case "normal moments" `Quick test_normal_moments;
          Alcotest.test_case "normal invalid" `Quick test_normal_invalid;
          Alcotest.test_case "log normal positive" `Quick test_log_normal_positive;
          qtest prop_round_shares_total;
          qtest prop_multinomial_total;
        ] );
      ( "descriptive",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "variance" `Quick test_variance;
          Alcotest.test_case "sample variance" `Quick test_sample_variance;
          Alcotest.test_case "median odd" `Quick test_median_odd;
          Alcotest.test_case "median even" `Quick test_median_even;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "empty raises" `Quick test_empty_raises;
          Alcotest.test_case "normalize" `Quick test_normalize;
        ] );
      ( "special",
        [
          Alcotest.test_case "log_gamma factorials" `Quick test_log_gamma_factorials;
          Alcotest.test_case "log_gamma half" `Quick test_log_gamma_half;
          Alcotest.test_case "incomplete beta bounds" `Quick test_incomplete_beta_bounds;
          Alcotest.test_case "incomplete beta symmetry" `Quick test_incomplete_beta_symmetry;
          Alcotest.test_case "incomplete beta uniform" `Quick test_incomplete_beta_uniform;
          Alcotest.test_case "student t known" `Quick test_student_t_known;
          Alcotest.test_case "student t zero" `Quick test_student_t_zero;
        ] );
      ( "correlation",
        [
          Alcotest.test_case "pearson perfect" `Quick test_pearson_perfect;
          Alcotest.test_case "pearson anti" `Quick test_pearson_anti;
          Alcotest.test_case "pearson known" `Quick test_pearson_known_value;
          Alcotest.test_case "pearson constant raises" `Quick test_pearson_constant_raises;
          Alcotest.test_case "spearman monotone" `Quick test_spearman_monotone;
          Alcotest.test_case "spearman ties" `Quick test_spearman_ties;
          Alcotest.test_case "strength bands" `Quick test_strength_bands;
          Alcotest.test_case "fisher interval" `Quick test_fisher_interval;
          Alcotest.test_case "fisher small n" `Quick test_fisher_interval_small_n;
          Alcotest.test_case "permutation p" `Quick test_permutation_p_agrees_with_t;
          qtest prop_pearson_symmetric;
          qtest prop_pearson_bounded;
        ] );
      ( "bootstrap",
        [
          Alcotest.test_case "resample" `Quick test_resample_same_length_and_support;
          Alcotest.test_case "interval brackets mean" `Quick test_bootstrap_interval_brackets_mean;
          Alcotest.test_case "narrows with n" `Quick test_bootstrap_interval_narrows_with_n;
          Alcotest.test_case "invalid" `Quick test_bootstrap_invalid;
          Alcotest.test_case "standard error" `Quick test_bootstrap_standard_error;
        ] );
      ( "similarity",
        [
          Alcotest.test_case "jaccard identical" `Quick test_jaccard_identical;
          Alcotest.test_case "jaccard disjoint" `Quick test_jaccard_disjoint;
          Alcotest.test_case "jaccard partial" `Quick test_jaccard_partial;
          Alcotest.test_case "jaccard empty" `Quick test_jaccard_empty;
          Alcotest.test_case "jaccard duplicates" `Quick test_jaccard_duplicates_ignored;
          Alcotest.test_case "overlap" `Quick test_overlap;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "counts" `Quick test_histogram_counts;
          Alcotest.test_case "clamps" `Quick test_histogram_clamps;
          Alcotest.test_case "total" `Quick test_histogram_total;
          Alcotest.test_case "edges" `Quick test_histogram_edges;
          Alcotest.test_case "ecdf" `Quick test_ecdf;
        ] );
      ( "scaling",
        [
          Alcotest.test_case "min_max" `Quick test_min_max;
          Alcotest.test_case "min_max constant" `Quick test_min_max_constant;
          Alcotest.test_case "min_max columns" `Quick test_min_max_columns;
          Alcotest.test_case "z_score" `Quick test_z_score;
        ] );
    ]
