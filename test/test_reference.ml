(* Tests for webdep_reference: integrity of the embedded paper tables. *)

module Scores = Webdep_reference.Paper_scores
module Anecdotes = Webdep_reference.Anecdotes
module Country = Webdep_geo.Country

let layers = Scores.all_layers

let test_tables_have_150_rows () =
  List.iter
    (fun layer ->
      Alcotest.(check int)
        (Scores.layer_name layer ^ " rows")
        150
        (List.length (Scores.table layer)))
    layers

let test_tables_cover_every_country () =
  List.iter
    (fun layer ->
      List.iter
        (fun c ->
          match Scores.score layer c.Country.code with
          | Some _ -> ()
          | None ->
              Alcotest.failf "%s missing from %s" c.Country.code (Scores.layer_name layer))
        Country.all)
    layers

let test_tables_no_stray_codes () =
  List.iter
    (fun layer ->
      List.iter
        (fun (code, _) ->
          if not (Country.mem code) then
            Alcotest.failf "stray code %s in %s" code (Scores.layer_name layer))
        (Scores.table layer))
    layers

let test_tables_sorted_descending () =
  List.iter
    (fun layer ->
      let rec walk = function
        | (_, a) :: ((_, b) :: _ as rest) ->
            if a < b -. 1e-9 then
              Alcotest.failf "%s not sorted at %f < %f" (Scores.layer_name layer) a b;
            walk rest
        | _ -> ()
      in
      walk (Scores.table layer))
    layers

let test_headline_ranks () =
  (* Spot-check the paper's headline rankings. *)
  Alcotest.(check (option int)) "TH most centralized hosting" (Some 1) (Scores.rank Hosting "TH");
  Alcotest.(check (option int)) "IR least centralized hosting" (Some 150) (Scores.rank Hosting "IR");
  Alcotest.(check (option int)) "US median hosting" (Some 75) (Scores.rank Hosting "US");
  Alcotest.(check (option int)) "ID most centralized DNS" (Some 1) (Scores.rank Dns "ID");
  Alcotest.(check (option int)) "CZ least centralized DNS" (Some 150) (Scores.rank Dns "CZ");
  Alcotest.(check (option int)) "SK most centralized CA" (Some 1) (Scores.rank Ca "SK");
  Alcotest.(check (option int)) "TW least centralized CA" (Some 150) (Scores.rank Ca "TW");
  Alcotest.(check (option int)) "US most centralized TLD" (Some 1) (Scores.rank Tld "US");
  Alcotest.(check (option int)) "KG least centralized TLD" (Some 150) (Scores.rank Tld "KG")

let test_headline_values () =
  let check layer code expected =
    Alcotest.(check (float 1e-9)) (code ^ " score") expected (Scores.score_exn layer code)
  in
  check Hosting "TH" 0.3548;
  check Hosting "IR" 0.0411;
  check Hosting "US" 0.1358;
  check Dns "ID" 0.3757;
  check Ca "SK" 0.3304;
  check Tld "US" 0.5853

let test_means_match_paper () =
  (* The paper quotes the layer means in §5.1/§6.2/§7.1/Appendix B. *)
  let close msg expected actual tol =
    if Float.abs (expected -. actual) > tol then
      Alcotest.failf "%s: expected ~%.4f, got %.4f" msg expected actual
  in
  close "hosting mean" Anecdotes.hosting_mean_centralization (Scores.mean Hosting) 0.002;
  close "dns mean" Anecdotes.dns_mean_centralization (Scores.mean Dns) 0.002;
  close "ca mean" Anecdotes.ca_mean_centralization (Scores.mean Ca) 0.002;
  close "tld mean" Anecdotes.tld_mean_centralization (Scores.mean Tld) 0.002

let test_ca_variance_small () =
  (* §7.1: CA centralization has tiny variance across countries. *)
  let scores = Array.of_list (List.map snd (Scores.table Ca)) in
  let var = Webdep_stats.Descriptive.variance scores in
  if Float.abs (var -. Anecdotes.ca_centralization_variance) > 0.0005 then
    Alcotest.failf "ca variance %f" var

let test_scores_in_country_order () =
  let codes = [ "TH"; "IR"; "US" ] in
  let arr = Scores.scores_in_country_order Hosting codes in
  Alcotest.(check (array (float 1e-9))) "aligned" [| 0.3548; 0.0411; 0.1358 |] arr;
  Alcotest.check_raises "missing code" Not_found (fun () ->
      ignore (Scores.scores_in_country_order Hosting [ "XX" ]))

let test_class_tables () =
  let total tbl = List.fold_left (fun acc (_, n) -> acc + n) 0 tbl in
  Alcotest.(check int) "hosting classes" 8 (List.length Anecdotes.hosting_classes);
  Alcotest.(check int) "hosting total" 12414 (total Anecdotes.hosting_classes);
  Alcotest.(check int) "dns classes" 8 (List.length Anecdotes.dns_classes);
  Alcotest.(check int) "ca classes" 5 (List.length Anecdotes.ca_classes);
  Alcotest.(check int) "ca total" 45 (total Anecdotes.ca_classes)

let test_cross_country_entries_valid () =
  List.iter
    (fun (a, b, share) ->
      if not (Country.mem a) then Alcotest.failf "unknown dependent %s" a;
      if not (Country.mem b) then Alcotest.failf "unknown partner %s" b;
      if share <= 0.0 || share >= 1.0 then Alcotest.failf "bad share %f" share)
    Anecdotes.cross_country_hosting

let test_layer_names () =
  Alcotest.(check (list string)) "names"
    [ "hosting"; "dns"; "ca"; "tld" ]
    (List.map Scores.layer_name Scores.all_layers)

let () =
  Alcotest.run "webdep_reference"
    [
      ( "paper_scores",
        [
          Alcotest.test_case "150 rows per layer" `Quick test_tables_have_150_rows;
          Alcotest.test_case "covers every country" `Quick test_tables_cover_every_country;
          Alcotest.test_case "no stray codes" `Quick test_tables_no_stray_codes;
          Alcotest.test_case "sorted descending" `Quick test_tables_sorted_descending;
          Alcotest.test_case "headline ranks" `Quick test_headline_ranks;
          Alcotest.test_case "headline values" `Quick test_headline_values;
          Alcotest.test_case "means match paper" `Quick test_means_match_paper;
          Alcotest.test_case "ca variance small" `Quick test_ca_variance_small;
          Alcotest.test_case "country order" `Quick test_scores_in_country_order;
          Alcotest.test_case "layer names" `Quick test_layer_names;
        ] );
      ( "anecdotes",
        [
          Alcotest.test_case "class tables" `Quick test_class_tables;
          Alcotest.test_case "cross country valid" `Quick test_cross_country_entries_valid;
        ] );
    ]
