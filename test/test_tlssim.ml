(* Tests for webdep_tlssim: CA/owner db, certificates, handshakes. *)

open Webdep_tlssim
module Ipv4 = Webdep_netsim.Ipv4

let addr s = Option.get (Ipv4.addr_of_string s)

let test_ca_owner_registration () =
  let db = Ca.create () in
  let le = Ca.register_owner db ~name:"Let's Encrypt" ~country:"US" in
  Ca.register_issuer db ~issuer_cn:"R3" le;
  Ca.register_issuer db ~issuer_cn:"E1" le;
  (match Ca.owner_of_issuer db "R3" with
  | Some o -> Alcotest.(check string) "rollup" "Let's Encrypt" o.Ca.name
  | None -> Alcotest.fail "issuer missing");
  Alcotest.(check int) "owner count" 1 (Ca.owner_count db);
  Alcotest.(check int) "issuer count" 2 (Ca.issuer_count db);
  Alcotest.(check bool) "unknown issuer" true (Ca.owner_of_issuer db "ZZ" = None)

let test_ca_owner_idempotent () =
  let db = Ca.create () in
  let a = Ca.register_owner db ~name:"DigiCert" ~country:"US" in
  let b = Ca.register_owner db ~name:"DigiCert" ~country:"US" in
  Alcotest.(check bool) "same" true (a = b);
  Alcotest.(check int) "one owner" 1 (Ca.owner_count db)

let test_ca_owner_by_name () =
  let db = Ca.create () in
  ignore (Ca.register_owner db ~name:"Sectigo" ~country:"US");
  Alcotest.(check bool) "found" true (Ca.owner_by_name db "Sectigo" <> None);
  Alcotest.(check int) "owners list" 1 (List.length (Ca.owners db))

let test_cert_validity () =
  let cert = { Cert.subject = "a.example"; issuer_cn = "R3"; not_before = 10; not_after = 100 } in
  Alcotest.(check bool) "inside" true (Cert.valid_at cert 50);
  Alcotest.(check bool) "edge low" true (Cert.valid_at cert 10);
  Alcotest.(check bool) "edge high" true (Cert.valid_at cert 100);
  Alcotest.(check bool) "before" false (Cert.valid_at cert 9);
  Alcotest.(check bool) "after" false (Cert.valid_at cert 101)

let test_cert_covers_exact () =
  let cert = { Cert.subject = "a.example"; issuer_cn = "R3"; not_before = 0; not_after = 1 } in
  Alcotest.(check bool) "exact" true (Cert.covers cert "a.example");
  Alcotest.(check bool) "other" false (Cert.covers cert "b.example")

let test_cert_covers_wildcard () =
  let cert = { Cert.subject = "*.example.com"; issuer_cn = "R3"; not_before = 0; not_after = 1 } in
  Alcotest.(check bool) "one label" true (Cert.covers cert "www.example.com");
  Alcotest.(check bool) "apex not covered" false (Cert.covers cert "example.com");
  Alcotest.(check bool) "two labels not covered" false (Cert.covers cert "a.b.example.com")

let test_handshake () =
  let hs = Handshake.create () in
  let cert = { Cert.subject = "a.example"; issuer_cn = "R3"; not_before = 0; not_after = 1 } in
  Handshake.install hs ~domain:"a.example" cert;
  (match Handshake.handshake hs ~addr:(addr "10.0.0.1") ~sni:"a.example" with
  | Some c -> Alcotest.(check string) "subject" "a.example" c.Cert.subject
  | None -> Alcotest.fail "handshake failed");
  Alcotest.(check bool) "no cert for other sni" true
    (Handshake.handshake hs ~addr:(addr "10.0.0.1") ~sni:"b.example" = None);
  Alcotest.(check int) "cert count" 1 (Handshake.cert_count hs)

let test_handshake_rejects_mismatched_subject () =
  let hs = Handshake.create () in
  (* A certificate installed under a domain it does not cover is not
     served: the handshake validates subject coverage. *)
  let cert = { Cert.subject = "other.example"; issuer_cn = "R3"; not_before = 0; not_after = 1 } in
  Handshake.install hs ~domain:"a.example" cert;
  Alcotest.(check bool) "rejected" true
    (Handshake.handshake hs ~addr:(addr "10.0.0.1") ~sni:"a.example" = None)

let test_handshake_multi_tenant () =
  (* Same address serves different certs by SNI, like a CDN edge. *)
  let hs = Handshake.create () in
  let mk subject = { Cert.subject; issuer_cn = "R3"; not_before = 0; not_after = 1 } in
  Handshake.install hs ~domain:"a.example" (mk "a.example");
  Handshake.install hs ~domain:"b.example" (mk "b.example");
  let a = Option.get (Handshake.handshake hs ~addr:(addr "10.0.0.1") ~sni:"a.example") in
  let b = Option.get (Handshake.handshake hs ~addr:(addr "10.0.0.1") ~sni:"b.example") in
  Alcotest.(check string) "a" "a.example" a.Cert.subject;
  Alcotest.(check string) "b" "b.example" b.Cert.subject

let test_root_store_defaults () =
  let store = Root_store.create () in
  Alcotest.(check bool) "LE trusted" true (Root_store.is_trusted store "Let's Encrypt");
  Alcotest.(check bool) "state CA distrusted" false
    (Root_store.is_trusted store "Russian Trusted Root CA")

let test_root_store_distrust_event () =
  let store = Root_store.create () in
  Alcotest.(check bool) "before" true (Root_store.is_trusted store "TrustCor");
  Root_store.distrust store "TrustCor";
  Alcotest.(check bool) "after" false (Root_store.is_trusted store "TrustCor")

let test_root_store_custom () =
  let store = Root_store.create ~distrusted:[ "Acme CA" ] () in
  Alcotest.(check bool) "custom distrust" false (Root_store.is_trusted store "Acme CA");
  Alcotest.(check bool) "default now trusted" true
    (Root_store.is_trusted store "Russian Trusted Root CA")

let () =
  Alcotest.run "webdep_tlssim"
    [
      ( "ca",
        [
          Alcotest.test_case "owner registration" `Quick test_ca_owner_registration;
          Alcotest.test_case "idempotent" `Quick test_ca_owner_idempotent;
          Alcotest.test_case "by name" `Quick test_ca_owner_by_name;
        ] );
      ( "cert",
        [
          Alcotest.test_case "validity" `Quick test_cert_validity;
          Alcotest.test_case "covers exact" `Quick test_cert_covers_exact;
          Alcotest.test_case "covers wildcard" `Quick test_cert_covers_wildcard;
        ] );
      ( "root_store",
        [
          Alcotest.test_case "defaults" `Quick test_root_store_defaults;
          Alcotest.test_case "distrust event" `Quick test_root_store_distrust_event;
          Alcotest.test_case "custom" `Quick test_root_store_custom;
        ] );
      ( "handshake",
        [
          Alcotest.test_case "basic" `Quick test_handshake;
          Alcotest.test_case "mismatched subject" `Quick test_handshake_rejects_mismatched_subject;
          Alcotest.test_case "multi-tenant sni" `Quick test_handshake_multi_tenant;
        ] );
    ]
