(* Tests for webdep_serve: qcheck round-trips of the wire protocol
   (encode ∘ decode = id, truncated frames rejected), the framing layer,
   the JSON debug representation, the response cache and its
   fingerprint invalidation, and socket-level integration — daemon
   answers byte-identical to [State.answer] for every query kind, load
   shedding past the admission queue, JSON-lines debug mode and clean
   shutdown. *)

module P = Webdep_serve.Protocol
module State = Webdep_serve.State
module Server = Webdep_serve.Server
module Client = Webdep_serve.Client
module Snapshot = Webdep_serve.Snapshot
module Chaos = Webdep_serve.Chaos
module Supervisor = Webdep_serve.Supervisor
module FP = Webdep_faults.Fault_plan
module Wire = Webdep_faults.Wire
module World = Webdep_worldgen.World
module Measure = Webdep_pipeline.Measure
module D = Webdep.Dataset

(* --- generators --------------------------------------------------------- *)

let layer_gen = QCheck.Gen.oneofl [ D.Hosting; D.Dns; D.Ca; D.Tld ]

(* Epoch names on the wire are free-form strings; stick to
   canonical-stable ones (the JSON codec normalizes "2023" -> "2023-05",
   which would break round-trip equality). *)
let epoch_gen = QCheck.Gen.oneofl [ "2023-05"; "2025-05"; "e3"; "e17" ]

let cc_gen =
  QCheck.Gen.(
    oneof
      [ oneofl [ "US"; "DE"; "JP"; "BR"; "IN"; "ZA" ];
        map (String.make 2) (char_range 'A' 'Z');
        small_string ~gen:printable ])

let k_gen = QCheck.Gen.int_range 1 0xffff

let request_gen =
  QCheck.Gen.(
    oneof
      [ return P.Ping;
        return P.Shutdown;
        map3
          (fun epoch layer country -> P.Score { epoch; layer; country })
          epoch_gen layer_gen cc_gen;
        (let* epoch = epoch_gen in
         let* layer = layer_gen in
         let* country = cc_gen in
         let* k = k_gen in
         return (P.Top_shares { epoch; layer; country; k }));
        map3 (fun epoch layer k -> P.Ranking { epoch; layer; k }) epoch_gen layer_gen k_gen;
        (let* layer = layer_gen in
         let* country = cc_gen in
         let* old_epoch = epoch_gen in
         let* new_epoch = epoch_gen in
         return (P.Delta { layer; country; old_epoch; new_epoch }));
        return P.Epochs ])

let float_gen = QCheck.Gen.float

let response_gen =
  QCheck.Gen.(
    oneof
      [ return P.Pong;
        return P.Overloaded;
        return P.Bye;
        return P.Draining;
        map (fun msg -> P.Error msg) (small_string ~gen:printable);
        map3 (fun s hhi insularity -> P.Scores { s; hhi; insularity }) float_gen float_gen
          float_gen;
        map
          (fun items ->
            P.Shares
              (List.map (fun ((provider, home), share) -> { P.provider; home; share }) items))
          (small_list (pair (pair (small_string ~gen:printable) cc_gen) float_gen));
        map (fun items -> P.Ranks items) (small_list (pair cc_gen float_gen));
        (let* old_epoch = epoch_gen in
         let* new_epoch = epoch_gen in
         let* old_s = float_gen in
         let* new_s = float_gen in
         let* delta = float_gen in
         return (P.Deltas { old_epoch; new_epoch; old_s; new_s; delta }));
        map (fun names -> P.Epoch_list names) (small_list epoch_gen) ])

let request_arb = QCheck.make ~print:(fun r -> Webdep_json.to_string (P.request_to_json r)) request_gen
let response_arb = QCheck.make ~print:(fun r -> Webdep_json.to_string (P.response_to_json r)) response_gen

(* NaN-tolerant structural equality: encoded floats round-trip
   bit-exactly, but [=] on NaN is false. *)
let float_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let response_eq a b =
  match (a, b) with
  | P.Scores a, P.Scores b ->
      float_eq a.s b.s && float_eq a.hhi b.hhi && float_eq a.insularity b.insularity
  | P.Shares a, P.Shares b ->
      List.length a = List.length b
      && List.for_all2
           (fun (x : P.share) (y : P.share) ->
             String.equal x.provider y.provider
             && String.equal x.home y.home
             && float_eq x.share y.share)
           a b
  | P.Ranks a, P.Ranks b ->
      List.length a = List.length b
      && List.for_all2
           (fun (c1, s1) (c2, s2) -> String.equal c1 c2 && float_eq s1 s2)
           a b
  | P.Deltas a, P.Deltas b ->
      String.equal a.old_epoch b.old_epoch
      && String.equal a.new_epoch b.new_epoch
      && float_eq a.old_s b.old_s && float_eq a.new_s b.new_s && float_eq a.delta b.delta
  | a, b -> a = b

(* --- protocol round-trips ----------------------------------------------- *)

let qcheck_request_roundtrip =
  QCheck.Test.make ~count:500 ~name:"request encode/decode round-trip" request_arb
    (fun req ->
      match P.decode_request (P.encode_request req) with
      | Ok req' -> req = req'
      | Error _ -> false)

let qcheck_response_roundtrip =
  QCheck.Test.make ~count:500 ~name:"response encode/decode round-trip" response_arb
    (fun resp ->
      match P.decode_response (P.encode_response resp) with
      | Ok resp' -> response_eq resp resp'
      | Error _ -> false)

let qcheck_truncated_rejected =
  QCheck.Test.make ~count:200 ~name:"every strict payload prefix is rejected"
    request_arb (fun req ->
      let payload = P.encode_request req in
      let ok = ref true in
      for n = 0 to String.length payload - 1 do
        match P.decode_request (String.sub payload 0 n) with
        | Ok _ -> ok := false
        | Error _ -> ()
      done;
      (* Trailing garbage is rejected too. *)
      (match P.decode_request (payload ^ "\x00") with
      | Ok _ -> ok := false
      | Error _ -> ());
      !ok)

let qcheck_json_roundtrip =
  QCheck.Test.make ~count:300 ~name:"JSON debug representation round-trips"
    request_arb (fun req ->
      P.request_of_json (P.request_to_json req) = req)

let qcheck_response_json_roundtrip =
  QCheck.Test.make ~count:300 ~name:"response JSON round-trips" response_arb
    (fun resp ->
      (* The JSON printer encodes non-finite floats as null, so restrict
         to finite payloads (the daemon never emits non-finite ones). *)
      let finite = function
        | P.Scores { s; hhi; insularity } ->
            List.for_all Float.is_finite [ s; hhi; insularity ]
        | P.Shares l -> List.for_all (fun (x : P.share) -> Float.is_finite x.share) l
        | P.Ranks l -> List.for_all (fun (_, s) -> Float.is_finite s) l
        | P.Deltas { old_s; new_s; delta; _ } ->
            List.for_all Float.is_finite [ old_s; new_s; delta ]
        | _ -> true
      in
      QCheck.assume (finite resp);
      response_eq (P.response_of_json (P.response_to_json resp)) resp)

let test_framing () =
  let payloads = [ P.encode_request P.Ping; P.encode_request P.Shutdown; "xyz" ] in
  let stream = String.concat "" (List.map P.frame payloads) in
  let partial = String.sub stream 0 (String.length stream - 2) in
  let buf = Bytes.of_string partial in
  let got, consumed = P.parse_frames buf (Bytes.length buf) in
  Alcotest.(check (list string)) "partial stream yields only complete frames"
    [ List.nth payloads 0; List.nth payloads 1 ]
    got;
  Alcotest.(check bool) "consumed stops before the partial frame" true
    (consumed = String.length stream - 4 - 3);
  (* A corrupt length prefix is an error, not a silent desync. *)
  let bad = Bytes.of_string "\xff\xff\xff\xff rest" in
  Alcotest.check_raises "negative length rejected"
    (P.Protocol_error "bad frame length -1") (fun () ->
      ignore (P.parse_frames bad (Bytes.length bad)))

let test_parse_query () =
  let epoch = "2023" in
  (match P.parse_query ~epoch [ "score"; "hosting"; "us" ] with
  | Ok (P.Score { country = "US"; layer = D.Hosting; epoch = "2023-05" }) -> ()
  | _ -> Alcotest.fail "score query (epoch canonicalized)");
  (match P.parse_query ~epoch [ "epochs" ] with
  | Ok P.Epochs -> ()
  | _ -> Alcotest.fail "epochs query");
  (match P.parse_query ~epoch [ "delta"; "hosting"; "br" ] with
  | Ok (P.Delta { country = "BR"; old_epoch = "2023-05"; new_epoch = "2025-05"; _ }) -> ()
  | _ -> Alcotest.fail "delta defaults to the two measured epochs");
  (match P.parse_query ~epoch [ "delta"; "hosting"; "br"; "e2"; "e9" ] with
  | Ok (P.Delta { old_epoch = "e2"; new_epoch = "e9"; _ }) -> ()
  | _ -> Alcotest.fail "delta epoch range");
  (match P.parse_query ~epoch:"e7" [ "score"; "dns"; "de" ] with
  | Ok (P.Score { epoch = "e7"; _ }) -> ()
  | _ -> Alcotest.fail "churn-log epoch passes through");
  (match P.parse_query ~epoch [ "topk"; "dns"; "de"; "7" ] with
  | Ok (P.Top_shares { k = 7; layer = D.Dns; country = "DE"; _ }) -> ()
  | _ -> Alcotest.fail "topk query");
  (match P.parse_query ~epoch [ "bogus" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus accepted");
  match P.parse_query ~epoch [ "topk"; "dns"; "de"; "0" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "k = 0 accepted"

(* --- shared warm state --------------------------------------------------- *)

let test_countries = [ "US"; "DE"; "JP"; "BR" ]

let state =
  lazy
    (let world = World.create ~c:60 ~seed:2024 () in
     let ds23 = Measure.measure_all ~countries:test_countries world in
     let ds25 = Measure.measure_all ~epoch:World.May_2025 ~countries:test_countries world in
     let st =
       State.make ~fingerprint:"test-world-60"
         [ ("2023-05", ds23); ("2025-05", ds25) ]
     in
     State.warm st;
     st)

let sample_requests () =
  [ P.Ping;
    P.Epochs;
    P.Score { epoch = "2023-05"; layer = D.Hosting; country = "US" };
    P.Score { epoch = "2025-05"; layer = D.Ca; country = "DE" };
    P.Top_shares { epoch = "2023-05"; layer = D.Hosting; country = "JP"; k = 5 };
    P.Ranking { epoch = "2023-05"; layer = D.Dns; k = 4 };
    P.Delta
      { layer = D.Hosting; country = "BR";
        old_epoch = "2023-05"; new_epoch = "2025-05" };
    P.Score { epoch = "2023-05"; layer = D.Tld; country = "XX" } ]

let test_answer_kinds () =
  let st = Lazy.force state in
  (match State.answer st P.Ping with P.Pong -> () | _ -> Alcotest.fail "ping");
  (match State.answer st P.Epochs with
  | P.Epoch_list [ "2023-05"; "2025-05" ] -> ()
  | _ -> Alcotest.fail "epochs listing");
  (match State.answer st (P.Score { epoch = "2023-05"; layer = D.Hosting; country = "US" }) with
  | P.Scores { s; hhi; insularity } ->
      Alcotest.(check bool) "s finite" true (Float.is_finite s);
      Alcotest.(check bool) "hhi >= s" true (hhi >= s);
      Alcotest.(check bool) "insularity in [0,1]" true (insularity >= 0.0 && insularity <= 1.0)
  | _ -> Alcotest.fail "score");
  (match State.answer st (P.Top_shares { epoch = "2023-05"; layer = D.Hosting; country = "US"; k = 3 }) with
  | P.Shares shares ->
      Alcotest.(check int) "k shares" 3 (List.length shares);
      Alcotest.(check bool) "descending shares" true
        (let rec mono = function
           | (a : P.share) :: (b :: _ as rest) -> a.share >= b.share && mono rest
           | _ -> true
         in
         mono shares)
  | _ -> Alcotest.fail "topk");
  (match State.answer st (P.Ranking { epoch = "2023-05"; layer = D.Hosting; k = 10 }) with
  | P.Ranks ranks ->
      Alcotest.(check int) "all four countries ranked" 4 (List.length ranks)
  | _ -> Alcotest.fail "ranking");
  (match
     State.answer st
       (P.Delta
          { layer = D.Hosting; country = "US";
            old_epoch = "2023-05"; new_epoch = "2025-05" })
   with
  | P.Deltas { old_epoch = "2023-05"; new_epoch = "2025-05"; old_s; new_s; delta } ->
      Alcotest.(check (float 1e-12)) "delta = new - old" (new_s -. old_s) delta
  | _ -> Alcotest.fail "delta");
  (match State.answer st (P.Score { epoch = "2023-05"; layer = D.Hosting; country = "XX" }) with
  | P.Error _ -> ()
  | _ -> Alcotest.fail "unknown country must be an error");
  (* Unknown epoch: the error enumerates what is actually loaded. *)
  match State.answer st (P.Score { epoch = "e99"; layer = D.Hosting; country = "US" }) with
  | P.Error msg ->
      Alcotest.(check bool) "error lists loaded epochs" true
        (let has sub =
           let n = String.length sub and m = String.length msg in
           let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
           go 0
         in
         has "2023-05" && has "2025-05")
  | _ -> Alcotest.fail "unknown epoch must be an error"

(* Scores served from the warm tallies must be bit-identical to the cold
   per-dataset computation. *)
let test_answer_matches_cold () =
  let world = World.create ~c:60 ~seed:2024 () in
  let ds23 = Measure.measure_all ~countries:test_countries world in
  let st = Lazy.force state in
  List.iter
    (fun cc ->
      match
        State.answer st (P.Score { epoch = "2023-05"; layer = D.Hosting; country = cc })
      with
      | P.Scores { s; hhi; insularity } ->
          Alcotest.(check bool) "S bit-identical" true
            (float_eq s (Webdep.Metrics.centralization ds23 D.Hosting cc));
          Alcotest.(check bool) "HHI bit-identical" true
            (float_eq hhi
               (Webdep_emd.Centralization.hhi (D.distribution ds23 D.Hosting cc)));
          Alcotest.(check bool) "insularity bit-identical" true
            (float_eq insularity (Webdep.Regionalization.insularity ds23 D.Hosting cc))
      | _ -> Alcotest.fail ("score " ^ cc))
    test_countries

(* Scored (churn-log) epochs ride alongside the warm ones: score,
   ranking and delta answer from the per-country float tables; queries
   that need provider tallies error clearly instead of lying. *)
let test_scored_epochs () =
  let st0 = Lazy.force state in
  let rows =
    [ ( "e2",
        [ ( D.Hosting,
            [ ("US", { State.s = 0.5; hhi = 0.6; insularity = 0.25 });
              ("DE", { State.s = 0.4; hhi = 0.5; insularity = 0.5 }) ] ) ] ) ]
  in
  let st =
    State.make ~fingerprint:"test-world-60" ~scored:rows (State.datasets st0)
  in
  (match State.answer st P.Epochs with
  | P.Epoch_list names ->
      Alcotest.(check bool) "scored epoch listed" true (List.mem "e2" names)
  | _ -> Alcotest.fail "epochs");
  (match State.answer st (P.Score { epoch = "e2"; layer = D.Hosting; country = "US" }) with
  | P.Scores { s; hhi; insularity } ->
      Alcotest.(check (float 0.0)) "s" 0.5 s;
      Alcotest.(check (float 0.0)) "hhi" 0.6 hhi;
      Alcotest.(check (float 0.0)) "insularity" 0.25 insularity
  | _ -> Alcotest.fail "scored score");
  (match State.answer st (P.Ranking { epoch = "e2"; layer = D.Hosting; k = 10 }) with
  | P.Ranks [ ("US", 0.5); ("DE", 0.4) ] -> ()
  | _ -> Alcotest.fail "scored ranking");
  (match
     State.answer st
       (P.Delta
          { layer = D.Hosting; country = "US";
            old_epoch = "2023-05"; new_epoch = "e2" })
   with
  | P.Deltas { new_s = 0.5; old_s; delta; _ } ->
      Alcotest.(check (float 1e-12)) "mixed-epoch delta" (0.5 -. old_s) delta
  | _ -> Alcotest.fail "mixed warm/scored delta");
  match
    State.answer st (P.Top_shares { epoch = "e2"; layer = D.Hosting; country = "US"; k = 3 })
  with
  | P.Error msg ->
      Alcotest.(check bool) "topk on scored epoch explains itself" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "topk on a scored epoch must error"

(* --- engine cache -------------------------------------------------------- *)

let test_engine_cache () =
  let st = Lazy.force state in
  let eng = Server.engine st in
  let payload =
    P.encode_request (P.Score { epoch = "2023-05"; layer = D.Hosting; country = "US" })
  in
  let r1 = Server.answer_payload eng payload in
  Alcotest.(check int) "one cached entry" 1 (Server.cache_size eng);
  let r2 = Server.answer_payload eng payload in
  Alcotest.(check string) "cache hit is byte-identical" r1 r2;
  (* Same fingerprint: the cache survives a state swap. *)
  Server.set_state eng st;
  Alcotest.(check int) "same fingerprint keeps cache" 1 (Server.cache_size eng);
  (* Different fingerprint: invalidated. *)
  let st' =
    State.make ~fingerprint:"other-world"
      [ ("2023-05", Measure.measure_all ~countries:[ "US" ] (World.create ~c:60 ~seed:7 ())) ]
  in
  Server.set_state eng st';
  Alcotest.(check int) "fingerprint change clears cache" 0 (Server.cache_size eng);
  (* Shutdown is never cached. *)
  ignore (Server.answer_payload eng (P.encode_request P.Shutdown));
  Alcotest.(check int) "shutdown not cached" 0 (Server.cache_size eng)

let test_engine_batch_order_and_jobs () =
  let st = Lazy.force state in
  let payloads = List.map P.encode_request (sample_requests ()) in
  (* Fresh engines, par_threshold 1 vs sequential: answers byte-identical
     and in request order either way. *)
  let seq = Server.answer_batch (Server.engine ~par_threshold:max_int st) payloads in
  let par = Server.answer_batch (Server.engine ~par_threshold:1 st) payloads in
  Alcotest.(check (list string)) "parallel batch = sequential batch" seq par;
  List.iter2
    (fun payload reply ->
      match P.decode_request payload with
      | Ok req ->
          Alcotest.(check string) "batch reply = single answer"
            (P.encode_response (State.answer st req))
            reply
      | Error _ -> Alcotest.fail "sample payload must decode")
    payloads seq

(* --- socket integration --------------------------------------------------- *)

let temp_socket () =
  let path = Filename.temp_file "webdep_serve_test" ".sock" in
  Sys.remove path;
  path

let start_server ?(max_queue = 64) ?(batch_max = 16) ?(drain_delay_s = 0.0)
    ?snapshot path =
  let st = Lazy.force state in
  let ready = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Server.run
          ~on_ready:(fun () -> Atomic.set ready true)
          ?snapshot
          (Server.config ~max_queue ~batch_max ~drain_delay_s path)
          st)
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (not (Atomic.get ready)) && Unix.gettimeofday () < deadline do
    ignore (Unix.select [] [] [] 0.01)
  done;
  Alcotest.(check bool) "server came up" true (Atomic.get ready);
  d

let test_server_roundtrip () =
  let st = Lazy.force state in
  let path = temp_socket () in
  let d = start_server path in
  let cl = Client.connect path in
  List.iter
    (fun req ->
      let daemon = Client.request cl req in
      let local = State.answer st req in
      Alcotest.(check string)
        ("daemon = local for " ^ Webdep_json.to_string (P.request_to_json req))
        (P.render local) (P.render daemon);
      Alcotest.(check string) "and byte-identical on the wire"
        (P.encode_response local) (P.encode_response daemon))
    (List.filter (fun r -> r <> P.Shutdown) (sample_requests ()));
  (match Client.request cl P.Shutdown with
  | P.Bye -> ()
  | _ -> Alcotest.fail "shutdown must answer Bye");
  Domain.join d;
  Client.close cl;
  Alcotest.(check bool) "socket removed on clean shutdown" false (Sys.file_exists path)

let test_load_shedding () =
  let path = temp_socket () in
  (* One request per 10ms batch with a 4-deep admission queue: a
     pipelined flood must shed most of the intake with immediate
     Overloaded replies while every request still gets an answer. *)
  let d = start_server ~max_queue:4 ~batch_max:1 ~drain_delay_s:0.01 path in
  let cl = Client.connect path in
  let flood = List.init 50 (fun _ -> P.Ping) in
  let t0 = Unix.gettimeofday () in
  let replies = Client.pipeline cl flood in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check int) "every request answered" 50 (List.length replies);
  let shed = List.length (List.filter (fun r -> r = P.Overloaded) replies) in
  let served = List.length (List.filter (fun r -> r = P.Pong) replies) in
  Alcotest.(check int) "answered = served + shed" 50 (shed + served);
  Alcotest.(check bool) "load was shed" true (shed > 0);
  Alcotest.(check bool) "some requests still served" true (served > 0);
  (* Bounded latency: with ~45 shed instantly the flood drains in ~5
     batches, nowhere near the 500ms an unbounded queue would take. *)
  Alcotest.(check bool) "tail stayed bounded" true (elapsed < 0.45);
  (match Client.request cl P.Shutdown with
  | P.Bye -> ()
  | _ -> Alcotest.fail "shutdown after flood");
  Domain.join d;
  Client.close cl

let test_json_lines_mode () =
  let path = temp_socket () in
  let d = start_server path in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let line = {|{"kind":"ping"}|} ^ "\n" in
  let sent = Unix.write_substring fd line 0 (String.length line) in
  Alcotest.(check int) "line written" (String.length line) sent;
  let buf = Bytes.create 4096 in
  let n = Unix.read fd buf 0 4096 in
  let reply = Bytes.sub_string buf 0 n in
  Alcotest.(check string) "JSON-lines pong" "{\"kind\":\"pong\"}\n" reply;
  Unix.close fd;
  let cl = Client.connect path in
  (match Client.request cl P.Shutdown with P.Bye -> () | _ -> Alcotest.fail "bye");
  Client.close cl;
  Domain.join d

(* --- protocol fuzz: mutated and truncated bytes --------------------------- *)

(* The decoder's contract under hostile bytes: a clean [Error], never an
   unexpected exception, never accepting a mutant as some other valid
   request whose re-encoding it is not.  (Bit flips CAN produce another
   valid encoding — e.g. a flipped country byte — so acceptance is fine;
   what is checked is decode/encode consistency.) *)
let qcheck_mutation_fuzz =
  QCheck.Test.make ~count:1000 ~name:"mutated payloads never crash the decoder"
    QCheck.(triple request_arb small_nat small_nat)
    (fun (req, pos_seed, byte_seed) ->
      let payload = Bytes.of_string (P.encode_request req) in
      let len = Bytes.length payload in
      let pos = pos_seed mod len in
      Bytes.set payload pos
        (Char.chr ((Char.code (Bytes.get payload pos) + 1 + byte_seed) land 0xff));
      let mutant = Bytes.to_string payload in
      match P.decode_request mutant with
      | Error _ -> true
      | Ok req' -> String.equal (P.encode_request req') mutant
      | exception _ -> false)

(* Framing layer under a mutated stream: parse_frames either returns
   with a bounded consumed count or raises Protocol_error — nothing
   else — and never consumes past what it was given. *)
let qcheck_frame_fuzz =
  QCheck.Test.make ~count:500 ~name:"mutated frame streams never over-consume"
    QCheck.(triple (small_list request_arb) small_nat small_nat)
    (fun (reqs, pos_seed, cut_seed) ->
      let stream =
        String.concat "" (List.map (fun r -> P.frame (P.encode_request r)) reqs)
      in
      QCheck.assume (String.length stream > 0);
      let b = Bytes.of_string stream in
      let pos = pos_seed mod Bytes.length b in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x80));
      let keep = 1 + (cut_seed mod Bytes.length b) in
      match P.parse_frames b keep with
      | _, consumed -> consumed >= 0 && consumed <= keep
      | exception P.Protocol_error _ -> true
      | exception _ -> false)

(* --- snapshots ------------------------------------------------------------ *)

let snapshot_path () =
  let p = Filename.temp_file "webdep_snap_test" ".bin" in
  Sys.remove p;
  p

let answers st reqs = List.map (fun r -> P.encode_response (State.answer st r)) reqs

let test_snapshot_roundtrip () =
  let st = Lazy.force state in
  let path = snapshot_path () in
  Snapshot.save ~path ~fingerprint:"test-world-60" (State.datasets st);
  (match Snapshot.load ~path ~fingerprint:"test-world-60" ~countries:test_countries with
  | Snapshot.Loaded shards ->
      Alcotest.(check int) "2 epochs x 4 countries" 8 (List.length shards);
      let datasets =
        Snapshot.to_datasets
          ~epochs:[ "2023-05"; "2025-05" ]
          ~countries:test_countries
          ~fill:(fun _ _ -> Alcotest.fail "complete snapshot must not re-measure")
          shards
      in
      let st' = State.make ~fingerprint:"test-world-60" datasets in
      State.warm st';
      let reqs = List.filter (fun r -> r <> P.Shutdown) (sample_requests ()) in
      Alcotest.(check (list string))
        "restored state answers byte-identical" (answers st reqs) (answers st' reqs)
  | _ -> Alcotest.fail "expected Loaded");
  Sys.remove path

let test_snapshot_rejects () =
  let st = Lazy.force state in
  let path = snapshot_path () in
  Alcotest.(check bool) "absent"
    true
    (Snapshot.load ~path ~fingerprint:"test-world-60" ~countries:test_countries
     = Snapshot.Absent);
  Snapshot.save ~path ~fingerprint:"test-world-60" (State.datasets st);
  Alcotest.(check bool) "fingerprint mismatch rejected" true
    (Snapshot.load ~path ~fingerprint:"other-world" ~countries:test_countries
     = Snapshot.Rejected);
  Alcotest.(check bool) "countries mismatch rejected" true
    (Snapshot.load ~path ~fingerprint:"test-world-60" ~countries:[ "US"; "DE" ]
     = Snapshot.Rejected);
  (* A file that is not a snapshot at all. *)
  let oc = open_out path in
  output_string oc "this is not a snapshot";
  close_out oc;
  Alcotest.(check bool) "garbage file rejected" true
    (Snapshot.load ~path ~fingerprint:"test-world-60" ~countries:test_countries
     = Snapshot.Rejected);
  Sys.remove path

let test_snapshot_torn_tail () =
  let st = Lazy.force state in
  let path = snapshot_path () in
  Snapshot.save ~path ~fingerprint:"test-world-60" (State.datasets st);
  let full = In_channel.with_open_bin path In_channel.input_all in
  (* Truncate to 60%: the header and a prefix of shards survive. *)
  let cut = String.length full * 6 / 10 in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub full 0 cut));
  (match Snapshot.load ~path ~fingerprint:"test-world-60" ~countries:test_countries with
  | Snapshot.Torn shards ->
      Alcotest.(check bool) "some shards recovered" true (List.length shards > 0);
      Alcotest.(check bool) "not all shards recovered" true (List.length shards < 8);
      (* Every recovered shard is bit-identical to the original data. *)
      let orig = State.datasets (Lazy.force state) in
      List.iter
        (fun (sh : Snapshot.shard) ->
          let ds = List.assoc sh.Snapshot.epoch orig in
          Alcotest.(check bool)
            ("shard intact: " ^ sh.Snapshot.data.D.country)
            true
            (D.country_exn ds sh.Snapshot.data.D.country = sh.Snapshot.data))
        shards
  | _ -> Alcotest.fail "expected Torn");
  (* Flip one byte mid-file: CRC catches it, the poisoned suffix is
     dropped, the prefix survives. *)
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc full);
  let b = Bytes.of_string full in
  let mid = Bytes.length b / 2 in
  Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0x40));
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (Bytes.to_string b));
  (match Snapshot.load ~path ~fingerprint:"test-world-60" ~countries:test_countries with
  | Snapshot.Torn _ -> ()
  | Snapshot.Loaded _ -> Alcotest.fail "flipped byte must not load clean"
  | _ -> Alcotest.fail "expected Torn after bit flip");
  Sys.remove path

(* --- graceful drain ------------------------------------------------------- *)

let test_drain () =
  let st = Lazy.force state in
  let path = temp_socket () in
  let snap = snapshot_path () in
  let d = start_server ~snapshot:snap path in
  let cl = Client.connect path in
  (match Client.request cl P.Ping with
  | P.Pong -> ()
  | _ -> Alcotest.fail "ping before drain");
  Server.request_drain ();
  (* The loop notices the drain within one select timeout; late requests
     are answered with Draining, not silence. *)
  let rec drain_reply n =
    match Client.request cl P.Ping with
    | P.Draining -> ()
    | P.Pong when n > 0 ->
        ignore (Unix.select [] [] [] 0.02);
        drain_reply (n - 1)
    | r ->
        Alcotest.fail
          ("expected draining, got " ^ String.trim (P.render r)
          ^ if n = 0 then " (drain never took effect)" else "")
  in
  drain_reply 100;
  Domain.join d;
  Client.close cl;
  Alcotest.(check bool) "socket removed after drain" false (Sys.file_exists path);
  (* The drain persisted a loadable snapshot. *)
  (match Snapshot.load ~path:snap ~fingerprint:"test-world-60" ~countries:test_countries with
  | Snapshot.Loaded shards -> Alcotest.(check int) "snapshot complete" 8 (List.length shards)
  | _ -> Alcotest.fail "drain must write a loadable snapshot");
  Sys.remove snap;
  ignore st

(* --- client retry budget -------------------------------------------------- *)

let test_client_call_retry () =
  let path = temp_socket () in
  (* No server: the budget must be exhausted, quickly and with an error. *)
  let t0 = Unix.gettimeofday () in
  (match Client.call ~max_retries:2 ~timeout_s:5.0 path P.Ping with
  | Ok _ -> Alcotest.fail "no server must not answer"
  | Error msg ->
      Alcotest.(check bool) "error mentions attempts" true
        (String.length msg > 0));
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "retries backed off but stayed bounded" true
    (elapsed < 4.0);
  (* Against a live server the same call succeeds. *)
  let d = start_server path in
  (match Client.call ~max_retries:2 ~timeout_s:5.0 path P.Ping with
  | Ok P.Pong -> ()
  | Ok r -> Alcotest.fail ("expected pong, got " ^ String.trim (P.render r))
  | Error msg -> Alcotest.fail ("live server call failed: " ^ msg));
  (* Draining replies are retried — and eventually reported, not hidden. *)
  let cl = Client.connect path in
  (match Client.request cl P.Shutdown with P.Bye -> () | _ -> Alcotest.fail "bye");
  Client.close cl;
  Domain.join d

(* --- wire chaos ----------------------------------------------------------- *)

let count_fds () = Array.length (Sys.readdir "/proc/self/fd")

let test_chaos_storm () =
  let st = Lazy.force state in
  let path = temp_socket () in
  let d = start_server path in
  (* Let the accept/close churn settle before taking the baseline. *)
  let warm = Client.connect path in
  (match Client.request warm P.Ping with P.Pong -> () | _ -> Alcotest.fail "warmup");
  Client.close warm;
  ignore (Unix.select [] [] [] 0.1);
  let fd_baseline = count_fds () in
  let plan = FP.make ~rate:0.6 ~seed:4242 () in
  let reqs = List.filter (fun r -> r <> P.Shutdown) (sample_requests ()) in
  let n = ref 0 and replies = ref 0 and injected = ref 0 and broken = ref [] in
  for i = 0 to 199 do
    let req = List.nth reqs (i mod List.length reqs) in
    let key = Printf.sprintf "chaos-%d" i in
    let act, out = Chaos.call plan ~key path req in
    incr n;
    match out with
    | Chaos.Reply resp ->
        incr replies;
        (* Any reply owed must be byte-identical to the local answer. *)
        (match act with
        | Wire.Clean | Wire.Partial_write | Wire.Delayed ->
            if
              not
                (String.equal
                   (P.encode_response resp)
                   (P.encode_response (State.answer st req)))
            then broken := (key ^ ": reply differs") :: !broken
        | _ -> ())
    | Chaos.Injected -> incr injected
    | Chaos.Refused msg -> broken := (key ^ ": refused: " ^ msg) :: !broken
    | Chaos.Broken msg -> broken := (key ^ ": " ^ msg) :: !broken
  done;
  Alcotest.(check (list string)) "no broken exchanges" [] !broken;
  Alcotest.(check bool) "storm injected faults" true (!injected > 30);
  Alcotest.(check bool) "storm still served replies" true (!replies > 30);
  (* The server survived: a clean query still answers correctly. *)
  let cl = Client.connect path in
  (match Client.request cl P.Ping with
  | P.Pong -> ()
  | _ -> Alcotest.fail "server broken after chaos storm");
  (* No fd leak: once the dead connections are reaped, the process is
     back to its baseline.  The one live verification connection counts
     twice — client end plus the server's accepted end, since the server
     domain shares this process. *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec settle () =
    let now_fds = count_fds () in
    if now_fds <= fd_baseline + 2 then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "fd leak: %d fds vs baseline %d" now_fds fd_baseline
    else begin
      ignore (Unix.select [] [] [] 0.05);
      settle ()
    end
  in
  settle ();
  (match Client.request cl P.Shutdown with P.Bye -> () | _ -> Alcotest.fail "bye");
  Client.close cl;
  Domain.join d

let test_chaos_deterministic_outcomes () =
  (* The planned action sequence is a pure function of (seed, key):
     replaying the keys yields the same taxonomy without any server. *)
  let p1 = FP.make ~rate:0.35 ~seed:99 () in
  let p2 = FP.make ~rate:0.35 ~seed:99 () in
  let keys = List.init 300 (fun i -> Printf.sprintf "k%d" i) in
  let acts p = List.map (fun k -> Wire.action_name (Wire.action_pure p ~key:k)) keys in
  Alcotest.(check (list string)) "same plan, same storm" (acts p1) (acts p2)

(* --- supervisor policy ---------------------------------------------------- *)

let test_supervisor_decide () =
  let policy =
    { Supervisor.default_policy with restart_limit = 3; window_s = 10.0 }
  in
  let now = 1000.0 in
  (* Old failures outside the window are forgotten. *)
  (match Supervisor.decide ~policy ~now [ now; 900.0; 800.0; 700.0 ] with
  | Supervisor.Restart d -> Alcotest.(check bool) "backoff positive" true (d >= 0.0)
  | Supervisor.Give_up -> Alcotest.fail "stale failures must not give up");
  (* More than restart_limit recent failures: give up. *)
  (match Supervisor.decide ~policy ~now [ now; now -. 1.0; now -. 2.0; now -. 3.0 ] with
  | Supervisor.Give_up -> ()
  | Supervisor.Restart _ -> Alcotest.fail "crash loop must give up");
  (* Backoff grows with the number of recent failures, deterministically. *)
  let delay fails =
    match Supervisor.decide ~policy ~now fails with
    | Supervisor.Restart d -> d
    | Supervisor.Give_up -> Alcotest.fail "unexpected give-up"
  in
  let d1 = delay [ now ] in
  let d2 = delay [ now; now -. 1.0 ] in
  let d3 = delay [ now; now -. 1.0; now -. 2.0 ] in
  Alcotest.(check bool) "exponential growth" true (d1 < d2 && d2 < d3);
  Alcotest.(check (float 1e-9)) "deterministic" d1 (delay [ now ])

(* --- suite ---------------------------------------------------------------- *)

let () =
  Webdep_par.set_jobs 2;
  Alcotest.run "webdep_serve"
    [
      ( "protocol",
        [
          QCheck_alcotest.to_alcotest qcheck_request_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_response_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_truncated_rejected;
          QCheck_alcotest.to_alcotest qcheck_json_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_response_json_roundtrip;
          Alcotest.test_case "framing" `Quick test_framing;
          Alcotest.test_case "query language" `Quick test_parse_query;
        ] );
      ( "state",
        [
          Alcotest.test_case "answer kinds" `Quick test_answer_kinds;
          Alcotest.test_case "warm = cold, bit-identical" `Quick test_answer_matches_cold;
          Alcotest.test_case "scored churn-log epochs" `Quick test_scored_epochs;
        ] );
      ( "engine",
        [
          Alcotest.test_case "cache and invalidation" `Quick test_engine_cache;
          Alcotest.test_case "batch order and jobs" `Quick test_engine_batch_order_and_jobs;
        ] );
      ( "server",
        [
          Alcotest.test_case "daemon = one-shot round-trip" `Quick test_server_roundtrip;
          Alcotest.test_case "load shedding" `Quick test_load_shedding;
          Alcotest.test_case "json-lines debug mode" `Quick test_json_lines_mode;
          Alcotest.test_case "graceful drain + snapshot" `Quick test_drain;
        ] );
      ( "fuzz",
        [
          QCheck_alcotest.to_alcotest qcheck_mutation_fuzz;
          QCheck_alcotest.to_alcotest qcheck_frame_fuzz;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "round-trip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "rejects" `Quick test_snapshot_rejects;
          Alcotest.test_case "torn tail" `Quick test_snapshot_torn_tail;
        ] );
      ( "client",
        [ Alcotest.test_case "retry budget" `Quick test_client_call_retry ] );
      ( "chaos",
        [
          Alcotest.test_case "storm: no crash, no leak, exact replies" `Quick
            test_chaos_storm;
          Alcotest.test_case "verdicts deterministic" `Quick
            test_chaos_deterministic_outcomes;
        ] );
      ( "supervisor",
        [ Alcotest.test_case "crash-loop policy" `Quick test_supervisor_decide ] );
    ]
