(* Tests for webdep_serve: qcheck round-trips of the wire protocol
   (encode ∘ decode = id, truncated frames rejected), the framing layer,
   the JSON debug representation, the response cache and its
   fingerprint invalidation, and socket-level integration — daemon
   answers byte-identical to [State.answer] for every query kind, load
   shedding past the admission queue, JSON-lines debug mode and clean
   shutdown. *)

module P = Webdep_serve.Protocol
module State = Webdep_serve.State
module Server = Webdep_serve.Server
module Client = Webdep_serve.Client
module World = Webdep_worldgen.World
module Measure = Webdep_pipeline.Measure
module D = Webdep.Dataset

(* --- generators --------------------------------------------------------- *)

let layer_gen = QCheck.Gen.oneofl [ D.Hosting; D.Dns; D.Ca; D.Tld ]
let epoch_gen = QCheck.Gen.oneofl [ World.May_2023; World.May_2025 ]

let cc_gen =
  QCheck.Gen.(
    oneof
      [ oneofl [ "US"; "DE"; "JP"; "BR"; "IN"; "ZA" ];
        map (String.make 2) (char_range 'A' 'Z');
        small_string ~gen:printable ])

let k_gen = QCheck.Gen.int_range 1 0xffff

let request_gen =
  QCheck.Gen.(
    oneof
      [ return P.Ping;
        return P.Shutdown;
        map3
          (fun epoch layer country -> P.Score { epoch; layer; country })
          epoch_gen layer_gen cc_gen;
        (let* epoch = epoch_gen in
         let* layer = layer_gen in
         let* country = cc_gen in
         let* k = k_gen in
         return (P.Top_shares { epoch; layer; country; k }));
        map3 (fun epoch layer k -> P.Ranking { epoch; layer; k }) epoch_gen layer_gen k_gen;
        map2 (fun layer country -> P.Delta { layer; country }) layer_gen cc_gen ])

let float_gen = QCheck.Gen.float

let response_gen =
  QCheck.Gen.(
    oneof
      [ return P.Pong;
        return P.Overloaded;
        return P.Bye;
        map (fun msg -> P.Error msg) (small_string ~gen:printable);
        map3 (fun s hhi insularity -> P.Scores { s; hhi; insularity }) float_gen float_gen
          float_gen;
        map
          (fun items ->
            P.Shares
              (List.map (fun ((provider, home), share) -> { P.provider; home; share }) items))
          (small_list (pair (pair (small_string ~gen:printable) cc_gen) float_gen));
        map (fun items -> P.Ranks items) (small_list (pair cc_gen float_gen));
        map3
          (fun old_s new_s delta -> P.Deltas { old_s; new_s; delta })
          float_gen float_gen float_gen ])

let request_arb = QCheck.make ~print:(fun r -> Webdep_json.to_string (P.request_to_json r)) request_gen
let response_arb = QCheck.make ~print:(fun r -> Webdep_json.to_string (P.response_to_json r)) response_gen

(* NaN-tolerant structural equality: encoded floats round-trip
   bit-exactly, but [=] on NaN is false. *)
let float_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let response_eq a b =
  match (a, b) with
  | P.Scores a, P.Scores b ->
      float_eq a.s b.s && float_eq a.hhi b.hhi && float_eq a.insularity b.insularity
  | P.Shares a, P.Shares b ->
      List.length a = List.length b
      && List.for_all2
           (fun (x : P.share) (y : P.share) ->
             String.equal x.provider y.provider
             && String.equal x.home y.home
             && float_eq x.share y.share)
           a b
  | P.Ranks a, P.Ranks b ->
      List.length a = List.length b
      && List.for_all2
           (fun (c1, s1) (c2, s2) -> String.equal c1 c2 && float_eq s1 s2)
           a b
  | P.Deltas a, P.Deltas b ->
      float_eq a.old_s b.old_s && float_eq a.new_s b.new_s && float_eq a.delta b.delta
  | a, b -> a = b

(* --- protocol round-trips ----------------------------------------------- *)

let qcheck_request_roundtrip =
  QCheck.Test.make ~count:500 ~name:"request encode/decode round-trip" request_arb
    (fun req ->
      match P.decode_request (P.encode_request req) with
      | Ok req' -> req = req'
      | Error _ -> false)

let qcheck_response_roundtrip =
  QCheck.Test.make ~count:500 ~name:"response encode/decode round-trip" response_arb
    (fun resp ->
      match P.decode_response (P.encode_response resp) with
      | Ok resp' -> response_eq resp resp'
      | Error _ -> false)

let qcheck_truncated_rejected =
  QCheck.Test.make ~count:200 ~name:"every strict payload prefix is rejected"
    request_arb (fun req ->
      let payload = P.encode_request req in
      let ok = ref true in
      for n = 0 to String.length payload - 1 do
        match P.decode_request (String.sub payload 0 n) with
        | Ok _ -> ok := false
        | Error _ -> ()
      done;
      (* Trailing garbage is rejected too. *)
      (match P.decode_request (payload ^ "\x00") with
      | Ok _ -> ok := false
      | Error _ -> ());
      !ok)

let qcheck_json_roundtrip =
  QCheck.Test.make ~count:300 ~name:"JSON debug representation round-trips"
    request_arb (fun req ->
      P.request_of_json (P.request_to_json req) = req)

let qcheck_response_json_roundtrip =
  QCheck.Test.make ~count:300 ~name:"response JSON round-trips" response_arb
    (fun resp ->
      (* The JSON printer encodes non-finite floats as null, so restrict
         to finite payloads (the daemon never emits non-finite ones). *)
      let finite = function
        | P.Scores { s; hhi; insularity } ->
            List.for_all Float.is_finite [ s; hhi; insularity ]
        | P.Shares l -> List.for_all (fun (x : P.share) -> Float.is_finite x.share) l
        | P.Ranks l -> List.for_all (fun (_, s) -> Float.is_finite s) l
        | P.Deltas { old_s; new_s; delta } ->
            List.for_all Float.is_finite [ old_s; new_s; delta ]
        | _ -> true
      in
      QCheck.assume (finite resp);
      response_eq (P.response_of_json (P.response_to_json resp)) resp)

let test_framing () =
  let payloads = [ P.encode_request P.Ping; P.encode_request P.Shutdown; "xyz" ] in
  let stream = String.concat "" (List.map P.frame payloads) in
  let partial = String.sub stream 0 (String.length stream - 2) in
  let buf = Bytes.of_string partial in
  let got, consumed = P.parse_frames buf (Bytes.length buf) in
  Alcotest.(check (list string)) "partial stream yields only complete frames"
    [ List.nth payloads 0; List.nth payloads 1 ]
    got;
  Alcotest.(check bool) "consumed stops before the partial frame" true
    (consumed = String.length stream - 4 - 3);
  (* A corrupt length prefix is an error, not a silent desync. *)
  let bad = Bytes.of_string "\xff\xff\xff\xff rest" in
  Alcotest.check_raises "negative length rejected"
    (P.Protocol_error "bad frame length -1") (fun () ->
      ignore (P.parse_frames bad (Bytes.length bad)))

let test_parse_query () =
  let epoch = World.May_2023 in
  (match P.parse_query ~epoch [ "score"; "hosting"; "us" ] with
  | Ok (P.Score { country = "US"; layer = D.Hosting; _ }) -> ()
  | _ -> Alcotest.fail "score query");
  (match P.parse_query ~epoch [ "topk"; "dns"; "de"; "7" ] with
  | Ok (P.Top_shares { k = 7; layer = D.Dns; country = "DE"; _ }) -> ()
  | _ -> Alcotest.fail "topk query");
  (match P.parse_query ~epoch [ "bogus" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus accepted");
  match P.parse_query ~epoch [ "topk"; "dns"; "de"; "0" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "k = 0 accepted"

(* --- shared warm state --------------------------------------------------- *)

let test_countries = [ "US"; "DE"; "JP"; "BR" ]

let state =
  lazy
    (let world = World.create ~c:60 ~seed:2024 () in
     let ds23 = Measure.measure_all ~countries:test_countries world in
     let ds25 = Measure.measure_all ~epoch:World.May_2025 ~countries:test_countries world in
     let st =
       State.make ~fingerprint:"test-world-60"
         [ (World.May_2023, ds23); (World.May_2025, ds25) ]
     in
     State.warm st;
     st)

let sample_requests () =
  [ P.Ping;
    P.Score { epoch = World.May_2023; layer = D.Hosting; country = "US" };
    P.Score { epoch = World.May_2025; layer = D.Ca; country = "DE" };
    P.Top_shares { epoch = World.May_2023; layer = D.Hosting; country = "JP"; k = 5 };
    P.Ranking { epoch = World.May_2023; layer = D.Dns; k = 4 };
    P.Delta { layer = D.Hosting; country = "BR" };
    P.Score { epoch = World.May_2023; layer = D.Tld; country = "XX" } ]

let test_answer_kinds () =
  let st = Lazy.force state in
  (match State.answer st P.Ping with P.Pong -> () | _ -> Alcotest.fail "ping");
  (match State.answer st (P.Score { epoch = World.May_2023; layer = D.Hosting; country = "US" }) with
  | P.Scores { s; hhi; insularity } ->
      Alcotest.(check bool) "s finite" true (Float.is_finite s);
      Alcotest.(check bool) "hhi >= s" true (hhi >= s);
      Alcotest.(check bool) "insularity in [0,1]" true (insularity >= 0.0 && insularity <= 1.0)
  | _ -> Alcotest.fail "score");
  (match State.answer st (P.Top_shares { epoch = World.May_2023; layer = D.Hosting; country = "US"; k = 3 }) with
  | P.Shares shares ->
      Alcotest.(check int) "k shares" 3 (List.length shares);
      Alcotest.(check bool) "descending shares" true
        (let rec mono = function
           | (a : P.share) :: (b :: _ as rest) -> a.share >= b.share && mono rest
           | _ -> true
         in
         mono shares)
  | _ -> Alcotest.fail "topk");
  (match State.answer st (P.Ranking { epoch = World.May_2023; layer = D.Hosting; k = 10 }) with
  | P.Ranks ranks ->
      Alcotest.(check int) "all four countries ranked" 4 (List.length ranks)
  | _ -> Alcotest.fail "ranking");
  (match State.answer st (P.Delta { layer = D.Hosting; country = "US" }) with
  | P.Deltas { old_s; new_s; delta } ->
      Alcotest.(check (float 1e-12)) "delta = new - old" (new_s -. old_s) delta
  | _ -> Alcotest.fail "delta");
  match State.answer st (P.Score { epoch = World.May_2023; layer = D.Hosting; country = "XX" }) with
  | P.Error _ -> ()
  | _ -> Alcotest.fail "unknown country must be an error"

(* Scores served from the warm tallies must be bit-identical to the cold
   per-dataset computation. *)
let test_answer_matches_cold () =
  let world = World.create ~c:60 ~seed:2024 () in
  let ds23 = Measure.measure_all ~countries:test_countries world in
  let st = Lazy.force state in
  List.iter
    (fun cc ->
      match
        State.answer st (P.Score { epoch = World.May_2023; layer = D.Hosting; country = cc })
      with
      | P.Scores { s; hhi; insularity } ->
          Alcotest.(check bool) "S bit-identical" true
            (float_eq s (Webdep.Metrics.centralization ds23 D.Hosting cc));
          Alcotest.(check bool) "HHI bit-identical" true
            (float_eq hhi
               (Webdep_emd.Centralization.hhi (D.distribution ds23 D.Hosting cc)));
          Alcotest.(check bool) "insularity bit-identical" true
            (float_eq insularity (Webdep.Regionalization.insularity ds23 D.Hosting cc))
      | _ -> Alcotest.fail ("score " ^ cc))
    test_countries

(* --- engine cache -------------------------------------------------------- *)

let test_engine_cache () =
  let st = Lazy.force state in
  let eng = Server.engine st in
  let payload =
    P.encode_request (P.Score { epoch = World.May_2023; layer = D.Hosting; country = "US" })
  in
  let r1 = Server.answer_payload eng payload in
  Alcotest.(check int) "one cached entry" 1 (Server.cache_size eng);
  let r2 = Server.answer_payload eng payload in
  Alcotest.(check string) "cache hit is byte-identical" r1 r2;
  (* Same fingerprint: the cache survives a state swap. *)
  Server.set_state eng st;
  Alcotest.(check int) "same fingerprint keeps cache" 1 (Server.cache_size eng);
  (* Different fingerprint: invalidated. *)
  let st' =
    State.make ~fingerprint:"other-world"
      [ (World.May_2023, Measure.measure_all ~countries:[ "US" ] (World.create ~c:60 ~seed:7 ())) ]
  in
  Server.set_state eng st';
  Alcotest.(check int) "fingerprint change clears cache" 0 (Server.cache_size eng);
  (* Shutdown is never cached. *)
  ignore (Server.answer_payload eng (P.encode_request P.Shutdown));
  Alcotest.(check int) "shutdown not cached" 0 (Server.cache_size eng)

let test_engine_batch_order_and_jobs () =
  let st = Lazy.force state in
  let payloads = List.map P.encode_request (sample_requests ()) in
  (* Fresh engines, par_threshold 1 vs sequential: answers byte-identical
     and in request order either way. *)
  let seq = Server.answer_batch (Server.engine ~par_threshold:max_int st) payloads in
  let par = Server.answer_batch (Server.engine ~par_threshold:1 st) payloads in
  Alcotest.(check (list string)) "parallel batch = sequential batch" seq par;
  List.iter2
    (fun payload reply ->
      match P.decode_request payload with
      | Ok req ->
          Alcotest.(check string) "batch reply = single answer"
            (P.encode_response (State.answer st req))
            reply
      | Error _ -> Alcotest.fail "sample payload must decode")
    payloads seq

(* --- socket integration --------------------------------------------------- *)

let temp_socket () =
  let path = Filename.temp_file "webdep_serve_test" ".sock" in
  Sys.remove path;
  path

let start_server ?(max_queue = 64) ?(batch_max = 16) ?(drain_delay_s = 0.0) path =
  let st = Lazy.force state in
  let ready = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Server.run
          ~on_ready:(fun () -> Atomic.set ready true)
          (Server.config ~max_queue ~batch_max ~drain_delay_s path)
          st)
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (not (Atomic.get ready)) && Unix.gettimeofday () < deadline do
    ignore (Unix.select [] [] [] 0.01)
  done;
  Alcotest.(check bool) "server came up" true (Atomic.get ready);
  d

let test_server_roundtrip () =
  let st = Lazy.force state in
  let path = temp_socket () in
  let d = start_server path in
  let cl = Client.connect path in
  List.iter
    (fun req ->
      let daemon = Client.request cl req in
      let local = State.answer st req in
      Alcotest.(check string)
        ("daemon = local for " ^ Webdep_json.to_string (P.request_to_json req))
        (P.render local) (P.render daemon);
      Alcotest.(check string) "and byte-identical on the wire"
        (P.encode_response local) (P.encode_response daemon))
    (List.filter (fun r -> r <> P.Shutdown) (sample_requests ()));
  (match Client.request cl P.Shutdown with
  | P.Bye -> ()
  | _ -> Alcotest.fail "shutdown must answer Bye");
  Domain.join d;
  Client.close cl;
  Alcotest.(check bool) "socket removed on clean shutdown" false (Sys.file_exists path)

let test_load_shedding () =
  let path = temp_socket () in
  (* One request per 10ms batch with a 4-deep admission queue: a
     pipelined flood must shed most of the intake with immediate
     Overloaded replies while every request still gets an answer. *)
  let d = start_server ~max_queue:4 ~batch_max:1 ~drain_delay_s:0.01 path in
  let cl = Client.connect path in
  let flood = List.init 50 (fun _ -> P.Ping) in
  let t0 = Unix.gettimeofday () in
  let replies = Client.pipeline cl flood in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check int) "every request answered" 50 (List.length replies);
  let shed = List.length (List.filter (fun r -> r = P.Overloaded) replies) in
  let served = List.length (List.filter (fun r -> r = P.Pong) replies) in
  Alcotest.(check int) "answered = served + shed" 50 (shed + served);
  Alcotest.(check bool) "load was shed" true (shed > 0);
  Alcotest.(check bool) "some requests still served" true (served > 0);
  (* Bounded latency: with ~45 shed instantly the flood drains in ~5
     batches, nowhere near the 500ms an unbounded queue would take. *)
  Alcotest.(check bool) "tail stayed bounded" true (elapsed < 0.45);
  (match Client.request cl P.Shutdown with
  | P.Bye -> ()
  | _ -> Alcotest.fail "shutdown after flood");
  Domain.join d;
  Client.close cl

let test_json_lines_mode () =
  let path = temp_socket () in
  let d = start_server path in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let line = {|{"kind":"ping"}|} ^ "\n" in
  let sent = Unix.write_substring fd line 0 (String.length line) in
  Alcotest.(check int) "line written" (String.length line) sent;
  let buf = Bytes.create 4096 in
  let n = Unix.read fd buf 0 4096 in
  let reply = Bytes.sub_string buf 0 n in
  Alcotest.(check string) "JSON-lines pong" "{\"kind\":\"pong\"}\n" reply;
  Unix.close fd;
  let cl = Client.connect path in
  (match Client.request cl P.Shutdown with P.Bye -> () | _ -> Alcotest.fail "bye");
  Client.close cl;
  Domain.join d

(* --- suite ---------------------------------------------------------------- *)

let () =
  Webdep_par.set_jobs 2;
  Alcotest.run "webdep_serve"
    [
      ( "protocol",
        [
          QCheck_alcotest.to_alcotest qcheck_request_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_response_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_truncated_rejected;
          QCheck_alcotest.to_alcotest qcheck_json_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_response_json_roundtrip;
          Alcotest.test_case "framing" `Quick test_framing;
          Alcotest.test_case "query language" `Quick test_parse_query;
        ] );
      ( "state",
        [
          Alcotest.test_case "answer kinds" `Quick test_answer_kinds;
          Alcotest.test_case "warm = cold, bit-identical" `Quick test_answer_matches_cold;
        ] );
      ( "engine",
        [
          Alcotest.test_case "cache and invalidation" `Quick test_engine_cache;
          Alcotest.test_case "batch order and jobs" `Quick test_engine_batch_order_and_jobs;
        ] );
      ( "server",
        [
          Alcotest.test_case "daemon = one-shot round-trip" `Quick test_server_roundtrip;
          Alcotest.test_case "load shedding" `Quick test_load_shedding;
          Alcotest.test_case "json-lines debug mode" `Quick test_json_lines_mode;
        ] );
    ]
