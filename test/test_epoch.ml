(* Tests for webdep_epoch: the churn transaction log (round-trip,
   torn-tail and uncommitted-epoch recovery), O(churn) replay against
   full per-epoch recomputation (bit-identical at every intermediate
   epoch, all four layers), jobs-invariance of the fanned-out score
   reads, compaction round-trip bit-identity, and trend extraction. *)

module D = Webdep.Dataset
module World = Webdep_worldgen.World
module Measure = Webdep_pipeline.Measure
module Log = Webdep_epoch.Log
module Replay = Webdep_epoch.Replay
module Synth = Webdep_epoch.Synth
module Trend = Webdep_epoch.Trend

let layers = [ D.Hosting; D.Dns; D.Ca; D.Tld ]
let test_countries = [ "US"; "DE"; "JP"; "BR" ]

let float_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* One small measured world: the 2023 sweep seeds baselines, the 2025
   sweep donates replacement sites. *)
let fixture =
  lazy
    (let world = World.create ~c:60 ~seed:2024 () in
     let ds23 = Measure.measure_all ~countries:test_countries world in
     let ds25 =
       Measure.measure_all ~epoch:World.May_2025 ~countries:test_countries world
     in
     let base = List.map (D.country_exn ds23) (D.countries ds23) in
     let donors =
       List.map
         (fun cc -> (cc, Array.of_list (D.country_exn ds25 cc).D.sites))
         (D.countries ds25)
     in
     (base, donors))

let make_events ~seed ~fraction ~epochs =
  let base, donors = Lazy.force fixture in
  Synth.generate ~seed ~fraction ~epochs ~base_epoch:0 ~base ~donors

let temp_log () =
  let p = Filename.temp_file "webdep_epoch_test" ".log" in
  Sys.remove p;
  p

(* Build a log the way a live feed would: create the baseline, then one
   O(churn) append per epoch. *)
let build_log ?path events =
  let base, _ = Lazy.force fixture in
  let path = match path with Some p -> p | None -> temp_log () in
  Log.create ~path ~base_epoch:0 ~base ();
  List.iter
    (fun (ev : Log.event) -> Log.append ~path ~epoch:ev.Log.epoch ev.Log.changes)
    events;
  path

let load_exn path =
  match Log.load ~path with
  | Log.Loaded l -> l
  | Log.Absent -> Alcotest.fail "log absent"
  | Log.Mismatch m -> Alcotest.fail ("log mismatch: " ^ m)

let by_cc l = List.sort (fun (a, _) (b, _) -> String.compare a b) l

(* --- replay vs cold recompute -------------------------------------------- *)

(* The tentpole invariant: at EVERY intermediate epoch and in every
   layer, the incrementally maintained scores are bit-identical to a
   cold sweep over the materialized dataset. *)
let replay_matches_cold log =
  let checked = ref 0 in
  ignore
    (Replay.replay
       ~observe:(fun r ->
         let ds = D.of_country_data (Replay.materialize r) in
         List.iter
           (fun layer ->
             let warm = by_cc (Replay.scores r layer) in
             let cold = by_cc (Webdep.Metrics.all_scores ds layer) in
             if List.length warm <> List.length cold then
               Alcotest.failf "epoch %d: %d warm vs %d cold countries"
                 (Replay.epoch r) (List.length warm) (List.length cold);
             List.iter2
               (fun (wc, ws) (cc, cs) ->
                 if not (String.equal wc cc && float_eq ws cs) then
                   Alcotest.failf "epoch %d %s: warm %s=%.17g, cold %s=%.17g"
                     (Replay.epoch r)
                     (match layer with
                     | D.Hosting -> "hosting"
                     | D.Dns -> "dns"
                     | D.Ca -> "ca"
                     | D.Tld -> "tld")
                     wc ws cc cs)
               warm cold;
             incr checked)
           layers)
       log);
  !checked

let qcheck_replay_equals_recompute =
  QCheck.Test.make ~count:8 ~name:"replay = cold recompute at every epoch"
    QCheck.(
      make
        ~print:(fun (s, e, f) -> Printf.sprintf "seed %d, %d epochs, %.2f" s e f)
        Gen.(triple (int_range 1 1000) (int_range 1 5) (oneofl [ 0.05; 0.1; 0.25 ])))
    (fun (seed, epochs, fraction) ->
      let path = build_log (make_events ~seed ~fraction ~epochs) in
      let log = load_exn path in
      let checked = replay_matches_cold log in
      Sys.remove path;
      (* observe fires at the baseline and after each epoch, 4 layers. *)
      checked = 4 * (epochs + 1))

(* hhi and insularity ride the same incremental state: spot-check them
   against the cold dataset at the head. *)
let test_head_hhi_insularity () =
  let path = build_log (make_events ~seed:11 ~fraction:0.1 ~epochs:4) in
  let log = load_exn path in
  Sys.remove path;
  let r = Replay.replay log in
  let ds = D.of_country_data (Replay.materialize r) in
  List.iter
    (fun layer ->
      List.iter
        (fun cc ->
          match Replay.hhi r layer cc with
          | warm ->
              Alcotest.(check bool) "hhi bit-identical" true
                (float_eq warm
                   (Webdep_emd.Centralization.hhi (D.distribution ds layer cc)));
              Alcotest.(check bool) "insularity bit-identical" true
                (float_eq
                   (Replay.insularity r layer cc)
                   (Webdep.Regionalization.insularity ds layer cc))
          | exception Not_found -> ())
        test_countries)
    layers

(* --- jobs invariance ------------------------------------------------------ *)

let test_jobs_invariance () =
  let path = build_log (make_events ~seed:3 ~fraction:0.1 ~epochs:3) in
  let log = load_exn path in
  Sys.remove path;
  let r = Replay.replay log in
  List.iter
    (fun layer ->
      let reference = Replay.scores ~jobs:1 r layer in
      List.iter
        (fun jobs ->
          let got = Replay.scores ~jobs r layer in
          Alcotest.(check int)
            (Printf.sprintf "jobs %d: same countries" jobs)
            (List.length reference) (List.length got);
          List.iter2
            (fun (c1, s1) (c2, s2) ->
              Alcotest.(check string) "country order" c1 c2;
              Alcotest.(check bool) "score bits" true (float_eq s1 s2))
            reference got)
        [ 2; 4 ])
    layers

(* --- log round-trip and recovery ------------------------------------------ *)

let test_log_roundtrip () =
  let events = make_events ~seed:5 ~fraction:0.1 ~epochs:3 in
  let path = build_log events in
  let log = load_exn path in
  Alcotest.(check bool) "nothing dropped" false log.Log.dropped;
  Alcotest.(check int) "head" 3 log.Log.head;
  Alcotest.(check int) "events" 3 (List.length log.Log.events);
  (* Atomic whole-log rewrite reproduces the same log. *)
  let path2 = temp_log () in
  Log.write ~path:path2 log;
  let log2 = load_exn path2 in
  Alcotest.(check bool) "rewrite round-trips" true
    (log.Log.base = log2.Log.base
    && log.Log.events = log2.Log.events
    && log.Log.base_epoch = log2.Log.base_epoch);
  (* And appends after a rewrite keep working. *)
  let more = make_events ~seed:6 ~fraction:0.1 ~epochs:4 in
  (match List.rev more with
  | last :: _ -> Log.append ~path:path2 ~epoch:4 last.Log.changes
  | [] -> Alcotest.fail "no events");
  Alcotest.(check int) "append after rewrite" 4 (load_exn path2).Log.head;
  Sys.remove path;
  Sys.remove path2

let test_empty_epoch_commit () =
  let path = build_log (make_events ~seed:5 ~fraction:0.1 ~epochs:2) in
  Log.append ~path ~epoch:9 [];
  let log = load_exn path in
  Alcotest.(check int) "empty epoch committed" 9 log.Log.head;
  (match List.rev log.Log.events with
  | ev :: _ -> Alcotest.(check int) "no changes" 0 (List.length ev.Log.changes)
  | [] -> Alcotest.fail "no events");
  Sys.remove path

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let write_raw path lines ~torn_tail =
  let oc = open_out path in
  List.iteri
    (fun i line ->
      if i < List.length lines - 1 then (
        output_string oc line;
        output_char oc '\n')
      else if torn_tail then
        (* last line torn: no newline, half the bytes *)
        output_string oc (String.sub line 0 (String.length line / 2))
      else (
        output_string oc line;
        output_char oc '\n'))
    lines;
  close_out oc

let test_torn_tail_recovery () =
  let path = build_log (make_events ~seed:8 ~fraction:0.1 ~epochs:3) in
  let all = read_lines path in
  (* Tear the final commit marker mid-line: epoch 3 must vanish. *)
  write_raw path all ~torn_tail:true;
  let log = load_exn path in
  Alcotest.(check bool) "damage flagged" true log.Log.dropped;
  Alcotest.(check int) "head rolled back" 2 log.Log.head;
  Alcotest.(check int) "two committed epochs" 2 (List.length log.Log.events);
  (* A torn log still replays cleanly to its rolled-back head. *)
  let r = Replay.replay log in
  Alcotest.(check int) "replay reaches head" 2 (Replay.epoch r);
  Sys.remove path

let test_uncommitted_epoch_dropped () =
  let path = build_log (make_events ~seed:8 ~fraction:0.1 ~epochs:3) in
  let all = read_lines path in
  (* Drop the final commit marker entirely: epoch 3's churn lines are
     present and intact, but the transaction never committed. *)
  let without_commit = List.filteri (fun i _ -> i < List.length all - 1) all in
  write_raw path without_commit ~torn_tail:false;
  let log = load_exn path in
  Alcotest.(check bool) "uncommitted epoch flagged" true log.Log.dropped;
  Alcotest.(check int) "head rolled back" 2 log.Log.head;
  (* Re-appending the epoch after recovery works. *)
  Log.write ~path log;
  Log.append ~path ~epoch:3 [];
  Alcotest.(check int) "re-append" 3 (load_exn path).Log.head;
  Sys.remove path

let test_load_rejects () =
  let path = temp_log () in
  Alcotest.(check bool) "absent" true (Log.load ~path = Log.Absent);
  let oc = open_out path in
  output_string oc "{\"schema\":\"other/1\",\"base\":0,\"meta\":{}}\n";
  close_out oc;
  (match Log.load ~path with
  | Log.Mismatch _ -> ()
  | _ -> Alcotest.fail "foreign schema must mismatch");
  let oc = open_out path in
  output_string oc "not json at all\n";
  close_out oc;
  (match Log.load ~path with
  | Log.Mismatch _ -> ()
  | _ -> Alcotest.fail "garbage header must mismatch");
  Sys.remove path

(* --- compaction ----------------------------------------------------------- *)

let test_compaction_bit_identity () =
  let path = build_log (make_events ~seed:21 ~fraction:0.1 ~epochs:6) in
  let raw = load_exn path in
  let compacted = Replay.compact raw ~keep_last:2 in
  Alcotest.(check int) "new baseline epoch" 4 compacted.Log.base_epoch;
  Alcotest.(check int) "kept events" 2 (List.length compacted.Log.events);
  Alcotest.(check int) "same head" raw.Log.head compacted.Log.head;
  (* The compacted log round-trips through disk... *)
  let path2 = temp_log () in
  Log.write ~path:path2 compacted;
  let reloaded = load_exn path2 in
  Alcotest.(check bool) "compacted log round-trips" true
    (reloaded.Log.base = compacted.Log.base
    && reloaded.Log.events = compacted.Log.events);
  (* ...and replays to a bit-identical head: same materialized sites,
     same scores in every layer. *)
  let r_raw = Replay.replay raw in
  let r_cmp = Replay.replay reloaded in
  Alcotest.(check bool) "materialized datasets identical" true
    (Replay.materialize r_raw = Replay.materialize r_cmp);
  List.iter
    (fun layer ->
      List.iter2
        (fun (c1, s1) (c2, s2) ->
          Alcotest.(check string) "country" c1 c2;
          Alcotest.(check bool) "score bits" true (float_eq s1 s2))
        (Replay.scores r_raw layer)
        (Replay.scores r_cmp layer))
    layers;
  (* Compacting below the current base is a no-op. *)
  let noop = Replay.compact reloaded ~keep_last:10 in
  Alcotest.(check int) "no-op compaction keeps base" reloaded.Log.base_epoch
    noop.Log.base_epoch;
  Sys.remove path;
  Sys.remove path2

let test_compaction_shrinks () =
  let path = build_log (make_events ~seed:22 ~fraction:0.15 ~epochs:8) in
  let raw_bytes = (Unix.stat path).Unix.st_size in
  let compacted = Replay.compact (load_exn path) ~keep_last:2 in
  let path2 = temp_log () in
  Log.write ~path:path2 compacted;
  let compacted_bytes = (Unix.stat path2).Unix.st_size in
  Alcotest.(check bool)
    (Printf.sprintf "dict-compressed baseline beats churn records (%d vs %d)"
       compacted_bytes raw_bytes)
    true
    (compacted_bytes < raw_bytes);
  Sys.remove path;
  Sys.remove path2

(* --- apply validation ------------------------------------------------------ *)

let test_apply_rejects () =
  let path = build_log (make_events ~seed:2 ~fraction:0.1 ~epochs:1) in
  let log = load_exn path in
  Sys.remove path;
  let fresh () = Replay.start log in
  let check_rejects name ev =
    let r = fresh () in
    match Replay.apply r ev with
    | () -> Alcotest.fail (name ^ ": must be rejected")
    | exception Invalid_argument _ -> ()
  in
  check_rejects "stale epoch"
    { Log.epoch = 0; changes = [] };
  check_rejects "unknown country"
    { Log.epoch = 1;
      changes = [ { Log.country = "ZZ"; removed = []; added = [] } ] };
  check_rejects "removal of absent domain"
    { Log.epoch = 1;
      changes = [ { Log.country = "US"; removed = [ "no-such.example" ]; added = [] } ] }

(* --- trends ---------------------------------------------------------------- *)

let test_trend_extraction () =
  let path = build_log (make_events ~seed:13 ~fraction:0.1 ~epochs:5) in
  let log = load_exn path in
  Sys.remove path;
  let _, trend = Trend.of_log log D.Hosting in
  Alcotest.(check int) "one observation per epoch incl. baseline" 6
    (Array.length trend.Trend.epochs);
  Alcotest.(check int) "one transition fewer" 5 (Array.length trend.Trend.rank_churn);
  Alcotest.(check int) "a series per country" 4 (List.length trend.Trend.series);
  List.iter
    (fun (s : Trend.series) ->
      Alcotest.(check int) "series length" 6 (Array.length s.Trend.scores);
      Alcotest.(check bool) "slope finite" true (Float.is_finite s.Trend.slope))
    trend.Trend.series;
  let rendered = Trend.render trend in
  Alcotest.(check bool) "render mentions rank churn" true
    (String.length rendered > 0
    &&
    let sub = "rank churn" in
    let n = String.length sub and m = String.length rendered in
    let rec go i = i + n <= m && (String.sub rendered i n = sub || go (i + 1)) in
    go 0)

(* Longitudinal primitives backing the trends. *)
let test_slope_and_displacement () =
  let module L = Webdep.Longitudinal in
  Alcotest.(check (float 1e-9)) "exact line" 2.0
    (L.slope [| 1.0; 3.0; 5.0; 7.0 |]);
  Alcotest.(check (float 1e-9)) "flat" 0.0 (L.slope [| 4.0; 4.0; 4.0 |]);
  Alcotest.(check (float 1e-9)) "NaN skipped" 2.0
    (L.slope [| 1.0; Float.nan; 5.0 |]);
  Alcotest.(check (float 1e-9)) "degenerate" 0.0 (L.slope [| 1.0 |]);
  Alcotest.(check int) "no churn" 0
    (L.rank_displacement [ ("A", 2.0); ("B", 1.0) ] [ ("A", 5.0); ("B", 4.0) ]);
  Alcotest.(check int) "swap costs two" 2
    (L.rank_displacement [ ("A", 2.0); ("B", 1.0) ] [ ("A", 1.0); ("B", 2.0) ])

(* --- suite ------------------------------------------------------------------ *)

let () =
  Webdep_par.set_jobs 2;
  Alcotest.run "webdep_epoch"
    [
      ( "replay",
        [
          QCheck_alcotest.to_alcotest qcheck_replay_equals_recompute;
          Alcotest.test_case "head hhi/insularity = cold" `Quick
            test_head_hhi_insularity;
          Alcotest.test_case "jobs invariance 1/2/4" `Quick test_jobs_invariance;
          Alcotest.test_case "apply validation" `Quick test_apply_rejects;
        ] );
      ( "log",
        [
          Alcotest.test_case "round-trip" `Quick test_log_roundtrip;
          Alcotest.test_case "empty epoch commit" `Quick test_empty_epoch_commit;
          Alcotest.test_case "torn tail recovery" `Quick test_torn_tail_recovery;
          Alcotest.test_case "uncommitted epoch dropped" `Quick
            test_uncommitted_epoch_dropped;
          Alcotest.test_case "rejects" `Quick test_load_rejects;
        ] );
      ( "compaction",
        [
          Alcotest.test_case "bit-identical replay" `Quick
            test_compaction_bit_identity;
          Alcotest.test_case "compacted smaller than raw" `Quick
            test_compaction_shrinks;
        ] );
      ( "trend",
        [
          Alcotest.test_case "series, slopes, rank churn" `Quick
            test_trend_extraction;
          Alcotest.test_case "slope / rank displacement" `Quick
            test_slope_and_displacement;
        ] );
    ]
