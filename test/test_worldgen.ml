(* Tests for webdep_worldgen: calibration, registries, mixes, the world. *)

open Webdep_worldgen
module Scores = Webdep_reference.Paper_scores

(* --- Calibrate ------------------------------------------------------------ *)

let test_calibrate_hits_targets () =
  List.iter
    (fun (target, top, n) ->
      let r = Calibrate.counts ?top_share:top ~c:10_000 ~n_providers:n ~target () in
      if Float.abs (r.Calibrate.achieved -. target) > 1e-4 then
        Alcotest.failf "target %.4f achieved %.6f" target r.Calibrate.achieved;
      Alcotest.(check int) "sums to c" 10_000 (Array.fold_left ( + ) 0 r.Calibrate.counts))
    [ (0.3548, Some 0.60, 328); (0.0411, Some 0.14, 444); (0.1358, Some 0.29, 834);
      (0.5853, Some 0.77, 120); (0.1468, None, 150); (0.0391, None, 500) ]

let test_calibrate_counts_nonincreasing () =
  let r = Calibrate.counts ~c:5000 ~n_providers:200 ~target:0.12 () in
  let c = r.Calibrate.counts in
  for i = 0 to Array.length c - 2 do
    if c.(i) < c.(i + 1) then Alcotest.fail "counts must be nonincreasing"
  done

let test_calibrate_respects_top_share () =
  let r = Calibrate.counts ~top_share:0.60 ~c:10_000 ~n_providers:328 ~target:0.3548 () in
  let top = float_of_int r.Calibrate.counts.(0) /. 10_000.0 in
  if Float.abs (top -. 0.60) > 0.02 then Alcotest.failf "top share %.3f" top

let test_calibrate_second_share () =
  let r =
    Calibrate.counts ~top_share:0.25 ~second_share:0.22 ~c:10_000 ~n_providers:354
      ~target:0.1188 ()
  in
  let second = float_of_int r.Calibrate.counts.(1) /. 10_000.0 in
  if Float.abs (second -. 0.22) > 0.02 then Alcotest.failf "second share %.3f" second

let test_calibrate_provider_count_preserved () =
  let r = Calibrate.counts ~top_share:0.29 ~c:10_000 ~n_providers:834 ~target:0.1358 () in
  Alcotest.(check int) "834 providers" 834 (Array.length r.Calibrate.counts)

let test_calibrate_invalid () =
  Alcotest.check_raises "c" (Invalid_argument "Calibrate.counts: c must be positive") (fun () ->
      ignore (Calibrate.counts ~c:0 ~n_providers:10 ~target:0.1 ()));
  Alcotest.check_raises "n" (Invalid_argument "Calibrate.counts: n_providers outside (1, c]")
    (fun () -> ignore (Calibrate.counts ~c:100 ~n_providers:1 ~target:0.1 ()))

let test_calibrate_unattainable_target () =
  (* Uniform over 100 providers floors S at ~0.0099; ask for less. *)
  let raised =
    try
      ignore (Calibrate.counts ~c:10_000 ~n_providers:100 ~target:0.001 ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "rejects unattainable" true raised

let prop_calibrate_random_targets =
  QCheck.Test.make ~name:"calibration converges on random targets" ~count:40
    QCheck.(pair (float_range 0.03 0.55) (int_range 100 800))
    (fun (target, n) ->
      let r = Calibrate.counts ~c:10_000 ~n_providers:n ~target () in
      Float.abs (r.Calibrate.achieved -. target) < 2e-4
      && Array.fold_left ( + ) 0 r.Calibrate.counts = 10_000)

(* --- Registry ------------------------------------------------------------- *)

let test_registry_class_sizes () =
  (* 6 L-GP + 2 L-GP(R) + 22 M-GP + 73 S-GP = 103 after the XL pair. *)
  Alcotest.(check int) "hosting global roster" 103 (List.length Registry.hosting_global);
  Alcotest.(check int) "dns global roster" (10 + 2 + 17 + 78) (List.length Registry.dns_global);
  Alcotest.(check int) "ca global7" 7 (List.length Registry.ca_global7);
  Alcotest.(check int) "ca medium" 2 (List.length Registry.ca_medium);
  Alcotest.(check int) "ca xsmall" 15 (List.length Registry.ca_xsmall)

let test_registry_anchors () =
  let beget = Registry.regional ~layer:"hosting" "RU" 0 in
  Alcotest.(check string) "Beget" "Beget LLC" beget.Provider.name;
  Alcotest.(check string) "home RU" "RU" beget.Provider.home;
  let shbg = Registry.regional ~layer:"hosting" "BG" 0 in
  Alcotest.(check string) "SuperHosting" "SuperHosting.BG" shbg.Provider.name;
  let synth = Registry.regional ~layer:"hosting" "ZW" 3 in
  Alcotest.(check string) "synthetic home" "ZW" synth.Provider.home

let test_registry_regional_deterministic () =
  let a = Registry.regional ~layer:"dns" "FR" 7 and b = Registry.regional ~layer:"dns" "FR" 7 in
  Alcotest.(check bool) "stable" true (Provider.equal a b)

let test_registry_tld () =
  Alcotest.(check string) ".com is US" "US" (Registry.tld ".com").Provider.home;
  Alcotest.(check string) ".de is DE" "DE" (Registry.tld ".de").Provider.home;
  Alcotest.(check string) ".uk is GB" "GB" (Registry.tld ".uk").Provider.home;
  Alcotest.(check string) ".io is GB" "GB" (Registry.tld ".io").Provider.home

let test_registry_ca_regional () =
  (match Registry.ca_regional "PL" with
  | Some p -> Alcotest.(check string) "Asseco" "Asseco (Certum)" p.Provider.name
  | None -> Alcotest.fail "PL should have a CA");
  Alcotest.(check bool) "ZW has none" true (Registry.ca_regional "ZW" = None);
  Alcotest.(check int) "about 24 regional-CA countries" 24
    (List.length Registry.ca_regional_countries)

let test_provider_slug () =
  Alcotest.(check string) "slug" "let-s-encrypt"
    (Provider.slug (Provider.make ~name:"Let's Encrypt" ~home:"US"))

(* --- Profiles ------------------------------------------------------------- *)

let test_profiles_top_shares () =
  Alcotest.(check (float 1e-9)) "TH anchored" 0.60 (Profiles.top_share Hosting "TH");
  Alcotest.(check (float 1e-9)) "US anchored" 0.29 (Profiles.top_share Hosting "US");
  let generic = Profiles.top_share Hosting "DE" in
  Alcotest.(check bool) "fitted in range" true (generic > 0.08 && generic < 0.9)

let test_profiles_top_provider () =
  Alcotest.(check string) "Cloudflare default" "Cloudflare"
    (Profiles.top_provider Hosting "TH").Provider.name;
  Alcotest.(check string) "Japan is Amazon" "Amazon"
    (Profiles.top_provider Hosting "JP").Provider.name;
  Alcotest.(check string) "CZ TLD is .cz" ".cz" (Profiles.top_provider Tld "CZ").Provider.name;
  Alcotest.(check string) "US TLD is .com" ".com" (Profiles.top_provider Tld "US").Provider.name

let test_profiles_partners () =
  Alcotest.(check (list (pair string (float 1e-9)))) "TM on Russia" [ ("RU", 0.33) ]
    (Profiles.partners Hosting "TM");
  Alcotest.(check (list (pair string (float 1e-9)))) "SK on Czechia" [ ("CZ", 0.257) ]
    (Profiles.partners Hosting "SK");
  Alcotest.(check (list (pair string (float 1e-9)))) "IR CA on Asseco" [ ("PL", 0.19) ]
    (Profiles.partners Ca "IR")

let test_profiles_n_providers_anchors () =
  Alcotest.(check int) "TH" 328 (Profiles.n_providers Hosting "TH");
  Alcotest.(check int) "IR" 444 (Profiles.n_providers Hosting "IR");
  Alcotest.(check int) "US" 834 (Profiles.n_providers Hosting "US")

let test_profiles_all_countries_covered () =
  (* Every (layer, country) pair must produce a usable plan. *)
  List.iter
    (fun layer ->
      List.iter
        (fun c ->
          let cc = c.Webdep_geo.Country.code in
          let t = Profiles.target_score layer cc in
          let p = Profiles.top_share layer cc in
          let h = Profiles.home_quota layer cc in
          if t <= 0.0 || t >= 1.0 then Alcotest.failf "%s target" cc;
          if p <= 0.0 || p >= 1.0 then Alcotest.failf "%s top share" cc;
          if h < 0.0 || h >= 1.0 then Alcotest.failf "%s home quota" cc)
        Webdep_geo.Country.all)
    Scores.all_layers

(* --- Mix -------------------------------------------------------------------- *)

let test_mix_invariants () =
  List.iter
    (fun (layer, cc) ->
      let m = Mix.build ~c:4000 layer cc in
      Alcotest.(check int) "total" 4000 (Mix.total m);
      let names = List.map (fun (p, _) -> p.Provider.name ^ "/" ^ p.Provider.home) m.Mix.assignments in
      Alcotest.(check int) "distinct providers" (List.length names)
        (List.length (List.sort_uniq compare names));
      List.iter (fun (_, k) -> if k <= 0 then Alcotest.fail "nonpositive count") m.Mix.assignments;
      let target = Scores.score_exn layer cc in
      if Float.abs (m.Mix.achieved_score -. target) > 5e-4 then
        Alcotest.failf "%s/%s: %.4f vs %.4f" (Scores.layer_name layer) cc m.Mix.achieved_score
          target)
    [ (Profiles.Hosting, "TH"); (Profiles.Hosting, "IR"); (Profiles.Dns, "CZ");
      (Profiles.Ca, "SK"); (Profiles.Tld, "US"); (Profiles.Tld, "KG") ]

let test_mix_top_provider_identity () =
  let m = Mix.build ~c:4000 Profiles.Hosting "TH" in
  let top, _ = List.hd m.Mix.assignments in
  Alcotest.(check string) "Cloudflare" "Cloudflare" top.Provider.name;
  let mj = Mix.build ~c:4000 Profiles.Hosting "JP" in
  Alcotest.(check string) "Amazon in JP" "Amazon" (fst (List.hd mj.Mix.assignments)).Provider.name

let test_mix_partner_shares () =
  let share_of_home m home =
    List.fold_left
      (fun acc (p, k) ->
        if String.equal p.Provider.home home then acc +. (float_of_int k /. float_of_int (Mix.total m))
        else acc)
      0.0 m.Mix.assignments
  in
  let tm = Mix.build ~c:10_000 Profiles.Hosting "TM" in
  let ru_share = share_of_home tm "RU" in
  if Float.abs (ru_share -. 0.33) > 0.02 then Alcotest.failf "TM->RU %.3f" ru_share;
  let sk = Mix.build ~c:10_000 Profiles.Hosting "SK" in
  let cz_share = share_of_home sk "CZ" in
  if Float.abs (cz_share -. 0.257) > 0.02 then Alcotest.failf "SK->CZ %.3f" cz_share

let test_mix_insularity_anchors () =
  let check cc expected tol =
    let m = Mix.build ~c:10_000 Profiles.Hosting cc in
    let i = Mix.insular_share m in
    if Float.abs (i -. expected) > tol then Alcotest.failf "%s insularity %.3f" cc i
  in
  check "US" 0.921 0.05;
  check "IR" 0.648 0.03;
  check "TM" 0.04 0.03

let test_mix_second_anchor () =
  let m = Mix.build ~c:10_000 Profiles.Hosting "BG" in
  match m.Mix.assignments with
  | (_, _) :: (second, k) :: _ ->
      Alcotest.(check string) "SuperHosting.BG" "SuperHosting.BG" second.Provider.name;
      if Float.abs ((float_of_int k /. 10_000.0) -. 0.22) > 0.02 then
        Alcotest.failf "share %.3f" (float_of_int k /. 10_000.0)
  | _ -> Alcotest.fail "too few assignments"

let test_mix_ca_small_world () =
  let m = Mix.build ~c:10_000 Profiles.Ca "DE" in
  Alcotest.(check bool) "few CAs" true (Mix.provider_count m <= 30)

let test_mix_deterministic () =
  let a = Mix.build ~c:2000 Profiles.Hosting "FR" in
  let b = Mix.build ~c:2000 Profiles.Hosting "FR" in
  Alcotest.(check bool) "same assignments" true (a.Mix.assignments = b.Mix.assignments)

let test_mix_unknown_country () =
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Mix.build Profiles.Hosting "XX"))

(* --- Language ------------------------------------------------------------------ *)

let test_language_primary () =
  Alcotest.(check string) "IR" "fa" (Language.primary "IR");
  Alcotest.(check string) "DE" "de" (Language.primary "DE");
  Alcotest.(check string) "BR" "pt" (Language.primary "BR");
  Alcotest.(check string) "default" "en" (Language.primary "US")

let test_language_assign_afghanistan_anchor () =
  (* Iranian-hosted Afghan sites are Persian; the rest mostly Pashto. *)
  let fa_ir = ref 0 and fa_other = ref 0 and n = 2000 in
  for i = 0 to n - 1 do
    let domain = Printf.sprintf "s%05d-af.af" i in
    if Language.assign ~cc:"AF" ~provider_home:"IR" ~domain = "fa" then incr fa_ir;
    if Language.assign ~cc:"AF" ~provider_home:"US" ~domain = "fa" then incr fa_other
  done;
  Alcotest.(check int) "IR-hosted all Persian" n !fa_ir;
  let frac = float_of_int !fa_other /. float_of_int n in
  if Float.abs (frac -. 0.15) > 0.03 then Alcotest.failf "base Persian rate %.3f" frac

let test_language_assign_deterministic () =
  Alcotest.(check string) "stable"
    (Language.assign ~cc:"DE" ~provider_home:"DE" ~domain:"x.de")
    (Language.assign ~cc:"DE" ~provider_home:"DE" ~domain:"x.de")

let test_language_partner_pull () =
  (* Some foreign-partner-hosted sites carry the partner's language. *)
  let partner = ref 0 and n = 2000 in
  for i = 0 to n - 1 do
    let domain = Printf.sprintf "s%05d-sk.sk" i in
    if Language.assign ~cc:"SK" ~provider_home:"CZ" ~domain = "cs" then incr partner
  done;
  let frac = float_of_int !partner /. float_of_int n in
  if frac < 0.25 || frac > 0.55 then Alcotest.failf "partner language rate %.3f" frac

(* --- World -------------------------------------------------------------------- *)

let test_world_snapshot_basics () =
  let world = World.create ~c:500 ~seed:1 () in
  let snap = World.snapshot world "TH" in
  Alcotest.(check int) "toplist length" 500 (Webdep_crux.Toplist.length snap.World.toplist);
  Alcotest.(check int) "assigned" 500 (Hashtbl.length snap.World.assigned);
  Alcotest.(check string) "country" "TH" snap.World.country

let test_world_snapshot_deterministic () =
  let world1 = World.create ~c:300 ~seed:5 () in
  let world2 = World.create ~c:300 ~seed:5 () in
  let d1 = Webdep_crux.Toplist.domains (World.snapshot world1 "DE").World.toplist in
  let d2 = Webdep_crux.Toplist.domains (World.snapshot world2 "DE").World.toplist in
  Alcotest.(check (list string)) "same domains" d1 d2

let test_world_seed_changes_world () =
  let d seed =
    Webdep_crux.Toplist.domains
      (World.snapshot (World.create ~c:300 ~seed ()) "DE").World.toplist
  in
  Alcotest.(check bool) "different seeds differ" true (d 1 <> d 2)

let test_world_epoch_churn () =
  let world = World.create ~c:1000 ~seed:3 () in
  let t23 = (World.snapshot world "RU").World.toplist in
  let t25 = (World.snapshot world ~epoch:World.May_2025 "RU").World.toplist in
  let j =
    Webdep_stats.Similarity.jaccard_strings
      (Webdep_crux.Toplist.domains t23)
      (Webdep_crux.Toplist.domains t25)
  in
  if Float.abs (j -. 0.40) > 0.05 then Alcotest.failf "RU jaccard %.3f, expected ~0.40" j

let test_world_domains_carry_tlds () =
  let world = World.create ~c:500 ~seed:4 () in
  let snap = World.snapshot world "DE" in
  let has_de =
    List.exists
      (fun d -> Filename.check_suffix d ".de")
      (Webdep_crux.Toplist.domains snap.World.toplist)
  in
  Alcotest.(check bool) "some .de domains" true has_de

let test_world_epoch_names () =
  Alcotest.(check string) "2023" "2023-05" (World.epoch_name World.May_2023);
  Alcotest.(check string) "2025" "2025-05" (World.epoch_name World.May_2025)

(* Random (layer, country) mixes uphold the core invariants: exact total,
   distinct providers, positive counts, score within tolerance of the
   Appendix-F target.  One sanctioned exception to distinctness: in the
   CA layer a pinned regional CA that is also one of the seven globals
   (US→DigiCert, BE→GlobalSign) carries that identity in two buckets —
   the head share and the home quota — which the dataset tally merges. *)
let prop_mix_invariants =
  let all_codes = List.map (fun c -> c.Webdep_geo.Country.code) Webdep_geo.Country.all in
  let global7 =
    List.map (fun (p : Provider.t) -> p.Provider.name ^ "/" ^ p.Provider.home)
      Registry.ca_global7
  in
  QCheck.Test.make ~name:"random mixes uphold invariants" ~count:25
    QCheck.(pair (int_range 0 3) (int_range 0 149))
    (fun (layer_idx, country_idx) ->
      let layer = List.nth Scores.all_layers layer_idx in
      let cc = List.nth all_codes country_idx in
      let m = Mix.build ~c:3000 layer cc in
      let total_ok = Mix.total m = 3000 in
      let positive = List.for_all (fun (_, k) -> k > 0) m.Mix.assignments in
      let names =
        List.map (fun (p, _) -> p.Provider.name ^ "/" ^ p.Provider.home) m.Mix.assignments
      in
      let dups =
        List.filter
          (fun n -> List.length (List.filter (String.equal n) names) > 1)
          (List.sort_uniq compare names)
      in
      let distinct =
        dups = [] || (layer = Scores.Ca && List.for_all (fun n -> List.mem n global7) dups)
      in
      let target = Scores.score_exn layer cc in
      let close = Float.abs (m.Mix.achieved_score -. target) < 2e-3 in
      total_ok && positive && distinct && close)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "webdep_worldgen"
    [
      ( "calibrate",
        [
          Alcotest.test_case "hits paper targets" `Quick test_calibrate_hits_targets;
          Alcotest.test_case "nonincreasing" `Quick test_calibrate_counts_nonincreasing;
          Alcotest.test_case "respects top share" `Quick test_calibrate_respects_top_share;
          Alcotest.test_case "second share" `Quick test_calibrate_second_share;
          Alcotest.test_case "provider count preserved" `Quick test_calibrate_provider_count_preserved;
          Alcotest.test_case "invalid" `Quick test_calibrate_invalid;
          Alcotest.test_case "unattainable target" `Quick test_calibrate_unattainable_target;
          qtest prop_calibrate_random_targets;
        ] );
      ( "registry",
        [
          Alcotest.test_case "class sizes" `Quick test_registry_class_sizes;
          Alcotest.test_case "anchors" `Quick test_registry_anchors;
          Alcotest.test_case "deterministic" `Quick test_registry_regional_deterministic;
          Alcotest.test_case "tld" `Quick test_registry_tld;
          Alcotest.test_case "ca regional" `Quick test_registry_ca_regional;
          Alcotest.test_case "slug" `Quick test_provider_slug;
        ] );
      ( "profiles",
        [
          Alcotest.test_case "top shares" `Quick test_profiles_top_shares;
          Alcotest.test_case "top provider" `Quick test_profiles_top_provider;
          Alcotest.test_case "partners" `Quick test_profiles_partners;
          Alcotest.test_case "n_providers anchors" `Quick test_profiles_n_providers_anchors;
          Alcotest.test_case "all countries covered" `Quick test_profiles_all_countries_covered;
        ] );
      ( "mix",
        [
          Alcotest.test_case "invariants" `Quick test_mix_invariants;
          Alcotest.test_case "top identity" `Quick test_mix_top_provider_identity;
          Alcotest.test_case "partner shares" `Quick test_mix_partner_shares;
          Alcotest.test_case "insularity anchors" `Quick test_mix_insularity_anchors;
          Alcotest.test_case "second anchor" `Quick test_mix_second_anchor;
          Alcotest.test_case "ca small world" `Quick test_mix_ca_small_world;
          Alcotest.test_case "deterministic" `Quick test_mix_deterministic;
          Alcotest.test_case "unknown country" `Quick test_mix_unknown_country;
          qtest prop_mix_invariants;
        ] );
      ( "language",
        [
          Alcotest.test_case "primary" `Quick test_language_primary;
          Alcotest.test_case "afghanistan anchor" `Quick test_language_assign_afghanistan_anchor;
          Alcotest.test_case "deterministic" `Quick test_language_assign_deterministic;
          Alcotest.test_case "partner pull" `Quick test_language_partner_pull;
        ] );
      ( "world",
        [
          Alcotest.test_case "snapshot basics" `Quick test_world_snapshot_basics;
          Alcotest.test_case "deterministic" `Quick test_world_snapshot_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_world_seed_changes_world;
          Alcotest.test_case "epoch churn" `Quick test_world_epoch_churn;
          Alcotest.test_case "domains carry tlds" `Quick test_world_domains_carry_tlds;
          Alcotest.test_case "epoch names" `Quick test_world_epoch_names;
        ] );
    ]
