(* Tests for webdep_geo: the 150-country dataset and region taxonomy. *)

module Country = Webdep_geo.Country
module Region = Webdep_geo.Region

let test_count () = Alcotest.(check int) "exactly 150 countries" 150 Country.count

let test_codes_unique () =
  let codes = List.map (fun c -> c.Country.code) Country.all in
  Alcotest.(check int) "unique codes" 150 (List.length (List.sort_uniq compare codes))

let test_codes_shape () =
  List.iter
    (fun c ->
      if String.length c.Country.code <> 2 then Alcotest.failf "bad code %s" c.Country.code;
      String.iter
        (fun ch -> if ch < 'A' || ch > 'Z' then Alcotest.failf "bad code %s" c.Country.code)
        c.Country.code)
    Country.all

let test_lookup () =
  (match Country.of_code "us" with
  | Some c -> Alcotest.(check string) "case-insensitive" "United States" c.Country.name
  | None -> Alcotest.fail "US missing");
  Alcotest.(check bool) "unknown" true (Country.of_code "XX" = None);
  Alcotest.(check bool) "mem" true (Country.mem "DE");
  Alcotest.check_raises "of_code_exn" Not_found (fun () -> ignore (Country.of_code_exn "ZZ"))

let test_known_subregions () =
  let check code subregion =
    Alcotest.(check string) code (Region.subregion_name subregion)
      (Region.subregion_name (Country.of_code_exn code).Country.subregion)
  in
  check "TH" Region.South_eastern_asia;
  check "IR" Region.Southern_asia;
  check "CZ" Region.Eastern_europe;
  check "US" Region.Northern_america;
  check "TM" Region.Central_asia;
  check "RE" Region.Eastern_africa;
  check "AU" Region.Oceania_subregion;
  check "BR" Region.South_america_subregion

let test_continent_mapping () =
  let check code continent =
    Alcotest.(check string) code
      (Region.continent_code continent)
      (Region.continent_code (Country.continent (Country.of_code_exn code)))
  in
  check "TH" Region.Asia;
  check "DE" Region.Europe;
  check "US" Region.North_america;
  check "NG" Region.Africa;
  check "AU" Region.Oceania;
  check "BR" Region.South_america

let test_every_subregion_consistent () =
  (* Every country's subregion maps to a continent, and in_subregion /
     in_continent partition the dataset. *)
  let total_by_continent =
    List.fold_left
      (fun acc ct -> acc + List.length (Country.in_continent ct))
      0 Region.all_continents
  in
  Alcotest.(check int) "continents partition" 150 total_by_continent;
  let total_by_subregion =
    List.fold_left
      (fun acc sr -> acc + List.length (Country.in_subregion sr))
      0 Region.all_subregions
  in
  Alcotest.(check int) "subregions partition" 150 total_by_subregion

let test_paper_region_counts () =
  (* Sanity anchors from Appendix E: CIS-ish Central Asia has 5 members
     in the dataset; Northern America two (US, CA). *)
  Alcotest.(check int) "central asia" 5 (List.length (Country.in_subregion Region.Central_asia));
  Alcotest.(check int) "northern america" 2
    (List.length (Country.in_subregion Region.Northern_america));
  Alcotest.(check int) "oceania" 3 (List.length (Country.in_subregion Region.Oceania_subregion))

let test_cctld () =
  Alcotest.(check string) "DE" ".de" (Country.ccTLD (Country.of_code_exn "DE"));
  Alcotest.(check string) "GB is .uk" ".uk" (Country.ccTLD (Country.of_code_exn "GB"))

let test_continent_codes_roundtrip () =
  List.iter
    (fun ct ->
      match Region.continent_of_code (Region.continent_code ct) with
      | Some ct' when ct' = ct -> ()
      | _ -> Alcotest.failf "roundtrip failed for %s" (Region.continent_name ct))
    Region.all_continents;
  Alcotest.(check bool) "bad code" true (Region.continent_of_code "XX" = None)

let test_subregion_continent_of_subregion () =
  Alcotest.(check string) "Caribbean is NA" "NA"
    (Region.continent_code (Region.continent_of_subregion Region.Caribbean));
  Alcotest.(check string) "Central Asia is AS" "AS"
    (Region.continent_code (Region.continent_of_subregion Region.Central_asia))

let () =
  Alcotest.run "webdep_geo"
    [
      ( "country",
        [
          Alcotest.test_case "count" `Quick test_count;
          Alcotest.test_case "codes unique" `Quick test_codes_unique;
          Alcotest.test_case "codes shape" `Quick test_codes_shape;
          Alcotest.test_case "lookup" `Quick test_lookup;
          Alcotest.test_case "known subregions" `Quick test_known_subregions;
          Alcotest.test_case "continent mapping" `Quick test_continent_mapping;
          Alcotest.test_case "partitions" `Quick test_every_subregion_consistent;
          Alcotest.test_case "paper region counts" `Quick test_paper_region_counts;
          Alcotest.test_case "ccTLD" `Quick test_cctld;
        ] );
      ( "region",
        [
          Alcotest.test_case "continent code roundtrip" `Quick test_continent_codes_roundtrip;
          Alcotest.test_case "subregion to continent" `Quick test_subregion_continent_of_subregion;
        ] );
    ]
