(* Unit tests for webdep_prof (and the multi-domain behaviour of the
   webdep_obs sinks it builds on): the jsonl sink under a 4-domain
   hammer, span depth balance across domains and exceptions, hotspot
   aggregation self/cumulative math, the Chrome trace export/load round
   trip, and the noise-aware regression gate's verdicts. *)

module Sink = Webdep_obs.Sink
module Span = Webdep_obs.Span
module Json = Webdep_obs.Json
module Profile = Webdep_prof.Profile
module Trace = Webdep_prof.Trace
module Regress = Webdep_prof.Regress

(* --- multi-domain sink behaviour ---------------------------------------- *)

let spans_per_domain = 200
let domains = 4

(* Four domains each emit nested spans as fast as they can; every line
   of the jsonl file must still be one complete JSON object — the sink's
   lock makes line writes atomic, and this is the test that would catch
   interleaving if it ever broke. *)
let test_jsonl_multi_domain_hammer () =
  let path = Filename.temp_file "webdep_prof" ".jsonl" in
  let sink = Sink.jsonl path in
  Sink.with_sink sink (fun () ->
      let spawned =
        List.init domains (fun d ->
            Domain.spawn (fun () ->
                Span.set_lane (100 + d);
                for i = 1 to spans_per_domain do
                  Span.with_ ~name:(Printf.sprintf "hammer.outer.%d" d) (fun () ->
                      Span.with_
                        ~name:(Printf.sprintf "hammer.inner.%d" d)
                        ~attrs:[ ("i", string_of_int i) ]
                        (fun () -> ignore (Sys.opaque_identity (i * i))))
                done))
      in
      List.iter Domain.join spawned);
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  Alcotest.(check int) "every span became exactly one line"
    (domains * spans_per_domain * 2)
    (List.length lines);
  let lanes = Hashtbl.create 8 in
  List.iter
    (fun line ->
      match Json.parse_opt line with
      | None -> Alcotest.failf "unparseable (interleaved?) line: %s" line
      | Some j -> (
          (match Json.member "name" j with
          | Some (Json.String _) -> ()
          | _ -> Alcotest.failf "line without a name: %s" line);
          match Json.member "lane" j with
          | Some (Json.Int l) -> Hashtbl.replace lanes l ()
          | _ -> Alcotest.failf "line without a lane: %s" line))
    lines;
  Alcotest.(check int) "one lane per domain" domains (Hashtbl.length lanes);
  Sys.remove path

(* Exceptions inside spans on worker domains must leave each domain's
   nesting depth balanced: a span opened after the carnage still closes
   at depth 0. *)
let test_exception_depth_balanced_across_domains () =
  let c = Profile.collector () in
  Sink.with_sink (Profile.collector_sink c) (fun () ->
      let spawned =
        List.init domains (fun d ->
            Domain.spawn (fun () ->
                Span.set_lane (200 + d);
                for _ = 1 to 50 do
                  try
                    Span.with_ ~name:"thrower.outer" (fun () ->
                        Span.with_ ~name:"thrower.inner" (fun () -> failwith "boom"))
                  with Failure _ -> ()
                done;
                Span.with_ ~name:"after.exceptions" (fun () -> ())))
      in
      List.iter Domain.join spawned);
  let after =
    List.filter (fun (ev : Sink.event) -> ev.Sink.name = "after.exceptions") (Profile.events c)
  in
  Alcotest.(check int) "one trailing span per domain" domains (List.length after);
  List.iter
    (fun (ev : Sink.event) ->
      Alcotest.(check int) "trailing span closed at depth 0" 0 ev.Sink.depth)
    after

(* --- hotspot aggregation ------------------------------------------------ *)

let ev ?(lane = 0) ?(attrs = []) ?(minor = 0.0) name start dur depth =
  {
    Sink.name;
    attrs;
    start_s = start;
    duration_s = dur;
    depth;
    lane;
    gc = { Sink.zero_gc with Sink.minor_words = minor };
  }

let row rows label =
  match List.find_opt (fun (r : Profile.row) -> r.Profile.label = label) rows with
  | Some r -> r
  | None -> Alcotest.failf "no row for %s" label

let test_aggregate_self_vs_cumulative () =
  (* lane 0:  parent [0, 1.0) at depth 0
                child [0.1, 0.3) and [0.5, 0.2) at depth 1
     lane 1:  solo [0, 0.4) at depth 0
     Close order is what the collector would record: children first. *)
  let events =
    [
      ev "child" 0.1 0.3 1 ~minor:100.0;
      ev "child" 0.5 0.2 1 ~minor:50.0;
      ev "parent" 0.0 1.0 0 ~minor:400.0;
      ev "solo" 0.0 0.4 0 ~lane:1 ~minor:30.0;
    ]
  in
  let rows = Profile.aggregate events in
  let parent = row rows "parent" and child = row rows "child" and solo = row rows "solo" in
  Alcotest.(check int) "parent calls" 1 parent.Profile.calls;
  Alcotest.(check (float 1e-9)) "parent cum is its duration" 1.0 parent.Profile.cum_s;
  Alcotest.(check (float 1e-9)) "parent self excludes children" 0.5 parent.Profile.self_s;
  Alcotest.(check (float 1e-9)) "parent self alloc excludes children" 250.0
    parent.Profile.self_minor_words;
  Alcotest.(check int) "child calls" 2 child.Profile.calls;
  Alcotest.(check (float 1e-9)) "leaf self equals cum" child.Profile.cum_s
    child.Profile.self_s;
  Alcotest.(check (float 1e-9)) "children keep their own time" 0.5 child.Profile.cum_s;
  Alcotest.(check (float 1e-9)) "other lanes never subtract" 0.4 solo.Profile.self_s;
  (* Self times over all rows add up to the wall clock of both lanes. *)
  let total_self = List.fold_left (fun acc r -> acc +. r.Profile.self_s) 0.0 rows in
  Alcotest.(check (float 1e-9)) "self times partition the wall clock" 1.4 total_self

let test_aggregate_loaded_trace_order () =
  (* The same tree presented in start order (as a loaded trace would
     be): aggregation must re-derive close order and still subtract the
     children. *)
  let events =
    [
      ev "parent" 0.0 1.0 0;
      ev "child" 0.1 0.3 1;
      ev "child" 0.5 0.2 1;
    ]
  in
  let rows = Profile.aggregate events in
  Alcotest.(check (float 1e-9)) "self computed from unsorted input" 0.5
    (row rows "parent").Profile.self_s

(* --- trace export / load ------------------------------------------------ *)

let test_trace_roundtrip () =
  let path = Filename.temp_file "webdep_prof" ".trace.json" in
  let events =
    [
      ev "alpha" 0.0 0.5 0 ~minor:128.0 ~attrs:[ ("cc", "US") ];
      ev "beta" 0.1 0.2 1 ~lane:0;
      ev "gamma" 0.05 0.3 0 ~lane:3;
    ]
  in
  Trace.write path events;
  let loaded = Trace.load path in
  Alcotest.(check int) "all events survive" 3 (List.length loaded);
  let find name = List.find (fun (e : Sink.event) -> e.Sink.name = name) loaded in
  let a = find "alpha" in
  Alcotest.(check (float 1e-9)) "start survives (us precision)" 0.0 a.Sink.start_s;
  Alcotest.(check (float 1e-9)) "duration survives" 0.5 a.Sink.duration_s;
  Alcotest.(check int) "depth survives" 1 (find "beta").Sink.depth;
  Alcotest.(check int) "lane survives" 3 (find "gamma").Sink.lane;
  Alcotest.(check (float 1e-9)) "gc delta survives" 128.0 a.Sink.gc.Sink.minor_words;
  Alcotest.(check bool) "attrs survive" true (List.mem ("cc", "US") a.Sink.attrs);
  Sys.remove path

let test_trace_document_structure () =
  let events = [ ev "alpha" 0.0 0.5 0 ~lane:0; ev "beta" 0.0 0.1 0 ~lane:2 ] in
  let doc = Trace.document events in
  (match Json.member "displayTimeUnit" doc with
  | Some (Json.String "ms") -> ()
  | _ -> Alcotest.fail "displayTimeUnit missing");
  let tev = match Json.member "traceEvents" doc with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "traceEvents missing"
  in
  let phases =
    List.filter_map
      (fun e -> match Json.member "ph" e with Some (Json.String p) -> Some p | _ -> None)
      tev
  in
  Alcotest.(check int) "process_name + 2 thread_name metadata events" 3
    (List.length (List.filter (( = ) "M") phases));
  Alcotest.(check int) "one X event per span" 2
    (List.length (List.filter (( = ) "X") phases));
  (* tid is the lane: the one-track-per-domain contract. *)
  let tids =
    List.filter_map
      (fun e ->
        match (Json.member "ph" e, Json.member "tid" e) with
        | Some (Json.String "X"), Some (Json.Int t) -> Some t
        | _ -> None)
      tev
  in
  Alcotest.(check (list int)) "tids are the lanes" [ 0; 2 ] (List.sort compare tids)

(* The sink form: spans emitted under the installed sink land in the
   file at flush, loadable and aggregatable. *)
let test_trace_sink_flush () =
  let path = Filename.temp_file "webdep_prof" ".trace.json" in
  Sink.with_sink (Trace.sink path) (fun () ->
      Span.with_ ~name:"sinked.outer" (fun () ->
          Span.with_ ~name:"sinked.inner" (fun () -> ())));
  let rows = Profile.aggregate (Trace.load path) in
  Alcotest.(check int) "both spans loadable through the profiler" 2 (List.length rows);
  Sys.remove path

(* --- regression gate ---------------------------------------------------- *)

let phases l = List.map (fun (name, secs, mw) -> { Regress.name; secs; minor_words = mw }) l

let base_phases =
  phases
    [
      ("measure", 2.0, 5e7); ("kernels", 1.0, 2e7); ("store", 0.5, 1e7);
      ("faults", 0.25, 8e6); ("tiny", 0.001, 1e3);
    ]

let test_gate_identical_ok () =
  let r = Regress.compare_runs ~baseline:base_phases ~current:base_phases () in
  Alcotest.(check bool) "identical runs pass" true r.Regress.ok;
  Alcotest.(check (float 1e-9)) "speed factor 1" 1.0 r.Regress.speed_factor

let test_gate_uniform_slowdown_ok () =
  (* A machine uniformly 3x slower moves the median, not the verdict. *)
  let current =
    List.map (fun (p : Regress.phase) -> { p with Regress.secs = p.Regress.secs *. 3.0 }) base_phases
  in
  let r = Regress.compare_runs ~baseline:base_phases ~current () in
  Alcotest.(check bool) "uniform slowdown passes" true r.Regress.ok;
  Alcotest.(check (float 1e-9)) "speed factor is the slowdown" 3.0 r.Regress.speed_factor

let test_gate_single_phase_regression () =
  let current =
    List.map
      (fun (p : Regress.phase) ->
        if p.Regress.name = "kernels" then { p with Regress.secs = 5.0 } else p)
      base_phases
  in
  let r = Regress.compare_runs ~baseline:base_phases ~current () in
  Alcotest.(check bool) "inflated phase fails" false r.Regress.ok;
  let bad = List.filter (fun (v : Regress.verdict) -> not v.Regress.ok) r.Regress.verdicts in
  Alcotest.(check (list string)) "only the inflated phase is flagged" [ "kernels" ]
    (List.map (fun (v : Regress.verdict) -> v.Regress.phase) bad)

let test_gate_tiny_phase_never_alarms () =
  (* A microsecond phase 100x slower is timer noise, not a regression. *)
  let current =
    List.map
      (fun (p : Regress.phase) ->
        if p.Regress.name = "tiny" then { p with Regress.secs = 0.1 } else p)
      base_phases
  in
  let r = Regress.compare_runs ~baseline:base_phases ~current () in
  Alcotest.(check bool) "sub-floor phases never alarm" true r.Regress.ok

let test_gate_alloc_regression () =
  (* Same wall time, doubled allocation in one phase: the machine-speed
     normalization must not excuse it. *)
  let current =
    List.map
      (fun (p : Regress.phase) ->
        if p.Regress.name = "measure" then { p with Regress.minor_words = 1e8 } else p)
      base_phases
  in
  let r = Regress.compare_runs ~baseline:base_phases ~current () in
  Alcotest.(check bool) "alloc regression fails" false r.Regress.ok;
  let bad = List.filter (fun (v : Regress.verdict) -> not v.Regress.ok) r.Regress.verdicts in
  Alcotest.(check bool) "flagged as an alloc check" true
    (List.for_all (fun (v : Regress.verdict) -> v.Regress.check = Regress.Alloc) bad)

let test_gate_missing_phase () =
  let current =
    List.filter (fun (p : Regress.phase) -> p.Regress.name <> "store") base_phases
  in
  let r = Regress.compare_runs ~baseline:base_phases ~current () in
  Alcotest.(check bool) "missing phase fails" false r.Regress.ok;
  Alcotest.(check bool) "flagged as missing" true
    (List.exists
       (fun (v : Regress.verdict) ->
         v.Regress.check = Regress.Missing && v.Regress.phase = "store")
       r.Regress.verdicts)

let test_gate_tolerance_from_noise () =
  Alcotest.(check (float 1e-9)) "floor at 50%" 0.5 (Regress.time_tolerance 0.0);
  Alcotest.(check (float 1e-9)) "6x the measured cv" 1.2 (Regress.time_tolerance 0.2);
  Alcotest.(check (float 1e-9)) "clamped for jittery probes" 2.0
    (Regress.time_tolerance 10.0);
  (* A noisy machine widens the gate: the 2.2x phase that fails at cv 0
     passes at cv 0.25. *)
  let current =
    List.map
      (fun (p : Regress.phase) ->
        if p.Regress.name = "kernels" then { p with Regress.secs = 2.2 } else p)
      base_phases
  in
  let strict = Regress.compare_runs ~noise_cv:0.0 ~baseline:base_phases ~current () in
  let loose = Regress.compare_runs ~noise_cv:0.25 ~baseline:base_phases ~current () in
  Alcotest.(check bool) "fails under a quiet probe" false strict.Regress.ok;
  Alcotest.(check bool) "passes under a noisy probe" true loose.Regress.ok

let test_gate_phases_of_json () =
  let doc =
    Json.Obj
      [
        ("schema", Json.String "webdep-bench/6");
        ( "phases_s",
          Json.Obj [ ("a", Json.Float 1.5); ("b", Json.Float 0.25) ] );
        ("phases_minor_words", Json.Obj [ ("a", Json.Float 1e6) ]);
      ]
  in
  match Regress.phases_of_json doc with
  | [ a; b ] ->
      Alcotest.(check string) "first phase" "a" a.Regress.name;
      Alcotest.(check (float 1e-9)) "seconds" 1.5 a.Regress.secs;
      Alcotest.(check (float 1e-9)) "minor words" 1e6 a.Regress.minor_words;
      Alcotest.(check (float 1e-9)) "missing words default to 0" 0.0 b.Regress.minor_words
  | l -> Alcotest.failf "expected 2 phases, got %d" (List.length l)

let () =
  Alcotest.run "webdep_prof"
    [
      ( "sinks under domains",
        [
          Alcotest.test_case "jsonl 4-domain hammer" `Quick test_jsonl_multi_domain_hammer;
          Alcotest.test_case "exception depth balanced" `Quick
            test_exception_depth_balanced_across_domains;
        ] );
      ( "profile",
        [
          Alcotest.test_case "self vs cumulative" `Quick test_aggregate_self_vs_cumulative;
          Alcotest.test_case "loaded-trace order" `Quick test_aggregate_loaded_trace_order;
        ] );
      ( "trace",
        [
          Alcotest.test_case "round trip" `Quick test_trace_roundtrip;
          Alcotest.test_case "document structure" `Quick test_trace_document_structure;
          Alcotest.test_case "sink flush" `Quick test_trace_sink_flush;
        ] );
      ( "regress",
        [
          Alcotest.test_case "identical ok" `Quick test_gate_identical_ok;
          Alcotest.test_case "uniform slowdown ok" `Quick test_gate_uniform_slowdown_ok;
          Alcotest.test_case "single-phase regression" `Quick
            test_gate_single_phase_regression;
          Alcotest.test_case "tiny phase never alarms" `Quick
            test_gate_tiny_phase_never_alarms;
          Alcotest.test_case "alloc regression" `Quick test_gate_alloc_regression;
          Alcotest.test_case "missing phase" `Quick test_gate_missing_phase;
          Alcotest.test_case "tolerance from noise" `Quick test_gate_tolerance_from_noise;
          Alcotest.test_case "phases of json" `Quick test_gate_phases_of_json;
        ] );
    ]
