(* Tests for webdep_emd: distributions, the transportation solver, the
   centralization score, and the f-divergence ablation claims. *)

open Webdep_emd

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_float ?(eps = 1e-9) msg expected actual =
  if not (feq ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* --- Dist ---------------------------------------------------------------- *)

let test_dist_of_counts () =
  let d = Dist.of_counts [| 3; 1; 0; 2 |] in
  Alcotest.(check int) "zero dropped" 3 (Dist.size d);
  check_float "total" 6.0 (Dist.total d)

let test_dist_invalid () =
  Alcotest.check_raises "negative" (Invalid_argument "Dist: negative mass") (fun () ->
      ignore (Dist.of_counts [| 1; -1 |]));
  Alcotest.check_raises "all zero" (Invalid_argument "Dist: no positive mass") (fun () ->
      ignore (Dist.of_counts [| 0; 0 |]))

let test_dist_sorted () =
  let d = Dist.of_counts [| 1; 5; 3 |] in
  Alcotest.(check (array (float 1e-9))) "sorted desc" [| 5.0; 3.0; 1.0 |] (Dist.sorted_desc d)

let test_dist_shares () =
  let d = Dist.of_counts [| 1; 3 |] in
  let shares = Dist.shares d in
  check_float "share sum" 1.0 (Array.fold_left ( +. ) 0.0 shares)

let test_dist_top_share () =
  let d = Dist.of_counts [| 6; 3; 1 |] in
  check_float "top-1" 0.6 (Dist.top_share d 1);
  check_float "top-2" 0.9 (Dist.top_share d 2);
  check_float "top-5 beyond size" 1.0 (Dist.top_share d 5)

let test_uniform_reference () =
  let r = Dist.uniform_reference 10 in
  Alcotest.(check int) "size" 10 (Dist.size r);
  check_float "total" 10.0 (Dist.total r)

(* --- Transport ------------------------------------------------------------ *)

let test_transport_identity () =
  let supply = [| 2.0; 3.0 |] in
  let cost i j = if i = j then 0.0 else 1.0 in
  let { Transport.work; _ } = Transport.solve ~supply ~demand:supply ~cost in
  check_float "zero work" 0.0 work

let test_transport_simple_move () =
  let supply = [| 5.0; 0.0 |] and demand = [| 0.0; 5.0 |] in
  let cost i j = Float.abs (float_of_int (i - j)) *. 2.0 in
  let { Transport.work; _ } = Transport.solve ~supply ~demand ~cost in
  check_float "work = 5 * 2" 10.0 work

let test_transport_exhausts_cheap_first () =
  let supply = [| 4.0 |] and demand = [| 2.0; 2.0 |] in
  let cost _ j = if j = 0 then 1.0 else 10.0 in
  let { Transport.work; flows } = Transport.solve ~supply ~demand ~cost in
  check_float "work" ((2.0 *. 1.0) +. (2.0 *. 10.0)) work;
  Alcotest.(check int) "two flows" 2 (List.length flows)

let test_transport_1d_matches_cdf_formula () =
  (* For 1-D distributions with |i−j| ground distance, optimal work equals
     the L1 distance between CDFs. *)
  let supply = [| 3.0; 1.0; 2.0 |] and demand = [| 1.0; 2.0; 3.0 |] in
  let cost i j = Float.abs (float_of_int (i - j)) in
  let { Transport.work; _ } = Transport.solve ~supply ~demand ~cost in
  check_float "cdf identity" 3.0 work

let test_transport_unbalanced_raises () =
  Alcotest.check_raises "unbalanced"
    (Invalid_argument "Transport.solve: unbalanced supply and demand") (fun () ->
      ignore (Transport.solve ~supply:[| 1.0 |] ~demand:[| 2.0 |] ~cost:(fun _ _ -> 1.0)))

let test_transport_negative_raises () =
  Alcotest.check_raises "negative supply"
    (Invalid_argument "Transport.solve: negative supply") (fun () ->
      ignore (Transport.solve ~supply:[| -1.0; 2.0 |] ~demand:[| 1.0 |] ~cost:(fun _ _ -> 1.0)))

let test_transport_flow_conservation () =
  let supply = [| 3.0; 2.0; 5.0 |] and demand = [| 4.0; 6.0 |] in
  let cost i j = float_of_int (((i * 3) + j) mod 5) in
  let { Transport.flows; _ } = Transport.solve ~supply ~demand ~cost in
  let out = Array.make 3 0.0 and into = Array.make 2 0.0 in
  List.iter
    (fun (i, j, f) ->
      out.(i) <- out.(i) +. f;
      into.(j) <- into.(j) +. f)
    flows;
  Array.iteri (fun i s -> check_float ~eps:1e-6 (Printf.sprintf "out %d" i) supply.(i) s) out;
  Array.iteri (fun j d -> check_float ~eps:1e-6 (Printf.sprintf "in %d" j) demand.(j) d) into

let test_solver_matches_reference_shapes () =
  (* Degenerate shapes the general property may not hit: single supplier,
     single demand bucket, and the 1x1 trivial instance. *)
  let cost i j = float_of_int (((i * 7) + (j * 13)) mod 8) /. 8.0 in
  List.iter
    (fun (supply, demand) ->
      let a = Transport.solve ~supply ~demand ~cost in
      let b = Transport.solve_reference ~supply ~demand ~cost in
      check_float ~eps:1e-9 "work matches reference" b.Transport.work a.Transport.work)
    [
      ([| 12.0 |], [| 3.0; 4.0; 5.0 |]);
      ([| 3.0; 4.0; 5.0 |], [| 12.0 |]);
      ([| 2.0; 2.0; 2.0; 2.0 |], [| 8.0 |]);
      ([| 10.0 |], [| 10.0 |]);
    ]

let prop_solver_matches_reference =
  (* Differential test of the Dijkstra-with-potentials solver against the
     Bellman–Ford oracle: integer masses and dyadic-eighth costs (some
     negative, to exercise the potential seeding) keep the arithmetic
     exact, so the optima must agree to well under 1e-9. *)
  QCheck.Test.make ~name:"Dijkstra+potentials = Bellman-Ford reference" ~count:120
    QCheck.(
      triple
        (list_of_size (Gen.int_range 1 7) (int_range 1 9))
        (int_range 1 7) (int_range 0 1000))
    (fun (supply_counts, m, salt) ->
      let supply = Array.of_list (List.map float_of_int supply_counts) in
      let total = List.fold_left ( + ) 0 supply_counts in
      let q = total / m and r = total mod m in
      let demand = Array.init m (fun j -> float_of_int (q + if j < r then 1 else 0)) in
      let cost i j = float_of_int ((((i * 31) + (j * 17) + salt) mod 16) - 2) /. 8.0 in
      let a = Transport.solve ~supply ~demand ~cost in
      let b = Transport.solve_reference ~supply ~demand ~cost in
      (* The fast solver's flows must also be a feasible transport plan. *)
      let out = Array.make (Array.length supply) 0.0 in
      let into = Array.make m 0.0 in
      List.iter
        (fun (i, j, f) ->
          out.(i) <- out.(i) +. f;
          into.(j) <- into.(j) +. f)
        a.Transport.flows;
      Array.for_all2 (fun s o -> Float.abs (s -. o) < 1e-6) supply out
      && Array.for_all2 (fun d i -> Float.abs (d -. i) < 1e-6) demand into
      && Float.abs (a.Transport.work -. b.Transport.work) < 1e-9)

let prop_transport_matches_cdf_1d =
  QCheck.Test.make ~name:"1-D transport equals CDF distance" ~count:60
    QCheck.(
      pair
        (list_of_size (Gen.int_range 2 6) (int_range 0 9))
        (list_of_size (Gen.int_range 2 6) (int_range 0 9)))
    (fun (a, b) ->
      let a = Array.of_list (List.map float_of_int a) in
      let b = Array.of_list (List.map float_of_int b) in
      let sa = Array.fold_left ( +. ) 0.0 a and sb = Array.fold_left ( +. ) 0.0 b in
      QCheck.assume (sa > 0.0 && sb > 0.0);
      let b = Array.map (fun x -> x *. sa /. sb) b in
      let n = max (Array.length a) (Array.length b) in
      let pad v = Array.init n (fun i -> if i < Array.length v then v.(i) else 0.0) in
      let a = pad a and b = pad b in
      let cost i j = Float.abs (float_of_int (i - j)) in
      let { Transport.work; _ } = Transport.solve ~supply:a ~demand:b ~cost in
      let cdf = ref 0.0 and expected = ref 0.0 in
      for i = 0 to n - 2 do
        cdf := !cdf +. a.(i) -. b.(i);
        expected := !expected +. Float.abs !cdf
      done;
      Float.abs (work -. !expected) < 1e-6)

(* --- Centralization -------------------------------------------------------- *)

let test_score_single_provider () =
  let c = 100 in
  let s = Centralization.score (Dist.of_counts [| c |]) in
  check_float "upper bound" (Centralization.upper_bound ~c) s

let test_score_fully_decentralized () =
  let s = Centralization.score (Dist.uniform_reference 50) in
  check_float ~eps:1e-12 "zero" 0.0 s

let test_score_formula () =
  (* Hand-computed: counts (3,1), C=4: HHI = 9/16 + 1/16 = 0.625. *)
  check_float "hand computed" 0.375 (Centralization.score_of_counts [| 3; 1 |])

let test_score_shares () =
  let s = Centralization.score_of_shares_c ~c:10_000 [| 0.5; 0.5 |] in
  check_float "two equal" (0.5 -. 0.0001) s

let test_score_shares_invalid () =
  Alcotest.check_raises "bad shares"
    (Invalid_argument "Centralization.score_of_shares: shares must sum to 1") (fun () ->
      ignore (Centralization.score_of_shares [| 0.5; 0.2 |]))

let test_hhi_relationship () =
  let d = Dist.of_counts [| 5; 3; 2 |] in
  check_float "hhi = s + 1/c" (Centralization.score d +. 0.1) (Centralization.hhi d)

let test_doj_bands () =
  Alcotest.(check string) "competitive" "competitive"
    (Centralization.doj_band_to_string (Centralization.doj_band 0.05));
  Alcotest.(check string) "moderate" "moderately concentrated"
    (Centralization.doj_band_to_string (Centralization.doj_band 0.15));
  Alcotest.(check string) "high" "highly concentrated"
    (Centralization.doj_band_to_string (Centralization.doj_band 0.3))

let test_closed_form_equals_transport_small () =
  (* Appendix A: the closed form is the transportation optimum — checked
     through both the default fast path and the general solver. *)
  List.iter
    (fun counts ->
      let d = Dist.of_counts counts in
      let closed = Centralization.score d in
      let name =
        Printf.sprintf "closed form for %s"
          (String.concat "," (List.map string_of_int (Array.to_list counts)))
      in
      check_float ~eps:1e-6 name closed (Centralization.via_transport d);
      check_float ~eps:1e-6 (name ^ " (solver)") closed
        (Centralization.via_transport ~fast:false d))
    [ [| 5; 3; 2 |]; [| 10 |]; [| 1; 1; 1; 1 |]; [| 7; 2; 1 |]; [| 4; 4; 4 |] ]

let prop_closed_form_equals_transport =
  QCheck.Test.make ~name:"S closed form = transportation optimum" ~count:30
    QCheck.(list_of_size (Gen.int_range 1 6) (int_range 1 8))
    (fun counts ->
      let counts = Array.of_list counts in
      let d = Dist.of_counts counts in
      Float.abs (Centralization.score d -. Centralization.via_transport d) < 1e-6)

let prop_score_bounds =
  QCheck.Test.make ~name:"0 <= S <= 1 - 1/C" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (int_range 1 100))
    (fun counts ->
      let counts = Array.of_list counts in
      let d = Dist.of_counts counts in
      let c = int_of_float (Dist.total d) in
      let s = Centralization.score d in
      s >= -1e-12 && s <= Centralization.upper_bound ~c +. 1e-12)

let prop_merging_increases_score =
  QCheck.Test.make ~name:"merging providers increases S" ~count:100
    QCheck.(list_of_size (Gen.int_range 3 20) (int_range 1 50))
    (fun counts ->
      let a = Array.of_list counts in
      let merged =
        Array.append [| a.(0) + a.(1) |] (Array.sub a 2 (Array.length a - 2))
      in
      Centralization.score_of_counts merged > Centralization.score_of_counts a -. 1e-12)

let prop_score_scale_invariant =
  QCheck.Test.make ~name:"S is share-determined up to 1/C" ~count:100
    QCheck.(pair (int_range 2 5) (list_of_size (Gen.int_range 2 10) (int_range 1 20)))
    (fun (k, counts) ->
      let a = Array.of_list counts in
      let c = Array.fold_left ( + ) 0 a in
      let scaled = Array.map (fun x -> x * k) a in
      let s1 = Centralization.score_of_counts a in
      let s2 = Centralization.score_of_counts scaled in
      let expected_shift = (1.0 /. float_of_int c) -. (1.0 /. float_of_int (c * k)) in
      Float.abs (s2 -. (s1 +. expected_shift)) < 1e-9)

let test_figure2_example () =
  (* Figure 2's worked example: two 10-site countries with scores 0.28
     and 0.32.  (5,3,2) gives HHI 0.38 → S 0.28; (6,2,1,1) gives
     HHI 0.42 → S 0.32. *)
  check_float ~eps:1e-9 "country A" 0.28 (Centralization.score_of_counts [| 5; 3; 2 |]);
  check_float ~eps:1e-9 "country B" 0.32 (Centralization.score_of_counts [| 6; 2; 1; 1 |]);
  Alcotest.(check bool) "B more centralized" true
    (Centralization.score_of_counts [| 6; 2; 1; 1 |]
    > Centralization.score_of_counts [| 5; 3; 2 |])

let test_figure1_topn_blindspot () =
  (* §3.1: Azerbaijan and Hong Kong share a 59% top-5 share yet differ in
     S because the shares within the top five differ. *)
  let az = [| 42; 5; 4; 4; 4 |] (* 59 of 100 *) and hk = [| 33; 12; 5; 5; 4 |] in
  let pad counts = Array.append counts (Array.make 41 1) in
  let az = Dist.of_counts (pad az) and hk = Dist.of_counts (pad hk) in
  check_float ~eps:1e-9 "same top-5" (Dist.top_share az 5) (Dist.top_share hk 5);
  Alcotest.(check bool) "AZ more centralized" true
    (Centralization.score az > Centralization.score hk)

(* --- Divergence -------------------------------------------------------------- *)

let test_kl_identical () = check_float "zero" 0.0 (Divergence.kl [| 0.5; 0.5 |] [| 0.5; 0.5 |])

let test_kl_known () =
  check_float ~eps:1e-12 "ln 2" (log 2.0) (Divergence.kl [| 1.0; 0.0 |] [| 0.5; 0.5 |])

let test_kl_infinite_on_missing_support () =
  Alcotest.(check bool) "infinite" true (Divergence.kl [| 0.5; 0.5 |] [| 1.0; 0.0 |] = infinity)

let test_js_bounded () =
  let js = Divergence.jensen_shannon [| 1.0; 0.0 |] [| 0.0; 1.0 |] in
  check_float ~eps:1e-12 "max is ln 2" (log 2.0) js

let test_hellinger_disjoint () =
  check_float ~eps:1e-12 "disjoint = 1" 1.0 (Divergence.hellinger [| 1.0; 0.0 |] [| 0.0; 1.0 |])

let test_tv_half () =
  check_float "tv" 0.5 (Divergence.total_variation [| 1.0; 0.0 |] [| 0.5; 0.5 |])

let test_divergence_invalid () =
  Alcotest.check_raises "length" (Invalid_argument "Divergence: length mismatch") (fun () ->
      ignore (Divergence.kl [| 1.0 |] [| 0.5; 0.5 |]));
  Alcotest.check_raises "sum" (Invalid_argument "Divergence: probabilities must sum to 1")
    (fun () -> ignore (Divergence.kl [| 0.7; 0.7 |] [| 0.5; 0.5 |]))

let test_align () =
  let p, q = Divergence.align [| 1.0 |] [| 0.5; 0.5 |] in
  Alcotest.(check int) "p padded" 2 (Array.length p);
  check_float "pad value" 0.0 p.(1);
  Alcotest.(check int) "q kept" 2 (Array.length q)

(* The §3.1 design claim: f-divergences saturate on (nearly) disjoint
   distributions and thus cannot rank them, while S (EMD) can. *)
let test_fdivergence_saturation () =
  let obs1 = [| 0.9; 0.1 |] and obs2 = [| 0.6; 0.4 |] in
  let reference = [| 0.0; 0.0; 0.25; 0.25; 0.25; 0.25 |] in
  let pad v = fst (Divergence.align v reference) in
  check_float ~eps:1e-9 "hellinger saturates (1)" 1.0 (Divergence.hellinger (pad obs1) reference);
  check_float ~eps:1e-9 "hellinger saturates (2)" 1.0 (Divergence.hellinger (pad obs2) reference);
  check_float ~eps:1e-9 "tv saturates (1)" 1.0 (Divergence.total_variation (pad obs1) reference);
  check_float ~eps:1e-9 "tv saturates (2)" 1.0 (Divergence.total_variation (pad obs2) reference);
  let s1 = Centralization.score_of_counts [| 9; 1 |] in
  let s2 = Centralization.score_of_counts [| 6; 4 |] in
  Alcotest.(check bool) "S ranks them" true (s1 > s2)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "webdep_emd"
    [
      ( "dist",
        [
          Alcotest.test_case "of_counts" `Quick test_dist_of_counts;
          Alcotest.test_case "invalid" `Quick test_dist_invalid;
          Alcotest.test_case "sorted" `Quick test_dist_sorted;
          Alcotest.test_case "shares" `Quick test_dist_shares;
          Alcotest.test_case "top share" `Quick test_dist_top_share;
          Alcotest.test_case "uniform reference" `Quick test_uniform_reference;
        ] );
      ( "transport",
        [
          Alcotest.test_case "identity" `Quick test_transport_identity;
          Alcotest.test_case "simple move" `Quick test_transport_simple_move;
          Alcotest.test_case "exhausts cheap first" `Quick test_transport_exhausts_cheap_first;
          Alcotest.test_case "1d cdf identity" `Quick test_transport_1d_matches_cdf_formula;
          Alcotest.test_case "unbalanced raises" `Quick test_transport_unbalanced_raises;
          Alcotest.test_case "negative raises" `Quick test_transport_negative_raises;
          Alcotest.test_case "flow conservation" `Quick test_transport_flow_conservation;
          Alcotest.test_case "solver = reference (1xm, nx1)" `Quick
            test_solver_matches_reference_shapes;
          qtest prop_solver_matches_reference;
          qtest prop_transport_matches_cdf_1d;
        ] );
      ( "centralization",
        [
          Alcotest.test_case "single provider" `Quick test_score_single_provider;
          Alcotest.test_case "fully decentralized" `Quick test_score_fully_decentralized;
          Alcotest.test_case "formula" `Quick test_score_formula;
          Alcotest.test_case "shares" `Quick test_score_shares;
          Alcotest.test_case "shares invalid" `Quick test_score_shares_invalid;
          Alcotest.test_case "hhi relationship" `Quick test_hhi_relationship;
          Alcotest.test_case "doj bands" `Quick test_doj_bands;
          Alcotest.test_case "closed form = transport" `Quick test_closed_form_equals_transport_small;
          Alcotest.test_case "figure 2 example" `Quick test_figure2_example;
          Alcotest.test_case "figure 1 top-N blindspot" `Quick test_figure1_topn_blindspot;
          qtest prop_closed_form_equals_transport;
          qtest prop_score_bounds;
          qtest prop_merging_increases_score;
          qtest prop_score_scale_invariant;
        ] );
      ( "divergence",
        [
          Alcotest.test_case "kl identical" `Quick test_kl_identical;
          Alcotest.test_case "kl known" `Quick test_kl_known;
          Alcotest.test_case "kl infinite" `Quick test_kl_infinite_on_missing_support;
          Alcotest.test_case "js bounded" `Quick test_js_bounded;
          Alcotest.test_case "hellinger disjoint" `Quick test_hellinger_disjoint;
          Alcotest.test_case "tv half" `Quick test_tv_half;
          Alcotest.test_case "invalid" `Quick test_divergence_invalid;
          Alcotest.test_case "align" `Quick test_align;
          Alcotest.test_case "f-divergence saturation (3.1)" `Quick test_fdivergence_saturation;
        ] );
    ]
