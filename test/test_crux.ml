(* Tests for webdep_crux: toplists, rank buckets, churn. *)

open Webdep_crux
module Rng = Webdep_stats.Rng

let mk n = Toplist.create ~country:"US" (Array.init n (fun i -> Printf.sprintf "s%04d.example" i))

let test_create_rejects_duplicates () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Toplist.create: duplicate domain a.example") (fun () ->
      ignore (Toplist.create ~country:"US" [| "a.example"; "a.example" |]))

let test_rank_buckets () =
  let check rank bucket = Alcotest.(check int) (string_of_int rank) bucket (Toplist.rank_bucket rank) in
  check 1 1_000;
  check 1_000 1_000;
  check 1_001 5_000;
  check 5_000 5_000;
  check 9_999 10_000;
  check 10_001 50_000;
  check 2_000_000 1_000_000;
  Alcotest.check_raises "rank 0" (Invalid_argument "Toplist.rank_bucket: rank must be >= 1")
    (fun () -> ignore (Toplist.rank_bucket 0))

let test_bucket_of () =
  let t = mk 1500 in
  Alcotest.(check (option int)) "rank 1" (Some 1000) (Toplist.bucket_of t "s0000.example");
  Alcotest.(check (option int)) "rank 1200" (Some 5000) (Toplist.bucket_of t "s1199.example");
  Alcotest.(check (option int)) "missing" None (Toplist.bucket_of t "nope.example")

let test_top_and_take () =
  let t = mk 100 in
  Alcotest.(check int) "top 10" 10 (List.length (Toplist.top t 10));
  Alcotest.(check int) "take" 25 (Toplist.length (Toplist.take t 25));
  Alcotest.(check int) "top beyond" 100 (List.length (Toplist.top t 500));
  Alcotest.(check string) "order preserved" "s0000.example" (List.hd (Toplist.top t 3))

let test_mem () =
  let t = mk 10 in
  Alcotest.(check bool) "mem" true (Toplist.mem t "s0005.example");
  Alcotest.(check bool) "not mem" false (Toplist.mem t "zzz.example")

let test_retention_formula () =
  (* J = k/(2−k) inverted: k = 2J/(1+J). *)
  Alcotest.(check (float 1e-9)) "J=1" 1.0 (Churn.retention_for_jaccard 1.0);
  Alcotest.(check (float 1e-9)) "J=0" 0.0 (Churn.retention_for_jaccard 0.0);
  Alcotest.(check (float 1e-9)) "J=1/3" 0.5 (Churn.retention_for_jaccard (1.0 /. 3.0));
  Alcotest.check_raises "invalid" (Invalid_argument "Churn.retention_for_jaccard: j outside [0,1]")
    (fun () -> ignore (Churn.retention_for_jaccard 1.5))

let test_evolve_hits_target_jaccard () =
  let t = mk 2000 in
  let rng = Rng.create 17 in
  let fresh i = Printf.sprintf "new%05d.example" i in
  List.iter
    (fun target ->
      let t' = Churn.evolve rng ~target_jaccard:target ~fresh t in
      Alcotest.(check int) "same length" (Toplist.length t) (Toplist.length t');
      let j =
        Webdep_stats.Similarity.jaccard_strings (Toplist.domains t) (Toplist.domains t')
      in
      if Float.abs (j -. target) > 0.02 then
        Alcotest.failf "target %.2f, achieved %.3f" target j)
    [ 0.37; 0.5; 0.8 ]

let test_evolve_no_duplicates () =
  let t = mk 500 in
  let rng = Rng.create 18 in
  let fresh i = Printf.sprintf "n%05d.example" i in
  let t' = Churn.evolve rng ~target_jaccard:0.4 ~fresh t in
  let ds = Toplist.domains t' in
  Alcotest.(check int) "unique" (List.length ds) (List.length (List.sort_uniq compare ds))

let test_evolve_rejects_stale_fresh () =
  let t = mk 50 in
  let rng = Rng.create 19 in
  (* fresh always returns a domain already present. *)
  let fresh _ = "s0000.example" in
  Alcotest.check_raises "stale fresh"
    (Invalid_argument "Churn.evolve: fresh produced existing domains") (fun () ->
      ignore (Churn.evolve rng ~target_jaccard:0.1 ~fresh t))

let test_coverage_matches_paper_fraction () =
  (* The paper keeps 150 of 237 countries (63.3%); the calibrated
     defaults should land nearby. *)
  let rng = Rng.create 77 in
  let es = Coverage.simulate rng () in
  Alcotest.(check int) "237 countries" 237 (List.length es);
  let frac = Coverage.eligible_fraction es in
  if Float.abs (frac -. 0.633) > 0.10 then Alcotest.failf "eligible fraction %.3f" frac

let test_coverage_threshold () =
  let rng = Rng.create 78 in
  let es = Coverage.simulate rng () in
  List.iter
    (fun e ->
      Alcotest.(check bool) e.Coverage.country (e.Coverage.list_length >= Coverage.threshold)
        e.Coverage.eligible)
    es

let test_coverage_deterministic () =
  let run () = Coverage.simulate (Rng.create 79) () in
  Alcotest.(check int) "same eligible count" (Coverage.eligible_count (run ()))
    (Coverage.eligible_count (run ()))

let prop_evolve_length_and_uniqueness =
  QCheck.Test.make ~name:"evolve preserves length and uniqueness" ~count:30
    QCheck.(pair (int_range 10 300) (float_range 0.05 0.95))
    (fun (n, j) ->
      let t = mk n in
      let rng = Rng.create (n + int_of_float (j *. 100.0)) in
      let fresh i = Printf.sprintf "q%06d.example" i in
      let t' = Churn.evolve rng ~target_jaccard:j ~fresh t in
      Toplist.length t' = n
      && List.length (List.sort_uniq compare (Toplist.domains t')) = n)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "webdep_crux"
    [
      ( "toplist",
        [
          Alcotest.test_case "rejects duplicates" `Quick test_create_rejects_duplicates;
          Alcotest.test_case "rank buckets" `Quick test_rank_buckets;
          Alcotest.test_case "bucket_of" `Quick test_bucket_of;
          Alcotest.test_case "top and take" `Quick test_top_and_take;
          Alcotest.test_case "mem" `Quick test_mem;
        ] );
      ( "churn",
        [
          Alcotest.test_case "retention formula" `Quick test_retention_formula;
          Alcotest.test_case "hits target jaccard" `Quick test_evolve_hits_target_jaccard;
          Alcotest.test_case "no duplicates" `Quick test_evolve_no_duplicates;
          Alcotest.test_case "rejects stale fresh" `Quick test_evolve_rejects_stale_fresh;
          qtest prop_evolve_length_and_uniqueness;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "paper fraction" `Quick test_coverage_matches_paper_fraction;
          Alcotest.test_case "threshold" `Quick test_coverage_threshold;
          Alcotest.test_case "deterministic" `Quick test_coverage_deterministic;
        ] );
    ]
