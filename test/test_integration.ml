(* End-to-end integration tests: generate the calibrated world, run the
   full measurement pipeline, and assert the paper's shape claims.  A
   reduced toplist size (c = 1500) and a 20-country panel keep the suite
   fast; the bench harness runs the full 150 x 10k configuration. *)

module World = Webdep_worldgen.World
module Measure = Webdep_pipeline.Measure
module D = Webdep.Dataset
module Scores = Webdep_reference.Paper_scores

let panel =
  [ "TH"; "ID"; "IR"; "US"; "TM"; "CZ"; "RU"; "SK"; "JP"; "DE"; "FR"; "PL"; "KG"; "BG";
    "LT"; "TW"; "BR"; "GB"; "NG"; "AF" ]

(* Build once, share across tests. *)
let world = World.create ~c:1500 ~seed:2024 ()
let dataset = lazy (Measure.measure_all ~countries:panel world)

let score layer cc = Webdep.Metrics.centralization (Lazy.force dataset) layer cc

let test_scores_track_paper () =
  (* Measured scores correlate near-perfectly with Appendix F on the
     panel, for every layer. *)
  List.iter
    (fun layer ->
      let ds = Lazy.force dataset in
      let measured =
        Array.of_list (List.map (fun cc -> Webdep.Metrics.centralization ds layer cc) panel)
      in
      let paper = Scores.scores_in_country_order layer panel in
      let rho = (Webdep_stats.Correlation.pearson measured paper).Webdep_stats.Correlation.rho in
      if rho < 0.98 then
        Alcotest.failf "%s: paper-vs-measured rho %.4f" (Scores.layer_name layer) rho)
    Scores.all_layers

let test_headline_orderings () =
  (* TH most centralized hosting in the panel; IR least. *)
  let hosting = List.map (fun cc -> (cc, score Hosting cc)) panel in
  let max_cc = fst (List.fold_left (fun (bc, bs) (cc, s) -> if s > bs then (cc, s) else (bc, bs)) ("", -1.0) hosting) in
  let min_cc = fst (List.fold_left (fun (bc, bs) (cc, s) -> if s < bs then (cc, s) else (bc, bs)) ("", 2.0) hosting) in
  Alcotest.(check string) "TH most centralized" "TH" max_cc;
  Alcotest.(check string) "IR least centralized" "IR" min_cc

let test_ca_more_centralized_than_hosting () =
  (* §7: CA centralization exceeds hosting nearly everywhere. *)
  let ds = Lazy.force dataset in
  let higher =
    List.length
      (List.filter
         (fun cc ->
           Webdep.Metrics.centralization ds Ca cc > Webdep.Metrics.centralization ds Hosting cc)
         panel)
  in
  Alcotest.(check bool) "CA higher for most countries" true (higher >= 15)

let test_cloudflare_top_everywhere_except_japan () =
  let ds = Lazy.force dataset in
  List.iter
    (fun cc ->
      match D.counts_by_entity ds Hosting cc with
      | (top, _) :: _ ->
          let expected = if cc = "JP" then "Amazon" else "Cloudflare" in
          Alcotest.(check string) (cc ^ " top provider") expected top.D.name
      | [] -> Alcotest.fail "no providers")
    panel

let test_insularity_shape () =
  let ds = Lazy.force dataset in
  let ins cc = Webdep.Regionalization.insularity ds Hosting cc in
  (* US most insular; IR/CZ/RU next tier; TM tiny (§5.3.1). *)
  Alcotest.(check bool) "US > 0.85" true (ins "US" > 0.85);
  Alcotest.(check bool) "IR around 0.648" true (Float.abs (ins "IR" -. 0.648) < 0.05);
  Alcotest.(check bool) "TM < 0.08" true (ins "TM" < 0.08);
  Alcotest.(check bool) "US most insular in panel" true
    (List.for_all (fun cc -> cc = "US" || ins cc <= ins "US") panel)

let test_cross_border_dependencies () =
  let ds = Lazy.force dataset in
  let dep cc home =
    match List.assoc_opt home (Webdep.Regionalization.foreign_dependence ds Hosting cc) with
    | Some s -> s
    | None -> 0.0
  in
  Alcotest.(check bool) "TM on RU ~0.33" true (Float.abs (dep "TM" "RU" -. 0.33) < 0.04);
  Alcotest.(check bool) "SK on CZ ~0.257" true (Float.abs (dep "SK" "CZ" -. 0.257) < 0.04);
  Alcotest.(check bool) "AF on IR ~0.20" true (Float.abs (dep "AF" "IR" -. 0.20) < 0.04);
  Alcotest.(check bool) "UA-low pattern holds: LT on RU small" true (dep "LT" "RU" < 0.08)

let test_tld_layer_shape () =
  let ds = Lazy.force dataset in
  (* US dominated by .com; KG split across .com/.ru/.kg (Appendix B). *)
  Alcotest.(check bool) ".com dominates US" true
    (D.entity_share ds Tld "US" ~name:".com" > 0.7);
  let kg_ru = D.entity_share ds Tld "KG" ~name:".ru" in
  Alcotest.(check bool) "KG on .ru ~0.22" true (Float.abs (kg_ru -. 0.22) < 0.05);
  (* TLD is the most insular layer for ccTLD-primary countries like CZ. *)
  Alcotest.(check bool) "CZ TLD insular" true
    (Webdep.Regionalization.insularity ds Tld "CZ"
    > Webdep.Regionalization.insularity ds Hosting "CZ")

let test_ca_layer_shape () =
  let ds = Lazy.force dataset in
  (* Seven global CAs own ~98% in a typical country (§7.1). *)
  let global7 =
    [ "Let's Encrypt"; "DigiCert"; "Sectigo"; "Google Trust Services";
      "Amazon Trust Services"; "GlobalSign"; "GoDaddy" ]
  in
  let top7_share cc =
    List.fold_left (fun acc name -> acc +. D.entity_share ds Ca cc ~name) 0.0 global7
  in
  Alcotest.(check bool) "DE top7 > 0.9" true (top7_share "DE" > 0.9);
  Alcotest.(check bool) "IR top7 ~0.8" true (top7_share "IR" < 0.9);
  (* Asseco is used in PL and IR (§7.2). *)
  Alcotest.(check bool) "Asseco in PL" true
    (D.entity_share ds Ca "PL" ~name:"Asseco (Certum)" > 0.1);
  Alcotest.(check bool) "Asseco in IR" true
    (D.entity_share ds Ca "IR" ~name:"Asseco (Certum)" > 0.1)

let test_regional_providers_reduce_centralization () =
  (* §5.2: regional-provider share anti-correlates with S. *)
  let ds = Lazy.force dataset in
  let regional_share cc =
    List.fold_left
      (fun acc ((e : D.entity), k) ->
        ignore e;
        acc + k)
      0
      (List.filter
         (fun ((e : D.entity), _) -> e.D.country = cc)
         (D.counts_by_entity ds Hosting cc))
    |> float_of_int
  in
  let shares = Array.of_list (List.map regional_share panel) in
  let scores = Array.of_list (List.map (score Hosting) panel) in
  let rho = (Webdep_stats.Correlation.pearson shares scores).Webdep_stats.Correlation.rho in
  Alcotest.(check bool) "negative correlation" true (rho < -0.2)

let test_usage_endemicity_separation () =
  let ds = Lazy.force dataset in
  let cf = Webdep.Regionalization.usage_curve ds Hosting ~name:"Cloudflare" in
  let beget = Webdep.Regionalization.usage_curve ds Hosting ~name:"Beget LLC" in
  Alcotest.(check bool) "Cloudflare larger" true
    (cf.Webdep.Regionalization.usage > beget.Webdep.Regionalization.usage);
  Alcotest.(check bool) "Beget more endemic" true
    (beget.Webdep.Regionalization.endemicity_ratio
    > cf.Webdep.Regionalization.endemicity_ratio)

let test_anycast_flags () =
  (* Cloudflare-hosted sites resolve into anycast space; regional-hosted
     ones do not. *)
  let ds = Lazy.force dataset in
  let cd = D.country_exn ds "TH" in
  let cloudflare_sites =
    List.filter
      (fun s ->
        match s.D.hosting with Some e -> e.D.name = "Cloudflare" | None -> false)
      cd.D.sites
  in
  Alcotest.(check bool) "some cloudflare sites" true (List.length cloudflare_sites > 0);
  Alcotest.(check bool) "anycast flagged" true
    (List.for_all (fun s -> s.D.hosting_anycast) cloudflare_sites)

let test_geolocation_enrichment () =
  let ds = Lazy.force dataset in
  let cd = D.country_exn ds "DE" in
  let geolocated = List.filter (fun s -> s.D.hosting_geo <> None) cd.D.sites in
  Alcotest.(check bool) "all sites geolocated" true
    (List.length geolocated = List.length cd.D.sites)

let test_pipeline_recovers_ground_truth () =
  (* The measured hosting org must equal the generator's assignment for
     almost every site; the only permitted deviations are the multi-CDN
     sites that answer with their secondary provider from a non-home
     vantage (the pipeline measures France from the US here). *)
  let snap = World.snapshot world "FR" in
  let measured = Measure.measure_snapshot world snap in
  let mismatches =
    List.fold_left
      (fun acc s ->
        match (s.D.hosting, Hashtbl.find_opt snap.World.assigned s.D.domain) with
        | Some got, Some (expected, _, _) ->
            if String.equal got.D.name expected.Webdep_worldgen.Provider.name then acc
            else acc + 1
        | _ -> acc + 1)
      0 measured.D.sites
  in
  let budget =
    int_of_float (float_of_int (List.length measured.D.sites) *. World.multi_cdn_fraction)
  in
  if mismatches > budget then
    Alcotest.failf "%d mismatches exceed the multi-CDN budget %d" mismatches budget;
  (* Measured from the home vantage there is no deviation at all. *)
  let home_measured = Measure.measure_snapshot ~vantage:"FR" world snap in
  let home_mismatches =
    List.fold_left
      (fun acc s ->
        match (s.D.hosting, Hashtbl.find_opt snap.World.assigned s.D.domain) with
        | Some got, Some (expected, _, _) ->
            if String.equal got.D.name expected.Webdep_worldgen.Provider.name then acc
            else acc + 1
        | _ -> acc + 1)
      0 home_measured.D.sites
  in
  Alcotest.(check int) "home vantage exact" 0 home_mismatches

let test_vantage_validation () =
  let ds = Lazy.force dataset in
  let home = List.map (fun cc -> (cc, Webdep.Metrics.centralization ds Hosting cc)) panel in
  let probes = Measure.measure_with_probes ~per_country_probes:3 ~seed:99 world panel in
  let v = Webdep.Validate.correlate ~home ~probes in
  Alcotest.(check bool) "rho above 0.9" true (v.Webdep.Validate.rho.Webdep_stats.Correlation.rho > 0.9)

let test_longitudinal_experiment () =
  let ds23 = Lazy.force dataset in
  let ds25 = Measure.measure_all ~epoch:World.May_2025 ~countries:panel world in
  let cmp = Webdep.Longitudinal.compare ~focus:"Cloudflare" ~old_ds:ds23 ~new_ds:ds25 Hosting in
  Alcotest.(check bool) "rho high" true (cmp.Webdep.Longitudinal.rho.Webdep_stats.Correlation.rho > 0.9);
  Alcotest.(check bool) "jaccard ~0.37" true
    (Float.abs (cmp.Webdep.Longitudinal.mean_jaccard -. 0.37) < 0.05);
  (* Brazil's S rises sharply (0.1446 → 0.2354). *)
  let br = List.find (fun d -> d.Webdep.Longitudinal.country = "BR") cmp.Webdep.Longitudinal.deltas in
  Alcotest.(check bool) "BR increases" true (br.Webdep.Longitudinal.delta > 0.05);
  (* Russia decreases. *)
  let ru = List.find (fun d -> d.Webdep.Longitudinal.country = "RU") cmp.Webdep.Longitudinal.deltas in
  Alcotest.(check bool) "RU decreases" true (ru.Webdep.Longitudinal.delta < 0.0);
  (* Cloudflare usage grows on average. *)
  match cmp.Webdep.Longitudinal.focus_mean_delta with
  | Some d -> Alcotest.(check bool) "Cloudflare grows" true (d > 0.01)
  | None -> Alcotest.fail "focus delta missing"

let test_iterative_pipeline_mode_identical () =
  (* Measuring a country with ZDNS-mode iterative resolution must yield
     the same dataset as flat resolution. *)
  let flat = Measure.measure_country world "GR" in
  let iter = Measure.measure_country ~resolution:Measure.Iterative world "GR" in
  List.iter2
    (fun (a : D.site) (b : D.site) ->
      if a.D.hosting <> b.D.hosting then Alcotest.failf "hosting differs on %s" a.D.domain;
      if a.D.ca <> b.D.ca then Alcotest.failf "ca differs on %s" a.D.domain)
    flat.D.sites iter.D.sites

let test_iterative_resolution_agrees () =
  (* ZDNS-style iterative walks over the delegation hierarchy must land
     on the same answers as the flat resolver, in ~3 queries each. *)
  let stats = Measure.iterative_resolution_stats world "FR" in
  Alcotest.(check int) "all domains" 1500 stats.Measure.domains;
  Alcotest.(check bool) "full agreement" true (stats.Measure.agreement >= 0.999);
  Alcotest.(check int) "no failures" 0 stats.Measure.failures;
  (* Direct sites take 3 queries (root, TLD, auth); CDN-fronted sites
     restart at the root for the CNAME target, so the mean sits between
     3 and 6 depending on the country's CDN share. *)
  Alcotest.(check bool) "3..6 queries" true
    (stats.Measure.mean_queries >= 2.9 && stats.Measure.mean_queries <= 6.1)

let test_language_case_study () =
  (* §5.3.3 via LangDetect: ~31.4% of Afghan sites Persian, ~60.8% of
     those hosted in Iran. *)
  let ds = Lazy.force dataset in
  let fa = Webdep.Language_analysis.share_of_language ds "AF" "fa" in
  let fa_ir = Webdep.Language_analysis.hosted_in ds "AF" ~language:"fa" ~home:"IR" in
  Alcotest.(check bool) "persian share ~0.314" true (Float.abs (fa -. 0.314) < 0.04);
  Alcotest.(check bool) "persian-in-iran ~0.608" true (Float.abs (fa_ir -. 0.608) < 0.07)

let test_redundancy_pipeline () =
  let input =
    Measure.discover_redundancy ~vantages:[ "US"; "TH"; "DE"; "JP"; "BR" ] world "TH"
  in
  let r = Webdep.Redundancy.analyze input in
  (* multi-CDN sites are the only redundancy source: single-homed stays
     within a few points of (1 − multi_cdn_fraction). *)
  let frac = Webdep.Redundancy.single_homed_fraction r in
  Alcotest.(check bool) "single-homed near 1 - multiCDN" true
    (frac > 1.0 -. World.multi_cdn_fraction -. 0.03 && frac < 1.0);
  (match r.Webdep.Redundancy.critical_counts with
  | (top, _) :: _ -> Alcotest.(check string) "Cloudflare most critical" "Cloudflare" top
  | [] -> Alcotest.fail "no critical providers");
  (* The SPOF score tracks the ordinary S (most sites are single-homed). *)
  let s = score Hosting "TH" in
  Alcotest.(check bool) "spof below S" true
    (r.Webdep.Redundancy.spof_score <= s +. 0.001);
  Alcotest.(check bool) "spof near S" true (s -. r.Webdep.Redundancy.spof_score < 0.05)

let test_external_tlds_shape () =
  let ds = Lazy.force dataset in
  (* Burkina Faso uses .fr above .bf (Appendix B); Kyrgyzstan splits
     across .com/.ru/.kg. *)
  Alcotest.(check (option string)) "KG leans .ru" (Some ".ru")
    (Webdep.Tld_analysis.uses_external_over_local ds "KG");
  (match Webdep.Tld_analysis.external_cctlds ds "KG" with
  | (".ru", share) :: _ -> Alcotest.(check bool) ".ru ~22%" true (Float.abs (share -. 0.22) < 0.04)
  | _ -> Alcotest.fail ".ru expected first");
  let b = Webdep.Tld_analysis.breakdown ds "US" in
  let com = List.assoc Webdep.Tld_analysis.Com b in
  Alcotest.(check bool) "US .com ~77%" true (Float.abs (com -. 0.77) < 0.04)

let test_baselines_on_measured_world () =
  let module B = Webdep_emd.Baselines in
  let ds = Lazy.force dataset in
  let labelled = List.map (fun cc -> (cc, D.distribution ds Hosting cc)) panel in
  let dis = B.compare_with_top_n labelled in
  Alcotest.(check bool) "pairs" true (dis.B.pairs_compared = 190);
  (* Gini ranks TH below IR in inequality terms less sharply than S. *)
  let g cc = B.gini (D.distribution ds Hosting cc) in
  Alcotest.(check bool) "gini bounded" true (g "TH" > 0.0 && g "TH" < 1.0)

let test_export_roundtrip_measured () =
  let ds = Lazy.force dataset in
  let doc = Webdep.Export.scores_csv ds Hosting in
  let parsed = Webdep.Export.scores_of_csv doc in
  Alcotest.(check int) "all countries" (List.length panel) (List.length parsed);
  List.iter
    (fun (cc, s) ->
      if Float.abs (s -. score Hosting cc) > 1e-5 then Alcotest.failf "roundtrip %s" cc)
    parsed

let test_fisher_interval_contains_rho () =
  let ds = Lazy.force dataset in
  let measured =
    Array.of_list (List.map (fun cc -> Webdep.Metrics.centralization ds Hosting cc) panel)
  in
  let paper = Scores.scores_in_country_order Hosting panel in
  let r = Webdep_stats.Correlation.pearson measured paper in
  let lo, hi = Webdep_stats.Correlation.fisher_interval r in
  Alcotest.(check bool) "interval brackets rho" true
    (lo <= r.Webdep_stats.Correlation.rho && r.Webdep_stats.Correlation.rho <= hi);
  Alcotest.(check bool) "high lower bound" true (lo > 0.9)

let test_state_ca_untrusted () =
  (* §7.2: a sliver of Russian sites use the state root CA; browsers
     reject it, so the pipeline cannot label those sites' CAs — yet the
     observed CA score still matches the paper. *)
  let snap = World.snapshot world "RU" in
  let measured = Measure.measure_snapshot world snap in
  let state_ca_sites =
    List.filter
      (fun s ->
        match Hashtbl.find_opt snap.World.assigned s.D.domain with
        | Some (_, _, ca) -> ca.Webdep_worldgen.Provider.name = "Russian Trusted Root CA"
        | None -> false)
      measured.D.sites
  in
  Alcotest.(check bool) "some state-CA sites exist" true (List.length state_ca_sites > 0);
  List.iter
    (fun s ->
      if s.D.ca <> None then
        Alcotest.failf "browser-rejected CA should be unlabelled (%s)" s.D.domain)
    state_ca_sites;
  let ds = Lazy.force dataset in
  let ru_ca = Webdep.Metrics.centralization ds Ca "RU" in
  Alcotest.(check bool) "RU CA score still tracks the paper" true
    (Float.abs (ru_ca -. 0.2474) < 0.01)

let test_subregional_coherence () =
  (* The paper's maps show regional clustering; within-subregion shape
     distance must beat cross-subregion distance. *)
  let ds = Lazy.force dataset in
  let c = Webdep.Similarity_analysis.subregional_coherence ds Hosting in
  Alcotest.(check bool) "coherent" true
    (c.Webdep.Similarity_analysis.ratio < 1.0);
  (* Shape distance separates the extremes. *)
  let d_far = Webdep.Similarity_analysis.distance ds Hosting "TH" "IR" in
  let d_near = Webdep.Similarity_analysis.distance ds Hosting "TH" "ID" in
  Alcotest.(check bool) "TH closer to ID than IR" true (d_near < d_far)

let test_measurement_records_obs_counters () =
  (* A measure_country run must leave its footprint in the webdep_obs
     registry: one DNS query and one TLS handshake attempt per site, and
     a per-country span duration histogram. *)
  let module M = Webdep_obs.Metrics in
  let dns = M.counter "pipeline.dns.queries" in
  let tls = M.counter "pipeline.tls.handshakes" in
  let dns0 = M.value dns and tls0 = M.value tls in
  let ds = Measure.measure_country world "PT" in
  let sites = List.length ds.D.sites in
  Alcotest.(check bool) "sites measured" true (sites > 0);
  Alcotest.(check bool) "DNS queries counted" true (M.value dns - dns0 >= sites);
  Alcotest.(check bool) "TLS handshakes counted" true (M.value tls - tls0 > 0);
  let span = M.histogram "span.measure_country.PT" in
  Alcotest.(check bool) "per-country span recorded" true (M.count span > 0);
  Alcotest.(check bool) "span duration positive" true (M.sum span > 0.0)

let test_dependence_matrix_shape () =
  let ds = Lazy.force dataset in
  let matrix = Webdep.Regionalization.dependence_matrix ds Hosting in
  Alcotest.(check int) "six rows" 6 (List.length matrix);
  (* Every continent leans on North America (global providers are US). *)
  List.iter
    (fun (_, row) ->
      let na = List.assoc Webdep_geo.Region.North_america row in
      Alcotest.(check bool) "NA dependence positive" true (na > 0.2))
    (List.filter
       (fun (ct, row) ->
         ignore ct;
         List.exists (fun (_, v) -> v > 0.0) row)
       matrix)

let () =
  Alcotest.run "webdep_integration"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "scores track paper" `Slow test_scores_track_paper;
          Alcotest.test_case "headline orderings" `Slow test_headline_orderings;
          Alcotest.test_case "CA > hosting centralization" `Slow test_ca_more_centralized_than_hosting;
          Alcotest.test_case "Cloudflare top except JP" `Slow test_cloudflare_top_everywhere_except_japan;
          Alcotest.test_case "insularity shape" `Slow test_insularity_shape;
          Alcotest.test_case "cross-border dependencies" `Slow test_cross_border_dependencies;
          Alcotest.test_case "TLD layer shape" `Slow test_tld_layer_shape;
          Alcotest.test_case "CA layer shape" `Slow test_ca_layer_shape;
          Alcotest.test_case "regional reduces centralization" `Slow test_regional_providers_reduce_centralization;
          Alcotest.test_case "usage/endemicity separation" `Slow test_usage_endemicity_separation;
          Alcotest.test_case "anycast flags" `Slow test_anycast_flags;
          Alcotest.test_case "geolocation enrichment" `Slow test_geolocation_enrichment;
          Alcotest.test_case "pipeline recovers ground truth" `Slow test_pipeline_recovers_ground_truth;
          Alcotest.test_case "vantage validation" `Slow test_vantage_validation;
          Alcotest.test_case "longitudinal experiment" `Slow test_longitudinal_experiment;
          Alcotest.test_case "iterative resolution" `Slow test_iterative_resolution_agrees;
          Alcotest.test_case "iterative pipeline mode" `Slow test_iterative_pipeline_mode_identical;
          Alcotest.test_case "language case study" `Slow test_language_case_study;
          Alcotest.test_case "redundancy pipeline" `Slow test_redundancy_pipeline;
          Alcotest.test_case "external tlds" `Slow test_external_tlds_shape;
          Alcotest.test_case "baselines on world" `Slow test_baselines_on_measured_world;
          Alcotest.test_case "export roundtrip" `Slow test_export_roundtrip_measured;
          Alcotest.test_case "fisher interval" `Slow test_fisher_interval_contains_rho;
          Alcotest.test_case "state CA untrusted" `Slow test_state_ca_untrusted;
          Alcotest.test_case "subregional coherence" `Slow test_subregional_coherence;
          Alcotest.test_case "dependence matrix" `Slow test_dependence_matrix_shape;
          Alcotest.test_case "obs counters recorded" `Slow test_measurement_records_obs_counters;
        ] );
    ]
