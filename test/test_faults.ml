(* webdep_faults: deterministic fault plans, retry/backoff, quarantine,
   coverage gating and checkpoint/resume.  The invariants here back the
   robustness acceptance criteria: plans are pure (byte-identical sweeps
   at any job count), transient failures are never memoized, and an
   interrupted sweep resumed from its checkpoint reproduces the
   uninterrupted dataset exactly. *)

module Faults = Webdep_faults.Fault_plan
module Retry = Webdep_faults.Retry
module Quarantine = Webdep_faults.Quarantine
module Degrade = Webdep_faults.Degrade
module Checkpoint = Webdep_faults.Checkpoint
module Cache = Webdep_dnssim.Cache
module Zone_db = Webdep_dnssim.Zone_db
module Resolver = Webdep_dnssim.Resolver
module World = Webdep_worldgen.World
module Measure = Webdep_pipeline.Measure
module D = Webdep.Dataset
module Ipv4 = Webdep_netsim.Ipv4

let addr s = Option.get (Ipv4.addr_of_string s)

(* --- fault plan ---------------------------------------------------------- *)

let test_plan_deterministic () =
  let p1 = Faults.make ~rate:0.2 ~seed:42 () in
  let p2 = Faults.make ~rate:0.2 ~seed:42 () in
  for i = 0 to 199 do
    let qname = Printf.sprintf "site%d.example" i in
    for attempt = 0 to 3 do
      Alcotest.(check bool)
        (Printf.sprintf "same verdict %s@%d" qname attempt)
        true
        (Faults.dns_fault p1 ~vantage:"US" ~qname ~attempt
        = Faults.dns_fault p2 ~vantage:"US" ~qname ~attempt)
    done
  done

let test_plan_pure () =
  (* Verdicts must not depend on what was asked before — purity is what
     makes a faulted sweep schedule-independent. *)
  let p = Faults.make ~rate:0.3 ~seed:9 () in
  let before = Faults.dns_fault p ~vantage:"US" ~qname:"probe.example" ~attempt:0 in
  for i = 0 to 499 do
    ignore (Faults.dns_fault p ~vantage:"DE" ~qname:(string_of_int i) ~attempt:0)
  done;
  let after = Faults.dns_fault p ~vantage:"US" ~qname:"probe.example" ~attempt:0 in
  Alcotest.(check bool) "order-independent" true (before = after)

let test_plan_seeds_differ () =
  let p1 = Faults.make ~rate:0.5 ~seed:1 () in
  let p2 = Faults.make ~rate:0.5 ~seed:2 () in
  let differs = ref false in
  for i = 0 to 199 do
    let qname = Printf.sprintf "s%d.example" i in
    if
      Faults.dns_faulty p1 ~vantage:"US" ~qname
      <> Faults.dns_faulty p2 ~vantage:"US" ~qname
    then differs := true
  done;
  Alcotest.(check bool) "different seeds, different plans" true !differs

let test_plan_rate_bounds () =
  let p = Faults.make ~rate:0.1 ~seed:3 () in
  let faulty = ref 0 in
  let n = 2000 in
  for i = 0 to n - 1 do
    if Faults.dns_faulty p ~vantage:"US" ~qname:(Printf.sprintf "d%d.x" i) then
      incr faulty
  done;
  let observed = float_of_int !faulty /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "observed rate %.3f within [0.05, 0.15]" observed)
    true
    (observed > 0.05 && observed < 0.15)

let test_plan_zero_rate_never_fires () =
  let p = Faults.make ~rate:0.0 ~seed:7 () in
  Alcotest.(check bool) "enabled" true (Faults.enabled p);
  for i = 0 to 499 do
    let qname = Printf.sprintf "z%d.example" i in
    Alcotest.(check bool) "no dns fault" true
      (Faults.dns_fault p ~vantage:"US" ~qname ~attempt:0 = Faults.No_fault);
    Alcotest.(check bool) "no tls fault" true
      (Faults.tls_fault p ~sni:qname ~attempt:0 = Faults.No_fault)
  done

let test_transient_faults_recover () =
  (* With no permanent faults, every faulty key must clear within
     recover_after attempts. *)
  let p = Faults.make ~rate:0.5 ~recover_after:3 ~permanent_fraction:0.0 ~seed:5 () in
  let recovered = ref 0 and faulty = ref 0 in
  for i = 0 to 299 do
    let qname = Printf.sprintf "t%d.example" i in
    if Faults.dns_faulty p ~vantage:"US" ~qname then begin
      incr faulty;
      if Faults.dns_fault p ~vantage:"US" ~qname ~attempt:3 = Faults.No_fault then
        incr recovered
    end
  done;
  Alcotest.(check bool) "some keys faulty" true (!faulty > 50);
  Alcotest.(check int) "all transient faults recover by attempt 3" !faulty !recovered

let test_permanent_faults_never_recover () =
  let p = Faults.make ~rate:0.4 ~permanent_fraction:1.0 ~seed:11 () in
  for i = 0 to 199 do
    let qname = Printf.sprintf "p%d.example" i in
    if Faults.dns_faulty p ~vantage:"US" ~qname then
      Alcotest.(check bool) "still faulty at attempt 50" true
        (Faults.dns_fault p ~vantage:"US" ~qname ~attempt:50 <> Faults.No_fault)
  done

(* --- retry --------------------------------------------------------------- *)

let test_retry_budget_exhaustion () =
  let calls = ref 0 in
  let policy = Retry.of_max_retries 3 in
  let r =
    Retry.run policy ~key:"always-fails" ~retryable:(fun () -> true) (fun ~attempt ->
        incr calls;
        Alcotest.(check int) "attempt number" (!calls - 1) attempt;
        Error ())
  in
  Alcotest.(check bool) "still an error" true (r = Error ());
  Alcotest.(check int) "max_attempts calls" policy.Retry.max_attempts !calls

let test_retry_non_retryable_single_attempt () =
  let calls = ref 0 in
  let r =
    Retry.run (Retry.of_max_retries 5) ~key:"definitive" ~retryable:(fun () -> false)
      (fun ~attempt:_ ->
        incr calls;
        Error ())
  in
  Alcotest.(check bool) "error" true (r = Error ());
  Alcotest.(check int) "one call only" 1 !calls

let test_retry_recovers () =
  let r =
    Retry.run (Retry.of_max_retries 3) ~key:"flaky" ~retryable:(fun () -> true)
      (fun ~attempt -> if attempt >= 2 then Ok "answer" else Error ())
  in
  Alcotest.(check bool) "recovered" true (r = Ok "answer")

let test_retry_simulated_budget_cuts_off () =
  (* A tiny simulated-time budget stops retrying long before the attempt
     cap. *)
  let calls = ref 0 in
  let policy =
    { (Retry.of_max_retries 50) with Retry.base_backoff_ms = 100.0; budget_ms = 250.0 }
  in
  let r =
    Retry.run policy ~key:"slow" ~retryable:(fun () -> true) (fun ~attempt:_ ->
        incr calls;
        Error ())
  in
  Alcotest.(check bool) "error" true (r = Error ());
  Alcotest.(check bool)
    (Printf.sprintf "budget stopped after %d calls" !calls)
    true (!calls < 6)

let test_backoff_deterministic_and_growing () =
  let policy = Retry.default in
  let d1 = Retry.backoff_ms policy ~key:"k" ~attempt:1 in
  let d1' = Retry.backoff_ms policy ~key:"k" ~attempt:1 in
  let d3 = Retry.backoff_ms policy ~key:"k" ~attempt:3 in
  Alcotest.(check (float 0.0)) "deterministic" d1 d1';
  Alcotest.(check bool) "exponential growth" true (d3 > 2.0 *. d1);
  Alcotest.(check bool) "jitter differs by key" true
    (Retry.backoff_ms policy ~key:"other" ~attempt:1 <> d1)

(* --- quarantine ---------------------------------------------------------- *)

let test_quarantine_after_k_failures () =
  let q = Quarantine.create ~threshold:3 () in
  Alcotest.(check bool) "clean at start" false (Quarantine.active q "dom");
  Quarantine.record_failure q "dom";
  Quarantine.record_failure q "dom";
  Alcotest.(check bool) "below threshold" false (Quarantine.active q "dom");
  Quarantine.record_failure q "dom";
  Alcotest.(check bool) "quarantined at 3" true (Quarantine.active q "dom");
  Alcotest.(check int) "count" 1 (Quarantine.quarantined q);
  Quarantine.record_success q "dom";
  Alcotest.(check bool) "success clears" false (Quarantine.active q "dom");
  Alcotest.(check int) "count back to 0" 0 (Quarantine.quarantined q)

let test_quarantine_streak_must_be_consecutive () =
  let q = Quarantine.create ~threshold:2 () in
  Quarantine.record_failure q "dom";
  Quarantine.record_success q "dom";
  Quarantine.record_failure q "dom";
  Alcotest.(check bool) "interrupted streak" false (Quarantine.active q "dom")

(* --- cache never memoizes transient failures ----------------------------- *)

let test_cache_negative_skip () =
  let c = Cache.create ~name:"test.negcache" () in
  let calls = ref 0 in
  let compute () =
    incr calls;
    if !calls = 1 then Error "transient" else Ok "recovered"
  in
  let cache_if = function Ok _ -> true | Error _ -> false in
  let r1 = Cache.find_or_compute ~cache_if c ~vantage:"US" "d.example" compute in
  let r2 = Cache.find_or_compute ~cache_if c ~vantage:"US" "d.example" compute in
  let r3 = Cache.find_or_compute ~cache_if c ~vantage:"US" "d.example" compute in
  Alcotest.(check bool) "first fails" true (r1 = Error "transient");
  Alcotest.(check bool) "second recomputes and recovers" true (r2 = Ok "recovered");
  Alcotest.(check bool) "third served from cache" true (r3 = Ok "recovered");
  Alcotest.(check int) "compute ran twice" 2 !calls

let test_resolver_does_not_cache_injected_failure () =
  (* A cached SERVFAIL must not mask a later successful retry: resolve a
     transiently-faulty domain once without retries (fails), then again
     with retries through the same cache (must recover). *)
  let db = Zone_db.create () in
  let plan = Faults.make ~rate:0.4 ~recover_after:2 ~permanent_fraction:0.0 ~seed:21 () in
  let faulty_domain =
    let rec find i =
      if i > 5000 then Alcotest.fail "no faulty domain found in 5000 draws"
      else
        let d = Printf.sprintf "site%d.example" i in
        if Faults.dns_faulty plan ~vantage:"US" ~qname:d then d else find (i + 1)
    in
    find 0
  in
  Zone_db.add_domain db ~domain:faulty_domain ~ns_hosts:[ "ns1.x.sim" ]
    ~a:(Zone_db.Static [ addr "10.0.0.1" ]);
  Zone_db.add_host db ~host:"ns1.x.sim" ~a:(Zone_db.Static [ addr "10.9.0.1" ]);
  let cache = Resolver.make_cache () in
  (match Resolver.resolve ~cache ~faults:plan db ~vantage:"US" faulty_domain with
  | Error e ->
      Alcotest.(check bool) "transient error" true (Resolver.retryable e)
  | Ok _ -> Alcotest.fail "attempt 0 must hit the injected fault");
  match
    Resolver.resolve ~cache ~faults:plan ~retry:(Retry.of_max_retries 4) db
      ~vantage:"US" faulty_domain
  with
  | Ok r ->
      Alcotest.(check (list string)) "recovered answer" [ "10.0.0.1" ]
        (List.map Ipv4.addr_to_string r.Resolver.a)
  | Error e ->
      Alcotest.fail
        ("retry must recover past the transient fault, got "
        ^ Resolver.error_message e)

(* --- pipeline: sweeps under faults --------------------------------------- *)

let sample = [ "US"; "RU"; "BR"; "DE" ]

let fault_opts ?(rate = 0.05) ?(threshold = 0.5) ?(retries = 3) ?permanent_fraction
    () =
  {
    Measure.plan = Faults.make ~rate ?permanent_fraction ~seed:7 ();
    retry = Retry.of_max_retries retries;
    coverage_threshold = threshold;
    quarantine_after = 3;
  }

let country_lists ds = List.map (fun cc -> D.country_exn ds cc) (D.countries ds)

let datasets_equal a b = country_lists a = country_lists b

let test_sweep_jobs_invariant_with_faults () =
  let world = World.create ~c:300 ~seed:2024 () in
  let s1 =
    Measure.measure_sweep ~countries:sample ~jobs:1 ~faults:(fault_opts ()) world
  in
  let s4 =
    Measure.measure_sweep ~countries:sample ~jobs:4 ~faults:(fault_opts ()) world
  in
  Alcotest.(check bool) "datasets identical" true
    (datasets_equal s1.Measure.dataset s4.Measure.dataset);
  Alcotest.(check bool) "coverage identical" true
    (s1.Measure.coverage = s4.Measure.coverage)

let test_sweep_zero_rate_identical_to_legacy () =
  let world = World.create ~c:300 ~seed:2024 () in
  let plain = Measure.measure_all ~countries:sample world in
  let zero =
    Measure.measure_sweep ~countries:sample
      ~faults:(fault_opts ~rate:0.0 ~threshold:0.9 ()) world
  in
  Alcotest.(check bool) "rate-0 plan changes nothing" true
    (datasets_equal plain zero.Measure.dataset);
  Alcotest.(check (list string)) "nothing withheld" [] zero.Measure.insufficient

let test_coverage_threshold_gates () =
  let world = World.create ~c:300 ~seed:2024 () in
  (* Every resolution fails permanently and is never retried: coverage 0,
     so a 0.99 threshold must withhold every country... *)
  let brutal = fault_opts ~rate:1.0 ~threshold:0.99 ~retries:0 ~permanent_fraction:1.0 () in
  let sweep = Measure.measure_sweep ~countries:sample ~faults:brutal world in
  Alcotest.(check (list string)) "all withheld" sample sweep.Measure.insufficient;
  Alcotest.(check (list string)) "empty dataset" [] (D.countries sweep.Measure.dataset);
  List.iter
    (fun (c : Measure.country_coverage) ->
      Alcotest.(check (float 0.0)) ("ratio " ^ c.Measure.cc) 0.0 c.Measure.ratio)
    sweep.Measure.coverage;
  (* ...while a 0 threshold keeps them (degraded, not silently dropped). *)
  let keep_all = { brutal with Measure.coverage_threshold = 0.0 } in
  let sweep0 = Measure.measure_sweep ~countries:sample ~faults:keep_all world in
  Alcotest.(check (list string)) "none withheld" [] sweep0.Measure.insufficient;
  Alcotest.(check (list string)) "all kept" sample (D.countries sweep0.Measure.dataset)

let test_faulted_scores_stay_close () =
  (* §acceptance: 5% faults with retries must not visibly bias the
     centralization metric. *)
  let world = World.create ~c:500 ~seed:2024 () in
  let clean = Measure.measure_all ~countries:sample world in
  let faulted =
    (Measure.measure_sweep ~countries:sample ~faults:(fault_opts ~rate:0.05 ()) world)
      .Measure.dataset
  in
  List.iter
    (fun cc ->
      let s_clean = Webdep.Metrics.centralization clean Webdep.Dataset.Hosting cc in
      let s_faulted = Webdep.Metrics.centralization faulted Webdep.Dataset.Hosting cc in
      Alcotest.(check bool)
        (Printf.sprintf "%s drift %.4f within 0.02" cc (abs_float (s_clean -. s_faulted)))
        true
        (abs_float (s_clean -. s_faulted) < 0.02))
    sample

(* --- checkpoint ---------------------------------------------------------- *)

let with_temp_file f =
  let path = Filename.temp_file "webdep_cp" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_checkpoint_roundtrip () =
  with_temp_file @@ fun path ->
  let world = World.create ~c:300 ~seed:2024 () in
  let faults = fault_opts () in
  let direct = Measure.measure_sweep ~countries:sample ~faults world in
  let checkpointed =
    Measure.measure_sweep ~countries:sample ~faults ~checkpoint:path world
  in
  Alcotest.(check bool) "checkpointing changes nothing" true
    (datasets_equal direct.Measure.dataset checkpointed.Measure.dataset);
  (* Resume from the complete file: every country short-circuits, and the
     dataset round-trips through JSON exactly. *)
  let resumed = Measure.measure_sweep ~countries:sample ~faults ~checkpoint:path world in
  Alcotest.(check bool) "full resume identical" true
    (datasets_equal direct.Measure.dataset resumed.Measure.dataset);
  Alcotest.(check bool) "all countries resumed" true
    (List.for_all
       (fun (c : Measure.country_coverage) -> c.Measure.resumed)
       resumed.Measure.coverage)

let test_checkpoint_interrupted_resume () =
  with_temp_file @@ fun path ->
  let world = World.create ~c:300 ~seed:2024 () in
  let faults = fault_opts () in
  let full = Measure.measure_sweep ~countries:sample ~faults ~checkpoint:path world in
  (* Simulate a mid-sweep kill: drop all but the header and the first two
     completed shards, plus a torn half-written line. *)
  let lines = ref [] in
  let ic = open_in path in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let keep = List.filteri (fun i _ -> i < 3) (List.rev !lines) in
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) keep;
  output_string oc "{\"country\":\"BR\",\"clean\":12,\"sit";
  close_out oc;
  let resumed = Measure.measure_sweep ~countries:sample ~faults ~checkpoint:path world in
  Alcotest.(check bool) "interrupted resume reproduces the full dataset" true
    (datasets_equal full.Measure.dataset resumed.Measure.dataset);
  Alcotest.(check int) "exactly two shards were resumed" 2
    (List.length
       (List.filter
          (fun (c : Measure.country_coverage) -> c.Measure.resumed)
          resumed.Measure.coverage))

let test_checkpoint_parameter_mismatch_discards () =
  with_temp_file @@ fun path ->
  let world = World.create ~c:300 ~seed:2024 () in
  let f1 = fault_opts ~rate:0.05 () in
  ignore (Measure.measure_sweep ~countries:sample ~faults:f1 ~checkpoint:path world);
  (* Same file, different fault rate: stale shards must not leak in. *)
  let f2 = fault_opts ~rate:0.2 () in
  let fresh = Measure.measure_sweep ~countries:sample ~faults:f2 ~checkpoint:path world in
  Alcotest.(check bool) "nothing resumed across a parameter change" true
    (List.for_all
       (fun (c : Measure.country_coverage) -> not c.Measure.resumed)
       fresh.Measure.coverage);
  let direct = Measure.measure_sweep ~countries:sample ~faults:f2 world in
  Alcotest.(check bool) "result matches a checkpoint-free run" true
    (datasets_equal direct.Measure.dataset fresh.Measure.dataset)


(* --- shared JSONL helper -------------------------------------------------- *)

module Jsonl = Webdep_faults.Jsonl

let temp_path () =
  let p = Filename.temp_file "webdep_jsonl_test" ".jsonl" in
  Sys.remove p;
  p

let jsonl_parse line = if String.length line > 0 && line.[0] = '#' then None else Some line

let test_jsonl_roundtrip () =
  let path = temp_path () in
  let lines = [ "one"; "two"; "three" ] in
  Jsonl.write_atomic ~path ~header:"H1" lines;
  (match Jsonl.load ~path ~header:"H1" ~parse:jsonl_parse with
  | Jsonl.Loaded { entries; torn } ->
      Alcotest.(check (list string)) "entries round-trip" lines entries;
      Alcotest.(check bool) "not torn" false torn
  | _ -> Alcotest.fail "expected Loaded");
  (* No stray temp files left behind by the atomic write. *)
  let dir = Filename.dirname path and base = Filename.basename path in
  Array.iter
    (fun f ->
      if String.length f > String.length base
         && String.sub f 0 (String.length base) = base then
        Alcotest.fail ("stray temp file " ^ f))
    (Sys.readdir dir);
  Sys.remove path

let test_jsonl_torn_tail () =
  let path = temp_path () in
  Jsonl.write_atomic ~path ~header:"H1" [ "one"; "two" ];
  (* Simulate a kill mid-append: a trailing line the parser rejects. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "#corrupt-tail-without-newline";
  close_out oc;
  (match Jsonl.load ~path ~header:"H1" ~parse:jsonl_parse with
  | Jsonl.Loaded { entries; torn } ->
      Alcotest.(check (list string)) "intact prefix kept" [ "one"; "two" ] entries;
      Alcotest.(check bool) "reported torn" true torn
  | _ -> Alcotest.fail "expected Loaded with torn tail");
  Sys.remove path

let test_jsonl_header_mismatch_and_absent () =
  let path = temp_path () in
  (match Jsonl.load ~path ~header:"H1" ~parse:jsonl_parse with
  | Jsonl.No_file -> ()
  | _ -> Alcotest.fail "expected No_file");
  Jsonl.write_atomic ~path ~header:"H1" [ "one" ];
  (match Jsonl.load ~path ~header:"H2" ~parse:jsonl_parse with
  | Jsonl.Header_mismatch -> ()
  | _ -> Alcotest.fail "expected Header_mismatch");
  Sys.remove path

(* --- wire chaos verdicts -------------------------------------------------- *)

module Wire = Webdep_faults.Wire

let test_wire_deterministic () =
  let p1 = Faults.make ~rate:0.5 ~seed:77 () in
  let p2 = Faults.make ~rate:0.5 ~seed:77 () in
  let seen_injected = ref 0 and seen_clean = ref 0 in
  for i = 0 to 499 do
    let key = Printf.sprintf "req-%d" i in
    let a1 = Wire.action_pure p1 ~key and a2 = Wire.action_pure p2 ~key in
    Alcotest.(check string) ("same verdict for " ^ key)
      (Wire.action_name a1) (Wire.action_name a2);
    (match a1 with Wire.Clean -> incr seen_clean | _ -> incr seen_injected);
    (* cut points and garbage are deterministic and well-formed too *)
    let c1 = Wire.cut_point p1 ~key ~len:40 and c2 = Wire.cut_point p2 ~key ~len:40 in
    Alcotest.(check int) "same cut" c1 c2;
    Alcotest.(check bool) "cut in (0, len)" true (c1 >= 1 && c1 < 40);
    let g1 = Wire.garbage p1 ~key ~len:8 and g2 = Wire.garbage p2 ~key ~len:8 in
    Alcotest.(check string) "same garbage" g1 g2;
    Alcotest.(check bool) "garbage poisons the length prefix" true
      (Char.code g1.[0] >= 0x80)
  done;
  Alcotest.(check bool) "rate 0.5 injects some" true (!seen_injected > 100);
  Alcotest.(check bool) "rate 0.5 leaves some clean" true (!seen_clean > 100)

let test_wire_disabled_and_rate_zero () =
  let disabled = Faults.disabled in
  let zero = Faults.make ~rate:0.0 ~seed:3 () in
  for i = 0 to 99 do
    let key = string_of_int i in
    (match Wire.action_pure disabled ~key with
    | Wire.Clean -> ()
    | a -> Alcotest.fail ("disabled plan injected " ^ Wire.action_name a));
    match Wire.action_pure zero ~key with
    | Wire.Clean -> ()
    | a -> Alcotest.fail ("rate-0 plan injected " ^ Wire.action_name a)
  done

let () =
  Alcotest.run "webdep_faults"
    [
      ( "plan",
        [
          Alcotest.test_case "deterministic" `Quick test_plan_deterministic;
          Alcotest.test_case "pure" `Quick test_plan_pure;
          Alcotest.test_case "seeds differ" `Quick test_plan_seeds_differ;
          Alcotest.test_case "rate bounds" `Quick test_plan_rate_bounds;
          Alcotest.test_case "zero rate never fires" `Quick
            test_plan_zero_rate_never_fires;
          Alcotest.test_case "transients recover" `Quick test_transient_faults_recover;
          Alcotest.test_case "permanents persist" `Quick
            test_permanent_faults_never_recover;
        ] );
      ( "retry",
        [
          Alcotest.test_case "budget exhaustion" `Quick test_retry_budget_exhaustion;
          Alcotest.test_case "non-retryable" `Quick
            test_retry_non_retryable_single_attempt;
          Alcotest.test_case "recovers" `Quick test_retry_recovers;
          Alcotest.test_case "simulated budget" `Quick
            test_retry_simulated_budget_cuts_off;
          Alcotest.test_case "backoff deterministic" `Quick
            test_backoff_deterministic_and_growing;
        ] );
      ( "quarantine",
        [
          Alcotest.test_case "after K failures" `Quick test_quarantine_after_k_failures;
          Alcotest.test_case "streak consecutive" `Quick
            test_quarantine_streak_must_be_consecutive;
        ] );
      ( "cache",
        [
          Alcotest.test_case "negative skip" `Quick test_cache_negative_skip;
          Alcotest.test_case "no cached SERVFAIL" `Quick
            test_resolver_does_not_cache_injected_failure;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "jobs-invariant with faults" `Quick
            test_sweep_jobs_invariant_with_faults;
          Alcotest.test_case "rate 0 = legacy" `Quick
            test_sweep_zero_rate_identical_to_legacy;
          Alcotest.test_case "coverage gating" `Quick test_coverage_threshold_gates;
          Alcotest.test_case "scores stay close" `Quick test_faulted_scores_stay_close;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "atomic write round-trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "torn tail recovery" `Quick test_jsonl_torn_tail;
          Alcotest.test_case "header mismatch / absent" `Quick
            test_jsonl_header_mismatch_and_absent;
        ] );
      ( "wire",
        [
          Alcotest.test_case "chaos verdicts deterministic" `Quick
            test_wire_deterministic;
          Alcotest.test_case "disabled and rate-0 stay clean" `Quick
            test_wire_disabled_and_rate_zero;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "interrupted resume" `Quick
            test_checkpoint_interrupted_resume;
          Alcotest.test_case "parameter mismatch" `Quick
            test_checkpoint_parameter_mismatch_discards;
        ] );
    ]
