(* Unit tests for webdep_obs: span nesting, counter/histogram math
   (including empty-histogram edge cases), the JSON printer/parser, the
   registry snapshot round-trip and the jsonl trace sink.

   The registry is process-global; tests use distinct metric names so
   they stay independent of execution order. *)

module Metrics = Webdep_obs.Metrics
module Span = Webdep_obs.Span
module Sink = Webdep_obs.Sink
module Json = Webdep_obs.Json
module Registry = Webdep_obs.Registry

let test_counter_math () =
  let c = Metrics.counter "test.counter.basic" in
  Alcotest.(check int) "fresh counter is zero" 0 (Metrics.value c);
  Metrics.incr c;
  Metrics.incr c;
  Alcotest.(check int) "two increments" 2 (Metrics.value c);
  Metrics.incr ~by:40 c;
  Alcotest.(check int) "increment by" 42 (Metrics.value c);
  (* Memoized by name: a second lookup is the same counter. *)
  Metrics.incr (Metrics.counter "test.counter.basic");
  Alcotest.(check int) "same counter via name" 43 (Metrics.value c)

let test_empty_histogram () =
  let h = Metrics.histogram "test.histo.empty" in
  Alcotest.(check int) "count" 0 (Metrics.count h);
  Alcotest.(check (float 0.0)) "sum" 0.0 (Metrics.sum h);
  Alcotest.(check (float 0.0)) "mean of empty is 0" 0.0 (Metrics.mean h);
  Alcotest.(check (float 0.0)) "stddev of empty is 0" 0.0 (Metrics.stddev h);
  Alcotest.(check (option (float 0.0))) "no min" None (Metrics.min_value h);
  Alcotest.(check (option (float 0.0))) "no max" None (Metrics.max_value h);
  Alcotest.(check (option (float 0.0))) "no quantile" None (Metrics.quantile h 0.5);
  Alcotest.(check int) "no buckets" 0 (List.length (Metrics.buckets h))

let test_histogram_math () =
  let h = Metrics.histogram "test.histo.math" in
  List.iter (Metrics.observe h) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Metrics.count h);
  Alcotest.(check (float 1e-9)) "sum" 10.0 (Metrics.sum h);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Metrics.mean h);
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 1.25) (Metrics.stddev h);
  Alcotest.(check (option (float 1e-9))) "min" (Some 1.0) (Metrics.min_value h);
  Alcotest.(check (option (float 1e-9))) "max" (Some 4.0) (Metrics.max_value h);
  (* Bucket counts preserve the total. *)
  let total = List.fold_left (fun acc (_, k) -> acc + k) 0 (Metrics.buckets h) in
  Alcotest.(check int) "buckets cover all observations" 4 total

(* The observe-only fast path must be indistinguishable from direct
   observation once flushed: same count, moments, extremes, buckets and
   quantiles.  Before the flush the shared histogram sees nothing. *)
let test_histogram_local_fast_path () =
  let samples = [ 3e-6; 1.5e-4; 0.0021; 0.9; 0.0021; 7.0; 4e-5 ] in
  let direct = Metrics.histogram "test.histo.local.direct" in
  List.iter (Metrics.observe direct) samples;
  let shared = Metrics.histogram "test.histo.local.shared" in
  let local = Metrics.Local.create shared in
  List.iter (Metrics.Local.observe local) samples;
  Alcotest.(check int) "nothing shared before flush" 0 (Metrics.count shared);
  Alcotest.(check int) "pending" (List.length samples) (Metrics.Local.pending local);
  Metrics.Local.flush local;
  Alcotest.(check int) "pending cleared" 0 (Metrics.Local.pending local);
  Alcotest.(check int) "count" (Metrics.count direct) (Metrics.count shared);
  Alcotest.(check (float 1e-12)) "sum" (Metrics.sum direct) (Metrics.sum shared);
  Alcotest.(check (float 1e-12)) "stddev" (Metrics.stddev direct) (Metrics.stddev shared);
  Alcotest.(check (option (float 1e-12))) "min" (Metrics.min_value direct)
    (Metrics.min_value shared);
  Alcotest.(check (option (float 1e-12))) "max" (Metrics.max_value direct)
    (Metrics.max_value shared);
  List.iter
    (fun q ->
      Alcotest.(check (option (float 1e-12)))
        (Printf.sprintf "q%.3f" q)
        (Metrics.quantile direct q) (Metrics.quantile shared q))
    [ 0.5; 0.9; 0.99; 0.999 ];
  Alcotest.(check int) "bucket shapes" (List.length (Metrics.buckets direct))
    (List.length (Metrics.buckets shared));
  (* A second flush with nothing pending is a no-op. *)
  Metrics.Local.flush local;
  Alcotest.(check int) "idempotent flush" (Metrics.count direct) (Metrics.count shared)

let test_histogram_quantile () =
  let h = Metrics.histogram "test.histo.quantile" in
  for _ = 1 to 90 do Metrics.observe h 0.0005 done;
  for _ = 1 to 10 do Metrics.observe h 0.9 done;
  (* Rank 50 sits 50/90 of the way through the (1e-4, 1e-3] bucket:
     1e-4 + (50/90)(1e-3 - 1e-4) = 6e-4 — interpolated, not the old
     bucket-upper-bound 1e-3 overestimate. *)
  (match Metrics.quantile h 0.5 with
  | Some q -> Alcotest.(check (float 1e-9)) "p50 interpolates inside its bucket" 6e-4 q
  | None -> Alcotest.fail "p50 missing");
  (match Metrics.quantile h 0.5 with
  | Some q -> Alcotest.(check bool) "p50 below the bucket upper bound" true (q < 1e-3)
  | None -> ());
  match Metrics.quantile h 0.99 with
  | Some q -> Alcotest.(check (float 1e-9)) "p99 clamps to the max seen" 0.9 q
  | None -> Alcotest.fail "p99 missing"

let test_histogram_quantile_single_value () =
  let h = Metrics.histogram "test.histo.quantile_single" in
  for _ = 1 to 5 do Metrics.observe h 0.25 done;
  List.iter
    (fun q ->
      match Metrics.quantile h q with
      | Some v ->
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "q=%.2f of a single-valued histogram is exact" q)
            0.25 v
      | None -> Alcotest.fail "quantile missing")
    [ 0.0; 0.5; 0.9; 0.99; 1.0 ]

let test_histogram_bucket_sums () =
  let h = Metrics.histogram "test.histo.bucket_sums" in
  List.iter (Metrics.observe h) [ 0.0005; 0.0007; 0.9; 3.0 ];
  let bs = Metrics.buckets_with_sums h in
  let total_count = List.fold_left (fun acc (_, k, _) -> acc + k) 0 bs in
  let total_sum = List.fold_left (fun acc (_, _, s) -> acc +. s) 0.0 bs in
  Alcotest.(check int) "bucket counts cover all observations" 4 total_count;
  Alcotest.(check (float 1e-9)) "bucket sums add up to the total sum"
    (Metrics.sum h) total_sum;
  (* The two sub-millisecond values share a bucket; its sum is theirs. *)
  match List.find_opt (fun (le, _, _) -> le = Some 1e-3) bs with
  | Some (_, k, s) ->
      Alcotest.(check int) "shared bucket count" 2 k;
      Alcotest.(check (float 1e-9)) "shared bucket sum" 0.0012 s
  | None -> Alcotest.fail "expected a (1e-4, 1e-3] bucket"

let test_histogram_merge () =
  let a = Metrics.histogram "test.histo.merge_a" in
  let b = Metrics.histogram "test.histo.merge_b" in
  List.iter (Metrics.observe a) [ 0.001; 0.002 ];
  List.iter (Metrics.observe b) [ 0.9; 1.5; 4.0 ];
  Metrics.merge_into ~into:a b;
  Alcotest.(check int) "merged count" 5 (Metrics.count a);
  Alcotest.(check (float 1e-9)) "merged sum" 6.403 (Metrics.sum a);
  Alcotest.(check (option (float 1e-9))) "merged min" (Some 0.001) (Metrics.min_value a);
  Alcotest.(check (option (float 1e-9))) "merged max" (Some 4.0) (Metrics.max_value a);
  (match Metrics.quantile a 1.0 with
  | Some q -> Alcotest.(check (float 1e-9)) "merged q1 is the global max" 4.0 q
  | None -> Alcotest.fail "quantile missing");
  (* Merging an empty histogram must not disturb min/max. *)
  let empty = Metrics.histogram "test.histo.merge_empty" in
  Metrics.merge_into ~into:a empty;
  Alcotest.(check (option (float 1e-9))) "min survives empty merge" (Some 0.001)
    (Metrics.min_value a);
  (* Distinct bounds are a programming error, not a silent skew. *)
  let other = Metrics.histogram ~bounds:[| 1.0; 2.0 |] "test.histo.merge_bounds" in
  match Metrics.merge_into ~into:a other with
  | () -> Alcotest.fail "expected Invalid_argument for mismatched bounds"
  | exception Invalid_argument _ -> ()

let test_histogram_overflow_bucket () =
  let h = Metrics.histogram "test.histo.overflow" in
  Metrics.observe h 1e9;
  (* Beyond the last bound: lands in the unbounded overflow bucket. *)
  (match Metrics.buckets h with
  | [ (None, 1) ] -> ()
  | _ -> Alcotest.fail "expected one overflow bucket");
  match Metrics.quantile h 1.0 with
  | Some q -> Alcotest.(check (float 1.0)) "overflow quantile is max seen" 1e9 q
  | None -> Alcotest.fail "quantile missing"

let test_span_nesting () =
  let events = ref [] in
  let recording = { Sink.emit = (fun ev -> events := ev :: !events); flush = ignore } in
  Sink.with_sink recording (fun () ->
      Span.with_ ~name:"outer" ~attrs:[ ("k", "v") ] (fun () ->
          Span.with_ ~name:"inner" (fun () -> ());
          Span.with_ ~name:"inner" (fun () -> ())));
  (* Children close before the parent; depth reflects nesting. *)
  match List.rev !events with
  | [ i1; i2; o ] ->
      Alcotest.(check string) "first inner" "inner" i1.Sink.name;
      Alcotest.(check int) "inner depth" 1 i1.Sink.depth;
      Alcotest.(check int) "inner depth" 1 i2.Sink.depth;
      Alcotest.(check string) "outer last" "outer" o.Sink.name;
      Alcotest.(check int) "outer depth" 0 o.Sink.depth;
      Alcotest.(check bool) "attrs carried" true (List.mem ("k", "v") o.Sink.attrs);
      Alcotest.(check bool) "outer spans the inners" true
        (o.Sink.duration_s >= i1.Sink.duration_s)
  | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs)

let test_span_histogram_and_result () =
  let runs = 3 in
  for i = 1 to runs do
    let v = Span.with_ ~name:"test_span_histo" (fun () -> i * 2) in
    Alcotest.(check int) "span returns the body's value" (i * 2) v
  done;
  let h = Metrics.histogram "span.test_span_histo" in
  Alcotest.(check int) "one observation per run" runs (Metrics.count h);
  Alcotest.(check bool) "durations are non-negative" true (Metrics.sum h >= 0.0)

let test_span_gc_and_lane () =
  let events = ref [] in
  let recording = { Sink.emit = (fun ev -> events := ev :: !events); flush = ignore } in
  Sink.with_sink recording (fun () ->
      Span.with_ ~name:"alloc_span" (fun () ->
          for _ = 1 to 1000 do
            ignore (Sys.opaque_identity (ref 0))
          done));
  match !events with
  | [ ev ] ->
      Alcotest.(check bool) "minor allocation recorded" true
        (ev.Sink.gc.Sink.minor_words > 0.0);
      Alcotest.(check bool) "promoted words within minor words" true
        (ev.Sink.gc.Sink.promoted_words <= ev.Sink.gc.Sink.minor_words);
      Alcotest.(check bool) "lane is non-negative" true (ev.Sink.lane >= 0)
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)

let test_span_exception_restores_depth () =
  let before = ref (-1) and after = ref (-1) in
  let probe = { Sink.emit = (fun ev -> after := ev.Sink.depth); flush = ignore } in
  Sink.with_sink probe (fun () ->
      (try
         Span.with_ ~name:"outer_exn" (fun () ->
             before := 1;
             Span.with_ ~name:"raiser" (fun () -> failwith "boom"))
       with Failure _ -> ());
      (* The outer span closed at depth 0: nesting state was restored on
         the exception path. *)
      Alcotest.(check int) "outer closed at depth 0" 0 !after;
      Alcotest.(check int) "body ran" 1 !before)

let test_json_roundtrip_values () =
  let samples =
    [
      Json.Null;
      Json.Bool true;
      Json.Bool false;
      Json.Int 0;
      Json.Int (-42);
      Json.Float 2.0;
      Json.Float 0.123456789012345;
      Json.Float 1.7976931348623157e308;
      Json.String "plain";
      Json.String "esc \"quotes\" \\ back\n tab\t ctrl\001";
      Json.List [ Json.Int 1; Json.String "two"; Json.List []; Json.Obj [] ];
      Json.Obj [ ("a", Json.Int 1); ("b", Json.List [ Json.Null ]) ];
    ]
  in
  List.iter
    (fun v ->
      let s = Json.to_string v in
      match Json.parse s with
      | parsed ->
          if parsed <> v then Alcotest.failf "round trip failed for %s" s
      | exception Json.Parse_error msg -> Alcotest.failf "parse error %s for %s" msg s)
    samples

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.parse_opt s with
      | None -> ()
      | Some _ -> Alcotest.failf "expected parse failure for %S" s)
    [ ""; "{"; "[1,"; "{\"a\":}"; "tru"; "1.2.3"; "\"unterminated"; "[1] trailing" ]

let test_registry_snapshot_roundtrip () =
  Metrics.incr ~by:7 (Metrics.counter "test.snapshot.counter");
  let h = Metrics.histogram "test.snapshot.histo" in
  List.iter (Metrics.observe h) [ 0.002; 0.004; 1.5 ];
  Span.with_ ~name:"test_snapshot_span" (fun () -> ());
  let snap = Registry.snapshot () in
  let reparsed = Json.parse (Registry.dump_json ()) in
  Alcotest.(check bool) "snapshot JSON round-trips" true (reparsed = snap);
  (* The snapshot exposes the three sections with our entries in place. *)
  let counters = Option.get (Json.member "counters" snap) in
  Alcotest.(check bool) "counter present" true
    (Json.member "test.snapshot.counter" counters = Some (Json.Int 7));
  let histos = Option.get (Json.member "histograms" snap) in
  (match Json.member "test.snapshot.histo" histos with
  | Some histo ->
      Alcotest.(check bool) "count serialized" true
        (Json.member "count" histo = Some (Json.Int 3))
  | None -> Alcotest.fail "histogram missing from snapshot");
  let spans = Option.get (Json.member "spans" snap) in
  Alcotest.(check bool) "span histograms live under spans, prefix stripped" true
    (Json.member "test_snapshot_span" spans <> None)

let test_jsonl_sink () =
  let path = Filename.temp_file "webdep_obs" ".jsonl" in
  let sink = Sink.jsonl path in
  Sink.with_sink sink (fun () ->
      Span.with_ ~name:"jsonl_outer" ~attrs:[ ("cc", "US") ] (fun () ->
          Span.with_ ~name:"jsonl_inner" (fun () -> ())));
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  Alcotest.(check int) "two span lines" 2 (List.length lines);
  let parsed = List.map Json.parse lines in
  (match parsed with
  | [ inner; outer ] ->
      Alcotest.(check bool) "inner first" true
        (Json.member "name" inner = Some (Json.String "jsonl_inner"));
      Alcotest.(check bool) "outer attrs survive" true
        (match Json.member "attrs" outer with
        | Some attrs -> Json.member "cc" attrs = Some (Json.String "US")
        | None -> false)
  | _ -> Alcotest.fail "expected two events");
  Sys.remove path

let test_reset_keeps_references_live () =
  let c = Metrics.counter "test.reset.counter" in
  let h = Metrics.histogram "test.reset.histo" in
  Metrics.incr ~by:5 c;
  Metrics.observe h 1.0;
  Registry.reset ();
  Alcotest.(check int) "counter zeroed" 0 (Metrics.value c);
  Alcotest.(check int) "histogram zeroed" 0 (Metrics.count h);
  (* The original references still feed the registry after a reset. *)
  Metrics.incr c;
  Metrics.observe h 2.0;
  Alcotest.(check int) "counter live" 1 (Metrics.value c);
  Alcotest.(check int) "histogram live" 1 (Metrics.count h);
  Alcotest.(check (option (float 1e-9))) "min restarts" (Some 2.0) (Metrics.min_value h)

let () =
  Alcotest.run "webdep_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter math" `Quick test_counter_math;
          Alcotest.test_case "empty histogram" `Quick test_empty_histogram;
          Alcotest.test_case "histogram math" `Quick test_histogram_math;
          Alcotest.test_case "local fast path" `Quick test_histogram_local_fast_path;
          Alcotest.test_case "histogram quantile" `Quick test_histogram_quantile;
          Alcotest.test_case "single-valued quantile" `Quick
            test_histogram_quantile_single_value;
          Alcotest.test_case "bucket sums" `Quick test_histogram_bucket_sums;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "overflow bucket" `Quick test_histogram_overflow_bucket;
          Alcotest.test_case "reset keeps references" `Quick test_reset_keeps_references_live;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and order" `Quick test_span_nesting;
          Alcotest.test_case "histogram and result" `Quick test_span_histogram_and_result;
          Alcotest.test_case "gc delta and lane" `Quick test_span_gc_and_lane;
          Alcotest.test_case "exception restores depth" `Quick test_span_exception_restores_depth;
        ] );
      ( "json",
        [
          Alcotest.test_case "value round-trip" `Quick test_json_roundtrip_values;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "snapshot round-trip" `Quick test_registry_snapshot_roundtrip;
          Alcotest.test_case "jsonl sink" `Quick test_jsonl_sink;
        ] );
    ]
