(* Tests for the extension modules: baseline concentration indices, the
   §3.2 EMD customizations, TLD categorization, language analysis,
   redundancy, and CSV export. *)

module Dist = Webdep_emd.Dist
module B = Webdep_emd.Baselines
module Ext = Webdep_emd.Extensions
module D = Webdep.Dataset

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_float ?(eps = 1e-9) msg expected actual =
  if not (feq ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* --- Baselines ---------------------------------------------------------- *)

let test_gini_uniform () =
  check_float "equal providers" 0.0 (B.gini (Dist.of_counts [| 5; 5; 5; 5 |]))

let test_gini_blind_to_provider_count () =
  (* The design flaw S avoids: Gini cannot tell 2 equal providers from
     2000 equal providers. *)
  let two = B.gini (Dist.of_counts [| 10; 10 |]) in
  let many = B.gini (Dist.of_counts (Array.make 200 10)) in
  check_float "both zero" two many;
  let s_two = Webdep_emd.Centralization.score (Dist.of_counts [| 10; 10 |]) in
  let s_many = Webdep_emd.Centralization.score (Dist.of_counts (Array.make 200 10)) in
  Alcotest.(check bool) "S separates them" true (s_two > s_many +. 0.4)

let test_gini_concentrated () =
  let g = B.gini (Dist.of_counts [| 97; 1; 1; 1 |]) in
  Alcotest.(check bool) "high" true (g > 0.7)

let test_shannon_evenness () =
  check_float "even" 1.0 (B.shannon_evenness (Dist.of_counts [| 3; 3; 3 |]));
  Alcotest.(check bool) "skewed lower" true
    (B.shannon_evenness (Dist.of_counts [| 98; 1; 1 |]) < 0.2);
  check_float "single provider" 1.0 (B.shannon_evenness (Dist.of_counts [| 7 |]))

let test_effective_providers () =
  check_float "4 equal" 4.0 (B.effective_providers (Dist.of_counts [| 5; 5; 5; 5 |]));
  check_float "monopoly" 1.0 (B.effective_providers (Dist.of_counts [| 9 |]))

let test_gini_single_provider () =
  check_float "monopoly has zero inequality among providers" 0.0
    (B.gini (Dist.of_counts [| 10 |]))

let test_effective_providers_uneven () =
  (* counts (8,1,1): HHI = 0.66 -> ~1.5 effective providers. *)
  let e = B.effective_providers (Dist.of_counts [| 8; 1; 1 |]) in
  if Float.abs (e -. (1.0 /. 0.66)) > 1e-9 then Alcotest.failf "effective %f" e

let test_topn_disagreement () =
  (* Two distributions with identical top-5 but different S, plus one
     clearly different: the comparator must detect one tie. *)
  let az = Dist.of_counts (Array.append [| 42; 5; 4; 4; 4 |] (Array.make 41 1)) in
  let hk = Dist.of_counts (Array.append [| 33; 12; 5; 5; 4 |] (Array.make 41 1)) in
  let th = Dist.of_counts (Array.append [| 60; 5; 3; 2; 2 |] (Array.make 28 1)) in
  let r = B.compare_with_top_n [ ("AZ", az); ("HK", hk); ("TH", th) ] in
  Alcotest.(check int) "three pairs" 3 r.B.pairs_compared;
  Alcotest.(check bool) "AZ/HK tie detected" true (r.B.topn_ties_s_separates >= 1)

(* --- Extensions --------------------------------------------------------- *)

let test_weighted_score_reduces_to_s () =
  (* Unit weights recover the ordinary score. *)
  let groups = [ Array.make 3 1.0; Array.make 1 1.0 ] in
  check_float "matches closed form"
    (Webdep_emd.Centralization.score_of_counts [| 3; 1 |])
    (Ext.weighted_score groups)

let test_weighted_score_traffic () =
  (* One provider with one heavy site vs many light sites elsewhere:
     weighting shifts the score up relative to unweighted counts. *)
  let heavy = [ [| 100.0 |]; [| 1.0 |]; [| 1.0 |] ] in
  let s_w = Ext.weighted_score heavy in
  (* All mass already in single-site providers: reference = observed on
     the heavy bucket, so only cross terms remain tiny. *)
  Alcotest.(check bool) "bounded" true (s_w >= 0.0 && s_w < 1.0);
  (* Splitting the heavy site's provider into two sites of 50 increases
     concentration of provider mass vs reference. *)
  let merged = Ext.weighted_score [ [| 50.0; 50.0 |]; [| 1.0 |]; [| 1.0 |] ] in
  Alcotest.(check bool) "two-site provider more centralized" true (merged > s_w)

let test_weighted_score_invalid () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Extensions.weighted_score: negative weight") (fun () ->
      ignore (Ext.weighted_score [ [| -1.0 |] ]));
  Alcotest.check_raises "zero"
    (Invalid_argument "Extensions.weighted_score: zero total weight") (fun () ->
      ignore (Ext.weighted_score [ [| 0.0 |] ]))

let test_pairwise_identity () =
  let d = Dist.of_counts [| 5; 3; 2 |] in
  check_float ~eps:1e-9 "self distance" 0.0 (Ext.pairwise d d)

let test_pairwise_scale_free () =
  (* Same shape at different totals compares as (near) zero. *)
  let a = Dist.of_counts [| 6; 3; 1 |] in
  let b = Dist.of_counts [| 60; 30; 10 |] in
  check_float ~eps:1e-9 "scaled twin" 0.0 (Ext.pairwise a b)

let test_pairwise_orders_by_difference () =
  let base = Dist.of_counts [| 5; 3; 2 |] in
  let near = Dist.of_counts [| 6; 3; 1 |] in
  let far = Dist.of_counts [| 10 |] in
  Alcotest.(check bool) "far > near" true (Ext.pairwise base far > Ext.pairwise base near)

let test_sorted_share_l1 () =
  let a = Dist.of_counts [| 5; 5 |] and b = Dist.of_counts [| 10 |] in
  check_float "half" 0.5 (Ext.sorted_share_l1 a b);
  check_float "self" 0.0 (Ext.sorted_share_l1 a a)

let test_pairwise_different_sizes () =
  (* Distributions over different provider counts still compare. *)
  let a = Dist.of_counts [| 4; 3; 2; 1 |] and b = Dist.of_counts [| 10 |] in
  let d = Ext.pairwise a b in
  Alcotest.(check bool) "positive" true (d > 0.0);
  (* Symmetric up to the mass rescaling. *)
  check_float ~eps:1e-9 "symmetric" d (Ext.pairwise b a)

(* --- Tld_analysis --------------------------------------------------------- *)

let e name country = { D.name; country }

let mk_country cc tlds =
  let sites =
    List.concat_map
      (fun ((tld : D.entity), n) ->
        List.init n (fun i ->
            {
              D.domain = Printf.sprintf "%s-%s-%d%s" cc tld.D.name i tld.D.name;
              hosting = None;
              dns = None;
              ca = None;
              tld;
              hosting_geo = None;
              ns_geo = None;
              hosting_anycast = false;
              ns_anycast = false;
              language = None;
            }))
      tlds
  in
  { D.country = cc; sites }

let tld_ds () =
  D.of_country_data
    [
      mk_country "AT"
        [ (e ".com" "US", 4); (e ".at" "AT", 3); (e ".de" "DE", 2); (e ".io" "GB", 1) ];
    ]

let test_tld_categorize () =
  let module T = Webdep.Tld_analysis in
  Alcotest.(check string) "com" ".com" (T.category_name (T.categorize ~cc:"AT" (e ".com" "US")));
  Alcotest.(check string) "local" "local ccTLD"
    (T.category_name (T.categorize ~cc:"AT" (e ".at" "AT")));
  Alcotest.(check string) "external" "external ccTLDs"
    (T.category_name (T.categorize ~cc:"AT" (e ".de" "DE")));
  Alcotest.(check string) "repurposed is global" "global TLDs"
    (T.category_name (T.categorize ~cc:"AT" (e ".io" "GB")));
  Alcotest.(check string) ".uk external elsewhere" "external ccTLDs"
    (T.category_name (T.categorize ~cc:"AT" (e ".uk" "GB")));
  Alcotest.(check string) ".uk local for GB" "local ccTLD"
    (T.category_name (T.categorize ~cc:"GB" (e ".uk" "GB")))

let test_tld_breakdown () =
  let module T = Webdep.Tld_analysis in
  let ds = tld_ds () in
  let b = T.breakdown ds "AT" in
  check_float "com" 0.4 (List.assoc T.Com b);
  check_float "local" 0.3 (List.assoc T.Local_cctld b);
  check_float "external" 0.2 (List.assoc T.External_cctld b);
  check_float "global" 0.1 (List.assoc T.Global_tld b)

let test_tld_external_list () =
  let module T = Webdep.Tld_analysis in
  let ds = tld_ds () in
  (match T.external_cctlds ds "AT" with
  | [ (".de", share) ] -> check_float "de share" 0.2 share
  | _ -> Alcotest.fail "expected only .de");
  Alcotest.(check (option string)) "not above local" None (T.uses_external_over_local ds "AT")

let test_tld_external_over_local () =
  let module T = Webdep.Tld_analysis in
  let ds =
    D.of_country_data [ mk_country "BF" [ (e ".fr" "FR", 5); (e ".bf" "BF", 2); (e ".com" "US", 3) ] ]
  in
  Alcotest.(check (option string)) ".fr outranks .bf" (Some ".fr")
    (T.uses_external_over_local ds "BF")

(* --- Language analysis ------------------------------------------------------- *)

let lang_ds () =
  let site lang home i =
    {
      D.domain = Printf.sprintf "s%d-%s.af" i (Option.value ~default:"x" lang);
      hosting = Option.map (fun h -> e ("Host-" ^ h) h) home;
      dns = None;
      ca = None;
      tld = e ".af" "AF";
      hosting_geo = None;
      ns_geo = None;
      hosting_anycast = false;
      ns_anycast = false;
      language = lang;
    }
  in
  (* 10 sites: 3 Persian hosted in IR, 1 Persian local, 4 Pashto local,
     2 English on US providers. *)
  let sites =
    List.init 3 (site (Some "fa") (Some "IR"))
    @ List.init 1 (fun i -> site (Some "fa") (Some "AF") (100 + i))
    @ List.init 4 (fun i -> site (Some "ps") (Some "AF") (200 + i))
    @ List.init 2 (fun i -> site (Some "en") (Some "US") (300 + i))
  in
  D.of_country_data [ { D.country = "AF"; sites } ]

let test_language_share () =
  let ds = lang_ds () in
  check_float "fa share" 0.4 (Webdep.Language_analysis.share_of_language ds "AF" "fa");
  check_float "ps share" 0.4 (Webdep.Language_analysis.share_of_language ds "AF" "ps")

let test_language_hosted_in () =
  let ds = lang_ds () in
  check_float "persian in iran" 0.75
    (Webdep.Language_analysis.hosted_in ds "AF" ~language:"fa" ~home:"IR");
  check_float "no match" 0.0
    (Webdep.Language_analysis.hosted_in ds "AF" ~language:"zz" ~home:"IR")

let test_language_breakdown () =
  let ds = lang_ds () in
  match Webdep.Language_analysis.language_breakdown ds "AF" with
  | (first, share) :: _ ->
      Alcotest.(check bool) "fa or ps first" true (first = "fa" || first = "ps");
      check_float "top share" 0.4 share
  | [] -> Alcotest.fail "empty"

let test_language_crosstab () =
  let ds = lang_ds () in
  match Webdep.Language_analysis.language_home_crosstab ds "AF" ~language:"fa" with
  | ("IR", share) :: _ -> check_float "IR top" 0.75 share
  | _ -> Alcotest.fail "IR expected on top"

(* --- Langdetect -------------------------------------------------------------- *)

let test_langdetect_mostly_right () =
  let right = ref 0 in
  for i = 0 to 999 do
    let domain = Printf.sprintf "s%04d.example" i in
    if Webdep_pipeline.Langdetect.detect ~domain "fa" = "fa" then incr right
  done;
  let frac = float_of_int !right /. 1000.0 in
  if frac < 0.94 || frac > 0.995 then Alcotest.failf "accuracy %.3f" frac

let test_langdetect_deterministic () =
  Alcotest.(check string) "stable"
    (Webdep_pipeline.Langdetect.detect ~domain:"a.example" "ru")
    (Webdep_pipeline.Langdetect.detect ~domain:"a.example" "ru")

let test_langdetect_confusions_plausible () =
  Alcotest.(check string) "fa->ar" "ar" (Webdep_pipeline.Langdetect.confusable "fa");
  Alcotest.(check string) "cs->sk" "sk" (Webdep_pipeline.Langdetect.confusable "cs")

(* --- Redundancy ----------------------------------------------------------------- *)

let test_redundancy_basic () =
  let module Red = Webdep.Redundancy in
  let input =
    [ { Red.domain = "a"; providers = [ "P" ] };
      { Red.domain = "b"; providers = [ "P" ] };
      { Red.domain = "c"; providers = [ "P"; "Q" ] };
      { Red.domain = "d"; providers = [ "R" ] } ]
  in
  let r = Red.analyze input in
  Alcotest.(check int) "total" 4 r.Red.total_sites;
  Alcotest.(check int) "single homed" 3 r.Red.single_homed;
  (match r.Red.critical_counts with
  | ("P", 2) :: ("R", 1) :: [] -> ()
  | _ -> Alcotest.fail "critical counts wrong");
  check_float "fraction" 0.75 (Red.single_homed_fraction r);
  (* spof counts: (2,1,1) over C=4 -> HHI 6/16 -> S = 0.375 - 0.25. *)
  check_float "spof score" 0.125 r.Red.spof_score

let test_redundancy_all_redundant () =
  let module Red = Webdep.Redundancy in
  let input =
    [ { Red.domain = "a"; providers = [ "P"; "Q" ] };
      { Red.domain = "b"; providers = [ "Q"; "R" ] } ]
  in
  let r = Red.analyze input in
  Alcotest.(check int) "none single" 0 r.Red.single_homed;
  check_float "fully decentralized" 0.0 r.Red.spof_score

let test_redundancy_invalid () =
  let module Red = Webdep.Redundancy in
  Alcotest.check_raises "empty" (Invalid_argument "Redundancy.analyze: no sites") (fun () ->
      ignore (Red.analyze []));
  Alcotest.check_raises "no provider"
    (Invalid_argument "Redundancy.analyze: site with no provider: a") (fun () ->
      ignore (Red.analyze [ { Red.domain = "a"; providers = [] } ]))

let test_redundancy_duplicate_providers_collapse () =
  let module Red = Webdep.Redundancy in
  let r = Red.analyze [ { Red.domain = "a"; providers = [ "P"; "P" ] } ] in
  Alcotest.(check int) "duplicates collapse to single-homed" 1 r.Red.single_homed

(* --- Export ------------------------------------------------------------------------ *)

let export_ds () =
  D.of_country_data
    [
      {
        D.country = "AA";
        sites =
          List.init 4 (fun i ->
              {
                D.domain = Printf.sprintf "s%d.aa" i;
                hosting = Some (e (if i < 3 then "Big, Co" else "Small\"Co") "US");
                dns = None;
                ca = None;
                tld = e ".aa" "AA";
                hosting_geo = None;
                ns_geo = None;
                hosting_anycast = false;
                ns_anycast = false;
                language = None;
              });
      };
      {
        D.country = "BB";
        sites =
          List.init 2 (fun i ->
              {
                D.domain = Printf.sprintf "s%d.bb" i;
                hosting = Some (e "Solo" "BB");
                dns = None;
                ca = None;
                tld = e ".bb" "BB";
                hosting_geo = None;
                ns_geo = None;
                hosting_anycast = false;
                ns_anycast = false;
                language = None;
              });
      };
    ]

let test_export_escape () =
  Alcotest.(check string) "plain" "abc" (Webdep.Export.escape_field "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Webdep.Export.escape_field "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Webdep.Export.escape_field "a\"b")

let test_export_scores_roundtrip () =
  let ds = export_ds () in
  let doc = Webdep.Export.scores_csv ds Hosting in
  let parsed = Webdep.Export.scores_of_csv doc in
  Alcotest.(check int) "two rows" 2 (List.length parsed);
  List.iter
    (fun (cc, s) ->
      check_float ("score " ^ cc) (Webdep.Metrics.centralization ds Hosting cc) s ~eps:1e-5)
    parsed

let test_export_distribution_quotes_names () =
  let ds = export_ds () in
  let doc = Webdep.Export.distribution_csv ds Hosting "AA" in
  Alcotest.(check bool) "comma name quoted" true
    (String.length doc > 0
    && (let lines = String.split_on_char '\n' doc in
        List.exists (fun l -> String.length l > 0 && String.contains l '"') lines))

let test_export_insularity_and_usage_headers () =
  let ds = export_ds () in
  let ins = Webdep.Export.insularity_csv ds Hosting in
  Alcotest.(check bool) "insularity header" true
    (String.length ins >= 23 && String.sub ins 0 23 = "rank,country,insularity");
  let usage = Webdep.Export.usage_csv ds Hosting in
  Alcotest.(check bool) "usage header" true
    (String.length usage >= 8 && String.sub usage 0 8 = "provider")

(* --- Report_md -------------------------------------------------------------- *)

let test_report_md_structure () =
  let ds = export_ds () in
  let options =
    { Webdep.Report_md.default_options with case_studies = []; include_classes = false }
  in
  let doc = Webdep.Report_md.generate ~options ds in
  let has needle =
    let nl = String.length needle and dl = String.length doc in
    let rec scan i = i + nl <= dl && (String.sub doc i nl = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "title" true (has "# Web dependence report");
  Alcotest.(check bool) "hosting section" true (has "## Hosting layer");
  Alcotest.(check bool) "tld section" true (has "## Tld layer");
  Alcotest.(check bool) "markdown table" true (has "|---|");
  Alcotest.(check bool) "no classes section" true (not (has "provider classes"))

let test_report_md_with_classes_and_cases () =
  let ds = export_ds () in
  let options =
    { Webdep.Report_md.top_rows = 2; case_studies = [ ("AA", "US") ];
      include_classes = true }
  in
  let doc = Webdep.Report_md.generate ~options ds in
  let has needle =
    let nl = String.length needle and dl = String.length doc in
    let rec scan i = i + nl <= dl && (String.sub doc i nl = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "classes" true (has "## Hosting provider classes");
  Alcotest.(check bool) "case study row" true (has "| AA | US |")

let test_report_md_layer_section () =
  let ds = export_ds () in
  let section = Webdep.Report_md.layer_section ds Hosting ~top_rows:1 in
  Alcotest.(check bool) "one ranked row" true
    (List.length
       (List.filter
          (fun l -> String.length l > 2 && l.[0] = '|' && l.[2] = '1')
          (String.split_on_char '\n' section))
    >= 1)

let test_export_bad_csv () =
  Alcotest.check_raises "bad header"
    (Invalid_argument "Export.scores_of_csv: unexpected header") (fun () ->
      ignore (Webdep.Export.scores_of_csv "a,b,c\n1,2,3\n"))

let () =
  Alcotest.run "webdep_extensions"
    [
      ( "baselines",
        [
          Alcotest.test_case "gini uniform" `Quick test_gini_uniform;
          Alcotest.test_case "gini blind to n" `Quick test_gini_blind_to_provider_count;
          Alcotest.test_case "gini concentrated" `Quick test_gini_concentrated;
          Alcotest.test_case "shannon evenness" `Quick test_shannon_evenness;
          Alcotest.test_case "effective providers" `Quick test_effective_providers;
          Alcotest.test_case "gini single" `Quick test_gini_single_provider;
          Alcotest.test_case "effective uneven" `Quick test_effective_providers_uneven;
          Alcotest.test_case "top-n disagreement" `Quick test_topn_disagreement;
        ] );
      ( "emd extensions",
        [
          Alcotest.test_case "weighted reduces to S" `Quick test_weighted_score_reduces_to_s;
          Alcotest.test_case "weighted traffic" `Quick test_weighted_score_traffic;
          Alcotest.test_case "weighted invalid" `Quick test_weighted_score_invalid;
          Alcotest.test_case "pairwise identity" `Quick test_pairwise_identity;
          Alcotest.test_case "pairwise scale free" `Quick test_pairwise_scale_free;
          Alcotest.test_case "pairwise ordering" `Quick test_pairwise_orders_by_difference;
          Alcotest.test_case "sorted share l1" `Quick test_sorted_share_l1;
          Alcotest.test_case "pairwise sizes" `Quick test_pairwise_different_sizes;
        ] );
      ( "tld analysis",
        [
          Alcotest.test_case "categorize" `Quick test_tld_categorize;
          Alcotest.test_case "breakdown" `Quick test_tld_breakdown;
          Alcotest.test_case "external list" `Quick test_tld_external_list;
          Alcotest.test_case "external over local" `Quick test_tld_external_over_local;
        ] );
      ( "language",
        [
          Alcotest.test_case "share" `Quick test_language_share;
          Alcotest.test_case "hosted in" `Quick test_language_hosted_in;
          Alcotest.test_case "breakdown" `Quick test_language_breakdown;
          Alcotest.test_case "crosstab" `Quick test_language_crosstab;
          Alcotest.test_case "langdetect accuracy" `Quick test_langdetect_mostly_right;
          Alcotest.test_case "langdetect deterministic" `Quick test_langdetect_deterministic;
          Alcotest.test_case "langdetect confusions" `Quick test_langdetect_confusions_plausible;
        ] );
      ( "redundancy",
        [
          Alcotest.test_case "basic" `Quick test_redundancy_basic;
          Alcotest.test_case "all redundant" `Quick test_redundancy_all_redundant;
          Alcotest.test_case "invalid" `Quick test_redundancy_invalid;
          Alcotest.test_case "duplicates collapse" `Quick test_redundancy_duplicate_providers_collapse;
        ] );
      ( "export",
        [
          Alcotest.test_case "escape" `Quick test_export_escape;
          Alcotest.test_case "scores roundtrip" `Quick test_export_scores_roundtrip;
          Alcotest.test_case "distribution quoting" `Quick test_export_distribution_quotes_names;
          Alcotest.test_case "headers" `Quick test_export_insularity_and_usage_headers;
          Alcotest.test_case "bad csv" `Quick test_export_bad_csv;
        ] );
      ( "report_md",
        [
          Alcotest.test_case "structure" `Quick test_report_md_structure;
          Alcotest.test_case "classes and cases" `Quick test_report_md_with_classes_and_cases;
          Alcotest.test_case "layer section" `Quick test_report_md_layer_section;
        ] );
    ]
