(* Noise-aware bench regression gate: current run vs. saved baseline.

   Raw per-phase wall times are useless across machines — a laptop and a
   CI runner differ by a constant-ish factor.  The gate estimates that
   factor as the *median* of cur/base ratios over all phases long enough
   to trust, then flags a phase only when its own ratio exceeds the
   median by more than the tolerance: a uniformly slower machine moves
   the median, a genuinely regressed phase sticks out from it.

   Tolerance comes from measured noise, not a magic constant: callers
   probe run-to-run spread (coefficient of variation of a repeated
   workload) and the gate allows max(0.5, 6*cv) relative headroom above
   the speed factor, with a 50 ms absolute floor so microsecond phases
   never alarm.

   Allocation is machine-independent, so minor-word counts gate on raw
   ratios: >30 % growth AND >1e6 extra words is a regression.  A phase
   present in the baseline but absent from the current run fails — a
   deleted benchmark should be a deliberate baseline update, not a
   silent pass. *)

module Json = Webdep_json

type phase = { name : string; secs : float; minor_words : float }

type check = Time | Alloc | Missing

type verdict = {
  phase : string;
  check : check;
  base : float;
  cur : float;
  ratio : float;  (* speed-normalized for Time, raw for Alloc, nan for Missing *)
  limit : float;
  ok : bool;
}

type report = {
  speed_factor : float;
  noise_cv : float;
  time_tolerance : float;
  verdicts : verdict list;
  ok : bool;
}

(* Phases below this are timer noise; exclude from the speed-factor
   estimate and never alarm on them. *)
let abs_floor_s = 0.05
let alloc_rel_tolerance = 0.3
let alloc_floor_words = 1e6

let phases_of_json j =
  let obj k = match Json.member k j with Some (Json.Obj l) -> l | _ -> [] in
  let num = function Json.Float v -> v | Json.Int i -> float_of_int i | _ -> 0.0 in
  let words = obj "phases_minor_words" in
  List.map
    (fun (name, v) ->
      {
        name;
        secs = num v;
        minor_words = (match List.assoc_opt name words with Some w -> num w | None -> 0.0);
      })
    (obj "phases_s")

(* Run-to-run spread of [f]: coefficient of variation of its wall time
   over [runs] repetitions (first run discarded as warm-up). *)
let noise_probe ?(runs = 5) f =
  let time () =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  ignore (time ());
  let samples = List.init (max 2 runs) (fun _ -> time ()) in
  let n = float_of_int (List.length samples) in
  let mean = List.fold_left ( +. ) 0.0 samples /. n in
  if mean <= 0.0 then 0.0
  else
    let var =
      List.fold_left (fun acc s -> acc +. ((s -. mean) ** 2.0)) 0.0 samples /. n
    in
    sqrt var /. mean

let median = function
  | [] -> 1.0
  | l ->
      let a = Array.of_list l in
      Array.sort Float.compare a;
      let n = Array.length a in
      if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

(* Clamped above: a pathologically jittery probe (tiny workload, cold
   caches, GC pause in one sample) must not disable the gate outright. *)
let time_tolerance noise_cv = Float.max 0.5 (Float.min 2.0 (6.0 *. noise_cv))

let compare_runs ?(noise_cv = 0.0) ~baseline ~current () =
  let find l name = List.find_opt (fun p -> p.name = name) l in
  let eligible =
    List.filter_map
      (fun b ->
        match find current b.name with
        | Some c when b.secs >= abs_floor_s && c.secs > 0.0 -> Some (c.secs /. b.secs)
        | _ -> None)
      baseline
  in
  let speed_factor = median eligible in
  let tol = time_tolerance noise_cv in
  let verdicts =
    List.concat_map
      (fun b ->
        match find current b.name with
        | None ->
            [ { phase = b.name; check = Missing; base = b.secs; cur = 0.0;
                ratio = Float.nan; limit = 0.0; ok = false } ]
        | Some c ->
            let time_v =
              if b.secs < abs_floor_s then []
              else
                let norm = c.secs /. b.secs /. speed_factor in
                let excess_s = c.secs -. (b.secs *. speed_factor) in
                let ok = norm -. 1.0 <= tol || excess_s <= abs_floor_s in
                [ { phase = b.name; check = Time; base = b.secs; cur = c.secs;
                    ratio = norm; limit = 1.0 +. tol; ok } ]
            in
            let alloc_v =
              if b.minor_words < alloc_floor_words then []
              else
                let ratio = c.minor_words /. b.minor_words in
                let ok =
                  ratio -. 1.0 <= alloc_rel_tolerance
                  || c.minor_words -. b.minor_words <= alloc_floor_words
                in
                [ { phase = b.name; check = Alloc; base = b.minor_words;
                    cur = c.minor_words; ratio; limit = 1.0 +. alloc_rel_tolerance; ok } ]
            in
            time_v @ alloc_v)
      baseline
  in
  {
    speed_factor;
    noise_cv;
    time_tolerance = tol;
    verdicts;
    ok = List.for_all (fun (v : verdict) -> v.ok) verdicts;
  }

let check_name = function Time -> "time" | Alloc -> "alloc" | Missing -> "missing"

let render r =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "bench compare: speed factor %.3fx (median cur/base), noise cv %.3f, time tolerance +%.0f%%\n"
       r.speed_factor r.noise_cv (r.time_tolerance *. 100.0));
  Buffer.add_string b
    (Printf.sprintf "%-24s %-8s %12s %12s %9s %9s  %s\n" "phase" "check" "base" "current"
       "ratio" "limit" "verdict");
  List.iter
    (fun v ->
      let fmt x =
        match v.check with
        | Alloc -> Printf.sprintf "%.0f" x
        | _ -> Printf.sprintf "%.4fs" x
      in
      Buffer.add_string b
        (Printf.sprintf "%-24s %-8s %12s %12s %9s %9s  %s\n" v.phase
           (check_name v.check) (fmt v.base)
           (match v.check with Missing -> "-" | _ -> fmt v.cur)
           (if Float.is_nan v.ratio then "-" else Printf.sprintf "%.3f" v.ratio)
           (match v.check with Missing -> "-" | _ -> Printf.sprintf "%.3f" v.limit)
           (if v.ok then "ok" else "REGRESSION")))
    r.verdicts;
  Buffer.add_string b
    (if r.ok then "bench compare: OK\n" else "bench compare: REGRESSION detected\n");
  Buffer.contents b
