(** Hotspot aggregation: span events -> per-label self/cumulative totals. *)

type row = {
  label : string;
  calls : int;
  self_s : float;  (** wall time excluding nested child spans *)
  cum_s : float;  (** wall time including children (recursive labels double-count) *)
  self_minor_words : float;
  cum_minor_words : float;
  promoted_words : float;
  major_words : float;
  major_collections : int;
}

(** Fold a span stream into per-label rows, sorted by self time
    descending.  Events may arrive in any order; nesting is recovered
    from (lane, close time, depth). *)
val aggregate : Webdep_obs.Sink.event list -> row list

(** In-memory span recorder.  Install [collector_sink c] (possibly teed
    with an export sink) around a workload, then [aggregate (events c)]. *)
type collector

val collector : unit -> collector
val collector_sink : collector -> Webdep_obs.Sink.t
val events : collector -> Webdep_obs.Sink.event list

(** Fixed-width hotspot table, top [top] rows (default 20) plus a
    totals footer. *)
val render : ?top:int -> row list -> string
