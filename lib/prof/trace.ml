(* Chrome trace-event export: spans as a Perfetto-loadable timeline.

   The sink buffers every finished span and [flush] (re)writes the whole
   file as one JSON document in the Trace Event Format that Perfetto and
   chrome://tracing load directly:

     { "displayTimeUnit": "ms",
       "traceEvents": [
         {"ph":"M", ... thread_name metadata, one per lane ...},
         {"ph":"X", "name":..., "ts":<us>, "dur":<us>,
          "pid":1, "tid":<lane>, "args":{...}}, ... ] }

   Every event lands on the lane (OCaml domain) that closed the span, so
   a --jobs N sweep renders as N parallel tracks with proper nesting —
   a flamegraph-style timeline per domain.  The args object carries the
   span's GC deltas, its nesting depth and its string attributes, which
   is enough for [load] to reconstruct the original events and feed them
   back through the profiler. *)

module Json = Webdep_json
module Sink = Webdep_obs.Sink

let us t = t *. 1e6

let json_of_event (ev : Sink.event) =
  let args =
    [
      ("depth", Json.Int ev.Sink.depth);
      ("minor_words", Json.Float ev.Sink.gc.Sink.minor_words);
      ("promoted_words", Json.Float ev.Sink.gc.Sink.promoted_words);
      ("major_words", Json.Float ev.Sink.gc.Sink.major_words);
      ("major_collections", Json.Int ev.Sink.gc.Sink.major_collections);
    ]
    @ List.map (fun (k, v) -> (k, Json.String v)) ev.Sink.attrs
  in
  Json.Obj
    [
      ("name", Json.String ev.Sink.name);
      ("cat", Json.String "webdep");
      ("ph", Json.String "X");
      ("ts", Json.Float (us ev.Sink.start_s));
      ("dur", Json.Float (us ev.Sink.duration_s));
      ("pid", Json.Int 1);
      ("tid", Json.Int ev.Sink.lane);
      ("args", Json.Obj args);
    ]

let lane_name l = if l = 0 then "domain 0 (main)" else Printf.sprintf "domain %d" l

let metadata_events events =
  let lanes = List.sort_uniq compare (List.map (fun ev -> ev.Sink.lane) events) in
  Json.Obj
    [
      ("name", Json.String "process_name");
      ("ph", Json.String "M");
      ("pid", Json.Int 1);
      ("args", Json.Obj [ ("name", Json.String "webdep") ]);
    ]
  :: List.map
       (fun l ->
         Json.Obj
           [
             ("name", Json.String "thread_name");
             ("ph", Json.String "M");
             ("pid", Json.Int 1);
             ("tid", Json.Int l);
             ("args", Json.Obj [ ("name", Json.String (lane_name l)) ]);
           ])
       lanes

let document events =
  (* Deterministic event order — lane, then time, then nesting — so the
     exported file is stable for a given set of spans. *)
  let sorted =
    List.stable_sort
      (fun (a : Sink.event) b ->
        match compare a.Sink.lane b.Sink.lane with
        | 0 -> (
            match Float.compare a.Sink.start_s b.Sink.start_s with
            | 0 -> compare a.Sink.depth b.Sink.depth
            | c -> c)
        | c -> c)
      events
  in
  Json.Obj
    [
      ("displayTimeUnit", Json.String "ms");
      ("traceEvents", Json.List (metadata_events sorted @ List.map json_of_event sorted));
    ]

let write path events =
  let oc = open_out path in
  output_string oc (Json.to_string (document events));
  output_char oc '\n';
  close_out oc

(* The sink keeps everything emitted so far; each flush rewrites [path]
   with the full set, so the file is a valid trace after every flush. *)
let sink path =
  let lock = Mutex.create () in
  let events = ref [] in
  {
    Sink.emit =
      (fun ev -> Mutex.protect lock (fun () -> events := ev :: !events));
    flush =
      (fun () -> Mutex.protect lock (fun () -> write path (List.rev !events)));
  }

(* --- loading ------------------------------------------------------------ *)

let float_of = function
  | Json.Float v -> v
  | Json.Int i -> float_of_int i
  | _ -> 0.0

let int_of = function Json.Int i -> i | Json.Float v -> int_of_float v | _ -> 0

let event_of_json j =
  match (Json.member "ph" j, Json.member "name" j) with
  | Some (Json.String "X"), Some (Json.String name) ->
      let get k = Json.member k j in
      let args = match get "args" with Some (Json.Obj a) -> a | _ -> [] in
      let arg k = List.assoc_opt k args in
      let gc_keys =
        [ "depth"; "minor_words"; "promoted_words"; "major_words"; "major_collections" ]
      in
      let attrs =
        List.filter_map
          (fun (k, v) ->
            match v with
            | Json.String s when not (List.mem k gc_keys) -> Some (k, s)
            | _ -> None)
          args
      in
      Some
        {
          Sink.name;
          attrs;
          start_s = float_of (Option.value ~default:Json.Null (get "ts")) /. 1e6;
          duration_s = float_of (Option.value ~default:Json.Null (get "dur")) /. 1e6;
          depth = int_of (Option.value ~default:Json.Null (arg "depth"));
          lane = int_of (Option.value ~default:Json.Null (get "tid"));
          gc =
            {
              Sink.minor_words = float_of (Option.value ~default:Json.Null (arg "minor_words"));
              promoted_words =
                float_of (Option.value ~default:Json.Null (arg "promoted_words"));
              major_words = float_of (Option.value ~default:Json.Null (arg "major_words"));
              major_collections =
                int_of (Option.value ~default:Json.Null (arg "major_collections"));
            };
        }
  | _ -> None

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load path =
  let doc = Json.parse (read_file path) in
  let events =
    match Json.member "traceEvents" doc with
    | Some (Json.List l) -> l
    | _ -> ( match doc with Json.List l -> l | _ -> [])
  in
  List.filter_map event_of_json events
