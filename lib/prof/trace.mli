(** Chrome trace-event (Perfetto-loadable) export of span streams.

    Load the written file in https://ui.perfetto.dev or chrome://tracing:
    each OCaml domain (pool lane) renders as its own track, nested spans
    as stacked slices — a flamegraph-style timeline of the run. *)

(** A sink that buffers every span and (re)writes [path] as a complete
    Chrome trace JSON document on each flush. *)
val sink : string -> Webdep_obs.Sink.t

(** Write the given events to [path] as a trace document. *)
val write : string -> Webdep_obs.Sink.event list -> unit

(** Parse a trace document back into span events (inverse of [write] up
    to event order and float rounding). *)
val load : string -> Webdep_obs.Sink.event list

(** The document as a JSON tree (exposed for tests). *)
val document : Webdep_obs.Sink.event list -> Webdep_obs.Json.t
