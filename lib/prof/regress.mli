(** Noise-aware bench regression gate: current run vs. saved baseline.

    Per-phase wall-time ratios are normalized by their median (the
    "speed factor") so a uniformly faster or slower machine never
    alarms; only phases that stick out from the median beyond a
    noise-derived tolerance fail.  Minor-allocation counts are
    machine-independent and gate on raw ratios. *)

type phase = { name : string; secs : float; minor_words : float }

type check = Time | Alloc | Missing

type verdict = {
  phase : string;
  check : check;
  base : float;
  cur : float;
  ratio : float;  (** speed-normalized for [Time], raw for [Alloc], nan for [Missing] *)
  limit : float;
  ok : bool;
}

type report = {
  speed_factor : float;  (** median cur/base over phases >= 50 ms *)
  noise_cv : float;
  time_tolerance : float;  (** max(0.5, 6 * noise_cv), clamped to at most 2.0 *)
  verdicts : verdict list;
  ok : bool;
}

(** Extract phases from a bench JSON document ("phases_s" +
    "phases_minor_words" objects). *)
val phases_of_json : Webdep_obs.Json.t -> phase list

(** Coefficient of variation of [f]'s wall time over [runs] timed
    repetitions (plus one discarded warm-up). *)
val noise_probe : ?runs:int -> (unit -> unit) -> float

(** Tolerance the gate derives from a measured noise cv. *)
val time_tolerance : float -> float

val compare_runs :
  ?noise_cv:float -> baseline:phase list -> current:phase list -> unit -> report

(** Human-readable verdict table. *)
val render : report -> string
