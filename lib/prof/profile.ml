(* Hotspot aggregation: span events -> per-label self/cumulative totals.

   A span's cumulative cost is its own duration (and GC deltas); its
   self cost subtracts the children nested directly inside it.  Events
   arrive in close order (a child always closes before its parent) and
   carry their nesting depth, so a per-lane accumulator indexed by depth
   recovers the tree without needing parent pointers: when a span at
   depth d closes, everything accumulated at depth d+1 since the last
   close at d is exactly its children's cumulative total.

   Events from different lanes never nest across lanes — each worker
   domain runs its own stack — so lanes aggregate independently and the
   label totals merge at the end.  Recursive labels double-count their
   nested cumulative totals, the usual flat-profile caveat; self totals
   always add up to the wall clock. *)

module Sink = Webdep_obs.Sink

type row = {
  label : string;
  calls : int;
  self_s : float;
  cum_s : float;
  self_minor_words : float;
  cum_minor_words : float;
  promoted_words : float;
  major_words : float;
  major_collections : int;
}

let zero_row label =
  {
    label;
    calls = 0;
    self_s = 0.0;
    cum_s = 0.0;
    self_minor_words = 0.0;
    cum_minor_words = 0.0;
    promoted_words = 0.0;
    major_words = 0.0;
    major_collections = 0;
  }

(* Restore close order for events that lost it (e.g. a loaded trace,
   sorted by start time): close = start + duration ascending, deeper
   spans first on ties (a zero-width parent closes after its zero-width
   child).  The sort is stable, so already-ordered collector streams
   pass through unchanged. *)
let close_order events =
  List.stable_sort
    (fun (a : Sink.event) b ->
      match
        Float.compare (a.Sink.start_s +. a.Sink.duration_s)
          (b.Sink.start_s +. b.Sink.duration_s)
      with
      | 0 -> compare b.Sink.depth a.Sink.depth
      | c -> c)
    events

let aggregate events =
  let by_lane = Hashtbl.create 8 in
  List.iter
    (fun (ev : Sink.event) ->
      let q =
        match Hashtbl.find_opt by_lane ev.Sink.lane with
        | Some q -> q
        | None ->
            let q = ref [] in
            Hashtbl.add by_lane ev.Sink.lane q;
            q
      in
      q := ev :: !q)
    events;
  let rows : (string, row) Hashtbl.t = Hashtbl.create 32 in
  let lanes = Hashtbl.fold (fun lane q acc -> (lane, List.rev !q) :: acc) by_lane [] in
  List.iter
    (fun (_, lane_events) ->
      (* children.(d) = (duration, minor words) closed at depth d since
         the last close at depth d-1. *)
      let child_dur = Hashtbl.create 8 and child_minor = Hashtbl.create 8 in
      let get tbl d = Option.value ~default:0.0 (Hashtbl.find_opt tbl d) in
      let add tbl d v = Hashtbl.replace tbl d (get tbl d +. v) in
      List.iter
        (fun (ev : Sink.event) ->
          let d = ev.Sink.depth in
          let self_s = Float.max 0.0 (ev.Sink.duration_s -. get child_dur (d + 1)) in
          let self_minor =
            Float.max 0.0 (ev.Sink.gc.Sink.minor_words -. get child_minor (d + 1))
          in
          Hashtbl.remove child_dur (d + 1);
          Hashtbl.remove child_minor (d + 1);
          add child_dur d ev.Sink.duration_s;
          add child_minor d ev.Sink.gc.Sink.minor_words;
          let r =
            Option.value ~default:(zero_row ev.Sink.name)
              (Hashtbl.find_opt rows ev.Sink.name)
          in
          Hashtbl.replace rows ev.Sink.name
            {
              r with
              calls = r.calls + 1;
              self_s = r.self_s +. self_s;
              cum_s = r.cum_s +. ev.Sink.duration_s;
              self_minor_words = r.self_minor_words +. self_minor;
              cum_minor_words = r.cum_minor_words +. ev.Sink.gc.Sink.minor_words;
              promoted_words = r.promoted_words +. ev.Sink.gc.Sink.promoted_words;
              major_words = r.major_words +. ev.Sink.gc.Sink.major_words;
              major_collections =
                r.major_collections + ev.Sink.gc.Sink.major_collections;
            })
        (close_order lane_events))
    lanes;
  Hashtbl.fold (fun _ r acc -> r :: acc) rows []
  |> List.sort (fun a b ->
         match Float.compare b.self_s a.self_s with
         | 0 -> compare a.label b.label
         | c -> c)

(* --- collector ---------------------------------------------------------- *)

(* In-memory recorder; install [sink c] (or tee it with an export sink)
   around the workload, then [aggregate (events c)]. *)
type collector = { lock : Mutex.t; mutable events : Sink.event list }

let collector () = { lock = Mutex.create (); events = [] }

let collector_sink c =
  {
    Sink.emit = (fun ev -> Mutex.protect c.lock (fun () -> c.events <- ev :: c.events));
    flush = ignore;
  }

let events c = Mutex.protect c.lock (fun () -> List.rev c.events)

(* --- rendering ---------------------------------------------------------- *)

let pp_words w =
  if Float.abs w >= 1e9 then Printf.sprintf "%.2fGw" (w /. 1e9)
  else if Float.abs w >= 1e6 then Printf.sprintf "%.2fMw" (w /. 1e6)
  else if Float.abs w >= 1e3 then Printf.sprintf "%.1fkw" (w /. 1e3)
  else Printf.sprintf "%.0fw" w

let pp_secs s =
  if s >= 100.0 then Printf.sprintf "%.0fs" s
  else if s >= 1.0 then Printf.sprintf "%.2fs" s
  else if s >= 1e-3 then Printf.sprintf "%.2fms" (s *. 1e3)
  else Printf.sprintf "%.0fus" (s *. 1e6)

let render ?(top = 20) rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-36s %7s %10s %10s %10s %10s %8s %6s\n" "span label" "calls"
       "self" "cum" "self alloc" "cum alloc" "major" "majGC");
  let total_self = List.fold_left (fun acc r -> acc +. r.self_s) 0.0 rows in
  let total_minor = List.fold_left (fun acc r -> acc +. r.self_minor_words) 0.0 rows in
  List.iteri
    (fun i r ->
      if i < top then
        Buffer.add_string b
          (Printf.sprintf "%-36s %7d %10s %10s %10s %10s %8s %6d\n" r.label r.calls
             (pp_secs r.self_s) (pp_secs r.cum_s)
             (pp_words r.self_minor_words)
             (pp_words r.cum_minor_words) (pp_words r.major_words) r.major_collections))
    rows;
  let shown = min top (List.length rows) in
  Buffer.add_string b
    (Printf.sprintf "-- %d of %d labels; total self %s, total self alloc %s\n" shown
       (List.length rows) (pp_secs total_self) (pp_words total_minor));
  Buffer.contents b
