(* Minimal JSON tree: just enough for the metrics snapshot, the JSON-lines
   trace sink and the round-trip tests.  No external dependency — the
   printer escapes per RFC 8259 and the parser is a small recursive
   descent over the same subset the printer emits. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ---------------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | ch when Char.code ch < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s;
  Buffer.add_char buf '"'

(* Integral floats print with a trailing ".0" so the parser can tell them
   from ints; %.17g keeps every float64 exactly round-trippable.  JSON has
   no nan/inf — emit null. *)
let float_repr v =
  if Float.is_nan v || Float.abs v = Float.infinity then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.17g" v

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float v -> Buffer.add_string buf (float_repr v)
  | String s -> escape buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* --- parsing ----------------------------------------------------------- *)

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect ch =
    if peek () = Some ch then advance () else fail (Printf.sprintf "expected %c" ch)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char buf '"'; loop ()
          | Some '\\' -> advance (); Buffer.add_char buf '\\'; loop ()
          | Some '/' -> advance (); Buffer.add_char buf '/'; loop ()
          | Some 'n' -> advance (); Buffer.add_char buf '\n'; loop ()
          | Some 'r' -> advance (); Buffer.add_char buf '\r'; loop ()
          | Some 't' -> advance (); Buffer.add_char buf '\t'; loop ()
          | Some 'b' -> advance (); Buffer.add_char buf '\b'; loop ()
          | Some 'f' -> advance (); Buffer.add_char buf '\012'; loop ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              (* The snapshot only escapes control characters; decode the
                 BMP code point as UTF-8. *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end;
              loop ()
          | _ -> fail "bad escape")
      | Some ch -> advance (); Buffer.add_char buf ch; loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char ch =
      match ch with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') tok then
      match float_of_string_opt tok with
      | Some v -> Float v
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          fields []
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_opt s = match parse s with v -> Some v | exception Parse_error _ -> None

(* Convenience accessors for tests and tooling. *)
let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
