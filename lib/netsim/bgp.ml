type announcement = { prefix : Ipv4.prefix; path : int list }

let origin a =
  match List.rev a.path with o :: _ -> o | [] -> invalid_arg "Bgp.origin: empty path"

type t = {
  routes : (string, announcement list) Hashtbl.t;  (* keyed by prefix string *)
  mutable count : int;
}

let create () = { routes = Hashtbl.create 4096; count = 0 }

let announce t prefix ~path =
  if path = [] then invalid_arg "Bgp.announce: empty AS path";
  let key = Ipv4.prefix_to_string prefix in
  let existing = Option.value ~default:[] (Hashtbl.find_opt t.routes key) in
  Hashtbl.replace t.routes key ({ prefix; path } :: existing);
  t.count <- t.count + 1

(* Shortest AS path wins; ties break toward the lowest origin ASN —
   deterministic, like a route collector's stable choice. *)
let better a b =
  match compare (List.length a.path) (List.length b.path) with
  | 0 -> compare (origin a) (origin b) < 0
  | c -> c < 0

let best_of = function
  | [] -> None
  | first :: rest ->
      Some (List.fold_left (fun best a -> if better a best then a else best) first rest)

let best_table t =
  let table = Prefix_table.create () in
  Hashtbl.iter
    (fun _ anns ->
      match best_of anns with
      | Some best -> Prefix_table.add table best.prefix best
      | None -> ())
    t.routes;
  table

let best_route t addr = Prefix_table.lookup (best_table t) addr

let derive_pfx2as t =
  let table = Prefix_table.create () in
  Hashtbl.iter
    (fun _ anns ->
      match best_of anns with
      | Some best -> Prefix_table.add table best.prefix (origin best)
      | None -> ())
    t.routes;
  table

let moas t =
  Hashtbl.fold
    (fun _ anns acc ->
      let origins = List.sort_uniq compare (List.map origin anns) in
      match (anns, origins) with
      | a :: _, _ :: _ :: _ -> (a.prefix, origins) :: acc
      | _ -> acc)
    t.routes []

let announcement_count t = t.count
let prefix_count t = Hashtbl.length t.routes
