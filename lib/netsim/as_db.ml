type asn = int

type t = {
  by_asn : (asn, Org.t) Hashtbl.t;
  by_name : (string, Org.t) Hashtbl.t;
  mutable next_org : int;
}

let create () = { by_asn = Hashtbl.create 1024; by_name = Hashtbl.create 1024; next_org = 0 }

let register_org t ~name ~country =
  match Hashtbl.find_opt t.by_name name with
  | Some org -> org
  | None ->
      let org = { Org.id = t.next_org; name; country } in
      t.next_org <- t.next_org + 1;
      Hashtbl.replace t.by_name name org;
      org

let register_as t asn org = Hashtbl.replace t.by_asn asn org

let org_of_as t asn = Hashtbl.find_opt t.by_asn asn
let org_by_name t name = Hashtbl.find_opt t.by_name name
let as_count t = Hashtbl.length t.by_asn
let org_count t = Hashtbl.length t.by_name
let orgs t = Hashtbl.fold (fun _ org acc -> org :: acc) t.by_name []
