(** Anycast prefix set — the bgp.tools anycast-prefixes substrate.  The
    paper annotates hosting/NS IPs with whether they fall in a known
    anycast prefix; anycast answers also make geolocation vantage-
    dependent in the DNS simulator. *)

type t

val create : unit -> t
val add : t -> Ipv4.prefix -> unit
val is_anycast : t -> Ipv4.addr -> bool
val size : t -> int
