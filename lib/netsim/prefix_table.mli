(** Longest-prefix-match table — the pfx2as substrate.

    A binary trie on address bits mapping CIDR prefixes to values
    (origin ASNs in the pipeline).  Lookup walks at most 32 levels and
    returns the value of the most specific covering prefix, exactly like
    CAIDA's Routeviews prefix-to-AS dataset consumed by the paper. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> Ipv4.prefix -> 'a -> unit
(** Insert or replace the value at a prefix. *)

val lookup : 'a t -> Ipv4.addr -> 'a option
(** Longest-prefix match. *)

val lookup_prefix : 'a t -> Ipv4.addr -> (Ipv4.prefix * 'a) option
(** Longest-prefix match returning the covering prefix as well. *)

val size : 'a t -> int
(** Number of stored prefixes. *)

val fold : (Ipv4.prefix -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
