type 'a node = {
  mutable value : 'a option;
  mutable zero : 'a node option;
  mutable one : 'a node option;
}

type 'a t = { root : 'a node; mutable count : int }

let new_node () = { value = None; zero = None; one = None }

let create () = { root = new_node (); count = 0 }

let bit addr i = (Ipv4.addr_to_int addr lsr (31 - i)) land 1

let add t prefix v =
  let { Ipv4.base; len } = (prefix : Ipv4.prefix) in
  let node = ref t.root in
  for i = 0 to len - 1 do
    let next =
      if bit base i = 0 then (
        match !node.zero with
        | Some n -> n
        | None ->
            let n = new_node () in
            !node.zero <- Some n;
            n)
      else
        match !node.one with
        | Some n -> n
        | None ->
            let n = new_node () in
            !node.one <- Some n;
            n
    in
    node := next
  done;
  if !node.value = None then t.count <- t.count + 1;
  !node.value <- Some v

let lookup_prefix t addr =
  let best = ref None in
  let node = ref (Some t.root) in
  let depth = ref 0 in
  let continue = ref true in
  while !continue do
    match !node with
    | None -> continue := false
    | Some n ->
        (match n.value with
        | Some v -> best := Some (Ipv4.prefix addr !depth, v)
        | None -> ());
        if !depth = 32 then continue := false
        else begin
          node := (if bit addr !depth = 0 then n.zero else n.one);
          incr depth
        end
  done;
  !best

let lookup t addr = Option.map snd (lookup_prefix t addr)

let size t = t.count

let fold f t init =
  (* Depth-first walk reconstructing each stored prefix from the path. *)
  let rec go node bits len acc =
    let acc =
      match node.value with
      | Some v -> f (Ipv4.prefix (Ipv4.addr_of_int (bits lsl (32 - len))) len) v acc
      | None -> acc
    in
    let acc =
      match node.zero with Some n -> go n (bits lsl 1) (len + 1) acc | None -> acc
    in
    match node.one with
    | Some n -> go n ((bits lsl 1) lor 1) (len + 1) acc
    | None -> acc
  in
  go t.root 0 0 init
