type addr = int

let max_addr = (1 lsl 32) - 1

let addr_of_int i =
  if i < 0 || i > max_addr then invalid_arg "Ipv4.addr_of_int: outside 32-bit range";
  i

let addr_to_int a = a

let addr_of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      let octet x =
        match int_of_string_opt x with
        | Some v when v >= 0 && v <= 255 -> Some v
        | _ -> None
      in
      match (octet a, octet b, octet c, octet d) with
      | Some a, Some b, Some c, Some d -> Some ((a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d)
      | _ -> None)
  | _ -> None

let addr_to_string a =
  Printf.sprintf "%d.%d.%d.%d" ((a lsr 24) land 0xFF) ((a lsr 16) land 0xFF)
    ((a lsr 8) land 0xFF) (a land 0xFF)

type prefix = { base : addr; len : int }

let mask len = if len = 0 then 0 else lnot ((1 lsl (32 - len)) - 1) land max_addr

let prefix a len =
  if len < 0 || len > 32 then invalid_arg "Ipv4.prefix: length outside [0, 32]";
  { base = a land mask len; len }

let prefix_of_string s =
  match String.index_opt s '/' with
  | None -> None
  | Some i -> (
      let addr_part = String.sub s 0 i in
      let len_part = String.sub s (i + 1) (String.length s - i - 1) in
      match (addr_of_string addr_part, int_of_string_opt len_part) with
      | Some a, Some len when len >= 0 && len <= 32 -> Some (prefix a len)
      | _ -> None)

let prefix_to_string p = Printf.sprintf "%s/%d" (addr_to_string p.base) p.len

let contains p a = a land mask p.len = p.base

let prefix_size p = 1 lsl (32 - p.len)

let nth_addr p i =
  if i < 0 || i >= prefix_size p then invalid_arg "Ipv4.nth_addr: index outside prefix";
  p.base lor i

let random_addr rng p = p.base lor Webdep_stats.Rng.int rng (prefix_size p)

let compare_addr = Int.compare

let compare_prefix p q =
  match Int.compare p.base q.base with 0 -> Int.compare p.len q.len | c -> c
