type entry = { believed : string; truth : string }

type t = {
  table : entry Prefix_table.t;
  accuracy : float;
  candidates : string array;
  rng : Webdep_stats.Rng.t;
}

let create ?(accuracy = 1.0) ?candidates rng () =
  if accuracy < 0.0 || accuracy > 1.0 then invalid_arg "Geo_db.create: accuracy outside [0,1]";
  let candidates =
    match candidates with
    | Some cs -> Array.of_list cs
    | None -> Array.of_list (List.map (fun c -> c.Webdep_geo.Country.code) Webdep_geo.Country.all)
  in
  { table = Prefix_table.create (); accuracy; candidates; rng }

let add t prefix truth =
  let believed =
    if Webdep_stats.Rng.float t.rng 1.0 < t.accuracy then truth
    else begin
      (* Draw a wrong country; retry a few times to avoid the truth. *)
      let rec pick tries =
        let c = Webdep_stats.Sample.choose t.rng t.candidates in
        if c <> truth || tries > 5 then c else pick (tries + 1)
      in
      pick 0
    end
  in
  Prefix_table.add t.table prefix { believed; truth }

let lookup t addr = Option.map (fun e -> e.believed) (Prefix_table.lookup t.table addr)
let true_country t addr = Option.map (fun e -> e.truth) (Prefix_table.lookup t.table addr)
let size t = Prefix_table.size t.table
