(** IP geolocation database — the NetAcuity substrate.

    Maps prefixes to countries by longest-prefix match, with a configurable
    error model reproducing the paper's note that NetAcuity is ~89.4%
    accurate at country level (Gharaibeh et al.): each prefix is, at load
    time, mislabeled with probability [1 − accuracy] to a uniformly chosen
    other country from the candidate pool.  Mislabeling at load time (not
    query time) matches how a static commercial database is wrong:
    consistently, not randomly per query. *)

type t

val create :
  ?accuracy:float -> ?candidates:string list -> Webdep_stats.Rng.t -> unit -> t
(** [create rng ()] with [accuracy] defaulting to 1.0 (exact) and
    [candidates] the pool of wrong answers (default: the 150 dataset
    countries).  @raise Invalid_argument if accuracy outside [0, 1]. *)

val add : t -> Ipv4.prefix -> string -> unit
(** Register a prefix's true country; the error model may record a
    different one. *)

val lookup : t -> Ipv4.addr -> string option
(** Country of the longest matching prefix, as the (possibly wrong)
    database believes it. *)

val true_country : t -> Ipv4.addr -> string option
(** Ground-truth country, bypassing the error model (for tests). *)

val size : t -> int
