(** Autonomous systems and the AS→Organization mapping (CAIDA AS2Org
    substrate).  Each AS is owned by exactly one {!Org.t}; several ASes may
    share an organization (as Amazon's do in reality). *)

type asn = int

type t

val create : unit -> t

val register_org : t -> name:string -> country:string -> Org.t
(** Create (or return the existing) organization with this name. *)

val register_as : t -> asn -> Org.t -> unit
(** Record that [asn] belongs to [org].  Re-registering replaces. *)

val org_of_as : t -> asn -> Org.t option
val org_by_name : t -> string -> Org.t option
val as_count : t -> int
val org_count : t -> int
val orgs : t -> Org.t list
