(** Organizations — the entities CAIDA's AS-to-Organization dataset maps
    ASes onto.  In the paper a "hosting provider" is the AS organization of
    the IP serving the content, and its country is the organization's
    WHOIS country. *)

type t = {
  id : int;  (** dense identifier *)
  name : string;  (** e.g. "Cloudflare, Inc." *)
  country : string;  (** ISO alpha-2 of the org's registration (HQ) *)
}

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
