type t = unit Prefix_table.t

let create () = Prefix_table.create ()
let add t p = Prefix_table.add t p ()
let is_anycast t a = Option.is_some (Prefix_table.lookup t a)
let size t = Prefix_table.size t
