type network = {
  org : Org.t;
  asn : int;
  pops : (string * Ipv4.prefix) list;
  pop_index : (string, Ipv4.prefix) Hashtbl.t;
  hq_prefix : Ipv4.prefix;
  anycast : bool;
}

let pop_near network ~near =
  match Hashtbl.find_opt network.pop_index near with
  | Some p -> p
  | None -> network.hq_prefix

type t = {
  as_db : As_db.t;
  pfx2as : int Prefix_table.t;
  geo : Geo_db.t;
  anycast_set : Anycast.t;
  bgp : Bgp.t;
  networks : (string, network) Hashtbl.t;
  mutable next_asn : int;
  mutable next_block : int;  (* /20 allocator cursor *)
}

(* Synthetic tier-1 transit ASNs through which every network announces. *)
let transit_asns = [| 174; 3356; 1299; 2914; 6453 |]

let create ?(geo_accuracy = 1.0) rng =
  {
    as_db = As_db.create ();
    pfx2as = Prefix_table.create ();
    geo = Geo_db.create ~accuracy:geo_accuracy rng ();
    anycast_set = Anycast.create ();
    bgp = Bgp.create ();
    networks = Hashtbl.create 4096;
    next_asn = 64_512;
    (* Start allocations at 16.0.0.0 to stay clear of special-use space. *)
    next_block = 16 lsl 24 lsr 12;
  }

let alloc_prefix t =
  let base = t.next_block lsl 12 in
  t.next_block <- t.next_block + 1;
  if base >= 1 lsl 32 then failwith "Internet: address space exhausted";
  Ipv4.prefix (Ipv4.addr_of_int base) 20

let dedup_keep_order xs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    xs

let register_network t ~name ~country ?(anycast = false) ?(presence = []) () =
  match Hashtbl.find_opt t.networks name with
  | Some n -> n
  | None ->
      let org = As_db.register_org t.as_db ~name ~country in
      let asn = t.next_asn in
      t.next_asn <- t.next_asn + 1;
      As_db.register_as t.as_db asn org;
      let countries = dedup_keep_order (country :: presence) in
      let pops =
        List.mapi
          (fun i cc ->
            let p = alloc_prefix t in
            Prefix_table.add t.pfx2as p asn;
            (* The network announces each prefix through a tier-1; the
               pfx2as table could equivalently be derived from these
               announcements (see Bgp.derive_pfx2as). *)
            let transit = transit_asns.((asn + i) mod Array.length transit_asns) in
            Bgp.announce t.bgp p ~path:[ transit; asn ];
            (* Anycast blocks geolocate to the registrant's HQ. *)
            Geo_db.add t.geo p (if anycast then country else cc);
            if anycast then Anycast.add t.anycast_set p;
            (cc, p))
          countries
      in
      (* Country → prefix index, so per-site address picks don't rescan
         the pops list (global providers have one pop per country). *)
      let pop_index = Hashtbl.create (List.length pops) in
      List.iter
        (fun (cc, p) ->
          if not (Hashtbl.mem pop_index cc) then Hashtbl.add pop_index cc p)
        pops;
      let network =
        { org; asn; pops; pop_index; hq_prefix = snd (List.hd pops); anycast }
      in
      Hashtbl.replace t.networks name network;
      network

let find_network t name = Hashtbl.find_opt t.networks name

let address_in _t network ~near rng = Ipv4.random_addr rng (pop_near network ~near)

let origin_as t addr = Prefix_table.lookup t.pfx2as addr

let org_of_addr t addr =
  match origin_as t addr with
  | None -> None
  | Some asn -> As_db.org_of_as t.as_db asn

let geolocate t addr = Geo_db.lookup t.geo addr
let is_anycast_addr t addr = Anycast.is_anycast t.anycast_set addr
let network_count t = Hashtbl.length t.networks
let as_db t = t.as_db
let bgp t = t.bgp
