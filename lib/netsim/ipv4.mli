(** IPv4 addresses and CIDR prefixes.

    Addresses are 32-bit values carried in a native [int] (OCaml ints are
    63-bit, so the full unsigned range fits).  Prefixes are value types
    with a canonicalized (masked) base address. *)

type addr = private int
(** An IPv4 address, 0 .. 2^32−1. *)

val addr_of_int : int -> addr
(** @raise Invalid_argument outside [0, 2^32). *)

val addr_to_int : addr -> int

val addr_of_string : string -> addr option
(** Parse dotted-quad notation. *)

val addr_to_string : addr -> string

type prefix = private { base : addr; len : int }
(** A CIDR prefix; [base] has all host bits zero. *)

val prefix : addr -> int -> prefix
(** [prefix a len] masks [a] to [len] bits.  @raise Invalid_argument if
    [len] outside [0, 32]. *)

val prefix_of_string : string -> prefix option
(** Parse "a.b.c.d/len". *)

val prefix_to_string : prefix -> string

val contains : prefix -> addr -> bool

val prefix_size : prefix -> int
(** Number of addresses covered: 2^(32−len). *)

val nth_addr : prefix -> int -> addr
(** [nth_addr p i] is the [i]-th address of [p].
    @raise Invalid_argument if [i] outside the prefix. *)

val random_addr : Webdep_stats.Rng.t -> prefix -> addr
(** Uniform address within the prefix. *)

val compare_addr : addr -> addr -> int
val compare_prefix : prefix -> prefix -> int
