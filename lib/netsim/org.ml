type t = { id : int; name : string; country : string }

let equal a b = a.id = b.id
let pp fmt t = Format.fprintf fmt "%s (%s, org#%d)" t.name t.country t.id
