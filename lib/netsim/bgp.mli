(** BGP announcements and RouteViews-style origin derivation.

    The paper's pfx2as input is CAIDA's dataset derived from RouteViews
    BGP table dumps: for each announced prefix, the origin AS of the
    best (or most-seen) route.  This module models that derivation: ASes
    announce prefixes with AS paths; best-route selection prefers the
    shortest path (lowest origin ASN breaking ties); the origin table is
    read off the best routes. *)

type announcement = {
  prefix : Ipv4.prefix;
  path : int list;  (** AS path, origin last; never empty *)
}

val origin : announcement -> int

type t

val create : unit -> t

val announce : t -> Ipv4.prefix -> path:int list -> unit
(** Record an announcement.  @raise Invalid_argument on an empty path. *)

val best_route : t -> Ipv4.addr -> announcement option
(** Longest-prefix match over best routes. *)

val derive_pfx2as : t -> int Prefix_table.t
(** The RouteViews/CAIDA prefix→origin-AS table from best routes. *)

val moas : t -> (Ipv4.prefix * int list) list
(** Prefixes announced by multiple distinct origins (MOAS conflicts),
    with the origins. *)

val announcement_count : t -> int
val prefix_count : t -> int
