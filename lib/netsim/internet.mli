(** The assembled simulated Internet.

    Registers provider networks (organization + ASN + address space),
    builds the pfx2as table, the geolocation database and the anycast set,
    and answers the lookups the measurement pipeline performs:
    address → origin AS → organization, address → country,
    address → anycast?.

    Address space is allocated deterministically: each network's
    per-country point of presence receives its own /20 carved from a
    global allocator, geolocated to that country.  Anycast networks are
    additionally flagged in the anycast set, and their prefixes geolocate
    to the HQ country (as commercial databases typically pin anycast
    blocks to the registrant). *)

type t

type network = {
  org : Org.t;
  asn : int;
  pops : (string * Ipv4.prefix) list;
      (** points of presence: country code → prefix; the HQ country is
          always present and listed first *)
  pop_index : (string, Ipv4.prefix) Hashtbl.t;
      (** [pops] as a country-keyed index, built at registration; treat
          as read-only *)
  hq_prefix : Ipv4.prefix;  (** the HQ pop's prefix (head of [pops]) *)
  anycast : bool;
}

val pop_near : network -> near:string -> Ipv4.prefix
(** The network's prefix in [near], falling back to HQ — an indexed
    lookup replacing the former linear scan over [pops]. *)

val create : ?geo_accuracy:float -> Webdep_stats.Rng.t -> t
(** [geo_accuracy] feeds the {!Geo_db} error model (default 1.0). *)

val register_network :
  t -> name:string -> country:string -> ?anycast:bool -> ?presence:string list -> unit -> network
(** Register a provider network.  [presence] lists extra countries with
    local points of presence (deduplicated; HQ implied).  Registering the
    same [name] twice returns the network registered first. *)

val find_network : t -> string -> network option
(** Lookup a registered network by organization name. *)

val address_in : t -> network -> near:string -> Webdep_stats.Rng.t -> Ipv4.addr
(** An address of the network, preferring the point of presence in
    [near] (the client's country) and falling back to HQ — how a CDN maps
    users to front-ends. *)

val origin_as : t -> Ipv4.addr -> int option
(** pfx2as lookup. *)

val org_of_addr : t -> Ipv4.addr -> Org.t option
(** pfx2as + AS2Org composition: the "AS Organization" label the paper
    assigns to hosting/DNS IPs. *)

val geolocate : t -> Ipv4.addr -> string option
(** NetAcuity-like lookup (subject to the error model). *)

val is_anycast_addr : t -> Ipv4.addr -> bool

val network_count : t -> int
val as_db : t -> As_db.t

val bgp : t -> Bgp.t
(** The BGP table every registered network announces into; deriving
    origins from it ({!Bgp.derive_pfx2as}) reproduces the direct pfx2as
    table (asserted in the test suite). *)
