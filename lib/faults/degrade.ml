(* Per-domain measurement outcomes and per-country coverage. *)

type outcome = Clean | Degraded | Failed

let outcome_name = function
  | Clean -> "clean"
  | Degraded -> "degraded"
  | Failed -> "failed"

type tally = { clean : int; degraded : int; failed : int }

let empty = { clean = 0; degraded = 0; failed = 0 }

let add t = function
  | Clean -> { t with clean = t.clean + 1 }
  | Degraded -> { t with degraded = t.degraded + 1 }
  | Failed -> { t with failed = t.failed + 1 }

let total t = t.clean + t.degraded + t.failed

(* Degraded domains still yield (partial) measurements, so they count
   toward coverage; only outright failures reduce it. *)
let ratio t =
  let n = total t in
  if n = 0 then 1.0 else float_of_int (t.clean + t.degraded) /. float_of_int n

let sufficient ~threshold t = ratio t >= threshold
