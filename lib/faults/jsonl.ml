(* Shared JSON-lines file handling for the spill/checkpoint planes.

   Both the measurement store's spill and the sweep checkpoint are a
   header line (schema + parameters) followed by one JSON object per
   line, and both must survive the writer being killed mid-write.  The
   two invariants live here once:

   - [write_atomic] never exposes a half-written file: the lines go to
     a temp file in the same directory, the fd is fsynced, and the temp
     is renamed over the target — a reader sees the old file or the new
     one, nothing in between.

   - [load] recovers from a torn tail: entries are read in order and
     loading stops at the first line that fails to parse (the
     kill-mid-write residue of a non-atomic appender), returning the
     intact prefix plus a flag saying whether anything was dropped.  A
     missing or mismatched header invalidates the whole file — its
     entries belong to a different world/sweep. *)

type 'a load =
  | No_file
  | Header_mismatch
  | Loaded of { entries : 'a list; torn : bool }

type 'acc folded =
  | Fold_no_file
  | Fold_header_mismatch
  | Folded of { acc : 'acc; torn : bool }

(* Streaming fold over the entry lines: only one line is live at a time,
   so replaying an arbitrarily long segment keeps peak heap bounded by
   whatever the caller accumulates.  [f] returning [None] marks the torn
   tail — folding stops and the accumulator so far is returned with
   [torn] set, exactly like [load] dropping the suspect suffix. *)
let fold ~path ~header ~init ~f =
  if not (Sys.file_exists path) then Fold_no_file
  else begin
    let ic = open_in path in
    let result =
      match input_line ic with
      | exception End_of_file -> Fold_header_mismatch
      | h when not (String.equal h header) -> Fold_header_mismatch
      | _ ->
          let rec go acc =
            match input_line ic with
            | exception End_of_file -> Folded { acc; torn = false }
            | line -> (
                match f acc line with
                | Some acc -> go acc
                | None -> Folded { acc; torn = true })
          in
          go init
    in
    close_in ic;
    result
  end

let load ~path ~header ~parse =
  let f acc line = Option.map (fun e -> e :: acc) (parse line) in
  match fold ~path ~header ~init:[] ~f with
  | Fold_no_file -> No_file
  | Fold_header_mismatch -> Header_mismatch
  | Folded { acc; torn } -> Loaded { entries = List.rev acc; torn }

(* Write [header] then [lines] to a temp file beside [path], fsync, and
   rename over [path].  The temp name carries the pid so two writers
   cannot collide on it; rename within one directory is atomic. *)
let write_atomic ~path ~header lines =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out tmp in
  (try
     output_string oc header;
     output_char oc '\n';
     List.iter
       (fun line ->
         output_string oc line;
         output_char oc '\n')
       lines;
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with exn ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise exn);
  Unix.rename tmp path
