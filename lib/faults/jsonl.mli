(** Shared JSON-lines persistence: atomic whole-file writes and
    torn-tail-tolerant loads.

    One header line (schema tag + parameters) followed by one JSON
    object per line — the format of the measurement-store spill and the
    sweep checkpoint.  This module owns the two crash-safety invariants
    both need: a writer killed mid-write never corrupts the target
    ({!write_atomic} goes through temp + fsync + rename), and a reader
    facing a torn tail (from a non-atomic appender killed mid-line)
    recovers the intact prefix instead of failing ({!load}). *)

type 'a load =
  | No_file  (** [path] does not exist *)
  | Header_mismatch
      (** the first line is absent or differs from the expected header —
          the file belongs to another world/sweep and must be ignored
          wholesale *)
  | Loaded of { entries : 'a list; torn : bool }
      (** parsed entries in file order; [torn] is set when loading
          stopped at an unparsable line and dropped the rest *)

val load : path:string -> header:string -> parse:(string -> 'a option) -> 'a load
(** Read [path], check the header, then parse each line with [parse]
    until the first [None] (torn tail — everything after is suspect). *)

val write_atomic : path:string -> header:string -> string list -> unit
(** Write header + lines to [path] atomically: temp file in the same
    directory, fsync, rename.  Readers see the old file or the complete
    new one, never a prefix. *)
