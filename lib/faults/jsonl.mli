(** Shared JSON-lines persistence: atomic whole-file writes and
    torn-tail-tolerant loads.

    One header line (schema tag + parameters) followed by one JSON
    object per line — the format of the measurement-store spill and the
    sweep checkpoint.  This module owns the two crash-safety invariants
    both need: a writer killed mid-write never corrupts the target
    ({!write_atomic} goes through temp + fsync + rename), and a reader
    facing a torn tail (from a non-atomic appender killed mid-line)
    recovers the intact prefix instead of failing ({!load}). *)

type 'a load =
  | No_file  (** [path] does not exist *)
  | Header_mismatch
      (** the first line is absent or differs from the expected header —
          the file belongs to another world/sweep and must be ignored
          wholesale *)
  | Loaded of { entries : 'a list; torn : bool }
      (** parsed entries in file order; [torn] is set when loading
          stopped at an unparsable line and dropped the rest *)

type 'acc folded =
  | Fold_no_file  (** [path] does not exist *)
  | Fold_header_mismatch  (** absent or foreign header — ignore the file *)
  | Folded of { acc : 'acc; torn : bool }
      (** the accumulator after the last good line; [torn] is set when
          folding stopped at a line the caller rejected *)

val fold :
  path:string ->
  header:string ->
  init:'acc ->
  f:('acc -> string -> 'acc option) ->
  'acc folded
(** Streaming iteration over the entry lines of [path]: check the
    header, then feed each line to [f] in file order.  Only one line is
    ever materialized, so replaying a long segment keeps peak heap
    bounded by the accumulator — this is what tlog replay and the spill
    loader fold through.  [f] returning [None] marks a torn tail:
    folding stops and everything after the bad line is dropped. *)

val load : path:string -> header:string -> parse:(string -> 'a option) -> 'a load
(** Read [path], check the header, then parse each line with [parse]
    until the first [None] (torn tail — everything after is suspect).
    Implemented on {!fold}, materializing the entries. *)

val write_atomic : path:string -> header:string -> string list -> unit
(** Write header + lines to [path] atomically: temp file in the same
    directory, fsync, rename.  Readers see the old file or the complete
    new one, never a prefix. *)
