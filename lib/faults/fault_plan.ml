(* Deterministic, seed-driven fault assignment.  Every decision is a
   pure hash of (plan seed, channel, key, attempt): no mutable RNG state
   is consumed, so the verdict for a given query is independent of the
   order queries run in — the property that keeps a faulted sweep
   byte-identical at any --jobs and lets a retry re-ask the same
   question with only the attempt number changed. *)

type kind =
  | Dns_timeout
  | Dns_servfail
  | Dns_refused
  | Packet_loss
  | Lame_delegation
  | Tls_truncated
  | Tls_failed

let kind_name = function
  | Dns_timeout -> "dns_timeout"
  | Dns_servfail -> "dns_servfail"
  | Dns_refused -> "dns_refused"
  | Packet_loss -> "packet_loss"
  | Lame_delegation -> "lame_delegation"
  | Tls_truncated -> "tls_truncated"
  | Tls_failed -> "tls_failed"

(* One injection counter per kind, bound at module load so the metric
   names are present (at zero) in every --metrics export. *)
let m_dns_timeout = Webdep_obs.Metrics.counter "fault.injected.dns_timeout"
let m_dns_servfail = Webdep_obs.Metrics.counter "fault.injected.dns_servfail"
let m_dns_refused = Webdep_obs.Metrics.counter "fault.injected.dns_refused"
let m_packet_loss = Webdep_obs.Metrics.counter "fault.injected.packet_loss"
let m_lame = Webdep_obs.Metrics.counter "fault.injected.lame_delegation"
let m_tls_truncated = Webdep_obs.Metrics.counter "fault.injected.tls_truncated"
let m_tls_failed = Webdep_obs.Metrics.counter "fault.injected.tls_failed"

let injected_counter = function
  | Dns_timeout -> m_dns_timeout
  | Dns_servfail -> m_dns_servfail
  | Dns_refused -> m_dns_refused
  | Packet_loss -> m_packet_loss
  | Lame_delegation -> m_lame
  | Tls_truncated -> m_tls_truncated
  | Tls_failed -> m_tls_failed

type t = {
  rate : float;
  recover_after : int;
  permanent_fraction : float;
  plan_seed : int;
  state : int64;  (* mixed seed, folded into every hash *)
  enabled : bool;
}

(* SplitMix64 finalizer (same constants as Webdep_stats.Rng). *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let disabled =
  { rate = 0.0; recover_after = 1; permanent_fraction = 0.0; plan_seed = 0;
    state = 0L; enabled = false }

let make ?(rate = 0.05) ?(recover_after = 3) ?(permanent_fraction = 0.1) ~seed () =
  if rate < 0.0 || rate > 1.0 then
    invalid_arg "Fault_plan.make: rate must be within [0, 1]";
  { rate; recover_after = Stdlib.max 1 recover_after;
    permanent_fraction = Float.max 0.0 (Float.min 1.0 permanent_fraction);
    plan_seed = seed; state = mix64 (Int64.of_int seed); enabled = true }

let enabled t = t.enabled
let rate t = t.rate
let seed t = t.plan_seed

(* FNV-1a over tag and key, folded with the plan state, finalized. *)
let hash64 t tag key =
  let h = ref 0xCBF29CE484222325L in
  let fold s =
    String.iter
      (fun c ->
        h := Int64.logxor !h (Int64.of_int (Char.code c));
        h := Int64.mul !h 0x100000001B3L)
      s
  in
  fold tag;
  fold "\x1f";  (* separator: ("ab","c") must not collide with ("a","bc") *)
  fold key;
  mix64 (Int64.logxor t.state !h)

let u01 t tag key =
  Int64.to_float (Int64.shift_right_logical (hash64 t tag key) 11)
  /. 9007199254740992.0 (* 2^53 *)

let pick_int t tag key bound =
  Int64.to_int (Int64.rem (Int64.shift_right_logical (hash64 t tag key) 2) (Int64.of_int bound))

type verdict = No_fault | Fault of kind

(* A key is faulty with probability [rate].  A faulty key is either
   permanent (fraction [permanent_fraction]) or transient with a
   duration of 1..recover_after attempts, after which the simulated
   server has recovered and answers normally. *)
let faulty t key = t.enabled && t.rate > 0.0 && u01 t "roll" key < t.rate

let active t key ~attempt =
  faulty t key
  && ((t.permanent_fraction > 0.0 && u01 t "perm" key < t.permanent_fraction)
      || attempt < 1 + pick_int t "dur" key t.recover_after)

let verdict t ~kinds ~key ~attempt =
  if not (active t key ~attempt) then No_fault
  else begin
    let kind = List.nth kinds (pick_int t "kind" key (List.length kinds)) in
    Webdep_obs.Metrics.incr (injected_counter kind);
    Fault kind
  end

let dns_key ~vantage ~qname = "dns|" ^ vantage ^ "|" ^ qname

let dns_fault t ~vantage ~qname ~attempt =
  if not t.enabled then No_fault
  else
    verdict t ~kinds:[ Dns_timeout; Dns_servfail; Dns_refused ]
      ~key:(dns_key ~vantage ~qname) ~attempt

let query_fault t ~server ~qname ~attempt =
  if not t.enabled then No_fault
  else
    verdict t ~kinds:[ Packet_loss; Lame_delegation ]
      ~key:(Printf.sprintf "q|%d|%s" server qname) ~attempt

let tls_fault t ~sni ~attempt =
  if not t.enabled then No_fault
  else verdict t ~kinds:[ Tls_truncated; Tls_failed ] ~key:("tls|" ^ sni) ~attempt

let dns_faulty t ~vantage ~qname = faulty t (dns_key ~vantage ~qname)
let tls_faulty t ~sni = faulty t ("tls|" ^ sni)
