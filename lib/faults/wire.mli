(** Deterministic wire-level chaos verdicts for the serving plane.

    Per request key, decides how the chaos harness's client socket
    should misbehave: truncate the frame and FIN ({!Torn_frame}),
    dribble it in tiny writes ({!Partial_write}), truncate and RST
    ({!Reset_mid_frame}), prepend bytes that corrupt the length prefix
    ({!Garbage_prefix}), or pause mid-frame ({!Delayed}).  Every
    verdict is a pure hash of (plan seed, key) via
    {!Fault_plan.u01}/{!Fault_plan.pick_int}: jobs-invariant and
    replayable by seed, like every other fault channel. *)

type action =
  | Clean
  | Torn_frame  (** frame truncated mid-payload, then clean close *)
  | Partial_write  (** frame delivered in 1..3-byte chunks *)
  | Reset_mid_frame  (** frame truncated mid-payload, then RST *)
  | Garbage_prefix  (** corrupt bytes before the frame *)
  | Delayed  (** a pause splits the frame in two *)

val action_name : action -> string

val action : Fault_plan.t -> key:string -> action
(** Verdict for a request key; fires with the plan's rate.  Increments
    the matching [chaos.injected.*] counter when non-{!Clean}. *)

val action_pure : Fault_plan.t -> key:string -> action
(** Same verdict, no counter side effect (for determinism tests). *)

val cut_point : Fault_plan.t -> key:string -> len:int -> int
(** Deterministic cut position in [1, len-1] (1 when [len <= 1]): at
    least one byte sent, at least one withheld. *)

val garbage : Fault_plan.t -> key:string -> len:int -> string
(** [len] deterministic garbage bytes whose first byte has the top bit
    set, so a server reading them as a frame length sees a corrupt
    (negative) prefix, never an accidental valid frame. *)
