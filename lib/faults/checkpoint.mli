(** Checkpoint/resume for interrupted measurement sweeps.

    A checkpoint is a JSON-lines file: a header line with a schema tag
    and the sweep parameters, then one line per completed country
    shard.  Because site records contain only strings, bools and
    options, the JSON round-trip is exact — a resumed sweep reproduces
    the uninterrupted dataset structurally (and byte-identically once
    printed).

    Opening a checkpoint whose header does not match the current sweep
    parameters discards it: resuming under different parameters would
    silently mix two different worlds.  A corrupt trailing line (the
    writer was killed mid-line) is dropped on open. *)

type entry = {
  country : string;
  tally : Degrade.tally;
  data : Webdep.Dataset.country_data;
}

type t

val schema : string

val open_ : path:string -> meta:(string * Webdep_obs.Json.t) list -> t
(** Open (creating or resuming) a checkpoint.  [meta] identifies the
    sweep (world seed, size, epoch, vantage, fault parameters...); it
    becomes part of the header and must match exactly on resume. *)

val find : t -> string -> entry option
(** Completed entry for a country, if present.  Increments
    [checkpoint.countries_resumed] on a hit. *)

val loaded : t -> int
(** Number of entries recovered from the file on open. *)

val record : t -> entry -> unit
(** Append a completed country shard and flush.  Thread-safe —
    callable from parallel sweep workers.  Increments
    [checkpoint.countries_written]. *)

val close : t -> unit

(** {2 Site (de)serialization}

    The per-site JSON codec, shared with the measurement store's spill
    format so both files stay mutually readable per record. *)

val site_to_json : Webdep.Dataset.site -> Webdep_obs.Json.t

val site_of_json : Webdep_obs.Json.t -> Webdep.Dataset.site option
(** [None] on a malformed record (missing field, wrong type). *)
