(** Deterministic, seed-driven fault assignment for the measurement plane.

    A plan is a pure function: every verdict is a hash of (plan seed,
    channel, key, attempt).  No mutable RNG state is consumed, so fault
    decisions are independent of scheduling order — a faulted sweep is
    byte-identical at any [--jobs] — and a retry re-asks the same
    question with only the attempt number changed, letting transiently
    flaky servers recover after a bounded number of attempts. *)

type kind =
  | Dns_timeout        (** recursive query times out *)
  | Dns_servfail       (** authoritative answers SERVFAIL *)
  | Dns_refused        (** authoritative answers REFUSED *)
  | Packet_loss        (** a single query to one server is lost *)
  | Lame_delegation    (** delegated server is not authoritative *)
  | Tls_truncated      (** TLS handshake truncated mid-flight *)
  | Tls_failed         (** TLS handshake rejected *)

val kind_name : kind -> string

type t

val disabled : t
(** The null plan: never injects, adds no per-query hashing cost. *)

val make :
  ?rate:float ->
  ?recover_after:int ->
  ?permanent_fraction:float ->
  seed:int ->
  unit ->
  t
(** [make ~seed ()] builds an enabled plan.  [rate] (default 0.05) is
    the probability a given key is faulty; [recover_after] (default 3)
    bounds how many attempts a transient fault persists for;
    [permanent_fraction] (default 0.1) is the fraction of faulty keys
    that never recover.  [rate] outside [0, 1] raises
    [Invalid_argument].  A plan with [rate = 0.0] is enabled but never
    fires — useful for measuring the overhead of the fault machinery
    itself. *)

val enabled : t -> bool
val rate : t -> float
val seed : t -> int

type verdict = No_fault | Fault of kind

val dns_fault : t -> vantage:string -> qname:string -> attempt:int -> verdict
(** Fault decision for a flat recursive resolution.  Draws from
    {!Dns_timeout}, {!Dns_servfail}, {!Dns_refused}.  Increments the
    matching [fault.injected.*] counter when it fires. *)

val query_fault : t -> server:int -> qname:string -> attempt:int -> verdict
(** Fault decision for a single iterative query to one authoritative
    server (keyed by the server address).  Draws from {!Packet_loss},
    {!Lame_delegation}. *)

val tls_fault : t -> sni:string -> attempt:int -> verdict
(** Fault decision for a TLS handshake.  Draws from {!Tls_truncated},
    {!Tls_failed}. *)

val dns_faulty : t -> vantage:string -> qname:string -> bool
(** Whether this resolution key is assigned any DNS fault (at attempt
    0), regardless of later recovery.  Pure — no counter side effect.
    Used to classify a domain as [Degraded] even when retries
    ultimately succeeded. *)

val tls_faulty : t -> sni:string -> bool
(** Same, for the TLS channel. *)

(** {1 Hash primitives}

    Building blocks for new fault channels (e.g. {!Wire}): pure draws
    from the plan's keyed hash.  Both are deterministic in (plan seed,
    tag, key) and consume no mutable state, so any channel built on them
    inherits the jobs-invariance of the plan. *)

val u01 : t -> string -> string -> float
(** [u01 t tag key] — uniform draw in [0, 1). *)

val pick_int : t -> string -> string -> int -> int
(** [pick_int t tag key bound] — uniform draw in [0, bound). *)
