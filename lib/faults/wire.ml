(* Deterministic wire-level chaos verdicts.

   The serving plane's chaos harness asks, per request key, how the
   client side of the connection should misbehave.  Like every other
   fault channel the answer is a pure hash of (plan seed, key): the same
   seed replays the same torn frame at the same request index regardless
   of client count or scheduling, which is what makes a chaos bench run
   comparable across machines and --jobs values.

   The actions model what a hostile or flaky network does to a framed
   byte stream; the server must survive every one of them without
   crashing, leaking an fd, or corrupting a neighbouring connection:

   - Torn_frame       the frame stops mid-payload, then clean FIN
   - Partial_write    the frame arrives in 1..3-byte dribbles
   - Reset_mid_frame  the frame stops mid-payload, then RST
   - Garbage_prefix   random bytes precede the frame (corrupt length)
   - Delayed          a pause splits the frame in two *)

type action =
  | Clean
  | Torn_frame
  | Partial_write
  | Reset_mid_frame
  | Garbage_prefix
  | Delayed

let all_actions =
  [ Torn_frame; Partial_write; Reset_mid_frame; Garbage_prefix; Delayed ]

let action_name = function
  | Clean -> "clean"
  | Torn_frame -> "torn_frame"
  | Partial_write -> "partial_write"
  | Reset_mid_frame -> "reset_mid_frame"
  | Garbage_prefix -> "garbage_prefix"
  | Delayed -> "delayed"

(* One injection counter per action, bound at module load so the names
   are present (at zero) in every --metrics export. *)
let m_torn = Webdep_obs.Metrics.counter "chaos.injected.torn_frame"
let m_partial = Webdep_obs.Metrics.counter "chaos.injected.partial_write"
let m_reset = Webdep_obs.Metrics.counter "chaos.injected.reset_mid_frame"
let m_garbage = Webdep_obs.Metrics.counter "chaos.injected.garbage_prefix"
let m_delayed = Webdep_obs.Metrics.counter "chaos.injected.delayed"

let injected_counter = function
  | Clean -> None
  | Torn_frame -> Some m_torn
  | Partial_write -> Some m_partial
  | Reset_mid_frame -> Some m_reset
  | Garbage_prefix -> Some m_garbage
  | Delayed -> Some m_delayed

(* Pure: the verdict for a key, with no counter side effect — the
   qcheck determinism tests call this. *)
let action_pure plan ~key =
  if (not (Fault_plan.enabled plan)) || Fault_plan.rate plan <= 0.0 then Clean
  else if Fault_plan.u01 plan "wire" key >= Fault_plan.rate plan then Clean
  else
    List.nth all_actions
      (Fault_plan.pick_int plan "wire_kind" key (List.length all_actions))

let action plan ~key =
  let a = action_pure plan ~key in
  (match injected_counter a with
  | Some c -> Webdep_obs.Metrics.incr c
  | None -> ());
  a

(* Where to cut a [len]-byte frame for torn/reset actions: always at
   least one byte sent, always at least one byte withheld, so the
   server genuinely observes a partial frame. *)
let cut_point plan ~key ~len =
  if len <= 1 then 1 else 1 + Fault_plan.pick_int plan "wire_cut" key (len - 1)

(* Deterministic garbage for the prefix action.  The first byte is
   forced >= 0x80 so the 4-byte big-endian length prefix the server
   reads comes out negative — a corrupt frame header by construction,
   never an accidental valid frame. *)
let garbage plan ~key ~len =
  String.init (Stdlib.max 1 len) (fun i ->
      let b =
        Fault_plan.pick_int plan "wire_garbage" (key ^ "#" ^ string_of_int i) 256
      in
      Char.chr (if i = 0 then 0x80 lor b else b))
