(* Checkpoint/resume for interrupted sweeps.

   JSON-lines file: a header line carrying a schema tag plus the sweep
   parameters, then one line per completed country shard.  On open we
   load every entry whose line parses; a corrupt trailing line (the
   process was killed mid-write) is dropped and the file is rewritten
   with only the intact entries before appending resumes.  A header
   that does not match the current sweep parameters invalidates the
   whole file — resuming under different parameters would silently mix
   two different worlds. *)

module Json = Webdep_obs.Json
module D = Webdep.Dataset

let schema = "webdep-checkpoint/1"

let m_written = Webdep_obs.Metrics.counter "checkpoint.countries_written"
let m_resumed = Webdep_obs.Metrics.counter "checkpoint.countries_resumed"

type entry = {
  country : string;
  tally : Degrade.tally;
  data : D.country_data;
}

type t = {
  path : string;
  lock : Mutex.t;
  oc : out_channel;
  loaded : (string, entry) Hashtbl.t;
}

(* --- (de)serialization ------------------------------------------------- *)

let opt_string = function None -> Json.Null | Some s -> Json.String s

let entity_to_json (e : D.entity) =
  Json.Obj [ ("name", Json.String e.name); ("country", Json.String e.country) ]

let opt_entity = function None -> Json.Null | Some e -> entity_to_json e

let site_to_json (s : D.site) =
  Json.Obj
    [
      ("domain", Json.String s.domain);
      ("hosting", opt_entity s.hosting);
      ("dns", opt_entity s.dns);
      ("ca", opt_entity s.ca);
      ("tld", entity_to_json s.tld);
      ("hosting_geo", opt_string s.hosting_geo);
      ("ns_geo", opt_string s.ns_geo);
      ("hosting_anycast", Json.Bool s.hosting_anycast);
      ("ns_anycast", Json.Bool s.ns_anycast);
      ("language", opt_string s.language);
    ]

let entry_to_json e =
  Json.Obj
    [
      ("country", Json.String e.country);
      ("clean", Json.Int e.tally.Degrade.clean);
      ("degraded", Json.Int e.tally.Degrade.degraded);
      ("failed", Json.Int e.tally.Degrade.failed);
      ("sites", Json.List (List.map site_to_json e.data.D.sites));
    ]

exception Bad of string

let get key obj =
  match Json.member key obj with
  | Some v -> v
  | None -> raise (Bad ("missing field " ^ key))

let to_string_j = function Json.String s -> s | _ -> raise (Bad "expected string")
let to_int_j = function Json.Int i -> i | _ -> raise (Bad "expected int")
let to_bool_j = function Json.Bool b -> b | _ -> raise (Bad "expected bool")

let to_opt f = function Json.Null -> None | v -> Some (f v)

let entity_of_json v : D.entity =
  { name = to_string_j (get "name" v); country = to_string_j (get "country" v) }

let site_of_json_exn v : D.site =
  {
    domain = to_string_j (get "domain" v);
    hosting = to_opt entity_of_json (get "hosting" v);
    dns = to_opt entity_of_json (get "dns" v);
    ca = to_opt entity_of_json (get "ca" v);
    tld = entity_of_json (get "tld" v);
    hosting_geo = to_opt to_string_j (get "hosting_geo" v);
    ns_geo = to_opt to_string_j (get "ns_geo" v);
    hosting_anycast = to_bool_j (get "hosting_anycast" v);
    ns_anycast = to_bool_j (get "ns_anycast" v);
    language = to_opt to_string_j (get "language" v);
  }

let site_of_json v =
  match site_of_json_exn v with s -> Some s | exception Bad _ -> None

let entry_of_json v =
  let country = to_string_j (get "country" v) in
  let sites =
    match get "sites" v with
    | Json.List l -> List.map site_of_json_exn l
    | _ -> raise (Bad "sites: expected list")
  in
  {
    country;
    tally =
      {
        Degrade.clean = to_int_j (get "clean" v);
        degraded = to_int_j (get "degraded" v);
        failed = to_int_j (get "failed" v);
      };
    data = { D.country = country; sites };
  }

(* --- file handling ----------------------------------------------------- *)

let header_line meta =
  Json.to_string (Json.Obj (("schema", Json.String schema) :: meta))

(* One line back into an entry; [None] marks the torn tail for
   [Jsonl.load]. *)
let entry_of_line line =
  match entry_of_json (Json.parse line) with
  | e -> Some e
  | exception (Bad _ | Json.Parse_error _) -> None

let open_ ~path ~meta =
  let header = header_line meta in
  (* Stream the intact prefix straight into the resume table — one line
     live at a time, no intermediate entry list — remembering country
     order so the rewrite below reproduces file order. *)
  let loaded = Hashtbl.create 64 in
  let order =
    let f acc line =
      match entry_of_line line with
      | Some e ->
          let acc = if Hashtbl.mem loaded e.country then acc else e.country :: acc in
          Hashtbl.replace loaded e.country e;
          Some acc
      | None -> None
    in
    match Jsonl.fold ~path ~header ~init:[] ~f with
    | Jsonl.Fold_no_file | Jsonl.Fold_header_mismatch ->
        Hashtbl.reset loaded;
        []
    | Jsonl.Folded { acc; torn = _ } -> List.rev acc
  in
  (* Rewrite the file from the intact prefix (atomically, so a kill
     during the rewrite cannot lose the recovered entries): drops
     corrupt trailing lines and stale files from mismatched sweeps in
     one stroke. *)
  Jsonl.write_atomic ~path ~header
    (List.map
       (fun cc -> Json.to_string (entry_to_json (Hashtbl.find loaded cc)))
       order);
  let oc = open_out_gen [ Open_append; Open_wronly ] 0o644 path in
  { path; lock = Mutex.create (); oc; loaded }

let find t country =
  match Hashtbl.find_opt t.loaded country with
  | Some e ->
      Webdep_obs.Metrics.incr m_resumed;
      Some e
  | None -> None

let loaded t = Hashtbl.length t.loaded

let record t e =
  Mutex.protect t.lock (fun () ->
      output_string t.oc (Json.to_string (entry_to_json e));
      output_char t.oc '\n';
      flush t.oc);
  Webdep_obs.Metrics.incr m_written

let close t = close_out t.oc
