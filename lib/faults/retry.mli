(** Bounded retry with deterministic exponential backoff.

    Backoff delays are simulated — computed, budgeted against
    [budget_ms] and recorded in the [retry.backoff_ms] histogram, but
    never slept.  Jitter is a pure hash of (key, attempt), so retry
    behavior is identical at any [--jobs] and across runs. *)

type policy = {
  max_attempts : int;     (** total attempts, first try included *)
  base_backoff_ms : float;
  multiplier : float;
  jitter_ms : float;      (** uniform [0, jitter_ms) added per backoff *)
  budget_ms : float;      (** simulated per-query budget; 0 = unlimited *)
}

val no_retry : policy
(** Single attempt, no backoff — the legacy behavior. *)

val default : policy
(** 4 attempts, 50ms base, x2 multiplier, 25ms jitter, 5s budget. *)

val of_max_retries : int -> policy
(** [of_max_retries n] is {!default} with [n] retries after the first
    attempt ([max_attempts = n + 1]); [n <= 0] means no retries. *)

val backoff_ms : policy -> key:string -> attempt:int -> float
(** Simulated delay before retry number [attempt] (>= 1) of [key].
    Deterministic; exposed for tests. *)

val run :
  policy ->
  key:string ->
  retryable:('e -> bool) ->
  (attempt:int -> ('a, 'e) result) ->
  ('a, 'e) result
(** [run p ~key ~retryable f] calls [f ~attempt:0], retrying on
    [Error e] while [retryable e], attempts remain, and the simulated
    backoff fits the budget.  Returns the first [Ok] or the last
    [Error].  Counters: [retry.attempts] per retry issued,
    [retry.recovered] when a retry turns the result around,
    [retry.exhausted] when the budget or attempt cap is hit. *)
