(** Per-domain measurement outcomes and per-country coverage tallies. *)

type outcome =
  | Clean     (** measured with no injected interference *)
  | Degraded  (** a fault touched this domain but (partial) data was
                  still collected, possibly via retries *)
  | Failed    (** no usable hosting measurement *)

val outcome_name : outcome -> string

type tally = { clean : int; degraded : int; failed : int }

val empty : tally
val add : tally -> outcome -> tally
val total : tally -> int

val ratio : tally -> float
(** Coverage ratio in [0, 1]: (clean + degraded) / total.  Degraded
    domains still yield measurements, so they count toward coverage.
    An empty tally has ratio 1.0. *)

val sufficient : threshold:float -> tally -> bool
(** [ratio t >= threshold].  A threshold of 0.0 never gates. *)
