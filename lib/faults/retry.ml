(* Bounded retry with deterministic exponential backoff.

   Backoff delays are *simulated*: they are computed, budgeted and
   recorded in the retry.backoff_ms histogram, but never slept — the
   simulation has no wall clock to wait on.  Jitter is a pure hash of
   (key, attempt) so a retried query behaves identically at any --jobs
   and across runs. *)

type policy = {
  max_attempts : int;     (* total attempts, first try included *)
  base_backoff_ms : float;
  multiplier : float;
  jitter_ms : float;      (* uniform [0, jitter_ms) added per backoff *)
  budget_ms : float;      (* simulated per-query budget; 0 = unlimited *)
}

let no_retry =
  { max_attempts = 1; base_backoff_ms = 0.0; multiplier = 2.0;
    jitter_ms = 0.0; budget_ms = 0.0 }

let default =
  { max_attempts = 4; base_backoff_ms = 50.0; multiplier = 2.0;
    jitter_ms = 25.0; budget_ms = 5_000.0 }

let of_max_retries n = { default with max_attempts = 1 + Stdlib.max 0 n }

let m_attempts = Webdep_obs.Metrics.counter "retry.attempts"
let m_recovered = Webdep_obs.Metrics.counter "retry.recovered"
let m_exhausted = Webdep_obs.Metrics.counter "retry.exhausted"

let h_backoff =
  Webdep_obs.Metrics.histogram
    ~bounds:[| 1.0; 5.0; 10.0; 25.0; 50.0; 100.0; 250.0; 500.0; 1000.0; 2500.0 |]
    "retry.backoff_ms"

(* FNV-1a + SplitMix64 finalizer, local so Retry stays usable without a
   Fault_plan in hand (the TLS probe retries against a predicate). *)
let jitter01 key attempt =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    key;
  h := Int64.logxor !h (Int64.of_int (0x9E + attempt));
  h := Int64.mul !h 0x100000001B3L;
  let z = !h in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.0

let backoff_ms p ~key ~attempt =
  (* attempt >= 1: delay before the [attempt]-th retry *)
  let expo = p.base_backoff_ms *. (p.multiplier ** float_of_int (attempt - 1)) in
  expo +. (p.jitter_ms *. jitter01 key attempt)

let run p ~key ~retryable f =
  let rec go attempt spent_ms =
    match f ~attempt with
    | Ok _ as ok ->
        if attempt > 0 then Webdep_obs.Metrics.incr m_recovered;
        ok
    | Error e as err ->
        if not (retryable e) then err
        else if attempt + 1 >= p.max_attempts then begin
          Webdep_obs.Metrics.incr m_exhausted;
          err
        end
        else begin
          let d = backoff_ms p ~key ~attempt:(attempt + 1) in
          if p.budget_ms > 0.0 && spent_ms +. d > p.budget_ms then begin
            Webdep_obs.Metrics.incr m_exhausted;
            err
          end
          else begin
            Webdep_obs.Metrics.incr m_attempts;
            Webdep_obs.Metrics.observe h_backoff d;
            go (attempt + 1) (spent_ms +. d)
          end
        end
  in
  go 0 0.0
