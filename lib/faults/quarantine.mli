(** Consecutive-failure quarantine for failing measurement targets.

    After [threshold] consecutive failures a key is quarantined and
    subsequent probes are skipped (counted as Failed) instead of
    burning retry budget.  A success clears the key.  Instances are
    scoped to one snapshot and are not thread-safe. *)

type t

val create : ?threshold:int -> unit -> t
(** [threshold] defaults to 3; clamped to >= 1. *)

val active : t -> string -> bool
(** Whether the key is currently quarantined.  Increments
    [fault.quarantine.skipped] when it answers [true]. *)

val record_failure : t -> string -> unit
(** Increments [fault.quarantine.added] when the key crosses the
    threshold. *)

val record_success : t -> string -> unit
(** Clears the key's failure streak (and quarantine membership). *)

val quarantined : t -> int
(** Number of currently quarantined keys. *)
