(* Consecutive-failure quarantine.

   Scoped per snapshot (one per measured country), so membership is a
   deterministic function of that country's domain sequence and the
   fault plan — independent of how country shards are scheduled across
   domains. Not thread-safe; never shared across workers. *)

type t = {
  threshold : int;
  counts : (string, int) Hashtbl.t;
  mutable quarantined : int;
}

let m_added = Webdep_obs.Metrics.counter "fault.quarantine.added"
let m_skipped = Webdep_obs.Metrics.counter "fault.quarantine.skipped"

let create ?(threshold = 3) () =
  { threshold = Stdlib.max 1 threshold; counts = Hashtbl.create 64; quarantined = 0 }

let active t key =
  match Hashtbl.find_opt t.counts key with
  | Some n when n >= t.threshold ->
      Webdep_obs.Metrics.incr m_skipped;
      true
  | _ -> false

let record_failure t key =
  let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.counts key) in
  Hashtbl.replace t.counts key n;
  if n = t.threshold then begin
    t.quarantined <- t.quarantined + 1;
    Webdep_obs.Metrics.incr m_added
  end

let record_success t key =
  match Hashtbl.find_opt t.counts key with
  | None -> ()
  | Some n ->
      if n >= t.threshold then t.quarantined <- t.quarantined - 1;
      Hashtbl.remove t.counts key

let quarantined t = t.quarantined
