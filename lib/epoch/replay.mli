(** Replay a churn log epoch by epoch, maintaining per-layer
    {!Webdep_store.Incremental} state so every advance costs O(churn)
    and every score read is bit-identical to a cold recomputation over
    the materialized dataset. *)

type t

val start : Log.t -> t
(** State at the log's base epoch: per-country site tables (domain →
    sequence-numbered site) plus one Incremental per layer, tallied from
    the baseline. *)

val replay : ?observe:(t -> unit) -> Log.t -> t
(** {!start}, then {!apply} every committed event in order.  [observe]
    runs on the state after the baseline and after each epoch — the hook
    for trend collection and per-epoch verification. *)

val apply : t -> Log.event -> unit
(** Advance one epoch: O(churn) site-table edits folded through the four
    per-layer Incrementals (closed-form rescore where the provider
    support is unchanged, full distribution rebuild only where it
    changed).
    @raise Invalid_argument on an unknown country, a removal of an
    absent domain, an addition of a present one, or a non-increasing
    epoch number. *)

val epoch : t -> int
(** Current (last applied) epoch. *)

val countries : t -> string list
(** Baseline country order. *)

val inc : t -> Webdep.Dataset.layer -> Webdep_store.Incremental.t
(** The live per-layer Incremental — the serve plane's head state. *)

val score : t -> Webdep.Dataset.layer -> string -> float
(** Centralization 𝒮 of one country at the current epoch.
    @raise Not_found when the country has no labelled site. *)

val hhi : t -> Webdep.Dataset.layer -> string -> float
val insularity : t -> Webdep.Dataset.layer -> string -> float

val scores : ?jobs:int -> t -> Webdep.Dataset.layer -> (string * float) list
(** Every country's 𝒮 in baseline order (scoreless countries skipped),
    fanned out across the shared pool — byte-identical at any [jobs]. *)

val materialize : t -> Webdep.Dataset.country_data list
(** The current epoch's full site lists in canonical order (baseline
    order, additions in arrival order) — what a cold sweep of this epoch
    would have produced.  O(n log n); only verification, compaction and
    snapshot paths pay it. *)

val compact : Log.t -> keep_last:int -> Log.t
(** Collapse every epoch up to [head - keep_last] into a new
    dictionary-compressed baseline, keeping the trailing events.
    Replaying the compacted log yields bit-identical datasets and scores
    to the raw one; warm-start cost becomes O(world + keep_last·churn)
    however long the history was. *)
