(* Deterministic churn synthesis: turn two measured snapshots into a
   many-epoch trajectory.

   The baseline is one measured dataset; the donor pool is another (the
   toolkit feeds the 2023 and 2025 measured worlds in).  Each synthetic
   epoch removes a deterministic ~fraction of every country's current
   sites and admits the same number of donor sites under epoch-minted
   domains, so the per-epoch churn matches the paper's observed toplist
   turnover shape while every site added is a fully-measured record.

   All choices flow through a [Webdep_stats.Rng] child stream keyed by
   (epoch, country), so the generated trajectory is a pure function of
   the seed — independent of evaluation order and of [--jobs]. *)

module D = Webdep.Dataset
module Rng = Webdep_stats.Rng

(* k distinct indices out of [0, n), by partial Fisher–Yates. *)
let sample_indices rng ~n ~k =
  let idx = Array.init n Fun.id in
  for i = 0 to min k n - 1 do
    let j = i + Rng.int rng (n - i) in
    let t = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- t
  done;
  Array.sub idx 0 (min k n)

(* A donor renamed under an epoch-minted domain, probed until the name
   is absent from the country's current site set. *)
let mint exists ~epoch ~slot (donor : D.site) =
  let rec fresh name = if exists name then fresh ("x" ^ name) else name in
  { donor with D.domain = fresh (Printf.sprintf "e%d-%d-%s" epoch slot donor.D.domain) }

let plan_country rng ~fraction ~epoch ~country ~sites ~donors =
  let n = List.length sites in
  let k =
    if n = 0 then 0
    else max 1 (int_of_float (Float.round (fraction *. float_of_int n)))
  in
  if k = 0 || Array.length donors = 0 then None
  else begin
    let rng = Rng.split_named rng (Printf.sprintf "epoch-%d-%s" epoch country) in
    let arr = Array.of_list sites in
    let victims = sample_indices rng ~n ~k in
    let removed =
      Array.to_list (Array.map (fun i -> arr.(i).D.domain) victims)
    in
    let removed_set = List.sort_uniq String.compare removed in
    let present name =
      (not (List.mem name removed_set))
      && List.exists (fun (s : D.site) -> String.equal s.D.domain name) sites
    in
    let start = Rng.int rng (Array.length donors) in
    let added =
      List.init (Array.length victims) (fun i ->
          mint present ~epoch ~slot:i
            donors.((start + i) mod Array.length donors))
    in
    Some { Log.country; removed; added }
  end

(* One epoch's churn over the current state. *)
let plan rng ~fraction ~epoch ~current ~donors =
  List.filter_map
    (fun (country, sites) ->
      match List.assoc_opt country donors with
      | None -> None
      | Some pool -> plan_country rng ~fraction ~epoch ~country ~sites ~donors:pool)
    current

let apply_plain current changes =
  List.map
    (fun (country, sites) ->
      match
        List.find_opt (fun (c : Log.churn) -> String.equal c.Log.country country) changes
      with
      | None -> (country, sites)
      | Some c ->
          let kept =
            List.filter
              (fun (s : D.site) -> not (List.mem s.D.domain c.Log.removed))
              sites
          in
          (country, kept @ c.Log.added))
    current

let generate ~seed ~fraction ~epochs ~base_epoch ~base ~donors =
  let rng = Rng.create seed in
  let current =
    ref (List.map (fun (cd : D.country_data) -> (cd.D.country, cd.D.sites)) base)
  in
  List.init epochs (fun i ->
      let epoch = base_epoch + i + 1 in
      let changes = plan rng ~fraction ~epoch ~current:!current ~donors in
      current := apply_plain !current changes;
      { Log.epoch; changes })
