(* Replay state over a churn log: the current site set of every country
   plus one [Webdep_store.Incremental] per layer, advanced epoch by
   epoch in O(churn).

   Sites are kept per country in a hashtable keyed by domain, each
   carrying a monotone sequence number (baseline sites take 0..n-1 in
   file order, additions take the next counter value).  Sorting by
   sequence reproduces the canonical site order without paying O(world)
   per epoch — materialization is the only O(n log n) step, and it runs
   only when a dataset is actually needed (verification, compaction,
   serving the head).

   Advancing one epoch folds its churn through the four per-layer
   Incrementals, so per-country S/HHI/insularity rescore in time
   proportional to the churn set, with the EMD-style full distribution
   rebuild only where the provider support set changed — the cached
   scores stay bit-identical to a cold recomputation over the
   materialized dataset (the invariant [Incremental] already
   guarantees). *)

module D = Webdep.Dataset
module Inc = Webdep_store.Incremental

let m_epochs = Webdep_obs.Metrics.counter "epoch.replay.epochs"
let m_removed = Webdep_obs.Metrics.counter "epoch.replay.sites_removed"
let m_added = Webdep_obs.Metrics.counter "epoch.replay.sites_added"

let layers = [ D.Hosting; D.Dns; D.Ca; D.Tld ]

type cstate = {
  sites : (string, int * D.site) Hashtbl.t;  (* domain -> seq, site *)
  mutable next_seq : int;
}

type t = {
  countries : string list;  (* baseline order *)
  by_country : (string, cstate) Hashtbl.t;
  incs : (D.layer * Inc.t) list;
  mutable epoch : int;
}

let start (log : Log.t) =
  let ds = D.of_country_data log.Log.base in
  let by_country = Hashtbl.create 64 in
  List.iter
    (fun (cd : D.country_data) ->
      let cs = { sites = Hashtbl.create 512; next_seq = 0 } in
      List.iter
        (fun (s : D.site) ->
          Hashtbl.replace cs.sites s.D.domain (cs.next_seq, s);
          cs.next_seq <- cs.next_seq + 1)
        cd.D.sites;
      Hashtbl.replace by_country cd.D.country cs)
    log.Log.base;
  {
    countries = List.map (fun (cd : D.country_data) -> cd.D.country) log.Log.base;
    by_country;
    incs = List.map (fun l -> (l, Inc.create ds l)) layers;
    epoch = log.Log.base_epoch;
  }

let epoch t = t.epoch
let countries t = t.countries

let cstate t cc =
  match Hashtbl.find_opt t.by_country cc with
  | Some cs -> cs
  | None -> invalid_arg (Printf.sprintf "Replay.apply: unknown country %s" cc)

let apply t (ev : Log.event) =
  if ev.Log.epoch <= t.epoch then
    invalid_arg
      (Printf.sprintf "Replay.apply: epoch %d not after %d" ev.Log.epoch t.epoch);
  List.iter
    (fun (c : Log.churn) ->
      let cs = cstate t c.Log.country in
      let removed =
        List.map
          (fun dom ->
            match Hashtbl.find_opt cs.sites dom with
            | Some (_, s) ->
                Hashtbl.remove cs.sites dom;
                s
            | None ->
                invalid_arg
                  (Printf.sprintf "Replay.apply: %s removes unknown domain %s"
                     c.Log.country dom))
          c.Log.removed
      in
      List.iter
        (fun (s : D.site) ->
          if Hashtbl.mem cs.sites s.D.domain then
            invalid_arg
              (Printf.sprintf "Replay.apply: %s adds duplicate domain %s"
                 c.Log.country s.D.domain);
          Hashtbl.replace cs.sites s.D.domain (cs.next_seq, s);
          cs.next_seq <- cs.next_seq + 1)
        c.Log.added;
      Webdep_obs.Metrics.incr ~by:(List.length removed) m_removed;
      Webdep_obs.Metrics.incr ~by:(List.length c.Log.added) m_added;
      List.iter
        (fun (_, inc) ->
          Inc.apply inc ~country:c.Log.country ~added:c.Log.added ~removed)
        t.incs)
    ev.Log.changes;
  t.epoch <- ev.Log.epoch;
  Webdep_obs.Metrics.incr m_epochs

let inc t layer = List.assoc layer t.incs

let score t layer cc = Inc.score (inc t layer) cc
let hhi t layer cc = Inc.hhi (inc t layer) cc
let insularity t layer cc = Inc.insularity (inc t layer) cc

(* All countries' S in baseline order, fanned out across the pool when
   [jobs > 1].  Each country owns its cached-score cell, so parallel
   refreshes never race — and the order-preserving map keeps the result
   byte-identical at any [jobs]. *)
let scores ?jobs t layer =
  let inc = inc t layer in
  Webdep_par.map ?jobs
    (fun cc ->
      match Inc.score inc cc with
      | s -> Some (cc, s)
      | exception Not_found -> None)
    t.countries
  |> List.filter_map Fun.id

let materialize_country t cc =
  let cs = cstate t cc in
  let sites = Hashtbl.fold (fun _ entry acc -> entry :: acc) cs.sites [] in
  let sites =
    List.sort (fun (a, _) (b, _) -> Stdlib.compare (a : int) b) sites
  in
  { D.country = cc; sites = List.map snd sites }

let materialize t = List.map (materialize_country t) t.countries

(* Replay the whole committed log; [observe] sees the state after the
   baseline and after every epoch — where trend collection and
   epoch-by-epoch verification hook in. *)
let replay ?(observe = fun _ -> ()) (log : Log.t) =
  let t = start log in
  observe t;
  List.iter
    (fun ev ->
      apply t ev;
      observe t)
    log.Log.events;
  t

(* Collapse every epoch up to [head - keep_last] into a new baseline:
   replay that far, materialize, and keep only the trailing events.  The
   sequence-ordered materialization makes the compacted replay's site
   order — and therefore every downstream dataset and score — identical
   to the raw log's. *)
let compact (log : Log.t) ~keep_last =
  if keep_last < 0 then invalid_arg "Replay.compact: negative keep_last";
  let cut = log.Log.head - keep_last in
  if cut <= log.Log.base_epoch then log
  else begin
    let prefix, suffix =
      List.partition (fun (ev : Log.event) -> ev.Log.epoch <= cut) log.Log.events
    in
    let t = start { log with Log.events = prefix } in
    List.iter (apply t) prefix;
    {
      log with
      Log.base_epoch = cut;
      base = materialize t;
      events = suffix;
      dropped = false;
    }
  end
