(* The append-only churn transaction log (tlog) behind multi-epoch
   replay.

   On disk the log is a JSON-lines segment in the [Faults.Jsonl] mold —
   a self-describing header line, then entry lines — in three parts:

     header            {"schema":"webdep-epoch/1","base":K,"meta":{...}}
     dict              {"kind":"dict","strings":[...]}
     baseline          {"kind":"base","country":CC,"rows":[[ids...],...]}
     per epoch         {"kind":"churn","epoch":E,"country":CC,
                        "removed":[domains],"added":[site objects]}
                       {"kind":"commit","epoch":E}

   The baseline is the compacted head: every site of the base epoch,
   dictionary-compressed (one shared string table, each site a row of
   interned ids plus a flag word) so old epochs collapsed into it cost a
   fraction of their raw churn-record footprint.  Each later epoch is
   recorded as raw churn — removed domains and fully-measured added
   sites (the [Checkpoint] site codec, shared with the store spill) —
   closed by a commit marker.

   Crash safety mirrors the rest of the persistence plane: [create] and
   [write] go through [Jsonl.write_atomic] (temp + fsync + rename), and
   [append] writes an epoch's churn lines before its commit marker and
   fsyncs, so a writer killed mid-append leaves either a torn line
   (dropped by the [Jsonl] fold) or a committed-marker-less suffix —
   [load] discards any epoch without its commit, keeping the last
   committed prefix intact. *)

module Json = Webdep_json
module D = Webdep.Dataset
module Jsonl = Webdep_faults.Jsonl
module Checkpoint = Webdep_faults.Checkpoint

let schema = "webdep-epoch/1"

let m_appended = Webdep_obs.Metrics.counter "epoch.log.epochs_appended"
let m_dropped = Webdep_obs.Metrics.counter "epoch.log.epochs_dropped"

type churn = { country : string; removed : string list; added : D.site list }
type event = { epoch : int; changes : churn list }

type t = {
  meta : (string * Json.t) list;
  base_epoch : int;
  base : D.country_data list;  (* canonical country order *)
  events : event list;  (* committed, ascending epoch order *)
  head : int;  (* last committed epoch; [base_epoch] when no events *)
  dropped : bool;  (* a torn tail or uncommitted epoch was discarded *)
}

type verdict = Absent | Mismatch of string | Loaded of t

(* --- header ------------------------------------------------------------- *)

let header_line ~meta ~base_epoch =
  Json.to_string
    (Json.Obj
       [ ("schema", Json.String schema);
         ("base", Json.Int base_epoch);
         ("meta", Json.Obj meta) ])

(* --- dictionary compression of the baseline ----------------------------- *)

(* Interner assigning dense ids in first-encounter order; the decode
   table is the id-ordered string list. *)
type enc = { tbl : (string, int) Hashtbl.t; mutable next : int; mutable rev : string list }

let enc () = { tbl = Hashtbl.create 1024; next = 0; rev = [] }

let intern e s =
  match Hashtbl.find_opt e.tbl s with
  | Some i -> i
  | None ->
      let i = e.next in
      Hashtbl.add e.tbl s i;
      e.next <- i + 1;
      e.rev <- s :: e.rev;
      i

let intern_opt e = function None -> -1 | Some s -> intern e s

let intern_entity e = function
  | None -> (-1, -1)
  | Some (en : D.entity) -> (intern e en.D.name, intern e en.D.country)

(* One site as a 13-int row:
   [domain; hosting name; hosting cc; dns name; dns cc; ca name; ca cc;
    tld name; tld cc; hosting_geo; ns_geo; language; anycast flags],
   -1 encoding [None]. *)
let encode_site e (s : D.site) =
  let hn, hc = intern_entity e s.D.hosting in
  let dn, dc = intern_entity e s.D.dns in
  let cn, cc = intern_entity e s.D.ca in
  let tn = intern e s.D.tld.D.name and tc = intern e s.D.tld.D.country in
  let flags =
    (if s.D.hosting_anycast then 1 else 0) lor if s.D.ns_anycast then 2 else 0
  in
  [ intern e s.D.domain; hn; hc; dn; dc; cn; cc; tn; tc;
    intern_opt e s.D.hosting_geo; intern_opt e s.D.ns_geo;
    intern_opt e s.D.language; flags ]

exception Bad

let lookup dict i =
  if i < 0 || i >= Array.length dict then raise Bad else dict.(i)

let lookup_opt dict i = if i = -1 then None else Some (lookup dict i)

let lookup_entity dict n c =
  if n = -1 && c = -1 then None
  else Some { D.name = lookup dict n; country = lookup dict c }

let decode_site dict = function
  | [ dom; hn; hc; dn; dc; cn; cc; tn; tc; hg; ng; lang; flags ] ->
      {
        D.domain = lookup dict dom;
        hosting = lookup_entity dict hn hc;
        dns = lookup_entity dict dn dc;
        ca = lookup_entity dict cn cc;
        tld = { D.name = lookup dict tn; country = lookup dict tc };
        hosting_geo = lookup_opt dict hg;
        ns_geo = lookup_opt dict ng;
        hosting_anycast = flags land 1 <> 0;
        ns_anycast = flags land 2 <> 0;
        language = lookup_opt dict lang;
      }
  | _ -> raise Bad

(* --- line rendering ----------------------------------------------------- *)

let dict_line strings =
  Json.to_string
    (Json.Obj
       [ ("kind", Json.String "dict");
         ("strings", Json.List (List.map (fun s -> Json.String s) strings)) ])

let base_line ~country rows =
  Json.to_string
    (Json.Obj
       [ ("kind", Json.String "base");
         ("country", Json.String country);
         ( "rows",
           Json.List
             (List.map (fun row -> Json.List (List.map (fun i -> Json.Int i) row)) rows)
         ) ])

let churn_line ~epoch (c : churn) =
  Json.to_string
    (Json.Obj
       [ ("kind", Json.String "churn");
         ("epoch", Json.Int epoch);
         ("country", Json.String c.country);
         ("removed", Json.List (List.map (fun d -> Json.String d) c.removed));
         ("added", Json.List (List.map Checkpoint.site_to_json c.added)) ])

let commit_line epoch =
  Json.to_string
    (Json.Obj [ ("kind", Json.String "commit"); ("epoch", Json.Int epoch) ])

(* The baseline segment: encode every site first (building the dict in
   deterministic first-encounter order), then emit dict before rows. *)
let baseline_lines base =
  let e = enc () in
  let per_country =
    List.map
      (fun (cd : D.country_data) ->
        (cd.D.country, List.map (encode_site e) cd.D.sites))
      base
  in
  dict_line (List.rev e.rev)
  :: List.map (fun (country, rows) -> base_line ~country rows) per_country

let lines t =
  baseline_lines t.base
  @ List.concat_map
      (fun ev ->
        List.map (churn_line ~epoch:ev.epoch) ev.changes @ [ commit_line ev.epoch ])
      t.events

(* --- writing ------------------------------------------------------------ *)

let write ~path t =
  Jsonl.write_atomic ~path ~header:(header_line ~meta:t.meta ~base_epoch:t.base_epoch)
    (lines t)

let create ~path ?(meta = []) ~base_epoch ~base () =
  write ~path
    { meta; base_epoch; base; events = []; head = base_epoch; dropped = false }

(* Append one committed epoch: churn lines, then the commit marker, then
   flush + fsync — O(churn) regardless of how long the log already is.
   A crash before the commit marker reaches disk makes the whole epoch
   invisible to [load]. *)
let append ~path ~epoch changes =
  let oc = open_out_gen [ Open_append; Open_wronly ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter
        (fun c ->
          output_string oc (churn_line ~epoch c);
          output_char oc '\n')
        changes;
      output_string oc (commit_line epoch);
      output_char oc '\n';
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc));
  Webdep_obs.Metrics.incr m_appended

(* --- loading ------------------------------------------------------------ *)

let to_string_j = function Json.String s -> s | _ -> raise Bad
let to_int_j = function Json.Int i -> i | _ -> raise Bad
let get key obj = match Json.member key obj with Some v -> v | None -> raise Bad
let to_list_j = function Json.List l -> l | _ -> raise Bad

(* Streaming fold state: the dict, baseline countries so far (reversed),
   committed events (reversed), and the churn lines of the epoch whose
   commit marker has not arrived yet. *)
type fstate = {
  mutable dict : string array option;
  mutable base_rev : D.country_data list;
  mutable events_rev : event list;
  mutable pending : (int * churn list) option;  (* epoch, reversed changes *)
  mutable last : int;  (* last committed epoch *)
}

let apply_line st line =
  let v = Json.parse line in
  match to_string_j (get "kind" v) with
  | "dict" ->
      if st.dict <> None then raise Bad;
      st.dict <-
        Some (Array.of_list (List.map to_string_j (to_list_j (get "strings" v))))
  | "base" ->
      let dict = match st.dict with Some d -> d | None -> raise Bad in
      if st.pending <> None || st.events_rev <> [] then raise Bad;
      let country = to_string_j (get "country" v) in
      let sites =
        List.map
          (fun row -> decode_site dict (List.map to_int_j (to_list_j row)))
          (to_list_j (get "rows" v))
      in
      st.base_rev <- { D.country; sites } :: st.base_rev
  | "churn" ->
      let epoch = to_int_j (get "epoch" v) in
      let churn =
        {
          country = to_string_j (get "country" v);
          removed = List.map to_string_j (to_list_j (get "removed" v));
          added =
            List.map
              (fun s ->
                match Checkpoint.site_of_json s with Some s -> s | None -> raise Bad)
              (to_list_j (get "added" v));
        }
      in
      (match st.pending with
      | Some (e, acc) when e = epoch -> st.pending <- Some (e, churn :: acc)
      | Some _ -> raise Bad  (* interleaved epochs: not a valid log *)
      | None ->
          if epoch <= st.last then raise Bad;
          st.pending <- Some (epoch, [ churn ]))
  | "commit" -> (
      let epoch = to_int_j (get "epoch" v) in
      match st.pending with
      | Some (e, acc) when e = epoch ->
          st.events_rev <- { epoch; changes = List.rev acc } :: st.events_rev;
          st.pending <- None;
          st.last <- epoch
      | Some _ -> raise Bad
      | None ->
          (* An epoch may legitimately have no churn lines at all. *)
          if epoch <= st.last then raise Bad;
          st.events_rev <- { epoch; changes = [] } :: st.events_rev;
          st.last <- epoch)
  | _ -> raise Bad

let load ~path =
  if not (Sys.file_exists path) then Absent
  else begin
    (* The header is self-describing: read it, check the schema, then
       hand the exact line back to [Jsonl.fold] as the expected header
       so the entry fold shares the torn-tail machinery. *)
    let ic = open_in path in
    let header = (try input_line ic with End_of_file -> "") in
    close_in ic;
    match Json.parse header with
    | exception Json.Parse_error _ -> Mismatch "unreadable header"
    | v -> (
        match (Json.member "schema" v, Json.member "base" v, Json.member "meta" v) with
        | Some (Json.String s), _, _ when not (String.equal s schema) ->
            Mismatch (Printf.sprintf "schema %s, want %s" s schema)
        | Some (Json.String _), Some (Json.Int base_epoch), Some (Json.Obj meta) -> (
            let st =
              { dict = None; base_rev = []; events_rev = []; pending = None;
                last = base_epoch }
            in
            let f () line =
              match apply_line st line with
              | () -> Some ()
              | exception (Bad | Json.Parse_error _) -> None
            in
            match Jsonl.fold ~path ~header ~init:() ~f with
            | Jsonl.Fold_no_file -> Absent
            | Jsonl.Fold_header_mismatch -> Mismatch "header changed underfoot"
            | Jsonl.Folded { acc = (); torn } ->
                (* An uncommitted trailing epoch (the writer died between
                   its churn lines and its commit marker) is dropped
                   exactly like a torn line. *)
                let dropped = torn || st.pending <> None in
                if dropped then Webdep_obs.Metrics.incr m_dropped;
                Loaded
                  {
                    meta;
                    base_epoch;
                    base = List.rev st.base_rev;
                    events = List.rev st.events_rev;
                    head = st.last;
                    dropped;
                  })
        | _ -> Mismatch "malformed header")
  end
