(* Trend extraction over a replayed epoch stream: per-country S series
   with a least-squares slope, and a per-transition rank-churn series —
   the [Longitudinal] primitives applied to the many-epoch case. *)

module L = Webdep.Longitudinal

type series = {
  country : string;
  scores : float array;  (* S at base..head; NaN where the country had no score *)
  slope : float;  (* least-squares S slope per epoch *)
}

type t = {
  epochs : int array;  (* epoch numbers, base..head *)
  series : series list;  (* baseline country order *)
  rank_churn : int array;  (* total |rank displacement| per transition *)
}

(* [per_epoch.(i)] is the (country, S) list at the i-th observed epoch. *)
let of_scores ~countries ~epochs per_epoch =
  let series =
    List.map
      (fun cc ->
        let scores =
          Array.map
            (fun scored ->
              match List.assoc_opt cc scored with Some s -> s | None -> Float.nan)
            per_epoch
        in
        { country = cc; scores; slope = L.slope scores })
      countries
  in
  let rank_churn =
    Array.init
      (max 0 (Array.length per_epoch - 1))
      (fun i -> L.rank_displacement per_epoch.(i) per_epoch.(i + 1))
  in
  { epochs; series; rank_churn }

(* Replay a log collecting the S series of one layer at every epoch. *)
let of_log ?jobs (log : Log.t) layer =
  let acc = ref [] and epochs = ref [] in
  let t =
    Replay.replay
      ~observe:(fun r ->
        acc := Replay.scores ?jobs r layer :: !acc;
        epochs := Replay.epoch r :: !epochs)
      log
  in
  ( t,
    of_scores
      ~countries:(Replay.countries t)
      ~epochs:(Array.of_list (List.rev !epochs))
      (Array.of_list (List.rev !acc)) )

let render t =
  let b = Buffer.create 1024 in
  let n = Array.length t.epochs in
  Buffer.add_string b
    (Printf.sprintf "%-4s %10s %10s %12s\n" "cc" "S(first)" "S(last)" "slope/epoch");
  List.iter
    (fun s ->
      if n > 0 then
        Buffer.add_string b
          (Printf.sprintf "%-4s %10.6f %10.6f %+12.6f\n" s.country s.scores.(0)
             s.scores.(n - 1) s.slope))
    t.series;
  if Array.length t.rank_churn > 0 then begin
    let total = Array.fold_left ( + ) 0 t.rank_churn in
    Buffer.add_string b
      (Printf.sprintf "rank churn: total %d over %d transitions, per-epoch [%s]\n"
         total
         (Array.length t.rank_churn)
         (String.concat "," (Array.to_list (Array.map string_of_int t.rank_churn))))
  end;
  Buffer.contents b
