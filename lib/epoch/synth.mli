(** Deterministic churn synthesis: a many-epoch trajectory from two
    measured snapshots.  Every choice flows through a
    {!Webdep_stats.Rng} child stream keyed by (epoch, country), so the
    result is a pure function of the seed. *)

val generate :
  seed:int ->
  fraction:float ->
  epochs:int ->
  base_epoch:int ->
  base:Webdep.Dataset.country_data list ->
  donors:(string * Webdep.Dataset.site array) list ->
  Log.event list
(** [epochs] consecutive events after [base_epoch]: each removes a
    deterministic ~[fraction] of every country's current sites and
    admits the same number of donor sites (from the country's pool in
    [donors]) under epoch-minted unique domains.  Countries without a
    donor pool are left untouched. *)
