(** Trend extraction over an epoch stream: per-country S series and
    least-squares slope, plus a per-transition rank-churn series. *)

type series = {
  country : string;
  scores : float array;
      (** S at each observed epoch (base..head); NaN where unscored *)
  slope : float;  (** least-squares slope of S per epoch *)
}

type t = {
  epochs : int array;  (** observed epoch numbers, base..head *)
  series : series list;  (** baseline country order *)
  rank_churn : int array;
      (** total absolute rank displacement per adjacent-epoch transition *)
}

val of_scores :
  countries:string list ->
  epochs:int array ->
  (string * float) list array ->
  t
(** Assemble trends from per-epoch (country, S) observations. *)

val of_log : ?jobs:int -> Log.t -> Webdep.Dataset.layer -> Replay.t * t
(** Replay the whole log, collecting one layer's scores at every epoch;
    returns the final replay state (the head) alongside the trends. *)

val render : t -> string
(** Fixed-width trend table: first/last S and slope per country, then
    the rank-churn line. *)
