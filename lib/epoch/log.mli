(** Append-only churn transaction log: a dictionary-compressed baseline
    snapshot (the compacted head) followed by per-epoch churn records,
    each epoch closed by a commit marker.

    The on-disk format is a self-describing JSON-lines segment sharing
    the crash-safety machinery of {!Webdep_faults.Jsonl}: whole-file
    writes are atomic (temp + fsync + rename), appends are
    epoch-at-a-time with the commit marker last, and {!load} recovers
    from both a torn trailing line and a committed-marker-less suffix by
    dropping everything after the last committed epoch. *)

type churn = {
  country : string;
  removed : string list;  (** domains leaving the country's toplist *)
  added : Webdep.Dataset.site list;  (** fully-measured arriving sites *)
}

type event = { epoch : int; changes : churn list }

type t = {
  meta : (string * Webdep_json.t) list;
      (** caller metadata from the header (world seed, size, ...) *)
  base_epoch : int;
  base : Webdep.Dataset.country_data list;  (** baseline, canonical country order *)
  events : event list;  (** committed epochs, ascending *)
  head : int;  (** last committed epoch; [base_epoch] when no events *)
  dropped : bool;  (** a torn tail or uncommitted epoch was discarded *)
}

type verdict = Absent | Mismatch of string | Loaded of t

val schema : string

val create :
  path:string ->
  ?meta:(string * Webdep_json.t) list ->
  base_epoch:int ->
  base:Webdep.Dataset.country_data list ->
  unit ->
  unit
(** Write a fresh log holding only the baseline, atomically. *)

val append : path:string -> epoch:int -> churn list -> unit
(** Append one committed epoch — churn lines, then the commit marker,
    then fsync.  O(churn), independent of log length.  A crash before
    the marker reaches disk leaves the epoch invisible to {!load}.
    [epoch] must exceed the log's current head (checked on load). *)

val write : path:string -> t -> unit
(** Atomic whole-log rewrite — how compaction publishes its result. *)

val load : path:string -> verdict
(** Parse the log back, keeping the longest committed prefix.  [Mismatch]
    reports a foreign or unreadable header;  [dropped] on the loaded log
    flags recovered-over damage. *)

val lines : t -> string list
(** The entry lines [write] would emit (sans header) — exposed so tests
    can check the dictionary round-trip and tamper with specific
    lines. *)
