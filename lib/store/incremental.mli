(** Incremental metric recomputation under churn.

    Holds one {!Webdep.Dataset.Tally} per country for one layer and
    recomputes the paper's metrics from the maintained int-array tallies
    instead of re-tallying every site: centralization 𝒮 and HHI, usage
    [U], endemicity [E]/[E_R] and insularity.  Because the canonical
    count ordering depends only on the tallied multiset, every metric is
    bit-identical to a cold recomputation over the equivalent dataset.

    𝒮/HHI are cached per country.  A churn delta ({!apply}) marks the
    country dirty; the next read re-derives the score by the closed
    form directly over the re-canonicalized counts
    ([store.metrics.incremental]) when the provider support set is
    unchanged, and falls back to the full distribution rebuild
    ([store.metrics.full_solve]) only when the support set changed —
    mirroring how the EMD formulation only needs the full solve when
    buckets appear or vanish.  Clean reads count
    [store.metrics.cache_hits]. *)

type t

val create : Webdep.Dataset.t -> Webdep.Dataset.layer -> t
(** Tally every country of the dataset in the layer. *)

val countries : t -> string list

val apply :
  t ->
  country:string ->
  added:Webdep.Dataset.site list ->
  removed:Webdep.Dataset.site list ->
  unit
(** Delta-update one country: untally [removed] sites, tally [added]
    ones, adjust the site total.  Sites in [removed] must carry the
    labels they were tallied with (i.e. come from the superseded
    dataset).
    @raise Invalid_argument on removal of a never-tallied entity. *)

val score : t -> string -> float
(** Centralization 𝒮, bit-identical to
    [Webdep.Metrics.centralization].  @raise Not_found if the country is
    absent or has no labelled site. *)

val hhi : t -> string -> float

val insularity : t -> string -> float
(** Bit-identical to [Webdep.Regionalization.insularity]. *)

val counts : t -> string -> (Webdep.Dataset.entity * int) list
(** The country's canonical (entity, count) list — count-descending,
    ties by name then country.  The top-k provider-share queries of
    [webdep_serve] read it directly from the maintained tally.
    @raise Not_found if the country is absent. *)

val total : t -> string -> int
(** All sites of the country, labelled or not (the share denominator).
    @raise Not_found if the country is absent. *)

val usage : t -> name:string -> Webdep.Regionalization.usage_stats
(** Usage/endemicity stats of one provider, bit-identical to
    [Webdep.Regionalization.usage_curve] on the equivalent dataset.
    @raise Not_found if no country uses the provider. *)
