(** Cross-phase measurement memoization.

    A store maps (epoch, resolution, vantage, domain) to the measured
    site record and its fault outcome, for one world {!Fingerprint.t}.
    The measurement pipeline consults it before resolving a site and
    feeds it after, so the longitudinal sweep, repeated table phases and
    churn epochs pay only for sites they have never measured — the
    memoized record is exactly what a fresh measurement would produce,
    so store-backed and cold sweeps are byte-identical.

    Stores are domain-safe: lookups and inserts may come from parallel
    sweep workers.  The hit/miss counters are per-domain totals, so they
    are invariant under [--jobs].

    An optional JSONL spill ({!save}/{!load}) persists a store across
    processes, next to the checkpoint format: a header line carrying the
    schema tag and the fingerprint, then one line per entry (reusing the
    checkpoint's per-site codec).  Loading a file whose header does not
    match the current fingerprint discards it entirely — replaying
    measurements from a differently-parameterized world would silently
    corrupt results. *)

type entry = {
  site : Webdep.Dataset.site;
  outcome : Webdep_faults.Degrade.outcome;
}

type t

val schema : string

val create : fingerprint:Fingerprint.t -> unit -> t

val fingerprint : t -> Fingerprint.t

val size : t -> int

val find :
  t -> epoch:string -> resolution:string -> vantage:string -> string -> entry option
(** Memoized measurement of a domain, if present.  Increments
    [store.hits] or [store.misses]. *)

val find_all :
  t ->
  epoch:string ->
  resolution:string ->
  vantage:string ->
  string list ->
  entry list option
(** All-or-nothing lookup of a whole sweep's domains, in order.  On full
    coverage increments [store.hits] by the domain count and returns the
    entries; on any gap returns [None] {e without} touching counters, so
    a caller falling back to per-site {!find} still produces exact
    per-domain hit/miss totals. *)

val add :
  t -> epoch:string -> resolution:string -> vantage:string -> string -> entry -> unit
(** Memoize one measurement.  Last write wins (entries for a key are
    deterministic, so racing writers agree). *)

val save : t -> string -> unit
(** Spill to a JSONL file, entries in sorted key order so the file is
    identical for any insertion (and [--jobs]) order. *)

val load : path:string -> fingerprint:Fingerprint.t -> t
(** Load a spill file into a fresh store for [fingerprint].  A missing
    file yields an empty store; an existing file with a mismatched
    header yields an empty store and increments [store.invalidated]; a
    corrupt trailing line drops that line and the rest. *)
