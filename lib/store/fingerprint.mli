(** World fingerprints: the content hash that keys measurement-store
    validity.

    Two runs may share stored measurements only when every parameter
    that shapes a measured site record is identical: the world seed and
    toplist size (which fix toplists and provider mixes for every
    epoch), the geolocation accuracy (which fixes the geo-error draws),
    and the fault-injection parameters (which fix per-site verdicts and
    retry outcomes).  Vantage, resolution mode and epoch vary {e within}
    one world, so they live in the per-entry key, not here. *)

type t = {
  world_seed : int;
  c : int;
  geo_accuracy : float;
  fault_seed : int;  (** 0 when fault injection is disabled *)
  fault_rate : float;  (** 0.0 when fault injection is disabled *)
  max_attempts : int;  (** retry budget; 1 when faults are disabled *)
}

val v :
  world_seed:int ->
  c:int ->
  geo_accuracy:float ->
  fault_seed:int ->
  fault_rate:float ->
  max_attempts:int ->
  t

val equal : t -> t -> bool

val to_meta : t -> (string * Webdep_obs.Json.t) list
(** Header fields for the spill file, in a fixed order — the store
    compares serialized header lines byte-for-byte, so the order is part
    of the format. *)
