module Json = Webdep_json
module D = Webdep.Dataset
module Degrade = Webdep_faults.Degrade
module Checkpoint = Webdep_faults.Checkpoint

let schema = "webdep-store/1"

let m_hits = Webdep_obs.Metrics.counter "store.hits"
let m_misses = Webdep_obs.Metrics.counter "store.misses"
let m_invalidated = Webdep_obs.Metrics.counter "store.invalidated"

type entry = { site : D.site; outcome : Degrade.outcome }

type t = {
  fingerprint : Fingerprint.t;
  lock : Mutex.t;
  entries : (string, entry) Hashtbl.t;
}

let create ~fingerprint () =
  { fingerprint; lock = Mutex.create (); entries = Hashtbl.create 4096 }

let fingerprint t = t.fingerprint
let size t = Mutex.protect t.lock (fun () -> Hashtbl.length t.entries)

(* '|' cannot appear in an epoch name, resolution name, country code or
   domain, so the joined key is injective — and splits back into its
   four components for the spill file. *)
let key ~epoch ~resolution ~vantage domain =
  String.concat "|" [ epoch; resolution; vantage; domain ]

let find t ~epoch ~resolution ~vantage domain =
  let k = key ~epoch ~resolution ~vantage domain in
  let r = Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.entries k) in
  (match r with
  | Some _ -> Webdep_obs.Metrics.incr m_hits
  | None -> Webdep_obs.Metrics.incr m_misses);
  r

let find_all t ~epoch ~resolution ~vantage domains =
  let r =
    Mutex.protect t.lock @@ fun () ->
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | d :: rest -> (
          match Hashtbl.find_opt t.entries (key ~epoch ~resolution ~vantage d) with
          | Some e -> go (e :: acc) rest
          | None -> None)
    in
    go [] domains
  in
  (match r with
  | Some es -> Webdep_obs.Metrics.incr ~by:(List.length es) m_hits
  | None -> ());
  r

let add t ~epoch ~resolution ~vantage domain entry =
  let k = key ~epoch ~resolution ~vantage domain in
  Mutex.protect t.lock (fun () -> Hashtbl.replace t.entries k entry)

(* --- spill file -------------------------------------------------------- *)

let header_line fp =
  Json.to_string (Json.Obj (("schema", Json.String schema) :: Fingerprint.to_meta fp))

let entry_line ~epoch ~resolution ~vantage e =
  Json.to_string
    (Json.Obj
       [
         ("epoch", Json.String epoch);
         ("resolution", Json.String resolution);
         ("vantage", Json.String vantage);
         ("outcome", Json.String (Degrade.outcome_name e.outcome));
         ("site", Checkpoint.site_to_json e.site);
       ])

let outcome_of_name = function
  | "clean" -> Some Degrade.Clean
  | "degraded" -> Some Degrade.Degraded
  | "failed" -> Some Degrade.Failed
  | _ -> None

let entry_of_line line =
  match Json.parse line with
  | exception Json.Parse_error _ -> None
  | v -> (
      let str k = match Json.member k v with Some (Json.String s) -> Some s | _ -> None in
      match (str "epoch", str "resolution", str "vantage", str "outcome", Json.member "site" v) with
      | Some epoch, Some resolution, Some vantage, Some oname, Some site_v -> (
          match (outcome_of_name oname, Checkpoint.site_of_json site_v) with
          | Some outcome, Some site ->
              Some (key ~epoch ~resolution ~vantage site.D.domain, { site; outcome })
          | _ -> None)
      | _ -> None)

let save t path =
  let items =
    Mutex.protect t.lock (fun () ->
        Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.entries [])
  in
  let items = List.sort (fun (a, _) (b, _) -> String.compare a b) items in
  let oc = open_out path in
  output_string oc (header_line t.fingerprint);
  output_char oc '\n';
  List.iter
    (fun (k, e) ->
      match String.split_on_char '|' k with
      | [ epoch; resolution; vantage; _domain ] ->
          output_string oc (entry_line ~epoch ~resolution ~vantage e);
          output_char oc '\n'
      | _ -> assert false)
    items;
  close_out oc

let load ~path ~fingerprint =
  let t = create ~fingerprint () in
  (if Sys.file_exists path then begin
     let ic = open_in path in
     let header = match input_line ic with h -> Some h | exception End_of_file -> None in
     (match header with
     | Some h when String.equal h (header_line fingerprint) ->
         let rec go () =
           match input_line ic with
           | exception End_of_file -> ()
           | line -> (
               (* Stop at the first bad line: everything after a torn
                  write is suspect, like checkpoint recovery. *)
               match entry_of_line line with
               | Some (k, e) ->
                   Hashtbl.replace t.entries k e;
                   go ()
               | None -> ())
         in
         go ()
     | Some _ -> Webdep_obs.Metrics.incr m_invalidated
     | None -> ());
     close_in ic
   end);
  t
