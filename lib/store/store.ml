module Json = Webdep_json
module D = Webdep.Dataset
module Degrade = Webdep_faults.Degrade
module Checkpoint = Webdep_faults.Checkpoint

let schema = "webdep-store/1"

let m_hits = Webdep_obs.Metrics.counter "store.hits"
let m_misses = Webdep_obs.Metrics.counter "store.misses"
let m_invalidated = Webdep_obs.Metrics.counter "store.invalidated"

type entry = { site : D.site; outcome : Degrade.outcome }

type t = {
  fingerprint : Fingerprint.t;
  lock : Mutex.t;
  entries : (string, entry) Hashtbl.t;
}

let create ~fingerprint () =
  { fingerprint; lock = Mutex.create (); entries = Hashtbl.create 4096 }

let fingerprint t = t.fingerprint
let size t = Mutex.protect t.lock (fun () -> Hashtbl.length t.entries)

(* '|' cannot appear in an epoch name, resolution name, country code or
   domain, so the joined key is injective — and splits back into its
   four components for the spill file. *)
let key ~epoch ~resolution ~vantage domain =
  String.concat "|" [ epoch; resolution; vantage; domain ]

let find t ~epoch ~resolution ~vantage domain =
  let k = key ~epoch ~resolution ~vantage domain in
  let r = Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.entries k) in
  (match r with
  | Some _ -> Webdep_obs.Metrics.incr m_hits
  | None -> Webdep_obs.Metrics.incr m_misses);
  r

let find_all t ~epoch ~resolution ~vantage domains =
  let r =
    Mutex.protect t.lock @@ fun () ->
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | d :: rest -> (
          match Hashtbl.find_opt t.entries (key ~epoch ~resolution ~vantage d) with
          | Some e -> go (e :: acc) rest
          | None -> None)
    in
    go [] domains
  in
  (match r with
  | Some es -> Webdep_obs.Metrics.incr ~by:(List.length es) m_hits
  | None -> ());
  r

let add t ~epoch ~resolution ~vantage domain entry =
  let k = key ~epoch ~resolution ~vantage domain in
  Mutex.protect t.lock (fun () -> Hashtbl.replace t.entries k entry)

(* --- spill file -------------------------------------------------------- *)

let header_line fp =
  Json.to_string (Json.Obj (("schema", Json.String schema) :: Fingerprint.to_meta fp))

let entry_line ~epoch ~resolution ~vantage e =
  Json.to_string
    (Json.Obj
       [
         ("epoch", Json.String epoch);
         ("resolution", Json.String resolution);
         ("vantage", Json.String vantage);
         ("outcome", Json.String (Degrade.outcome_name e.outcome));
         ("site", Checkpoint.site_to_json e.site);
       ])

let outcome_of_name = function
  | "clean" -> Some Degrade.Clean
  | "degraded" -> Some Degrade.Degraded
  | "failed" -> Some Degrade.Failed
  | _ -> None

let entry_of_line line =
  match Json.parse line with
  | exception Json.Parse_error _ -> None
  | v -> (
      let str k = match Json.member k v with Some (Json.String s) -> Some s | _ -> None in
      match (str "epoch", str "resolution", str "vantage", str "outcome", Json.member "site" v) with
      | Some epoch, Some resolution, Some vantage, Some oname, Some site_v -> (
          match (outcome_of_name oname, Checkpoint.site_of_json site_v) with
          | Some outcome, Some site ->
              Some (key ~epoch ~resolution ~vantage site.D.domain, { site; outcome })
          | _ -> None)
      | _ -> None)

let save t path =
  let items =
    Mutex.protect t.lock (fun () ->
        Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.entries [])
  in
  let items = List.sort (fun (a, _) (b, _) -> String.compare a b) items in
  let lines =
    List.map
      (fun (k, e) ->
        match String.split_on_char '|' k with
        | [ epoch; resolution; vantage; _domain ] ->
            entry_line ~epoch ~resolution ~vantage e
        | _ -> assert false)
      items
  in
  (* Atomic replace: a sweep killed mid-save leaves the previous spill
     intact instead of a truncated file. *)
  Webdep_faults.Jsonl.write_atomic ~path ~header:(header_line t.fingerprint) lines

let m_torn = Webdep_obs.Metrics.counter "store.spill.torn_recovered"

let load ~path ~fingerprint =
  let t = create ~fingerprint () in
  (* Stream the spill straight into the table — one line live at a time,
     so loading a large spill never materializes the whole segment. *)
  let f () line =
    match entry_of_line line with
    | Some (k, e) ->
        Hashtbl.replace t.entries k e;
        Some ()
    | None -> None
  in
  (match
     Webdep_faults.Jsonl.fold ~path ~header:(header_line fingerprint) ~init:() ~f
   with
  | Webdep_faults.Jsonl.Fold_no_file -> ()
  | Webdep_faults.Jsonl.Fold_header_mismatch ->
      if Sys.file_exists path then Webdep_obs.Metrics.incr m_invalidated
  | Webdep_faults.Jsonl.Folded { acc = (); torn } ->
      (* A torn tail can only come from a pre-atomic spill (or a
         filesystem that lost the rename); keep the intact prefix —
         everything after the first bad line is suspect. *)
      if torn then Webdep_obs.Metrics.incr m_torn);
  t
