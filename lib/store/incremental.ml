module D = Webdep.Dataset
module R = Webdep.Regionalization
module C = Webdep_emd.Centralization

let m_cache_hits = Webdep_obs.Metrics.counter "store.metrics.cache_hits"
let m_incremental = Webdep_obs.Metrics.counter "store.metrics.incremental"
let m_full = Webdep_obs.Metrics.counter "store.metrics.full_solve"

type cstate = {
  tally : D.Tally.t;
  mutable total : int;  (* all sites, labelled or not: the U/insularity denominator *)
  mutable dirty : bool;
  mutable support_changed : bool;
  mutable score : float;  (* valid when [not dirty]; nan while unlabelled *)
  mutable hhi : float;
}

type t = {
  layer : D.layer;
  order : string list;
  by_country : (string, cstate) Hashtbl.t;
}

let create ds layer =
  let order = D.countries ds in
  let by_country = Hashtbl.create (List.length order) in
  List.iter
    (fun cc ->
      let cd = D.country_exn ds cc in
      Hashtbl.replace by_country cc
        {
          tally = D.Tally.of_sites cd.D.sites layer;
          total = List.length cd.D.sites;
          dirty = true;
          support_changed = true;
          score = Float.nan;
          hhi = Float.nan;
        })
    order;
  { layer; order; by_country }

let countries t = t.order

let state t cc =
  match Hashtbl.find_opt t.by_country cc with
  | Some cs -> cs
  | None -> raise Not_found

let apply t ~country ~added ~removed =
  let cs = state t country in
  List.iter
    (fun s -> if D.Tally.remove_site cs.tally t.layer s then cs.support_changed <- true)
    removed;
  List.iter
    (fun s -> if D.Tally.add_site cs.tally t.layer s then cs.support_changed <- true)
    added;
  cs.total <- cs.total + List.length added - List.length removed;
  cs.dirty <- true

(* Bring the cached 𝒮/HHI up to date.  Both paths reproduce
   [Centralization.score]'s float operations in canonical count order,
   so either is bit-identical to the cold computation; the incremental
   path just skips building a [Dist.t]. *)
let refresh cs =
  if not cs.dirty then Webdep_obs.Metrics.incr m_cache_hits
  else begin
    if cs.support_changed then begin
      Webdep_obs.Metrics.incr m_full;
      let dist = D.Tally.distribution cs.tally in
      cs.score <- C.score dist;
      cs.hhi <- C.hhi dist
    end
    else begin
      Webdep_obs.Metrics.incr m_incremental;
      let counts = D.Tally.counts cs.tally in
      let ctotal = List.fold_left (fun acc (_, k) -> acc + k) 0 counts in
      if ctotal = 0 then raise Not_found;
      let c = float_of_int ctotal in
      let acc = ref 0.0 in
      List.iter
        (fun (_, k) -> acc := !acc +. ((float_of_int k /. c) ** 2.0))
        counts;
      cs.score <- !acc -. (1.0 /. c);
      cs.hhi <- cs.score +. (1.0 /. c)
    end;
    cs.dirty <- false;
    cs.support_changed <- false
  end

let score t cc =
  let cs = state t cc in
  refresh cs;
  if Float.is_nan cs.score then raise Not_found;
  cs.score

let hhi t cc =
  let cs = state t cc in
  refresh cs;
  if Float.is_nan cs.hhi then raise Not_found;
  cs.hhi

let insularity t cc =
  let cs = state t cc in
  if cs.total = 0 then 0.0
  else
    float_of_int (D.Tally.home_count cs.tally cc) /. float_of_int cs.total

let counts t cc = D.Tally.counts (state t cc).tally
let total t cc = (state t cc).total

(* Replicates [Regionalization.usage_table] for one provider name: walk
   countries in dataset order, walk each canonical count list in order
   (later same-name entries overwrite the slot, as the table's
   [curve.(i) <- ...] does), keep the first-encountered entity. *)
let usage t ~name =
  let n = List.length t.order in
  let curve = Array.make n 0.0 in
  let entity = ref None in
  List.iteri
    (fun i cc ->
      let cs = state t cc in
      let total = float_of_int cs.total in
      List.iter
        (fun ((e : D.entity), k) ->
          if String.equal e.D.name name then begin
            if !entity = None then entity := Some e;
            curve.(i) <- 100.0 *. float_of_int k /. total
          end)
        (D.Tally.counts cs.tally))
    t.order;
  match !entity with
  | None -> raise Not_found
  | Some e -> R.stats_of_curve e curve
