module Json = Webdep_json

type t = {
  world_seed : int;
  c : int;
  geo_accuracy : float;
  fault_seed : int;
  fault_rate : float;
  max_attempts : int;
}

let v ~world_seed ~c ~geo_accuracy ~fault_seed ~fault_rate ~max_attempts =
  { world_seed; c; geo_accuracy; fault_seed; fault_rate; max_attempts }

let equal a b =
  a.world_seed = b.world_seed && a.c = b.c
  && Float.equal a.geo_accuracy b.geo_accuracy
  && a.fault_seed = b.fault_seed
  && Float.equal a.fault_rate b.fault_rate
  && a.max_attempts = b.max_attempts

let to_meta t =
  [
    ("world_seed", Json.Int t.world_seed);
    ("c", Json.Int t.c);
    ("geo_accuracy", Json.Float t.geo_accuracy);
    ("fault_seed", Json.Int t.fault_seed);
    ("fault_rate", Json.Float t.fault_rate);
    ("max_attempts", Json.Int t.max_attempts);
  ]
