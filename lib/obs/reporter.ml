(* Logs reporter installation.

   The seed carried Logs.debug calls but never installed a reporter, so
   library-level logging printed nothing.  [setup ()] installs a format
   reporter on stderr at the requested level; [level_of_verbosity] maps
   the CLI's repeated -v flag (0 = warnings, 1 = info, 2+ = debug). *)

let pp_header ppf (level, header) =
  match header with
  | Some h -> Fmt.pf ppf "[%s] " h
  | None -> (
      match (level : Logs.level) with
      | Logs.App -> ()
      | level -> Fmt.pf ppf "[%a] " Logs.pp_level level)

let level_of_verbosity = function
  | 0 -> Logs.Warning
  | 1 -> Logs.Info
  | _ -> Logs.Debug

let setup ?(level = Logs.Warning) () =
  Logs.set_level (Some level);
  Logs.set_reporter (Logs.format_reporter ~pp_header ~app:Fmt.stdout ~dst:Fmt.stderr ())
