(* Timing spans.

   [with_ ~name f] runs [f], measures its wall-clock duration, records it
   into the per-name duration histogram ["span." ^ name] in the metrics
   registry, and emits an event to the active trace sink.  Spans nest:
   a domain-local depth tracks containment so the console sink can
   indent and the jsonl export can reconstruct the tree — each worker
   domain gets its own nesting stack, so parallel sweeps don't corrupt
   one another's depth.  Exceptions propagate and still close the
   span. *)

let process_start = Unix.gettimeofday ()
let depth_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let histogram_prefix = "span."

let duration_histogram name = Metrics.histogram (histogram_prefix ^ name)

let with_ ?(attrs = []) ~name f =
  let t0 = Unix.gettimeofday () in
  let depth = Domain.DLS.get depth_key in
  let d = !depth in
  depth := d + 1;
  let finish () =
    depth := d;
    let dur = Unix.gettimeofday () -. t0 in
    Metrics.observe (duration_histogram name) dur;
    Sink.emit
      { Sink.name; attrs; start_s = t0 -. process_start; duration_s = dur; depth = d }
  in
  match f () with
  | v -> finish (); v
  | exception e -> finish (); raise e

(* Like [with_], but also returns the measured duration in seconds. *)
let timed ?attrs ~name f =
  let t0 = Unix.gettimeofday () in
  let v = with_ ?attrs ~name f in
  (v, Unix.gettimeofday () -. t0)
