(* Timing spans.

   [with_ ~name f] runs [f], measures its wall-clock duration and the
   movement of the GC counters (minor/promoted/major words, major
   collections), records the duration into the per-name histogram
   ["span." ^ name] in the metrics registry, and emits an event to the
   active trace sink.  Spans nest: a domain-local depth tracks
   containment so the console sink can indent and the trace exports can
   reconstruct the tree — each worker domain gets its own nesting stack,
   so parallel sweeps don't corrupt one another's depth.  Exceptions
   propagate and still close the span.

   Lanes: every event carries the lane of the domain that closed it, so
   multi-domain traces render one timeline per lane.  Pool workers call
   [set_lane] once at spawn to claim stable indices (1..jobs-1, the
   caller being lane 0); domains that never do fall back to their raw
   domain id. *)

let process_start = Unix.gettimeofday ()
let depth_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

(* None until [set_lane]; the raw domain id is the fallback, which makes
   the main domain lane 0 without any setup. *)
let lane_key : int option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let set_lane l = Domain.DLS.get lane_key := Some l

let lane () =
  match !(Domain.DLS.get lane_key) with
  | Some l -> l
  | None -> (Domain.self () :> int)

let histogram_prefix = "span."

let duration_histogram name = Metrics.histogram (histogram_prefix ^ name)

(* [Gc.quick_stat] on OCaml 5 only refreshes minor_words at minor
   collections, so a short span would read a delta of zero; the
   dedicated [Gc.minor_words] accumulator includes the words allocated
   since the last collection and is itself cheap (no stat record). *)
let gc_delta ~minor0 ~minor1 (a : Gc.stat) (b : Gc.stat) =
  {
    Sink.minor_words = minor1 -. minor0;
    promoted_words = b.Gc.promoted_words -. a.Gc.promoted_words;
    major_words = b.Gc.major_words -. a.Gc.major_words;
    major_collections = b.Gc.major_collections - a.Gc.major_collections;
  }

let with_ ?(attrs = []) ~name f =
  let g0 = Gc.quick_stat () in
  let minor0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let depth = Domain.DLS.get depth_key in
  let d = !depth in
  depth := d + 1;
  let finish () =
    depth := d;
    let dur = Unix.gettimeofday () -. t0 in
    let minor1 = Gc.minor_words () in
    let g1 = Gc.quick_stat () in
    Metrics.observe (duration_histogram name) dur;
    Sink.emit
      {
        Sink.name;
        attrs;
        start_s = t0 -. process_start;
        duration_s = dur;
        depth = d;
        lane = lane ();
        gc = gc_delta ~minor0 ~minor1 g0 g1;
      }
  in
  match f () with
  | v -> finish (); v
  | exception e -> finish (); raise e

(* Like [with_], but also returns the measured duration in seconds. *)
let timed ?attrs ~name f =
  let t0 = Unix.gettimeofday () in
  let v = with_ ?attrs ~name f in
  (v, Unix.gettimeofday () -. t0)
