(* The JSON tree used to live here; it is now the standalone
   [webdep_json] library shared with [webdep_store], [webdep_prof] and
   [webdep_serve].  Re-export it so [Webdep_obs.Json] stays a valid
   (and equal) alias for existing users. *)

include Webdep_json
