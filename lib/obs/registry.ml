(* JSON snapshot of every registered counter and histogram.

   The dump is stable — a "schema" version field first, counters and
   histograms in sorted key order — so two runs of the same workload
   (at any --jobs) diff cleanly, and span-duration histograms (names
   starting with "span.") are split into their own section.  Schema:

   {
     "schema": "webdep-metrics/2",
     "counters":   { "<name>": <int>, ... },
     "histograms": { "<name>": { "count", "sum", "mean", "stddev",
                                 "min", "max",
                                 "p50", "p90", "p99", "p999",
                                 "buckets": [{"le","count","sum"}] } },
     "spans":      { "<name>": <same histogram object, seconds> }
   }

   webdep-metrics/2 upgrades /1 with interpolated quantiles (p50..p999)
   and a per-bucket "sum" alongside each count. *)

let schema_version = "webdep-metrics/2"

let histogram_json h =
  let opt_float = function None -> Json.Null | Some v -> Json.Float v in
  Json.Obj
    [
      ("count", Json.Int (Metrics.count h));
      ("sum", Json.Float (Metrics.sum h));
      ("mean", Json.Float (Metrics.mean h));
      ("stddev", Json.Float (Metrics.stddev h));
      ("min", opt_float (Metrics.min_value h));
      ("max", opt_float (Metrics.max_value h));
      ("p50", opt_float (Metrics.quantile h 0.5));
      ("p90", opt_float (Metrics.quantile h 0.9));
      ("p99", opt_float (Metrics.quantile h 0.99));
      ("p999", opt_float (Metrics.quantile h 0.999));
      ( "buckets",
        Json.List
          (List.map
             (fun (le, k, s) ->
               Json.Obj
                 [
                   ("le", match le with Some b -> Json.Float b | None -> Json.Null);
                   ("count", Json.Int k);
                   ("sum", Json.Float s);
                 ])
             (Metrics.buckets_with_sums h)) );
    ]

let snapshot () =
  let by_name l = List.sort (fun (a, _) (b, _) -> compare a b) l in
  let counters =
    Metrics.fold_counters
      (fun c acc -> (Metrics.counter_name c, Json.Int (Metrics.value c)) :: acc)
      []
  in
  let spans, plain =
    Metrics.fold_histograms (fun h acc -> h :: acc) []
    |> List.partition (fun h ->
           String.length (Metrics.histogram_name h) > String.length Span.histogram_prefix
           && String.sub (Metrics.histogram_name h) 0 (String.length Span.histogram_prefix)
              = Span.histogram_prefix)
  in
  let histo_fields strip hs =
    List.map
      (fun h ->
        let name = Metrics.histogram_name h in
        let name =
          if strip then
            String.sub name (String.length Span.histogram_prefix)
              (String.length name - String.length Span.histogram_prefix)
          else name
        in
        (name, histogram_json h))
      hs
  in
  Json.Obj
    [
      ("schema", Json.String schema_version);
      ("counters", Json.Obj (by_name counters));
      ("histograms", Json.Obj (by_name (histo_fields false plain)));
      ("spans", Json.Obj (by_name (histo_fields true spans)));
    ]

let dump_json () = Json.to_string (snapshot ())

let write_file path =
  let oc = open_out path in
  output_string oc (dump_json ());
  output_char oc '\n';
  close_out oc

let reset = Metrics.reset
