(* JSON snapshot of every registered counter and histogram.

   The dump is stable (keys sorted by name) so two runs of the same
   workload can be diffed, and span-duration histograms (names starting
   with "span.") are split into their own section.  Schema:

   {
     "schema": "webdep-metrics/1",
     "counters":   { "<name>": <int>, ... },
     "histograms": { "<name>": { "count", "sum", "mean", "stddev",
                                 "min", "max", "buckets": [{"le","count"}] } },
     "spans":      { "<name>": <same histogram object, seconds> }
   } *)

let schema_version = "webdep-metrics/1"

let histogram_json h =
  let opt_float = function None -> Json.Null | Some v -> Json.Float v in
  Json.Obj
    [
      ("count", Json.Int (Metrics.count h));
      ("sum", Json.Float (Metrics.sum h));
      ("mean", Json.Float (Metrics.mean h));
      ("stddev", Json.Float (Metrics.stddev h));
      ("min", opt_float (Metrics.min_value h));
      ("max", opt_float (Metrics.max_value h));
      ( "buckets",
        Json.List
          (List.map
             (fun (le, k) ->
               Json.Obj
                 [
                   ("le", match le with Some b -> Json.Float b | None -> Json.Null);
                   ("count", Json.Int k);
                 ])
             (Metrics.buckets h)) );
    ]

let snapshot () =
  let by_name l = List.sort (fun (a, _) (b, _) -> compare a b) l in
  let counters =
    Metrics.fold_counters
      (fun c acc -> (Metrics.counter_name c, Json.Int (Metrics.value c)) :: acc)
      []
  in
  let spans, plain =
    Metrics.fold_histograms (fun h acc -> h :: acc) []
    |> List.partition (fun h ->
           String.length (Metrics.histogram_name h) > String.length Span.histogram_prefix
           && String.sub (Metrics.histogram_name h) 0 (String.length Span.histogram_prefix)
              = Span.histogram_prefix)
  in
  let histo_fields strip hs =
    List.map
      (fun h ->
        let name = Metrics.histogram_name h in
        let name =
          if strip then
            String.sub name (String.length Span.histogram_prefix)
              (String.length name - String.length Span.histogram_prefix)
          else name
        in
        (name, histogram_json h))
      hs
  in
  Json.Obj
    [
      ("schema", Json.String schema_version);
      ("counters", Json.Obj (by_name counters));
      ("histograms", Json.Obj (by_name (histo_fields false plain)));
      ("spans", Json.Obj (by_name (histo_fields true spans)));
    ]

let dump_json () = Json.to_string (snapshot ())

let write_file path =
  let oc = open_out path in
  output_string oc (dump_json ());
  output_char oc '\n';
  close_out oc

let reset = Metrics.reset
