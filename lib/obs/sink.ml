(* Trace sinks: where finished spans go.

   The default is [null] — emitting to it is a single indirect call that
   does nothing, so instrumentation can stay on unconditionally.  The
   console sink pretty-prints through [Logs] (level App, so it shows even
   without -v once a reporter is installed); the jsonl sink appends one
   JSON object per span to a file for offline analysis; [tee] fans one
   stream out to two sinks (console + trace file, collector + export).

   Spans may finish on any domain, so the console and jsonl sinks
   serialize their writes through a lock — each emitted line is atomic
   with respect to other domains. *)

(* GC-counter movement across a span: minor/promoted/major words are the
   allocation story ([Gc.quick_stat] deltas, so words not bytes), major
   collections say whether the span paid for a full marking cycle. *)
type gc_delta = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  major_collections : int;
}

let zero_gc =
  { minor_words = 0.0; promoted_words = 0.0; major_words = 0.0; major_collections = 0 }

type event = {
  name : string;
  attrs : (string * string) list;
  start_s : float;  (* seconds since process start *)
  duration_s : float;
  depth : int;  (* nesting depth at span entry, outermost = 0 *)
  lane : int;  (* emitting lane: pool worker index, or the raw domain id *)
  gc : gc_delta;  (* GC counter movement while the span was open *)
}

type t = { emit : event -> unit; flush : unit -> unit }

let null = { emit = ignore; flush = ignore }

let active = ref null

let set t =
  (!active).flush ();
  active := t

let current () = !active
let emit ev = (!active).emit ev
let flush () = (!active).flush ()

(* Run [f] with [t] installed, restoring the previous sink afterwards. *)
let with_sink t f =
  let prev = !active in
  set t;
  let restore () =
    (!active).flush ();
    active := prev
  in
  match f () with
  | v -> restore (); v
  | exception e -> restore (); raise e

(* Every event goes to [a] then [b]; flush in the same order. *)
let tee a b =
  {
    emit = (fun ev -> a.emit ev; b.emit ev);
    flush = (fun () -> a.flush (); b.flush ());
  }

(* --- console ----------------------------------------------------------- *)

let pp_duration ppf s =
  if s >= 1.0 then Fmt.pf ppf "%.2fs" s
  else if s >= 1e-3 then Fmt.pf ppf "%.2fms" (s *. 1e3)
  else Fmt.pf ppf "%.0fus" (s *. 1e6)

let pp_attrs ppf = function
  | [] -> ()
  | attrs ->
      Fmt.pf ppf " {%a}"
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (k, v) -> Fmt.pf ppf "%s=%s" k v))
        attrs

let console () =
  let lock = Mutex.create () in
  {
    emit =
      (fun ev ->
        Mutex.protect lock (fun () ->
            Logs.app (fun m ->
                m "%*sspan %-28s %a%a" (2 * ev.depth) "" ev.name pp_duration ev.duration_s
                  pp_attrs ev.attrs)));
    flush = ignore;
  }

(* --- JSON lines -------------------------------------------------------- *)

let json_of_event ev =
  Json.Obj
    [
      ("name", Json.String ev.name);
      ("start_s", Json.Float ev.start_s);
      ("duration_s", Json.Float ev.duration_s);
      ("depth", Json.Int ev.depth);
      ("lane", Json.Int ev.lane);
      ("minor_words", Json.Float ev.gc.minor_words);
      ("promoted_words", Json.Float ev.gc.promoted_words);
      ("major_words", Json.Float ev.gc.major_words);
      ("major_collections", Json.Int ev.gc.major_collections);
      ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) ev.attrs));
    ]

let jsonl path =
  let oc = open_out path in
  let lock = Mutex.create () in
  {
    emit =
      (fun ev ->
        Mutex.protect lock (fun () ->
            output_string oc (Json.to_string (json_of_event ev));
            output_char oc '\n'));
    flush = (fun () -> Mutex.protect lock (fun () -> Stdlib.flush oc));
  }
