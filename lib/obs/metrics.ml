(* Process-global counters and histograms.

   Creation goes through a name-keyed registry (memoized, so any module
   can reach a metric by name); the hot path — [incr] and [observe] —
   touches only mutable record fields, no table lookup.  Instrumented
   modules bind their metrics once at module initialization:

     let m_queries = Webdep_obs.Metrics.counter "dns.iterative.queries"

   [reset ()] zeroes every registered metric in place, keeping the
   references held by instrumented modules valid. *)

type counter = { c_name : string; mutable count : int }

type histogram = {
  h_name : string;
  bounds : float array;  (* ascending bucket upper bounds *)
  bucket_counts : int array;  (* length = Array.length bounds + 1; last = overflow *)
  mutable n : int;
  mutable sum : float;
  mutable sum_sq : float;
  mutable min_seen : float;
  mutable max_seen : float;
}

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 64

(* --- counters ---------------------------------------------------------- *)

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
      let c = { c_name = name; count = 0 } in
      Hashtbl.replace counters name c;
      c

let incr ?(by = 1) c = c.count <- c.count + by
let value c = c.count
let counter_name c = c.c_name

(* --- histograms -------------------------------------------------------- *)

(* Default bounds cover both sub-second span durations and small integer
   observations (query depths, list lengths). *)
let default_bounds =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 0.5; 1.0; 2.0; 5.0; 10.0; 30.0; 60.0; 300.0; 3600.0 |]

let histogram ?(bounds = default_bounds) name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
      let h =
        {
          h_name = name;
          bounds;
          bucket_counts = Array.make (Array.length bounds + 1) 0;
          n = 0;
          sum = 0.0;
          sum_sq = 0.0;
          min_seen = Float.infinity;
          max_seen = Float.neg_infinity;
        }
      in
      Hashtbl.replace histograms name h;
      h

let bucket_index h v =
  let rec go i = if i >= Array.length h.bounds || v <= h.bounds.(i) then i else go (i + 1) in
  go 0

let observe h v =
  h.n <- h.n + 1;
  h.sum <- h.sum +. v;
  h.sum_sq <- h.sum_sq +. (v *. v);
  if v < h.min_seen then h.min_seen <- v;
  if v > h.max_seen then h.max_seen <- v;
  let i = bucket_index h v in
  h.bucket_counts.(i) <- h.bucket_counts.(i) + 1

let count h = h.n
let sum h = h.sum
let histogram_name h = h.h_name
let mean h = if h.n = 0 then 0.0 else h.sum /. float_of_int h.n

let stddev h =
  if h.n = 0 then 0.0
  else
    let m = mean h in
    let var = (h.sum_sq /. float_of_int h.n) -. (m *. m) in
    sqrt (Float.max 0.0 var)

let min_value h = if h.n = 0 then None else Some h.min_seen
let max_value h = if h.n = 0 then None else Some h.max_seen

(* Bucket-based quantile estimate: the upper bound of the bucket holding
   the q-th observation (the overflow bucket reports the max seen). *)
let quantile h q =
  if h.n = 0 then None
  else
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let target = int_of_float (ceil (q *. float_of_int h.n)) in
    let target = Stdlib.max 1 target in
    let acc = ref 0 and found = ref None in
    Array.iteri
      (fun i k ->
        if !found = None then begin
          acc := !acc + k;
          if !acc >= target then
            found := Some (if i < Array.length h.bounds then h.bounds.(i) else h.max_seen)
        end)
      h.bucket_counts;
    !found

(* Nonempty (upper-bound, count) pairs, overflow bucket last with no bound. *)
let buckets h =
  let out = ref [] in
  Array.iteri
    (fun i k ->
      if k > 0 then
        out :=
          ((if i < Array.length h.bounds then Some h.bounds.(i) else None), k) :: !out)
    h.bucket_counts;
  List.rev !out

(* --- registry-wide operations ------------------------------------------ *)

let fold_counters f acc =
  Hashtbl.fold (fun _ c acc -> f c acc) counters acc

let fold_histograms f acc =
  Hashtbl.fold (fun _ h acc -> f h acc) histograms acc

let reset () =
  Hashtbl.iter (fun _ c -> c.count <- 0) counters;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.bucket_counts 0 (Array.length h.bucket_counts) 0;
      h.n <- 0;
      h.sum <- 0.0;
      h.sum_sq <- 0.0;
      h.min_seen <- Float.infinity;
      h.max_seen <- Float.neg_infinity)
    histograms
