(* Process-global counters and histograms, safe under concurrent
   mutation from multiple domains.

   Creation goes through a name-keyed registry (memoized and
   mutex-guarded, so any module — or any worker domain — can reach a
   metric by name); the hot path — [incr] and [observe] — touches only
   [Atomic.t] fields, no table lookup and no lock.  Instrumented modules
   bind their metrics once at module initialization:

     let m_queries = Webdep_obs.Metrics.counter "dns.iterative.queries"

   Float fields (histogram sums / min / max) are updated with CAS retry
   loops; integer fields use [Atomic.fetch_and_add].  Cross-field reads
   (e.g. [mean] = sum / n) are not snapshotted atomically — a dump taken
   while another domain observes may be skewed by the in-flight update —
   but no update is ever lost, which is the invariant the parallel
   pipeline needs.

   Histograms keep a per-bucket sum alongside each count, so the mean is
   exact and quantiles interpolate linearly inside the bucket holding
   the target rank instead of reporting the bucket's upper bound; the
   overflow bucket interpolates up to the true max seen.  [merge_into]
   folds one histogram into another (same bounds required) — the
   cross-domain / cross-process reduction a latency digest needs.

   [reset ()] zeroes every registered metric in place, keeping the
   references held by instrumented modules valid. *)

type counter = { c_name : string; count : int Atomic.t }

type histogram = {
  h_name : string;
  bounds : float array;  (* ascending bucket upper bounds *)
  bucket_counts : int Atomic.t array;  (* length = Array.length bounds + 1; last = overflow *)
  bucket_sums : float Atomic.t array;  (* same shape: sum of observations per bucket *)
  n : int Atomic.t;
  sum : float Atomic.t;
  sum_sq : float Atomic.t;
  min_seen : float Atomic.t;
  max_seen : float Atomic.t;
}

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 64

(* Guards the registry tables (creation, fold, reset) — never the
   per-metric hot path. *)
let registry_lock = Mutex.create ()

(* --- atomic float helpers ---------------------------------------------- *)

let rec atomic_add_float a v =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. v)) then atomic_add_float a v

let rec atomic_min_float a v =
  let old = Atomic.get a in
  if v < old && not (Atomic.compare_and_set a old v) then atomic_min_float a v

let rec atomic_max_float a v =
  let old = Atomic.get a in
  if v > old && not (Atomic.compare_and_set a old v) then atomic_max_float a v

(* --- counters ---------------------------------------------------------- *)

let counter name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
          let c = { c_name = name; count = Atomic.make 0 } in
          Hashtbl.replace counters name c;
          c)

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.count by)
let value c = Atomic.get c.count
let counter_name c = c.c_name

(* --- histograms -------------------------------------------------------- *)

(* Default bounds cover both sub-second span durations and small integer
   observations (query depths, list lengths). *)
let default_bounds =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 0.5; 1.0; 2.0; 5.0; 10.0; 30.0; 60.0; 300.0; 3600.0 |]

let histogram ?(bounds = default_bounds) name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt histograms name with
      | Some h -> h
      | None ->
          let h =
            {
              h_name = name;
              bounds;
              bucket_counts = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
              bucket_sums = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0.0);
              n = Atomic.make 0;
              sum = Atomic.make 0.0;
              sum_sq = Atomic.make 0.0;
              min_seen = Atomic.make Float.infinity;
              max_seen = Atomic.make Float.neg_infinity;
            }
          in
          Hashtbl.replace histograms name h;
          h)

let bucket_index h v =
  let rec go i = if i >= Array.length h.bounds || v <= h.bounds.(i) then i else go (i + 1) in
  go 0

let observe h v =
  ignore (Atomic.fetch_and_add h.n 1);
  atomic_add_float h.sum v;
  atomic_add_float h.sum_sq (v *. v);
  atomic_min_float h.min_seen v;
  atomic_max_float h.max_seen v;
  let b = bucket_index h v in
  ignore (Atomic.fetch_and_add h.bucket_counts.(b) 1);
  atomic_add_float h.bucket_sums.(b) v

let count h = Atomic.get h.n
let sum h = Atomic.get h.sum
let histogram_name h = h.h_name
let mean h = if count h = 0 then 0.0 else sum h /. float_of_int (count h)

let stddev h =
  if count h = 0 then 0.0
  else
    let m = mean h in
    let var = (Atomic.get h.sum_sq /. float_of_int (count h)) -. (m *. m) in
    sqrt (Float.max 0.0 var)

let min_value h = if count h = 0 then None else Some (Atomic.get h.min_seen)
let max_value h = if count h = 0 then None else Some (Atomic.get h.max_seen)

(* Interpolated quantile: locate the bucket holding the continuous rank
   q*n, then interpolate linearly between the bucket's bounds by the
   rank's position inside it.  The first bucket's lower edge is pulled
   down to the min seen and the overflow bucket's upper edge is the max
   seen, so single-valued histograms and q = 1 are exact; the result is
   finally clamped to [min, max], which keeps the estimate inside the
   observed range even when a bucket is far wider than its contents. *)
let quantile h q =
  let n = count h in
  if n = 0 then None
  else
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = Float.max 1.0 (q *. float_of_int n) in
    let lo_edge i = if i = 0 then Atomic.get h.min_seen else h.bounds.(i - 1) in
    let hi_edge i =
      if i < Array.length h.bounds then h.bounds.(i) else Atomic.get h.max_seen
    in
    let nb = Array.length h.bucket_counts in
    let rec go i cum =
      if i >= nb then Some (Atomic.get h.max_seen)
      else
        let k = Atomic.get h.bucket_counts.(i) in
        if k > 0 && rank <= float_of_int (cum + k) then begin
          let frac = (rank -. float_of_int cum) /. float_of_int k in
          let lo = Float.min (lo_edge i) (hi_edge i) in
          let v = lo +. (frac *. (hi_edge i -. lo)) in
          Some
            (Float.max (Atomic.get h.min_seen) (Float.min (Atomic.get h.max_seen) v))
        end
        else go (i + 1) (cum + k)
    in
    go 0 0

(* Nonempty (upper-bound, count) pairs, overflow bucket last with no bound. *)
let buckets h =
  let out = ref [] in
  Array.iteri
    (fun i k ->
      let k = Atomic.get k in
      if k > 0 then
        out :=
          ((if i < Array.length h.bounds then Some h.bounds.(i) else None), k) :: !out)
    h.bucket_counts;
  List.rev !out

(* Like [buckets], with each bucket's sum of observations. *)
let buckets_with_sums h =
  let out = ref [] in
  Array.iteri
    (fun i k ->
      let k = Atomic.get k in
      if k > 0 then
        out :=
          ( (if i < Array.length h.bounds then Some h.bounds.(i) else None),
            k,
            Atomic.get h.bucket_sums.(i) )
          :: !out)
    h.bucket_counts;
  List.rev !out

(* Fold [src] into [into]: the mergeable reduction for combining per-domain
   or per-process digests.  Both histograms must share bounds. *)
let merge_into ~into src =
  if into.bounds <> src.bounds then
    invalid_arg
      (Printf.sprintf "Metrics.merge_into: %s and %s have different bounds"
         into.h_name src.h_name);
  Array.iteri
    (fun i k -> ignore (Atomic.fetch_and_add into.bucket_counts.(i) (Atomic.get k)))
    src.bucket_counts;
  Array.iteri
    (fun i s -> atomic_add_float into.bucket_sums.(i) (Atomic.get s))
    src.bucket_sums;
  ignore (Atomic.fetch_and_add into.n (Atomic.get src.n));
  atomic_add_float into.sum (Atomic.get src.sum);
  atomic_add_float into.sum_sq (Atomic.get src.sum_sq);
  if Atomic.get src.n > 0 then begin
    atomic_min_float into.min_seen (Atomic.get src.min_seen);
    atomic_max_float into.max_seen (Atomic.get src.max_seen)
  end

(* --- observe-only fast path -------------------------------------------- *)

(* [observe] above costs ~8 atomic RMW operations; fine for per-span
   instrumentation, too heavy at hundreds of thousands of events per
   second.  A [Local.t] is a plain-field (unsynchronized) accumulator
   over the same buckets, owned by exactly one domain: [Local.observe]
   is a handful of loads and stores, and [Local.flush] folds the pending
   observations into the shared histogram in one pass — the serve loop
   observes per request and flushes once per batch, so shared-state
   traffic is O(batches), not O(requests). *)
module Local = struct
  type nonrec t = {
    target : histogram;
    l_counts : int array;
    l_sums : float array;
    mutable l_n : int;
    mutable l_sum : float;
    mutable l_sum_sq : float;
    mutable l_min : float;
    mutable l_max : float;
  }

  let create target =
    let nb = Array.length target.bucket_counts in
    {
      target;
      l_counts = Array.make nb 0;
      l_sums = Array.make nb 0.0;
      l_n = 0;
      l_sum = 0.0;
      l_sum_sq = 0.0;
      l_min = Float.infinity;
      l_max = Float.neg_infinity;
    }

  let observe l v =
    l.l_n <- l.l_n + 1;
    l.l_sum <- l.l_sum +. v;
    l.l_sum_sq <- l.l_sum_sq +. (v *. v);
    if v < l.l_min then l.l_min <- v;
    if v > l.l_max then l.l_max <- v;
    let b = bucket_index l.target v in
    l.l_counts.(b) <- l.l_counts.(b) + 1;
    l.l_sums.(b) <- l.l_sums.(b) +. v

  let pending l = l.l_n

  let flush l =
    if l.l_n > 0 then begin
      let h = l.target in
      Array.iteri
        (fun i k ->
          if k > 0 then begin
            ignore (Atomic.fetch_and_add h.bucket_counts.(i) k);
            atomic_add_float h.bucket_sums.(i) l.l_sums.(i);
            l.l_counts.(i) <- 0;
            l.l_sums.(i) <- 0.0
          end)
        l.l_counts;
      ignore (Atomic.fetch_and_add h.n l.l_n);
      atomic_add_float h.sum l.l_sum;
      atomic_add_float h.sum_sq l.l_sum_sq;
      atomic_min_float h.min_seen l.l_min;
      atomic_max_float h.max_seen l.l_max;
      l.l_n <- 0;
      l.l_sum <- 0.0;
      l.l_sum_sq <- 0.0;
      l.l_min <- Float.infinity;
      l.l_max <- Float.neg_infinity
    end
end

(* --- registry-wide operations ------------------------------------------ *)

let fold_counters f acc =
  Mutex.protect registry_lock (fun () -> Hashtbl.fold (fun _ c acc -> f c acc) counters acc)

let fold_histograms f acc =
  Mutex.protect registry_lock (fun () -> Hashtbl.fold (fun _ h acc -> f h acc) histograms acc)

let reset () =
  Mutex.protect registry_lock (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.count 0) counters;
      Hashtbl.iter
        (fun _ h ->
          Array.iter (fun b -> Atomic.set b 0) h.bucket_counts;
          Array.iter (fun b -> Atomic.set b 0.0) h.bucket_sums;
          Atomic.set h.n 0;
          Atomic.set h.sum 0.0;
          Atomic.set h.sum_sq 0.0;
          Atomic.set h.min_seen Float.infinity;
          Atomic.set h.max_seen Float.neg_infinity)
        histograms)
