let weighted_score groups =
  let total = ref 0.0 and provider_sq = ref 0.0 and site_sq = ref 0.0 in
  List.iter
    (fun weights ->
      let mass = ref 0.0 in
      Array.iter
        (fun w ->
          if w < 0.0 then invalid_arg "Extensions.weighted_score: negative weight";
          mass := !mass +. w;
          site_sq := !site_sq +. (w *. w))
        weights;
      total := !total +. !mass;
      provider_sq := !provider_sq +. (!mass *. !mass))
    groups;
  if !total <= 0.0 then invalid_arg "Extensions.weighted_score: zero total weight";
  (!provider_sq -. !site_sq) /. (!total *. !total)

let pairwise a b =
  let supply = Dist.sorted_desc a in
  let ca = Dist.total a and cb = Dist.total b in
  (* Scale b onto a's total so the transportation problem balances. *)
  let demand = Array.map (fun m -> m *. ca /. cb) (Dist.sorted_desc b) in
  let cost i j = Float.abs (supply.(i) -. demand.(j)) /. ca in
  Transport.emd ~supply ~demand ~cost

let sorted_share_l1 a b =
  let sa = Array.map (fun m -> m /. Dist.total a) (Dist.sorted_desc a) in
  let sb = Array.map (fun m -> m /. Dist.total b) (Dist.sorted_desc b) in
  let n = max (Array.length sa) (Array.length sb) in
  let get v i = if i < Array.length v then v.(i) else 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. Float.abs (get sa i -. get sb i)
  done;
  !acc /. 2.0
