(** Exact solver for the balanced transportation problem — the discrete
    formalization of Earth Mover's Distance in Appendix A of the paper.

    Given supplies [a_1..a_n], demands [r_1..r_m] with equal totals, and a
    ground-distance function [d i j], find nonnegative flows [f_ij] with
    row sums [a_i] and column sums [r_j] minimizing [Σ f_ij · d i j].

    Both solvers run successive shortest augmenting paths on the bipartite
    flow network; each augmentation saturates an edge, so the number of
    augmentations is O(n·m) independent of the mass moved.  {!solve} keeps
    Johnson node potentials so each augmentation is a binary-heap Dijkstra
    over nonnegative reduced costs, terminated as soon as the sink settles
    (one initial Bellman–Ford seeds the potentials); {!solve_reference} is
    the original implementation that
    re-runs Bellman–Ford over the full residual graph on every
    augmentation, kept as an oracle for differential testing.  Production
    centralization scoring uses the O(n) closed form in
    {!Centralization}. *)

type solution = {
  work : float;  (** minimal total work Σ f_ij·d_ij *)
  flows : (int * int * float) list;  (** positive flows (i, j, f_ij) *)
}

val solve :
  supply:float array -> demand:float array -> cost:(int -> int -> float) -> solution
(** Dijkstra-with-potentials solver on a flat-array residual graph.
    @raise Invalid_argument if a supply/demand is negative, either side is
    empty, or totals differ by more than a 1e-6 relative tolerance. *)

val solve_reference :
  supply:float array -> demand:float array -> cost:(int -> int -> float) -> solution
(** The original Bellman–Ford-per-augmentation solver.  Same contract as
    {!solve}; asymptotically slower (O(V·E) per augmentation instead of
    O(E log V)).  Kept for differential testing and benchmarking. *)

val emd :
  supply:float array -> demand:float array -> cost:(int -> int -> float) -> float
(** Work normalized by total flow — the EMD value of Appendix A when
    [0 <= d_ij <= 1].  Uses {!solve}. *)
