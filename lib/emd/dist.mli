(** Discrete distributions of "mass" over indexed buckets.

    In the paper's setting a bucket is a provider and its mass is the number
    of websites using that provider; the reference distribution is [C]
    buckets of mass 1 (every website its own provider). *)

type t
(** A distribution: nonnegative masses, at least one positive. *)

val of_counts : int array -> t
(** Build from integer counts (websites per provider).  Zero-count buckets
    are dropped.  @raise Invalid_argument if any count is negative or all
    are zero. *)

val of_positive_counts : int array -> t
(** Like {!of_counts} for counts known to be strictly positive (e.g. a
    maintained provider tally with zero entries already filtered): one
    pass, no bucket ever dropped, bit-identical result to {!of_counts}.
    @raise Invalid_argument if any count is [<= 0] or the array is
    empty. *)

val of_masses : float array -> t
(** Build from float masses.  @raise Invalid_argument if any mass is
    negative or all are zero. *)

val uniform_reference : int -> t
(** [uniform_reference c] is the fully decentralized reference: [c] buckets
    of mass 1.  @raise Invalid_argument if [c <= 0]. *)

val masses : t -> float array
(** The positive masses, in construction order. *)

val sorted_desc : t -> float array
(** Masses sorted nonincreasing (the paper's canonical presentation). *)

val total : t -> float
(** Total mass [C]. *)

val size : t -> int
(** Number of (positive-mass) buckets. *)

val shares : t -> float array
(** Masses divided by total: the market-share vector [a_i / C]. *)

val top_share : t -> int -> float
(** [top_share t k] is the total share of the [k] largest buckets — the
    "top-N" heuristic the paper argues is insufficient. *)
