(** The paper's Centralization Score 𝒮 (§3.2, Appendix A).

    𝒮 is the Earth Mover's Distance from an observed provider distribution
    [A = (a_1..a_n)] to the fully decentralized reference [R] ([C] buckets
    of mass 1, [C = Σ a_i]), with ground distance
    [d_ij = (a_i − 1)/C] and normalization by total flow.  It admits the
    closed form

    {v 𝒮 = Σ_i (a_i/C)² − 1/C v}

    which is the Herfindahl–Hirschman Index minus [1/C]; the upper bound is
    [1 − 1/C], approached by a single provider hosting everything. *)

val score : Dist.t -> float
(** Closed-form 𝒮 of a distribution. *)

val score_of_counts : int array -> float
(** Convenience: {!score} of [Dist.of_counts]. *)

val score_of_shares : float array -> float
(** 𝒮 from a market-share vector summing to 1, with [C] taken as the
    paper's fixed toplist size of 10 000.  Use {!score_of_shares_c} to
    choose [C]. *)

val score_of_shares_c : c:int -> float array -> float
(** 𝒮 from shares with an explicit website count [C]. *)

val hhi : Dist.t -> float
(** Herfindahl–Hirschman Index [Σ (a_i/C)²]: 𝒮 + 1/C. *)

val upper_bound : c:int -> float
(** [1 − 1/C], the maximum attainable 𝒮 for [C] websites. *)

val via_transport : ?fast:bool -> Dist.t -> float
(** 𝒮 via the transport formulation against the explicit uniform
    reference.  With [fast] (the default) the uniform reference admits a
    closed form — the ground distance is independent of the demand
    bucket, so every feasible flow has identical work
    [Σ a_i·(a_i − 1)/C²] and the flow network is skipped entirely.
    [~fast:false] builds the full C-bucket network and runs
    {!Transport.solve}; it exists to validate the closed form (Appendix A
    ablation) and is intended for small [C]. *)

(** US DoJ Herfindahl interpretation bands the paper cites for context
    (§3.2): competitive (<0.10), moderately concentrated (0.10–0.18),
    highly concentrated (>0.18). *)
type doj_band = Competitive | Moderately_concentrated | Highly_concentrated

val doj_band : float -> doj_band
val doj_band_to_string : doj_band -> string

val default_c : int
(** The paper's per-country toplist size, 10 000. *)
