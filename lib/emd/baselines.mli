(** The concentration measures prior work used, implemented as baselines
    for comparison against the paper's 𝒮 (§2, §3.1).

    Prior studies quantified centralization with top-N market shares
    [Kumar et al., Kashaf et al., …], raw HHI [Bates et al., Huston], and
    generic inequality measures.  These let the bench quantify, at scale,
    the Figure-1 argument: top-N collapses distinct distributions that 𝒮
    separates. *)

val top_n : Dist.t -> int -> float
(** Share of the N largest providers (= {!Dist.top_share}). *)

val hhi : Dist.t -> float
(** Herfindahl–Hirschman Index Σ (aᵢ/C)². *)

val gini : Dist.t -> float
(** Gini coefficient of the provider-size distribution, in [0, 1).
    Note the subtlety the paper's design avoids: Gini measures inequality
    {e among observed providers} and is blind to the number of providers —
    a country with 2 equal providers and one with 2 000 equal providers
    both score 0. *)

val shannon_evenness : Dist.t -> float
(** Normalized Shannon entropy H/ln(n) in [0, 1]; 1 = perfectly even.
    Undefined (returns 1.0) for a single provider. *)

val effective_providers : Dist.t -> float
(** Inverse HHI — the "numbers equivalent": how many equal-size providers
    would produce the same concentration. *)

type disagreement = {
  pairs_compared : int;
  topn_ties_s_separates : int;
      (** pairs with (near-)equal top-N share whose 𝒮 differ materially *)
  rank_inversions : int;
      (** pairs ordered one way by top-N and the other way by 𝒮 *)
}

val compare_with_top_n :
  ?n:int -> ?tie_eps:float -> ?s_eps:float -> (string * Dist.t) list -> disagreement
(** Quantify Figure 1's argument over a set of labelled distributions:
    how often does the top-N heuristic tie or invert country pairs that
    𝒮 distinguishes?  Defaults: [n] = 5, [tie_eps] = 0.01 (1 point of
    share), [s_eps] = 0.01. *)
