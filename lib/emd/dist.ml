type t = { masses : float array; total : float }

let validate masses =
  Array.iter (fun m -> if m < 0.0 then invalid_arg "Dist: negative mass") masses;
  let positive = Array.of_list (List.filter (fun m -> m > 0.0) (Array.to_list masses)) in
  if Array.length positive = 0 then invalid_arg "Dist: no positive mass";
  positive

let of_masses masses =
  let masses = validate masses in
  { masses; total = Array.fold_left ( +. ) 0.0 masses }

let of_counts counts = of_masses (Array.map float_of_int counts)

let uniform_reference c =
  if c <= 0 then invalid_arg "Dist.uniform_reference: c must be positive";
  { masses = Array.make c 1.0; total = float_of_int c }

let masses t = Array.copy t.masses
let total t = t.total
let size t = Array.length t.masses

let sorted_desc t =
  let c = Array.copy t.masses in
  Array.sort (fun a b -> compare b a) c;
  c

let shares t = Array.map (fun m -> m /. t.total) t.masses

let top_share t k =
  let sorted = sorted_desc t in
  let k = min k (Array.length sorted) in
  let acc = ref 0.0 in
  for i = 0 to k - 1 do
    acc := !acc +. sorted.(i)
  done;
  !acc /. t.total
