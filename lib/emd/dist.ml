type t = { masses : float array; total : float }

(* Single pass, no intermediate list: count the positive masses, then
   fill an exactly-sized array. *)
let validate masses =
  let n = Array.length masses in
  let positive = ref 0 in
  for i = 0 to n - 1 do
    let m = masses.(i) in
    if m < 0.0 then invalid_arg "Dist: negative mass";
    if m > 0.0 then incr positive
  done;
  if !positive = 0 then invalid_arg "Dist: no positive mass";
  if !positive = n then Array.copy masses
  else begin
    let out = Array.make !positive 0.0 in
    let k = ref 0 in
    for i = 0 to n - 1 do
      if masses.(i) > 0.0 then begin
        out.(!k) <- masses.(i);
        incr k
      end
    done;
    out
  end

let of_masses masses =
  let masses = validate masses in
  { masses; total = Array.fold_left ( +. ) 0.0 masses }

let of_counts counts =
  let n = Array.length counts in
  let positive = ref 0 in
  for i = 0 to n - 1 do
    let c = counts.(i) in
    if c < 0 then invalid_arg "Dist: negative mass";
    if c > 0 then incr positive
  done;
  if !positive = 0 then invalid_arg "Dist: no positive mass";
  let out = Array.make !positive 0.0 in
  let k = ref 0 in
  let total = ref 0 in
  for i = 0 to n - 1 do
    if counts.(i) > 0 then begin
      out.(!k) <- float_of_int counts.(i);
      total := !total + counts.(i);
      incr k
    end
  done;
  { masses = out; total = float_of_int !total }

(* Fast constructor for the incremental-metrics path: the caller
   guarantees positivity (counts straight out of a maintained tally), so
   the validation pass collapses into the fill loop and no count is ever
   dropped.  Produces bit-identical distributions to [of_counts] on the
   same input. *)
let of_positive_counts counts =
  let n = Array.length counts in
  if n = 0 then invalid_arg "Dist: no positive mass";
  let out = Array.make n 0.0 in
  let total = ref 0 in
  for i = 0 to n - 1 do
    let c = counts.(i) in
    if c <= 0 then invalid_arg "Dist.of_positive_counts: nonpositive count";
    out.(i) <- float_of_int c;
    total := !total + c
  done;
  { masses = out; total = float_of_int !total }

let uniform_reference c =
  if c <= 0 then invalid_arg "Dist.uniform_reference: c must be positive";
  { masses = Array.make c 1.0; total = float_of_int c }

let masses t = Array.copy t.masses
let total t = t.total
let size t = Array.length t.masses

let sorted_desc t =
  let c = Array.copy t.masses in
  (* Float.compare, not polymorphic compare: the specialized comparison
     avoids a caml_compare call per element in this hot sort. *)
  Array.sort (fun a b -> Float.compare b a) c;
  c

let shares t = Array.map (fun m -> m /. t.total) t.masses

let top_share t k =
  let sorted = sorted_desc t in
  let k = min k (Array.length sorted) in
  let acc = ref 0.0 in
  for i = 0 to k - 1 do
    acc := !acc +. sorted.(i)
  done;
  !acc /. t.total
