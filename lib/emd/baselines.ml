let top_n d n = Dist.top_share d n

let hhi = Centralization.hhi

let gini d =
  (* One ascending Float.compare sort; the old code sorted descending via
     Dist.sorted_desc and immediately re-sorted ascending with
     polymorphic compare. *)
  let sorted = Dist.masses d in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let total = Dist.total d in
  let weighted = ref 0.0 in
  Array.iteri (fun i m -> weighted := !weighted +. (float_of_int (i + 1) *. m)) sorted;
  let nf = float_of_int n in
  ((2.0 *. !weighted) /. (nf *. total)) -. ((nf +. 1.0) /. nf)

let shannon_evenness d =
  let shares = Dist.shares d in
  let n = Array.length shares in
  if n <= 1 then 1.0
  else begin
    let h = ref 0.0 in
    Array.iter (fun p -> if p > 0.0 then h := !h -. (p *. log p)) shares;
    !h /. log (float_of_int n)
  end

let effective_providers d = 1.0 /. hhi d

type disagreement = {
  pairs_compared : int;
  topn_ties_s_separates : int;
  rank_inversions : int;
}

let compare_with_top_n ?(n = 5) ?(tie_eps = 0.01) ?(s_eps = 0.01) labelled =
  let stats =
    List.map (fun (_, d) -> (top_n d n, Centralization.score d)) labelled
  in
  let arr = Array.of_list stats in
  let len = Array.length arr in
  let pairs = ref 0 and ties = ref 0 and inversions = ref 0 in
  for i = 0 to len - 1 do
    for j = i + 1 to len - 1 do
      incr pairs;
      let ti, si = arr.(i) and tj, sj = arr.(j) in
      let top_gap = ti -. tj and s_gap = si -. sj in
      if Float.abs top_gap <= tie_eps && Float.abs s_gap > s_eps then incr ties
      else if top_gap *. s_gap < 0.0 && Float.abs top_gap > tie_eps && Float.abs s_gap > s_eps
      then incr inversions
    done
  done;
  { pairs_compared = !pairs; topn_ties_s_separates = !ties; rank_inversions = !inversions }
