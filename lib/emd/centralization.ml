let default_c = 10_000

let score dist =
  let c = Dist.total dist in
  let acc = ref 0.0 in
  Array.iter (fun m -> acc := !acc +. ((m /. c) ** 2.0)) (Dist.masses dist);
  !acc -. (1.0 /. c)

let score_of_counts counts = score (Dist.of_counts counts)

let score_of_shares_c ~c shares =
  let sum = Array.fold_left ( +. ) 0.0 shares in
  if Float.abs (sum -. 1.0) > 1e-6 then
    invalid_arg "Centralization.score_of_shares: shares must sum to 1";
  let acc = ref 0.0 in
  Array.iter (fun s -> acc := !acc +. (s *. s)) shares;
  !acc -. (1.0 /. float_of_int c)

let score_of_shares shares = score_of_shares_c ~c:default_c shares

let hhi dist =
  let c = Dist.total dist in
  score dist +. (1.0 /. c)

let upper_bound ~c =
  if c <= 0 then invalid_arg "Centralization.upper_bound: c must be positive";
  1.0 -. (1.0 /. float_of_int c)

let via_transport ?(fast = true) dist =
  let supply = Dist.masses dist in
  let c = Dist.total dist in
  if fast then begin
    (* The ground distance (a_i − 1)/C does not depend on the demand
       bucket j, so every feasible flow has the same work: each unit of
       supply i pays (a_i − 1)/C, giving EMD = Σ a_i·(a_i − 1) / C²
       without building the flow network at all. *)
    let acc = ref 0.0 in
    Array.iter (fun a -> acc := !acc +. (a *. (a -. 1.0))) supply;
    !acc /. (c *. c)
  end
  else begin
    let c_int = int_of_float (Float.round c) in
    let demand = Array.make c_int 1.0 in
    (* Paper's ground distance: vertical height difference (a_i − r_j)/C
       with r_j = 1, independent of j. *)
    let cost i _j = (supply.(i) -. 1.0) /. c in
    Transport.emd ~supply ~demand ~cost
  end

type doj_band = Competitive | Moderately_concentrated | Highly_concentrated

let doj_band s =
  if s < 0.10 then Competitive
  else if s <= 0.18 then Moderately_concentrated
  else Highly_concentrated

let doj_band_to_string = function
  | Competitive -> "competitive"
  | Moderately_concentrated -> "moderately concentrated"
  | Highly_concentrated -> "highly concentrated"
