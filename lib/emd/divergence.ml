let check p q =
  if Array.length p <> Array.length q then invalid_arg "Divergence: length mismatch";
  let validate v =
    let sum = Array.fold_left ( +. ) 0.0 v in
    Array.iter (fun x -> if x < 0.0 then invalid_arg "Divergence: negative probability") v;
    if Float.abs (sum -. 1.0) > 1e-6 then invalid_arg "Divergence: probabilities must sum to 1"
  in
  validate p;
  validate q

let kl p q =
  check p q;
  let acc = ref 0.0 in
  Array.iteri
    (fun i pi ->
      if pi > 0.0 then
        if q.(i) <= 0.0 then acc := infinity else acc := !acc +. (pi *. log (pi /. q.(i))))
    p;
  !acc

let jensen_shannon p q =
  check p q;
  let m = Array.init (Array.length p) (fun i -> (p.(i) +. q.(i)) /. 2.0) in
  let half_kl v =
    let acc = ref 0.0 in
    Array.iteri (fun i vi -> if vi > 0.0 then acc := !acc +. (vi *. log (vi /. m.(i)))) v;
    !acc
  in
  (half_kl p +. half_kl q) /. 2.0

let hellinger p q =
  check p q;
  let acc = ref 0.0 in
  Array.iteri (fun i pi -> acc := !acc +. ((sqrt pi -. sqrt q.(i)) ** 2.0)) p;
  sqrt (!acc /. 2.0)

let total_variation p q =
  check p q;
  let acc = ref 0.0 in
  Array.iteri (fun i pi -> acc := !acc +. Float.abs (pi -. q.(i))) p;
  !acc /. 2.0

let align p q =
  let n = Stdlib.max (Array.length p) (Array.length q) in
  let pad v = Array.init n (fun i -> if i < Array.length v then v.(i) else 0.0) in
  (pad p, pad q)
