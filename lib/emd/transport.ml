type solution = { work : float; flows : (int * int * float) list }

let check ~supply ~demand =
  let n = Array.length supply and m = Array.length demand in
  if n = 0 || m = 0 then invalid_arg "Transport.solve: empty side";
  Array.iter (fun s -> if s < 0.0 then invalid_arg "Transport.solve: negative supply") supply;
  Array.iter (fun d -> if d < 0.0 then invalid_arg "Transport.solve: negative demand") demand;
  let ts = Array.fold_left ( +. ) 0.0 supply and td = Array.fold_left ( +. ) 0.0 demand in
  let scale = Float.max 1.0 (Float.max ts td) in
  if Float.abs (ts -. td) > 1e-6 *. scale then
    invalid_arg "Transport.solve: unbalanced supply and demand";
  (n, m, ts)

(* ------------------------------------------------------------------ *)
(* Reference solver: successive shortest paths with a full Bellman–Ford
   per augmentation over a pointer-based residual graph.  Kept verbatim
   as the oracle for differential testing of the fast solver below.    *)
(* ------------------------------------------------------------------ *)

(* Residual-graph edge; [flow] mutates during augmentation. *)
type edge = {
  dst : int;
  capacity : float;
  cost : float;
  mutable flow : float;
  mutable twin : edge option; (* reverse edge, set after construction *)
}

let residual e = e.capacity -. e.flow

let solve_reference ~supply ~demand ~cost =
  let n, m, total = check ~supply ~demand in
  let source = 0 and sink = n + m + 1 in
  let nodes = n + m + 2 in
  let graph : edge list array = Array.make nodes [] in
  let add_edge u v capacity cost =
    let fwd = { dst = v; capacity; cost; flow = 0.0; twin = None } in
    let bwd = { dst = u; capacity = 0.0; cost = -.cost; flow = 0.0; twin = None } in
    fwd.twin <- Some bwd;
    bwd.twin <- Some fwd;
    graph.(u) <- fwd :: graph.(u);
    graph.(v) <- bwd :: graph.(v);
    fwd
  in
  for i = 0 to n - 1 do
    ignore (add_edge source (1 + i) supply.(i) 0.0)
  done;
  (* Keep handles on the transport edges to read the final flows. *)
  let transport = Array.make (n * m) None in
  for i = 0 to n - 1 do
    for j = 0 to m - 1 do
      transport.((i * m) + j) <- Some (add_edge (1 + i) (1 + n + j) infinity (cost i j))
    done
  done;
  for j = 0 to m - 1 do
    ignore (add_edge (1 + n + j) sink demand.(j) 0.0)
  done;
  (* Successive shortest paths; Bellman–Ford handles possibly-negative
     ground distances without needing an initial potential computation. *)
  let eps = 1e-12 *. Float.max 1.0 total in
  let pushed = ref 0.0 in
  let continue = ref true in
  while !continue && total -. !pushed > eps do
    let dist = Array.make nodes infinity in
    let pred : edge option array = Array.make nodes None in
    dist.(source) <- 0.0;
    let changed = ref true in
    let rounds = ref 0 in
    while !changed && !rounds <= nodes do
      changed := false;
      incr rounds;
      for u = 0 to nodes - 1 do
        if dist.(u) < infinity then
          List.iter
            (fun e ->
              if residual e > eps && dist.(u) +. e.cost < dist.(e.dst) -. 1e-12 then begin
                dist.(e.dst) <- dist.(u) +. e.cost;
                pred.(e.dst) <- Some e;
                changed := true
              end)
            graph.(u)
      done
    done;
    if dist.(sink) = infinity then continue := false
    else begin
      (* Bottleneck along the path, found by walking predecessors back. *)
      let rec bottleneck v acc =
        match pred.(v) with
        | None -> acc
        | Some e ->
            let src = (match e.twin with Some t -> t.dst | None -> assert false) in
            bottleneck src (Float.min acc (residual e))
      in
      let delta = bottleneck sink infinity in
      let rec apply v =
        match pred.(v) with
        | None -> ()
        | Some e ->
            e.flow <- e.flow +. delta;
            (match e.twin with Some t -> t.flow <- t.flow -. delta | None -> assert false);
            let src = (match e.twin with Some t -> t.dst | None -> assert false) in
            apply src
      in
      apply sink;
      pushed := !pushed +. delta
    end
  done;
  let work = ref 0.0 and flows = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to m - 1 do
      match transport.((i * m) + j) with
      | Some e when e.flow > eps ->
          work := !work +. (e.flow *. e.cost);
          flows := (i, j, e.flow) :: !flows
      | _ -> ()
    done
  done;
  { work = !work; flows = List.rev !flows }

(* ------------------------------------------------------------------ *)
(* Fast solver: successive shortest paths with Johnson potentials.  The
   residual graph lives in flat arrays (the reverse of edge [e] is
   [e lxor 1]); one Bellman–Ford over the initial graph — a DAG, so it
   settles in four sweeps — seeds the potentials, after which every
   augmentation runs Dijkstra on a binary heap over nonnegative reduced
   costs [c_uv + π(u) − π(v)].                                         *)
(* ------------------------------------------------------------------ *)

let solve ~supply ~demand ~cost =
  let n, m, total = check ~supply ~demand in
  let source = 0 and sink = n + m + 1 in
  let nodes = n + m + 2 in
  let max_edges = 2 * (n + m + (n * m)) in
  let e_dst = Array.make max_edges 0 in
  let e_cap = Array.make max_edges 0.0 in
  let e_cost = Array.make max_edges 0.0 in
  let e_flow = Array.make max_edges 0.0 in
  let e_next = Array.make max_edges (-1) in
  let head = Array.make nodes (-1) in
  let n_edges = ref 0 in
  let add_edge u v cap cost =
    let f = !n_edges in
    e_dst.(f) <- v;
    e_cap.(f) <- cap;
    e_cost.(f) <- cost;
    e_next.(f) <- head.(u);
    head.(u) <- f;
    let b = f + 1 in
    e_dst.(b) <- u;
    e_cap.(b) <- 0.0;
    e_cost.(b) <- -.cost;
    e_next.(b) <- head.(v);
    head.(v) <- b;
    n_edges := f + 2
  in
  for i = 0 to n - 1 do
    add_edge source (1 + i) supply.(i) 0.0
  done;
  let transport_base = !n_edges in
  for i = 0 to n - 1 do
    for j = 0 to m - 1 do
      add_edge (1 + i) (1 + n + j) infinity (cost i j)
    done
  done;
  for j = 0 to m - 1 do
    add_edge (1 + n + j) sink demand.(j) 0.0
  done;
  let residual e = e_cap.(e) -. e_flow.(e) in
  let eps = 1e-12 *. Float.max 1.0 total in
  (* Seed potentials with one Bellman–Ford; ground distances may be
     negative, but the initial residual graph is a 4-layer DAG, so the
     sweep loop exits after a handful of rounds. *)
  let pi = Array.make nodes infinity in
  pi.(source) <- 0.0;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= nodes do
    changed := false;
    incr rounds;
    for u = 0 to nodes - 1 do
      if pi.(u) < infinity then begin
        let e = ref head.(u) in
        while !e >= 0 do
          let v = e_dst.(!e) in
          if residual !e > eps && pi.(u) +. e_cost.(!e) < pi.(v) -. 1e-12 then begin
            pi.(v) <- pi.(u) +. e_cost.(!e);
            changed := true
          end;
          e := e_next.(!e)
        done
      end
    done
  done;
  (* Binary min-heap of (distance, node); lazy deletion via [visited].
     Pushes are bounded by relaxations, i.e. by the edge count. *)
  let heap_cap = max_edges + nodes + 1 in
  let hd = Array.make heap_cap 0.0 in
  let hn = Array.make heap_cap 0 in
  let hsize = ref 0 in
  let push d v =
    let i = ref !hsize in
    incr hsize;
    hd.(!i) <- d;
    hn.(!i) <- v;
    let continue = ref true in
    while !continue && !i > 0 do
      let parent = (!i - 1) / 2 in
      if hd.(parent) > hd.(!i) then begin
        let pd = hd.(parent) and pv = hn.(parent) in
        hd.(parent) <- hd.(!i);
        hn.(parent) <- hn.(!i);
        hd.(!i) <- pd;
        hn.(!i) <- pv;
        i := parent
      end
      else continue := false
    done
  in
  let pop () =
    let d = hd.(0) and v = hn.(0) in
    decr hsize;
    hd.(0) <- hd.(!hsize);
    hn.(0) <- hn.(!hsize);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      let r = l + 1 in
      let smallest = ref !i in
      if l < !hsize && hd.(l) < hd.(!smallest) then smallest := l;
      if r < !hsize && hd.(r) < hd.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let sd = hd.(!smallest) and sv = hn.(!smallest) in
        hd.(!smallest) <- hd.(!i);
        hn.(!smallest) <- hn.(!i);
        hd.(!i) <- sd;
        hn.(!i) <- sv;
        i := !smallest
      end
      else continue := false
    done;
    (d, v)
  in
  let dist = Array.make nodes infinity in
  let pred = Array.make nodes (-1) in
  let visited = Array.make nodes false in
  let pushed = ref 0.0 in
  let continue_flow = ref true in
  while !continue_flow && total -. !pushed > eps do
    Array.fill dist 0 nodes infinity;
    Array.fill pred 0 nodes (-1);
    Array.fill visited 0 nodes false;
    hsize := 0;
    dist.(source) <- 0.0;
    push 0.0 source;
    (* Stop as soon as the sink settles: nodes that never pop never scan
       their edges, which is where this solver beats the reference (the
       shallow 4-layer residual graph lets Bellman–Ford converge in a
       handful of sweeps, so full-settle Dijkstra would only tie it). *)
    while !hsize > 0 && not visited.(sink) do
      let _, u = pop () in
      if not (Array.unsafe_get visited u) then begin
        Array.unsafe_set visited u true;
        if u <> sink then begin
          let du = Array.unsafe_get dist u in
          let pu = Array.unsafe_get pi u in
          let e = ref (Array.unsafe_get head u) in
          while !e >= 0 do
            let idx = !e in
            let v = Array.unsafe_get e_dst idx in
            if
              Array.unsafe_get e_cap idx -. Array.unsafe_get e_flow idx > eps
              && (not (Array.unsafe_get visited v))
              && Array.unsafe_get pi v < infinity
            then begin
              (* Reduced cost is nonnegative up to rounding; clamp the
                 rounding noise so the heap invariant holds. *)
              let rc = Array.unsafe_get e_cost idx +. pu -. Array.unsafe_get pi v in
              let rc = if rc < 0.0 then 0.0 else rc in
              let nd = du +. rc in
              if nd < Array.unsafe_get dist v -. 1e-12 then begin
                Array.unsafe_set dist v nd;
                Array.unsafe_set pred v idx;
                push nd v
              end
            end;
            e := Array.unsafe_get e_next idx
          done
        end
      end
    done;
    if dist.(sink) = infinity then continue_flow := false
    else begin
      (* Fold the distances into the potentials so reduced costs stay
         nonnegative for the next round.  With the early exit, settled
         nodes get their exact distance and everything else (tentative
         labels are all >= dist(sink) when the sink pops) is capped at
         dist(sink) — the standard update that keeps every residual
         edge's reduced cost nonnegative.  (In a balanced transport
         network every node with positive supply stays reachable until
         termination, so stale potentials on unreachable nodes are never
         consulted.) *)
      let dt = dist.(sink) in
      for v = 0 to nodes - 1 do
        if pi.(v) < infinity then pi.(v) <- pi.(v) +. Float.min dist.(v) dt
      done;
      let delta = ref infinity in
      let v = ref sink in
      while !v <> source do
        let e = pred.(!v) in
        if residual e < !delta then delta := residual e;
        v := e_dst.(e lxor 1)
      done;
      let v = ref sink in
      while !v <> source do
        let e = pred.(!v) in
        e_flow.(e) <- e_flow.(e) +. !delta;
        e_flow.(e lxor 1) <- e_flow.(e lxor 1) -. !delta;
        v := e_dst.(e lxor 1)
      done;
      pushed := !pushed +. !delta
    end
  done;
  let work = ref 0.0 and flows = ref [] in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      let e = transport_base + (2 * ((i * m) + j)) in
      if e_flow.(e) > eps then begin
        work := !work +. (e_flow.(e) *. e_cost.(e));
        flows := (i, j, e_flow.(e)) :: !flows
      end
    done
  done;
  { work = !work; flows = !flows }

let emd ~supply ~demand ~cost =
  let total = Array.fold_left ( +. ) 0.0 supply in
  let { work; _ } = solve ~supply ~demand ~cost in
  work /. total
