type solution = { work : float; flows : (int * int * float) list }

(* Residual-graph edge; [flow] mutates during augmentation. *)
type edge = {
  dst : int;
  capacity : float;
  cost : float;
  mutable flow : float;
  mutable twin : edge option; (* reverse edge, set after construction *)
}

let residual e = e.capacity -. e.flow

let check ~supply ~demand =
  let n = Array.length supply and m = Array.length demand in
  if n = 0 || m = 0 then invalid_arg "Transport.solve: empty side";
  Array.iter (fun s -> if s < 0.0 then invalid_arg "Transport.solve: negative supply") supply;
  Array.iter (fun d -> if d < 0.0 then invalid_arg "Transport.solve: negative demand") demand;
  let ts = Array.fold_left ( +. ) 0.0 supply and td = Array.fold_left ( +. ) 0.0 demand in
  let scale = Float.max 1.0 (Float.max ts td) in
  if Float.abs (ts -. td) > 1e-6 *. scale then
    invalid_arg "Transport.solve: unbalanced supply and demand";
  (n, m, ts)

let solve ~supply ~demand ~cost =
  let n, m, total = check ~supply ~demand in
  let source = 0 and sink = n + m + 1 in
  let nodes = n + m + 2 in
  let graph : edge list array = Array.make nodes [] in
  let add_edge u v capacity cost =
    let fwd = { dst = v; capacity; cost; flow = 0.0; twin = None } in
    let bwd = { dst = u; capacity = 0.0; cost = -.cost; flow = 0.0; twin = None } in
    fwd.twin <- Some bwd;
    bwd.twin <- Some fwd;
    graph.(u) <- fwd :: graph.(u);
    graph.(v) <- bwd :: graph.(v);
    fwd
  in
  for i = 0 to n - 1 do
    ignore (add_edge source (1 + i) supply.(i) 0.0)
  done;
  (* Keep handles on the transport edges to read the final flows. *)
  let transport = Array.make (n * m) None in
  for i = 0 to n - 1 do
    for j = 0 to m - 1 do
      transport.((i * m) + j) <- Some (add_edge (1 + i) (1 + n + j) infinity (cost i j))
    done
  done;
  for j = 0 to m - 1 do
    ignore (add_edge (1 + n + j) sink demand.(j) 0.0)
  done;
  (* Successive shortest paths; Bellman–Ford handles possibly-negative
     ground distances without needing an initial potential computation. *)
  let eps = 1e-12 *. Float.max 1.0 total in
  let pushed = ref 0.0 in
  let continue = ref true in
  while !continue && total -. !pushed > eps do
    let dist = Array.make nodes infinity in
    let pred : edge option array = Array.make nodes None in
    dist.(source) <- 0.0;
    let changed = ref true in
    let rounds = ref 0 in
    while !changed && !rounds <= nodes do
      changed := false;
      incr rounds;
      for u = 0 to nodes - 1 do
        if dist.(u) < infinity then
          List.iter
            (fun e ->
              if residual e > eps && dist.(u) +. e.cost < dist.(e.dst) -. 1e-12 then begin
                dist.(e.dst) <- dist.(u) +. e.cost;
                pred.(e.dst) <- Some e;
                changed := true
              end)
            graph.(u)
      done
    done;
    if dist.(sink) = infinity then continue := false
    else begin
      (* Bottleneck along the path, found by walking predecessors back. *)
      let rec bottleneck v acc =
        match pred.(v) with
        | None -> acc
        | Some e ->
            let src = (match e.twin with Some t -> t.dst | None -> assert false) in
            bottleneck src (Float.min acc (residual e))
      in
      let delta = bottleneck sink infinity in
      let rec apply v =
        match pred.(v) with
        | None -> ()
        | Some e ->
            e.flow <- e.flow +. delta;
            (match e.twin with Some t -> t.flow <- t.flow -. delta | None -> assert false);
            let src = (match e.twin with Some t -> t.dst | None -> assert false) in
            apply src
      in
      apply sink;
      pushed := !pushed +. delta
    end
  done;
  let work = ref 0.0 and flows = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to m - 1 do
      match transport.((i * m) + j) with
      | Some e when e.flow > eps ->
          work := !work +. (e.flow *. e.cost);
          flows := (i, j, e.flow) :: !flows
      | _ -> ()
    done
  done;
  { work = !work; flows = List.rev !flows }

let emd ~supply ~demand ~cost =
  let total = Array.fold_left ( +. ) 0.0 supply in
  let { work; _ } = solve ~supply ~demand ~cost in
  work /. total
