(** The customizations §3.2 proposes for future work on the EMD
    formulation, implemented:

    - {e weighted mass}: each website carries a weight (e.g. traffic)
      instead of counting 1;
    - {e pairwise comparison}: EMD between two observed distributions
      directly, rather than against the decentralized reference. *)

val weighted_score : float array list -> float
(** [weighted_score groups] where each group lists the site weights of
    one provider.  Generalizes 𝒮: with provider mass [aᵢ = Σ groupᵢ] and
    total [W],

    {v 𝒮_w = Σᵢ (aᵢ/W)² − Σⱼ (wⱼ/W)² v}

    (the reference distribution gives every site its own provider with
    its own weight; unit weights recover the ordinary 𝒮).
    @raise Invalid_argument on negative weights or zero total. *)

val pairwise : Dist.t -> Dist.t -> float
(** [pairwise a b] is the EMD between two observed distributions under
    the paper's vertical-difference ground distance
    [d_ij = |aᵢ − bⱼ| / C], computed by the exact transportation solver
    after scaling [b] to [a]'s total mass.  Symmetric up to the scaling;
    0 iff the sorted share vectors coincide.  Intended for
    moderate provider counts. *)

val sorted_share_l1 : Dist.t -> Dist.t -> float
(** Closed-form pairwise dissimilarity: ½·Σ |share_a(i) − share_b(i)|
    over rank-aligned sorted share vectors — a fast companion to
    {!pairwise} with the same "0 iff same shape" property, in [0, 1). *)
