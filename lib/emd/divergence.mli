(** f-divergences between discrete probability vectors.

    The paper's §3.1 considers and rejects this family for measuring
    centralization: every f-divergence saturates to a constant on (nearly)
    disjoint supports, so it cannot rank an observed skewed distribution
    against the fully decentralized reference.  These implementations back
    the design-choice ablation bench that demonstrates the saturation.

    All functions take probability vectors over a {e common} indexed
    support (pad with zeros to align supports) and raise
    [Invalid_argument] on length mismatch, negative entries, or sums that
    deviate from 1 by more than 1e-6. *)

val kl : float array -> float array -> float
(** Kullback–Leibler D(P‖Q), natural log.  [+infinity] when P has mass
    where Q has none. *)

val jensen_shannon : float array -> float array -> float
(** Jensen–Shannon divergence, bounded by [log 2]. *)

val hellinger : float array -> float array -> float
(** Hellinger distance, in [0, 1]. *)

val total_variation : float array -> float array -> float
(** Total variation distance ½·Σ|p−q|, in [0, 1]. *)

val align : float array -> float array -> float array * float array
(** [align p q] zero-pads the shorter vector so both share a support of the
    same size — modelling distributions over disjoint provider sets laid
    side by side. *)
