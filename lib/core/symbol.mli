(** String interner: maps labels (provider names, org/country codes) to
    dense integer ids so hot loops can tally into int-indexed arrays
    instead of hashing heap-allocated string keys repeatedly.

    Ids are assigned in first-intern order, starting at 0, so an interner
    doubles as an order-preserving deduplicator.  Not thread-safe: create
    one per worker (the measurement pipeline builds one per sweep on a
    single domain). *)

type t

val create : ?size:int -> unit -> t
(** Fresh interner; [size] is an initial capacity hint (default 64). *)

val intern : t -> string -> int
(** Id of the label, allocating the next dense id on first sight. *)

val find : t -> string -> int option
(** Id of the label if already interned, without allocating one. *)

val name : t -> int -> string
(** Inverse of {!intern}.  @raise Invalid_argument on an unknown id. *)

val count : t -> int
(** Number of distinct labels interned; valid ids are [0..count-1]. *)

val iter : (int -> string -> unit) -> t -> unit
(** Iterate ids in ascending (first-intern) order. *)
