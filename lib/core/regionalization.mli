(** Regionalization metrics (§3.3): usage, endemicity, endemicity ratio
    and insularity.

    A provider's {e usage curve} lists, per country, the percentage of
    popular websites using the provider, sorted nonincreasing.  Usage [U]
    is the area under the curve; endemicity [E] the area between the
    curve and the flat line at its maximum; and the endemicity ratio
    [E_R = E / (U + E)] normalizes out provider size — 0 is perfectly
    global, 1 perfectly regional. *)

type usage_stats = {
  entity : Dataset.entity;
  curve : float array;  (** nonincreasing per-country usage, percent *)
  usage : float;  (** U = Σ uᵢ *)
  endemicity : float;  (** E = Σ (u₁ − uᵢ) *)
  endemicity_ratio : float;  (** E_R = E / (U + E); 0 when U + E = 0 *)
}

val stats_of_curve : Dataset.entity -> float array -> usage_stats
(** Usage statistics from a raw (unsorted) per-country usage array, in
    percent.  Exposed so the incremental-metrics path can rebuild stats
    from maintained tallies with the exact arithmetic of
    {!usage_curve}. *)

val usage_curve : Dataset.t -> Dataset.layer -> name:string -> usage_stats
(** Usage statistics of one provider across every country in the
    dataset.  @raise Not_found if no country uses the provider. *)

val all_usage : Dataset.t -> Dataset.layer -> usage_stats list
(** Usage statistics for every provider appearing in the layer,
    descending by usage. *)

val insularity : Dataset.t -> Dataset.layer -> string -> float
(** Fraction of a country's websites whose provider in the layer is
    based in the same country (§3.3 "Countries"). *)

val all_insularity : Dataset.t -> Dataset.layer -> (string * float) list
(** [(country, insularity)] for every country, descending. *)

val foreign_dependence : Dataset.t -> Dataset.layer -> string -> (string * float) list
(** Breakdown of a country's websites by the provider's home country,
    descending share — surfaces cross-border dependencies like
    Turkmenistan → Russia. *)

val dependence_matrix :
  Dataset.t -> Dataset.layer -> (Webdep_geo.Region.continent * (Webdep_geo.Region.continent * float) list) list
(** Figure 8a: for each continent (of the dependent countries, averaged
    over its countries), the share of websites served by providers
    head-quartered in each continent. *)
