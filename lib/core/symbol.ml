type t = {
  mutable names : string array;
  mutable count : int;
  index : (string, int) Hashtbl.t;
}

let create ?(size = 64) () =
  let size = max 1 size in
  { names = Array.make size ""; count = 0; index = Hashtbl.create size }

let intern t name =
  match Hashtbl.find_opt t.index name with
  | Some id -> id
  | None ->
      let id = t.count in
      if id = Array.length t.names then begin
        let bigger = Array.make (2 * id) "" in
        Array.blit t.names 0 bigger 0 id;
        t.names <- bigger
      end;
      t.names.(id) <- name;
      t.count <- id + 1;
      Hashtbl.replace t.index name id;
      id

let find t name = Hashtbl.find_opt t.index name

let name t id =
  if id < 0 || id >= t.count then invalid_arg "Symbol.name: id out of range";
  t.names.(id)

let count t = t.count

let iter f t =
  for id = 0 to t.count - 1 do
    f id t.names.(id)
  done
