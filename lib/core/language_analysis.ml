let sites ds cc = (Dataset.country_exn ds cc).Dataset.sites

let share_of_language ds cc lang =
  let ss = sites ds cc in
  let total = List.length ss in
  if total = 0 then 0.0
  else
    float_of_int
      (List.length (List.filter (fun s -> s.Dataset.language = Some lang) ss))
    /. float_of_int total

let in_language ds cc language =
  List.filter (fun s -> s.Dataset.language = Some language) (sites ds cc)

let hosted_in ds cc ~language ~home =
  match in_language ds cc language with
  | [] -> 0.0
  | matching ->
      let hits =
        List.length
          (List.filter
             (fun s ->
               match s.Dataset.hosting with
               | Some e -> String.equal e.Dataset.country home
               | None -> false)
             matching)
      in
      float_of_int hits /. float_of_int (List.length matching)

let breakdown_of project ss =
  let total = List.length ss in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      match project s with
      | None -> ()
      | Some key ->
          Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    ss;
  Hashtbl.fold (fun key k acc -> (key, float_of_int k /. float_of_int total) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let language_breakdown ds cc = breakdown_of (fun s -> s.Dataset.language) (sites ds cc)

let language_home_crosstab ds cc ~language =
  breakdown_of
    (fun s -> Option.map (fun (e : Dataset.entity) -> e.Dataset.country) s.Dataset.hosting)
    (in_language ds cc language)
