let bar ?(ch = '#') width fraction =
  let n = int_of_float (Float.round (fraction *. float_of_int width)) in
  String.make (max 0 (min width n)) ch

let default_fmt v = Printf.sprintf "%.3f" v

let bar_chart ?(width = 40) ?(value_fmt = default_fmt) rows =
  if rows = [] then ""
  else begin
    let label_w =
      List.fold_left (fun acc (label, _) -> max acc (String.length label)) 0 rows
    in
    let peak = List.fold_left (fun acc (_, v) -> Float.max acc (Float.abs v)) 0.0 rows in
    let buf = Buffer.create 1024 in
    List.iter
      (fun (label, v) ->
        let fraction = if peak = 0.0 then 0.0 else Float.abs v /. peak in
        Buffer.add_string buf
          (Printf.sprintf "%-*s |%-*s %s\n" label_w label width (bar width fraction)
             (value_fmt v)))
      rows;
    Buffer.contents buf
  end

let histogram ?(width = 40) (h : Webdep_stats.Histogram.t) =
  let edges = Webdep_stats.Histogram.bin_edges h in
  let peak = Array.fold_left max 1 h.Webdep_stats.Histogram.counts in
  let buf = Buffer.create 1024 in
  Array.iteri
    (fun i count ->
      let lo, hi = edges.(i) in
      Buffer.add_string buf
        (Printf.sprintf "[%5.2f, %5.2f) |%-*s %d\n" lo hi width
           (bar width (float_of_int count /. float_of_int peak))
           count))
    h.Webdep_stats.Histogram.counts;
  Buffer.contents buf

let rank_curve ?(width = 60) ?(height = 10) cumulative =
  let n = Array.length cumulative in
  if n = 0 then ""
  else begin
    let grid = Array.make_matrix height width ' ' in
    let log_n = log (float_of_int (max 2 n)) in
    Array.iteri
      (fun i v ->
        let x =
          int_of_float (log (float_of_int (i + 1)) /. log_n *. float_of_int (width - 1))
        in
        let y = height - 1 - int_of_float (v *. float_of_int (height - 1)) in
        let x = max 0 (min (width - 1) x) and y = max 0 (min (height - 1) y) in
        grid.(y).(x) <- '*')
      cumulative;
    let buf = Buffer.create (height * (width + 8)) in
    Array.iteri
      (fun row line ->
        let pct = 100 * (height - 1 - row) / (height - 1) in
        Buffer.add_string buf (Printf.sprintf "%3d%% |" pct);
        Buffer.add_string buf (String.init width (fun c -> line.(c)));
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf
      (Printf.sprintf "     +%s (log provider rank, 1..%d)\n" (String.make width '-') n);
    Buffer.contents buf
  end
