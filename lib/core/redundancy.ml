type site_providers = { domain : string; providers : string list }

type t = {
  total_sites : int;
  single_homed : int;
  critical_counts : (string * int) list;
  spof_score : float;
}

let analyze sites =
  if sites = [] then invalid_arg "Redundancy.analyze: no sites";
  let tbl = Hashtbl.create 256 in
  let single = ref 0 in
  List.iter
    (fun { domain; providers } ->
      match List.sort_uniq compare providers with
      | [] -> invalid_arg ("Redundancy.analyze: site with no provider: " ^ domain)
      | [ only ] ->
          incr single;
          Hashtbl.replace tbl only (1 + Option.value ~default:0 (Hashtbl.find_opt tbl only))
      | _ :: _ :: _ -> ())
    sites;
  let critical_counts =
    Hashtbl.fold (fun name k acc -> (name, k) :: acc) tbl []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  let total_sites = List.length sites in
  let spof_score =
    (* a_i = sites requiring provider i; multi-homed sites contribute a
       "requires nobody" bucket of singletons (each such site is its own
       fully-redundant unit), so C = total sites and the formula is the
       ordinary S over (critical counts @ 1s). *)
    let singles = List.map snd critical_counts in
    let redundant = total_sites - List.fold_left ( + ) 0 singles in
    let counts = Array.of_list (singles @ List.init redundant (fun _ -> 1)) in
    if Array.length counts = 0 then 0.0
    else Webdep_emd.Centralization.score (Webdep_emd.Dist.of_counts counts)
  in
  { total_sites; single_homed = !single; critical_counts; spof_score }

let single_homed_fraction t = float_of_int t.single_homed /. float_of_int t.total_sites
