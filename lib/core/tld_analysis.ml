type category = Com | Global_tld | Local_cctld | External_cctld

let category_name = function
  | Com -> ".com"
  | Global_tld -> "global TLDs"
  | Local_cctld -> "local ccTLD"
  | External_cctld -> "external ccTLDs"

let all_categories = [ Com; Global_tld; Local_cctld; External_cctld ]

(* ccTLDs that are marketed as generic namespaces. *)
let repurposed = [ ".io"; ".co"; ".me"; ".tv"; ".cc"; ".top" ]

let own_cctld cc =
  match Webdep_geo.Country.of_code cc with
  | Some country -> Webdep_geo.Country.ccTLD country
  | None -> "." ^ String.lowercase_ascii cc

let is_cctld (e : Dataset.entity) =
  String.length e.Dataset.name = 3
  && (not (List.mem e.Dataset.name repurposed))
  && (Webdep_geo.Country.mem e.Dataset.country || e.Dataset.name = ".uk")

let categorize ~cc (e : Dataset.entity) =
  if String.equal e.Dataset.name ".com" then Com
  else if String.equal e.Dataset.name (own_cctld cc) then Local_cctld
  else if is_cctld e then External_cctld
  else Global_tld

let breakdown ds cc =
  let sites = (Dataset.country_exn ds cc).Dataset.sites in
  let total = float_of_int (List.length sites) in
  let tally = Hashtbl.create 4 in
  List.iter
    (fun s ->
      let cat = categorize ~cc s.Dataset.tld in
      Hashtbl.replace tally cat (1 + Option.value ~default:0 (Hashtbl.find_opt tally cat)))
    sites;
  List.map
    (fun cat ->
      (cat, float_of_int (Option.value ~default:0 (Hashtbl.find_opt tally cat)) /. total))
    all_categories

let external_cctlds ds cc =
  let sites = (Dataset.country_exn ds cc).Dataset.sites in
  let total = float_of_int (List.length sites) in
  let tally = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if categorize ~cc s.Dataset.tld = External_cctld then
        Hashtbl.replace tally s.Dataset.tld.Dataset.name
          (1 + Option.value ~default:0 (Hashtbl.find_opt tally s.Dataset.tld.Dataset.name)))
    sites;
  Hashtbl.fold (fun tld k acc -> (tld, float_of_int k /. total) :: acc) tally []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let uses_external_over_local ds cc =
  let local = Dataset.entity_share ds Tld cc ~name:(own_cctld cc) in
  match external_cctlds ds cc with
  | (tld, share) :: _ when share > local -> Some tld
  | _ -> None
