(** The enriched measurement dataset the toolkit analyzes — one record per
    (country, website) with the per-layer provider labels recovered by the
    measurement pipeline (§3.4): AS organization of the hosting IP, AS
    organization of the nameserver IP, CCADB owner of the leaf
    certificate's CA, and the TLD. *)

type layer = Webdep_reference.Paper_scores.layer = Hosting | Dns | Ca | Tld

type entity = {
  name : string;  (** organization / CA owner / TLD label *)
  country : string;  (** the entity's home country (AS WHOIS, CA HQ, ccTLD) *)
}

type site = {
  domain : string;
  hosting : entity option;  (** None when resolution failed *)
  dns : entity option;
  ca : entity option;
  tld : entity;
  hosting_geo : string option;  (** geolocated country of the hosting IP *)
  ns_geo : string option;
  hosting_anycast : bool;
  ns_anycast : bool;
  language : string option;  (** LangDetect label of the page content *)
}

type country_data = { country : string; sites : site list }

type t
(** A dataset: one {!country_data} per country.

    Internally the sites are stored interned and integer-coded (one
    dense id per distinct entity and small string, five int arrays per
    country) — {!country}/{!country_exn} decode the string-facing
    records on demand and memoize them, while the metric queries below
    run directly on the int arrays.  Both views are byte-identical to
    the records passed to {!of_country_data}. *)

val of_country_data : country_data list -> t

type builder
(** Streaming constructor: encode one country at a time so the caller
    can release each string-form {!country_data} as soon as it is added,
    keeping peak heap bounded by one country rather than the world.
    [of_country_data] is [builder]/{!builder_add}/{!builder_finish}. *)

val builder : unit -> builder

val builder_add : builder -> country_data -> unit
(** Encode and absorb one country.  Must be called from a single domain
    (interner ids are assigned in first-encounter order, so the call
    order defines the ids). *)

val builder_finish : builder -> t

val countries : t -> string list
val country : t -> string -> country_data option
val country_exn : t -> string -> country_data
val size : t -> int
(** Total number of (country, site) records. *)

val site_count : t -> string -> int
(** Number of sites of a country, without decoding them.
    @raise Not_found if the country is absent. *)

val entity_of : site -> layer -> entity option
(** The site's label in a layer ([Some] always for [Tld]). *)

val distribution : t -> layer -> string -> Webdep_emd.Dist.t
(** Provider distribution (website counts per entity name) of a country
    in a layer; sites with a missing label are skipped.
    @raise Not_found if the country is absent or has no labelled site. *)

val counts_by_entity : t -> layer -> string -> (entity * int) list
(** Per-entity website counts, descending. *)

val merged_distribution : t -> layer -> Webdep_emd.Dist.t
(** All countries pooled — the paper's "Global Top 10k" marker uses the
    pooled view. *)

val entity_share : t -> layer -> string -> name:string -> float
(** Share of a country's websites labelled with entity [name]. *)

val home_label_count : t -> layer -> string -> int
(** Number of a country's sites whose layer label's home country is the
    country itself — the insularity numerator, computed on the int
    arrays without decoding.  @raise Not_found if the country is
    absent. *)

(** The integer-coded site representation, exposed so tests can check
    the decode/encode round trip and interner stability; the dataset
    itself stores sites this way. *)
module Compact : sig
  type codec
  (** An interner pool: entity and small-string ids, assigned densely in
      first-encounter order. *)

  type site_compact
  (** One site as integers against a codec: interned ids for the five
      entity/label fields plus a packed word of geo/language ids and
      anycast flags; only the domain stays a string. *)

  val codec : unit -> codec

  val encode : codec -> site -> site_compact
  val decode : codec -> site_compact -> site
  (** [decode c (encode c s) = s] for every site [s]. *)

  val entity_count : t -> int
  (** Distinct entities in a dataset's pool; valid ids are
      [0..entity_count-1]. *)

  val entities : t -> entity array
  (** The pool's id -> entity decode table, in id order.  Because ids
      are assigned during the sequential encode, this array is identical
      at any [--jobs]. *)
end

(** Mutable per-(entity) website tallies, maintained incrementally.

    A tally is the int-array core of {!counts_by_entity}: one dense
    interned id per distinct (name, country) entity and a count per id.
    Because the canonical ordering ({!Tally.counts}) depends only on the
    tallied multiset, a tally updated by {!Tally.add}/{!Tally.remove}
    under churn produces bit-identical distributions and scores to a
    cold re-tally of the updated site list — the foundation of the
    incremental-metrics path in [webdep_store]. *)
module Tally : sig
  type nonrec t

  val create : unit -> t

  val of_sites : site list -> layer -> t
  (** Tally the layer labels of [sites]; unlabelled sites are skipped. *)

  val copy : t -> t
  (** Independent deep copy (same ids, same counts). *)

  val add : t -> entity -> bool
  (** Count one more website for the entity.  Returns [true] iff the
      support set grew (count went 0 to 1). *)

  val remove : t -> entity -> bool
  (** Count one fewer website.  Returns [true] iff the support set
      shrank (count went 1 to 0).
      @raise Invalid_argument if the entity's count is already zero. *)

  val add_site : t -> layer -> site -> bool
  (** {!add} of the site's label in the layer; [false] when unlabelled. *)

  val remove_site : t -> layer -> site -> bool
  (** {!remove} of the site's label; [false] when unlabelled. *)

  val support : t -> int
  (** Number of entities with a positive count. *)

  val counts : t -> (entity * int) list
  (** Canonical (entity, count) list — same order as
      {!counts_by_entity}: count-descending, ties by name then country;
      zero-count entities omitted. *)

  val distribution : t -> Webdep_emd.Dist.t
  (** Distribution over {!counts}, bit-identical to {!distribution} on
      the equivalent site list.  @raise Not_found if empty. *)

  val name_count : t -> string -> int
  (** Total websites across entities with the given name. *)

  val home_count : t -> string -> int
  (** Total websites whose entity's home country is the given code (the
      numerator of regionalization insularity). *)
end
