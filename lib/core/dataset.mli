(** The enriched measurement dataset the toolkit analyzes — one record per
    (country, website) with the per-layer provider labels recovered by the
    measurement pipeline (§3.4): AS organization of the hosting IP, AS
    organization of the nameserver IP, CCADB owner of the leaf
    certificate's CA, and the TLD. *)

type layer = Webdep_reference.Paper_scores.layer = Hosting | Dns | Ca | Tld

type entity = {
  name : string;  (** organization / CA owner / TLD label *)
  country : string;  (** the entity's home country (AS WHOIS, CA HQ, ccTLD) *)
}

type site = {
  domain : string;
  hosting : entity option;  (** None when resolution failed *)
  dns : entity option;
  ca : entity option;
  tld : entity;
  hosting_geo : string option;  (** geolocated country of the hosting IP *)
  ns_geo : string option;
  hosting_anycast : bool;
  ns_anycast : bool;
  language : string option;  (** LangDetect label of the page content *)
}

type country_data = { country : string; sites : site list }

type t
(** A dataset: one {!country_data} per country. *)

val of_country_data : country_data list -> t
val countries : t -> string list
val country : t -> string -> country_data option
val country_exn : t -> string -> country_data
val size : t -> int
(** Total number of (country, site) records. *)

val entity_of : site -> layer -> entity option
(** The site's label in a layer ([Some] always for [Tld]). *)

val distribution : t -> layer -> string -> Webdep_emd.Dist.t
(** Provider distribution (website counts per entity name) of a country
    in a layer; sites with a missing label are skipped.
    @raise Not_found if the country is absent or has no labelled site. *)

val counts_by_entity : t -> layer -> string -> (entity * int) list
(** Per-entity website counts, descending. *)

val merged_distribution : t -> layer -> Webdep_emd.Dist.t
(** All countries pooled — the paper's "Global Top 10k" marker uses the
    pooled view. *)

val entity_share : t -> layer -> string -> name:string -> float
(** Share of a country's websites labelled with entity [name]. *)
