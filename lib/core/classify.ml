type klass = XL_GP | L_GP | L_GP_R | M_GP | S_GP | L_RP | S_RP | XS_RP

let klass_name = function
  | XL_GP -> "XL-GP"
  | L_GP -> "L-GP"
  | L_GP_R -> "L-GP (R)"
  | M_GP -> "M-GP"
  | S_GP -> "S-GP"
  | L_RP -> "L-RP"
  | S_RP -> "S-RP"
  | XS_RP -> "XS-RP"

let all_klasses = [ XL_GP; L_GP; L_GP_R; M_GP; S_GP; L_RP; S_RP; XS_RP ]

type classification = {
  providers : (Regionalization.usage_stats * klass) list;
  raw_clusters : int;
  table : (klass * int) list;
}

(* The encoded version of the paper's manual cluster labelling.  Inputs
   are a provider's mean per-country usage (percent), peak single-country
   usage (percent), and endemicity ratio.  The endemicity bands are
   empirical over 150-country usage curves: truly global providers land
   near 0.4–0.7, the Europe-concentrated global pair (OVH/Hetzner style)
   near 0.72–0.90, and regional providers above 0.90 (their usage is one
   or a few spikes, so E_R → 1). *)
let rule ~u_mean ~peak ~e_r =
  let global = e_r < 0.72 in
  let global_regional = e_r >= 0.72 && e_r < 0.90 && u_mean >= 0.4 in
  if global then begin
    if u_mean >= 8.0 then XL_GP
    else if u_mean >= 0.8 then L_GP
    else if u_mean >= 0.12 then M_GP
    else S_GP
  end
  else if global_regional then L_GP_R
  else if e_r < 0.90 && u_mean >= 0.012 then S_GP
  else if peak >= 1.2 then L_RP
  else if peak >= 0.35 then S_RP
  else XS_RP

let classify_one (s : Regionalization.usage_stats) =
  let u_mean = s.usage /. float_of_int (Stdlib.max 1 (Array.length s.curve)) in
  let peak = if Array.length s.curve = 0 then 0.0 else s.curve.(0) in
  rule ~u_mean ~peak ~e_r:s.endemicity_ratio

(* Affinity propagation on the min–max scaled (log usage, endemicity
   ratio) plane — the §5.2 clustering step that backs Figure 6.  Classes
   are then assigned per provider (the automated stand-in for the paper's
   manual examination of the ~305 clusters). *)
let raw_cluster_count head_arr =
  let n = Array.length head_arr in
  if n <= 1 then n
  else begin
    let points =
      Webdep_stats.Scaling.min_max_columns
        (Array.map
           (fun (s : Regionalization.usage_stats) ->
             [| log1p s.usage; s.endemicity_ratio |])
           head_arr)
    in
    let result = Webdep_cluster.Affinity.cluster_points points in
    List.length (List.sort_uniq compare (Array.to_list result.assignment))
  end

let classify ?(cluster_cap = 600) ds layer =
  let stats = Regionalization.all_usage ds layer in
  let head = List.filteri (fun i _ -> i < cluster_cap) stats in
  let raw_clusters = raw_cluster_count (Array.of_list head) in
  let providers = List.map (fun s -> (s, classify_one s)) stats in
  let table =
    List.map
      (fun k -> (k, List.length (List.filter (fun (_, k') -> k' = k) providers)))
      all_klasses
  in
  { providers; raw_clusters; table }

let klass_of classification name =
  List.find_map
    (fun ((s : Regionalization.usage_stats), k) ->
      if String.equal s.entity.Dataset.name name then Some k else None)
    classification.providers

let class_shares classification ds layer cc =
  let by_name = Hashtbl.create 4096 in
  List.iter
    (fun ((s : Regionalization.usage_stats), k) ->
      Hashtbl.replace by_name s.entity.Dataset.name k)
    classification.providers;
  let counts = Dataset.counts_by_entity ds layer cc in
  let total = float_of_int (List.fold_left (fun acc (_, k) -> acc + k) 0 counts) in
  let acc = Hashtbl.create 8 in
  List.iter
    (fun ((e : Dataset.entity), k) ->
      match Hashtbl.find_opt by_name e.Dataset.name with
      | None -> ()
      | Some klass ->
          Hashtbl.replace acc klass
            (float_of_int k +. Option.value ~default:0.0 (Hashtbl.find_opt acc klass)))
    counts;
  List.map
    (fun k -> (k, Option.value ~default:0.0 (Hashtbl.find_opt acc k) /. total))
    all_klasses

let share_of_class classification ds layer cc klass =
  List.assoc klass (class_shares classification ds layer cc)
