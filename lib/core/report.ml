module Region = Webdep_geo.Region
module Country = Webdep_geo.Country

type ranked = { rank : int; country : string; value : float }

let to_ranked pairs =
  List.mapi (fun i (country, value) -> { rank = i + 1; country; value }) pairs

let ranked_scores ds layer = to_ranked (Metrics.all_scores ds layer)
let ranked_insularity ds layer = to_ranked (Regionalization.all_insularity ds layer)

let group_mean ds stat members =
  let values =
    List.filter_map
      (fun cc -> if List.mem cc (Dataset.countries ds) then Some (stat cc) else None)
      members
  in
  match values with
  | [] -> None
  | vs -> Some (Webdep_stats.Descriptive.mean (Array.of_list vs))

let subregion_means ds _layer stat =
  List.filter_map
    (fun sr ->
      let members = List.map (fun c -> c.Country.code) (Country.in_subregion sr) in
      Option.map (fun m -> (sr, m)) (group_mean ds stat members))
    Region.all_subregions
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let continent_means ds _layer stat =
  List.filter_map
    (fun ct ->
      let members = List.map (fun c -> c.Country.code) (Country.in_continent ct) in
      Option.map (fun m -> (ct, m)) (group_mean ds stat members))
    Region.all_continents
  |> List.sort (fun (_, a) (_, b) -> compare b a)

type spread = { mean : float; min : float; q1 : float; median : float; q3 : float; max : float }

let subregion_spread ds _layer stat =
  List.filter_map
    (fun sr ->
      let values =
        List.filter_map
          (fun c ->
            let cc = c.Country.code in
            if List.mem cc (Dataset.countries ds) then Some (stat cc) else None)
          (Country.in_subregion sr)
      in
      match values with
      | [] -> None
      | vs ->
          let arr = Array.of_list vs in
          let module De = Webdep_stats.Descriptive in
          Some
            ( sr,
              {
                mean = De.mean arr;
                min = De.min arr;
                q1 = De.percentile arr 25.0;
                median = De.median arr;
                q3 = De.percentile arr 75.0;
                max = De.max arr;
              } ))
    Region.all_subregions
  |> List.sort (fun (_, a) (_, b) -> compare b.mean a.mean)

let scores_array ds layer =
  Array.of_list (List.map snd (Metrics.all_scores ds layer))

let score_histogram ds layer ?(bins = 24) () =
  Webdep_stats.Histogram.create ~lo:0.0 ~hi:0.6 ~bins (scores_array ds layer)

let insularity_cdf ds layer =
  let values =
    Array.of_list (List.map snd (Regionalization.all_insularity ds layer))
  in
  Webdep_stats.Histogram.ecdf values

let layer_mean ds layer = Webdep_stats.Descriptive.mean (scores_array ds layer)
let layer_variance ds layer = Webdep_stats.Descriptive.variance (scores_array ds layer)
