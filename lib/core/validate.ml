type result = {
  rho : Webdep_stats.Correlation.result;
  pairs : (string * float * float) list;
  max_gap : float;
}

let correlate ~home ~probes =
  let pairs =
    List.filter_map
      (fun (cc, h) ->
        Option.map (fun p -> (cc, h, p)) (List.assoc_opt cc probes))
      home
  in
  if List.length pairs < 3 then invalid_arg "Validate.correlate: too few shared countries";
  let hs = Array.of_list (List.map (fun (_, h, _) -> h) pairs) in
  let ps = Array.of_list (List.map (fun (_, _, p) -> p) pairs) in
  let rho = Webdep_stats.Correlation.pearson hs ps in
  let max_gap =
    List.fold_left (fun acc (_, h, p) -> Float.max acc (Float.abs (h -. p))) 0.0 pairs
  in
  { rho; pairs; max_gap }
