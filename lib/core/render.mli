(** Text rendering of the paper's figure types: horizontal bar charts,
    histograms, and log-rank curves, for the bench harness and the CLI.
    All output is plain ASCII. *)

val bar_chart : ?width:int -> ?value_fmt:(float -> string) -> (string * float) list -> string
(** One bar per labelled value, scaled to the maximum.  [width] is the
    maximum bar length in characters (default 40). *)

val histogram : ?width:int -> Webdep_stats.Histogram.t -> string
(** One row per bin: "[lo, hi) ####### n". *)

val rank_curve : ?width:int -> ?height:int -> float array -> string
(** Cumulative-share curve by provider rank (the Figure 1 shape) as a
    small scatter of '*' on a log-rank x-axis; [height] rows (default
    10), [width] columns (default 60). *)
