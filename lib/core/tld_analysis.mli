(** TLD-layer categorization (Appendix B).

    The paper groups a country's TLD usage into four bins: .com, other
    global TLDs, the country's own ccTLD, and {e external} ccTLDs (the
    interesting bin: .ru across the CIS, .fr across former French
    colonies, .de in the German-speaking countries). *)

type category = Com | Global_tld | Local_cctld | External_cctld

val category_name : category -> string
val all_categories : category list

val categorize : cc:string -> Dataset.entity -> category
(** Classify one TLD entity from the perspective of country [cc].
    Repurposed ccTLDs marketed globally (.io, .co, .me, .tv, .cc, .top)
    count as global, as does anything that is not a two-letter country
    code of the dataset. *)

val breakdown : Dataset.t -> string -> (category * float) list
(** Share of a country's sites per category (all four present). *)

val external_cctlds : Dataset.t -> string -> (string * float) list
(** The external ccTLDs a country uses, with shares, descending —
    surfaces the .ru / .fr / .de dependence patterns. *)

val uses_external_over_local : Dataset.t -> string -> string option
(** [Some tld] when some external ccTLD is more used than the country's
    own (the paper finds .fr outranks the local ccTLD in 14 countries). *)
