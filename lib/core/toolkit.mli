(** One-call overview of a measured dataset: the numbers the paper's
    summary sections report, for every layer at once. *)

type layer_summary = {
  layer : Dataset.layer;
  mean_score : float;  (** 𝒮̄ over countries *)
  score_variance : float;
  most_centralized : string * float;
  least_centralized : string * float;
  global_score : float;  (** pooled "global top" 𝒮 *)
  mean_insularity : float;
  most_insular : string * float;
}

type summary = {
  countries : int;
  records : int;  (** total (country, site) rows *)
  layers : layer_summary list;
}

val summarize : Dataset.t -> summary

val pp : Format.formatter -> summary -> unit
(** Human-readable multi-line rendering. *)
