module C = Webdep_emd.Centralization
module Dist = Webdep_emd.Dist

let centralization ds layer cc = C.score (Dataset.distribution ds layer cc)

let all_scores ds layer =
  Dataset.countries ds
  |> List.filter_map (fun cc ->
         (* A country with no labelled site in this layer has no score. *)
         match centralization ds layer cc with
         | s -> Some (cc, s)
         | exception Not_found -> None)
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let global_score ds layer = C.score (Dataset.merged_distribution ds layer)

let top_n_share ds layer cc n = Dist.top_share (Dataset.distribution ds layer cc) n

let rank_curve ds layer cc =
  let dist = Dataset.distribution ds layer cc in
  let total = Dist.total dist in
  Array.map (fun m -> m /. total) (Dist.sorted_desc dist)

let cumulative_rank_curve ds layer cc =
  let shares = rank_curve ds layer cc in
  let acc = ref 0.0 in
  Array.map
    (fun s ->
      acc := !acc +. s;
      !acc)
    shares

let providers_for_share ds layer cc share =
  let cumulative = cumulative_rank_curve ds layer cc in
  let rec find i =
    if i >= Array.length cumulative then Array.length cumulative
    else if cumulative.(i) >= share -. 1e-9 then i + 1
    else find (i + 1)
  in
  find 0

let provider_count ds layer cc = Dist.size (Dataset.distribution ds layer cc)

let centralization_interval ?(iterations = 300) ?(confidence = 0.95) ?jobs ~seed ds layer cc =
  let cd = Dataset.country_exn ds cc in
  let labels =
    Array.of_list
      (List.filter_map
         (fun s -> Option.map (fun (e : Dataset.entity) -> e.Dataset.name) (Dataset.entity_of s layer))
         cd.Dataset.sites)
  in
  if Array.length labels = 0 then invalid_arg "Metrics.centralization_interval: no labelled sites";
  let statistic sample =
    let tbl = Hashtbl.create 256 in
    Array.iter
      (fun name ->
        Hashtbl.replace tbl name (1 + Option.value ~default:0 (Hashtbl.find_opt tbl name)))
      sample;
    (* Sorted fold: [Dist.of_counts] is order-sensitive only through
       float rounding, but stable input order keeps replicate scores
       reproducible across Hashtbl layout changes. *)
    let counts =
      Hashtbl.fold (fun name k acc -> (name, k) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      |> List.map snd
    in
    C.score (Dist.of_counts (Array.of_list counts))
  in
  let rng = Webdep_stats.Rng.create seed in
  Webdep_stats.Bootstrap.percentile_interval ~iterations ~confidence ?jobs rng ~statistic
    labels
