module C = Webdep_emd.Centralization
module Dist = Webdep_emd.Dist

let centralization ds layer cc = C.score (Dataset.distribution ds layer cc)

let all_scores ds layer =
  Dataset.countries ds
  |> List.filter_map (fun cc ->
         (* A country with no labelled site in this layer has no score. *)
         match centralization ds layer cc with
         | s -> Some (cc, s)
         | exception Not_found -> None)
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let global_score ds layer = C.score (Dataset.merged_distribution ds layer)

let top_n_share ds layer cc n = Dist.top_share (Dataset.distribution ds layer cc) n

let rank_curve ds layer cc =
  let dist = Dataset.distribution ds layer cc in
  let total = Dist.total dist in
  Array.map (fun m -> m /. total) (Dist.sorted_desc dist)

let cumulative_rank_curve ds layer cc =
  let shares = rank_curve ds layer cc in
  let acc = ref 0.0 in
  Array.map
    (fun s ->
      acc := !acc +. s;
      !acc)
    shares

let providers_for_share ds layer cc share =
  let cumulative = cumulative_rank_curve ds layer cc in
  let rec find i =
    if i >= Array.length cumulative then Array.length cumulative
    else if cumulative.(i) >= share -. 1e-9 then i + 1
    else find (i + 1)
  in
  find 0

let provider_count ds layer cc = Dist.size (Dataset.distribution ds layer cc)

let centralization_interval ?(iterations = 300) ?(confidence = 0.95) ?jobs ~seed ds layer cc =
  let cd = Dataset.country_exn ds cc in
  (* Intern the per-site labels once: replicates then resample dense ids
     into an int tally instead of materializing a string array and
     hash-counting it per replicate.  Scores are bit-identical to the
     string path — the resampled multiset is the same, and emitting
     counts in name-sorted id order reproduces the sorted fold the
     string path used. *)
  let syms = Symbol.create ~size:256 () in
  let ids =
    Array.of_list
      (List.filter_map
         (fun s ->
           Option.map
             (fun (e : Dataset.entity) -> Symbol.intern syms e.Dataset.name)
             (Dataset.entity_of s layer))
         cd.Dataset.sites)
  in
  if Array.length ids = 0 then invalid_arg "Metrics.centralization_interval: no labelled sites";
  let k = Symbol.count syms in
  let order = Array.init k Fun.id in
  Array.sort (fun a b -> String.compare (Symbol.name syms a) (Symbol.name syms b)) order;
  let statistic counts =
    let out = ref [] in
    for i = k - 1 downto 0 do
      let c = counts.(order.(i)) in
      if c > 0 then out := c :: !out
    done;
    C.score (Dist.of_positive_counts (Array.of_list !out))
  in
  let rng = Webdep_stats.Rng.create seed in
  Webdep_stats.Bootstrap.percentile_interval_tally ~iterations ~confidence ?jobs rng ~k
    ~statistic ids
