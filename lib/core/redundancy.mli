(** Provider-redundancy analysis — the §3.2 customization where [aᵢ] is
    redefined as "the number of websites that {e require} provider i to
    function".

    Input is, per site, the set of providers observed to serve it (from
    multi-vantage measurement: a multi-CDN site shows several).  A site
    with exactly one observed provider {e requires} it; a multi-homed
    site requires none of them individually. *)

type site_providers = { domain : string; providers : string list }

type t = {
  total_sites : int;
  single_homed : int;  (** sites with exactly one serving provider *)
  critical_counts : (string * int) list;
      (** provider → number of sites that require it, descending *)
  spof_score : float;
      (** the §3.2 redundancy instantiation of 𝒮: the centralization
          score over critical counts with C = total sites — "how much
          single-provider dependence is concentrated" *)
}

val analyze : site_providers list -> t
(** @raise Invalid_argument on an empty input or a site with no
    provider. *)

val single_homed_fraction : t -> float
