type options = {
  top_rows : int;
  case_studies : (string * string) list;
  include_classes : bool;
}

let default_options =
  {
    top_rows = 10;
    case_studies = [ ("TM", "RU"); ("SK", "CZ"); ("AF", "IR"); ("RE", "FR") ];
    include_classes = true;
  }

let layer_name = Webdep_reference.Paper_scores.layer_name

let md_table header rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("| " ^ String.concat " | " header ^ " |\n");
  Buffer.add_string buf
    ("|" ^ String.concat "|" (List.map (fun _ -> "---") header) ^ "|\n");
  List.iter (fun row -> Buffer.add_string buf ("| " ^ String.concat " | " row ^ " |\n")) rows;
  Buffer.contents buf

let take n xs = List.filteri (fun i _ -> i < n) xs

let layer_section ds layer ~top_rows =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "## %s layer\n\n" (String.capitalize_ascii (layer_name layer));
  add "Mean centralization **%.4f** (variance %.4f); pooled global-top score %.4f.\n\n"
    (Report.layer_mean ds layer) (Report.layer_variance ds layer)
    (Metrics.global_score ds layer);
  add "### Most centralized\n\n%s\n"
    (md_table [ "rank"; "country"; "S" ]
       (List.map
          (fun r ->
            [ string_of_int r.Report.rank; r.Report.country;
              Printf.sprintf "%.4f" r.Report.value ])
          (take top_rows (Report.ranked_scores ds layer))));
  add "### Most insular\n\n%s\n"
    (md_table [ "rank"; "country"; "insularity" ]
       (List.map
          (fun r ->
            [ string_of_int r.Report.rank; r.Report.country;
              Printf.sprintf "%.1f%%" (100.0 *. r.Report.value) ])
          (take top_rows (Report.ranked_insularity ds layer))));
  Buffer.contents buf

let classes_section ds =
  let cl = Classify.classify ds Hosting in
  let rows =
    List.map
      (fun (k, n) -> [ Classify.klass_name k; string_of_int n ])
      cl.Classify.table
  in
  Printf.sprintf
    "## Hosting provider classes\n\n\
     Affinity propagation over (usage, endemicity ratio) yields %d raw clusters,\n\
     coalesced into the eight classes:\n\n%s\n"
    cl.Classify.raw_clusters
    (md_table [ "class"; "providers" ] rows)

let case_study_section ds cases =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "## Cross-border dependence\n\n";
  Buffer.add_string buf
    (md_table
       [ "country"; "partner"; "hosting share on partner"; "own insularity" ]
       (List.filter_map
          (fun (cc, partner) ->
            match Dataset.country ds cc with
            | None -> None
            | Some _ ->
                let dep =
                  Option.value ~default:0.0
                    (List.assoc_opt partner (Regionalization.foreign_dependence ds Hosting cc))
                in
                Some
                  [ cc; partner;
                    Printf.sprintf "%.1f%%" (100.0 *. dep);
                    Printf.sprintf "%.1f%%"
                      (100.0 *. Regionalization.insularity ds Hosting cc) ])
          cases));
  Buffer.contents buf

let generate ?(options = default_options) ds =
  let summary = Toolkit.summarize ds in
  let buf = Buffer.create 16384 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "# Web dependence report\n\n";
  add "%d countries, %d (country, site) records.\n\n" summary.Toolkit.countries
    summary.Toolkit.records;
  add "%s\n"
    (md_table
       [ "layer"; "mean S"; "most centralized"; "least centralized"; "mean insularity" ]
       (List.map
          (fun l ->
            [ layer_name l.Toolkit.layer;
              Printf.sprintf "%.4f" l.Toolkit.mean_score;
              Printf.sprintf "%s (%.4f)" (fst l.Toolkit.most_centralized)
                (snd l.Toolkit.most_centralized);
              Printf.sprintf "%s (%.4f)" (fst l.Toolkit.least_centralized)
                (snd l.Toolkit.least_centralized);
              Printf.sprintf "%.1f%%" (100.0 *. l.Toolkit.mean_insularity) ])
          summary.Toolkit.layers));
  List.iter
    (fun layer ->
      (* Skip layers in which no country has a labelled site. *)
      if Metrics.all_scores ds layer <> [] then
        Buffer.add_string buf (layer_section ds layer ~top_rows:options.top_rows))
    Webdep_reference.Paper_scores.all_layers;
  if options.include_classes then Buffer.add_string buf (classes_section ds);
  if options.case_studies <> [] then
    Buffer.add_string buf (case_study_section ds options.case_studies);
  Buffer.contents buf
