(** Longitudinal comparison of two measurement snapshots (§5.4). *)

type country_delta = {
  country : string;
  old_score : float;
  new_score : float;
  delta : float;  (** new − old *)
  jaccard : float;  (** toplist similarity between snapshots *)
  top_entity_delta : (string * float) option;
      (** named entity's share change, when a focus entity is given *)
}

type comparison = {
  deltas : country_delta list;  (** by descending |delta| *)
  rho : Webdep_stats.Correlation.result;  (** old vs new 𝒮 across countries *)
  mean_jaccard : float;
  focus_mean_delta : float option;
      (** mean share change of the focus entity (the paper tracks
          Cloudflare: +3.8 pts) *)
}

val compare :
  ?focus:string -> old_ds:Dataset.t -> new_ds:Dataset.t -> Dataset.layer -> comparison
(** Countries present in both datasets are compared; [focus] names an
    entity whose per-country share change is tracked (e.g.
    "Cloudflare"). *)

type churn_stats = {
  countries : int;  (** common countries compared *)
  kept : int;  (** domains present in both snapshots *)
  relabelled : int;  (** kept domains whose layer label changed *)
  added : int;
  removed : int;
  support_changed_countries : int;
      (** countries whose provider support set changed — the only ones
          where an EMD formulation would need a full re-solve *)
}

val compare_incremental :
  ?focus:string ->
  old_ds:Dataset.t ->
  new_ds:Dataset.t ->
  Dataset.layer ->
  comparison * churn_stats
(** {!compare}, recomputing only churned sites: the new snapshot's
    provider tallies are derived from the old ones by per-domain delta
    (added/removed domains, plus kept domains whose label changed), and
    scores are recomputed from the updated int-array tallies.  The
    returned comparison is bit-identical to {!compare} on the same
    inputs; the stats summarize how much churn the delta path
    actually touched. *)

val largest_increase : comparison -> country_delta
val largest_decrease : comparison -> country_delta

(** {2 Trend primitives}

    Shared by the multi-epoch churn-log replay ([webdep_epoch]): a
    many-epoch score series reduces to a per-country least-squares slope
    and a per-transition rank-churn figure. *)

val slope : float array -> float
(** Least-squares slope of the series against epoch index [0..n-1];
    NaN entries (country absent from an epoch) are skipped, and fewer
    than two finite points yield [0.0]. *)

val rank_displacement : (string * float) list -> (string * float) list -> int
(** Total absolute rank movement between two (country, score) rankings:
    both are ordered score-descending (ties by country code, the same
    order the serve plane uses) and the displacements of countries
    present in both are summed. *)
