(** Content-language cross-tabulation (§5.3.3).

    The paper uses language detection to explain cross-border hosting:
    "31.4% of the websites in Afghanistan's top list are in Persian, of
    which 60.8% are hosted in Iran." *)

val share_of_language : Dataset.t -> string -> string -> float
(** [share_of_language ds cc lang] — fraction of the country's sites whose
    detected content language is [lang] (sites with no detection count in
    the denominator). *)

val hosted_in : Dataset.t -> string -> language:string -> home:string -> float
(** Of the sites in [cc] with detected language [language], the fraction
    whose hosting provider is based in [home].  0 when no site matches
    the language. *)

val language_breakdown : Dataset.t -> string -> (string * float) list
(** Detected languages of a country's sites with shares, descending. *)

val language_home_crosstab :
  Dataset.t -> string -> language:string -> (string * float) list
(** For sites in a given language: breakdown by hosting-provider home
    country, descending share. *)
