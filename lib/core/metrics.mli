(** Country-level centralization analysis (§3.2, §5.1).

    Thin, dataset-aware wrappers around {!Webdep_emd.Centralization}. *)

val centralization : Dataset.t -> Dataset.layer -> string -> float
(** 𝒮 of a country in a layer. *)

val all_scores : Dataset.t -> Dataset.layer -> (string * float) list
(** [(country, 𝒮)] for every country with at least one labelled site in
    the layer, descending (rank 1 = most centralized) — the ordering
    used by Appendix F. *)

val global_score : Dataset.t -> Dataset.layer -> float
(** 𝒮 of the pooled "global top" distribution (Figure 12's marker). *)

val top_n_share : Dataset.t -> Dataset.layer -> string -> int -> float
(** The top-N heuristic the paper critiques: total share of the N largest
    providers. *)

val rank_curve : Dataset.t -> Dataset.layer -> string -> float array
(** Provider market shares in rank order (Figure 1's curves). *)

val cumulative_rank_curve : Dataset.t -> Dataset.layer -> string -> float array
(** Cumulative share by provider rank (Figure 3's presentation). *)

val providers_for_share : Dataset.t -> Dataset.layer -> string -> float -> int
(** Minimum number of providers covering the given share of websites
    ("90% of websites are hosted by fewer than 206 providers"). *)

val provider_count : Dataset.t -> Dataset.layer -> string -> int

val centralization_interval :
  ?iterations:int ->
  ?confidence:float ->
  ?jobs:int ->
  seed:int ->
  Dataset.t ->
  Dataset.layer ->
  string ->
  float * float
(** Bootstrap confidence interval for a country's 𝒮: resample the
    toplist's sites with replacement and recompute the score
    ([iterations] default 300, [confidence] default 0.95; resamples fan
    out across the {!Webdep_par} pool, [?jobs] overriding).  Quantifies
    how much 𝒮 depends on the specific top-C sample — the sampling
    noise behind comparisons like the paper's 2023-vs-2025 deltas. *)
