(** Provider classification (§5.2, Tables 1–3, Figures 6/7/14/15).

    Following the paper: compute (usage, endemicity ratio) per provider,
    min–max scale, cluster with affinity propagation, then coalesce
    clusters into the 8 named classes.  The paper coalesces manually; we
    encode the manual judgement as centroid rules (global vs regional by
    endemicity ratio, then size bands by mean per-country usage or peak
    country usage).

    Affinity propagation is O(n²) space, so only the [cluster_cap]
    largest providers by usage enter the message-passing step; the long
    tail below the cap is — as in the paper's own taxonomy — XS-RP by
    definition. *)

type klass = XL_GP | L_GP | L_GP_R | M_GP | S_GP | L_RP | S_RP | XS_RP

val klass_name : klass -> string
(** Paper spelling: "XL-GP", "L-GP (R)", … *)

val all_klasses : klass list

type classification = {
  providers : (Regionalization.usage_stats * klass) list;
      (** every provider in the layer with its class, descending usage *)
  raw_clusters : int;  (** affinity-propagation cluster count before coalescing *)
  table : (klass * int) list;  (** provider count per class (Table 1/2/3) *)
}

val classify : ?cluster_cap:int -> Dataset.t -> Dataset.layer -> classification
(** [cluster_cap] defaults to 600. *)

val klass_of : classification -> string -> klass option
(** Class of a provider by name. *)

val class_shares : classification -> Dataset.t -> Dataset.layer -> string -> (klass * float) list
(** Fraction of a country's websites served by each class (Figure 7's
    stacked bars), all classes present (0 when unused). *)

val share_of_class : classification -> Dataset.t -> Dataset.layer -> string -> klass -> float
