type layer = Webdep_reference.Paper_scores.layer = Hosting | Dns | Ca | Tld

type entity = { name : string; country : string }

type site = {
  domain : string;
  hosting : entity option;
  dns : entity option;
  ca : entity option;
  tld : entity;
  hosting_geo : string option;
  ns_geo : string option;
  hosting_anycast : bool;
  ns_anycast : bool;
  language : string option;
}

type country_data = { country : string; sites : site list }

type t = { by_country : (string, country_data) Hashtbl.t; order : string list }

let of_country_data data =
  let by_country = Hashtbl.create (List.length data) in
  List.iter (fun cd -> Hashtbl.replace by_country cd.country cd) data;
  { by_country; order = List.map (fun cd -> cd.country) data }

let countries t = t.order
let country t cc = Hashtbl.find_opt t.by_country cc

let country_exn t cc =
  match country t cc with Some cd -> cd | None -> raise Not_found

let size t =
  Hashtbl.fold (fun _ cd acc -> acc + List.length cd.sites) t.by_country 0

let entity_of site = function
  | Hosting -> site.hosting
  | Dns -> site.dns
  | Ca -> site.ca
  | Tld -> Some site.tld

(* Dense tally: one interned id per distinct (name, country) entity,
   counts in an int array indexed by id.  Avoids hashing a fresh string
   pair per site the way the old (string * string)-keyed Hashtbl did. *)
type tally = {
  syms : Symbol.t;
  mutable entities : entity array; (* id -> entity *)
  mutable counts : int array; (* id -> count *)
}

let dummy_entity = { name = ""; country = "" }

let tally_create () =
  {
    syms = Symbol.create ~size:256 ();
    entities = Array.make 256 dummy_entity;
    counts = Array.make 256 0;
  }

let tally_add t e =
  (* \x1f (unit separator) cannot appear in entity labels, so the joined
     key is injective on (name, country). *)
  let before = Symbol.count t.syms in
  let id = Symbol.intern t.syms (e.name ^ "\x1f" ^ e.country) in
  if id = Array.length t.counts then begin
    let counts = Array.make (2 * id) 0 in
    Array.blit t.counts 0 counts 0 id;
    t.counts <- counts;
    let entities = Array.make (2 * id) dummy_entity in
    Array.blit t.entities 0 entities 0 id;
    t.entities <- entities
  end;
  if id = before then t.entities.(id) <- e;
  t.counts.(id) <- t.counts.(id) + 1

let tally_sites t sites layer =
  List.iter
    (fun s -> match entity_of s layer with None -> () | Some e -> tally_add t e)
    sites

(* Deterministic canonical order for (entity, count) lists: it depends
   only on the tallied multiset, never on insertion order, so a tally
   maintained incrementally under churn canonicalizes to the same list a
   cold re-tally would. *)
let sort_counts out =
  List.sort
    (fun (e1, a) (e2, b) ->
      let c = Int.compare b a in
      if c <> 0 then c
      else
        let c = String.compare e1.name e2.name in
        if c <> 0 then c else String.compare e1.country e2.country)
    out

module Tally = struct
  type nonrec t = tally

  let create () = tally_create ()

  let key e = e.name ^ "\x1f" ^ e.country

  let add t e =
    let before = Symbol.count t.syms in
    let id = Symbol.intern t.syms (key e) in
    if id = Array.length t.counts then begin
      let counts = Array.make (2 * id) 0 in
      Array.blit t.counts 0 counts 0 id;
      t.counts <- counts;
      let entities = Array.make (2 * id) dummy_entity in
      Array.blit t.entities 0 entities 0 id;
      t.entities <- entities
    end;
    if id = before then t.entities.(id) <- e;
    let c = t.counts.(id) in
    t.counts.(id) <- c + 1;
    c = 0

  let remove t e =
    match Symbol.find t.syms (key e) with
    | None -> invalid_arg "Dataset.Tally.remove: unknown entity"
    | Some id ->
        let c = t.counts.(id) in
        if c <= 0 then invalid_arg "Dataset.Tally.remove: count already zero";
        t.counts.(id) <- c - 1;
        c = 1

  let add_site t layer s =
    match entity_of s layer with None -> false | Some e -> add t e

  let remove_site t layer s =
    match entity_of s layer with None -> false | Some e -> remove t e

  let of_sites sites layer =
    let t = create () in
    List.iter (fun s -> ignore (add_site t layer s)) sites;
    t

  (* Re-interning in ascending id order reproduces the exact id
     assignment, so the copy is indistinguishable from the original. *)
  let copy t =
    let n = Symbol.count t.syms in
    let out = tally_create () in
    for id = 0 to n - 1 do
      let e = t.entities.(id) in
      let id' = Symbol.intern out.syms (key e) in
      if id' = Array.length out.counts then begin
        let counts = Array.make (2 * id') 0 in
        Array.blit out.counts 0 counts 0 id';
        out.counts <- counts;
        let entities = Array.make (2 * id') dummy_entity in
        Array.blit out.entities 0 entities 0 id';
        out.entities <- entities
      end;
      out.entities.(id') <- e;
      out.counts.(id') <- t.counts.(id)
    done;
    out

  let support t =
    let n = ref 0 in
    for id = 0 to Symbol.count t.syms - 1 do
      if t.counts.(id) > 0 then incr n
    done;
    !n

  let counts t =
    let out = ref [] in
    for id = Symbol.count t.syms - 1 downto 0 do
      if t.counts.(id) > 0 then out := (t.entities.(id), t.counts.(id)) :: !out
    done;
    sort_counts !out

  let distribution t =
    let cs = List.map snd (counts t) in
    if cs = [] then raise Not_found;
    Webdep_emd.Dist.of_positive_counts (Array.of_list cs)

  let name_count t name =
    let acc = ref 0 in
    for id = 0 to Symbol.count t.syms - 1 do
      if t.counts.(id) > 0 && String.equal t.entities.(id).name name then
        acc := !acc + t.counts.(id)
    done;
    !acc

  let home_count t cc =
    let acc = ref 0 in
    for id = 0 to Symbol.count t.syms - 1 do
      if t.counts.(id) > 0 && String.equal t.entities.(id).country cc then
        acc := !acc + t.counts.(id)
    done;
    !acc
end

let counts_by_entity t layer cc =
  let cd = country_exn t cc in
  let ty = tally_create () in
  tally_sites ty cd.sites layer;
  let out = ref [] in
  for id = Symbol.count ty.syms - 1 downto 0 do
    out := (ty.entities.(id), ty.counts.(id)) :: !out
  done;
  (* Count-descending with a deterministic tie-break (the old Hashtbl
     fold left ties in table-layout order). *)
  sort_counts !out

let distribution t layer cc =
  let counts = List.map snd (counts_by_entity t layer cc) in
  if counts = [] then raise Not_found;
  Webdep_emd.Dist.of_counts (Array.of_list counts)

let merged_distribution t layer =
  let ty = tally_create () in
  List.iter
    (fun cc ->
      match country t cc with
      | Some cd -> tally_sites ty cd.sites layer
      | None -> ())
    t.order;
  Webdep_emd.Dist.of_counts (Array.sub ty.counts 0 (Symbol.count ty.syms))

let entity_share t layer cc ~name =
  let cd = country_exn t cc in
  let total = List.length cd.sites in
  if total = 0 then 0.0
  else begin
    let hits =
      List.fold_left
        (fun acc s ->
          match entity_of s layer with
          | Some e when String.equal e.name name -> acc + 1
          | Some _ | None -> acc)
        0 cd.sites
    in
    float_of_int hits /. float_of_int total
  end
