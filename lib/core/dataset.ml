type layer = Webdep_reference.Paper_scores.layer = Hosting | Dns | Ca | Tld

type entity = { name : string; country : string }

type site = {
  domain : string;
  hosting : entity option;
  dns : entity option;
  ca : entity option;
  tld : entity;
  hosting_geo : string option;
  ns_geo : string option;
  hosting_anycast : bool;
  ns_anycast : bool;
  language : string option;
}

type country_data = { country : string; sites : site list }

let dummy_entity = { name = ""; country = "" }

(* ---- compact interned storage ------------------------------------------

   A dataset does not keep the [site] records callers hand it: each site
   is encoded into a handful of integers against a per-dataset pool —
   one dense id per distinct (name, country) entity (providers, CAs,
   TLDs share the pool) and one per distinct small string (geo country
   codes, language labels).  At the paper's full scale (150 countries x
   10K sites, ~1.5M records) this stores five int arrays plus the domain
   strings per country instead of ~1.5M boxed records with per-site
   entity/option allocations.

   The string-facing API ([country]/[country_exn]) decodes on demand and
   memoizes the decoded [country_data] per country, so callers that walk
   [.sites] see byte-identical records to what was encoded; the metric
   queries below ([counts_by_entity], [distribution], ...) run directly
   on the int arrays and never decode.

   Ids are assigned in first-encounter order during encoding, which the
   measurement pipeline performs sequentially in canonical country
   order, so pool ids are independent of [--jobs]. *)

type pool = {
  mutable entities : entity array; (* id -> entity (first-seen record) *)
  mutable ecount : int;
  eindex : (string, (string, int) Hashtbl.t) Hashtbl.t; (* name -> country -> id *)
  ssyms : Symbol.t; (* geo country codes and language labels *)
}

let pool_create () =
  {
    entities = Array.make 1024 dummy_entity;
    ecount = 0;
    eindex = Hashtbl.create 1024;
    ssyms = Symbol.create ~size:256 ();
  }

let intern_entity p e =
  let by_country =
    match Hashtbl.find_opt p.eindex e.name with
    | Some tbl -> tbl
    | None ->
        let tbl = Hashtbl.create 4 in
        Hashtbl.replace p.eindex e.name tbl;
        tbl
  in
  match Hashtbl.find_opt by_country e.country with
  | Some id -> id
  | None ->
      let id = p.ecount in
      if id = Array.length p.entities then begin
        let bigger = Array.make (2 * id) dummy_entity in
        Array.blit p.entities 0 bigger 0 id;
        p.entities <- bigger
      end;
      p.entities.(id) <- e;
      p.ecount <- id + 1;
      Hashtbl.replace by_country e.country id;
      id

(* Small-string ids and the two anycast flags pack into one aux word:
   20 bits each for hosting_geo / ns_geo / language (0 = None, else
   id + 1), flags in bits 60-61.  A million distinct geo or language
   labels would overflow the field; the simulated world has ~150. *)
let str_bits = 20
let str_mask = (1 lsl str_bits) - 1

let intern_opt_str p = function
  | None -> 0
  | Some s ->
      let v = 1 + Symbol.intern p.ssyms s in
      if v > str_mask then
        invalid_arg "Dataset: too many distinct geo/language labels";
      v

let pack_aux ~hgeo ~nsgeo ~lang ~hany ~nany =
  hgeo
  lor (nsgeo lsl str_bits)
  lor (lang lsl (2 * str_bits))
  lor (if hany then 1 lsl 60 else 0)
  lor (if nany then 1 lsl 61 else 0)

type packed = {
  cc : string;
  domains : string array;
  hosting : int array; (* entity id + 1; 0 = None *)
  dns : int array;
  ca : int array;
  tld : int array; (* entity id + 1; never 0 *)
  aux : int array;
  decoded : country_data option Atomic.t;
}

type t = {
  pool : pool;
  by_country : (string, packed) Hashtbl.t;
  order : string list;
}

let intern_opt_entity p = function None -> 0 | Some e -> 1 + intern_entity p e

let encode_country pool (cd : country_data) =
  let n = List.length cd.sites in
  let domains = Array.make n "" in
  let hosting = Array.make n 0 in
  let dns = Array.make n 0 in
  let ca = Array.make n 0 in
  let tld = Array.make n 0 in
  let aux = Array.make n 0 in
  List.iteri
    (fun i s ->
      domains.(i) <- s.domain;
      hosting.(i) <- intern_opt_entity pool s.hosting;
      dns.(i) <- intern_opt_entity pool s.dns;
      ca.(i) <- intern_opt_entity pool s.ca;
      tld.(i) <- 1 + intern_entity pool s.tld;
      aux.(i) <-
        pack_aux
          ~hgeo:(intern_opt_str pool s.hosting_geo)
          ~nsgeo:(intern_opt_str pool s.ns_geo)
          ~lang:(intern_opt_str pool s.language)
          ~hany:s.hosting_anycast ~nany:s.ns_anycast)
    cd.sites;
  { cc = cd.country; domains; hosting; dns; ca; tld; aux;
    decoded = Atomic.make None }

let entity_at pool v = if v = 0 then None else Some pool.entities.(v - 1)
let str_at pool v = if v = 0 then None else Some (Symbol.name pool.ssyms (v - 1))

let decode_site pool pk i : site =
  let aux = pk.aux.(i) in
  {
    domain = pk.domains.(i);
    hosting = entity_at pool pk.hosting.(i);
    dns = entity_at pool pk.dns.(i);
    ca = entity_at pool pk.ca.(i);
    tld = pool.entities.(pk.tld.(i) - 1);
    hosting_geo = str_at pool (aux land str_mask);
    ns_geo = str_at pool ((aux lsr str_bits) land str_mask);
    hosting_anycast = aux land (1 lsl 60) <> 0;
    ns_anycast = aux land (1 lsl 61) <> 0;
    language = str_at pool ((aux lsr (2 * str_bits)) land str_mask);
  }

(* Decode is deterministic, so a lost CAS race just discards an
   identical copy; the memo makes repeated [.sites] walks free and keeps
   the decoded structure physically shared between them. *)
let decode_country pool pk =
  match Atomic.get pk.decoded with
  | Some cd -> cd
  | None ->
      let n = Array.length pk.domains in
      let sites = ref [] in
      for i = n - 1 downto 0 do
        sites := decode_site pool pk i :: !sites
      done;
      let cd = { country = pk.cc; sites = !sites } in
      if Atomic.compare_and_set pk.decoded None (Some cd) then cd
      else Option.get (Atomic.get pk.decoded)

(* ---- streaming construction --------------------------------------------- *)

type builder = {
  b_pool : pool;
  b_by_country : (string, packed) Hashtbl.t;
  mutable b_rev_order : string list;
}

let builder () =
  { b_pool = pool_create (); b_by_country = Hashtbl.create 64; b_rev_order = [] }

let builder_add b cd =
  Hashtbl.replace b.b_by_country cd.country (encode_country b.b_pool cd);
  b.b_rev_order <- cd.country :: b.b_rev_order

let builder_finish b =
  { pool = b.b_pool; by_country = b.b_by_country;
    order = List.rev b.b_rev_order }

let of_country_data data =
  let b = builder () in
  List.iter (builder_add b) data;
  builder_finish b

let countries t = t.order

let packed t cc = Hashtbl.find_opt t.by_country cc

let packed_exn t cc =
  match packed t cc with Some pk -> pk | None -> raise Not_found

let country t cc = Option.map (decode_country t.pool) (packed t cc)

let country_exn t cc = decode_country t.pool (packed_exn t cc)

let size t =
  Hashtbl.fold (fun _ pk acc -> acc + Array.length pk.domains) t.by_country 0

let site_count t cc = Array.length (packed_exn t cc).domains

let entity_of (s : site) = function
  | Hosting -> s.hosting
  | Dns -> s.dns
  | Ca -> s.ca
  | Tld -> Some s.tld

let layer_ids pk = function
  | Hosting -> pk.hosting
  | Dns -> pk.dns
  | Ca -> pk.ca
  | Tld -> pk.tld

(* Deterministic canonical order for (entity, count) lists: it depends
   only on the tallied multiset, never on insertion order, so a tally
   maintained incrementally under churn canonicalizes to the same list a
   cold re-tally would. *)
let sort_counts out =
  List.sort
    (fun (e1, a) (e2, b) ->
      let c = Int.compare b a in
      if c <> 0 then c
      else
        let c = String.compare e1.name e2.name in
        if c <> 0 then c else String.compare e1.country e2.country)
    out

(* ---- metric queries on the int arrays ------------------------------------ *)

let counts_by_entity t layer cc =
  let pk = packed_exn t cc in
  let ids = layer_ids pk layer in
  let counts = Array.make (max 1 t.pool.ecount) 0 in
  Array.iter (fun v -> if v > 0 then counts.(v - 1) <- counts.(v - 1) + 1) ids;
  let out = ref [] in
  for id = t.pool.ecount - 1 downto 0 do
    if counts.(id) > 0 then out := (t.pool.entities.(id), counts.(id)) :: !out
  done;
  (* Count-descending with a deterministic tie-break (the old Hashtbl
     fold left ties in table-layout order). *)
  sort_counts !out

let distribution t layer cc =
  let counts = List.map snd (counts_by_entity t layer cc) in
  if counts = [] then raise Not_found;
  Webdep_emd.Dist.of_counts (Array.of_list counts)

(* Pooled counts in first-encounter order over countries in dataset
   order — the same order the per-layer string interner of the previous
   representation assigned, so the resulting distribution is
   bit-identical. *)
let merged_distribution t layer =
  let remap = Array.make (max 1 t.pool.ecount) (-1) in
  let counts = ref (Array.make 256 0) in
  let n = ref 0 in
  List.iter
    (fun cc ->
      match packed t cc with
      | None -> ()
      | Some pk ->
          Array.iter
            (fun v ->
              if v > 0 then begin
                let id = v - 1 in
                let local =
                  if remap.(id) >= 0 then remap.(id)
                  else begin
                    let local = !n in
                    if local = Array.length !counts then begin
                      let bigger = Array.make (2 * local) 0 in
                      Array.blit !counts 0 bigger 0 local;
                      counts := bigger
                    end;
                    remap.(id) <- local;
                    incr n;
                    local
                  end
                in
                !counts.(local) <- !counts.(local) + 1
              end)
            (layer_ids pk layer))
    t.order;
  Webdep_emd.Dist.of_counts (Array.sub !counts 0 !n)

let entity_share t layer cc ~name =
  let pk = packed_exn t cc in
  let total = Array.length pk.domains in
  if total = 0 then 0.0
  else begin
    let hits = ref 0 in
    Array.iter
      (fun v ->
        if v > 0 && String.equal t.pool.entities.(v - 1).name name then
          incr hits)
      (layer_ids pk layer);
    float_of_int !hits /. float_of_int total
  end

let home_label_count t layer cc =
  let pk = packed_exn t cc in
  let hits = ref 0 in
  Array.iter
    (fun v ->
      if v > 0 && String.equal t.pool.entities.(v - 1).country cc then incr hits)
    (layer_ids pk layer);
  !hits

(* ---- compact codec (exposed for round-trip tests) ------------------------ *)

module Compact = struct
  type codec = pool

  type site_compact = {
    c_domain : string;
    c_hosting : int;
    c_dns : int;
    c_ca : int;
    c_tld : int;
    c_aux : int;
  }

  let codec () = pool_create ()

  let encode p (s : site) =
    {
      c_domain = s.domain;
      c_hosting = intern_opt_entity p s.hosting;
      c_dns = intern_opt_entity p s.dns;
      c_ca = intern_opt_entity p s.ca;
      c_tld = 1 + intern_entity p s.tld;
      c_aux =
        pack_aux
          ~hgeo:(intern_opt_str p s.hosting_geo)
          ~nsgeo:(intern_opt_str p s.ns_geo)
          ~lang:(intern_opt_str p s.language)
          ~hany:s.hosting_anycast ~nany:s.ns_anycast;
    }

  let decode p sc : site =
    {
      domain = sc.c_domain;
      hosting = entity_at p sc.c_hosting;
      dns = entity_at p sc.c_dns;
      ca = entity_at p sc.c_ca;
      tld = p.entities.(sc.c_tld - 1);
      hosting_geo = str_at p (sc.c_aux land str_mask);
      ns_geo = str_at p ((sc.c_aux lsr str_bits) land str_mask);
      hosting_anycast = sc.c_aux land (1 lsl 60) <> 0;
      ns_anycast = sc.c_aux land (1 lsl 61) <> 0;
      language = str_at p ((sc.c_aux lsr (2 * str_bits)) land str_mask);
    }

  let entity_count t = t.pool.ecount
  let entities t = Array.sub t.pool.entities 0 t.pool.ecount
end

(* ---- incremental tallies (unchanged representation) ---------------------- *)

(* Dense tally: one interned id per distinct (name, country) entity,
   counts in an int array indexed by id.  Avoids hashing a fresh string
   pair per site the way the old (string * string)-keyed Hashtbl did. *)
type tally = {
  syms : Symbol.t;
  mutable entities : entity array; (* id -> entity *)
  mutable counts : int array; (* id -> count *)
}

let tally_create () =
  {
    syms = Symbol.create ~size:256 ();
    entities = Array.make 256 dummy_entity;
    counts = Array.make 256 0;
  }

module Tally = struct
  type nonrec t = tally

  let create () = tally_create ()

  (* \x1f (unit separator) cannot appear in entity labels, so the joined
     key is injective on (name, country). *)
  let key e = e.name ^ "\x1f" ^ e.country

  let add t e =
    let before = Symbol.count t.syms in
    let id = Symbol.intern t.syms (key e) in
    if id = Array.length t.counts then begin
      let counts = Array.make (2 * id) 0 in
      Array.blit t.counts 0 counts 0 id;
      t.counts <- counts;
      let entities = Array.make (2 * id) dummy_entity in
      Array.blit t.entities 0 entities 0 id;
      t.entities <- entities
    end;
    if id = before then t.entities.(id) <- e;
    let c = t.counts.(id) in
    t.counts.(id) <- c + 1;
    c = 0

  let remove t e =
    match Symbol.find t.syms (key e) with
    | None -> invalid_arg "Dataset.Tally.remove: unknown entity"
    | Some id ->
        let c = t.counts.(id) in
        if c <= 0 then invalid_arg "Dataset.Tally.remove: count already zero";
        t.counts.(id) <- c - 1;
        c = 1

  let add_site t layer s =
    match entity_of s layer with None -> false | Some e -> add t e

  let remove_site t layer s =
    match entity_of s layer with None -> false | Some e -> remove t e

  let of_sites sites layer =
    let t = create () in
    List.iter (fun s -> ignore (add_site t layer s)) sites;
    t

  (* Re-interning in ascending id order reproduces the exact id
     assignment, so the copy is indistinguishable from the original. *)
  let copy t =
    let n = Symbol.count t.syms in
    let out = tally_create () in
    for id = 0 to n - 1 do
      let e = t.entities.(id) in
      let id' = Symbol.intern out.syms (key e) in
      if id' = Array.length out.counts then begin
        let counts = Array.make (2 * id') 0 in
        Array.blit out.counts 0 counts 0 id';
        out.counts <- counts;
        let entities = Array.make (2 * id') dummy_entity in
        Array.blit out.entities 0 entities 0 id';
        out.entities <- entities
      end;
      out.entities.(id') <- e;
      out.counts.(id') <- t.counts.(id)
    done;
    out

  let support t =
    let n = ref 0 in
    for id = 0 to Symbol.count t.syms - 1 do
      if t.counts.(id) > 0 then incr n
    done;
    !n

  let counts t =
    let out = ref [] in
    for id = Symbol.count t.syms - 1 downto 0 do
      if t.counts.(id) > 0 then out := (t.entities.(id), t.counts.(id)) :: !out
    done;
    sort_counts !out

  let distribution t =
    let cs = List.map snd (counts t) in
    if cs = [] then raise Not_found;
    Webdep_emd.Dist.of_positive_counts (Array.of_list cs)

  let name_count t name =
    let acc = ref 0 in
    for id = 0 to Symbol.count t.syms - 1 do
      if t.counts.(id) > 0 && String.equal t.entities.(id).name name then
        acc := !acc + t.counts.(id)
    done;
    !acc

  let home_count t cc =
    let acc = ref 0 in
    for id = 0 to Symbol.count t.syms - 1 do
      if t.counts.(id) > 0 && String.equal t.entities.(id).country cc then
        acc := !acc + t.counts.(id)
    done;
    !acc
end
