type layer = Webdep_reference.Paper_scores.layer = Hosting | Dns | Ca | Tld

type entity = { name : string; country : string }

type site = {
  domain : string;
  hosting : entity option;
  dns : entity option;
  ca : entity option;
  tld : entity;
  hosting_geo : string option;
  ns_geo : string option;
  hosting_anycast : bool;
  ns_anycast : bool;
  language : string option;
}

type country_data = { country : string; sites : site list }

type t = { by_country : (string, country_data) Hashtbl.t; order : string list }

let of_country_data data =
  let by_country = Hashtbl.create (List.length data) in
  List.iter (fun cd -> Hashtbl.replace by_country cd.country cd) data;
  { by_country; order = List.map (fun cd -> cd.country) data }

let countries t = t.order
let country t cc = Hashtbl.find_opt t.by_country cc

let country_exn t cc =
  match country t cc with Some cd -> cd | None -> raise Not_found

let size t =
  Hashtbl.fold (fun _ cd acc -> acc + List.length cd.sites) t.by_country 0

let entity_of site = function
  | Hosting -> site.hosting
  | Dns -> site.dns
  | Ca -> site.ca
  | Tld -> Some site.tld

let counts_table sites layer =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun s ->
      match entity_of s layer with
      | None -> ()
      | Some e ->
          let key = (e.name, e.country) in
          Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    sites;
  tbl

let counts_by_entity t layer cc =
  let cd = country_exn t cc in
  let tbl = counts_table cd.sites layer in
  Hashtbl.fold (fun (name, country) k acc -> ({ name; country }, k) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let distribution t layer cc =
  let counts = List.map snd (counts_by_entity t layer cc) in
  if counts = [] then raise Not_found;
  Webdep_emd.Dist.of_counts (Array.of_list counts)

let merged_distribution t layer =
  let tbl = Hashtbl.create 4096 in
  Hashtbl.iter
    (fun _ cd ->
      let local = counts_table cd.sites layer in
      Hashtbl.iter
        (fun key k ->
          Hashtbl.replace tbl key (k + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
        local)
    t.by_country;
  let counts = Hashtbl.fold (fun _ k acc -> k :: acc) tbl [] in
  Webdep_emd.Dist.of_counts (Array.of_list counts)

let entity_share t layer cc ~name =
  let cd = country_exn t cc in
  let total = List.length cd.sites in
  if total = 0 then 0.0
  else begin
    let hits =
      List.fold_left
        (fun acc s ->
          match entity_of s layer with
          | Some e when String.equal e.name name -> acc + 1
          | Some _ | None -> acc)
        0 cd.sites
    in
    float_of_int hits /. float_of_int total
  end
