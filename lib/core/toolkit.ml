type layer_summary = {
  layer : Dataset.layer;
  mean_score : float;
  score_variance : float;
  most_centralized : string * float;
  least_centralized : string * float;
  global_score : float;
  mean_insularity : float;
  most_insular : string * float;
}

type summary = { countries : int; records : int; layers : layer_summary list }

let summarize ds =
  let layers =
    List.filter_map
      (fun layer ->
        match Metrics.all_scores ds layer with
        | [] -> None (* no country has data in this layer *)
        | scores ->
            let insularity = Regionalization.all_insularity ds layer in
            let mean xs = Webdep_stats.Descriptive.mean (Array.of_list (List.map snd xs)) in
            let arr = Array.of_list (List.map snd scores) in
            Some
              {
                layer;
                mean_score = Webdep_stats.Descriptive.mean arr;
                score_variance = Webdep_stats.Descriptive.variance arr;
                most_centralized = List.hd scores;
                least_centralized = List.nth scores (List.length scores - 1);
                global_score = Metrics.global_score ds layer;
                mean_insularity = mean insularity;
                most_insular = List.hd insularity;
              })
      Webdep_reference.Paper_scores.all_layers
  in
  { countries = List.length (Dataset.countries ds); records = Dataset.size ds; layers }

let pp fmt s =
  Format.fprintf fmt "dataset: %d countries, %d (country, site) records@." s.countries
    s.records;
  List.iter
    (fun l ->
      Format.fprintf fmt
        "%-8s mean S %.4f (var %.4f)  range [%s %.4f .. %s %.4f]  global %.4f  mean \
         insularity %.1f%% (max %s %.1f%%)@."
        (Webdep_reference.Paper_scores.layer_name l.layer)
        l.mean_score l.score_variance
        (fst l.least_centralized) (snd l.least_centralized)
        (fst l.most_centralized) (snd l.most_centralized)
        l.global_score
        (100.0 *. l.mean_insularity)
        (fst l.most_insular)
        (100.0 *. snd l.most_insular))
    s.layers
