type country_delta = {
  country : string;
  old_score : float;
  new_score : float;
  delta : float;
  jaccard : float;
  top_entity_delta : (string * float) option;
}

type comparison = {
  deltas : country_delta list;
  rho : Webdep_stats.Correlation.result;
  mean_jaccard : float;
  focus_mean_delta : float option;
}

let domains cd = List.map (fun s -> s.Dataset.domain) cd.Dataset.sites

let common_countries ~old_ds ~new_ds =
  List.filter (fun cc -> Dataset.country new_ds cc <> None) (Dataset.countries old_ds)

(* Aggregation tail shared by the full and incremental comparisons: the
   per-country deltas fully determine the comparison, so both paths end
   identically. *)
let finish ~focus deltas =
  let olds = Array.of_list (List.map (fun d -> d.old_score) deltas) in
  let news = Array.of_list (List.map (fun d -> d.new_score) deltas) in
  let rho = Webdep_stats.Correlation.pearson olds news in
  let mean_jaccard =
    Webdep_stats.Descriptive.mean
      (Array.of_list (List.map (fun d -> d.jaccard) deltas))
  in
  let focus_mean_delta =
    match focus with
    | None -> None
    | Some _ ->
        Some
          (Webdep_stats.Descriptive.mean
             (Array.of_list
                (List.filter_map (fun d -> Option.map snd d.top_entity_delta) deltas)))
  in
  let deltas =
    List.sort (fun a b -> Stdlib.compare (Float.abs b.delta) (Float.abs a.delta)) deltas
  in
  { deltas; rho; mean_jaccard; focus_mean_delta }

let compare ?focus ~old_ds ~new_ds layer =
  let common = common_countries ~old_ds ~new_ds in
  if List.length common < 3 then invalid_arg "Longitudinal.compare: too few common countries";
  let deltas =
    List.map
      (fun cc ->
        let old_score = Metrics.centralization old_ds layer cc in
        let new_score = Metrics.centralization new_ds layer cc in
        let jaccard =
          Webdep_stats.Similarity.jaccard_strings
            (domains (Dataset.country_exn old_ds cc))
            (domains (Dataset.country_exn new_ds cc))
        in
        let top_entity_delta =
          Option.map
            (fun name ->
              ( name,
                Dataset.entity_share new_ds layer cc ~name
                -. Dataset.entity_share old_ds layer cc ~name ))
            focus
        in
        { country = cc; old_score; new_score; delta = new_score -. old_score; jaccard;
          top_entity_delta })
      common
  in
  finish ~focus deltas

type churn_stats = {
  countries : int;
  kept : int;
  relabelled : int;
  added : int;
  removed : int;
  support_changed_countries : int;
}

let compare_incremental ?focus ~old_ds ~new_ds layer =
  let common = common_countries ~old_ds ~new_ds in
  if List.length common < 3 then
    invalid_arg "Longitudinal.compare_incremental: too few common countries";
  let kept = ref 0 and relabelled = ref 0 in
  let added = ref 0 and removed = ref 0 and changed_ccs = ref 0 in
  let deltas =
    List.map
      (fun cc ->
        let old_cd = Dataset.country_exn old_ds cc in
        let new_cd = Dataset.country_exn new_ds cc in
        (* The old side is tallied once; the new side's tally is derived
           from it by delta — only churned or relabelled sites touch it.
           Canonical count ordering depends only on the tallied multiset,
           so both scores are bit-identical to the full recomputation. *)
        let old_tally = Dataset.Tally.of_sites old_cd.Dataset.sites layer in
        let old_score =
          Webdep_emd.Centralization.score (Dataset.Tally.distribution old_tally)
        in
        let old_by_domain = Hashtbl.create (List.length old_cd.Dataset.sites) in
        List.iter
          (fun (s : Dataset.site) -> Hashtbl.replace old_by_domain s.Dataset.domain s)
          old_cd.Dataset.sites;
        let tally = Dataset.Tally.copy old_tally in
        let support_changed = ref false in
        let mark b = if b then support_changed := true in
        let in_new = Hashtbl.create (List.length new_cd.Dataset.sites) in
        List.iter
          (fun (s : Dataset.site) ->
            Hashtbl.replace in_new s.Dataset.domain ();
            match Hashtbl.find_opt old_by_domain s.Dataset.domain with
            | Some old_s ->
                incr kept;
                (* A surviving domain can still change providers between
                   epochs (2025 re-derives layer assignments): swap its
                   label instead of re-tallying the country. *)
                let oe = Dataset.entity_of old_s layer in
                let ne = Dataset.entity_of s layer in
                if oe <> ne then begin
                  incr relabelled;
                  (match oe with Some e -> mark (Dataset.Tally.remove tally e) | None -> ());
                  match ne with Some e -> mark (Dataset.Tally.add tally e) | None -> ()
                end
            | None ->
                incr added;
                mark (Dataset.Tally.add_site tally layer s))
          new_cd.Dataset.sites;
        List.iter
          (fun (old_s : Dataset.site) ->
            if not (Hashtbl.mem in_new old_s.Dataset.domain) then begin
              incr removed;
              mark (Dataset.Tally.remove_site tally layer old_s)
            end)
          old_cd.Dataset.sites;
        if !support_changed then incr changed_ccs;
        let new_score =
          Webdep_emd.Centralization.score (Dataset.Tally.distribution tally)
        in
        let jaccard =
          Webdep_stats.Similarity.jaccard_strings (domains old_cd) (domains new_cd)
        in
        let top_entity_delta =
          Option.map
            (fun name ->
              let total = List.length new_cd.Dataset.sites in
              let new_share =
                if total = 0 then 0.0
                else
                  float_of_int (Dataset.Tally.name_count tally name)
                  /. float_of_int total
              in
              (name, new_share -. Dataset.entity_share old_ds layer cc ~name))
            focus
        in
        { country = cc; old_score; new_score; delta = new_score -. old_score; jaccard;
          top_entity_delta })
      common
  in
  ( finish ~focus deltas,
    {
      countries = List.length common;
      kept = !kept;
      relabelled = !relabelled;
      added = !added;
      removed = !removed;
      support_changed_countries = !changed_ccs;
    } )

let largest_increase cmp =
  List.fold_left
    (fun best d -> if d.delta > best.delta then d else best)
    (List.hd cmp.deltas) cmp.deltas

let largest_decrease cmp =
  List.fold_left
    (fun best d -> if d.delta < best.delta then d else best)
    (List.hd cmp.deltas) cmp.deltas

(* --- trend primitives over many-epoch series ---------------------------- *)

(* Least-squares slope of [ys] against epoch index 0..n-1, skipping NaN
   entries (countries absent from some epochs).  With fewer than two
   finite points there is no trend: 0. *)
let slope ys =
  let n = Array.length ys in
  let sx = ref 0.0 and sy = ref 0.0 and sxx = ref 0.0 and sxy = ref 0.0 in
  let m = ref 0 in
  for i = 0 to n - 1 do
    let y = ys.(i) in
    if not (Float.is_nan y) then begin
      let x = float_of_int i in
      sx := !sx +. x;
      sy := !sy +. y;
      sxx := !sxx +. (x *. x);
      sxy := !sxy +. (x *. y);
      incr m
    end
  done;
  if !m < 2 then 0.0
  else
    let mf = float_of_int !m in
    let denom = (mf *. !sxx) -. (!sx *. !sx) in
    if denom = 0.0 then 0.0 else ((mf *. !sxy) -. (!sx *. !sy)) /. denom

(* The canonical ranking order shared with the serve plane: score
   descending, ties by country code. *)
let rank_order scored =
  List.sort
    (fun (cc1, s1) (cc2, s2) ->
      match Float.compare s2 s1 with 0 -> String.compare cc1 cc2 | c -> c)
    scored

let rank_displacement old_scored new_scored =
  let index scored =
    let tbl = Hashtbl.create 64 in
    List.iteri (fun i (cc, _) -> Hashtbl.replace tbl cc i) (rank_order scored);
    tbl
  in
  let old_ranks = index old_scored and new_ranks = index new_scored in
  Hashtbl.fold
    (fun cc old_rank acc ->
      match Hashtbl.find_opt new_ranks cc with
      | Some new_rank -> acc + abs (new_rank - old_rank)
      | None -> acc)
    old_ranks 0
