type country_delta = {
  country : string;
  old_score : float;
  new_score : float;
  delta : float;
  jaccard : float;
  top_entity_delta : (string * float) option;
}

type comparison = {
  deltas : country_delta list;
  rho : Webdep_stats.Correlation.result;
  mean_jaccard : float;
  focus_mean_delta : float option;
}

let domains cd = List.map (fun s -> s.Dataset.domain) cd.Dataset.sites

let compare ?focus ~old_ds ~new_ds layer =
  let common =
    List.filter (fun cc -> Dataset.country new_ds cc <> None) (Dataset.countries old_ds)
  in
  if List.length common < 3 then invalid_arg "Longitudinal.compare: too few common countries";
  let deltas =
    List.map
      (fun cc ->
        let old_score = Metrics.centralization old_ds layer cc in
        let new_score = Metrics.centralization new_ds layer cc in
        let jaccard =
          Webdep_stats.Similarity.jaccard_strings
            (domains (Dataset.country_exn old_ds cc))
            (domains (Dataset.country_exn new_ds cc))
        in
        let top_entity_delta =
          Option.map
            (fun name ->
              ( name,
                Dataset.entity_share new_ds layer cc ~name
                -. Dataset.entity_share old_ds layer cc ~name ))
            focus
        in
        { country = cc; old_score; new_score; delta = new_score -. old_score; jaccard;
          top_entity_delta })
      common
  in
  let olds = Array.of_list (List.map (fun d -> d.old_score) deltas) in
  let news = Array.of_list (List.map (fun d -> d.new_score) deltas) in
  let rho = Webdep_stats.Correlation.pearson olds news in
  let mean_jaccard =
    Webdep_stats.Descriptive.mean
      (Array.of_list (List.map (fun d -> d.jaccard) deltas))
  in
  let focus_mean_delta =
    match focus with
    | None -> None
    | Some _ ->
        Some
          (Webdep_stats.Descriptive.mean
             (Array.of_list
                (List.filter_map (fun d -> Option.map snd d.top_entity_delta) deltas)))
  in
  let deltas =
    List.sort (fun a b -> Stdlib.compare (Float.abs b.delta) (Float.abs a.delta)) deltas
  in
  { deltas; rho; mean_jaccard; focus_mean_delta }

let largest_increase cmp =
  List.fold_left
    (fun best d -> if d.delta > best.delta then d else best)
    (List.hd cmp.deltas) cmp.deltas

let largest_decrease cmp =
  List.fold_left
    (fun best d -> if d.delta < best.delta then d else best)
    (List.hd cmp.deltas) cmp.deltas
