let escape_field s =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if not needs_quoting then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let row fields = String.concat "," (List.map escape_field fields) ^ "\n"

let scores_csv ds layer =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (row [ "rank"; "country"; "score" ]);
  List.iteri
    (fun i (cc, s) ->
      Buffer.add_string buf (row [ string_of_int (i + 1); cc; Printf.sprintf "%.6f" s ]))
    (Metrics.all_scores ds layer);
  Buffer.contents buf

let insularity_csv ds layer =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (row [ "rank"; "country"; "insularity" ]);
  List.iteri
    (fun i (cc, v) ->
      Buffer.add_string buf (row [ string_of_int (i + 1); cc; Printf.sprintf "%.6f" v ]))
    (Regionalization.all_insularity ds layer);
  Buffer.contents buf

let distribution_csv ds layer cc =
  let counts = Dataset.counts_by_entity ds layer cc in
  let total = float_of_int (List.fold_left (fun acc (_, k) -> acc + k) 0 counts) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (row [ "rank"; "provider"; "home"; "sites"; "share" ]);
  List.iteri
    (fun i ((e : Dataset.entity), k) ->
      Buffer.add_string buf
        (row
           [ string_of_int (i + 1); e.Dataset.name; e.Dataset.country; string_of_int k;
             Printf.sprintf "%.6f" (float_of_int k /. total) ]))
    counts;
  Buffer.contents buf

let usage_csv ds layer =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf
    (row [ "provider"; "home"; "usage"; "endemicity"; "endemicity_ratio"; "peak" ]);
  List.iter
    (fun (u : Regionalization.usage_stats) ->
      let peak = if Array.length u.curve = 0 then 0.0 else u.curve.(0) in
      Buffer.add_string buf
        (row
           [ u.entity.Dataset.name; u.entity.Dataset.country;
             Printf.sprintf "%.4f" u.usage; Printf.sprintf "%.4f" u.endemicity;
             Printf.sprintf "%.6f" u.endemicity_ratio; Printf.sprintf "%.4f" peak ]))
    (Regionalization.all_usage ds layer);
  Buffer.contents buf

(* A tiny CSV line parser sufficient for our own dialect. *)
let parse_line line =
  let fields = ref [] and buf = Buffer.create 32 in
  let in_quotes = ref false in
  let n = String.length line in
  let i = ref 0 in
  while !i < n do
    let c = line.[!i] in
    if !in_quotes then begin
      if c = '"' then
        if !i + 1 < n && line.[!i + 1] = '"' then begin
          Buffer.add_char buf '"';
          incr i
        end
        else in_quotes := false
      else Buffer.add_char buf c
    end
    else if c = '"' then in_quotes := true
    else if c = ',' then begin
      fields := Buffer.contents buf :: !fields;
      Buffer.clear buf
    end
    else Buffer.add_char buf c;
    incr i
  done;
  fields := Buffer.contents buf :: !fields;
  List.rev !fields

let scores_of_csv doc =
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' doc)
  in
  match lines with
  | [] -> invalid_arg "Export.scores_of_csv: empty document"
  | header :: rows ->
      (match parse_line header with
      | [ "rank"; "country"; "score" ] -> ()
      | _ -> invalid_arg "Export.scores_of_csv: unexpected header");
      List.map
        (fun line ->
          match parse_line line with
          | [ _rank; cc; s ] -> (
              match float_of_string_opt s with
              | Some v -> (cc, v)
              | None -> invalid_arg ("Export.scores_of_csv: bad score " ^ s))
          | _ -> invalid_arg ("Export.scores_of_csv: bad row " ^ line))
        rows

let write_file path doc =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc doc)
