(** Cross-country distribution-shape similarity.

    The paper's maps (Figures 5, 9, 10) show countries clustering
    regionally.  This module quantifies that: pairwise distances between
    countries' provider distributions (the rank-aligned L1 of
    {!Webdep_emd.Extensions.sorted_share_l1} — 0 means identical shape),
    nearest neighbours, and a subregional-coherence statistic comparing
    within-subregion to cross-subregion distances. *)

val distance : Dataset.t -> Dataset.layer -> string -> string -> float
(** Shape distance between two countries' distributions, in [0, 1). *)

val nearest_neighbours :
  Dataset.t -> Dataset.layer -> ?k:int -> string -> (string * float) list
(** The [k] (default 5) countries whose distributions are closest in
    shape, ascending distance. *)

type coherence = {
  within : float;  (** mean distance between same-subregion pairs *)
  across : float;  (** mean distance between cross-subregion pairs *)
  ratio : float;  (** within / across; < 1 means regional coherence *)
}

val subregional_coherence : Dataset.t -> Dataset.layer -> coherence
(** Do countries resemble their subregion more than the rest of the
    world?  The paper's maps say yes for hosting; this makes it a
    number. *)
