type usage_stats = {
  entity : Dataset.entity;
  curve : float array;
  usage : float;
  endemicity : float;
  endemicity_ratio : float;
}

let stats_of_curve entity values =
  let curve = Array.copy values in
  Array.sort (fun a b -> compare b a) curve;
  let usage = Array.fold_left ( +. ) 0.0 curve in
  let peak = if Array.length curve = 0 then 0.0 else curve.(0) in
  let endemicity = Array.fold_left (fun acc u -> acc +. (peak -. u)) 0.0 curve in
  let endemicity_ratio =
    if usage +. endemicity = 0.0 then 0.0 else endemicity /. (usage +. endemicity)
  in
  { entity; curve; usage; endemicity; endemicity_ratio }

(* Per-provider usage in every country, computed in one pass. *)
let usage_table ds layer =
  let countries = Dataset.countries ds in
  let n = List.length countries in
  let index = Hashtbl.create n in
  List.iteri (fun i cc -> Hashtbl.replace index cc i) countries;
  let per_provider : (string, Dataset.entity * float array) Hashtbl.t = Hashtbl.create 4096 in
  List.iter
    (fun cc ->
      let i = Hashtbl.find index cc in
      let total = float_of_int (Dataset.site_count ds cc) in
      let counts = Dataset.counts_by_entity ds layer cc in
      List.iter
        (fun ((e : Dataset.entity), k) ->
          let _, curve =
            match Hashtbl.find_opt per_provider e.Dataset.name with
            | Some pair -> pair
            | None ->
                let pair = (e, Array.make n 0.0) in
                Hashtbl.replace per_provider e.Dataset.name pair;
                pair
          in
          curve.(i) <- 100.0 *. float_of_int k /. total)
        counts)
    countries;
  per_provider

let usage_curve ds layer ~name =
  let table = usage_table ds layer in
  match Hashtbl.find_opt table name with
  | None -> raise Not_found
  | Some (entity, values) -> stats_of_curve entity values

let all_usage ds layer =
  let table = usage_table ds layer in
  Hashtbl.fold (fun _ (entity, values) acc -> stats_of_curve entity values :: acc) table []
  |> List.sort (fun a b -> compare b.usage a.usage)

(* Straight off the dataset's int arrays: the numerator is the count of
   sites whose layer label is homed in the country itself. *)
let insularity ds layer cc =
  let total = Dataset.site_count ds cc in
  if total = 0 then 0.0
  else float_of_int (Dataset.home_label_count ds layer cc) /. float_of_int total

let all_insularity ds layer =
  Dataset.countries ds
  |> List.map (fun cc -> (cc, insularity ds layer cc))
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let foreign_dependence ds layer cc =
  let counts = Dataset.counts_by_entity ds layer cc in
  let total = List.fold_left (fun acc (_, k) -> acc + k) 0 counts in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun ((e : Dataset.entity), k) ->
      Hashtbl.replace tbl e.Dataset.country
        (k + Option.value ~default:0 (Hashtbl.find_opt tbl e.Dataset.country)))
    counts;
  Hashtbl.fold (fun home k acc -> (home, float_of_int k /. float_of_int total) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let dependence_matrix ds layer =
  let module Region = Webdep_geo.Region in
  let module Country = Webdep_geo.Country in
  let continent_of_code code =
    match Country.of_code code with Some c -> Some (Country.continent c) | None -> None
  in
  List.map
    (fun continent ->
      let members =
        List.filter
          (fun cc -> continent_of_code cc = Some continent)
          (Dataset.countries ds)
      in
      let sums = Hashtbl.create 8 in
      List.iter
        (fun cc ->
          List.iter
            (fun (home, share) ->
              match continent_of_code home with
              | None -> ()
              | Some target ->
                  Hashtbl.replace sums target
                    (share +. Option.value ~default:0.0 (Hashtbl.find_opt sums target)))
            (foreign_dependence ds layer cc))
        members;
      let n = Float.max 1.0 (float_of_int (List.length members)) in
      let row =
        List.map
          (fun target ->
            (target, Option.value ~default:0.0 (Hashtbl.find_opt sums target) /. n))
          Region.all_continents
      in
      (continent, row))
    Region.all_continents
