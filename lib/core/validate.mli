(** Vantage-point validation (§3.4): compare per-country centralization
    computed from the home vantage against scores recomputed from
    distributed probes, as the paper does with RIPE Atlas.  A strong
    correlation (the paper reports ρ = 0.96) indicates vantage choice
    does not drive the results. *)

type result = {
  rho : Webdep_stats.Correlation.result;
  pairs : (string * float * float) list;  (** country, home 𝒮, probe 𝒮 *)
  max_gap : float;  (** largest |home − probe| *)
}

val correlate : home:(string * float) list -> probes:(string * float) list -> result
(** Join the two score lists on country and correlate.
    @raise Invalid_argument if fewer than 3 countries are shared. *)
