(** Data release — CSV serialization of the analysis outputs, mirroring
    the paper's published dataset (scores, insularity, per-country
    provider distributions, provider usage statistics).

    The CSV dialect is minimal: comma separator, fields containing
    commas/quotes/newlines are double-quoted with quote doubling, one
    header row.  {!scores_of_csv} round-trips {!scores_csv}. *)

val scores_csv : Dataset.t -> Dataset.layer -> string
(** "rank,country,score" rows, descending score. *)

val insularity_csv : Dataset.t -> Dataset.layer -> string
(** "rank,country,insularity" rows. *)

val distribution_csv : Dataset.t -> Dataset.layer -> string -> string
(** "rank,provider,home,sites,share" rows for one country. *)

val usage_csv : Dataset.t -> Dataset.layer -> string
(** "provider,home,usage,endemicity,endemicity_ratio,peak" rows,
    descending usage. *)

val scores_of_csv : string -> (string * float) list
(** Parse a {!scores_csv} document back into (country, score) pairs.
    @raise Invalid_argument on malformed input. *)

val write_file : string -> string -> unit
(** Write a document to a path. *)

val escape_field : string -> string
(** CSV field quoting (exposed for tests). *)
