(** Markdown report generation — a paper-style writeup of a measured
    dataset: overview, per-layer centralization and insularity rankings,
    provider classes, and cross-border dependence case studies. *)

type options = {
  top_rows : int;  (** rows in ranking tables (default 10) *)
  case_studies : (string * string) list;
      (** (dependent country, partner country) pairs to narrate *)
  include_classes : bool;  (** classification is the slow part *)
}

val default_options : options

val generate : ?options:options -> Dataset.t -> string
(** A complete Markdown document for the dataset. *)

val layer_section : Dataset.t -> Dataset.layer -> top_rows:int -> string
(** One layer's section (exposed for tests and incremental use). *)
