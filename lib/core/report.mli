(** Aggregated views backing the paper's figures: per-subregion and
    per-continent means (Figures 9/10), per-layer score histograms
    (Figure 12), insularity CDFs (Figure 11), and named-rank listings
    (Figures 5/17–22). *)

type ranked = { rank : int; country : string; value : float }

val ranked_scores : Dataset.t -> Dataset.layer -> ranked list
(** Countries by descending 𝒮 with 1-based ranks. *)

val ranked_insularity : Dataset.t -> Dataset.layer -> ranked list

val subregion_means :
  Dataset.t -> Dataset.layer -> (string -> float) -> (Webdep_geo.Region.subregion * float) list
(** Mean of a per-country statistic over each subregion's dataset
    countries, descending. *)

val continent_means :
  Dataset.t -> Dataset.layer -> (string -> float) -> (Webdep_geo.Region.continent * float) list

type spread = { mean : float; min : float; q1 : float; median : float; q3 : float; max : float }

val subregion_spread :
  Dataset.t -> Dataset.layer -> (string -> float) -> (Webdep_geo.Region.subregion * spread) list
(** Figures 9/10 show per-subregion {e distributions}, not just means:
    quartile summaries of a per-country statistic over each subregion
    (subregions with no dataset country are dropped), by descending
    mean. *)

val score_histogram : Dataset.t -> Dataset.layer -> ?bins:int -> unit -> Webdep_stats.Histogram.t
(** Figure 12: per-layer histogram of country scores over [0, 0.6]. *)

val insularity_cdf : Dataset.t -> Dataset.layer -> (float * float) array
(** Figure 11: empirical CDF of per-country insularity. *)

val layer_mean : Dataset.t -> Dataset.layer -> float
(** 𝒮̄ over countries. *)

val layer_variance : Dataset.t -> Dataset.layer -> float
(** Population variance of 𝒮 over countries. *)
