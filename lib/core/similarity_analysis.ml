let distance ds layer a b =
  Webdep_emd.Extensions.sorted_share_l1
    (Dataset.distribution ds layer a)
    (Dataset.distribution ds layer b)

let nearest_neighbours ds layer ?(k = 5) cc =
  Dataset.countries ds
  |> List.filter (fun other -> other <> cc)
  |> List.map (fun other -> (other, distance ds layer cc other))
  |> List.sort (fun (_, x) (_, y) -> compare x y)
  |> List.filteri (fun i _ -> i < k)

type coherence = { within : float; across : float; ratio : float }

let subregional_coherence ds layer =
  let countries = Dataset.countries ds in
  (* Precompute sorted share vectors once. *)
  let shares =
    List.filter_map
      (fun cc ->
        match Dataset.distribution ds layer cc with
        | d -> Some (cc, d)
        | exception Not_found -> None)
      countries
  in
  let subregion cc =
    match Webdep_geo.Country.of_code cc with
    | Some c -> Some c.Webdep_geo.Country.subregion
    | None -> None
  in
  let arr = Array.of_list shares in
  let n = Array.length arr in
  if n < 2 then invalid_arg "Similarity_analysis.subregional_coherence: too few countries";
  let within_sum = ref 0.0 and within_n = ref 0 in
  let across_sum = ref 0.0 and across_n = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let ca, da = arr.(i) and cb, db = arr.(j) in
      let dist = Webdep_emd.Extensions.sorted_share_l1 da db in
      match (subregion ca, subregion cb) with
      | Some sa, Some sb when sa = sb ->
          within_sum := !within_sum +. dist;
          incr within_n
      | Some _, Some _ ->
          across_sum := !across_sum +. dist;
          incr across_n
      | _ -> ()
    done
  done;
  if !within_n = 0 || !across_n = 0 then
    invalid_arg "Similarity_analysis.subregional_coherence: degenerate grouping";
  let within = !within_sum /. float_of_int !within_n in
  let across = !across_sum /. float_of_int !across_n in
  { within; across; ratio = within /. across }
