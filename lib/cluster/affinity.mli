(** Affinity propagation clustering (Frey & Dueck, Science 2007).

    The paper clusters providers on min–max-scaled (usage, endemicity
    ratio) pairs with affinity propagation, then manually coalesces the
    resulting ~305 clusters into 8 named classes (§5.2, Table 1).  This
    module implements the message-passing algorithm: responsibilities
    r(i,k) and availabilities a(i,k) exchanged between points until the
    exemplar set stabilizes. *)

type result = {
  exemplars : int list;  (** indices chosen as cluster exemplars *)
  assignment : int array;  (** [assignment.(i)] = exemplar index of point i *)
  iterations : int;  (** iterations executed *)
  converged : bool;  (** exemplar set stable for [convergence_iter] rounds *)
}

val negative_sq_euclidean : float array -> float array -> float
(** The conventional similarity: −‖x − y‖². *)

val run :
  ?damping:float ->
  ?max_iter:int ->
  ?convergence_iter:int ->
  ?preference:float ->
  similarity:(int -> int -> float) ->
  int ->
  result
(** [run ~similarity n] clusters points [0..n-1].

    @param damping message damping λ in [0.5, 1), default 0.7
    @param max_iter default 300
    @param convergence_iter rounds of stable exemplars to declare
           convergence, default 20
    @param preference self-similarity s(k,k); default the median of the
           off-diagonal similarities (the standard choice yielding a
           moderate number of clusters)
    @raise Invalid_argument if [n <= 0] or damping outside [0.5, 1). *)

val cluster_points :
  ?damping:float ->
  ?max_iter:int ->
  ?convergence_iter:int ->
  ?preference:float ->
  float array array ->
  result
(** {!run} on row vectors with {!negative_sq_euclidean} similarity. *)

val cluster_sizes : result -> (int * int) list
(** [(exemplar, member count)] per cluster, largest first. *)
