let euclidean x y =
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    let d = x.(i) -. y.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let score points assignment =
  let n = Array.length points in
  if n <> Array.length assignment then invalid_arg "Silhouette.score: length mismatch";
  let clusters = List.sort_uniq compare (Array.to_list assignment) in
  if List.length clusters < 2 then invalid_arg "Silhouette.score: need at least 2 clusters";
  let members c =
    List.filter (fun i -> assignment.(i) = c) (List.init n Fun.id)
  in
  let by_cluster = List.map (fun c -> (c, members c)) clusters in
  let mean_dist i js =
    let js = List.filter (fun j -> j <> i) js in
    match js with
    | [] -> 0.0
    | _ ->
        List.fold_left (fun acc j -> acc +. euclidean points.(i) points.(j)) 0.0 js
        /. float_of_int (List.length js)
  in
  let point_score i =
    let own = assignment.(i) in
    let own_members = List.assoc own by_cluster in
    if List.length own_members <= 1 then 0.0
    else begin
      let a = mean_dist i own_members in
      let b =
        List.fold_left
          (fun best (c, ms) -> if c = own then best else Float.min best (mean_dist i ms))
          infinity by_cluster
      in
      if Float.max a b = 0.0 then 0.0 else (b -. a) /. Float.max a b
    end
  in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    total := !total +. point_score i
  done;
  !total /. float_of_int n
