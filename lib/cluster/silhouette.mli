(** Silhouette coefficient for judging clustering quality — used by the
    ablation bench to compare affinity propagation against k-means on the
    provider-classification task. *)

val score : float array array -> int array -> float
(** [score points assignment] is the mean silhouette over all points:
    (b − a) / max(a, b), where [a] is the mean intra-cluster distance and
    [b] the smallest mean distance to another cluster.  Points in
    singleton clusters contribute 0, per convention.
    @raise Invalid_argument on length mismatch or fewer than 2 clusters. *)
