type result = {
  centroids : float array array;
  assignment : int array;
  inertia : float;
  iterations : int;
}

let sq_dist x y =
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    let d = x.(i) -. y.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc

(* k-means++: first centroid uniform, then proportional to squared distance
   from the nearest chosen centroid. *)
let seed rng ~k points =
  let n = Array.length points in
  let centroids = Array.make k points.(0) in
  centroids.(0) <- points.(Webdep_stats.Rng.int rng n);
  let d2 = Array.map (fun p -> sq_dist p centroids.(0)) points in
  for c = 1 to k - 1 do
    let sampler = Webdep_stats.Sample.categorical (Array.map (fun d -> d +. 1e-12) d2) in
    let pick = Webdep_stats.Sample.draw sampler rng in
    centroids.(c) <- points.(pick);
    Array.iteri (fun i p -> d2.(i) <- Float.min d2.(i) (sq_dist p centroids.(c))) points
  done;
  Array.map Array.copy centroids

let run rng ~k ?(max_iter = 100) points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Kmeans.run: no points";
  if k <= 0 || k > n then invalid_arg "Kmeans.run: k outside [1, n]";
  let dim = Array.length points.(0) in
  Array.iter (fun p -> if Array.length p <> dim then invalid_arg "Kmeans.run: ragged matrix") points;
  let centroids = seed rng ~k points in
  let assignment = Array.make n 0 in
  let assign () =
    let moved = ref false in
    Array.iteri
      (fun i p ->
        let best = ref 0 and best_d = ref (sq_dist p centroids.(0)) in
        for c = 1 to k - 1 do
          let d = sq_dist p centroids.(c) in
          if d < !best_d then begin
            best_d := d;
            best := c
          end
        done;
        if assignment.(i) <> !best then moved := true;
        assignment.(i) <- !best)
      points;
    !moved
  in
  let recenter () =
    let sums = Array.make_matrix k dim 0.0 and counts = Array.make k 0 in
    Array.iteri
      (fun i p ->
        let c = assignment.(i) in
        counts.(c) <- counts.(c) + 1;
        for d = 0 to dim - 1 do
          sums.(c).(d) <- sums.(c).(d) +. p.(d)
        done)
      points;
    for c = 0 to k - 1 do
      if counts.(c) > 0 then
        centroids.(c) <- Array.map (fun s -> s /. float_of_int counts.(c)) sums.(c)
      (* An emptied cluster keeps its previous centroid. *)
    done
  in
  let iterations = ref 0 in
  let moved = ref (assign ()) in
  ignore !moved;
  moved := true;
  while !moved && !iterations < max_iter do
    incr iterations;
    recenter ();
    moved := assign ()
  done;
  let inertia =
    Array.to_list points
    |> List.mapi (fun i p -> sq_dist p centroids.(assignment.(i)))
    |> List.fold_left ( +. ) 0.0
  in
  { centroids; assignment; inertia; iterations = !iterations }
