(** Lloyd's k-means with k-means++ seeding — the baseline clustering method
    the ablation bench compares against affinity propagation. *)

type result = {
  centroids : float array array;
  assignment : int array;
  inertia : float;  (** sum of squared distances to assigned centroid *)
  iterations : int;
}

val run : Webdep_stats.Rng.t -> k:int -> ?max_iter:int -> float array array -> result
(** [run rng ~k points] clusters row vectors into [k] clusters.
    @raise Invalid_argument if [k <= 0] or [k] exceeds the number of
    points, or the matrix is empty/ragged. *)
