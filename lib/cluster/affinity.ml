type result = {
  exemplars : int list;
  assignment : int array;
  iterations : int;
  converged : bool;
}

let negative_sq_euclidean x y =
  let n = Array.length x in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let d = x.(i) -. y.(i) in
    acc := !acc -. (d *. d)
  done;
  !acc

module Descriptive = Webdep_stats.Descriptive

let median_off_diagonal similarity n =
  let values = ref [] in
  for i = 0 to n - 1 do
    for k = 0 to n - 1 do
      if i <> k then values := similarity i k :: !values
    done
  done;
  match !values with
  | [] -> 0.0
  | vs -> Descriptive.median (Array.of_list vs)

let run ?(damping = 0.7) ?(max_iter = 300) ?(convergence_iter = 20) ?preference ~similarity n =
  if n <= 0 then invalid_arg "Affinity.run: n must be positive";
  if damping < 0.5 || damping >= 1.0 then invalid_arg "Affinity.run: damping outside [0.5, 1)";
  let pref =
    match preference with Some p -> p | None -> median_off_diagonal similarity n
  in
  (* Similarity matrix with preferences on the diagonal; tiny deterministic
     jitter breaks ties exactly as scikit-learn does (scaled by index). *)
  let s = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    for k = 0 to n - 1 do
      let base = if i = k then pref else similarity i k in
      s.(i).(k) <- base +. (1e-12 *. float_of_int (((i * 31) + k) mod 97))
    done
  done;
  let r = Array.make_matrix n n 0.0 in
  let a = Array.make_matrix n n 0.0 in
  let exemplar_of = Array.make n (-1) in
  let stable = ref 0 and iter = ref 0 and converged = ref false in
  while !iter < max_iter && not !converged do
    incr iter;
    (* Responsibilities: r(i,k) <- s(i,k) - max_{k'≠k} (a(i,k') + s(i,k')). *)
    for i = 0 to n - 1 do
      (* Track best and second-best of a+s over k to get max excluding k. *)
      let best = ref neg_infinity and second = ref neg_infinity and best_k = ref (-1) in
      for k = 0 to n - 1 do
        let v = a.(i).(k) +. s.(i).(k) in
        if v > !best then begin
          second := !best;
          best := v;
          best_k := k
        end
        else if v > !second then second := v
      done;
      for k = 0 to n - 1 do
        let max_other = if k = !best_k then !second else !best in
        let fresh = s.(i).(k) -. max_other in
        r.(i).(k) <- (damping *. r.(i).(k)) +. ((1.0 -. damping) *. fresh)
      done
    done;
    (* Availabilities:
       a(i,k) <- min(0, r(k,k) + Σ_{i'∉{i,k}} max(0, r(i',k)))   for i≠k
       a(k,k) <- Σ_{i'≠k} max(0, r(i',k)). *)
    for k = 0 to n - 1 do
      let pos_sum = ref 0.0 in
      for i' = 0 to n - 1 do
        if i' <> k then pos_sum := !pos_sum +. Float.max 0.0 r.(i').(k)
      done;
      for i = 0 to n - 1 do
        let fresh =
          if i = k then !pos_sum
          else
            let without_i = !pos_sum -. Float.max 0.0 r.(i).(k) in
            Float.min 0.0 (r.(k).(k) +. without_i)
        in
        a.(i).(k) <- (damping *. a.(i).(k)) +. ((1.0 -. damping) *. fresh)
      done
    done;
    (* Current exemplar choice per point. *)
    let changed = ref false in
    for i = 0 to n - 1 do
      let best = ref neg_infinity and best_k = ref 0 in
      for k = 0 to n - 1 do
        let v = a.(i).(k) +. r.(i).(k) in
        if v > !best then begin
          best := v;
          best_k := k
        end
      done;
      if exemplar_of.(i) <> !best_k then changed := true;
      exemplar_of.(i) <- !best_k
    done;
    if !changed then stable := 0
    else begin
      incr stable;
      if !stable >= convergence_iter then converged := true
    end
  done;
  (* Final assignment: exemplars are the self-chosen points; every other
     point joins its most similar exemplar. *)
  let is_exemplar = Array.init n (fun i -> exemplar_of.(i) = i) in
  let exemplars =
    List.filter (fun i -> is_exemplar.(i)) (List.init n Fun.id)
  in
  let exemplars = if exemplars = [] then [ 0 ] else exemplars in
  let assignment =
    Array.init n (fun i ->
        if is_exemplar.(i) then i
        else
          List.fold_left
            (fun best k -> if s.(i).(k) > s.(i).(best) then k else best)
            (List.hd exemplars) exemplars)
  in
  { exemplars; assignment; iterations = !iter; converged = !converged }

let cluster_points ?damping ?max_iter ?convergence_iter ?preference points =
  let n = Array.length points in
  let similarity i k = negative_sq_euclidean points.(i) points.(k) in
  run ?damping ?max_iter ?convergence_iter ?preference ~similarity n

let cluster_sizes result =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun e -> Hashtbl.replace tbl e (1 + Option.value ~default:0 (Hashtbl.find_opt tbl e)))
    result.assignment;
  Hashtbl.fold (fun e c acc -> (e, c) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
