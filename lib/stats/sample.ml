let zipf_weights ~s n =
  if n <= 0 then invalid_arg "Sample.zipf_weights: n must be positive";
  Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s)

let zipf_probabilities ~s n =
  let w = zipf_weights ~s n in
  let total = Array.fold_left ( +. ) 0.0 w in
  Array.map (fun x -> x /. total) w

type categorical = { cumulative : float array }

let categorical weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Sample.categorical: empty weights";
  let cumulative = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    if weights.(i) < 0.0 then invalid_arg "Sample.categorical: negative weight";
    acc := !acc +. weights.(i);
    cumulative.(i) <- !acc
  done;
  if !acc <= 0.0 then invalid_arg "Sample.categorical: all weights zero";
  { cumulative }

let categorical_n t = Array.length t.cumulative

(* Smallest index whose cumulative weight exceeds [u]. *)
let search cumulative u =
  let n = Array.length cumulative in
  let rec loop lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cumulative.(mid) > u then loop lo mid else loop (mid + 1) hi
  in
  loop 0 (n - 1)

let draw t rng =
  let total = t.cumulative.(Array.length t.cumulative - 1) in
  search t.cumulative (Rng.float rng total)

let zipf rng ~s n =
  let sampler = categorical (zipf_weights ~s n) in
  draw sampler rng

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose rng a =
  if Array.length a = 0 then invalid_arg "Sample.choose: empty array";
  a.(Rng.int rng (Array.length a))

let multinomial rng ~trials probs =
  let sampler = categorical probs in
  let counts = Array.make (Array.length probs) 0 in
  for _ = 1 to trials do
    let i = draw sampler rng in
    counts.(i) <- counts.(i) + 1
  done;
  counts

let normal rng ~mean ~stddev =
  if stddev < 0.0 then invalid_arg "Sample.normal: negative stddev";
  (* Box–Muller; avoid log 0 by nudging u1 away from zero. *)
  let u1 = Float.max 1e-12 (Rng.float rng 1.0) in
  let u2 = Rng.float rng 1.0 in
  mean +. (stddev *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let log_normal rng ~mu ~sigma = exp (normal rng ~mean:mu ~stddev:sigma)

let round_shares ~total shares =
  let n = Array.length shares in
  if n = 0 then [||]
  else begin
    let sum = Array.fold_left ( +. ) 0.0 shares in
    if sum <= 0.0 then Array.make n 0 |> fun a -> (a.(0) <- total; a)
    else begin
      let exact = Array.map (fun s -> float_of_int total *. s /. sum) shares in
      let floors = Array.map (fun x -> int_of_float (Float.floor x)) exact in
      let assigned = Array.fold_left ( + ) 0 floors in
      let remainder = total - assigned in
      (* Hand the leftover units to the largest fractional parts; ties break
         toward lower index for determinism. *)
      let order = Array.init n (fun i -> i) in
      Array.sort
        (fun i j ->
          let fi = exact.(i) -. Float.of_int floors.(i)
          and fj = exact.(j) -. Float.of_int floors.(j) in
          match compare fj fi with 0 -> compare i j | c -> c)
        order;
      for k = 0 to remainder - 1 do
        let i = order.(k mod n) in
        floors.(i) <- floors.(i) + 1
      done;
      floors
    end
  end
