(** Deterministic, splittable pseudo-random number generator.

    All randomness in the toolkit flows through this module so that every
    experiment is exactly reproducible from a single integer seed.  The
    generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a 64-bit
    state advanced by a Weyl sequence and finalized with a variant of the
    MurmurHash3 mixer.  It is fast, passes BigCrush, and — crucially for a
    simulator built from many independent subsystems — supports {e splitting}
    into statistically independent child generators. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator deterministically derived from
    [seed].  Equal seeds yield equal streams. *)

val split : t -> t
(** [split t] advances [t] and returns a child generator whose stream is
    independent of the parent's subsequent output.  Used to give each
    country / provider / subsystem its own stream so that adding draws in
    one subsystem does not perturb another. *)

val split_named : t -> string -> t
(** [split_named t name] derives a child generator keyed by [name]: the
    same parent seed and name always yield the same child stream,
    independent of call order.  Preferred over {!split} when the set of
    children is keyed (per-country, per-provider). *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).  @raise Invalid_argument
    if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool
(** Fair coin. *)
