(** Descriptive statistics over float arrays.

    All functions raise [Invalid_argument] on empty input unless noted. *)

val sum : float array -> float
val mean : float array -> float

val variance : float array -> float
(** Population variance (divide by [n]); the paper reports population
    variance for per-layer score spread (e.g. "var = 0.003"). *)

val sample_variance : float array -> float
(** Unbiased sample variance (divide by [n-1]); requires [n >= 2]. *)

val stddev : float array -> float
val min : float array -> float
val max : float array -> float

val median : float array -> float
(** Median by sorting a copy; average of middle two for even [n]. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [0,100], linear interpolation between
    closest ranks.  @raise Invalid_argument if [p] outside [0,100]. *)

val normalize : float array -> float array
(** Scale so the result sums to 1.  @raise Invalid_argument if the sum is
    not positive. *)
