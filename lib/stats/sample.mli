(** Random sampling from the distributions used by the synthetic world:
    Zipf-like power laws (website popularity, provider tails), categorical
    draws (provider assignment), and shuffles. *)

val zipf_weights : s:float -> int -> float array
(** [zipf_weights ~s n] is the unnormalized Zipf weight vector
    [(1/1^s, 1/2^s, ..., 1/n^s)].  @raise Invalid_argument if [n <= 0]. *)

val zipf_probabilities : s:float -> int -> float array
(** [zipf_probabilities ~s n] is {!zipf_weights} normalized to sum to 1. *)

val zipf : Rng.t -> s:float -> int -> int
(** [zipf rng ~s n] draws a rank in [0, n) with probability proportional to
    [1/(rank+1)^s], by inversion on the cumulative weights.  O(log n). *)

type categorical
(** Precomputed alias-free categorical sampler (cumulative inversion). *)

val categorical : float array -> categorical
(** [categorical weights] builds a sampler over indices [0..n-1] with
    probability proportional to [weights].  Weights must be nonnegative and
    not all zero.  @raise Invalid_argument otherwise. *)

val draw : categorical -> Rng.t -> int
(** Draw an index.  O(log n). *)

val categorical_n : categorical -> int
(** Number of categories. *)

val shuffle : Rng.t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : Rng.t -> 'a array -> 'a
(** Uniform draw from a nonempty array.  @raise Invalid_argument on [||]. *)

val multinomial : Rng.t -> trials:int -> float array -> int array
(** [multinomial rng ~trials probs] distributes [trials] draws over the
    categories of [probs]; result sums to [trials]. *)

val normal : Rng.t -> mean:float -> stddev:float -> float
(** Gaussian draw via the Box–Muller transform.
    @raise Invalid_argument if [stddev < 0]. *)

val log_normal : Rng.t -> mu:float -> sigma:float -> float
(** [exp (normal ~mean:mu ~stddev:sigma)] — the heavy-tailed size
    distribution used for per-country web volumes. *)

val round_shares : total:int -> float array -> int array
(** [round_shares ~total shares] deterministically apportions [total] units
    across categories proportional to [shares] (largest-remainder method);
    result sums to [total].  Used when an exact, noise-free split is needed
    (e.g. calibrated provider counts). *)
