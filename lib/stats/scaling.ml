let min_max xs =
  if Array.length xs = 0 then invalid_arg "Scaling.min_max: empty input";
  let lo = Descriptive.min xs and hi = Descriptive.max xs in
  if hi = lo then Array.map (fun _ -> 0.0) xs
  else Array.map (fun x -> (x -. lo) /. (hi -. lo)) xs

let min_max_columns rows =
  let n = Array.length rows in
  if n = 0 then invalid_arg "Scaling.min_max_columns: no rows";
  let cols = Array.length rows.(0) in
  Array.iter
    (fun r -> if Array.length r <> cols then invalid_arg "Scaling.min_max_columns: ragged matrix")
    rows;
  let out = Array.map Array.copy rows in
  for c = 0 to cols - 1 do
    let col = Array.init n (fun r -> rows.(r).(c)) in
    let scaled = min_max col in
    for r = 0 to n - 1 do
      out.(r).(c) <- scaled.(r)
    done
  done;
  out

let z_score xs =
  let m = Descriptive.mean xs and sd = Descriptive.stddev xs in
  if sd = 0.0 then Array.map (fun _ -> 0.0) xs
  else Array.map (fun x -> (x -. m) /. sd) xs
