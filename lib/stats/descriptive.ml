let check name xs = if Array.length xs = 0 then invalid_arg ("Descriptive." ^ name ^ ": empty input")

let sum xs = Array.fold_left ( +. ) 0.0 xs

let mean xs =
  check "mean" xs;
  sum xs /. float_of_int (Array.length xs)

let variance xs =
  check "variance" xs;
  let m = mean xs in
  Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
  /. float_of_int (Array.length xs)

let sample_variance xs =
  if Array.length xs < 2 then invalid_arg "Descriptive.sample_variance: need n >= 2";
  let m = mean xs in
  Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
  /. float_of_int (Array.length xs - 1)

let stddev xs = sqrt (variance xs)

let min xs =
  check "min" xs;
  Array.fold_left Float.min xs.(0) xs

let max xs =
  check "max" xs;
  Array.fold_left Float.max xs.(0) xs

let sorted_copy xs =
  let c = Array.copy xs in
  Array.sort compare c;
  c

let median xs =
  check "median" xs;
  let c = sorted_copy xs in
  let n = Array.length c in
  if n mod 2 = 1 then c.(n / 2) else (c.((n / 2) - 1) +. c.(n / 2)) /. 2.0

let percentile xs p =
  check "percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Descriptive.percentile: p outside [0,100]";
  let c = sorted_copy xs in
  let n = Array.length c in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then c.(lo)
  else
    let w = rank -. float_of_int lo in
    ((1.0 -. w) *. c.(lo)) +. (w *. c.(hi))

let normalize xs =
  let total = sum xs in
  if total <= 0.0 then invalid_arg "Descriptive.normalize: sum not positive";
  Array.map (fun x -> x /. total) xs
