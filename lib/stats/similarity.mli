(** Set similarity.  The paper uses the Jaccard index to quantify toplist
    churn between the May 2023 and May 2025 measurements (§5.4). *)

val jaccard : ('a -> string) -> 'a list -> 'a list -> float
(** [jaccard key xs ys] is |X ∩ Y| / |X ∪ Y| where X, Y are the key sets of
    the two lists.  Returns 1.0 when both are empty (identical sets). *)

val jaccard_strings : string list -> string list -> float
(** {!jaccard} specialized to string lists. *)

val overlap : string list -> string list -> int
(** Size of the intersection of the two key sets. *)
