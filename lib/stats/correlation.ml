type result = { rho : float; p_value : float; n : int }

let check xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Correlation: length mismatch";
  if n < 3 then invalid_arg "Correlation: need at least 3 observations";
  n

let pearson xs ys =
  let n = check xs ys in
  let nf = float_of_int n in
  let mx = Descriptive.mean xs and my = Descriptive.mean ys in
  let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx = 0.0 || !syy = 0.0 then invalid_arg "Correlation.pearson: constant input";
  let rho = !sxy /. sqrt (!sxx *. !syy) in
  (* Clamp against floating point drift before the t transform. *)
  let rho = Float.max (-1.0) (Float.min 1.0 rho) in
  let p_value =
    if Float.abs rho >= 1.0 then 0.0
    else
      let df = nf -. 2.0 in
      let t = rho *. sqrt (df /. (1.0 -. (rho *. rho))) in
      Special.student_t_sf ~df (Float.abs t)
  in
  { rho; p_value; n }

(* Mid-ranks: ties receive the average of the ranks they span. *)
let ranks xs =
  let n = Array.length xs in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare xs.(i) xs.(j)) order;
  let r = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && xs.(order.(!j + 1)) = xs.(order.(!i)) do incr j done;
    let avg = float_of_int (!i + !j + 2) /. 2.0 in
    for k = !i to !j do
      r.(order.(k)) <- avg
    done;
    i := !j + 1
  done;
  r

let spearman xs ys =
  let _n = check xs ys in
  pearson (ranks xs) (ranks ys)

type strength = Poor | Fair | Moderate | Strong

let strength rho =
  let a = Float.abs rho in
  if a < 0.30 then Poor else if a < 0.60 then Fair else if a < 0.80 then Moderate else Strong

let strength_to_string = function
  | Poor -> "poor"
  | Fair -> "fair"
  | Moderate -> "moderate"
  | Strong -> "strong"

let permutation_p ?(iterations = 1000) rng xs ys =
  let observed = Float.abs (pearson xs ys).rho in
  let shuffled = Array.copy ys in
  let hits = ref 0 in
  for _ = 1 to iterations do
    Sample.shuffle rng shuffled;
    match pearson xs shuffled with
    | r -> if Float.abs r.rho >= observed -. 1e-12 then incr hits
    | exception Invalid_argument _ -> () (* constant after shuffle: impossible, xs fixed *)
  done;
  (* Add-one smoothing keeps the estimate away from an impossible 0. *)
  float_of_int (!hits + 1) /. float_of_int (iterations + 1)

let normal_quantile confidence =
  (* Two-sided quantiles for the common confidence levels; linear
     interpolation elsewhere (adequate for reporting intervals). *)
  let table = [ (0.80, 1.2816); (0.90, 1.6449); (0.95, 1.9600); (0.99, 2.5758) ] in
  match List.assoc_opt confidence table with
  | Some z -> z
  | None ->
      let rec interp = function
        | (c1, z1) :: ((c2, z2) :: _ as rest) ->
            if confidence <= c1 then z1
            else if confidence < c2 then
              z1 +. ((z2 -. z1) *. (confidence -. c1) /. (c2 -. c1))
            else interp rest
        | [ (_, z) ] -> z
        | [] -> 1.96
      in
      interp table

let fisher_interval ?(confidence = 0.95) r =
  if r.n < 4 then invalid_arg "Correlation.fisher_interval: need n >= 4";
  let rho = Float.max (-0.999999) (Float.min 0.999999 r.rho) in
  let z = 0.5 *. log ((1.0 +. rho) /. (1.0 -. rho)) in
  let se = 1.0 /. sqrt (float_of_int (r.n - 3)) in
  let q = normal_quantile confidence in
  let back z = (exp (2.0 *. z) -. 1.0) /. (exp (2.0 *. z) +. 1.0) in
  (back (z -. (q *. se)), back (z +. (q *. se)))
