(** Correlation coefficients and their significance, as used throughout the
    paper ("ρ = 0.90, p ≪ 0.05").  Interpretation bands follow Akoglu
    (2018), the guideline the paper cites: <0.30 poor, 0.30–0.60 fair,
    0.60–0.80 moderate, >0.80 strong. *)

type result = {
  rho : float;  (** correlation coefficient in [-1, 1] *)
  p_value : float;  (** two-sided p-value under the t approximation *)
  n : int;  (** number of paired observations *)
}

val pearson : float array -> float array -> result
(** Pearson product-moment correlation.  @raise Invalid_argument if the
    arrays differ in length or have fewer than 3 elements, or if either
    input is constant (correlation undefined). *)

val spearman : float array -> float array -> result
(** Spearman rank correlation: Pearson on mid-ranks (average ranks for
    ties). *)

type strength = Poor | Fair | Moderate | Strong

val strength : float -> strength
(** Akoglu interpretation band of |rho|. *)

val strength_to_string : strength -> string

val permutation_p : ?iterations:int -> Rng.t -> float array -> float array -> float
(** Two-sided permutation p-value for the Pearson correlation: shuffle
    [ys] [iterations] times (default 1000) and count permutations whose
    |rho| reaches the observed one.  A distribution-free check on the
    Student-t p-value of {!pearson}.
    @raise Invalid_argument as {!pearson}. *)

val fisher_interval : ?confidence:float -> result -> float * float
(** Confidence interval for rho via the Fisher z-transformation:
    [z = atanh rho], standard error [1/sqrt(n−3)], back-transformed.
    @param confidence default 0.95 (uses the normal quantile; 0.90, 0.95
    and 0.99 are supported exactly, others approximated)
    @raise Invalid_argument if [n < 4]. *)
