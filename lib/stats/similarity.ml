module S = Set.Make (String)

let to_set key xs = List.fold_left (fun acc x -> S.add (key x) acc) S.empty xs

let jaccard key xs ys =
  let a = to_set key xs and b = to_set key ys in
  let union = S.cardinal (S.union a b) in
  if union = 0 then 1.0
  else float_of_int (S.cardinal (S.inter a b)) /. float_of_int union

let jaccard_strings xs ys = jaccard Fun.id xs ys

let overlap xs ys =
  S.cardinal (S.inter (to_set Fun.id xs) (to_set Fun.id ys))
