let resample rng data =
  let n = Array.length data in
  Array.init n (fun _ -> data.(Rng.int rng n))

let replicates ~iterations rng ~statistic data =
  Array.init iterations (fun _ -> statistic (resample rng data))

let percentile_interval ?(iterations = 500) ?(confidence = 0.95) rng ~statistic data =
  if Array.length data = 0 then invalid_arg "Bootstrap.percentile_interval: empty data";
  if iterations < 10 then invalid_arg "Bootstrap.percentile_interval: too few iterations";
  if confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Bootstrap.percentile_interval: confidence outside (0, 1)";
  let reps = replicates ~iterations rng ~statistic data in
  let alpha = (1.0 -. confidence) /. 2.0 in
  ( Descriptive.percentile reps (100.0 *. alpha),
    Descriptive.percentile reps (100.0 *. (1.0 -. alpha)) )

let standard_error ?(iterations = 500) rng ~statistic data =
  if Array.length data = 0 then invalid_arg "Bootstrap.standard_error: empty data";
  Descriptive.stddev (replicates ~iterations rng ~statistic data)
