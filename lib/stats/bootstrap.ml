let resample rng data =
  let n = Array.length data in
  Array.init n (fun _ -> data.(Rng.int rng n))

(* Resamples run in fixed-size shards, each on a named child stream of a
   single advance of the caller's rng.  The shard structure depends only
   on [iterations], so replicate [i] is the same number at any [jobs]
   value (including 1) — parallelism changes scheduling, never draws. *)
let shard_size = 32

let replicates ?jobs ~iterations rng ~statistic data =
  let base = Rng.split rng in
  let nshards = (iterations + shard_size - 1) / shard_size in
  let shards =
    Webdep_par.map_array ?jobs
      (fun s ->
        let srng = Rng.split_named base (Printf.sprintf "bootstrap.shard.%d" s) in
        let lo = s * shard_size in
        let len = min iterations (lo + shard_size) - lo in
        Array.init len (fun _ -> statistic (resample srng data)))
      (Array.init nshards Fun.id)
  in
  Array.concat (Array.to_list shards)

(* Tally-based resampling: when the data are dense integer ids (interned
   labels), a replicate is an int-array tally filled by the same [n]
   draws [resample] would consume — no per-replicate 'a array, no
   hashing.  A statistic over the tally sees the same resampled multiset
   as one over the materialized sample, so results are bit-identical to
   the generic path while allocating one scratch array per shard. *)
let replicates_tally ?jobs ~iterations rng ~k ~statistic data =
  if k <= 0 then invalid_arg "Bootstrap.replicates_tally: k must be positive";
  let n = Array.length data in
  Array.iter
    (fun id ->
      if id < 0 || id >= k then invalid_arg "Bootstrap.replicates_tally: id outside [0, k)")
    data;
  let base = Rng.split rng in
  let nshards = (iterations + shard_size - 1) / shard_size in
  let shards =
    Webdep_par.map_array ?jobs
      (fun s ->
        let srng = Rng.split_named base (Printf.sprintf "bootstrap.shard.%d" s) in
        let lo = s * shard_size in
        let len = min iterations (lo + shard_size) - lo in
        let counts = Array.make k 0 in
        Array.init len (fun _ ->
            Array.fill counts 0 k 0;
            for _ = 1 to n do
              let id = data.(Rng.int srng n) in
              counts.(id) <- counts.(id) + 1
            done;
            statistic counts))
      (Array.init nshards Fun.id)
  in
  Array.concat (Array.to_list shards)

let percentile_interval_tally ?(iterations = 500) ?(confidence = 0.95) ?jobs rng ~k
    ~statistic data =
  if Array.length data = 0 then invalid_arg "Bootstrap.percentile_interval: empty data";
  if iterations < 10 then invalid_arg "Bootstrap.percentile_interval: too few iterations";
  if confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Bootstrap.percentile_interval: confidence outside (0, 1)";
  let reps = replicates_tally ?jobs ~iterations rng ~k ~statistic data in
  let alpha = (1.0 -. confidence) /. 2.0 in
  ( Descriptive.percentile reps (100.0 *. alpha),
    Descriptive.percentile reps (100.0 *. (1.0 -. alpha)) )

let percentile_interval ?(iterations = 500) ?(confidence = 0.95) ?jobs rng ~statistic data =
  if Array.length data = 0 then invalid_arg "Bootstrap.percentile_interval: empty data";
  if iterations < 10 then invalid_arg "Bootstrap.percentile_interval: too few iterations";
  if confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Bootstrap.percentile_interval: confidence outside (0, 1)";
  let reps = replicates ?jobs ~iterations rng ~statistic data in
  let alpha = (1.0 -. confidence) /. 2.0 in
  ( Descriptive.percentile reps (100.0 *. alpha),
    Descriptive.percentile reps (100.0 *. (1.0 -. alpha)) )

let standard_error ?(iterations = 500) ?jobs rng ~statistic data =
  if Array.length data = 0 then invalid_arg "Bootstrap.standard_error: empty data";
  Descriptive.stddev (replicates ?jobs ~iterations rng ~statistic data)
