type t = { lo : float; width : float; counts : int array }

let create ~lo ~hi ~bins xs =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
  let width = (hi -. lo) /. float_of_int bins in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let i = int_of_float ((x -. lo) /. width) in
      let i = Stdlib.max 0 (Stdlib.min (bins - 1) i) in
      counts.(i) <- counts.(i) + 1)
    xs;
  { lo; width; counts }

let bin_edges t =
  Array.mapi
    (fun i _ ->
      let left = t.lo +. (float_of_int i *. t.width) in
      (left, left +. t.width))
    t.counts

let total t = Array.fold_left ( + ) 0 t.counts

let ecdf xs =
  if Array.length xs = 0 then invalid_arg "Histogram.ecdf: empty input";
  let c = Array.copy xs in
  Array.sort compare c;
  let n = float_of_int (Array.length c) in
  Array.mapi (fun i x -> (x, float_of_int (i + 1) /. n)) c
