(** Fixed-width histograms and empirical CDFs, used to render the paper's
    distribution figures (Figure 12 centralization histograms, Figure 11
    insularity CDFs) as text series. *)

type t = {
  lo : float;  (** left edge of the first bin *)
  width : float;  (** bin width *)
  counts : int array;  (** per-bin counts; last bin is right-closed *)
}

val create : lo:float -> hi:float -> bins:int -> float array -> t
(** [create ~lo ~hi ~bins xs] buckets [xs] into [bins] equal-width bins over
    [lo, hi]; values outside the range clamp into the end bins.
    @raise Invalid_argument if [bins <= 0] or [hi <= lo]. *)

val bin_edges : t -> (float * float) array
(** Per-bin [(left, right)] edges. *)

val total : t -> int

val ecdf : float array -> (float * float) array
(** Empirical CDF: sorted [(x, F(x))] pairs with F the fraction of values
    [<= x].  @raise Invalid_argument on empty input. *)
