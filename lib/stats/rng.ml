type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* Finalizer from MurmurHash3 / SplitMix64 reference implementation. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

(* FNV-1a over the name, folded into a fresh child state.  Keyed derivation
   must not advance the parent, so we hash the parent state rather than
   drawing from it. *)
let split_named t name =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    name;
  { state = mix64 (Int64.logxor t.state !h) }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free modulo is fine here: bound is always tiny relative to
     2^62 in this codebase, so the bias is < 2^-40.  Keep 62 bits so the
     value stays within OCaml's 63-bit native int range. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0
