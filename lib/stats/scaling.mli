(** Feature scaling.  The paper min–max scales (usage, endemicity-ratio)
    pairs before clustering providers (§5.2). *)

val min_max : float array -> float array
(** Scale into [0,1]; a constant array maps to all zeros.
    @raise Invalid_argument on empty input. *)

val min_max_columns : float array array -> float array array
(** [min_max_columns rows] scales each column of a row-major matrix
    independently into [0,1].  Rows must be nonempty and rectangular. *)

val z_score : float array -> float array
(** Standardize to zero mean, unit (population) variance; a constant array
    maps to all zeros. *)
