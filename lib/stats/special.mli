(** Special functions needed for significance testing: log-gamma and the
    regularized incomplete beta function, from which the Student t CDF is
    derived.  Implementations follow the classic Lentz continued-fraction
    formulation (Numerical Recipes §6.4). *)

val log_gamma : float -> float
(** Natural log of the gamma function, Lanczos approximation, valid for
    positive arguments. *)

val incomplete_beta : a:float -> b:float -> float -> float
(** [incomplete_beta ~a ~b x] is the regularized incomplete beta
    I_x(a, b) for [x] in [0,1]. *)

val student_t_sf : df:float -> float -> float
(** [student_t_sf ~df t] is the two-sided survival function
    P(|T| >= |t|) for a Student t with [df] degrees of freedom — the
    p-value of a t statistic. *)
