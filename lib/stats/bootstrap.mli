(** Nonparametric bootstrap — resampling-based confidence intervals for
    statistics without a closed-form sampling distribution, most notably
    the centralization score of a sampled toplist.

    Resampling is sharded: the caller's rng is advanced once, each shard
    of 32 replicates draws from a named child stream, and shards fan out
    across the {!Webdep_par} pool.  Results are identical for every
    [jobs] value (including 1), because draws are keyed to the shard
    index rather than to scheduling order. *)

val resample : Rng.t -> 'a array -> 'a array
(** Sample [n] elements with replacement from an [n]-element array. *)

val replicates :
  ?jobs:int ->
  iterations:int ->
  Rng.t ->
  statistic:('a array -> float) ->
  'a array ->
  float array
(** [iterations] recomputations of [statistic] on resamples, in shard
    order.  [?jobs] overrides the pool's configured lane count. *)

val replicates_tally :
  ?jobs:int ->
  iterations:int ->
  Rng.t ->
  k:int ->
  statistic:(int array -> float) ->
  int array ->
  float array
(** {!replicates} for data that are dense integer ids in [0, k) —
    interned provider labels, for instance.  Each replicate fills a
    [k]-slot int tally with the same [n] draws {!resample} would make
    (same rng advance, same shard streams), so a statistic over the
    tally returns bit-identical values to the equivalent statistic over
    a materialized resample, without allocating one.  The tally array is
    reused between a shard's replicates: [statistic] must not retain
    it.  @raise Invalid_argument if [k <= 0] or an id falls outside
    [0, k). *)

val percentile_interval :
  ?iterations:int ->
  ?confidence:float ->
  ?jobs:int ->
  Rng.t ->
  statistic:('a array -> float) ->
  'a array ->
  float * float
(** [percentile_interval rng ~statistic data] is the percentile bootstrap
    CI: recompute [statistic] on [iterations] resamples (default 500)
    and take the ((1−confidence)/2, 1−(1−confidence)/2) percentiles
    (default confidence 0.95).
    @raise Invalid_argument on empty data, [iterations < 10], or
    confidence outside (0, 1). *)

val percentile_interval_tally :
  ?iterations:int ->
  ?confidence:float ->
  ?jobs:int ->
  Rng.t ->
  k:int ->
  statistic:(int array -> float) ->
  int array ->
  float * float
(** {!percentile_interval} over {!replicates_tally}: bit-identical CIs
    for a tally-expressible statistic at a fraction of the allocation.
    Raises the same [Invalid_argument]s as {!percentile_interval}. *)

val standard_error :
  ?iterations:int ->
  ?jobs:int ->
  Rng.t ->
  statistic:('a array -> float) ->
  'a array ->
  float
(** Bootstrap standard error: the standard deviation of the statistic
    over resamples. *)
