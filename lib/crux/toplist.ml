type t = { country : string; domains : string array }

let create ~country domains =
  let seen = Hashtbl.create (Array.length domains) in
  Array.iter
    (fun d ->
      if Hashtbl.mem seen d then invalid_arg ("Toplist.create: duplicate domain " ^ d);
      Hashtbl.add seen d ())
    domains;
  { country; domains }

let length t = Array.length t.domains

let buckets = [ 1_000; 5_000; 10_000; 50_000; 100_000; 500_000; 1_000_000 ]

let rank_bucket rank =
  if rank < 1 then invalid_arg "Toplist.rank_bucket: rank must be >= 1";
  match List.find_opt (fun b -> rank <= b) buckets with
  | Some b -> b
  | None -> 1_000_000

let bucket_of t domain =
  let found = ref None in
  Array.iteri (fun i d -> if !found = None && String.equal d domain then found := Some (i + 1)) t.domains;
  Option.map rank_bucket !found

let top t n =
  let n = min n (Array.length t.domains) in
  Array.to_list (Array.sub t.domains 0 n)

let take t n =
  let n = min n (Array.length t.domains) in
  { t with domains = Array.sub t.domains 0 n }

let domains t = Array.to_list t.domains

let mem t domain = Array.exists (String.equal domain) t.domains
