type diff = { kept : string list; added : string list; removed : string list }

let diff old_t new_t =
  let kept = ref [] and added = ref [] and removed = ref [] in
  List.iter
    (fun d -> if Toplist.mem old_t d then kept := d :: !kept else added := d :: !added)
    (Toplist.domains new_t);
  List.iter
    (fun d -> if not (Toplist.mem new_t d) then removed := d :: !removed)
    (Toplist.domains old_t);
  { kept = List.rev !kept; added = List.rev !added; removed = List.rev !removed }

let retention_for_jaccard j =
  if j < 0.0 || j > 1.0 then invalid_arg "Churn.retention_for_jaccard: j outside [0,1]";
  2.0 *. j /. (1.0 +. j)

let evolve rng ~target_jaccard ~fresh t =
  let n = Toplist.length t in
  let keep = int_of_float (Float.round (retention_for_jaccard target_jaccard *. float_of_int n)) in
  let old = Array.of_list (Toplist.domains t) in
  (* Decide survivors uniformly over ranks so the churn is not
     popularity-biased (CrUX churn affects all rank bands). *)
  let index = Array.init n Fun.id in
  Webdep_stats.Sample.shuffle rng index;
  let survives = Array.make n false in
  for i = 0 to keep - 1 do
    survives.(index.(i)) <- true
  done;
  let minted = ref 0 in
  let mint () =
    let rec try_mint attempts =
      let d = fresh !minted in
      incr minted;
      if Toplist.mem t d then
        if attempts > 100 then invalid_arg "Churn.evolve: fresh produced existing domains"
        else try_mint (attempts + 1)
      else d
    in
    try_mint 0
  in
  let next = Array.init n (fun i -> if survives.(i) then old.(i) else mint ()) in
  (* Bounded rank jitter: swap each slot with a neighbour within a small
     window, preserving coarse popularity structure. *)
  let window = Stdlib.max 1 (n / 50) in
  for i = 0 to n - 1 do
    let j = Stdlib.min (n - 1) (i + Webdep_stats.Rng.int rng window) in
    let tmp = next.(i) in
    next.(i) <- next.(j);
    next.(j) <- tmp
  done;
  Toplist.create ~country:t.country next
