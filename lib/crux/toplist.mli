(** Per-country popular-website lists — the CrUX substrate.

    CrUX publishes per-country popularity as rank-magnitude buckets
    (top 1k, 5k, 10k, …) rather than exact ranks; the paper analyzes the
    top-10K bucket of each of the 150 countries whose lists are at least
    that long.  A toplist here is a ranked domain array plus the bucket
    view. *)

type t = { country : string; domains : string array  (** rank order, best first *) }

val create : country:string -> string array -> t
(** @raise Invalid_argument on duplicate domains. *)

val length : t -> int

val rank_bucket : int -> int
(** [rank_bucket rank] is the CrUX rank-magnitude bucket of a 1-based
    rank: 1 000, 5 000, 10 000, 50 000, 100 000, 500 000 or 1 000 000.
    @raise Invalid_argument if [rank < 1]. *)

val bucket_of : t -> string -> int option
(** The rank-magnitude bucket a domain falls in, as CrUX would report. *)

val top : t -> int -> string list
(** The first [n] domains (all of them if shorter). *)

val take : t -> int -> t
(** Truncate to the top [n] — the paper's top-10K cut. *)

val domains : t -> string list

val mem : t -> string -> bool
