(** CrUX country coverage — which countries make the paper's cut.

    CrUX list lengths vary with traffic volume and Chrome adoption;
    Google's privacy thresholds shorten small countries' lists.  The
    paper keeps the 150 of 237 countries (63.3%) whose lists hold at
    least 10 000 websites.  This module models the per-country list
    length as log-normal and applies the threshold. *)

type eligibility = {
  country : string;
  list_length : int;
  eligible : bool;
}

val threshold : int
(** The paper's cut: 10 000. *)

val simulate :
  ?total_countries:int ->
  ?mu:float ->
  ?sigma:float ->
  Webdep_stats.Rng.t ->
  unit ->
  eligibility list
(** Draw list lengths for [total_countries] (default 237) countries from
    LogNormal([mu], [sigma]) (defaults calibrated so ~63% clear the
    threshold) and mark eligibility.  Country labels are "C001"…;
    deterministic in the generator. *)

val eligible_fraction : eligibility list -> float
val eligible_count : eligibility list -> int
