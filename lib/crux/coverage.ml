type eligibility = { country : string; list_length : int; eligible : bool }

let threshold = 10_000

(* ln 10000 = 9.21; with sigma 1.5 a mean of 9.72 puts ~63% of countries
   above the threshold (z = -0.34). *)
let simulate ?(total_countries = 237) ?(mu = 9.72) ?(sigma = 1.5) rng () =
  List.init total_countries (fun i ->
      let raw = Webdep_stats.Sample.log_normal rng ~mu ~sigma in
      let list_length = max 100 (int_of_float (Float.round raw)) in
      {
        country = Printf.sprintf "C%03d" (i + 1);
        list_length;
        eligible = list_length >= threshold;
      })

let eligible_count es = List.length (List.filter (fun e -> e.eligible) es)

let eligible_fraction es =
  float_of_int (eligible_count es) /. float_of_int (List.length es)
