(** Toplist evolution between measurement snapshots.

    The paper's May-2023 → May-2025 comparison finds a mean Jaccard index
    of 0.37 between countries' toplists.  [evolve] produces a second
    snapshot with a chosen target Jaccard: it keeps a retention fraction
    [k = 2J / (1 + J)] of the old domains (so that
    [J = k/(2−k)] exactly when replacements are fresh), replaces the rest
    with new domains, and locally perturbs ranks. *)

type diff = { kept : string list; added : string list; removed : string list }
(** Set difference between two snapshots of a country's toplist.  [kept]
    and [added] preserve the new list's rank order; [removed] the old
    list's. *)

val diff : Toplist.t -> Toplist.t -> diff
(** [diff old_t new_t] classifies every domain of both lists.  The
    incremental-metrics path re-measures only [added] and untallies only
    [removed]. *)

val retention_for_jaccard : float -> float
(** [retention_for_jaccard j] = 2j/(1+j).  @raise Invalid_argument if [j]
    outside [0, 1]. *)

val evolve :
  Webdep_stats.Rng.t ->
  target_jaccard:float ->
  fresh:(int -> string) ->
  Toplist.t ->
  Toplist.t
(** [evolve rng ~target_jaccard ~fresh t] is a same-length successor list.
    [fresh i] must mint a domain not present in [t] (checked).  Survivor
    ranks are jittered by a bounded shuffle; replacements fill the freed
    slots. *)
