(* Two-level storage — an outer table per vantage, an inner one per
   qname — so lookups on the measurement hot path allocate no joined
   "vantage|qname" key string.  The vantage population is tiny (country
   codes), so the outer table stays small while each inner table sizes
   like the old flat one. *)

type 'a t = {
  tbl : (string, (string, 'a) Hashtbl.t) Hashtbl.t;
  inner_size : int;
  h : Webdep_obs.Metrics.counter;
  m : Webdep_obs.Metrics.counter;
}

let create ?(size = 4096) ~name () =
  {
    tbl = Hashtbl.create 64;
    inner_size = size;
    h = Webdep_obs.Metrics.counter (name ^ ".hits");
    m = Webdep_obs.Metrics.counter (name ^ ".misses");
  }

let inner t ~vantage =
  match Hashtbl.find_opt t.tbl vantage with
  | Some i -> i
  | None ->
      let i = Hashtbl.create t.inner_size in
      Hashtbl.replace t.tbl vantage i;
      i

let find t ~vantage qname =
  let hit =
    match Hashtbl.find_opt t.tbl vantage with
    | None -> None
    | Some i -> Hashtbl.find_opt i qname
  in
  (match hit with
  | Some _ -> Webdep_obs.Metrics.incr t.h
  | None -> Webdep_obs.Metrics.incr t.m);
  hit

let add t ~vantage qname v = Hashtbl.replace (inner t ~vantage) qname v

(* Shared across every cache instance: how many computed values were
   deliberately NOT memoized because the caller judged them transient
   (a cached SERVFAIL must not mask a later successful retry). *)
let m_negative_skip = Webdep_obs.Metrics.counter "dns.cache.negative_skip"

let negative_skip () = Webdep_obs.Metrics.incr m_negative_skip

let find_or_compute ?(cache_if = fun _ -> true) t ~vantage qname f =
  let i = inner t ~vantage in
  match Hashtbl.find_opt i qname with
  | Some v ->
      Webdep_obs.Metrics.incr t.h;
      v
  | None ->
      Webdep_obs.Metrics.incr t.m;
      let v = f () in
      if cache_if v then Hashtbl.add i qname v else negative_skip ();
      v

let length t = Hashtbl.fold (fun _ i acc -> acc + Hashtbl.length i) t.tbl 0
let hits t = Webdep_obs.Metrics.value t.h
let misses t = Webdep_obs.Metrics.value t.m
