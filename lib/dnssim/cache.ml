type 'a t = {
  tbl : (string, 'a) Hashtbl.t;
  h : Webdep_obs.Metrics.counter;
  m : Webdep_obs.Metrics.counter;
}

let create ?(size = 4096) ~name () =
  {
    tbl = Hashtbl.create size;
    h = Webdep_obs.Metrics.counter (name ^ ".hits");
    m = Webdep_obs.Metrics.counter (name ^ ".misses");
  }

(* '|' cannot appear in country codes, so the joined key is injective on
   (vantage, qname). *)
let key ~vantage qname = vantage ^ "|" ^ qname

let find t ~vantage qname =
  match Hashtbl.find_opt t.tbl (key ~vantage qname) with
  | Some _ as hit ->
      Webdep_obs.Metrics.incr t.h;
      hit
  | None ->
      Webdep_obs.Metrics.incr t.m;
      None

let add t ~vantage qname v = Hashtbl.replace t.tbl (key ~vantage qname) v

(* Shared across every cache instance: how many computed values were
   deliberately NOT memoized because the caller judged them transient
   (a cached SERVFAIL must not mask a later successful retry). *)
let m_negative_skip = Webdep_obs.Metrics.counter "dns.cache.negative_skip"

let negative_skip () = Webdep_obs.Metrics.incr m_negative_skip

let find_or_compute ?(cache_if = fun _ -> true) t ~vantage qname f =
  let k = key ~vantage qname in
  match Hashtbl.find_opt t.tbl k with
  | Some v ->
      Webdep_obs.Metrics.incr t.h;
      v
  | None ->
      Webdep_obs.Metrics.incr t.m;
      let v = f () in
      if cache_if v then Hashtbl.add t.tbl k v else negative_skip ();
      v

let length t = Hashtbl.length t.tbl
let hits t = Webdep_obs.Metrics.value t.h
let misses t = Webdep_obs.Metrics.value t.m
