type 'a t = {
  tbl : (string, 'a) Hashtbl.t;
  h : Webdep_obs.Metrics.counter;
  m : Webdep_obs.Metrics.counter;
}

let create ?(size = 4096) ~name () =
  {
    tbl = Hashtbl.create size;
    h = Webdep_obs.Metrics.counter (name ^ ".hits");
    m = Webdep_obs.Metrics.counter (name ^ ".misses");
  }

(* '|' cannot appear in country codes, so the joined key is injective on
   (vantage, qname). *)
let key ~vantage qname = vantage ^ "|" ^ qname

let find t ~vantage qname =
  match Hashtbl.find_opt t.tbl (key ~vantage qname) with
  | Some _ as hit ->
      Webdep_obs.Metrics.incr t.h;
      hit
  | None ->
      Webdep_obs.Metrics.incr t.m;
      None

let add t ~vantage qname v = Hashtbl.replace t.tbl (key ~vantage qname) v

let find_or_compute t ~vantage qname f =
  let k = key ~vantage qname in
  match Hashtbl.find_opt t.tbl k with
  | Some v ->
      Webdep_obs.Metrics.incr t.h;
      v
  | None ->
      Webdep_obs.Metrics.incr t.m;
      let v = f () in
      Hashtbl.add t.tbl k v;
      v

let length t = Hashtbl.length t.tbl
let hits t = Webdep_obs.Metrics.value t.h
let misses t = Webdep_obs.Metrics.value t.m
