type t = { id : int; country : string }

type pool = { by_country : (string, t array) Hashtbl.t; all : t array }

let pool_of_countries ?(missing = []) ~per_country countries =
  let by_country = Hashtbl.create 256 in
  let next_id = ref 0 in
  let all = ref [] in
  List.iter
    (fun cc ->
      if not (List.mem cc missing) then begin
        let probes =
          Array.init per_country (fun _ ->
              let p = { id = !next_id; country = cc } in
              incr next_id;
              p)
        in
        Hashtbl.replace by_country cc probes;
        all := Array.to_list probes @ !all
      end)
    countries;
  { by_country; all = Array.of_list (List.rev !all) }

let pick pool rng ~country =
  match Hashtbl.find_opt pool.by_country country with
  | Some probes when Array.length probes > 0 -> Webdep_stats.Sample.choose rng probes
  | _ -> Webdep_stats.Sample.choose rng pool.all

let size pool = Array.length pool.all
let countries_covered pool = Hashtbl.length pool.by_country
