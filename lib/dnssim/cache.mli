(** TTL-less memo cache for resolver results, keyed on [(vantage, qname)]
    so split-horizon (Geo/Dynamic) answers from different probe countries
    never collide — what a per-resolver cache in the paper's measurement
    setup would hold for the duration of a sweep.

    The table itself takes no lock: create one cache per worker (the
    pipeline builds one per country snapshot, which a single domain
    measures).  The hit/miss counters live in the process-global obs
    registry under [name ^ ".hits"] / [name ^ ".misses"], so caches
    sharing a [name] aggregate — a --metrics dump or BENCH_obs.json shows
    fleet-wide hit rates without extra plumbing. *)

type 'a t

val create : ?size:int -> name:string -> unit -> 'a t
(** Fresh empty cache; [name] prefixes the obs hit/miss counters. *)

val find : 'a t -> vantage:string -> string -> 'a option
(** Lookup, counting a hit or a miss. *)

val add : 'a t -> vantage:string -> string -> 'a -> unit
(** Insert (replacing any previous entry); counts nothing. *)

val find_or_compute :
  ?cache_if:('a -> bool) -> 'a t -> vantage:string -> string -> (unit -> 'a) -> 'a
(** Return the cached value or compute, store and return it.  When
    [cache_if] (default: always) rejects the computed value, it is
    returned but not memoized and [dns.cache.negative_skip] is bumped —
    transient failures (timeouts, SERVFAILs) must stay uncached so a
    later retry can observe the recovered answer. *)

val negative_skip : unit -> unit
(** Bump the shared [dns.cache.negative_skip] counter — for callers
    managing their own store via {!find}/{!add} that decide to skip
    memoizing a transient failure. *)

val length : 'a t -> int
(** Number of cached entries. *)

val hits : 'a t -> int
(** Current value of the cache's hit counter (shared across caches with
    the same [name]). *)

val misses : 'a t -> int
(** Current value of the miss counter (same sharing caveat). *)
