(** The DNS delegation hierarchy: root servers, TLD servers, and
    per-provider authoritative servers, derived from the flat
    authoritative data in a {!Zone_db}.

    {!Zone_db} answers "what are the records" — this module models
    {e how} a resolver finds them: the root delegates each TLD to TLD
    servers, a TLD zone delegates each domain to its NS hosts, and the
    NS hosts answer authoritatively.  {!Iterative} walks this tree the
    way ZDNS's iterative mode does. *)

type referral = {
  zone : string;  (** the delegated zone ("com", "example.com") *)
  ns_hosts : string list;
  glue : (string * Webdep_netsim.Ipv4.addr list) list;
      (** in-bailiwick glue shipped with the referral *)
}

type response =
  | Answer of Webdep_netsim.Ipv4.addr list  (** authoritative A rrset *)
  | Cname of string  (** alias: restart resolution at the target *)
  | Referral of referral
  | Name_error  (** authoritative NXDOMAIN *)

type t

val build : Zone_db.t -> t
(** Derive the full hierarchy from authoritative data: one TLD zone per
    distinct TLD among the domains, one authoritative server group per
    distinct NS host.  Nameserver hostnames themselves resolve through
    their own glue (served by the root for simplicity, as real TLD glue
    does). *)

val root_addrs : t -> Webdep_netsim.Ipv4.addr list
(** The root server addresses (the resolver's hints). *)

val query :
  t -> server:Webdep_netsim.Ipv4.addr -> vantage:string -> qname:string -> response
(** Ask one server one question, as a resolver would.  Unknown servers
    answer {!Name_error}. *)

val tld_count : t -> int
val auth_server_count : t -> int
