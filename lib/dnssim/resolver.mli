(** The ZDNS-style resolver: given a domain and a vantage country, return
    the A records and the nameserver set with their addresses.  These are
    the two lookups the paper's pipeline performs per site (hosting IP and
    NS IP). *)

type response = {
  a : Webdep_netsim.Ipv4.addr list;  (** website addresses *)
  ns_hosts : string list;  (** authoritative nameserver hostnames *)
  ns_addrs : Webdep_netsim.Ipv4.addr list;  (** their glue addresses *)
}

type error = Nxdomain

val m_lookups : Webdep_obs.Metrics.counter
(** Total flat lookups issued. *)

val m_nxdomain : Webdep_obs.Metrics.counter
(** Lookups for unknown domains. *)

val m_cname_chased : Webdep_obs.Metrics.counter
(** CNAME links followed while chasing to the terminal A answer. *)

type cache
(** Memo in front of {!resolve}: a [(vantage, domain)]-keyed response
    table plus a [(vantage, ns_host)]-keyed glue table (the glue memo
    carries most of the hits — a few DNS providers serve nearly every
    site).  Not thread-safe; create one per worker/sweep.  Hit/miss
    counters appear in the obs registry as [dns.cache.response.*] and
    [dns.cache.glue.*]. *)

val make_cache : unit -> cache

val resolve :
  ?cache:cache -> Zone_db.t -> vantage:string -> string -> (response, error) result
(** [resolve db ~vantage domain]; [vantage] is the probing country code
    (the paper's university vantage is modelled as "US").  With [?cache],
    repeat lookups are memoized; a cached lookup still counts in
    {!m_lookups} but skips the per-answer counters. *)

val resolve_a :
  ?cache:cache -> Zone_db.t -> vantage:string -> string -> Webdep_netsim.Ipv4.addr option
(** First A record, if any. *)
