(** The ZDNS-style resolver: given a domain and a vantage country, return
    the A records and the nameserver set with their addresses.  These are
    the two lookups the paper's pipeline performs per site (hosting IP and
    NS IP). *)

type response = {
  a : Webdep_netsim.Ipv4.addr list;  (** website addresses *)
  ns_hosts : string list;  (** authoritative nameserver hostnames *)
  ns_addrs : Webdep_netsim.Ipv4.addr list;  (** their glue addresses *)
}

type error =
  | Nxdomain  (** definitive: the name does not exist *)
  | Timeout  (** transient: query timed out (injected) *)
  | Refused  (** transient: server answered REFUSED (injected) *)
  | Servfail of string  (** transient: server failure, with detail *)
(** The canonical resolution error shared by the flat and iterative
    resolvers.  Only {!Nxdomain} is definitive; the rest are transient
    and eligible for retry. *)

val error_message : error -> string

val retryable : error -> bool
(** [true] for every transient error, [false] for {!Nxdomain}. *)

val cacheable : ('a, error) result -> bool
(** Whether a result may be memoized: [Ok] and [Error Nxdomain] are
    definitive; transient errors must never be cached. *)

val m_lookups : Webdep_obs.Metrics.counter
(** Total flat lookups issued. *)

val m_nxdomain : Webdep_obs.Metrics.counter
(** Lookups for unknown domains. *)

val m_cname_chased : Webdep_obs.Metrics.counter
(** CNAME links followed while chasing to the terminal A answer. *)

type cache
(** Memo in front of {!resolve}: a [(vantage, domain)]-keyed response
    table plus a [(vantage, ns_host)]-keyed glue table (the glue memo
    carries most of the hits — a few DNS providers serve nearly every
    site).  Not thread-safe; create one per worker/sweep.  Hit/miss
    counters appear in the obs registry as [dns.cache.response.*] and
    [dns.cache.glue.*]. *)

val make_cache : unit -> cache

val resolve :
  ?cache:cache ->
  ?faults:Webdep_faults.Fault_plan.t ->
  ?retry:Webdep_faults.Retry.policy ->
  Zone_db.t ->
  vantage:string ->
  string ->
  (response, error) result
(** [resolve db ~vantage domain]; [vantage] is the probing country code
    (the paper's university vantage is modelled as "US").  With [?cache],
    repeat lookups are memoized (transient errors excepted); a cached
    lookup still counts in {!m_lookups} but skips the per-answer
    counters.  [?faults] (default: no faults) injects deterministic
    timeouts/SERVFAIL/REFUSED per the plan; [?retry] (default: single
    attempt) governs how transient failures are retried. *)

val resolve_a :
  ?cache:cache ->
  ?faults:Webdep_faults.Fault_plan.t ->
  ?retry:Webdep_faults.Retry.policy ->
  Zone_db.t ->
  vantage:string ->
  string ->
  Webdep_netsim.Ipv4.addr option
(** First A record, if any. *)
