type stats = { queries : int; referrals : int }

type error = Resolver.error =
  | Nxdomain
  | Timeout
  | Refused
  | Servfail of string

let max_depth = 8

let max_cname = 5

(* Observability: totals across every resolution this process ran.  The
   query-depth histogram records queries-per-successful-resolution, which
   is what the pipeline's resolution_stats reports as mean_queries. *)
let m_queries = Webdep_obs.Metrics.counter "dns.iterative.queries"
let m_referrals = Webdep_obs.Metrics.counter "dns.iterative.referrals"
let m_nxdomain = Webdep_obs.Metrics.counter "dns.iterative.nxdomain"
let m_servfail = Webdep_obs.Metrics.counter "dns.iterative.servfail"
let m_timeout = Webdep_obs.Metrics.counter "dns.iterative.timeout"
let m_depth = Webdep_obs.Metrics.histogram "dns.iterative.query_depth"

(* Recursive-resolver cache: full results keyed (vantage, qname), plus
   the TLD zone cuts learned from root referrals keyed (vantage, label).
   A warm cut lets the walk start at the TLD servers — exactly the root
   queries a real recursive resolver stops sending once its NS cache is
   primed. *)
type cache = {
  results : (Webdep_netsim.Ipv4.addr list, error) result Cache.t;
  cuts : Webdep_netsim.Ipv4.addr list Cache.t;
}

let make_cache () =
  {
    results = Cache.create ~name:"dns.cache.iterative" ();
    cuts = Cache.create ~size:512 ~name:"dns.cache.zone_cut" ();
  }

let tld_of qname =
  match String.rindex_opt qname '.' with
  | None -> qname
  | Some i -> String.sub qname (i + 1) (String.length qname - i - 1)

module Faults = Webdep_faults.Fault_plan
module Retry = Webdep_faults.Retry

let resolve ?cache ?(faults = Faults.disabled) ?(retry = Retry.no_retry)
    hierarchy ~vantage qname =
  let compute ~attempt =
    let queries = ref 0 and referrals = ref 0 in
    let rec start qname aliases =
      if aliases > max_cname then Error (Servfail "cname chain too long")
      else begin
        (* Resume from the deepest cached zone cut, else the root hints. *)
        match cache with
        | Some c -> (
            match Cache.find c.cuts ~vantage (tld_of qname) with
            | Some servers -> walk qname aliases servers 1
            | None -> walk qname aliases (Hierarchy.root_addrs hierarchy) 0)
        | None -> walk qname aliases (Hierarchy.root_addrs hierarchy) 0
      end
    and walk qname aliases servers depth =
      if depth > max_depth then Error (Servfail "referral chain too long")
      else
        (* Try the server set in order, failing over past servers whose
           answer was injected away (packet loss) or that turned out
           lame for the zone.  With no faults the head server answers,
           exactly the pre-fault behavior. *)
        let rec ask ~saw_lame = function
          | [] ->
              if saw_lame then Error (Servfail "lame delegation")
              else if servers = [] then Error (Servfail "no servers to ask")
              else Error Timeout
          | server :: rest -> (
              incr queries;
              match
                Faults.query_fault faults
                  ~server:(Webdep_netsim.Ipv4.addr_to_int server)
                  ~qname ~attempt
              with
              | Faults.Fault Faults.Packet_loss -> ask ~saw_lame rest
              | Faults.Fault _ -> ask ~saw_lame:true rest
              | Faults.No_fault -> (
                  match Hierarchy.query hierarchy ~server ~vantage ~qname with
                  | Hierarchy.Answer addrs -> Ok addrs
                  | Hierarchy.Cname target ->
                      (* Restart (from cache or root hints) for the alias
                         target, as a recursive resolver does. *)
                      start target (aliases + 1)
                  | Hierarchy.Name_error -> Error Nxdomain
                  | Hierarchy.Referral { zone; glue; _ } ->
                      incr referrals;
                      let next = List.concat_map snd glue in
                      if next = [] then Error (Servfail "referral without glue")
                      else begin
                        (* TLD zone labels have no dot; domain-level
                           referrals do.  Only the former are worth
                           remembering. *)
                        (match cache with
                        | Some c when not (String.contains zone '.') ->
                            Cache.add c.cuts ~vantage zone next
                        | _ -> ());
                        walk qname aliases next (depth + 1)
                      end))
        in
        ask ~saw_lame:false servers
    in
    let result = start qname 0 in
    Webdep_obs.Metrics.incr ~by:!queries m_queries;
    Webdep_obs.Metrics.incr ~by:!referrals m_referrals;
    (match result with
    | Ok _ -> Webdep_obs.Metrics.observe m_depth (float_of_int !queries)
    | Error Nxdomain -> Webdep_obs.Metrics.incr m_nxdomain
    | Error Timeout -> Webdep_obs.Metrics.incr m_timeout
    | Error (Refused | Servfail _) -> Webdep_obs.Metrics.incr m_servfail);
    match result with
    | Ok addrs -> Ok (addrs, { queries = !queries; referrals = !referrals })
    | Error e -> Error e
  in
  let compute_with_retry () =
    (* Fault-free, [compute] is deterministic in (vantage, qname) — a
       retry could only replay the same outcome — and the generated
       world resolves every toplist domain, so retryable errors (broken
       chains, missing glue) never arise without injection.  Skipping
       Retry.run therefore returns the identical result and saves the
       per-lookup key concatenation. *)
    if not (Faults.enabled faults) then compute ~attempt:0
    else
      Retry.run retry
        ~key:("iter|" ^ vantage ^ "|" ^ qname)
        ~retryable:Resolver.retryable compute
  in
  match cache with
  | None -> compute_with_retry ()
  | Some c -> (
      match Cache.find c.results ~vantage qname with
      | Some (Ok addrs) -> Ok (addrs, { queries = 0; referrals = 0 })
      | Some (Error e) -> Error e
      | None ->
          let r = compute_with_retry () in
          let memo = match r with Ok (addrs, _) -> Ok addrs | Error e -> Error e in
          if Resolver.cacheable memo then Cache.add c.results ~vantage qname memo
          else Cache.negative_skip ();
          r)

let resolve_a ?cache ?faults ?retry hierarchy ~vantage qname =
  match resolve ?cache ?faults ?retry hierarchy ~vantage qname with
  | Ok (addr :: _, _) -> Some addr
  | Ok ([], _) | Error _ -> None
