type stats = { queries : int; referrals : int }
type error = Nxdomain | Servfail of string

let max_depth = 8

let max_cname = 5

(* Observability: totals across every resolution this process ran.  The
   query-depth histogram records queries-per-successful-resolution, which
   is what the pipeline's resolution_stats reports as mean_queries. *)
let m_queries = Webdep_obs.Metrics.counter "dns.iterative.queries"
let m_referrals = Webdep_obs.Metrics.counter "dns.iterative.referrals"
let m_nxdomain = Webdep_obs.Metrics.counter "dns.iterative.nxdomain"
let m_servfail = Webdep_obs.Metrics.counter "dns.iterative.servfail"
let m_depth = Webdep_obs.Metrics.histogram "dns.iterative.query_depth"

let resolve hierarchy ~vantage qname =
  let queries = ref 0 and referrals = ref 0 in
  let rec start qname aliases =
    if aliases > max_cname then Error (Servfail "cname chain too long")
    else walk qname aliases (Hierarchy.root_addrs hierarchy) 0
  and walk qname aliases servers depth =
    if depth > max_depth then Error (Servfail "referral chain too long")
    else
      match servers with
      | [] -> Error (Servfail "no servers to ask")
      | server :: _ -> (
          incr queries;
          match Hierarchy.query hierarchy ~server ~vantage ~qname with
          | Hierarchy.Answer addrs -> Ok addrs
          | Hierarchy.Cname target ->
              (* Restart from the root hints for the alias target, as a
                 cacheless iterative resolver does. *)
              start target (aliases + 1)
          | Hierarchy.Name_error -> Error Nxdomain
          | Hierarchy.Referral { glue; _ } ->
              incr referrals;
              let next = List.concat_map snd glue in
              if next = [] then Error (Servfail "referral without glue")
              else walk qname aliases next (depth + 1))
  in
  let result = start qname 0 in
  Webdep_obs.Metrics.incr ~by:!queries m_queries;
  Webdep_obs.Metrics.incr ~by:!referrals m_referrals;
  (match result with
  | Ok _ -> Webdep_obs.Metrics.observe m_depth (float_of_int !queries)
  | Error Nxdomain -> Webdep_obs.Metrics.incr m_nxdomain
  | Error (Servfail _) -> Webdep_obs.Metrics.incr m_servfail);
  match result with
  | Ok addrs -> Ok (addrs, { queries = !queries; referrals = !referrals })
  | Error e -> Error e

let resolve_a hierarchy ~vantage qname =
  match resolve hierarchy ~vantage qname with
  | Ok (addr :: _, _) -> Some addr
  | Ok ([], _) | Error _ -> None
