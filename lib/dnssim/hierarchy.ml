module Ipv4 = Webdep_netsim.Ipv4

type referral = {
  zone : string;
  ns_hosts : string list;
  glue : (string * Ipv4.addr list) list;
}

type response =
  | Answer of Ipv4.addr list
  | Cname of string
  | Referral of referral
  | Name_error

(* Server roles keyed by address. *)
type role =
  | Root
  | Tld_server of string  (* the TLD label it serves, without the dot *)
  | Auth  (* a provider nameserver; answers from the zone data *)

type t = {
  db : Zone_db.t;
  roles : (int, role) Hashtbl.t;  (* keyed by Ipv4.addr_to_int *)
  roots : Ipv4.addr list;
  tld_servers : (string, Ipv4.addr list) Hashtbl.t;  (* label -> addresses *)
  tlds : (string, unit) Hashtbl.t;
  auth_addrs : (string, Ipv4.addr list) Hashtbl.t;  (* ns host -> addresses *)
}

let tld_of domain =
  match String.rindex_opt domain '.' with
  | None -> domain
  | Some i -> String.sub domain (i + 1) (String.length domain - i - 1)

(* Fixed infrastructure address blocks, outside the 16.0.0.0+ space the
   world allocator uses. *)
let root_block = Ipv4.prefix (Ipv4.addr_of_int (12 lsl 24)) 24
let tld_block = Ipv4.prefix (Ipv4.addr_of_int ((12 lsl 24) lor (1 lsl 16))) 16

let build db =
  let roles = Hashtbl.create 4096 in
  let tlds = Hashtbl.create 512 in
  let tld_servers = Hashtbl.create 512 in
  let auth_addrs = Hashtbl.create 4096 in
  let roots = List.init 13 (fun i -> Ipv4.nth_addr root_block (i + 1)) in
  List.iter (fun a -> Hashtbl.replace roles (Ipv4.addr_to_int a) Root) roots;
  (* One TLD zone per distinct TLD, two servers each. *)
  Zone_db.fold_domains
    (fun domain _ns _a () ->
      let label = tld_of domain in
      if not (Hashtbl.mem tlds label) then begin
        Hashtbl.replace tlds label ();
        let index = Hashtbl.length tlds in
        let addrs =
          [ Ipv4.nth_addr tld_block (2 * index); Ipv4.nth_addr tld_block ((2 * index) + 1) ]
        in
        Hashtbl.replace tld_servers label addrs;
        List.iter
          (fun a -> Hashtbl.replace roles (Ipv4.addr_to_int a) (Tld_server label))
          addrs
      end)
    db ();
  (* Every glue host is an authoritative server at its addresses. *)
  Zone_db.fold_hosts
    (fun host _answer () ->
      let addrs = Zone_db.host_addr db ~vantage:"US" host in
      Hashtbl.replace auth_addrs host addrs;
      List.iter (fun a -> Hashtbl.replace roles (Ipv4.addr_to_int a) Auth) addrs)
    db ();
  { db; roles; roots; tld_servers; tlds; auth_addrs }

let root_addrs t = t.roots

let tld_referral t label =
  match Hashtbl.find_opt t.tld_servers label with
  | None -> Name_error
  | Some addrs ->
      let ns_hosts =
        List.mapi (fun i _ -> Printf.sprintf "%c.%s-servers.sim" (Char.chr (97 + i)) label) addrs
      in
      Referral
        {
          zone = label;
          ns_hosts;
          glue = List.map2 (fun h a -> (h, [ a ])) ns_hosts addrs;
        }

let domain_referral t ~vantage domain =
  match Zone_db.domain_data t.db domain with
  | None -> Name_error
  | Some (ns_hosts, _) ->
      let glue =
        List.map (fun h -> (h, Zone_db.host_addr t.db ~vantage h)) ns_hosts
      in
      Referral { zone = domain; ns_hosts; glue }

let query t ~server ~vantage ~qname =
  match Hashtbl.find_opt t.roles (Ipv4.addr_to_int server) with
  | None -> Name_error
  | Some Root ->
      (* The root also serves infrastructure glue directly (stand-in for
         the real world's in-bailiwick TLD glue). *)
      if Hashtbl.mem t.auth_addrs qname then
        Answer (Zone_db.host_addr t.db ~vantage qname)
      else tld_referral t (tld_of qname)
  | Some (Tld_server label) ->
      if String.equal (tld_of qname) label then domain_referral t ~vantage qname
      else Name_error
  | Some Auth -> (
      match Zone_db.domain_data t.db qname with
      | None -> Name_error
      | Some (ns_hosts, _answer) ->
          (* Only answer for zones this server actually hosts. *)
          let serves =
            List.exists
              (fun h ->
                match Hashtbl.find_opt t.auth_addrs h with
                | Some addrs -> List.exists (fun a -> Ipv4.compare_addr a server = 0) addrs
                | None -> false)
              ns_hosts
          in
          if not serves then Name_error
          else
            match Zone_db.cname_of t.db qname with
            | Some target -> Cname target
            | None ->
                Answer
                  (Option.value ~default:[]
                     (Zone_db.answer_addrs t.db ~vantage qname)))

let tld_count t = Hashtbl.length t.tlds
let auth_server_count t = Hashtbl.length t.auth_addrs
