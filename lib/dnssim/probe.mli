(** Measurement probes — the RIPE Atlas substrate for the §3.4
    vantage-point validation.  A probe is a vantage with a country; the
    paper selects random in-country probes per measurement, falling back
    to random global probes for the 14 countries with none. *)

type t = { id : int; country : string }

type pool

val pool_of_countries : ?missing:string list -> per_country:int -> string list -> pool
(** Build a pool with [per_country] probes in each listed country, except
    those in [missing] (countries with no RIPE probes). *)

val pick : pool -> Webdep_stats.Rng.t -> country:string -> t
(** A random probe in [country], or a random probe anywhere when the
    country has none (the paper's fallback). *)

val size : pool -> int
val countries_covered : pool -> int
