type answer =
  | Static of Webdep_netsim.Ipv4.addr list
  | Geo of (string * Webdep_netsim.Ipv4.addr list) list * Webdep_netsim.Ipv4.addr list
  | Dynamic of (string -> Webdep_netsim.Ipv4.addr list)

(* Lookup-ready form of an answer, cooked once at registration: Geo
   per-country lists become a sorted parallel array pair so a per-query
   vantage lookup is a binary search instead of a List.assoc scan. *)
type cooked =
  | C_static of Webdep_netsim.Ipv4.addr list
  | C_geo of string array * Webdep_netsim.Ipv4.addr list array * Webdep_netsim.Ipv4.addr list
  | C_dynamic of (string -> Webdep_netsim.Ipv4.addr list)

let cook = function
  | Static addrs -> C_static addrs
  | Dynamic f -> C_dynamic f
  | Geo (per_country, default) ->
      (* First binding wins on duplicate countries, as List.assoc_opt did. *)
      let seen = Hashtbl.create 16 in
      let uniq =
        List.filter
          (fun (cc, _) ->
            if Hashtbl.mem seen cc then false
            else begin
              Hashtbl.add seen cc ();
              true
            end)
          per_country
      in
      let arr = Array.of_list uniq in
      Array.sort (fun (a, _) (b, _) -> String.compare a b) arr;
      C_geo (Array.map fst arr, Array.map snd arr, default)

let lookup_cooked ~vantage = function
  | C_static addrs -> addrs
  | C_dynamic f -> f vantage
  | C_geo (countries, answers, default) ->
      let lo = ref 0 and hi = ref (Array.length countries - 1) in
      let found = ref (-1) in
      while !lo <= !hi do
        let mid = (!lo + !hi) / 2 in
        let c = String.compare vantage countries.(mid) in
        if c = 0 then begin
          found := mid;
          lo := !hi + 1
        end
        else if c < 0 then hi := mid - 1
        else lo := mid + 1
      done;
      if !found >= 0 then answers.(!found) else default

type entry = { ns_hosts : string list; a : answer; cooked : cooked; cname : string option }

type t = {
  domains : (string, entry) Hashtbl.t;
  hosts : (string, answer * cooked) Hashtbl.t;
}

let create () = { domains = Hashtbl.create 65536; hosts = Hashtbl.create 65536 }

let add_domain t ~domain ~ns_hosts ~a =
  Hashtbl.replace t.domains domain { ns_hosts; a; cooked = cook a; cname = None }

let add_alias t ~domain ~target ~ns_hosts =
  Hashtbl.replace t.domains domain
    { ns_hosts; a = Static []; cooked = C_static []; cname = Some target }

let cname_of t domain =
  Option.bind (Hashtbl.find_opt t.domains domain) (fun e -> e.cname)

let add_host t ~host ~a = Hashtbl.replace t.hosts host (a, cook a)

let domain_data t domain =
  Option.map (fun e -> (e.ns_hosts, e.a)) (Hashtbl.find_opt t.domains domain)

let resolve_answer ~vantage a = lookup_cooked ~vantage (cook a)

let answer_addrs t ~vantage domain =
  Option.map
    (fun e -> lookup_cooked ~vantage e.cooked)
    (Hashtbl.find_opt t.domains domain)

let host_addr t ~vantage host =
  match Hashtbl.find_opt t.hosts host with
  | None -> []
  | Some (_, cooked) -> lookup_cooked ~vantage cooked

let domain_count t = Hashtbl.length t.domains

let fold_domains f t init =
  Hashtbl.fold (fun domain e acc -> f domain e.ns_hosts e.a acc) t.domains init

let fold_hosts f t init = Hashtbl.fold (fun host (a, _) acc -> f host a acc) t.hosts init
