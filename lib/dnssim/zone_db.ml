type answer =
  | Static of Webdep_netsim.Ipv4.addr list
  | Geo of (string * Webdep_netsim.Ipv4.addr list) list * Webdep_netsim.Ipv4.addr list
  | Dynamic of (string -> Webdep_netsim.Ipv4.addr list)

type entry = { ns_hosts : string list; a : answer; cname : string option }

type t = {
  domains : (string, entry) Hashtbl.t;
  hosts : (string, answer) Hashtbl.t;
}

let create () = { domains = Hashtbl.create 65536; hosts = Hashtbl.create 65536 }

let add_domain t ~domain ~ns_hosts ~a =
  Hashtbl.replace t.domains domain { ns_hosts; a; cname = None }

let add_alias t ~domain ~target ~ns_hosts =
  Hashtbl.replace t.domains domain { ns_hosts; a = Static []; cname = Some target }

let cname_of t domain =
  Option.bind (Hashtbl.find_opt t.domains domain) (fun e -> e.cname)
let add_host t ~host ~a = Hashtbl.replace t.hosts host a

let domain_data t domain =
  Option.map (fun e -> (e.ns_hosts, e.a)) (Hashtbl.find_opt t.domains domain)

let resolve_answer ~vantage = function
  | Static addrs -> addrs
  | Geo (per_country, default) -> (
      match List.assoc_opt vantage per_country with
      | Some addrs -> addrs
      | None -> default)
  | Dynamic f -> f vantage

let host_addr t ~vantage host =
  match Hashtbl.find_opt t.hosts host with
  | None -> []
  | Some a -> resolve_answer ~vantage a

let domain_count t = Hashtbl.length t.domains

let fold_domains f t init =
  Hashtbl.fold (fun domain e acc -> f domain e.ns_hosts e.a acc) t.domains init

let fold_hosts f t init = Hashtbl.fold f t.hosts init
