(** Authoritative DNS data — the zone-file substrate behind the ZDNS-style
    resolver.

    Each domain owns an NS set (nameserver hostnames) and an A answer.
    Answers can be {e vantage-dependent} to model anycast and
    geo-load-balanced CDNs: the same qname returns different addresses to
    probes in different countries, which is exactly what the paper's RIPE
    Atlas validation experiment (§3.4) stresses. *)

type answer =
  | Static of Webdep_netsim.Ipv4.addr list
      (** same addresses from every vantage *)
  | Geo of (string * Webdep_netsim.Ipv4.addr list) list * Webdep_netsim.Ipv4.addr list
      (** per-country answers with a default for unlisted vantages *)
  | Dynamic of (string -> Webdep_netsim.Ipv4.addr list)
      (** computed per vantage — geo-load-balanced CDN front-end
          selection without enumerating all countries *)

type t

val create : unit -> t

val add_domain : t -> domain:string -> ns_hosts:string list -> a:answer -> unit
(** Register authoritative data for [domain]; replaces existing data. *)

val add_alias : t -> domain:string -> target:string -> ns_hosts:string list -> unit
(** Register [domain] as a CNAME alias of [target] (how CDN-fronted
    sites are set up): resolution follows the chain to the target's A
    records. *)

val cname_of : t -> string -> string option
(** The CNAME target of a domain, if it is an alias. *)

val add_host : t -> host:string -> a:answer -> unit
(** Register glue — an address record for a nameserver hostname. *)

val domain_data : t -> string -> (string list * answer) option
(** [(ns_hosts, a)] for a domain. *)

val answer_addrs : t -> vantage:string -> string -> Webdep_netsim.Ipv4.addr list option
(** A domain's own A answer from a vantage (no CNAME chasing); [None] if
    the domain is unknown.  Geo answers hit the per-country index cooked
    at registration (sorted array + binary search), not a list scan. *)

val host_addr : t -> vantage:string -> string -> Webdep_netsim.Ipv4.addr list
(** Resolve a hostname's glue from a vantage country; [[]] if unknown.
    Uses the same cooked index as {!answer_addrs}. *)

val resolve_answer : vantage:string -> answer -> Webdep_netsim.Ipv4.addr list
(** One-shot resolution of a bare answer value.  For stored entries
    prefer {!answer_addrs}/{!host_addr}, which reuse the precomputed
    index instead of cooking the answer per call. *)

val domain_count : t -> int

val fold_domains : (string -> string list -> answer -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over (domain, ns_hosts, answer) triples. *)

val fold_hosts : (string -> answer -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over registered glue hosts. *)
