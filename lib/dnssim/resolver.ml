type response = {
  a : Webdep_netsim.Ipv4.addr list;
  ns_hosts : string list;
  ns_addrs : Webdep_netsim.Ipv4.addr list;
}

type error = Nxdomain

let max_cname_depth = 5

(* Observability: lookup totals for the ZDNS-style flat resolver. *)
let m_lookups = Webdep_obs.Metrics.counter "dns.flat.lookups"
let m_nxdomain = Webdep_obs.Metrics.counter "dns.flat.nxdomain"
let m_cname_chased = Webdep_obs.Metrics.counter "dns.flat.cname_chased"

(* Follow a CNAME chain to the terminal A answer; a broken or cyclic
   chain yields no addresses (a resolver would SERVFAIL). *)
let rec chase db ~vantage domain depth =
  match Zone_db.domain_data db domain with
  | None -> []
  | Some (_, answer) -> (
      match Zone_db.cname_of db domain with
      | Some target when depth < max_cname_depth -> (
          Webdep_obs.Metrics.incr m_cname_chased;
          match chase db ~vantage target (depth + 1) with
          | [] -> Zone_db.resolve_answer ~vantage answer
          | addrs -> addrs)
      | Some _ -> []
      | None -> Zone_db.resolve_answer ~vantage answer)

let resolve db ~vantage domain =
  Webdep_obs.Metrics.incr m_lookups;
  match Zone_db.domain_data db domain with
  | None ->
      Webdep_obs.Metrics.incr m_nxdomain;
      Error Nxdomain
  | Some (ns_hosts, _) ->
      let a = chase db ~vantage domain 0 in
      let ns_addrs = List.concat_map (Zone_db.host_addr db ~vantage) ns_hosts in
      Ok { a; ns_hosts; ns_addrs }

let resolve_a db ~vantage domain =
  match resolve db ~vantage domain with
  | Ok { a = addr :: _; _ } -> Some addr
  | Ok { a = []; _ } | Error Nxdomain -> None
