type response = {
  a : Webdep_netsim.Ipv4.addr list;
  ns_hosts : string list;
  ns_addrs : Webdep_netsim.Ipv4.addr list;
}

type error = Nxdomain

let max_cname_depth = 5

(* Observability: lookup totals for the ZDNS-style flat resolver. *)
let m_lookups = Webdep_obs.Metrics.counter "dns.flat.lookups"
let m_nxdomain = Webdep_obs.Metrics.counter "dns.flat.nxdomain"
let m_cname_chased = Webdep_obs.Metrics.counter "dns.flat.cname_chased"

(* Sweep-scoped resolver cache.  The response memo holds full lookups;
   the glue memo holds per-nameserver-host addresses, which is where the
   reuse actually is: a handful of DNS providers serve thousands of
   sites, so their NS glue repeats on almost every lookup. *)
type cache = {
  responses : (response, error) result Cache.t;
  glue : Webdep_netsim.Ipv4.addr list Cache.t;
}

let make_cache () =
  {
    responses = Cache.create ~name:"dns.cache.response" ();
    glue = Cache.create ~size:1024 ~name:"dns.cache.glue" ();
  }

(* Follow a CNAME chain to the terminal A answer; a broken or cyclic
   chain yields no addresses (a resolver would SERVFAIL). *)
let rec chase db ~vantage domain depth =
  match Zone_db.answer_addrs db ~vantage domain with
  | None -> []
  | Some own -> (
      match Zone_db.cname_of db domain with
      | Some target when depth < max_cname_depth -> (
          Webdep_obs.Metrics.incr m_cname_chased;
          match chase db ~vantage target (depth + 1) with
          | [] -> own
          | addrs -> addrs)
      | Some _ -> []
      | None -> own)

let resolve ?cache db ~vantage domain =
  Webdep_obs.Metrics.incr m_lookups;
  let compute () =
    match Zone_db.domain_data db domain with
    | None ->
        Webdep_obs.Metrics.incr m_nxdomain;
        Error Nxdomain
    | Some (ns_hosts, _) ->
        let a = chase db ~vantage domain 0 in
        let glue_of host =
          match cache with
          | None -> Zone_db.host_addr db ~vantage host
          | Some c ->
              Cache.find_or_compute c.glue ~vantage host (fun () ->
                  Zone_db.host_addr db ~vantage host)
        in
        Ok { a; ns_hosts; ns_addrs = List.concat_map glue_of ns_hosts }
  in
  match cache with
  | None -> compute ()
  | Some c -> Cache.find_or_compute c.responses ~vantage domain compute

let resolve_a ?cache db ~vantage domain =
  match resolve ?cache db ~vantage domain with
  | Ok { a = addr :: _; _ } -> Some addr
  | Ok { a = []; _ } | Error Nxdomain -> None
