type response = {
  a : Webdep_netsim.Ipv4.addr list;
  ns_hosts : string list;
  ns_addrs : Webdep_netsim.Ipv4.addr list;
}

(* The canonical resolution error, shared by the flat and iterative
   resolvers.  Nxdomain is definitive (the name does not exist);
   everything else is transient and eligible for retry. *)
type error = Nxdomain | Timeout | Refused | Servfail of string

let error_message = function
  | Nxdomain -> "NXDOMAIN"
  | Timeout -> "query timed out"
  | Refused -> "REFUSED"
  | Servfail msg -> "SERVFAIL: " ^ msg

let retryable = function
  | Nxdomain -> false
  | Timeout | Refused | Servfail _ -> true

(* Definitive results (including NXDOMAIN) are safe to memoize;
   transient failures must not be, or a cached SERVFAIL would mask a
   later successful retry. *)
let cacheable = function Ok _ | Error Nxdomain -> true | Error _ -> false

let max_cname_depth = 5

(* Observability: lookup totals for the ZDNS-style flat resolver. *)
let m_lookups = Webdep_obs.Metrics.counter "dns.flat.lookups"
let m_nxdomain = Webdep_obs.Metrics.counter "dns.flat.nxdomain"
let m_cname_chased = Webdep_obs.Metrics.counter "dns.flat.cname_chased"

(* Sweep-scoped resolver cache.  The response memo holds full lookups;
   the glue memo holds per-nameserver-host addresses, which is where the
   reuse actually is: a handful of DNS providers serve thousands of
   sites, so their NS glue repeats on almost every lookup. *)
type cache = {
  responses : (response, error) result Cache.t;
  glue : Webdep_netsim.Ipv4.addr list Cache.t;
}

let make_cache () =
  {
    responses = Cache.create ~name:"dns.cache.response" ();
    glue = Cache.create ~size:1024 ~name:"dns.cache.glue" ();
  }

(* Follow a CNAME chain to the terminal A answer; a broken or cyclic
   chain yields no addresses (a resolver would SERVFAIL). *)
let rec chase db ~vantage domain depth =
  match Zone_db.answer_addrs db ~vantage domain with
  | None -> []
  | Some own -> (
      match Zone_db.cname_of db domain with
      | Some target when depth < max_cname_depth -> (
          Webdep_obs.Metrics.incr m_cname_chased;
          match chase db ~vantage target (depth + 1) with
          | [] -> own
          | addrs -> addrs)
      | Some _ -> []
      | None -> own)

module Faults = Webdep_faults.Fault_plan
module Retry = Webdep_faults.Retry

let resolve ?cache ?(faults = Faults.disabled) ?(retry = Retry.no_retry) db
    ~vantage domain =
  Webdep_obs.Metrics.incr m_lookups;
  let attempt_once ~attempt =
    match Faults.dns_fault faults ~vantage ~qname:domain ~attempt with
    | Faults.Fault Faults.Dns_timeout -> Error Timeout
    | Faults.Fault Faults.Dns_refused -> Error Refused
    | Faults.Fault _ ->
        Error (Servfail "injected: authoritative server failure")
    | Faults.No_fault -> (
        match Zone_db.domain_data db domain with
        | None ->
            Webdep_obs.Metrics.incr m_nxdomain;
            Error Nxdomain
        | Some (ns_hosts, _) ->
            let a = chase db ~vantage domain 0 in
            let glue_of host =
              match cache with
              | None -> Zone_db.host_addr db ~vantage host
              | Some c ->
                  Cache.find_or_compute c.glue ~vantage host (fun () ->
                      Zone_db.host_addr db ~vantage host)
            in
            Ok { a; ns_hosts; ns_addrs = List.concat_map glue_of ns_hosts })
  in
  let compute () =
    (* Fault-free, every error is a definitive Nxdomain (non-retryable),
       so Retry.run is the identity and never touches a counter — skip
       it and the per-lookup "vantage|domain" key allocation with it. *)
    if not (Faults.enabled faults) then attempt_once ~attempt:0
    else Retry.run retry ~key:(vantage ^ "|" ^ domain) ~retryable attempt_once
  in
  match cache with
  | None -> compute ()
  | Some c ->
      Cache.find_or_compute ~cache_if:cacheable c.responses ~vantage domain
        compute

let resolve_a ?cache ?faults ?retry db ~vantage domain =
  match resolve ?cache ?faults ?retry db ~vantage domain with
  | Ok { a = addr :: _; _ } -> Some addr
  | Ok { a = []; _ } | Error _ -> None
