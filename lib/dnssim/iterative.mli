(** Iterative resolution over the delegation {!Hierarchy} — ZDNS's
    iterative mode: start from the root hints, follow referrals, answer
    from the authoritative servers, and report how much work it took. *)

type stats = {
  queries : int;  (** total questions asked *)
  referrals : int;  (** delegations followed *)
}

type error = Nxdomain | Servfail of string

val m_queries : Webdep_obs.Metrics.counter
(** Total questions asked across every resolution this process ran. *)

val m_referrals : Webdep_obs.Metrics.counter
(** Total delegations followed. *)

val m_nxdomain : Webdep_obs.Metrics.counter
(** Resolutions that ended in NXDOMAIN. *)

val m_servfail : Webdep_obs.Metrics.counter
(** Resolutions that ended in SERVFAIL (lame delegation, referral loop,
    missing glue, over-long CNAME chain). *)

val m_depth : Webdep_obs.Metrics.histogram
(** Queries per {e successful} resolution — the pipeline's mean_queries
    comes from deltas of this histogram. *)

val resolve :
  Hierarchy.t -> vantage:string -> string -> (Webdep_netsim.Ipv4.addr list * stats, error) result
(** Resolve a qname's A records from scratch (no cache).  [Servfail]
    carries a reason (lame delegation, referral loop, missing glue). *)

val resolve_a :
  Hierarchy.t -> vantage:string -> string -> Webdep_netsim.Ipv4.addr option
(** First address, if resolution succeeds. *)
