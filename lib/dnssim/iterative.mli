(** Iterative resolution over the delegation {!Hierarchy} — ZDNS's
    iterative mode: start from the root hints, follow referrals, answer
    from the authoritative servers, and report how much work it took. *)

type stats = {
  queries : int;  (** total questions asked *)
  referrals : int;  (** delegations followed *)
}

type error = Resolver.error =
  | Nxdomain
  | Timeout
  | Refused
  | Servfail of string
(** Same canonical error as {!Resolver.error}: only [Nxdomain] is
    definitive; [Timeout] means every server in a delegation set lost
    the query (injected packet loss); [Servfail] carries a reason (lame
    delegation, referral loop, missing glue, over-long CNAME chain). *)

val m_queries : Webdep_obs.Metrics.counter
(** Total questions asked across every resolution this process ran. *)

val m_referrals : Webdep_obs.Metrics.counter
(** Total delegations followed. *)

val m_nxdomain : Webdep_obs.Metrics.counter
(** Resolutions that ended in NXDOMAIN. *)

val m_servfail : Webdep_obs.Metrics.counter
(** Resolutions that ended in SERVFAIL (lame delegation, referral loop,
    missing glue, over-long CNAME chain) or REFUSED. *)

val m_timeout : Webdep_obs.Metrics.counter
(** Resolutions where every server in a delegation set timed out. *)

val m_depth : Webdep_obs.Metrics.histogram
(** Queries per {e successful} resolution — the pipeline's mean_queries
    comes from deltas of this histogram. *)

type cache
(** Recursive-resolver memory: full results keyed [(vantage, qname)] and
    TLD zone cuts learned from root referrals keyed [(vantage, label)] —
    with a warm cut the walk starts at the TLD servers instead of the
    root.  Not thread-safe; create one per worker/sweep.  Hit/miss
    counters: [dns.cache.iterative.*] and [dns.cache.zone_cut.*]. *)

val make_cache : unit -> cache

val resolve :
  ?cache:cache ->
  ?faults:Webdep_faults.Fault_plan.t ->
  ?retry:Webdep_faults.Retry.policy ->
  Hierarchy.t -> vantage:string -> string -> (Webdep_netsim.Ipv4.addr list * stats, error) result
(** Resolve a qname's A records; without [?cache] every resolution walks
    from the root hints.  A result-cache hit reports zero queries and
    referrals (nothing was asked); transient errors are never memoized.
    [?faults] injects deterministic per-server packet loss and lame
    delegations — the walk fails over to the next server in the set,
    each extra question counted in {!m_queries}.  [?retry] re-runs the
    whole walk on transient failure; on success [stats] reflects the
    final attempt. *)

val resolve_a :
  ?cache:cache ->
  ?faults:Webdep_faults.Fault_plan.t ->
  ?retry:Webdep_faults.Retry.policy ->
  Hierarchy.t -> vantage:string -> string -> Webdep_netsim.Ipv4.addr option
(** First address, if resolution succeeds. *)
