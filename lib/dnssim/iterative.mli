(** Iterative resolution over the delegation {!Hierarchy} — ZDNS's
    iterative mode: start from the root hints, follow referrals, answer
    from the authoritative servers, and report how much work it took. *)

type stats = {
  queries : int;  (** total questions asked *)
  referrals : int;  (** delegations followed *)
}

type error = Nxdomain | Servfail of string

val resolve :
  Hierarchy.t -> vantage:string -> string -> (Webdep_netsim.Ipv4.addr list * stats, error) result
(** Resolve a qname's A records from scratch (no cache).  [Servfail]
    carries a reason (lame delegation, referral loop, missing glue). *)

val resolve_a :
  Hierarchy.t -> vantage:string -> string -> Webdep_netsim.Ipv4.addr option
(** First address, if resolution succeeds. *)
