type owner = { name : string; country : string }

type t = {
  owners : (string, owner) Hashtbl.t;
  issuers : (string, owner) Hashtbl.t;
}

let create () = { owners = Hashtbl.create 64; issuers = Hashtbl.create 256 }

let register_owner t ~name ~country =
  match Hashtbl.find_opt t.owners name with
  | Some o -> o
  | None ->
      let o = { name; country } in
      Hashtbl.replace t.owners name o;
      o

let register_issuer t ~issuer_cn owner = Hashtbl.replace t.issuers issuer_cn owner

let owner_of_issuer t issuer_cn = Hashtbl.find_opt t.issuers issuer_cn
let owner_by_name t name = Hashtbl.find_opt t.owners name
let owner_count t = Hashtbl.length t.owners
let issuer_count t = Hashtbl.length t.issuers
let owners t = Hashtbl.fold (fun _ o acc -> o :: acc) t.owners []
