type t = { subject : string; issuer_cn : string; not_before : int; not_after : int }

let valid_at t day = day >= t.not_before && day <= t.not_after

let covers t host =
  if String.equal t.subject host then true
  else if String.length t.subject > 2 && String.sub t.subject 0 2 = "*." then begin
    (* "*.example.com" covers exactly one extra label. *)
    let base = String.sub t.subject 2 (String.length t.subject - 2) in
    match String.index_opt host '.' with
    | Some i -> String.equal (String.sub host (i + 1) (String.length host - i - 1)) base
    | None -> false
  end
  else false
