(** TLS handshake simulation — the ZGrab2 substrate.

    A certificate store maps (address, SNI) to the leaf certificate the
    server would present.  Certificates are installed per site; the same
    site served from several addresses (CDN POPs) presents the same
    leaf. *)

type t

val create : unit -> t

val install : t -> domain:string -> Cert.t -> unit
(** Install the leaf presented for [domain] (any serving address). *)

val handshake :
  ?faults:Webdep_faults.Fault_plan.t ->
  ?attempt:int ->
  t ->
  addr:Webdep_netsim.Ipv4.addr ->
  sni:string ->
  Cert.t option
(** Attempt a TLS handshake with SNI; [None] models no TLS on that name.
    The address is accepted opaquely — content and certificate follow the
    SNI, as on a multi-tenant CDN.  [?faults] (default: none) may
    truncate or reject the handshake for this [sni] at this [attempt]
    (default 0); the caller retries by re-invoking with a higher
    attempt number. *)

val cert_count : t -> int
