(** Browser root-program membership.

    CCADB describes the CAs browsers actually trust; a certificate
    chaining to an owner outside the root programs is rejected no matter
    who operates it — the fate of Russia's state-sponsored root CA of
    2022 (§7.2: "the root certificate was never accepted by major web
    browsers").  The measurement pipeline only labels a site's CA when
    the owner is in the store. *)

type t

val create : ?distrusted:string list -> unit -> t
(** A store trusting every owner except those listed.  The default
    distrust list contains the state CA the paper discusses
    ("Russian Trusted Root CA"). *)

val default_distrusted : string list

val is_trusted : t -> string -> bool
(** Whether a CA owner name is in the root programs. *)

val distrust : t -> string -> unit
(** Remove an owner from the root programs (e.g. the TrustCor-style
    distrust events the CCADB reflects). *)
