type t = { distrusted : (string, unit) Hashtbl.t }

let default_distrusted = [ "Russian Trusted Root CA" ]

let create ?(distrusted = default_distrusted) () =
  let tbl = Hashtbl.create 8 in
  List.iter (fun name -> Hashtbl.replace tbl name ()) distrusted;
  { distrusted = tbl }

let is_trusted t name = not (Hashtbl.mem t.distrusted name)
let distrust t name = Hashtbl.replace t.distrusted name ()
