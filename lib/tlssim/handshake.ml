type t = { by_domain : (string, Cert.t) Hashtbl.t }

let create () = { by_domain = Hashtbl.create 65536 }

let install t ~domain cert = Hashtbl.replace t.by_domain domain cert

let handshake ?(faults = Webdep_faults.Fault_plan.disabled) ?(attempt = 0) t
    ~addr:_ ~sni =
  match Webdep_faults.Fault_plan.tls_fault faults ~sni ~attempt with
  | Webdep_faults.Fault_plan.Fault _ ->
      (* Truncated or rejected mid-flight: no certificate observed. *)
      None
  | Webdep_faults.Fault_plan.No_fault -> (
      match Hashtbl.find_opt t.by_domain sni with
      | Some cert when Cert.covers cert sni -> Some cert
      | Some _ | None -> None)

let cert_count t = Hashtbl.length t.by_domain
