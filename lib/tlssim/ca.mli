(** Certificate authorities and the CCADB-style ownership database.

    The paper labels each leaf certificate with its "CA Owner" from the
    Common CA Database, per Ma et al. — multiple issuing intermediates
    roll up to one owning organization.  We model that two-level
    structure: issuers (intermediate CNs) map to owners. *)

type owner = {
  name : string;  (** e.g. "Let's Encrypt" *)
  country : string;  (** ISO alpha-2 of the owning organization *)
}

type t

val create : unit -> t

val register_owner : t -> name:string -> country:string -> owner
(** Idempotent by name. *)

val register_issuer : t -> issuer_cn:string -> owner -> unit
(** Map an issuing intermediate's CN to its owner. *)

val owner_of_issuer : t -> string -> owner option
(** The CCADB lookup the pipeline performs on each leaf's issuer. *)

val owner_by_name : t -> string -> owner option
val owner_count : t -> int
val issuer_count : t -> int
val owners : t -> owner list
