(** X.509 leaf certificates, reduced to the fields the pipeline parses
    from a ZGrab2 handshake: subject, issuer CN, and validity. *)

type t = {
  subject : string;  (** the site's domain *)
  issuer_cn : string;  (** issuing intermediate's common name *)
  not_before : int;  (** days since epoch of the simulation clock *)
  not_after : int;
}

val valid_at : t -> int -> bool
(** [valid_at cert day]. *)

val covers : t -> string -> bool
(** Whether the certificate's subject matches a hostname (exact or a
    one-label wildcard). *)
