(** Process-wide parallelism configuration and convenience fan-outs.

    One shared {!Pool.t} serves every phase of the toolkit (measurement
    sweeps, bootstrap resampling, bench phases), spawned lazily the
    first time a parallel combinator runs and reused afterwards.  The
    lane count comes from [--jobs] via {!set_jobs} and defaults to
    [Domain.recommended_domain_count ()]; [set_jobs 1] restores the
    exact sequential execution path (no domains are ever spawned).

    All combinators preserve input order, so a parallel run returns
    bit-identical results to [jobs = 1] whenever the mapped function is
    pure with respect to scheduling. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val jobs : unit -> int
(** The currently configured lane count (default {!default_jobs}). *)

val set_jobs : int -> unit
(** Configure the shared pool's lane count.  An existing shared pool of
    a different size is shut down; the next combinator respawns it
    lazily.  @raise Invalid_argument if the argument is [< 1]. *)

val pool : unit -> Pool.t
(** The shared pool, spawned on first use with {!jobs} lanes. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] is [List.map f xs] on the shared pool ([?jobs] overrides
    the configured lane count for this call, using a temporary pool when
    it differs from the shared one).  Results are in input order. *)

val map_array : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Array analogue of {!map}. *)

val parallel_for : ?jobs:int -> n:int -> (int -> unit) -> unit
(** [parallel_for ~n f] runs [f 0 .. f (n-1)] across the pool. *)

val map_fold :
  ?jobs:int ->
  ?window:int ->
  ('a -> 'b) ->
  init:'acc ->
  fold:('acc -> 'b -> 'acc) ->
  'a list ->
  'acc
(** [map_fold f ~init ~fold xs] maps [f] over [xs] on the pool and folds
    the results on the calling domain, in input order, window by window:
    at most [window] (default: twice the lane count, floor 8) mapped
    results are ever live, so the peak heap of a large fan-out stays
    bounded by the window instead of the input.  Equivalent to
    [List.fold_left fold init (List.map f xs)] whenever [f] is pure with
    respect to scheduling; [fold] itself always runs sequentially. *)

val shutdown : unit -> unit
(** Shut down the shared pool (it respawns on next use).  Mostly for
    tests and orderly exits. *)
