(* Fixed-size domain pool.

   Workers block on a condition variable between runs.  A run installs a
   [step] closure that drains a shared chunk queue (an [Atomic.t] cursor
   over precomputed chunk bounds); every lane — the workers and the
   calling domain — calls [step] until the queue is empty, then the
   caller waits for the stragglers.  Because each chunk writes into a
   slot indexed by its input position, the assembled result is
   independent of which lane processed which chunk.

   Re-entrancy: a domain-local flag marks "currently inside a pool
   task"; combinators called with the flag set run sequentially, so a
   nested [map] cannot deadlock the (single-run-at-a-time) pool. *)

type t = {
  jobs : int;
  lock : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable step : (unit -> unit) option;  (* current run's chunk drainer *)
  mutable generation : int;  (* bumped once per run; workers wait on it *)
  mutable remaining : int;  (* workers yet to finish the current run *)
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let in_task : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

let jobs t = t.jobs

let rec worker t last_gen =
  Mutex.lock t.lock;
  while (not t.stop) && t.generation = last_gen do
    Condition.wait t.work_ready t.lock
  done;
  if t.stop then Mutex.unlock t.lock
  else begin
    let gen = t.generation in
    let step = match t.step with Some s -> s | None -> fun () -> () in
    Mutex.unlock t.lock;
    (* User exceptions are captured inside [step] (per chunk); anything
       escaping here would kill the domain, so swallow defensively. *)
    (try step () with _ -> ());
    Mutex.lock t.lock;
    t.remaining <- t.remaining - 1;
    if t.remaining = 0 then Condition.broadcast t.work_done;
    Mutex.unlock t.lock;
    worker t gen
  end

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      lock = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      step = None;
      generation = 0;
      remaining = 0;
      stop = false;
      domains = [];
    }
  in
  t.domains <-
    List.init (jobs - 1) (fun i ->
        Domain.spawn (fun () ->
            (* Stable lane ids 1..jobs-1 (0 = the calling domain) so
               trace exports get one track per pool lane instead of
               ever-growing raw domain ids across pool restarts. *)
            Webdep_obs.Span.set_lane (i + 1);
            worker t 0));
  t

let shutdown t =
  if t.domains <> [] then begin
    Mutex.lock t.lock;
    t.stop <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.lock;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  match f t with
  | v ->
      shutdown t;
      v
  | exception e ->
      shutdown t;
      raise e

(* Run [step] on every lane and wait until all lanes are done.  [step]
   must be safe to call concurrently from several domains and must
   return once the shared queue is drained. *)
let run t step =
  let flag = Domain.DLS.get in_task in
  if t.jobs = 1 || !flag || t.domains = [] then step ()
  else begin
    let stepped () =
      let fl = Domain.DLS.get in_task in
      fl := true;
      Fun.protect ~finally:(fun () -> fl := false) step
    in
    Mutex.lock t.lock;
    t.step <- Some stepped;
    t.generation <- t.generation + 1;
    t.remaining <- t.jobs - 1;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.lock;
    stepped ();
    Mutex.lock t.lock;
    while t.remaining > 0 do
      Condition.wait t.work_done t.lock
    done;
    t.step <- None;
    Mutex.unlock t.lock
  end

(* Chunk size: oversubscribe each lane ~4x so uneven per-item cost (some
   countries are slower than others) still balances. *)
let chunk_size t n = max 1 (n / (t.jobs * 4))

(* Remember the raised exception with the lowest chunk index seen, so the
   error surfaced to the caller is stable across schedules. *)
let rec record_exn cell i e =
  match Atomic.get cell with
  | Some (j, _) when j <= i -> ()
  | cur -> if not (Atomic.compare_and_set cell cur (Some (i, e))) then record_exn cell i e

let map_array t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if t.jobs = 1 || n = 1 then Array.map f arr
  else begin
    let chunk = chunk_size t n in
    let nchunks = (n + chunk - 1) / chunk in
    let slots = Array.make nchunks [||] in
    let cursor = Atomic.make 0 in
    let first_exn = Atomic.make None in
    let step () =
      let rec drain () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < nchunks then begin
          if Atomic.get first_exn = None then begin
            let lo = i * chunk in
            let len = min n (lo + chunk) - lo in
            (try slots.(i) <- Array.init len (fun j -> f arr.(lo + j))
             with e -> record_exn first_exn i e)
          end;
          drain ()
        end
      in
      drain ()
    in
    run t step;
    (match Atomic.get first_exn with Some (_, e) -> raise e | None -> ());
    Array.concat (Array.to_list slots)
  end

let map t f xs = Array.to_list (map_array t f (Array.of_list xs))

let parallel_for t ~n f =
  if n > 0 then
    if t.jobs = 1 || n = 1 then
      for i = 0 to n - 1 do
        f i
      done
    else begin
      let chunk = chunk_size t n in
      let nchunks = (n + chunk - 1) / chunk in
      let cursor = Atomic.make 0 in
      let first_exn = Atomic.make None in
      let step () =
        let rec drain () =
          let i = Atomic.fetch_and_add cursor 1 in
          if i < nchunks then begin
            if Atomic.get first_exn = None then begin
              let lo = i * chunk in
              let hi = min n (lo + chunk) - 1 in
              try
                for j = lo to hi do
                  f j
                done
              with e -> record_exn first_exn i e
            end;
            drain ()
          end
        in
        drain ()
      in
      run t step;
      match Atomic.get first_exn with Some (_, e) -> raise e | None -> ()
    end
