(** A fixed-size pool of worker domains with deterministic fan-out.

    The pool is spawned once ([jobs - 1] worker domains plus the calling
    domain, which participates in every run) and reused across phases, so
    repeated parallel sweeps pay the domain-spawn cost only once.  All
    combinators hand out work in fixed-size chunks through an atomic
    cursor and write results back into slots indexed by input position,
    so the output is bit-identical to the sequential path regardless of
    how chunks land on domains.

    Restrictions: a pool must be driven from one domain at a time.  A
    task that re-enters the pool (nested [map] from inside a worker) is
    detected and run sequentially on the calling domain, so nesting is
    safe but not parallel. *)

type t

val create : jobs:int -> t
(** Spawn a pool of [jobs] lanes ([jobs - 1] worker domains).  [jobs = 1]
    spawns no domains and every combinator degenerates to the plain
    sequential loop.  @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int
(** The lane count the pool was created with. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] is [List.map f xs], computed on the pool.  Results
    are collected in input order.  The first exception raised by [f]
    (in input chunk order) is re-raised in the caller. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** Array analogue of {!map}; same ordering and exception guarantees. *)

val parallel_for : t -> n:int -> (int -> unit) -> unit
(** [parallel_for pool ~n f] runs [f 0 .. f (n-1)], chunked across the
    pool.  Iterations must not depend on each other. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent; the pool must not be
    used afterwards. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** Create a temporary pool, run the function, and shut the pool down
    (also on exceptions). *)
