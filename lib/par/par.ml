(* Shared-pool front end.

   The pool is process-global so the CLI/bench [--jobs] flag reaches
   every library phase without plumbing a pool through each signature,
   and so domains are spawned once per process rather than once per
   phase.  [set_jobs]/[pool] are guarded by a mutex; the combinators
   themselves delegate to [Pool], which is single-driver by design. *)

let default_jobs () = Domain.recommended_domain_count ()

let lock = Mutex.create ()
let requested : int option ref = ref None
let shared : Pool.t option ref = ref None

let jobs () = match !requested with Some j -> j | None -> default_jobs ()

let shutdown () =
  Mutex.protect lock (fun () ->
      match !shared with
      | None -> ()
      | Some p ->
          shared := None;
          Pool.shutdown p)

let set_jobs j =
  if j < 1 then invalid_arg "Par.set_jobs: jobs must be >= 1";
  Mutex.protect lock (fun () ->
      if jobs () <> j then begin
        (match !shared with Some p -> Pool.shutdown p | None -> ());
        shared := None
      end;
      requested := Some j)

let pool () =
  Mutex.protect lock (fun () ->
      match !shared with
      | Some p -> p
      | None ->
          let p = Pool.create ~jobs:(jobs ()) in
          shared := Some p;
          p)

(* [?jobs] overriding the configured count gets a temporary pool; the
   matching count (and the common [None]) reuses the shared one. *)
let with_pool ?jobs:j f =
  match j with
  | None -> f (pool ())
  | Some j when j = jobs () -> f (pool ())
  | Some j -> Pool.with_pool ~jobs:j f

let map ?jobs f xs = with_pool ?jobs (fun p -> Pool.map p f xs)
let map_array ?jobs f arr = with_pool ?jobs (fun p -> Pool.map_array p f arr)
let parallel_for ?jobs ~n f = with_pool ?jobs (fun p -> Pool.parallel_for p ~n f)

(* Streaming fan-out: map a window of items on the pool, fold that
   window's results on the calling domain in input order, drop them,
   advance.  The fold sees results in exactly the input order at any
   lane count, and at most [window] mapped results are live at once —
   which is what keeps a full-scale measurement sweep's peak heap
   bounded by a window of countries instead of the whole world.  The
   window defaults to a couple of results per lane: enough slack that
   uneven per-item cost still balances, small enough that the live set
   stays a fraction of the input. *)
let map_fold ?jobs ?window f ~init ~fold xs =
  with_pool ?jobs (fun p ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let window =
        match window with Some w -> max 1 w | None -> max 8 (2 * Pool.jobs p)
      in
      let acc = ref init in
      let i = ref 0 in
      while !i < n do
        let len = min window (n - !i) in
        let results = Pool.map_array p f (Array.sub arr !i len) in
        for j = 0 to len - 1 do
          acc := fold !acc results.(j)
        done;
        i := !i + len
      done;
      !acc)
