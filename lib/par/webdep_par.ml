(* Library entry point: the global-pool combinators at the top level
   ([Webdep_par.map], [Webdep_par.set_jobs], ...) with the raw pool
   available as [Webdep_par.Pool] for callers that want private lanes. *)

module Pool = Pool
include Par
