(** Content-language assignment for generated websites.

    The paper's §5.3.3 uses LangDetect to explain Afghanistan's reliance
    on Iranian providers: 31.4% of Afghan top sites are in Persian, and
    60.8% of those are hosted in Iran.  The generator therefore assigns
    each site a content language correlated with the site's hosting
    provider's home country, anchored so the Afghan numbers reproduce. *)

val primary : string -> string
(** Primary content language of a country's web (ISO 639-1-ish code):
    "fa" for IR, "ps" for AF, "de" for DE/AT, "ru" for RU, … defaults to
    "en" for countries without a specific entry. *)

val assign : cc:string -> provider_home:string -> domain:string -> string
(** Deterministic language for a site in country [cc] hosted by a
    provider based in [provider_home].  Most sites carry the country's
    primary language, a fraction are English, and sites hosted by a
    foreign partner lean toward the partner's language (the AF→IR case
    is anchored to the paper's percentages). *)
