(** Canonical provider rosters.

    Global providers are named after the paper's anchors (Cloudflare,
    Amazon, OVH, NSONE, Let's Encrypt, Asseco, …) and padded with
    synthetic-but-stable names to the class counts of Tables 1–3.
    Regional providers are minted deterministically per home country with
    a few real anchors (Beget LLC → RU, SuperHosting.BG → BG, UAB → LT,
    Forthnet → GR), so the same identity appears wherever that country's
    providers are used — which is what makes cross-border usage curves
    (Figure 4) and endemicity meaningful. *)

val cloudflare : Provider.t
val amazon : Provider.t

val hosting_global : Provider.t list
(** Ordered global hosting roster after the two XL-GPs: 6 L-GP,
    2 L-GP (R) (OVH → FR, Hetzner → DE), 22 M-GP, 73 S-GP. *)

val dns_global : Provider.t list
(** Ordered global DNS roster after the XL-GPs: 10 L-GP (NSONE, Neustar
    UltraDNS, …), 2 L-GP (R), 17 M-GP, 78 S-GP. *)

val regional : layer:string -> string -> int -> Provider.t
(** [regional ~layer cc i] is the canonical [i]-th regional provider of
    country [cc] for ["hosting"] or ["dns"], 0 being the country's
    largest.  Deterministic; anchors apply at [i = 0]. *)

(** {1 Certificate authorities} *)

val ca_global7 : Provider.t list
(** Let's Encrypt, DigiCert, Sectigo, Google Trust Services, Amazon Trust
    Services, GlobalSign, GoDaddy — the seven L-GP CAs (~98% of the
    web). *)

val ca_medium : Provider.t list
(** The two M-GP CAs (Entrust, IdenTrust). *)

val ca_regional : string -> Provider.t option
(** The home CA of a country, for the ~24 countries that have one
    (Asseco → PL, TWCA → TW, SECOM → JP, …). *)

val ca_regional_countries : string list
(** Countries owning a regional CA. *)

val asseco : Provider.t
(** The Polish CA used regionally in PL, IR and AF (§7.2). *)

val russian_state_ca : Provider.t
(** The state-sponsored root CA of §7.2 — used by a sliver of Russian
    sites, trusted by no browser, so the pipeline cannot label it. *)

val ca_xsmall : Provider.t list
(** The ~15 extra-small CAs rounding the world total to 45 (Table 3's
    XS-RP class). *)

(** {1 TLDs} *)

val tld : string -> Provider.t
(** TLD as a provider: ".com"/".net"/".org"/other global TLDs → US-based
    registries; ccTLDs → their country (".uk" → GB). *)

val global_tlds : Provider.t list
(** Non-com global TLDs in canonical order (.org, .net, .io, …). *)

val gtld_tail : Provider.t list
(** A long tail of real generic TLDs for tail buckets of the TLD layer. *)
