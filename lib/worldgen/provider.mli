(** A provider identity as the paper's analysis sees it: an organization
    name plus the country the organization is based in.  The same type
    serves all four layers — for the TLD layer the "provider" is the TLD
    string and its operating country (".com" → US, ccTLDs → their
    country). *)

type t = { name : string; home : string }

val make : name:string -> home:string -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val slug : t -> string
(** Lowercased, DNS-safe label derived from the name, used to mint
    nameserver hostnames ("ns1.<slug>.sim"). *)
