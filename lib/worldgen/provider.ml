type t = { name : string; home : string }

let make ~name ~home = { name; home }
let equal a b = String.equal a.name b.name && String.equal a.home b.home
let compare a b =
  match String.compare a.name b.name with 0 -> String.compare a.home b.home | c -> c

let pp fmt t = Format.fprintf fmt "%s [%s]" t.name t.home

let slug t =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | '0' .. '9' -> c
      | 'A' .. 'Z' -> Char.lowercase_ascii c
      | _ -> '-')
    t.name
