let table =
  [ ("AF", "ps"); ("IR", "fa"); ("TJ", "tg");
    ("DE", "de"); ("AT", "de"); ("CH", "de"); ("LU", "de");
    ("FR", "fr"); ("BE", "fr"); ("RE", "fr"); ("GP", "fr"); ("MQ", "fr"); ("HT", "fr");
    ("BF", "fr"); ("CI", "fr"); ("ML", "fr"); ("SN", "fr"); ("TG", "fr"); ("BJ", "fr");
    ("CM", "fr"); ("CD", "fr"); ("GA", "fr"); ("MG", "fr"); ("DZ", "ar"); ("TN", "ar");
    ("MA", "ar"); ("EG", "ar"); ("LY", "ar"); ("SD", "ar"); ("SY", "ar"); ("IQ", "ar");
    ("SA", "ar"); ("YE", "ar"); ("OM", "ar"); ("AE", "ar"); ("QA", "ar"); ("BH", "ar");
    ("KW", "ar"); ("JO", "ar"); ("LB", "ar"); ("PS", "ar");
    ("RU", "ru"); ("BY", "ru"); ("KZ", "ru"); ("KG", "ru"); ("TM", "ru"); ("UZ", "ru");
    ("UA", "uk"); ("MD", "ro"); ("RO", "ro");
    ("ES", "es"); ("MX", "es"); ("AR", "es"); ("CO", "es"); ("CL", "es"); ("PE", "es");
    ("VE", "es"); ("EC", "es"); ("BO", "es"); ("PY", "es"); ("UY", "es"); ("CU", "es");
    ("DO", "es"); ("GT", "es"); ("HN", "es"); ("NI", "es"); ("CR", "es"); ("PA", "es");
    ("SV", "es"); ("PR", "es");
    ("PT", "pt"); ("BR", "pt"); ("AO", "pt"); ("MZ", "pt");
    ("IT", "it"); ("GR", "el"); ("TR", "tr"); ("PL", "pl"); ("CZ", "cs"); ("SK", "sk");
    ("HU", "hu"); ("BG", "bg"); ("RS", "sr"); ("HR", "hr"); ("SI", "sl"); ("BA", "bs");
    ("MK", "mk"); ("ME", "sr"); ("AL", "sq"); ("LT", "lt"); ("LV", "lv"); ("EE", "et");
    ("FI", "fi"); ("SE", "sv"); ("NO", "no"); ("DK", "da"); ("IS", "is"); ("NL", "nl");
    ("JP", "ja"); ("KR", "ko"); ("TW", "zh"); ("HK", "zh"); ("MO", "zh"); ("MN", "mn");
    ("VN", "vi"); ("TH", "th"); ("ID", "id"); ("MY", "ms"); ("BN", "ms"); ("KH", "km");
    ("LA", "lo"); ("MM", "my"); ("PH", "tl"); ("IN", "hi"); ("PK", "ur"); ("BD", "bn");
    ("LK", "si"); ("NP", "ne"); ("MV", "dv"); ("IL", "he"); ("GE", "ka"); ("AM", "hy");
    ("AZ", "az"); ("ET", "am"); ("SO", "so"); ]

let primary cc = Option.value ~default:"en" (List.assoc_opt cc table)

let hash s seed =
  let h = ref seed in
  String.iter (fun c -> h := (!h * 131) + Char.code c) s;
  abs !h mod 1000

let assign ~cc ~provider_home ~domain =
  let roll = hash domain 71 in
  match cc with
  | "AF" ->
      (* Anchored to §5.3.3: 31.4% of Afghan sites in Persian, 60.8% of
         the Persian ones hosted in Iran: with ~20% of all sites on
         Iranian providers, IR-hosted sites are Persian and ~15% of the
         rest are too. *)
      if provider_home = "IR" then "fa"
      else if roll < 150 then "fa"
      else if roll < 850 then "ps"
      else "en"
  | _ ->
      if provider_home <> cc && provider_home <> "US" && roll < 400 then
        (* Foreign-partner-hosted sites lean toward the partner's
           language (German sites in Austria, Czech sites in Slovakia). *)
        primary provider_home
      else if roll < 800 then primary cc
      else "en"
