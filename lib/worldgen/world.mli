(** The assembled synthetic web.

    A world fixes a seed, a per-country toplist size [c], and a
    geolocation accuracy, and exposes:

    - per-country, per-layer provider {!Mix.t}s, calibrated to the
      paper's Appendix-F scores (cached);
    - a shared simulated {!Webdep_netsim.Internet.t} in which every
      hosting/DNS provider owns a network;
    - a shared CCADB-style CA database;
    - per-country {!snapshot}s: the CrUX-style toplist plus the
      authoritative DNS zones and TLS certificate store for that
      country's sites, built on demand so memory stays bounded by one
      country.

    Two epochs are supported for the §5.4 longitudinal experiment: the
    May-2025 world re-derives hosting targets (Brazil and Russia anchored,
    Cloudflare +3.8 pts on average, small jitter elsewhere) and evolves
    each toplist with a ~0.37 Jaccard churn. *)

type epoch = May_2023 | May_2025

val epoch_name : epoch -> string

type t

val create : ?c:int -> ?geo_accuracy:float -> seed:int -> unit -> t
(** [c] defaults to 10 000 (the paper's per-country cut); [geo_accuracy]
    defaults to 0.894 (NetAcuity's measured country-level accuracy). *)

val c : t -> int
val seed : t -> int

val geo_accuracy : t -> float
(** The accuracy the world was created with — part of the measurement
    store's invalidation fingerprint. *)

val countries : t -> string list
(** The 150 dataset countries, by code. *)

val internet : t -> Webdep_netsim.Internet.t
val ca_db : t -> Webdep_tlssim.Ca.t

val mix : t -> ?epoch:epoch -> Profiles.layer -> string -> Mix.t
(** Cached calibrated mix for a country and layer. *)

type snapshot = {
  country : string;
  epoch : epoch;
  toplist : Webdep_crux.Toplist.t;
  zones : Webdep_dnssim.Zone_db.t;
  tls : Webdep_tlssim.Handshake.t;
  assigned : (string, Provider.t * Provider.t * Provider.t) Hashtbl.t;
      (** ground truth per domain: hosting, dns, ca — for validation
          tests; the pipeline must recover these through measurement *)
  content_language : (string, string) Hashtbl.t;
      (** per-domain content language (what a fetch of the page would
          let LangDetect classify), correlated with the hosting
          provider's home country per {!Language} *)
}

val prepare : t -> ?epoch:epoch -> string list -> unit
(** Perform, in canonical sequential order, every shared-state mutation
    the given countries' snapshots would trigger: network registration
    (ASN and prefix allocation, geolocation-error draws) and CA issuer
    registration.  After [prepare], {!snapshot} for those countries
    touches shared state read-only, so snapshots may be taken
    concurrently from several domains — and, because the registration
    order is fixed here rather than by measurement scheduling, the
    resulting worlds are bit-identical to a fully sequential run.
    Idempotent per (epoch, country); safe to call repeatedly. *)

val toplist : t -> ?epoch:epoch -> string -> Webdep_crux.Toplist.t
(** The country's toplist exactly as its {!snapshot} would carry it,
    derived without materializing zones, certificates or network
    registrations — cheap enough to ask "which sites would this sweep
    measure?" before deciding whether a snapshot is needed at all.
    @raise Invalid_argument like {!snapshot}. *)

val snapshot : t -> ?epoch:epoch -> string -> snapshot
(** Materialize one country's measurable state.  Deterministic in
    (seed, country, epoch); not cached — drop the reference when done.
    Thread-safe once {!prepare} has covered the country (and correct —
    merely order-sensitive in prefix allocation — even when it hasn't).
    @raise Invalid_argument for a code outside the dataset's 150
    countries — a caller bug, not a measurement failure. *)

val multi_cdn_fraction : float
(** Fraction of sites served by a secondary provider from some vantages
    (made-for §3.4: keeps probe-measured scores close to, but not
    identical to, home-vantage scores). *)
