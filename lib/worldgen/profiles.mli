(** Per-country generation targets.

    Targets come from three sources, in priority order: the paper's
    explicit anecdotes (e.g. Thailand's top provider at 60%, Turkmenistan
    33% on Russian providers), per-subregion heuristics consistent with
    the paper's qualitative findings (Europe insular, Africa not, CIS on
    Russia), and a fitted default.  The default top-share model
    [p₁ ≈ 1.17·√𝒮 − 0.098] is the least-squares line through the paper's
    three (𝒮, top-share) hosting anchors. *)

type layer = Webdep_reference.Paper_scores.layer = Hosting | Dns | Ca | Tld

val target_score : layer -> string -> float
(** The paper's Appendix F score — the calibration target.
    @raise Not_found for codes outside the 150. *)

val top_share : layer -> string -> float
(** Desired market share of the country's largest provider in the layer. *)

val top_provider : layer -> string -> Provider.t
(** Identity of the largest provider: Cloudflare everywhere except Japan
    (Amazon) for hosting/DNS; Let's Encrypt or DigiCert for CA; ".com" or
    the local ccTLD for TLD. *)

val home_quota : layer -> string -> float
(** Fraction of websites to place on providers based in the country
    itself (excluding whatever global providers happen to be homed
    there). *)

val partners : layer -> string -> (string * float) list
(** Cross-border dependencies: (partner country, fraction of websites on
    that country's regional providers).  Encodes the paper's §5.3.3 case
    studies (CIS→RU, francophone→FR, SK→CZ, AT→DE, AF→IR) plus small
    continental defaults. *)

val n_providers : layer -> string -> int
(** Number of distinct providers in the country's distribution.  Anchored
    for TH (328), IR (444), US (834); deterministic pseudo-random in a
    realistic band otherwise; small for CA (≤ 30) and TLD (≤ ~160). *)

val ca_global_share : string -> float
(** Share of websites on the 7 large global CAs (80%–99.7%, per §7.1). *)

val second_share_anchor : layer -> string -> float option
(** Share of the second-largest provider where the paper names it
    (SuperHosting.BG 22%, UAB 22%, Asseco 19%, TWCA 17%, SECOM 14%). *)

type second_provider = Second_home | Second_partner of string

val second_provider : layer -> string -> second_provider option
(** Identity category of the anchored second bucket. *)

val digicert_first : string list
(** Countries whose CA mix leads with DigiCert rather than Let's
    Encrypt. *)

val cctld_primary : string list
(** Countries whose most-used TLD is their own ccTLD rather than .com. *)
