(** Per-country, per-layer provider mixes.

    A mix marries a calibrated count vector ({!Calibrate}) with provider
    identities: the top bucket goes to the layer's dominant provider
    (Cloudflare — Amazon in Japan; Let's Encrypt / DigiCert for CA; .com
    or the local ccTLD for TLD), and the remaining buckets are walked in
    descending size, each assigned to the identity category — global
    roster, home-country providers, a partner country's providers, or the
    world tail — with the largest remaining site quota.  Quotas implement
    the paper's regionalization findings (insularity anchors, CIS→RU,
    SK→CZ, francophone→FR, …). *)

type overrides = {
  target : float option;  (** replace the Appendix-F 𝒮 target *)
  top_share : float option;  (** replace the top provider's share *)
  home_quota : float option;  (** replace the home-provider quota *)
}

val no_overrides : overrides

type t = {
  country : string;
  layer : Profiles.layer;
  assignments : (Provider.t * int) list;  (** descending count; sums to [c] *)
  achieved_score : float;  (** 𝒮 of the counts *)
}

val build : ?c:int -> ?overrides:overrides -> Profiles.layer -> string -> t
(** [build layer cc] with [c] websites (default 10 000).
    @raise Not_found if [cc] is not one of the 150 countries. *)

val total : t -> int
val provider_count : t -> int
val share : t -> Provider.t -> float
val insular_share : t -> float
(** Fraction of websites on providers homed in the country itself. *)
