type overrides = {
  target : float option;
  top_share : float option;
  home_quota : float option;
}

let no_overrides = { target = None; top_share = None; home_quota = None }

type t = {
  country : string;
  layer : Profiles.layer;
  assignments : (Provider.t * int) list;
  achieved_score : float;
}

(* Identity categories for the bucket walk. *)
type category = Global | Home | Partner of string | World_tail

module Pset = Set.Make (Provider)

let hash cc seed =
  let h = ref seed in
  String.iter (fun ch -> h := (!h * 131) + Char.code ch) cc;
  abs !h

let rotate n xs =
  let len = List.length xs in
  if len = 0 then xs
  else
    let n = n mod len in
    let rec split i acc = function
      | rest when i = 0 -> rest @ List.rev acc
      | x :: rest -> split (i - 1) (x :: acc) rest
      | [] -> List.rev acc
    in
    split n [] xs

let all_country_codes =
  List.map (fun c -> c.Webdep_geo.Country.code) Webdep_geo.Country.all

(* Ordered global roster for a layer, seen from one country: the XL pair
   first, then large / medium / small segments with a per-country rotation
   of the mid-tiers so different countries emphasize different mid-size
   globals. *)
let global_roster layer cc =
  match (layer : Profiles.layer) with
  | Hosting | Dns ->
      let pool =
        match layer with Hosting -> Registry.hosting_global | _ -> Registry.dns_global
      in
      let large, rest =
        (* 6 L-GP + 2 L-GP (R) for hosting; 10 + 2 for DNS. *)
        let n_large = match layer with Hosting -> 8 | _ -> 12 in
        (List.filteri (fun i _ -> i < n_large) pool, List.filteri (fun i _ -> i >= n_large) pool)
      in
      (* OVH and Hetzner are the L-GP (R) pair: global but European-
         concentrated, so they lead the large segment in Europe and sink
         to the back of the roster elsewhere. *)
      let is_lgp_r p = List.mem p.Provider.name [ "OVH"; "Hetzner" ] in
      let lgp_r, large = List.partition is_lgp_r large in
      let in_europe =
        match Webdep_geo.Country.of_code cc with
        | Some c -> Webdep_geo.Country.continent c = Webdep_geo.Region.Europe
        | None -> false
      in
      let n_medium = match layer with Hosting -> 22 | _ -> 17 in
      let medium = List.filteri (fun i _ -> i < n_medium) rest in
      let small = List.filteri (fun i _ -> i >= n_medium) rest in
      let head = [ Registry.cloudflare; Registry.amazon ] in
      if in_europe then
        head @ lgp_r @ rotate (hash cc 3) large @ rotate (hash cc 5) medium
        @ rotate (hash cc 7) small
      else
        head @ rotate (hash cc 3) large @ rotate (hash cc 5) medium
        @ rotate (hash cc 7) small @ lgp_r
  | Ca ->
      let g7 = Registry.ca_global7 in
      let g7 =
        if List.mem cc Profiles.digicert_first then
          match g7 with le :: dc :: rest -> dc :: le :: rest | short -> short
        else g7
      in
      g7 @ Registry.ca_medium @ rotate (hash cc 11) Registry.ca_xsmall
  | Tld -> (Registry.tld ".com" :: Registry.global_tlds) @ rotate (hash cc 13) Registry.gtld_tail

(* Home / partner rosters.  Hosting and DNS mint unlimited regional
   providers; CA and TLD have at most one home identity. *)
let category_roster layer cc category i =
  match ((layer : Profiles.layer), category) with
  | (Hosting | Dns), Home ->
      Some (Registry.regional ~layer:(if layer = Dns then "dns" else "hosting") cc i)
  | (Hosting | Dns), Partner p ->
      Some (Registry.regional ~layer:(if layer = Dns then "dns" else "hosting") p i)
  | (Hosting | Dns), World_tail ->
      let owner = List.nth all_country_codes ((hash cc 19 + (i * 13)) mod List.length all_country_codes) in
      Some (Registry.regional ~layer:(if layer = Dns then "dns" else "hosting") owner (40 + i))
  | Ca, Home -> if i = 0 then Registry.ca_regional cc else None
  | Ca, Partner p -> if i = 0 then Registry.ca_regional p else None
  | Ca, World_tail -> None
  | Tld, Home ->
      if i = 0 then Some (Registry.tld (Webdep_geo.Country.ccTLD (Webdep_geo.Country.of_code_exn cc)))
      else None
  | Tld, Partner p ->
      if i = 0 then Some (Registry.tld (Webdep_geo.Country.ccTLD (Webdep_geo.Country.of_code_exn p)))
      else None
  | Tld, World_tail ->
      let owner = List.nth all_country_codes ((hash cc 29 + (i * 17)) mod List.length all_country_codes) in
      if owner = cc then None
      else Some (Registry.tld (Webdep_geo.Country.ccTLD (Webdep_geo.Country.of_code_exn owner)))
  | _, Global -> None (* globals use the explicit roster, not this path *)

(* The CA layer has its own calibration: the seven large global CAs
   carry ~98% of websites (80–99.7% per country, §7.1), named regional
   CAs (Asseco, TWCA, SECOM, …) take their anchored shares, and a micro
   tail of medium / extra-small CAs shares the remainder.  A generic
   Zipf tail would leak far too much mass past the seventh CA. *)
let build_ca ~c ~overrides cc =
  let target =
    match overrides.target with Some t -> t | None -> Profiles.target_score Ca cc
  in
  let p1 =
    match overrides.top_share with Some s -> s | None -> Profiles.top_share Ca cc
  in
  let q7 = Profiles.ca_global_share cc in
  let home = match overrides.home_quota with Some q -> q | None -> Profiles.home_quota Ca cc in
  let partners = Profiles.partners Ca cc in
  let pinned =
    (if home > 0.0 then
       match Registry.ca_regional cc with Some p -> [ (p, home) ] | None -> []
     else [])
    @ List.filter_map
        (fun (pcc, f) ->
          match Registry.ca_regional pcc with Some p -> Some ((p, f)) | None -> None)
        partners
    (* A sliver of Russian sites use the browser-rejected state CA. *)
    @ (if cc = "RU" then [ (Registry.russian_state_ca, 0.005) ] else [])
  in
  let pinned_mass = List.fold_left (fun acc (_, f) -> acc +. f) 0.0 pinned in
  let pinned_hhi = List.fold_left (fun acc (_, f) -> acc +. (f *. f)) 0.0 pinned in
  let n = Profiles.n_providers Ca cc in
  let tail_n = Stdlib.max 2 (n - 7 - List.length pinned) in
  let tail_mass = Float.max 0.005 (1.0 -. q7 -. pinned_mass) in
  (* Renormalize if quotas collide. *)
  let q7 = 1.0 -. pinned_mass -. tail_mass in
  let tail_hhi = tail_mass *. tail_mass /. float_of_int tail_n in
  let hhi_target = target +. (1.0 /. float_of_int c) in
  let head_budget = hhi_target -. pinned_hhi -. tail_hhi in
  (* Head: p1 plus six buckets of mass (q7 − p1) with Zipf exponent
     bisected to land the budget; adjust p1 when infeasible. *)
  let head_hhi alpha p1 =
    let z = Webdep_stats.Sample.zipf_probabilities ~s:alpha 6 in
    (p1 *. p1)
    +. Array.fold_left (fun acc zi -> acc +. (((q7 -. p1) *. zi) ** 2.0)) 0.0 z
  in
  let p1 =
    (* Clamp so a uniform rest cannot overshoot: solve
       (1+z) p1^2 − 2 z q7 p1 + z q7^2 − budget = 0 with z = 1/6. *)
    let z = 1.0 /. 6.0 in
    if head_hhi 0.0 p1 > head_budget then begin
      let a = 1.0 +. z and b = -2.0 *. z *. q7 and cst = (z *. q7 *. q7) -. head_budget in
      let disc = (b *. b) -. (4.0 *. a *. cst) in
      if disc >= 0.0 then
        let root = (-.b +. sqrt disc) /. (2.0 *. a) in
        Float.max 0.05 (Float.min p1 root)
      else p1
    end
    else p1
  in
  let alpha =
    let lo = ref 0.0 and hi = ref 8.0 in
    if head_hhi !hi p1 < head_budget then !hi
    else begin
      for _ = 1 to 50 do
        let mid = (!lo +. !hi) /. 2.0 in
        if head_hhi mid p1 < head_budget then lo := mid else hi := mid
      done;
      (!lo +. !hi) /. 2.0
    end
  in
  let z = Webdep_stats.Sample.zipf_probabilities ~s:alpha 6 in
  let head_shares = p1 :: Array.to_list (Array.map (fun zi -> (q7 -. p1) *. zi) z) in
  (* Identities. *)
  let g7 =
    let base = Registry.ca_global7 in
    if List.mem cc Profiles.digicert_first then
      match base with le :: dc :: rest -> dc :: le :: rest | short -> short
    else base
  in
  let tail_roster =
    Registry.ca_medium @ rotate (hash cc 11) Registry.ca_xsmall
  in
  let tail_roster =
    (* Skip identities already pinned (e.g. GlobalSign as a home CA). *)
    List.filter (fun p -> not (List.exists (fun (q, _) -> Provider.equal p q) pinned)) tail_roster
  in
  let tail_shares = List.init tail_n (fun _ -> tail_mass /. float_of_int tail_n) in
  let tail_pairs =
    List.filteri (fun i _ -> i < tail_n) tail_roster
    |> List.mapi (fun i p -> (p, List.nth tail_shares i))
  in
  let share_pairs =
    List.map2 (fun p s -> (p, s)) (List.filteri (fun i _ -> i < 7) g7) head_shares
    @ pinned @ tail_pairs
  in
  let shares = Array.of_list (List.map snd share_pairs) in
  let counts = Webdep_stats.Sample.round_shares ~total:c shares in
  let assignments =
    List.mapi (fun i (p, _) -> (p, counts.(i))) share_pairs
    |> List.filter (fun (_, k) -> k > 0)
    |> List.sort (fun (_, a) (_, b) -> Stdlib.compare b a)
  in
  let achieved =
    Calibrate.score_of_counts (Array.of_list (List.map snd assignments))
  in
  { country = cc; layer = Profiles.Ca; assignments; achieved_score = achieved }

let build_generic ~c ~overrides layer cc =
  let target =
    match overrides.target with Some t -> t | None -> Profiles.target_score layer cc
  in
  let top_share =
    match overrides.top_share with Some s -> s | None -> Profiles.top_share layer cc
  in
  let home_quota =
    match overrides.home_quota with Some q -> q | None -> Profiles.home_quota layer cc
  in
  let partners = Profiles.partners layer cc in
  let n_providers = min (Profiles.n_providers layer cc) (c / 4) in
  let top = Profiles.top_provider layer cc in
  (* Only a ccTLD-primary TLD top bucket comes from the Home category; a
     US-homed global (Cloudflare in the US) does not absorb the home
     quota. *)
  let top_is_home = layer = Profiles.Tld && top.Provider.home = cc in
  let home_quota = if top_is_home then 0.0 else home_quota in
  let partner_total = List.fold_left (fun acc (_, f) -> acc +. f) 0.0 partners in
  let cap = 0.98 -. top_share in
  let scale =
    if home_quota +. partner_total > cap && home_quota +. partner_total > 0.0 then
      cap /. (home_quota +. partner_total)
    else 1.0
  in
  let home_quota = home_quota *. scale in
  let partners = List.map (fun (p, f) -> (p, f *. scale)) partners in
  let second_share = Profiles.second_share_anchor layer cc in
  (* Single-identity categories (the TLD layer's local ccTLD and partner
     ccTLDs) get exact-share buckets pinned into the calibration so the
     anchored shares materialize precisely. *)
  let pinned =
    match layer with
    | Profiles.Tld ->
        (if home_quota > 0.0 then [ home_quota ] else [])
        @ List.filter_map (fun (_, f) -> if f > 0.0 then Some f else None) partners
    | Profiles.Hosting | Profiles.Dns | Profiles.Ca -> []
  in
  let { Calibrate.counts; achieved } =
    Calibrate.counts ~top_share ?second_share ~pinned ~c ~n_providers ~target ()
  in
  let n = Array.length counts in
  let cf = float_of_int c in
  (* Remaining quotas in websites. *)
  let quotas = Hashtbl.create 8 in
  Hashtbl.replace quotas Home (home_quota *. cf);
  List.iter (fun (p, f) -> Hashtbl.replace quotas (Partner p) (f *. cf)) partners;
  let top_count = counts.(0) in
  let global_quota =
    cf -. float_of_int top_count -. (home_quota *. cf)
    -. List.fold_left (fun acc (_, f) -> acc +. (f *. cf)) 0.0 partners
  in
  Hashtbl.replace quotas Global (Float.max 0.0 global_quota);
  Hashtbl.replace quotas World_tail 0.0;
  (* Cursors, used-identities, exhaustion tracking. *)
  let used = ref Pset.empty in
  let cursors = Hashtbl.create 8 in
  let cursor cat = Option.value ~default:0 (Hashtbl.find_opt cursors cat) in
  let globals = ref (global_roster layer cc) in
  let exhausted = Hashtbl.create 4 in
  let take_identity cat =
    let rec from_roster () =
      match cat with
      | Global -> (
          match !globals with
          | [] -> None
          | p :: rest ->
              globals := rest;
              if Pset.mem p !used then from_roster () else Some p)
      | _ -> (
          let i = cursor cat in
          Hashtbl.replace cursors cat (i + 1);
          match category_roster layer cc cat i with
          | None -> None
          | Some p -> if Pset.mem p !used then from_roster () else Some p)
    in
    from_roster ()
  in
  let mark_exhausted cat =
    Hashtbl.replace exhausted cat true;
    (* Transfer unmet quota to the world tail so insularity targets are
       not silently inflated. *)
    let leftover = Option.value ~default:0.0 (Hashtbl.find_opt quotas cat) in
    if leftover > 0.0 then begin
      Hashtbl.replace quotas cat 0.0;
      Hashtbl.replace quotas World_tail
        (leftover +. Option.value ~default:0.0 (Hashtbl.find_opt quotas World_tail))
    end
  in
  let is_exhausted cat = Hashtbl.mem exhausted cat in
  (* Single-identity categories (CA/TLD home & partners) are pinned to the
     unassigned bucket whose size is closest to their quota. *)
  let assignment : Provider.t option array = Array.make n None in
  let top_identity = top in
  assignment.(0) <- Some top_identity;
  used := Pset.add top_identity !used;
  if top_is_home then Hashtbl.replace quotas Home 0.0;
  let single_identity cat =
    match (layer, cat) with
    | (Profiles.Ca | Profiles.Tld), (Home | Partner _) -> true
    | _ -> false
  in
  (* Anchored dominant #2 providers (SuperHosting.BG, UAB) take the second
     bucket from the named category before the walk begins. *)
  (match Profiles.second_provider layer cc with
  | Some hint when n >= 2 && not (single_identity Home) ->
      let cat =
        match hint with
        | Profiles.Second_home -> Home
        | Profiles.Second_partner p -> Partner p
      in
      (match
         match cat with
         | Home -> category_roster layer cc Home 0
         | Partner p -> category_roster layer cc (Partner p) 0
         | Global | World_tail -> None
       with
      | Some p when not (Pset.mem p !used) ->
          assignment.(1) <- Some p;
          used := Pset.add p !used;
          Hashtbl.replace cursors cat 1;
          let q = Option.value ~default:0.0 (Hashtbl.find_opt quotas cat) in
          Hashtbl.replace quotas cat (q -. float_of_int counts.(1))
      | Some _ | None -> ())
  | Some _ | None -> ());
  let pin_single cat =
    let quota = Option.value ~default:0.0 (Hashtbl.find_opt quotas cat) in
    if quota > 0.0 then begin
      match take_identity cat with
      | None -> mark_exhausted cat
      | Some p ->
          (* Closest free bucket to the quota. *)
          let best = ref (-1) and best_gap = ref infinity in
          for i = 1 to n - 1 do
            if assignment.(i) = None then begin
              let gap = Float.abs (float_of_int counts.(i) -. quota) in
              if gap < !best_gap then begin
                best_gap := gap;
                best := i
              end
            end
          done;
          if !best >= 0 then begin
            assignment.(!best) <- Some p;
            used := Pset.add p !used;
            Hashtbl.replace quotas cat 0.0
          end
    end
  in
  let cats_in_play = Global :: Home :: World_tail :: List.map (fun (p, _) -> Partner p) partners in
  List.iter (fun cat -> if single_identity cat then pin_single cat) cats_in_play;
  (* Walk the remaining buckets in descending size. *)
  for i = 1 to n - 1 do
    if assignment.(i) = None then begin
      let rec choose () =
        let best = ref None and best_q = ref neg_infinity in
        List.iter
          (fun cat ->
            if (not (is_exhausted cat)) && not (single_identity cat) then begin
              let q = Option.value ~default:0.0 (Hashtbl.find_opt quotas cat) in
              if q > !best_q then begin
                best_q := q;
                best := Some cat
              end
            end)
          cats_in_play;
        match !best with
        | None -> None
        | Some cat -> (
            match take_identity cat with
            | Some p -> Some (cat, p)
            | None ->
                mark_exhausted cat;
                choose ())
      in
      match choose () with
      | Some (cat, p) ->
          assignment.(i) <- Some p;
          used := Pset.add p !used;
          let q = Option.value ~default:0.0 (Hashtbl.find_opt quotas cat) in
          Hashtbl.replace quotas cat (q -. float_of_int counts.(i))
      | None ->
          (* Every roster exhausted: reuse the world tail with a fresh
             index far beyond normal cursors. *)
          let p =
            Provider.make
              ~name:(Printf.sprintf "Tail-%s-%d" cc i)
              ~home:(List.nth all_country_codes (hash cc i mod List.length all_country_codes))
          in
          assignment.(i) <- Some p;
          used := Pset.add p !used
    end
  done;
  let assignments =
    Array.to_list (Array.mapi (fun i p -> (Option.get p, counts.(i))) assignment)
  in
  { country = cc; layer; assignments; achieved_score = achieved }

let build ?(c = 10_000) ?(overrides = no_overrides) layer cc =
  if not (Webdep_geo.Country.mem cc) then raise Not_found;
  if layer = Profiles.Ca then build_ca ~c ~overrides cc
  else build_generic ~c ~overrides layer cc

let total t = List.fold_left (fun acc (_, k) -> acc + k) 0 t.assignments
let provider_count t = List.length t.assignments

let share t provider =
  let c = float_of_int (total t) in
  List.fold_left
    (fun acc (p, k) -> if Provider.equal p provider then acc +. (float_of_int k /. c) else acc)
    0.0 t.assignments

let insular_share t =
  let c = float_of_int (total t) in
  List.fold_left
    (fun acc (p, k) ->
      if String.equal p.Provider.home t.country then acc +. (float_of_int k /. c) else acc)
    0.0 t.assignments
