let p name home = Provider.make ~name ~home

let cloudflare = p "Cloudflare" "US"
let amazon = p "Amazon" "US"

(* Synthetic-but-stable padding names.  Cycling a country pool spreads the
   mid-tier global providers over a few HQ countries as in reality. *)
let synth prefix homes n =
  List.init n (fun i -> p (Printf.sprintf "%s-%02d" prefix (i + 1)) (List.nth homes (i mod List.length homes)))

let hosting_global =
  (* 6 L-GP *)
  [ p "Google" "US"; p "Akamai" "US"; p "Microsoft" "US"; p "Fastly" "US";
    p "GoDaddy" "US"; p "DigitalOcean" "US" ]
  (* 2 L-GP (R): global reach, European HQ *)
  @ [ p "OVH" "FR"; p "Hetzner" "DE" ]
  (* 22 M-GP *)
  @ [ p "Incapsula" "US"; p "Sucuri" "US"; p "StackPath" "US"; p "Linode" "US";
      p "Vultr" "US"; p "Rackspace" "US"; p "Leaseweb" "NL"; p "Contabo" "DE" ]
  @ synth "MidCloud" [ "US"; "GB"; "DE"; "NL" ] 14
  (* 73 S-GP *)
  @ [ p "Wix" "IL"; p "Squarespace" "US"; p "Shopify" "CA"; p "Netlify" "US";
      p "Vercel" "US"; p "Render" "US"; p "Heroku" "US" ]
  @ synth "SmallCloud" [ "US"; "GB"; "DE"; "SG"; "CA"; "NL" ] 66

let dns_global =
  (* 10 L-GP: managed DNS pushes more providers into the large class. *)
  [ p "NSONE" "US"; p "Neustar UltraDNS" "US"; p "Google" "US"; p "Akamai" "US";
    p "Microsoft" "US"; p "GoDaddy" "US"; p "Verisign DNS" "US"; p "Dyn" "US";
    p "easyDNS" "CA"; p "DNS Made Easy" "US" ]
  (* 2 L-GP (R) *)
  @ [ p "OVH" "FR"; p "Hetzner" "DE" ]
  (* 17 M-GP *)
  @ [ p "DNSimple" "US"; p "ClouDNS" "BG"; p "Gandi" "FR" ]
  @ synth "MidDNS" [ "US"; "GB"; "DE" ] 14
  (* 78 S-GP *)
  @ [ p "Sucuri" "US"; p "Netlify" "US" ]
  @ synth "SmallDNS" [ "US"; "GB"; "DE"; "SG"; "NL"; "CA" ] 76

(* The largest regional provider of a few countries is a real anchor the
   paper names. *)
let hosting_anchor = function
  | "RU" -> Some "Beget LLC"
  | "BG" -> Some "SuperHosting.BG"
  | "LT" -> Some "UAB"
  | "GR" -> Some "Forthnet"
  | "SE" -> Some "Loopia"
  | "CZ" -> Some "WEDOS"
  | "IR" -> Some "Arvan Cloud"
  | "JP" -> Some "Sakura Internet"
  | "KR" -> Some "Naver Cloud"
  | "FR" -> Some "Online S.A.S"
  | "DE" -> Some "IONOS"
  | "US" -> Some "Liquid Web"
  | _ -> None

let dns_anchor = function
  | "RU" -> Some "Beget LLC"
  | "CZ" -> Some "Scalaxy"
  | "GR" -> Some "Forthnet"
  | "IR" -> Some "Arvan Cloud"
  | "JP" -> Some "Sakura Internet"
  | _ -> None

let regional ~layer cc i =
  let anchor = match layer with "dns" -> dns_anchor cc | _ -> hosting_anchor cc in
  match (i, anchor) with
  | 0, Some name -> p name cc
  | _ ->
      let kind = if String.equal layer "dns" then "DNS" else "Host" in
      p (Printf.sprintf "%s-%s-%03d" kind cc i) cc

let ca_global7 =
  [ p "Let's Encrypt" "US"; p "DigiCert" "US"; p "Sectigo" "US";
    p "Google Trust Services" "US"; p "Amazon Trust Services" "US";
    p "GlobalSign" "BE"; p "GoDaddy" "US" ]

let ca_medium = [ p "Entrust" "US"; p "IdenTrust" "US" ]

let asseco = p "Asseco (Certum)" "PL"

(* The 2022 state-sponsored root CA §7.2 discusses: operating in Russia,
   rejected by every browser root program. *)
let russian_state_ca = p "Russian Trusted Root CA" "RU"

(* The ~24 countries observed using a CA based in their own country
   (§7.2 names US, PL, TW, JP as most insular; the rest are smaller
   national CAs). *)
let ca_regional_table =
  [ ("PL", asseco); ("TW", p "TWCA" "TW"); ("JP", p "SECOM Trust" "JP");
    ("US", p "DigiCert" "US"); ("ES", p "FNMT" "ES"); ("IT", p "Actalis" "IT");
    ("CH", p "SwissSign" "CH"); ("NL", p "KPN PKI" "NL"); ("HU", p "Microsec" "HU");
    ("TR", p "TurkTrust" "TR"); ("KR", p "KICA" "KR"); ("AT", p "A-Trust" "AT"); ("BE", p "GlobalSign" "BE"); ("GR", p "Hellenic Academic CA" "GR");
    ("IL", p "ComSign" "IL"); ("IN", p "eMudhra" "IN"); ("BR", p "Certisign" "BR");
    ("MX", p "PSC Mexico" "MX"); ("AR", p "Encode CA" "AR"); ("RU", p "Kontur CA" "RU");
    ("UA", p "Diia CA" "UA"); ("RS", p "MUP CA" "RS"); ("SK", p "Disig" "SK");
    ("CZ", p "eIdentity" "CZ") ]

let ca_regional cc =
  match List.assoc_opt cc ca_regional_table with
  | Some prov when prov.Provider.home = cc -> Some prov
  | _ -> None

let ca_regional_countries =
  List.filter_map
    (fun (cc, prov) -> if prov.Provider.home = cc then Some cc else None)
    ca_regional_table

(* ~15 extra-small CAs rounding the world total to the paper's 45. *)
let ca_xsmall =
  [ p "TrustCor" "CA"; p "Buypass" "NO"; p "Harica" "GR"; p "Izenpe" "ES";
    p "ACCV" "ES"; p "NetLock" "HU"; p "Telia CA" "FI"; p "D-Trust" "DE";
    p "Certigna" "FR"; p "e-commerce monitoring" "AT"; p "Chunghwa Telecom" "TW";
    p "GDCA" "CN"; p "Camerfirma" "ES"; p "OISTE" "CH"; p "SSL.com" "US" ]

let global_tld_homes =
  [ (".com", "US"); (".net", "US"); (".org", "US"); (".info", "US"); (".io", "GB");
    (".co", "CO"); (".biz", "US"); (".xyz", "US"); (".online", "US"); (".site", "US");
    (".app", "US"); (".dev", "US"); (".me", "ME"); (".tv", "US"); (".cc", "US");
    (".shop", "JP"); (".store", "US"); (".club", "US"); (".pro", "US"); (".top", "CN") ]

let tld name =
  match List.assoc_opt name global_tld_homes with
  | Some home -> p name home
  | None ->
      (* ccTLD: ".uk" belongs to GB, otherwise the code is the TLD label. *)
      let label = String.uppercase_ascii (String.sub name 1 (String.length name - 1)) in
      let home = if label = "UK" then "GB" else label in
      p name home

let global_tlds = List.map (fun (n, _) -> tld n) (List.tl global_tld_homes)

(* A long tail of real generic TLDs for the TLD layer's tail buckets. *)
let gtld_tail =
  List.map
    (fun n -> p n "US")
    [ ".academy"; ".agency"; ".art"; ".bar"; ".beauty"; ".best"; ".blog"; ".build";
      ".cafe"; ".care"; ".cash"; ".casino"; ".center"; ".chat"; ".church"; ".city";
      ".cloud"; ".coach"; ".codes"; ".coffee"; ".community"; ".company"; ".cool";
      ".design"; ".digital"; ".directory"; ".earth"; ".education"; ".email"; ".energy";
      ".expert"; ".express"; ".farm"; ".finance"; ".fit"; ".fun"; ".fund"; ".gallery";
      ".games"; ".global"; ".gold"; ".group"; ".guide"; ".guru"; ".health"; ".help";
      ".host"; ".house"; ".info2"; ".ink"; ".institute"; ".international"; ".jobs";
      ".land"; ".law"; ".life"; ".link"; ".live"; ".loan"; ".ltd"; ".market";
      ".media"; ".money"; ".network"; ".news"; ".ninja"; ".one"; ".page"; ".partners";
      ".photo"; ".pics"; ".pizza"; ".plus"; ".press"; ".racing"; ".rocks"; ".run";
      ".school"; ".services"; ".show"; ".social"; ".software"; ".solutions"; ".space";
      ".studio"; ".style"; ".systems"; ".team"; ".tech"; ".tips"; ".today"; ".tools";
      ".tours"; ".town"; ".trade"; ".training"; ".travel"; ".video"; ".vip"; ".watch";
      ".website"; ".wiki"; ".work"; ".works"; ".world"; ".zone" ]
