type result = { counts : int array; achieved : float }

let score_of_counts counts =
  let c = float_of_int (Array.fold_left ( + ) 0 counts) in
  let acc = ref 0.0 in
  Array.iter (fun k -> acc := !acc +. ((float_of_int k /. c) ** 2.0)) counts;
  !acc -. (1.0 /. c)

let sum_sq probs = Array.fold_left (fun acc z -> acc +. (z *. z)) 0.0 probs

(* Bisect alpha in [0, hi] for a monotone-increasing hhi function. *)
let bisect_alpha f target =
  let lo = ref 0.0 and hi = ref 8.0 in
  if f !hi < target then !hi
  else begin
    for _ = 1 to 60 do
      let mid = (!lo +. !hi) /. 2.0 in
      if f mid < target then lo := mid else hi := mid
    done;
    (!lo +. !hi) /. 2.0
  end

(* Solve p^2 + (1-p)^2 * z = h for p in (0,1), taking the larger root
   (dominant top provider). *)
let solve_top_share ~z ~h =
  (* (1+z) p^2 - 2z p + (z - h) = 0 *)
  let a = 1.0 +. z and b = -2.0 *. z and cst = z -. h in
  let disc = (b *. b) -. (4.0 *. a *. cst) in
  if disc < 0.0 then None
  else
    let p = (-.b +. sqrt disc) /. (2.0 *. a) in
    if p > 0.0 && p < 1.0 then Some p else None

(* Shares with a fixed head (the top bucket, optionally a pinned second,
   plus any caller-pinned exact-share buckets) and a Zipf tail whose
   exponent is bisected to land the HHI target.  The head is clamped —
   and if necessary the pinned buckets proportionally scaled — so the
   fixed part never overshoots the HHI budget; if even a uniform tail
   overshoots, the tail is widened past [n_providers]. *)
let shares ~top_share ~second_share ~pinned ~n_providers ~hhi_target =
  let budget = 0.995 *. hhi_target in
  let pinned_hhi ps = List.fold_left (fun acc x -> acc +. (x *. x)) 0.0 ps in
  (* Scale pinned buckets down if they alone blow the budget. *)
  let pinned =
    let h = pinned_hhi pinned in
    if h > 0.6 *. budget then
      let scale = sqrt (0.6 *. budget /. h) in
      List.map (fun x -> x *. scale) pinned
    else pinned
  in
  let head =
    match (top_share, second_share) with
    | None, _ -> []
    | Some p, None -> [ Float.min p (sqrt (Float.max 1e-6 (budget -. pinned_hhi pinned))) ]
    | Some p, Some q ->
        let p = Float.min p (sqrt (Float.max 1e-6 (budget -. pinned_hhi pinned))) in
        let rest_budget = budget -. (p *. p) -. pinned_hhi pinned in
        let q = if rest_budget <= 0.0 then 0.0 else Float.min q (sqrt rest_budget) in
        if q > 0.0 then [ p; q ] else [ p ]
  in
  let fixed = head @ pinned in
  let fixed_mass = List.fold_left ( +. ) 0.0 fixed in
  let fixed_hhi = pinned_hhi fixed in
  let tail_n = n_providers - List.length fixed in
  let rest = Float.max 0.0 (1.0 -. fixed_mass) in
  if tail_n <= 0 || rest <= 0.0 then Array.of_list fixed
  else begin
    (* Widen the tail when a uniform spread over tail_n would still
       overshoot the remaining HHI budget. *)
    let tail_budget = hhi_target -. fixed_hhi in
    let tail_n =
      if tail_budget > 0.0 then
        let needed = int_of_float (Float.ceil (rest *. rest /. tail_budget)) in
        Stdlib.max tail_n needed
      else tail_n
    in
    let zipf alpha = Webdep_stats.Sample.zipf_probabilities ~s:alpha tail_n in
    let hhi alpha = fixed_hhi +. (rest *. rest *. sum_sq (zipf alpha)) in
    if hhi 0.0 > hhi_target && head <> [] then begin
      (* Even a uniform tail overshoots: shrink the top bucket. *)
      match
        solve_top_share ~z:(1.0 /. float_of_int tail_n)
          ~h:(hhi_target -. fixed_hhi +. (List.hd head ** 2.0))
      with
      | Some p' ->
          let fixed = p' :: (List.tl head @ pinned) in
          let rest = Float.max 0.0 (1.0 -. List.fold_left ( +. ) 0.0 fixed) in
          let z = zipf 0.0 in
          Array.append (Array.of_list fixed) (Array.map (fun zi -> rest *. zi) z)
      | None ->
          let z = zipf 0.0 in
          Array.append (Array.of_list fixed) (Array.map (fun zi -> rest *. zi) z)
    end
    else begin
      let alpha = bisect_alpha hhi hhi_target in
      let z = zipf alpha in
      Array.append (Array.of_list fixed) (Array.map (fun zi -> rest *. zi) z)
    end
  end

(* One unit moved from bucket i to bucket j changes HHI by
   2 (c_j - c_i + 1) / c^2; repeatedly pick the move whose step is closest
   to the remaining error. *)
let fine_tune ~c ~target ~tolerance counts =
  let cf = float_of_int c in
  let buckets = ref (Array.to_list counts) in
  let score () = score_of_counts (Array.of_list !buckets) in
  let s = ref (score ()) in
  let iterations = ref 0 in
  let improved = ref true in
  while Float.abs (target -. !s) > tolerance && !iterations < 2000 && !improved do
    incr iterations;
    let err = target -. !s in
    let delta = err *. cf *. cf /. 2.0 in
    let arr = Array.of_list !buckets in
    let n = Array.length arr in
    (* Donor: smallest bucket when raising S, largest when lowering. *)
    let argbest cmp =
      let best = ref 0 in
      for i = 1 to n - 1 do
        if cmp arr.(i) arr.(!best) then best := i
      done;
      !best
    in
    let donor = if delta >= 0.0 then argbest ( < ) else argbest ( > ) in
    let want = float_of_int (arr.(donor) - 1) +. delta in
    (* Receiver: existing bucket closest to [want]; a brand-new empty
       bucket (value 0) is also a candidate when shrinking. *)
    let best_j = ref (-1) and best_gap = ref infinity in
    for j = 0 to n - 1 do
      if j <> donor then begin
        let gap = Float.abs (float_of_int arr.(j) -. want) in
        if gap < !best_gap then begin
          best_gap := gap;
          best_j := j
        end
      end
    done;
    let use_new_bucket = delta < 0.0 && Float.abs (0.0 -. want) < !best_gap in
    let next =
      if use_new_bucket then begin
        let a = Array.copy arr in
        a.(donor) <- a.(donor) - 1;
        Array.append a [| 1 |]
      end
      else begin
        let a = Array.copy arr in
        a.(donor) <- a.(donor) - 1;
        a.(!best_j) <- a.(!best_j) + 1;
        a
      end
    in
    let next = Array.of_list (List.filter (fun k -> k > 0) (Array.to_list next)) in
    let s' = score_of_counts next in
    if Float.abs (target -. s') < Float.abs err then begin
      buckets := Array.to_list next;
      s := s'
    end
    else improved := false
  done;
  let final = Array.of_list !buckets in
  Array.sort (fun a b -> compare b a) final;
  final

let counts ?(tolerance = 5e-5) ?top_share ?second_share ?(pinned = []) ~c ~n_providers
    ~target () =
  if c <= 0 then invalid_arg "Calibrate.counts: c must be positive";
  if n_providers <= 1 || n_providers > c then
    invalid_arg "Calibrate.counts: n_providers outside (1, c]";
  let cf = float_of_int c in
  let floor_s = (1.0 /. float_of_int n_providers) -. (1.0 /. cf) in
  let ceil_s = 1.0 -. (1.0 /. cf) in
  if target <= floor_s || target >= ceil_s then
    invalid_arg
      (Printf.sprintf "Calibrate.counts: target %.4f outside attainable (%.4f, %.4f)" target
         floor_s ceil_s);
  let hhi_target = target +. (1.0 /. cf) in
  List.iter
    (fun p ->
      if p < 0.0 || p >= 1.0 then invalid_arg "Calibrate.counts: pinned share outside [0,1)")
    pinned;
  let share_vec = shares ~top_share ~second_share ~pinned ~n_providers ~hhi_target in
  let rounded = Webdep_stats.Sample.round_shares ~total:c share_vec in
  let positive = Array.of_list (List.filter (fun k -> k > 0) (Array.to_list rounded)) in
  (* Rounding can zero out the far tail; restore the requested provider
     count by splitting the smallest >=2 bucket into (k-1, 1) — each split
     changes HHI by only 2(1-k)/c^2, so the score barely moves. *)
  let positive =
    let buckets = ref (List.sort compare (Array.to_list positive)) in
    let length = ref (List.length !buckets) in
    let exhausted = ref false in
    while !length < n_providers && not !exhausted do
      match List.find_opt (fun k -> k >= 2) !buckets with
      | None -> exhausted := true
      | Some k ->
          let removed = ref false in
          buckets :=
            1 :: (k - 1)
            :: List.filter
                 (fun x ->
                   if (not !removed) && x = k then begin
                     removed := true;
                     false
                   end
                   else true)
                 !buckets;
          buckets := List.filter (fun x -> x > 0) !buckets;
          buckets := List.sort compare !buckets;
          incr length
    done;
    Array.of_list (List.rev !buckets)
  in
  let counts = fine_tune ~c ~target ~tolerance positive in
  { counts; achieved = score_of_counts counts }
