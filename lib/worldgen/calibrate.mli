(** Distribution calibration: construct an integer provider-count vector
    over [c] websites whose centralization score 𝒮 hits a target.

    The family is a fixed top share plus a Zipf tail: the top bucket gets
    share [p₁] (the paper's Cloudflare anecdotes where known, otherwise
    solved for), the remaining mass is spread over the tail with exponent
    α found by bisection so that HHI = p₁² + (1−p₁)²·Σzᵢ² matches the
    target.  After integer rounding, a fine-tuning pass moves single
    websites between buckets (each move changes HHI by
    2(c_j − c_i + 1)/c², so steps as small as 2/c² are available) until
    the achieved 𝒮 is within [tolerance] of the target. *)

type result = {
  counts : int array;  (** nonincreasing, positive, sums to [c] *)
  achieved : float;  (** the 𝒮 of [counts] *)
}

val counts :
  ?tolerance:float ->
  ?top_share:float ->
  ?second_share:float ->
  ?pinned:float list ->
  c:int ->
  n_providers:int ->
  target:float ->
  unit ->
  result
(** @param tolerance default [5e-5]
    @param top_share desired share of the largest bucket; clamped to
           [sqrt (0.995 · HHI_target)] when it alone would overshoot
    @param second_share desired share of the second bucket (e.g. a
           dominant regional provider); clamped against the remaining
           HHI budget; ignored without [top_share]
    @param pinned exact shares for additional buckets (a ccTLD, a
           partner country's ccTLD); the head is clamped — and the
           pinned buckets scaled as a last resort — so the fixed part
           stays within the HHI budget, and the tail widens beyond
           [n_providers] when needed to absorb the remaining mass
    @raise Invalid_argument if [c <= 0], [n_providers <= 1],
           [n_providers > c], or the target is outside the attainable
           range [(1/n − 1/c, 1 − 1/c)]. *)

val score_of_counts : int array -> float
(** 𝒮 of a counts vector (convenience re-export). *)
