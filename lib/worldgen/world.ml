module Rng = Webdep_stats.Rng
module Sample = Webdep_stats.Sample
module Internet = Webdep_netsim.Internet
module Ipv4 = Webdep_netsim.Ipv4
module Zone_db = Webdep_dnssim.Zone_db
module Tls_ca = Webdep_tlssim.Ca
module Cert = Webdep_tlssim.Cert
module Handshake = Webdep_tlssim.Handshake
module Toplist = Webdep_crux.Toplist
module Churn = Webdep_crux.Churn

type epoch = May_2023 | May_2025

let epoch_name = function May_2023 -> "2023-05" | May_2025 -> "2025-05"

(* Observability: snapshot materialization is the dominant generation
   cost; the per-layer mix cache is the main amortizer. *)
let m_mix_hits = Webdep_obs.Metrics.counter "worldgen.mix.cache_hits"
let m_mix_misses = Webdep_obs.Metrics.counter "worldgen.mix.cache_misses"
let m_snapshots = Webdep_obs.Metrics.counter "worldgen.snapshots"

type t = {
  seed : int;
  c : int;
  geo_accuracy : float;
  internet : Internet.t;
  ca_db : Tls_ca.t;
  root_store : Webdep_tlssim.Root_store.t;
  base_rng : Rng.t;
  mixes : (string, Mix.t) Hashtbl.t;
  ca_issuers_ready : (string, unit) Hashtbl.t;
  (* Serializes every mutation of shared world state (mix cache, network
     registration, CA registration) so snapshots can be taken from
     worker domains.  [prepare] performs all registrations up front in
     the canonical sequential order, so under parallel sweeps these
     critical sections are lookup-only. *)
  lock : Mutex.t;
  prepared : (string, unit) Hashtbl.t;  (* "epoch/cc" sweeps already registered *)
}

let multi_cdn_fraction = 0.06

let c t = t.c
let seed t = t.seed
let geo_accuracy t = t.geo_accuracy
let countries _t = List.map (fun c -> c.Webdep_geo.Country.code) Webdep_geo.Country.all
let internet t = t.internet
let ca_db t = t.ca_db

let create ?(c = 10_000) ?(geo_accuracy = 0.894) ~seed () =
  let base_rng = Rng.create seed in
  let geo_rng = Rng.split_named base_rng "geolocation-errors" in
  {
    seed;
    c;
    geo_accuracy;
    internet = Internet.create ~geo_accuracy geo_rng;
    ca_db = Tls_ca.create ();
    root_store = Webdep_tlssim.Root_store.create ();
    base_rng;
    mixes = Hashtbl.create 1024;
    ca_issuers_ready = Hashtbl.create 64;
    lock = Mutex.create ();
    prepared = Hashtbl.create 8;
  }

(* Deterministic per-string hash for jitters and per-site choices. *)
let strhash s seed =
  let h = ref seed in
  String.iter (fun ch -> h := (!h * 131) + Char.code ch) s;
  abs !h

(* §5.4 longitudinal adjustments — hosting layer only.  Cloudflare grew
   +3.8 pts on average (TM +11.3, BR +10), fell slightly in Russia, and
   was flat in BY/UZ/MM; Brazil and Russia have anchored 2025 scores, the
   rest move by a small jitter consistent with rho ~= 0.98. *)
let hosting_overrides_2025 cc =
  let old_target = Profiles.target_score Hosting cc in
  let old_top = Profiles.top_share Hosting cc in
  match cc with
  | "BR" -> { Mix.target = Some 0.2354; top_share = Some 0.46; home_quota = None }
  | "RU" ->
      { Mix.target = Some 0.0499; top_share = Some (old_top -. 0.02); home_quota = Some 0.56 }
  | "TM" ->
      { Mix.target = Some (old_target +. 0.004); top_share = Some (old_top +. 0.113);
        home_quota = None }
  | "BY" | "UZ" | "MM" ->
      { Mix.target = Some old_target; top_share = Some old_top; home_quota = None }
  | _ ->
      let jitter = ((float_of_int (strhash cc 53 mod 1000) /. 1000.0) -. 0.5) *. 0.03 in
      let n = Profiles.n_providers Hosting cc in
      let floor_s = (1.0 /. float_of_int n) +. 0.002 in
      let target = Float.max floor_s (old_target +. jitter) in
      { Mix.target = Some target; top_share = Some (old_top +. 0.038); home_quota = None }

let mix t ?(epoch = May_2023) layer cc =
  let epoch_key =
    match (epoch, (layer : Profiles.layer)) with May_2025, Hosting -> "25" | _ -> "23"
  in
  let key =
    Printf.sprintf "%s/%s/%s" epoch_key (Webdep_reference.Paper_scores.layer_name layer) cc
  in
  Mutex.protect t.lock @@ fun () ->
  match Hashtbl.find_opt t.mixes key with
  | Some m ->
      Webdep_obs.Metrics.incr m_mix_hits;
      m
  | None ->
      Webdep_obs.Metrics.incr m_mix_misses;
      let overrides =
        match (epoch, (layer : Profiles.layer)) with
        | May_2025, Hosting -> hosting_overrides_2025 cc
        | _ -> Mix.no_overrides
      in
      let m = Mix.build ~c:t.c ~overrides layer cc in
      Hashtbl.replace t.mixes key m;
      m

(* --- Network registration ------------------------------------------- *)

let all_codes = List.map (fun c -> c.Webdep_geo.Country.code) Webdep_geo.Country.all

let name_set names =
  let set = Hashtbl.create (List.length names) in
  List.iter (fun n -> Hashtbl.replace set n ()) names;
  set

let global_names =
  let names =
    List.map (fun p -> p.Provider.name) (Registry.hosting_global @ Registry.dns_global)
  in
  "Cloudflare" :: "Amazon" :: names

let global_name_set = name_set global_names

let is_global p = Hashtbl.mem global_name_set p.Provider.name

let anycast_names =
  [ "Cloudflare"; "NSONE"; "Neustar UltraDNS"; "Verisign DNS"; "Dyn"; "DNS Made Easy";
    "easyDNS" ]

let anycast_name_set = name_set anycast_names

let register_provider t p =
  Mutex.protect t.lock @@ fun () ->
  let anycast = Hashtbl.mem anycast_name_set p.Provider.name in
  let presence = if is_global p then all_codes else [] in
  Internet.register_network t.internet ~name:p.Provider.name ~country:p.Provider.home
    ~anycast ~presence ()

(* Stable per-site address inside a network, preferring the point of
   presence nearest the client country.  Runs inside per-vantage Dynamic
   answer closures, i.e. on every DNS query, so it uses the network's
   country-indexed pop table rather than scanning the pops list. *)
let stable_addr (net : Internet.network) ~near idx =
  let prefix = Internet.pop_near net ~near in
  Ipv4.nth_addr prefix (idx mod Ipv4.prefix_size prefix)

(* --- Certificates ----------------------------------------------------- *)

let ensure_ca_registered t (owner_p : Provider.t) =
  Mutex.protect t.lock @@ fun () ->
  if not (Hashtbl.mem t.ca_issuers_ready owner_p.Provider.name) then begin
    Hashtbl.replace t.ca_issuers_ready owner_p.Provider.name ();
    (* CCADB only lists root-program members: a browser-rejected CA
       (the Russian state root) gets no issuer mapping, so the pipeline
       cannot label its certificates. *)
    if Webdep_tlssim.Root_store.is_trusted t.root_store owner_p.Provider.name then begin
      let owner =
        Tls_ca.register_owner t.ca_db ~name:owner_p.Provider.name
          ~country:owner_p.Provider.home
      in
      (* A couple of issuing intermediates per owner, like CCADB rollups. *)
      for k = 1 to 2 do
        Tls_ca.register_issuer t.ca_db
          ~issuer_cn:(Printf.sprintf "%s Issuing CA R%d" owner_p.Provider.name k)
          owner
      done
    end
  end

(* Sweep-local registration memo: one world-lock round-trip per distinct
   provider per sweep instead of several per site.  Skipping the repeat
   calls is safe — registering an already-known provider or CA is a
   no-op on shared state — so first registrations still happen in the
   exact order [prepare]/[snapshot] would otherwise produce. *)
let sweep_registrars t =
  let nets = Hashtbl.create 64 in
  let cas = Hashtbl.create 64 in
  let register p =
    match Hashtbl.find_opt nets p.Provider.name with
    | Some net -> net
    | None ->
        let net = register_provider t p in
        Hashtbl.replace nets p.Provider.name net;
        net
  in
  let ensure_ca a =
    if not (Hashtbl.mem cas a.Provider.name) then begin
      Hashtbl.replace cas a.Provider.name ();
      ensure_ca_registered t a
    end
  in
  (register, ensure_ca)

let issuer_cn_for owner_name domain =
  Printf.sprintf "%s Issuing CA R%d" owner_name (1 + (strhash domain 7 mod 2))

(* --- Mix expansion ---------------------------------------------------- *)

(* Expand (provider, count) pairs into a length-c array and shuffle so
   layers decorrelate site-by-site. *)
let expand rng mix total =
  let arr = Array.make total (fst (List.hd mix.Mix.assignments)) in
  let i = ref 0 in
  List.iter
    (fun (p, k) ->
      for _ = 1 to k do
        if !i < total then begin
          arr.(!i) <- p;
          incr i
        end
      done)
    mix.Mix.assignments;
  Sample.shuffle rng arr;
  arr

(* --- Snapshots --------------------------------------------------------- *)

type snapshot = {
  country : string;
  epoch : epoch;
  toplist : Toplist.t;
  zones : Zone_db.t;
  tls : Handshake.t;
  assigned : (string, Provider.t * Provider.t * Provider.t) Hashtbl.t;
  content_language : (string, string) Hashtbl.t;
}

let mint_domain ~epoch_tag ~cc idx tld =
  Printf.sprintf "%ss%05d-%s%s" epoch_tag idx (String.lowercase_ascii cc) tld

let toplist_2023 t rng cc =
  let tld_assign = expand (Rng.split_named rng "tld") (mix t Tld cc) t.c in
  let domains =
    Array.init t.c (fun i -> mint_domain ~epoch_tag:"" ~cc i tld_assign.(i).Provider.name)
  in
  Toplist.create ~country:cc domains

(* Per-country churn: mean 0.37, Russia anchored at 0.4. *)
let target_jaccard cc =
  if cc = "RU" then 0.40
  else 0.30 +. (float_of_int (strhash cc 61 mod 141) /. 1000.0)

let toplist_for t rng cc = function
  | May_2023 -> toplist_2023 t rng cc
  | May_2025 ->
      let rng23 = Rng.split_named (Rng.split_named t.base_rng ("snap/" ^ cc)) "toplist" in
      let old = toplist_2023 t rng23 cc in
      let tld_assign = expand (Rng.split_named rng "tld25") (mix t Tld cc) t.c in
      let fresh i = mint_domain ~epoch_tag:"n25" ~cc i tld_assign.(i mod t.c).Provider.name in
      Churn.evolve (Rng.split_named rng "churn") ~target_jaccard:(target_jaccard cc) ~fresh old

(* Country rng for one snapshot sweep.  [split_named] never advances
   [base_rng], so the derivation is independent of the order (or domain)
   in which countries are materialized. *)
let snap_rng t epoch cc =
  Rng.split_named t.base_rng
    (match epoch with May_2023 -> "snap/" ^ cc | May_2025 -> "snap25/" ^ cc)

(* The per-site layer assignments for one country sweep.  Shared by
   [snapshot] and [prepare] so both replay the identical sequence. *)
let layer_assignments t ~epoch rng cc =
  let toplist =
    match epoch with
    | May_2023 -> toplist_2023 t (Rng.split_named rng "toplist") cc
    | May_2025 -> toplist_for t (Rng.split_named rng "toplist") cc May_2025
  in
  let hosting = expand (Rng.split_named rng "hosting") (mix t ~epoch Hosting cc) t.c in
  let dns = expand (Rng.split_named rng "dns") (mix t ~epoch Dns cc) t.c in
  let ca = expand (Rng.split_named rng "ca") (mix t ~epoch Ca cc) t.c in
  (toplist, hosting, dns, ca)

(* Multi-CDN secondary for a few sites (keyed off the domain name so the
   choice survives re-derivation). *)
let alt_provider h domain =
  if float_of_int (strhash domain 97 mod 10_000) /. 10_000.0 < multi_cdn_fraction then
    Some
      (if Provider.equal h Registry.amazon then Provider.make ~name:"Fastly" ~home:"US"
       else Registry.amazon)
  else None

(* Perform every shared-state registration a country sweep triggers —
   network/ASN/prefix allocation, geolocation draws, CA issuers — in the
   exact order [snapshot] would, site by site.  After [prepare], taking
   the same snapshots (from any domain, in any order) only performs
   lookups on shared state, so parallel measurement sweeps produce
   bit-identical worlds to the sequential path. *)
let prepare t ?(epoch = May_2023) ccs =
  List.iter
    (fun cc ->
      if Webdep_geo.Country.mem cc then begin
        let key = epoch_name epoch ^ "/" ^ cc in
        let fresh =
          Mutex.protect t.lock (fun () ->
              if Hashtbl.mem t.prepared key then false
              else begin
                Hashtbl.replace t.prepared key ();
                true
              end)
        in
        if fresh then begin
          let rng = snap_rng t epoch cc in
          let toplist, hosting, dns, ca = layer_assignments t ~epoch rng cc in
          let register, ensure_ca = sweep_registrars t in
          List.iteri
            (fun i domain ->
              let h = hosting.(i) and d = dns.(i) and a = ca.(i) in
              ignore (register h);
              ignore (register d);
              ensure_ca a;
              match alt_provider h domain with
              | Some alt_p -> ignore (register alt_p)
              | None -> ())
            (Toplist.domains toplist)
        end
      end)
    ccs

(* The country's toplist alone — the same derivation [layer_assignments]
   performs, without materializing zones, certificates or registrations.
   Lets the measurement store answer "do I already know every site of
   this sweep?" without paying for a snapshot. *)
let toplist t ?(epoch = May_2023) cc =
  if not (Webdep_geo.Country.mem cc) then
    invalid_arg
      (Printf.sprintf "World.toplist: %S is not one of the dataset's countries" cc);
  let rng = snap_rng t epoch cc in
  match epoch with
  | May_2023 -> toplist_2023 t (Rng.split_named rng "toplist") cc
  | May_2025 -> toplist_for t (Rng.split_named rng "toplist") cc May_2025

let snapshot t ?(epoch = May_2023) cc =
  if not (Webdep_geo.Country.mem cc) then
    invalid_arg
      (Printf.sprintf "World.snapshot: %S is not one of the dataset's countries" cc);
  Webdep_obs.Metrics.incr m_snapshots;
  (* One duration histogram per epoch; the country rides along as a span
     attribute for the trace sinks. *)
  Webdep_obs.Span.with_
    ~name:("world.snapshot." ^ epoch_name epoch)
    ~attrs:[ ("country", cc) ]
  @@ fun () ->
  let rng = snap_rng t epoch cc in
  let toplist, hosting, dns, ca = layer_assignments t ~epoch rng cc in
  let zones = Zone_db.create () in
  let tls = Handshake.create () in
  let assigned = Hashtbl.create t.c in
  let content_language = Hashtbl.create t.c in
  let glue_done = Hashtbl.create 512 in
  let register, ensure_ca = sweep_registrars t in
  let day0 = 19_500 (* arbitrary simulation clock origin *) in
  Array.iteri
    (fun i domain ->
      let h = hosting.(i) and d = dns.(i) and a = ca.(i) in
      let h_net = register h in
      let d_net = register d in
      ensure_ca a;
      (* Nameservers: two hosts per DNS provider, glue registered once. *)
      let slug = Provider.slug d in
      let ns_hosts = [ "ns1." ^ slug ^ ".sim"; "ns2." ^ slug ^ ".sim" ] in
      if not (Hashtbl.mem glue_done slug) then begin
        Hashtbl.replace glue_done slug ();
        List.iteri
          (fun k host ->
            Zone_db.add_host zones ~host
              ~a:(Zone_db.Static [ stable_addr d_net ~near:d.Provider.home (k + 1) ]))
          ns_hosts
      end;
      (* A answer: primary provider, with a multi-CDN secondary for a few
         sites that shows through from non-home vantages. *)
      let alt =
        match alt_provider h domain with
        | Some alt_p -> Some (alt_p, register alt_p)
        | None -> None
      in
      let primary_addr vantage =
        (* Anycast providers answer with one global address; others with a
           front-end near the client. *)
        if h_net.Internet.anycast then stable_addr h_net ~near:h.Provider.home i
        else stable_addr h_net ~near:vantage i
      in
      let answer vantage =
        match alt with
        | Some (_, alt_net) when vantage <> cc && strhash (domain ^ vantage) 11 mod 100 < 35 ->
            [ stable_addr alt_net ~near:vantage i ]
        | _ -> [ primary_addr vantage ]
      in
      (* CDN-fronted sites resolve through a CNAME into the provider's
         namespace, as Cloudflare-style onboarding works; the terminal
         name carries the geo-dependent A answer. *)
      if h_net.Internet.anycast && alt = None then begin
        let cdn_name =
          Printf.sprintf "%s.cdn.%s.sim"
            (String.map (fun ch -> if ch = '.' then '-' else ch) domain)
            (Provider.slug h)
        in
        Zone_db.add_domain zones ~domain:cdn_name ~ns_hosts ~a:(Zone_db.Dynamic answer);
        Zone_db.add_alias zones ~domain ~target:cdn_name ~ns_hosts
      end
      else Zone_db.add_domain zones ~domain ~ns_hosts ~a:(Zone_db.Dynamic answer);
      (* Leaf certificate labelled with the CA owner via CCADB. *)
      let cert =
        { Cert.subject = domain; issuer_cn = issuer_cn_for a.Provider.name domain;
          not_before = day0; not_after = day0 + 90 }
      in
      Handshake.install tls ~domain cert;
      Hashtbl.replace assigned domain (h, d, a);
      Hashtbl.replace content_language domain
        (Language.assign ~cc ~provider_home:h.Provider.home ~domain))
    (Array.of_list (Toplist.domains toplist));
  { country = cc; epoch; toplist; zones; tls; assigned; content_language }
