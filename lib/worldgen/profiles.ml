type layer = Webdep_reference.Paper_scores.layer = Hosting | Dns | Ca | Tld

module Scores = Webdep_reference.Paper_scores
module Country = Webdep_geo.Country
module Region = Webdep_geo.Region

let target_score layer cc = Scores.score_exn layer cc

(* Stable small hash for per-country deterministic variation. *)
let hash cc seed =
  let h = ref seed in
  String.iter (fun c -> h := (!h * 131) + Char.code c) cc;
  abs !h

(* Least-squares line through the paper's (S, top-share) hosting anchors:
   (0.3548, 0.60), (0.1358, 0.29), (0.0411, 0.14) in sqrt-S space. *)
let fitted_top_share s = Float.max 0.08 (Float.min 0.90 ((1.17 *. sqrt s) -. 0.098))

let hosting_top_anchor = function
  | "TH" -> Some 0.60
  | "US" -> Some 0.29
  | "IR" -> Some 0.14
  | "BR" -> Some 0.36
  (* Cloudflare narrowly outranks the dominant regional #2 (§5.2). *)
  | "BG" -> Some 0.25
  | "LT" -> Some 0.26
  | _ -> None

let dns_top_anchor = function
  | "ID" -> Some 0.65
  | "TH" -> Some 0.62
  | "CZ" -> Some 0.17
  | _ -> None

let ca_top_anchor = function
  | "SK" -> Some 0.55
  | "PL" -> Some 0.33
  | "IR" -> Some 0.49
  | _ -> None

(* Dominant second providers the paper names: SuperHosting.BG (22%), UAB
   in Lithuania (22%), Asseco at 19% in Poland and Iran, TWCA and SECOM
   at 17% / 14%. *)
let second_share_anchor layer cc =
  match ((layer : layer), cc) with
  | Hosting, "BG" -> Some 0.22
  | Hosting, "LT" -> Some 0.22
  | Ca, "PL" -> Some 0.19
  | Ca, "IR" -> Some 0.19
  | Ca, "TW" -> Some 0.17
  | Ca, "JP" -> Some 0.14
  | _ -> None

type second_provider = Second_home | Second_partner of string

let second_provider layer cc =
  match ((layer : layer), cc) with
  | Hosting, ("BG" | "LT") -> Some Second_home
  | Ca, ("PL" | "TW" | "JP") -> Some Second_home
  | Ca, "IR" -> Some (Second_partner "PL")
  | _ -> None

let tld_top_anchor = function
  | "US" -> Some 0.77
  | "KG" -> Some 0.29
  | "DE" -> Some 0.44
  | _ -> None

let top_share layer cc =
  let anchor =
    match layer with
    | Hosting -> hosting_top_anchor cc
    | Dns -> dns_top_anchor cc
    | Ca -> ca_top_anchor cc
    | Tld -> tld_top_anchor cc
  in
  match anchor with Some s -> s | None -> fitted_top_share (target_score layer cc)

(* Countries whose CA ecosystem leans Let's Encrypt (Europe and countries
   avoiding US-commercial CAs) vs DigiCert-first countries (the least
   CA-centralized in Table 7). *)
let digicert_first = [ "JP"; "TW"; "KR"; "VN"; "CO"; "IN"; "CL"; "PE"; "TR"; "MX"; "EC" ]

(* Countries that concentrate on their own ccTLD rather than .com. *)
let cctld_primary =
  [ "CZ"; "HU"; "PL"; "GR"; "RO"; "SK"; "DE"; "JP"; "KR"; "BR"; "TR"; "IT"; "RU"; "FI";
    "DK"; "NO"; "SE"; "NL"; "ES"; "PT"; "HR"; "SI"; "RS"; "BG"; "UA"; "LT"; "LV"; "EE";
    "IS"; "CH"; "AT"; "BE"; "FR"; "IE" ]

let top_provider layer cc =
  match layer with
  | Hosting | Dns -> if cc = "JP" then Registry.amazon else Registry.cloudflare
  | Ca ->
      if List.mem cc digicert_first then List.nth Registry.ca_global7 1
      else List.hd Registry.ca_global7
  | Tld ->
      if List.mem cc cctld_primary then Registry.tld (Country.ccTLD (Country.of_code_exn cc))
      else Registry.tld ".com"

let subregion cc = (Country.of_code_exn cc).Country.subregion

let hosting_home_anchor = function
  | "US" -> Some 0.35
  | "IR" -> Some 0.648
  | "CZ" -> Some 0.50
  | "RU" -> Some 0.48
  | "TM" -> Some 0.04
  | "SK" -> Some 0.10
  | "JP" -> Some 0.38
  | "KR" -> Some 0.38
  | _ -> None

let hosting_home_default sr =
  Region.(
    match sr with
    | Caribbean -> 0.02
    | Central_america -> 0.03
    | Central_asia -> 0.03
    | Eastern_africa -> 0.02
    | Eastern_asia -> 0.22
    | Eastern_europe -> 0.30
    | Middle_africa -> 0.02
    | Northern_africa -> 0.03
    | Northern_america -> 0.12
    | Northern_europe -> 0.15
    | Oceania_subregion -> 0.08
    | South_america_subregion -> 0.08
    | South_eastern_asia -> 0.06
    | Southern_africa -> 0.04
    | Southern_asia -> 0.08
    | Southern_europe -> 0.18
    | Western_africa -> 0.03
    | Western_asia -> 0.07
    | Western_europe -> 0.20)

let ca_home_quota cc =
  match cc with
  | "PL" -> 0.19
  | "TW" -> 0.17
  | "JP" -> 0.14
  | _ -> if List.mem cc Registry.ca_regional_countries then 0.015 else 0.0

let tld_home_default sr =
  Region.(
    match sr with
    | Caribbean -> 0.04
    | Central_america -> 0.10
    | Central_asia -> 0.15
    | Eastern_africa -> 0.12
    | Eastern_asia -> 0.30
    | Eastern_europe -> 0.42
    | Middle_africa -> 0.12
    | Northern_africa -> 0.12
    | Northern_america -> 0.05
    | Northern_europe -> 0.35
    | Oceania_subregion -> 0.25
    | South_america_subregion -> 0.28
    | Southern_africa -> 0.20
    | South_eastern_asia -> 0.15
    | Southern_asia -> 0.15
    | Southern_europe -> 0.32
    | Western_africa -> 0.12
    | Western_asia -> 0.12
    | Western_europe -> 0.35)

let tld_home_anchor = function
  | "US" -> Some 0.0 (* .com is the top provider; insularity via .com itself *)
  | "KG" -> Some 0.12
  | "DE" -> Some 0.44
  | "CZ" -> Some 0.58
  | "HU" -> Some 0.55
  | "PL" -> Some 0.52
  (* App. B: .fr is more popular than the local ccTLD in these (with the
     French territories below, 14 countries). *)
  | "BF" | "BJ" | "CD" | "CI" | "CM" | "DZ" | "HT" | "MG" | "ML" | "SN" | "TG" -> Some 0.06
  | "GP" | "MQ" | "RE" -> Some 0.05
  | _ -> None

let home_quota layer cc =
  match layer with
  | Hosting -> (
      match hosting_home_anchor cc with
      | Some q -> q
      | None -> hosting_home_default (subregion cc))
  | Dns -> (
      match hosting_home_anchor cc with
      | Some q -> q *. 0.95
      | None -> hosting_home_default (subregion cc) *. 0.95)
  | Ca -> ca_home_quota cc
  | Tld -> (
      match tld_home_anchor cc with
      | Some q -> q
      | None -> tld_home_default (subregion cc))

(* §5.3.3 case studies plus small continental defaults. *)
let hosting_partner_anchor = function
  | "TM" -> [ ("RU", 0.33) ]
  | "TJ" -> [ ("RU", 0.23) ]
  | "KG" -> [ ("RU", 0.22) ]
  | "KZ" -> [ ("RU", 0.21) ]
  | "BY" -> [ ("RU", 0.18) ]
  | "UZ" -> [ ("RU", 0.12) ]
  | "UA" -> [ ("RU", 0.02) ]
  | "LT" -> [ ("RU", 0.03) ]
  | "EE" -> [ ("RU", 0.05) ]
  | "SK" -> [ ("CZ", 0.257) ]
  | "AF" -> [ ("IR", 0.20) ]
  | "AT" -> [ ("DE", 0.03) ]
  | "RE" -> [ ("FR", 0.36) ]
  | "GP" -> [ ("FR", 0.34) ]
  | "MQ" -> [ ("FR", 0.35) ]
  | "BF" -> [ ("FR", 0.21) ]
  | "CI" -> [ ("FR", 0.18) ]
  | "ML" -> [ ("FR", 0.18) ]
  | "SN" -> [ ("FR", 0.12) ]
  | "TG" -> [ ("FR", 0.10) ]
  | "BJ" -> [ ("FR", 0.10) ]
  | "CM" -> [ ("FR", 0.08) ]
  | "HT" -> [ ("FR", 0.05) ]
  | "MG" -> [ ("FR", 0.08) ]
  | "DZ" -> [ ("FR", 0.06) ]
  | "LU" -> [ ("DE", 0.05); ("FR", 0.03) ]
  | "CH" -> [ ("DE", 0.05) ]
  | _ -> []

let partners layer cc =
  match layer with
  | Hosting | Dns -> hosting_partner_anchor cc
  | Ca -> (
      match cc with
      | "IR" -> [ ("PL", 0.19) ]
      | "AF" -> [ ("PL", 0.05) ]
      | _ -> [])
  | Tld -> (
      match cc with
      | "TM" -> [ ("RU", 0.20) ]
      | "TJ" -> [ ("RU", 0.20) ]
      | "KG" -> [ ("RU", 0.22) ]
      | "KZ" -> [ ("RU", 0.15) ]
      | "BY" -> [ ("RU", 0.15) ]
      | "UZ" -> [ ("RU", 0.15) ]
      | "AM" -> [ ("RU", 0.10) ]
      | "AZ" -> [ ("RU", 0.08) ]
      | "GE" -> [ ("RU", 0.08) ]
      | "MD" -> [ ("RU", 0.12) ]
      | "AT" -> [ ("DE", 0.14) ]
      | "LU" -> [ ("DE", 0.08) ]
      | "CH" -> [ ("DE", 0.07) ]
      | "BF" | "BJ" | "CD" | "CI" | "CM" | "DZ" | "HT" | "MG" | "ML" | "SN" | "TG" ->
          [ ("FR", 0.12) ]
      | "GP" | "MQ" | "RE" -> [ ("FR", 0.30) ]
      | "SK" -> [ ("CZ", 0.08) ]
      | _ -> [])

let n_providers layer cc =
  match layer with
  | Hosting -> (
      match cc with
      | "TH" -> 328
      | "IR" -> 444
      | "US" -> 834
      | _ -> 300 + (hash cc 17 mod 400))
  | Dns -> 260 + (hash cc 23 mod 380)
  | Ca -> 10 + (hash cc 31 mod 12)
  | Tld -> 60 + (hash cc 41 mod 80)

let ca_global_share = function
  | "IR" -> 0.80
  | "TW" -> 0.82
  | "JP" -> 0.85
  | "RU" -> 0.997
  | "AF" -> 0.93
  | "PL" -> 0.80
  | _ -> 0.98
