(** The measurement pipeline of §3.4, run against the simulated world.

    For every site in a country's toplist: resolve A and NS records
    (ZDNS), map the hosting IP to its origin AS and AS organization
    (pfx2as + AS2Org), geolocate it (NetAcuity), check the anycast set
    (bgp.tools), perform a TLS handshake and label the leaf's CA owner
    (ZGrab2 + CCADB), and record the TLD.  The output is the enriched
    {!Webdep.Dataset.t} that the analysis toolkit consumes. *)

val default_vantage : string
(** "US" — the paper measures from Stanford University. *)

val tld_of_domain : string -> string
(** Last label with leading dot; the paper's TLD layer key. *)

type resolution =
  | Flat  (** direct lookup in the authoritative store *)
  | Iterative
      (** ZDNS-mode walk: root hints → TLD referral → authoritative
          answer over the {!Webdep_dnssim.Hierarchy} *)

(** {1 Robustness}

    Fault-handling context threaded through a sweep: which simulated
    servers misbehave, how failures are retried, when a country's
    coverage is too thin to trust, and when a failing target is
    quarantined. *)

type fault_opts = {
  plan : Webdep_faults.Fault_plan.t;  (** deterministic fault assignment *)
  retry : Webdep_faults.Retry.policy;  (** DNS + TLS retry/backoff *)
  coverage_threshold : float;
      (** minimum (clean+degraded)/total per country for its metrics to
          be emitted; countries below are reported as insufficient *)
  quarantine_after : int;  (** consecutive failures before skipping *)
}

val no_faults : fault_opts
(** Disabled plan, single attempt, threshold 0 — the legacy pipeline.
    With this value the measured dataset is byte-identical to the
    pre-fault pipeline at any [jobs]. *)

val resolution_name : resolution -> string
(** ["flat"] / ["iterative"] — the store-key and checkpoint-header
    spelling. *)

(** {1 Measurement store}

    Every [?store] parameter below memoizes per-(epoch, resolution,
    vantage, domain) measurement results in a
    {!Webdep_store.Store.t}: stored sites are returned without
    re-resolving, fresh measurements are added, and a sweep whose
    countries are fully stored skips snapshot materialization (and
    world preparation) altogether.  Memoized records are exactly what a
    fresh measurement would produce, so store-backed and cold sweeps
    are byte-identical at any [jobs]; hit/miss totals
    ([store.hits]/[store.misses]) are per-domain and equally
    jobs-invariant.  The store is ignored when fault injection is
    active — quarantine streaks are order-dependent, so replaying
    individual sites could fabricate a history. *)

val store_fingerprint :
  ?faults:fault_opts -> Webdep_worldgen.World.t -> Webdep_store.Fingerprint.t
(** The invalidation fingerprint for a (world, fault-options) pair:
    world seed, toplist size, geolocation accuracy, and the fault
    plan's seed/rate/retry budget. *)

val measure_country :
  ?vantage:string ->
  ?resolution:resolution ->
  ?cache:bool ->
  ?epoch:Webdep_worldgen.World.epoch ->
  Webdep_worldgen.World.t ->
  string ->
  Webdep.Dataset.country_data
(** Measure one country's toplist from a vantage country. *)

val measure_snapshot :
  ?vantage:string ->
  ?resolution:resolution ->
  ?cache:bool ->
  Webdep_worldgen.World.t ->
  Webdep_worldgen.World.snapshot ->
  Webdep.Dataset.country_data
(** Measure an already-materialized snapshot (used when the caller also
    needs the snapshot's ground truth).

    [cache] (default [true]) puts a recursive-resolver-style memo in
    front of DNS resolution for the duration of the snapshot — response,
    NS-glue and (in iterative mode) TLD zone-cut tables keyed on
    [(vantage, qname)].  Answers are deterministic per (vantage, qname),
    so caching never changes the dataset, only the work; hit/miss
    counters land in the obs registry under [dns.cache.*]. *)

val measure_snapshot_cov :
  ?vantage:string ->
  ?resolution:resolution ->
  ?cache:bool ->
  ?faults:fault_opts ->
  ?quarantine:Webdep_faults.Quarantine.t ->
  ?store:Webdep_store.Store.t ->
  Webdep_worldgen.World.t ->
  Webdep_worldgen.World.snapshot ->
  Webdep.Dataset.country_data * Webdep_faults.Degrade.tally
(** {!measure_snapshot} plus the per-outcome tally.  [?faults]
    (default {!no_faults}) injects per the plan and retries transient
    failures; [?quarantine] (default: fresh, scoped to this snapshot)
    lets callers re-probing the same shard carry failure streaks across
    probes so targets quarantine after [quarantine_after] consecutive
    failures. *)

val measure_country_cov :
  ?vantage:string ->
  ?resolution:resolution ->
  ?cache:bool ->
  ?epoch:Webdep_worldgen.World.epoch ->
  ?faults:fault_opts ->
  ?quarantine:Webdep_faults.Quarantine.t ->
  ?store:Webdep_store.Store.t ->
  Webdep_worldgen.World.t ->
  string ->
  Webdep.Dataset.country_data * Webdep_faults.Degrade.tally
(** {!measure_country} plus the per-outcome tally.  With [?store], a
    fully-stored country is rebuilt from the store without even
    materializing its snapshot. *)

val measure_all :
  ?vantage:string ->
  ?resolution:resolution ->
  ?cache:bool ->
  ?epoch:Webdep_worldgen.World.epoch ->
  ?countries:string list ->
  ?jobs:int ->
  ?store:Webdep_store.Store.t ->
  Webdep_worldgen.World.t ->
  Webdep.Dataset.t
(** Measure every (or the listed) dataset country.  Memory stays bounded:
    snapshots are materialized one country at a time and dropped.

    Countries fan out across the {!Webdep_par} domain pool ([?jobs]
    overrides the configured lane count; [1] forces the sequential
    path).  The world is {!Webdep_worldgen.World.prepare}d first, so the
    returned dataset is bit-identical for every [jobs] value; resolver
    caches (see {!measure_snapshot}) are created per snapshot, keeping
    that invariant regardless of [cache]. *)

type country_coverage = {
  cc : string;
  tally : Webdep_faults.Degrade.tally;
  ratio : float;  (** (clean + degraded) / total *)
  resumed : bool;  (** recovered from the checkpoint, not re-measured *)
}

type sweep = {
  dataset : Webdep.Dataset.t;
      (** countries meeting the coverage threshold only *)
  coverage : country_coverage list;  (** every requested country *)
  insufficient : string list;
      (** countries whose coverage fell below the threshold; their
          metrics are withheld rather than silently skewed *)
}

val measure_sweep :
  ?vantage:string ->
  ?resolution:resolution ->
  ?cache:bool ->
  ?epoch:Webdep_worldgen.World.epoch ->
  ?countries:string list ->
  ?jobs:int ->
  ?faults:fault_opts ->
  ?checkpoint:string ->
  ?store:Webdep_store.Store.t ->
  Webdep_worldgen.World.t ->
  sweep
(** {!measure_all} with graceful degradation.  Fault decisions are pure
    hashes of the plan seed and query key, so the sweep stays
    byte-identical at any [jobs] even with faults injected.  Coverage is
    observed per country in the [coverage.ratio] histogram; countries
    below [coverage_threshold] are excluded from [dataset] and listed in
    [insufficient] (counter [coverage.insufficient]).

    [?checkpoint] names a JSON-lines file: completed country shards are
    appended as they finish, and a later run with the same sweep
    parameters resumes past them, reproducing the uninterrupted dataset
    exactly.  A parameter mismatch discards the stale file. *)

type resolution_stats = {
  domains : int;
  agreement : float;  (** fraction where iterative = flat resolution *)
  mean_queries : float;  (** questions per successful resolution *)
  failures : int;  (** SERVFAIL/NXDOMAIN from the iterative walk *)
}

val iterative_resolution_stats :
  ?vantage:string ->
  ?epoch:Webdep_worldgen.World.epoch ->
  Webdep_worldgen.World.t ->
  string ->
  resolution_stats
(** Build the DNS delegation hierarchy for one country's zones, resolve
    every toplist domain iteratively from the root hints (ZDNS's
    iterative mode), and compare against the flat resolver.  Full
    agreement validates that the measurement pipeline's answers do not
    depend on the resolution strategy. *)

val discover_redundancy :
  vantages:string list ->
  ?epoch:Webdep_worldgen.World.epoch ->
  Webdep_worldgen.World.t ->
  string ->
  Webdep.Redundancy.site_providers list
(** Resolve every site of a country from several vantage countries and
    collect the distinct serving organizations per site — the §3.2
    provider-redundancy study's input.  Multi-CDN sites surface their
    secondary provider from some vantages. *)

val measure_with_probes :
  per_country_probes:int ->
  ?missing:string list ->
  ?epoch:Webdep_worldgen.World.epoch ->
  seed:int ->
  Webdep_worldgen.World.t ->
  string list ->
  (string * float) list
(** The RIPE-style validation sweep: for each listed country, resolve its
    toplist through random in-country probes (falling back to random
    global probes for [missing] countries, default the paper's 14) and
    return the hosting centralization score per country. *)
