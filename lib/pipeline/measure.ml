module World = Webdep_worldgen.World
module Internet = Webdep_netsim.Internet
module Resolver = Webdep_dnssim.Resolver
module Handshake = Webdep_tlssim.Handshake
module Tls_ca = Webdep_tlssim.Ca
module Toplist = Webdep_crux.Toplist
module Dataset = Webdep.Dataset

let default_vantage = "US"

(* Observability: per-stage counters over everything this process has
   measured.  The counters live in the webdep_obs registry, so a
   --metrics dump or the bench's BENCH_obs.json picks them up without
   extra plumbing; per-country timings come from the measure_country
   spans. *)
module Obs = Webdep_obs
module Metric = Webdep_obs.Metrics
module Faults = Webdep_faults.Fault_plan
module Retry = Webdep_faults.Retry
module Quarantine = Webdep_faults.Quarantine
module Degrade = Webdep_faults.Degrade
module Checkpoint = Webdep_faults.Checkpoint
module Store = Webdep_store.Store
module Fingerprint = Webdep_store.Fingerprint

let m_sites = Metric.counter "pipeline.sites.measured"
let m_dns_queries = Metric.counter "pipeline.dns.queries"
let m_dns_nxdomain = Metric.counter "pipeline.dns.nxdomain"
let m_tls_handshakes = Metric.counter "pipeline.tls.handshakes"
let m_tls_failures = Metric.counter "pipeline.tls.handshake_failures"
let m_anycast_hosting = Metric.counter "pipeline.anycast.hosting_hits"
let m_anycast_ns = Metric.counter "pipeline.anycast.ns_hits"
let m_lang_detected = Metric.counter "pipeline.lang.detected"
let m_sites_degraded = Metric.counter "pipeline.sites.degraded"
let m_sites_failed = Metric.counter "pipeline.sites.failed"
let m_insufficient = Metric.counter "coverage.insufficient"

let h_coverage =
  Metric.histogram ~bounds:[| 0.5; 0.8; 0.9; 0.95; 0.99; 1.0 |] "coverage.ratio"

let tld_of_domain domain =
  match String.rindex_opt domain '.' with
  | None -> domain
  | Some i -> String.sub domain i (String.length domain - i)

let tld_entity domain =
  let tld = tld_of_domain domain in
  let label = String.uppercase_ascii (String.sub tld 1 (String.length tld - 1)) in
  let home =
    if label = "UK" then "GB"
    else if Webdep_geo.Country.mem label then label
    else
      (* Global TLD registries; .com/.net/.org etc. operate from the US
         (the paper treats .com as insular to the US). *)
      match tld with
      | ".io" -> "GB"
      | ".me" -> "ME"
      | ".co" -> "CO"
      | ".shop" -> "JP"
      | ".top" -> "CN"
      | _ -> "US"
  in
  { Dataset.name = tld; country = home }

let org_entity (org : Webdep_netsim.Org.t) =
  { Dataset.name = org.Webdep_netsim.Org.name; country = org.Webdep_netsim.Org.country }

(* Fault-handling context for a sweep: the plan decides which simulated
   servers misbehave, the retry policy bounds how hard we push back, the
   coverage threshold gates per-country metric emission, and the
   quarantine threshold caps consecutive failures per target. *)
type fault_opts = {
  plan : Faults.t;
  retry : Retry.policy;
  coverage_threshold : float;
  quarantine_after : int;
}

let no_faults =
  {
    plan = Faults.disabled;
    retry = Retry.no_retry;
    coverage_threshold = 0.0;
    quarantine_after = 3;
  }

let failed_site domain =
  {
    Dataset.domain;
    hosting = None;
    dns = None;
    ca = None;
    tld = tld_entity domain;
    hosting_geo = None;
    ns_geo = None;
    hosting_anycast = false;
    ns_anycast = false;
    language = None;
  }

let measure_site internet ca_db zones tls ~vantage ~content ?cache ?resolve_a ~fo
    ~quarantine domain =
  Metric.incr m_sites;
  let faulted = Faults.enabled fo.plan in
  if faulted && Quarantine.active quarantine domain then begin
    (* K consecutive failures: stop burning retry budget on this target. *)
    Metric.incr m_sites_failed;
    (failed_site domain, Degrade.Failed)
  end
  else begin
    Metric.incr m_dns_queries;
    let resolved =
      Resolver.resolve ?cache ~faults:fo.plan ~retry:fo.retry zones ~vantage domain
    in
    let hosting_ip, ns_ip =
      match resolved with
      | Error Resolver.Nxdomain ->
          Metric.incr m_dns_nxdomain;
          (None, None)
      | Error _ ->
          (* Transient failure that survived the retry budget. *)
          (None, None)
      | Ok { Resolver.a; ns_addrs; _ } ->
          ((match a with ip :: _ -> Some ip | [] -> None),
           match ns_addrs with ip :: _ -> Some ip | [] -> None)
    in
    (* An alternative A-resolution strategy (iterative walk) may replace the
       flat lookup; NS data still comes from the same authoritative store. *)
    let hosting_ip = match resolve_a with Some f -> f domain | None -> hosting_ip in
    let hosting = Option.bind hosting_ip (Internet.org_of_addr internet) in
    let dns = Option.bind ns_ip (Internet.org_of_addr internet) in
    let hosting_geo = Option.bind hosting_ip (Internet.geolocate internet) in
    let ns_geo = Option.bind ns_ip (Internet.geolocate internet) in
    let hosting_anycast =
      match hosting_ip with Some ip -> Internet.is_anycast_addr internet ip | None -> false
    in
    let ns_anycast =
      match ns_ip with Some ip -> Internet.is_anycast_addr internet ip | None -> false
    in
    if hosting_anycast then Metric.incr m_anycast_hosting;
    if ns_anycast then Metric.incr m_anycast_ns;
    let ca =
      match hosting_ip with
      | None -> None
      | Some addr -> (
          Metric.incr m_tls_handshakes;
          let hs =
            if not faulted then Handshake.handshake tls ~addr ~sni:domain
            else
              (* Retry only handshakes the plan interfered with: a site
                 that genuinely has no TLS fails identically on every
                 attempt, so retrying it would only distort counters. *)
              match
                Retry.run fo.retry ~key:("tls|" ^ domain)
                  ~retryable:(fun () -> Faults.tls_faulty fo.plan ~sni:domain)
                  (fun ~attempt ->
                    match
                      Handshake.handshake ~faults:fo.plan ~attempt tls ~addr
                        ~sni:domain
                    with
                    | Some cert -> Ok cert
                    | None -> Error ())
              with
              | Ok cert -> Some cert
              | Error () -> None
          in
          match hs with
          | None ->
              Metric.incr m_tls_failures;
              None
          | Some cert ->
              Option.map
                (fun (o : Tls_ca.owner) ->
                  { Dataset.name = o.Tls_ca.name; country = o.Tls_ca.country })
                (Tls_ca.owner_of_issuer ca_db cert.Webdep_tlssim.Cert.issuer_cn))
    in
    let language =
      (* Fetch the page and run language detection, as the paper does with
         LangDetect; only possible when the site resolved. *)
      match hosting_ip with
      | None -> None
      | Some _ ->
          Option.map (fun truth -> Langdetect.detect ~domain truth) (content domain)
    in
    (match language with Some _ -> Metric.incr m_lang_detected | None -> ());
    let site =
      {
        Dataset.domain;
        hosting = Option.map org_entity hosting;
        dns = Option.map org_entity dns;
        ca;
        tld = tld_entity domain;
        hosting_geo;
        ns_geo;
        hosting_anycast;
        ns_anycast;
        language;
      }
    in
    let outcome : Degrade.outcome =
      if Option.is_none hosting_ip then Failed
      else if
        faulted
        && (Faults.dns_faulty fo.plan ~vantage ~qname:domain
           || Faults.tls_faulty fo.plan ~sni:domain)
      then Degraded (* a fault touched it, even if retries recovered *)
      else Clean
    in
    if faulted then begin
      match (outcome, resolved) with
      | Degrade.Failed, Error e when Resolver.retryable e ->
          Quarantine.record_failure quarantine domain
      | _ -> Quarantine.record_success quarantine domain
    end;
    (match outcome with
    | Degrade.Degraded -> Metric.incr m_sites_degraded
    | Degrade.Failed -> Metric.incr m_sites_failed
    | Degrade.Clean -> ());
    (site, outcome)
  end

type resolution = Flat | Iterative

let resolution_name = function Flat -> "flat" | Iterative -> "iterative"

(* The store half of the world fingerprint comes from the world itself;
   the fault half from the sweep options.  Anything else that shapes a
   site record (epoch, vantage, resolution) is part of the per-entry
   key, not the fingerprint. *)
let store_fingerprint ?(faults = no_faults) world =
  Fingerprint.v ~world_seed:(World.seed world) ~c:(World.c world)
    ~geo_accuracy:(World.geo_accuracy world)
    ~fault_seed:(Faults.seed faults.plan)
    ~fault_rate:(Faults.rate faults.plan)
    ~max_attempts:faults.retry.Retry.max_attempts

(* Quarantine streaks depend on the order sites fail in, so memoizing
   individual sites under an active fault plan could replay a history
   that never happened; the store only serves fault-free sweeps. *)
let usable_store ~faults store =
  if Faults.enabled faults.plan then None else store

let measure_snapshot_cov ?(vantage = default_vantage) ?(resolution = Flat)
    ?(cache = true) ?(faults = no_faults) ?quarantine ?store world
    (snap : World.snapshot) =
  let internet = World.internet world in
  let ca_db = World.ca_db world in
  let content domain = Hashtbl.find_opt snap.World.content_language domain in
  (* One resolver cache per snapshot: the snapshot is measured by a
     single worker domain, so the cache needs no lock, and per-snapshot
     scoping keeps the aggregate hit/miss counters independent of how
     countries are spread over domains (jobs-invariance). *)
  let rcache = if cache then Some (Resolver.make_cache ()) else None in
  let resolve_a =
    match resolution with
    | Flat -> None
    | Iterative ->
        let hierarchy = Webdep_dnssim.Hierarchy.build snap.World.zones in
        let icache =
          if cache then Some (Webdep_dnssim.Iterative.make_cache ()) else None
        in
        Some
          (fun domain ->
            Webdep_dnssim.Iterative.resolve_a ?cache:icache ~faults:faults.plan
              ~retry:faults.retry hierarchy ~vantage domain)
  in
  (* Quarantine state defaults to snapshot scope; callers re-probing the
     same shard (checkpointed re-runs, watchdog loops) pass their own so
     failure streaks span probes. *)
  let quarantine =
    match quarantine with
    | Some q -> q
    | None -> Quarantine.create ~threshold:faults.quarantine_after ()
  in
  let store = usable_store ~faults store in
  let epoch = World.epoch_name snap.World.epoch in
  let resolution = resolution_name resolution in
  let tally = ref Degrade.empty in
  let measure domain =
    measure_site internet ca_db snap.World.zones snap.World.tls ~vantage ~content
      ?cache:rcache ?resolve_a ~fo:faults ~quarantine domain
  in
  let sites =
    List.map
      (fun domain ->
        let site, outcome =
          match store with
          | None -> measure domain
          | Some st -> (
              match Store.find st ~epoch ~resolution ~vantage domain with
              | Some e -> (e.Store.site, e.Store.outcome)
              | None ->
                  let site, outcome = measure domain in
                  Store.add st ~epoch ~resolution ~vantage domain
                    { Store.site; outcome };
                  (site, outcome))
        in
        tally := Degrade.add !tally outcome;
        site)
      (Toplist.domains snap.World.toplist)
  in
  ({ Dataset.country = snap.World.country; sites }, !tally)

let measure_snapshot ?vantage ?resolution ?cache world snap =
  fst (measure_snapshot_cov ?vantage ?resolution ?cache world snap)

(* Warm fast path: when the store already holds every site of the sweep,
   rebuild the country data from it without materializing the snapshot
   at all — the toplist alone decides which keys to ask for, and deriving
   it costs a fraction of zone/TLS generation.  All-or-nothing: a single
   missing site falls back to the snapshot path, whose per-site lookups
   still reuse every stored site. *)
let country_from_store ?(vantage = default_vantage) ?(resolution = Flat)
    ?(epoch = World.May_2023) ~store world cc =
  let toplist = World.toplist world ~epoch cc in
  match
    Store.find_all store ~epoch:(World.epoch_name epoch)
      ~resolution:(resolution_name resolution) ~vantage (Toplist.domains toplist)
  with
  | None -> None
  | Some entries ->
      let tally = ref Degrade.empty in
      let sites =
        List.map
          (fun (e : Store.entry) ->
            tally := Degrade.add !tally e.Store.outcome;
            e.Store.site)
          entries
      in
      Some ({ Dataset.country = cc; sites }, !tally)

let measure_country_cov ?vantage ?resolution ?cache ?epoch ?(faults = no_faults)
    ?quarantine ?store world cc =
  (* Per-country span: the name carries the country so the registry dump
     exposes one duration histogram per country. *)
  Obs.Span.with_ ~name:("measure_country." ^ cc)
    ~attrs:[ ("country", cc) ]
    (fun () ->
      let warm =
        match usable_store ~faults store with
        | None -> None
        | Some store -> country_from_store ?vantage ?resolution ?epoch ~store world cc
      in
      match warm with
      | Some result -> result
      | None ->
          measure_snapshot_cov ?vantage ?resolution ?cache ~faults ?quarantine
            ?store world (World.snapshot world ?epoch cc))

let measure_country ?vantage ?resolution ?cache ?epoch world cc =
  fst (measure_country_cov ?vantage ?resolution ?cache ?epoch world cc)

type country_coverage = {
  cc : string;
  tally : Degrade.tally;
  ratio : float;
  resumed : bool;
}

type sweep = {
  dataset : Dataset.t;
  coverage : country_coverage list;
  insufficient : string list;
}

let checkpoint_meta ?vantage ?resolution ?epoch ~faults world =
  let open Webdep_obs.Json in
  [
    ("world_seed", Int (World.seed world));
    ("c", Int (World.c world));
    ("epoch", String (World.epoch_name (Option.value ~default:World.May_2023 epoch)));
    ("vantage", String (Option.value ~default:default_vantage vantage));
    ("resolution", String (resolution_name (Option.value ~default:Flat resolution)));
    ("fault_seed", Int (Faults.seed faults.plan));
    ("fault_rate", Float (Faults.rate faults.plan));
    ("max_attempts", Int faults.retry.Retry.max_attempts);
  ]

let measure_sweep ?vantage ?resolution ?cache ?epoch ?countries ?jobs
    ?(faults = no_faults) ?checkpoint ?store world =
  let countries = Option.value ~default:(World.countries world) countries in
  let store = usable_store ~faults store in
  Obs.Span.with_ ~name:"measure_all"
    ~attrs:[ ("countries", string_of_int (List.length countries)) ]
    (fun () ->
      (* Warm pre-pass: rebuild fully-stored countries up front, so an
         entirely warm sweep pays neither registration replay nor
         snapshot materialization.  Sequential on purpose — the per-hit
         counters then accrue in one fixed order, and the totals are the
         same at any [jobs]. *)
      let warm = Hashtbl.create 16 in
      (match store with
      | Some st when Store.size st > 0 ->
          List.iter
            (fun cc ->
              if Webdep_geo.Country.mem cc then
                match
                  country_from_store ?vantage ?resolution ?epoch ~store:st world cc
                with
                | Some r -> Hashtbl.replace warm cc r
                | None -> ())
            countries
      | Some _ | None -> ());
      (* Fix every shared-state registration (ASN/prefix allocation,
         geolocation draws, CA issuers) in canonical sequential order
         before fanning out, so the per-country sweeps are read-only on
         the world and the dataset is bit-identical at any [jobs].  Only
         countries the store cannot fully serve need it. *)
      let cold = List.filter (fun cc -> not (Hashtbl.mem warm cc)) countries in
      World.prepare world ?epoch cold;
      let cp =
        Option.map
          (fun path ->
            let cp =
              Checkpoint.open_ ~path
                ~meta:(checkpoint_meta ?vantage ?resolution ?epoch ~faults world)
            in
            if Checkpoint.loaded cp > 0 then
              Logs.info (fun m ->
                  m "checkpoint %s: resuming past %d completed countries" path
                    (Checkpoint.loaded cp));
            cp)
          checkpoint
      in
      (* Streaming construction: each country's string-form site list is
         produced on a worker lane, then folded — in canonical input
         order, on this domain — into the dataset builder's interned
         arrays and released.  Peak heap holds one window of string-form
         countries plus the compact dataset, never the whole world; the
         sequential fold also keeps the builder's interner ids identical
         at any [jobs]. *)
      let b = Dataset.builder () in
      let coverage_rev = ref [] in
      let insufficient_rev = ref [] in
      Webdep_par.map_fold ?jobs
        (fun cc ->
          match Option.bind cp (fun cp -> Checkpoint.find cp cc) with
          | Some e ->
              Logs.debug (fun m -> m "resumed %s from checkpoint" cc);
              (cc, e.Checkpoint.data, e.Checkpoint.tally, true)
          | None ->
              let data, tally =
                match Hashtbl.find_opt warm cc with
                | Some (data, tally) ->
                    Logs.debug (fun m -> m "rebuilt %s from store" cc);
                    (data, tally)
                | None ->
                    Logs.debug (fun m -> m "measuring %s" cc);
                    measure_country_cov ?vantage ?resolution ?cache ?epoch
                      ~faults ?store world cc
              in
              Option.iter
                (fun cp -> Checkpoint.record cp { Checkpoint.country = cc; tally; data })
                cp;
              (cc, data, tally, false))
        ~init:()
        ~fold:(fun () (cc, data, tally, resumed) ->
          let ratio = Degrade.ratio tally in
          Metric.observe h_coverage ratio;
          coverage_rev := { cc; tally; ratio; resumed } :: !coverage_rev;
          if Degrade.sufficient ~threshold:faults.coverage_threshold tally then
            Dataset.builder_add b data
          else begin
            insufficient_rev := cc :: !insufficient_rev;
            Metric.incr m_insufficient;
            Logs.warn (fun m ->
                m "insufficient_coverage %s: below threshold %.2f, metrics withheld"
                  cc faults.coverage_threshold)
          end)
        countries;
      Option.iter Checkpoint.close cp;
      {
        dataset = Dataset.builder_finish b;
        coverage = List.rev !coverage_rev;
        insufficient = List.rev !insufficient_rev;
      })

let measure_all ?vantage ?resolution ?cache ?epoch ?countries ?jobs ?store world =
  (measure_sweep ?vantage ?resolution ?cache ?epoch ?countries ?jobs ?store world)
    .dataset

type resolution_stats = {
  domains : int;
  agreement : float;
  mean_queries : float;
  failures : int;
}

let iterative_resolution_stats ?(vantage = default_vantage) ?epoch world cc =
  let snap = World.snapshot world ?epoch cc in
  let hierarchy = Webdep_dnssim.Hierarchy.build snap.World.zones in
  let domains = Toplist.domains snap.World.toplist in
  (* Accumulate the per-call stats [Iterative.resolve] already returns.
     (Reading deltas of the resolver's process-global counters would
     misattribute queries whenever another domain resolves
     concurrently.) *)
  let module I = Webdep_dnssim.Iterative in
  let agree = ref 0 and ok = ref 0 and queries = ref 0 and failures = ref 0 in
  List.iter
    (fun domain ->
      let flat = Resolver.resolve_a snap.World.zones ~vantage domain in
      match I.resolve hierarchy ~vantage domain with
      | Ok (addrs, st) ->
          incr ok;
          queries := !queries + st.I.queries;
          let iter = (match addrs with a :: _ -> Some a | [] -> None) in
          if iter = flat then incr agree
      | Error _ ->
          incr failures;
          if flat = None then incr agree)
    domains;
  {
    domains = List.length domains;
    agreement = float_of_int !agree /. float_of_int (List.length domains);
    mean_queries =
      (if !ok = 0 then 0.0 else float_of_int !queries /. float_of_int !ok);
    failures = !failures;
  }

let discover_redundancy ~vantages ?epoch world cc =
  let snap = World.snapshot world ?epoch cc in
  let internet = World.internet world in
  (* The cache is keyed on (vantage, qname), so sharing one across the
     vantage sweep is sound; the NS-glue memo repeats across sites. *)
  let cache = Resolver.make_cache () in
  List.map
    (fun domain ->
      let providers =
        List.filter_map
          (fun vantage ->
            match Resolver.resolve_a ~cache snap.World.zones ~vantage domain with
            | None -> None
            | Some ip ->
                Option.map
                  (fun (o : Webdep_netsim.Org.t) -> o.Webdep_netsim.Org.name)
                  (Internet.org_of_addr internet ip))
          vantages
      in
      { Webdep.Redundancy.domain; providers = List.sort_uniq compare providers })
    (Toplist.domains snap.World.toplist)

let paper_missing_probe_countries =
  (* 14 countries had no RIPE Atlas probes in the paper's validation. *)
  [ "TM"; "SY"; "YE"; "LY"; "SD"; "SO"; "MV"; "PG"; "GP"; "MQ"; "CU"; "HT"; "MW"; "ML" ]

let measure_with_probes ~per_country_probes ?missing ?epoch ~seed world countries =
  let missing = Option.value ~default:paper_missing_probe_countries missing in
  let pool =
    Webdep_dnssim.Probe.pool_of_countries ~missing ~per_country:per_country_probes countries
  in
  let rng = Webdep_stats.Rng.create seed in
  let internet = World.internet world in
  (* Interned provider names with a dense int tally: one string hash per
     site (the intern), integer array bumps thereafter.  The interner is
     sweep-scoped so the name-sorted id permutation — needed because ids
     are in first-seen order while [Dist] normalizes in input order — is
     recomputed only when a country introduces a provider the sweep has
     not yet seen, instead of re-sorting the whole provider set per
     country. *)
  let syms = Webdep.Symbol.create ~size:128 () in
  let sorted_ids = ref [||] in
  let sorted_by_name () =
    let n = Webdep.Symbol.count syms in
    if Array.length !sorted_ids <> n then begin
      let ids = Array.init n Fun.id in
      Array.sort
        (fun a b ->
          String.compare (Webdep.Symbol.name syms a) (Webdep.Symbol.name syms b))
        ids;
      sorted_ids := ids
    end;
    !sorted_ids
  in
  List.map
    (fun cc ->
      let snap = World.snapshot world ?epoch cc in
      let cache = Resolver.make_cache () in
      let counts = ref (Array.make 128 0) in
      List.iter
        (fun domain ->
          let probe = Webdep_dnssim.Probe.pick pool rng ~country:cc in
          match
            Resolver.resolve_a ~cache snap.World.zones
              ~vantage:probe.Webdep_dnssim.Probe.country domain
          with
          | None -> ()
          | Some ip -> (
              match Internet.org_of_addr internet ip with
              | None -> ()
              | Some org ->
                  let id = Webdep.Symbol.intern syms org.Webdep_netsim.Org.name in
                  if id >= Array.length !counts then begin
                    let bigger = Array.make (2 * (id + 1)) 0 in
                    Array.blit !counts 0 bigger 0 (Array.length !counts);
                    counts := bigger
                  end;
                  !counts.(id) <- !counts.(id) + 1))
        (Toplist.domains snap.World.toplist);
      (* Emit this country's counts in name-sorted id order, skipping
         providers the country never used: identical to sorting the
         country's own (name, count) list, since names are unique per
         id. *)
      let ids = sorted_by_name () in
      let out = ref [] in
      for i = Array.length ids - 1 downto 0 do
        let id = ids.(i) in
        if id < Array.length !counts && !counts.(id) > 0 then
          out := !counts.(id) :: !out
      done;
      let dist = Webdep_emd.Dist.of_positive_counts (Array.of_list !out) in
      (cc, Webdep_emd.Centralization.score dist))
    countries
