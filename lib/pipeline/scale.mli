(** One paper-scale measurement sweep with GC telemetry.

    [run ~c ()] creates a world with [c] sites per country, measures it
    through the streaming pipeline, computes the hosting centralization
    scores, and reports wall seconds, minor-heap allocation and the
    process's [Gc.top_heap_words] high-water mark.

    [top_heap_words] never decreases over a process lifetime, so a
    memory-budget assertion is only meaningful in a process that has run
    nothing else first (the [webdep scale] subcommand); in a long bench
    run the value is a monotone upper bound on the sweep's peak heap. *)

type result = {
  c : int;
  countries : int;  (** countries that cleared coverage *)
  sites : int;  (** (country, site) records measured *)
  seconds : float;
  minor_words : float;  (** minor-heap words allocated by the sweep *)
  top_heap_words : int;  (** major-heap high-water mark, whole process *)
  mean_hosting_s : float;  (** mean hosting-layer S — a scores sanity anchor *)
}

val run :
  ?seed:int -> ?countries:string list -> ?jobs:int -> c:int -> unit -> result
