let default_accuracy = 0.97

(* Script-plausible confusions. *)
let confusable = function
  | "fa" -> "ar"
  | "ar" -> "fa"
  | "ps" -> "ur"
  | "ur" -> "ar"
  | "ru" -> "uk"
  | "uk" -> "ru"
  | "cs" -> "sk"
  | "sk" -> "cs"
  | "pt" -> "es"
  | "es" -> "pt"
  | "no" -> "da"
  | "da" -> "no"
  | "id" -> "ms"
  | "ms" -> "id"
  | _ -> "en"

let hash s seed =
  let h = ref seed in
  String.iter (fun c -> h := (!h * 131) + Char.code c) s;
  abs !h mod 1000

let detect ?(accuracy = default_accuracy) ~domain truth =
  if float_of_int (hash (domain ^ truth) 83) /. 1000.0 < accuracy then truth
  else confusable truth
