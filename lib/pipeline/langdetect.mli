(** Language detection over fetched page content — the LangDetect
    substrate the paper uses for the Afghanistan/Iran case study
    (§5.3.3).

    LangDetect is statistical and occasionally wrong; we model a fixed
    accuracy (default 0.97): with probability [1 − accuracy] the detector
    returns a deterministic confusable language instead of the truth
    (Persian ↔ Arabic-script neighbours, Slavic pairs, …). *)

val default_accuracy : float

val detect : ?accuracy:float -> domain:string -> string -> string
(** [detect ~domain truth] is the detector's label for a page whose true
    language is [truth]; deterministic in [(domain, truth)]. *)

val confusable : string -> string
(** The language the detector confuses a given language with. *)
