(* Full-scale sweep runner: one world at toplist size [c], measured end
   to end through the streaming pipeline, with the GC telemetry the
   scale bench phase and the CI heap-budget smoke report.

   top_heap_words is the process-lifetime maximum of the major heap, so
   a budget check is only meaningful in a process that has run nothing
   but this sweep — the [webdep scale] subcommand exists for exactly
   that; inside the bench the recorded value is cumulative over earlier
   phases and serves as a monotone upper bound. *)

module World = Webdep_worldgen.World
module Dataset = Webdep.Dataset

type result = {
  c : int;
  countries : int;
  sites : int;
  seconds : float;
  minor_words : float;
  top_heap_words : int;
  mean_hosting_s : float; (* sanity anchor: scores must survive scaling *)
}

let run ?(seed = 2024) ?countries ?jobs ~c () =
  let t0 = Unix.gettimeofday () in
  let mw0 = Gc.minor_words () in
  let world = World.create ~c ~seed () in
  let ds = Measure.measure_all ?countries ?jobs world in
  let scores = Webdep.Metrics.all_scores ds Hosting in
  let seconds = Unix.gettimeofday () -. t0 in
  let minor_words = Gc.minor_words () -. mw0 in
  let mean_hosting_s =
    match scores with
    | [] -> 0.0
    | _ ->
        List.fold_left (fun acc (_, s) -> acc +. s) 0.0 scores
        /. float_of_int (List.length scores)
  in
  {
    c;
    countries = List.length (Dataset.countries ds);
    sites = Dataset.size ds;
    seconds;
    minor_words;
    top_heap_words = (Gc.quick_stat ()).Gc.top_heap_words;
    mean_hosting_s;
  }
