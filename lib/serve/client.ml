(* Blocking client for the dependence-query daemon: framed requests over
   a Unix or loopback-TCP socket, with pipelining for load generation. *)

module P = Protocol

type t = { fd : Unix.file_descr; mutable rbuf : Bytes.t; mutable rlen : int }

let connect ?(attempts = 40) spec =
  let addr = Addr.of_spec spec in
  let rec go n =
    let fd = Unix.socket (Addr.domain addr) Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Addr.sockaddr addr) with
    | () -> { fd; rbuf = Bytes.create 65536; rlen = 0 }
    | exception
        Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.ECONNRESET), _, _)
      when n > 1 ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        ignore (Unix.select [] [] [] 0.05);
        go (n - 1)
  in
  go attempts

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      let w = Unix.write fd b off (len - off) in
      go (off + w)
  in
  go 0

let send t req = write_all t.fd (P.frame (P.encode_request req))

(* One complete frame from the front of the buffer, if present. *)
let take_frame t =
  if t.rlen < 4 then None
  else begin
    let n = Int32.to_int (Bytes.get_int32_be t.rbuf 0) in
    if n <= 0 || n > P.max_payload then
      raise (P.Protocol_error (Printf.sprintf "bad frame length %d" n));
    if t.rlen < 4 + n then None
    else begin
      let payload = Bytes.sub_string t.rbuf 4 n in
      Bytes.blit t.rbuf (4 + n) t.rbuf 0 (t.rlen - 4 - n);
      t.rlen <- t.rlen - 4 - n;
      Some payload
    end
  end

let recv t =
  let rec go () =
    match take_frame t with
    | Some payload -> (
        match P.decode_response payload with
        | Ok resp -> resp
        | Error msg -> raise (P.Protocol_error msg))
    | None ->
        if t.rlen + 65536 > Bytes.length t.rbuf then begin
          let nb = Bytes.create (2 * (t.rlen + 65536)) in
          Bytes.blit t.rbuf 0 nb 0 t.rlen;
          t.rbuf <- nb
        end;
        let n = Unix.read t.fd t.rbuf t.rlen (Bytes.length t.rbuf - t.rlen) in
        if n = 0 then raise (P.Protocol_error "connection closed by server");
        t.rlen <- t.rlen + n;
        go ()
  in
  go ()

let request t req =
  send t req;
  recv t

(* Send every request in one write, then collect the replies in order —
   the server answers strictly in arrival order per connection. *)
let pipeline t reqs =
  let b = Buffer.create 1024 in
  List.iter (fun r -> Buffer.add_string b (P.frame (P.encode_request r))) reqs;
  write_all t.fd (Buffer.contents b);
  List.map (fun _ -> recv t) reqs

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* --- retry/deadline budget ---------------------------------------------- *)

module Retry = Webdep_faults.Retry

let m_call_retries = Webdep_obs.Metrics.counter "client.call.retries"
let m_call_exhausted = Webdep_obs.Metrics.counter "client.call.exhausted"

(* One whole attempt: fresh connection, one request, one reply.  A fresh
   connection per attempt is deliberate — the failure modes worth
   retrying (server restarting, draining, connection reset mid-reply)
   all leave the old connection useless. *)
let attempt_once spec req =
  match connect ~attempts:1 spec with
  | exception Unix.Unix_error (e, _, _) ->
      Error ("connect: " ^ Unix.error_message e)
  | t -> (
      match request t req with
      | P.Overloaded ->
          close t;
          Error "overloaded"
      | P.Draining ->
          close t;
          Error "draining"
      | resp ->
          close t;
          Ok resp
      | exception P.Protocol_error msg ->
          close t;
          Error msg
      | exception Unix.Unix_error (e, _, _) ->
          close t;
          Error (Unix.error_message e))

(* [call spec req] with a real (slept) retry budget: every failure a
   restart or overload can cause — connection refused, socket gone,
   reset mid-reply, an [Overloaded] shed or a [Draining] refusal — is
   retried with exponential backoff and deterministic jitter (hash of
   the request key, so two clients hammering the same server do not
   retry in lockstep) until [max_retries] attempts or the [timeout_s]
   deadline run out.  Returns the last failure as [Error]. *)
let call ?(max_retries = 4) ?(timeout_s = 10.0) spec req =
  let policy =
    { (Retry.of_max_retries max_retries) with budget_ms = 0.0 }
  in
  let key = spec ^ "|" ^ P.encode_request req in
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go attempt =
    match attempt_once spec req with
    | Ok resp -> Ok resp
    | Error msg ->
        if attempt + 1 >= policy.Retry.max_attempts then begin
          Webdep_obs.Metrics.incr m_call_exhausted;
          Error (Printf.sprintf "%s (after %d attempts)" msg (attempt + 1))
        end
        else begin
          let delay_s =
            Retry.backoff_ms policy ~key ~attempt:(attempt + 1) /. 1000.0
          in
          if Unix.gettimeofday () +. delay_s >= deadline then begin
            Webdep_obs.Metrics.incr m_call_exhausted;
            Error (Printf.sprintf "%s (deadline %.1fs exceeded)" msg timeout_s)
          end
          else begin
            Webdep_obs.Metrics.incr m_call_retries;
            Unix.sleepf delay_s;
            go (attempt + 1)
          end
        end
  in
  go 0
