(* Warm daemon state: one [Webdep_store.Incremental] per (epoch, layer),
   pre-materialized from measured datasets so every query is a tally /
   cached-score lookup instead of a sweep.  [answer] is a pure function
   of the state and the request — the daemon, the bench load generator
   and the one-shot [webdep query] subcommand all go through it, which
   is what makes daemon answers byte-identical to local ones. *)

module D = Webdep.Dataset
module World = Webdep_worldgen.World
module Inc = Webdep_store.Incremental
module P = Protocol

let layers = [ D.Hosting; D.Dns; D.Ca; D.Tld ]

type epoch_state = { inc_by_layer : (D.layer * Inc.t) list }

type t = {
  fingerprint : string;  (* world/store fingerprint keying the response cache *)
  countries : string list;  (* dataset order *)
  datasets : (World.epoch * D.t) list;  (* measured inputs, kept for snapshots *)
  epochs : (World.epoch * epoch_state) list;
}

let make ~fingerprint datasets =
  let epochs =
    List.map
      (fun (epoch, ds) ->
        (epoch, { inc_by_layer = List.map (fun l -> (l, Inc.create ds l)) layers }))
      datasets
  in
  let countries =
    match datasets with (_, ds) :: _ -> D.countries ds | [] -> []
  in
  { fingerprint; countries; datasets; epochs }

let fingerprint t = t.fingerprint
let countries t = t.countries
let datasets t = t.datasets
let epochs t = List.map fst t.epochs

let inc t epoch layer =
  match List.assoc_opt epoch t.epochs with
  | None -> None
  | Some es -> List.assoc_opt layer es.inc_by_layer

(* Force every cached score so the first real queries hit warm state. *)
let warm t =
  List.iter
    (fun (_, es) ->
      List.iter
        (fun (_, inc) ->
          List.iter
            (fun cc -> match Inc.score inc cc with _ -> () | exception Not_found -> ())
            (Inc.countries inc))
        es.inc_by_layer)
    t.epochs

let rec take k = function
  | [] -> []
  | _ when k <= 0 -> []
  | x :: rest -> x :: take (k - 1) rest

let with_inc t epoch layer f =
  match inc t epoch layer with
  | None ->
      P.Error (Printf.sprintf "epoch %s not loaded" (World.epoch_name epoch))
  | Some inc -> f inc

let score_response inc country =
  match Inc.score inc country with
  | s ->
      P.Scores { s; hhi = Inc.hhi inc country; insularity = Inc.insularity inc country }
  | exception Not_found ->
      P.Error (Printf.sprintf "no data for country %s" country)

let shares_response inc country k =
  match Inc.counts inc country with
  | counts ->
      let total = float_of_int (Inc.total inc country) in
      P.Shares
        (take k counts
        |> List.map (fun ((e : D.entity), n) ->
               { P.provider = e.D.name;
                 home = e.D.country;
                 share = float_of_int n /. total }))
  | exception Not_found -> P.Error (Printf.sprintf "no data for country %s" country)

let ranking_response t inc k =
  let scored =
    List.filter_map
      (fun cc ->
        match Inc.score inc cc with
        | s -> Some (cc, s)
        | exception Not_found -> None)
      t.countries
  in
  let sorted =
    List.sort
      (fun (cc1, s1) (cc2, s2) ->
        match Float.compare s2 s1 with 0 -> String.compare cc1 cc2 | c -> c)
      scored
  in
  P.Ranks (take k sorted)

let delta_response t layer country =
  match (inc t World.May_2023 layer, inc t World.May_2025 layer) with
  | Some old_inc, Some new_inc -> (
      match (Inc.score old_inc country, Inc.score new_inc country) with
      | old_s, new_s -> P.Deltas { old_s; new_s; delta = new_s -. old_s }
      | exception Not_found ->
          P.Error (Printf.sprintf "no data for country %s" country))
  | _ -> P.Error "delta needs both the 2023 and 2025 epochs loaded"

let answer t = function
  | P.Ping -> P.Pong
  | P.Shutdown -> P.Bye
  | P.Score { epoch; layer; country } ->
      with_inc t epoch layer (fun inc -> score_response inc country)
  | P.Top_shares { epoch; layer; country; k } ->
      with_inc t epoch layer (fun inc -> shares_response inc country k)
  | P.Ranking { epoch; layer; k } ->
      with_inc t epoch layer (fun inc -> ranking_response t inc k)
  | P.Delta { layer; country } -> delta_response t layer country
